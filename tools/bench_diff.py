#!/usr/bin/env python3
"""Diff a freshly emitted BENCH_engine.json against the committed baseline.

Rows are matched on their identity key (process, graph, phase, n, threads,
trace, fast_forward); a fresh ns/round more than --threshold (default 25%)
above the baseline's is a regression. Rows marked "suspect": true on either
side are skipped — they measured oversubscription on some host, not the
engine. Throughput-style rows (trials_per_sec, edges_per_sec,
endpoints_per_sec) regress in the opposite direction and are checked too.

Exit status: 0 = no regressions (or rows only appeared/disappeared, which is
reported but not fatal — schema growth is normal between PRs); 1 = at least
one regression; 2 = bad invocation / unreadable input.

Usage:
  tools/bench_diff.py BASELINE FRESH [--threshold=0.25]
"""

import argparse
import json
import sys


def row_key(row):
    return (
        row.get("process", ""),
        row.get("graph", ""),
        row.get("phase", ""),
        row.get("n", 0),
        row.get("threads", 1),
        bool(row.get("trace", False)),
        bool(row.get("fast_forward", True)),
    )


def load_rows(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rows = {}
    for row in doc.get("rows", []):
        rows[row_key(row)] = row
    return rows


# (field, higher_is_worse): ns/round regresses upward, throughputs downward.
METRICS = [
    ("ns_per_round", True),
    ("trials_per_sec", False),
    ("edges_per_sec", False),
    ("endpoints_per_sec", False),
]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional regression that fails the diff (default 0.25 = 25%%)",
    )
    args = parser.parse_args()

    base = load_rows(args.baseline)
    fresh = load_rows(args.fresh)

    regressions = []
    improvements = []
    skipped_suspect = 0
    for key, fresh_row in sorted(fresh.items()):
        base_row = base.get(key)
        if base_row is None:
            continue  # new row: nothing to compare against
        if fresh_row.get("suspect") or base_row.get("suspect"):
            skipped_suspect += 1
            continue
        for field, higher_is_worse in METRICS:
            b = base_row.get(field, 0.0)
            f = fresh_row.get(field, 0.0)
            if b <= 0.0 or f <= 0.0:
                continue  # metric not meaningful for this row
            ratio = f / b if higher_is_worse else b / f
            # ratio > 1 means worse in this metric's bad direction; describe
            # it as a factor (percentages are unreadable at 10^4x swings).
            desc = (f"{ratio:.2f}x worse" if ratio >= 1.0
                    else f"{1.0 / ratio:.2f}x better")
            line = (
                f"{key[0]} | {key[1]} | {key[2]} | threads={key[4]} "
                f"trace={key[5]} ff={key[6]} | {field}: "
                f"{b:.3g} -> {f:.3g} ({desc})"
            )
            if ratio > 1.0 + args.threshold:
                regressions.append(line)
            elif ratio < 1.0 - args.threshold:
                improvements.append(line)

    only_base = sorted(set(base) - set(fresh))
    only_fresh = sorted(set(fresh) - set(base))

    print(f"bench_diff: {len(fresh)} fresh rows vs {len(base)} baseline rows "
          f"({skipped_suspect} suspect skipped, threshold {args.threshold:.0%})")
    if only_base:
        print(f"  rows only in baseline ({len(only_base)}):")
        for key in only_base:
            print(f"    - {key[0]} | {key[1]} | {key[2]} | threads={key[4]}")
    if only_fresh:
        print(f"  rows only in fresh ({len(only_fresh)}):")
        for key in only_fresh:
            print(f"    + {key[0]} | {key[1]} | {key[2]} | threads={key[4]}")
    if improvements:
        print(f"  improvements ({len(improvements)}):")
        for line in improvements:
            print(f"    {line}")
    if regressions:
        print(f"  REGRESSIONS ({len(regressions)}):")
        for line in regressions:
            print(f"    {line}")
        return 1
    print("  no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
