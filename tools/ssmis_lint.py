#!/usr/bin/env python3
"""ssmis_lint: repo-specific determinism & invariant linter.

The golden-fingerprint suites pin *runtime* behavior (bit-identical
trajectories at any shard count, the compressed-storage access contract,
narrowing-safe id handling). This linter moves the same invariants to lint
time, so a violation fails CI before it can corrupt a trajectory that only a
fingerprint mismatch would catch. Four rules:

  R1  raw-adjacency-access
      `Graph::neighbors(u)` / `offsets()` / `adjacency()` throw
      std::logic_error on compressed storage. Outside the decode-aware
      allowlist (the Graph internals themselves), every consumer must use
      one of the decode paths — for_each_neighbor(u, f),
      neighbors(u, scratch), or Graph::RowStream — or prove the storage is
      plain and suppress with a reason.

  R2  nondeterminism-source
      Trajectory-affecting code may draw randomness only from the
      counter-based CoinOracle / seeded Xoshiro256 state and must not read
      wall clocks or host properties: `rand`/`srand`, `std::random_device`,
      `time`/`clock`/`gettimeofday`, the std::chrono clocks
      (system_clock/steady_clock/high_resolution_clock),
      `hardware_concurrency()`, and iteration over unordered containers
      (iteration order is hash-seed dependent) are all flagged. Benchmarks,
      examples, tests, tools, and src/support (resource accounting, CLI
      thread-count defaults, the pool) are exempt by path.

  R3  narrowing-cast
      Vertex ids are i32, adjacency offsets/endpoint counts are i64. An
      i64 -> i32 `static_cast` silently truncates at the 10^8-vertex scale
      this repo targets. Casts to a 32-bit-or-narrower type whose argument
      mentions a 64-bit source (std::int64_t variables, `.size()`,
      std::size_t, adj_len/payload_bytes/file_bytes/...) must go through the
      checked `ssmis::narrow_cast<T>` (src/support/narrow.hpp) instead.

  R4  decide-phase-shard-discipline
      The sharded decide phase is only bit-identical because its parallel
      region is pure: `transition_range` bodies and lambdas handed to
      `ThreadPool::parallel_for` may write only per-shard state (staged_,
      shard_changed_, locals), and the rule callbacks the decide phase
      invokes (transition / scheduled / contribution / fast_forwardable /
      orbit_color) must be const member functions. Writes to any other
      `trailing_underscore_` member from those contexts, or a non-const
      rule callback, are flagged.

Suppressions: append `// ssmis-lint: allow(R1) reason` (multiple ids:
`allow(R1,R3)`) to the offending line, or place the comment alone on the
line directly above it. A suppression without a reason does not suppress —
the finding stands and the empty suppression is reported alongside it.

Engines: the default token engine needs nothing beyond the standard
library and is the engine of record (CI, --self-test). When python's
libclang bindings are importable, `--engine=clang` re-checks R1 findings
against the real AST (is the receiver actually an ssmis::Graph?) and drops
the ones that are not; any libclang failure falls back to the token
verdicts, so the linter never goes quiet because a wheel is missing.

Exit status: 0 = no unsuppressed findings, 1 = findings, 2 = usage/self-test
harness error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

RULES = {
    "R1": "raw-adjacency-access",
    "R2": "nondeterminism-source",
    "R3": "narrowing-cast",
    "R4": "decide-phase-shard-discipline",
}

# R1: files allowed to touch the raw CSR views (the storage internals and
# their builders — everything behind the Graph invariant boundary).
R1_ALLOWLIST = (
    "src/graph/graph.hpp",
    "src/graph/graph.cpp",
)

# R2: path prefixes where wall clocks / host probing are legitimate
# (measurement harnesses, resource accounting, CLI defaults, the pool).
R2_EXEMPT_PREFIXES = (
    "bench/",
    "examples/",
    "tests/",
    "tools/",
    "src/support/",
)

# R3: the checked-cast helper itself is the one place allowed to narrow.
R3_ALLOWLIST = ("src/support/narrow.hpp",)

# R3: destination types considered 32-bit-or-narrower for vertex/offset data.
R3_NARROW_DESTS = {
    "Vertex",
    "ssmis::Vertex",
    "int",
    "unsigned",
    "unsignedint",
    "int32_t",
    "std::int32_t",
    "uint32_t",
    "std::uint32_t",
}

# R3: token-level markers of a 64-bit-valued argument expression.
R3_WIDE_MARKERS = re.compile(
    r"int64|uint64|size_t|streamsize|streamoff|tellg|num_edges|adj_len"
    r"|payload_bytes|file_bytes|endpoints|offsets"
)
R3_WIDE_TOKEN_SEQS = ((".", "size", "(", ")"), (".", "tellg", "(", ")"))

# R4: per-shard state the parallel decide region may legitimately write.
R4_PER_SHARD_MEMBERS = {"staged_", "shard_changed_"}
# R4: rule callbacks the decide phase invokes — must be const members.
R4_CONST_CALLBACKS = {
    "transition",
    "scheduled",
    "contribution",
    "fast_forwardable",
    "orbit_color",
}
R4_MUTATORS = {
    "push_back", "emplace_back", "clear", "insert", "erase", "resize",
    "assign", "reserve", "pop_back", "swap",
}

SUPPRESS_RE = re.compile(
    r"ssmis-lint:\s*allow\(\s*(R[1-4](?:\s*,\s*R[1-4])*)\s*\)\s*(.*)")


@dataclass
class Finding:
    path: str        # repo-relative (or as given) path
    line: int        # 1-based
    rule: str        # "R1".."R4"
    message: str
    hint: str
    suppressed: bool = False
    bad_suppression: bool = False  # matched an allow() without a reason


@dataclass
class Token:
    text: str
    line: int


TOKEN_RE = re.compile(
    r"[A-Za-z_][A-Za-z0-9_]*"      # identifier / keyword
    r"|\d[\dxXa-fA-F'.uUlL]*"      # numeric literal (loose)
    r"|::|->|\+\+|--|<<=|>>=|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^="
    r"|[{}()\[\];:,.<>=!+\-*/%&|^~?]"
)


class SourceFile:
    """Comment/string-stripped view of one C++ file plus its suppressions.

    `tokens` is the flat token stream of the code (comments and literal
    *contents* removed — string/char literals are replaced by the
    placeholder token `""` so expression shapes survive).
    `suppressions[line]` is a list of (rules, reason) tuples covering that
    line (same-line comments plus a comment-only line directly above).
    """

    def __init__(self, path: str, text: str):
        self.path = path
        self.tokens: list[Token] = []
        self.suppressions: dict[int, list[tuple[set[str], str]]] = {}
        self._lex(text)

    def _lex(self, text: str) -> None:
        code_chars: list[str] = []
        comments: list[tuple[int, str]] = []  # (line, comment text)
        i, n, line = 0, len(text), 1
        while i < n:
            c = text[i]
            if c == "\n":
                code_chars.append(c)
                line += 1
                i += 1
            elif text.startswith("//", i):
                j = text.find("\n", i)
                j = n if j < 0 else j
                comments.append((line, text[i:j]))
                i = j
            elif text.startswith("/*", i):
                j = text.find("*/", i + 2)
                j = n - 2 if j < 0 else j
                chunk = text[i:j + 2]
                comments.append((line, chunk))
                line += chunk.count("\n")
                code_chars.append(" " * 0)
                # keep newlines so token line numbers stay right
                code_chars.append("\n" * chunk.count("\n"))
                i = j + 2
            elif text.startswith('R"', i):
                # raw string literal: R"delim( ... )delim"
                m = re.match(r'R"([^\s()\\]{0,16})\(', text[i:])
                if m:
                    close = ")" + m.group(1) + '"'
                    j = text.find(close, i)
                    j = n - len(close) if j < 0 else j
                    chunk = text[i:j + len(close)]
                    code_chars.append('""')
                    code_chars.append("\n" * chunk.count("\n"))
                    line += chunk.count("\n")
                    i = j + len(close)
                else:
                    code_chars.append(c)
                    i += 1
            elif c == '"' or c == "'":
                j = i + 1
                while j < n and text[j] != c:
                    j += 2 if text[j] == "\\" else 1
                lit = text[i:j + 1]
                code_chars.append('""' if c == '"' else "'x'")
                code_chars.append("\n" * lit.count("\n"))
                line += lit.count("\n")
                i = j + 1
            else:
                code_chars.append(c)
                i += 1
        code = "".join(code_chars)

        # Tokenize, tracking line numbers.
        pos, cur_line = 0, 1
        for m in TOKEN_RE.finditer(code):
            cur_line += code.count("\n", pos, m.start())
            pos = m.start()
            self.tokens.append(Token(m.group(0), cur_line))
        # '' placeholders from literals are not matched by TOKEN_RE's
        # identifier/number classes; add them so call-argument shapes keep
        # an operand where a string literal sat.
        # (The regex above has no string class on purpose — placeholders are
        # two quote chars, which it skips; argument-counting only needs
        # commas and parens, so this loss is harmless.)

        code_only_lines: set[int] = set()
        stripped_lines = code.split("\n")
        for idx, content in enumerate(stripped_lines, start=1):
            if content.strip() == "":
                code_only_lines.add(idx)

        for cline, ctext in comments:
            m = SUPPRESS_RE.search(ctext)
            if not m:
                continue
            rules = {r.strip() for r in m.group(1).split(",")}
            reason = m.group(2).strip().rstrip("*/").strip()
            targets = [cline]
            # A comment on an otherwise-empty line covers the next line.
            if cline in code_only_lines:
                targets.append(cline + 1)
            for t in targets:
                self.suppressions.setdefault(t, []).append((rules, reason))

    # -- small token-stream helpers -------------------------------------

    def match_paren(self, open_idx: int) -> int:
        """Index of the token closing the paren/brace/bracket at open_idx."""
        openc = self.tokens[open_idx].text
        closec = {"(": ")", "{": "}", "[": "]"}[openc]
        depth = 0
        for i in range(open_idx, len(self.tokens)):
            t = self.tokens[i].text
            if t == openc:
                depth += 1
            elif t == closec:
                depth -= 1
                if depth == 0:
                    return i
        return len(self.tokens) - 1

    def count_args(self, open_idx: int, close_idx: int) -> int:
        """Number of top-level comma-separated arguments in (...)."""
        if close_idx == open_idx + 1:
            return 0
        depth, commas = 0, 0
        for i in range(open_idx + 1, close_idx):
            t = self.tokens[i].text
            if t in "([{":
                depth += 1
            elif t in ")]}":
                depth -= 1
            elif t == "," and depth == 0:
                commas += 1
        return commas + 1


# --------------------------------------------------------------------------
# Rule implementations (token engine)
# --------------------------------------------------------------------------

def rel_path(path: str) -> str:
    ap = os.path.abspath(path)
    if ap.startswith(REPO_ROOT + os.sep):
        return os.path.relpath(ap, REPO_ROOT).replace(os.sep, "/")
    return path.replace(os.sep, "/")


def check_r1(src: SourceFile, rel: str, out: list[Finding]) -> None:
    if rel in R1_ALLOWLIST:
        return
    toks = src.tokens
    for i, tok in enumerate(toks):
        if tok.text not in ("neighbors", "offsets", "adjacency"):
            continue
        if i == 0 or toks[i - 1].text not in (".", "->"):
            continue  # not a member access
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        close = src.match_paren(i + 1)
        nargs = src.count_args(i + 1, close)
        if tok.text == "neighbors" and nargs != 1:
            continue  # neighbors(u, scratch) is the decode-aware overload
        if tok.text in ("offsets", "adjacency") and nargs != 0:
            continue
        call = f"{tok.text}({'u' if nargs else ''})"
        out.append(Finding(
            rel, tok.line, "R1",
            f"raw Graph::{call} outside the decode-aware allowlist "
            "(throws std::logic_error on compressed storage)",
            "use for_each_neighbor(u, f), neighbors(u, scratch), or "
            "Graph::RowStream; if the storage is provably plain, suppress "
            "with a reason"))


R2_BANNED_CALLS = {
    "rand": "libc rand() is seeded global state",
    "srand": "libc srand() mutates global RNG state",
    "time": "wall-clock time() feeds nondeterminism into the run",
    "clock": "processor clock() is host-dependent",
    "gettimeofday": "wall clock read",
    "localtime": "wall clock read",
    "gmtime": "wall clock read",
}
R2_BANNED_NAMES = {
    "random_device": "std::random_device draws entropy outside the seed",
    "system_clock": "wall clock read",
    "steady_clock": "host timer read",
    "high_resolution_clock": "host timer read",
    "hardware_concurrency": "host property must not influence results",
}


def check_r2(src: SourceFile, rel: str, out: list[Finding]) -> None:
    # The mutation fixtures exist to exercise every rule — never exempt.
    if "lint_fixtures" not in rel and \
            any(rel.startswith(p) for p in R2_EXEMPT_PREFIXES):
        return
    toks = src.tokens
    hint = ("trajectory-affecting code draws randomness from CoinOracle / "
            "seeded Xoshiro256 only; move timing or host probing to bench/ "
            "or src/support/, or suppress with a reason")
    for i, tok in enumerate(toks):
        prev = toks[i - 1].text if i > 0 else ""
        if tok.text in R2_BANNED_NAMES:
            if prev in (".", "->") and tok.text != "hardware_concurrency":
                continue  # member named e.g. steady_clock — not the std one
            out.append(Finding(rel, tok.line, "R2",
                               f"nondeterminism source `{tok.text}`: "
                               f"{R2_BANNED_NAMES[tok.text]}", hint))
        elif tok.text in R2_BANNED_CALLS:
            nxt = toks[i + 1].text if i + 1 < len(toks) else ""
            if nxt != "(":
                continue
            if prev in (".", "->"):
                continue  # member function of some object, not libc
            if prev in ("&", "*") or re.fullmatch(r"[A-Za-z_]\w*", prev or "x"):
                continue  # `PhaseClock& clock()` — a declaration, not a call
            close = src.match_paren(i + 1)
            after = toks[close + 1].text if close + 1 < len(toks) else ""
            if after in ("{", "const", "noexcept", "override", "final"):
                continue  # function definition named like the libc symbol
            out.append(Finding(rel, tok.line, "R2",
                               f"nondeterminism source `{tok.text}()`: "
                               f"{R2_BANNED_CALLS[tok.text]}", hint))

    # Unordered-container iteration: collect declared names, flag range-for
    # over them and explicit .begin() walks (membership queries are fine —
    # only *iteration order* is hash-seed dependent).
    names: set[str] = set()
    for i, tok in enumerate(toks):
        if tok.text not in ("unordered_set", "unordered_map"):
            continue
        j = i + 1
        if j < len(toks) and toks[j].text == "<":
            depth = 0
            while j < len(toks):
                if toks[j].text == "<":
                    depth += 1
                elif toks[j].text == ">":
                    depth -= 1
                    if depth == 0:
                        break
                elif toks[j].text == ">>":
                    depth -= 2
                    if depth <= 0:
                        break
                j += 1
            j += 1
        while j < len(toks) and toks[j].text in ("&", "*", "const"):
            j += 1
        if j < len(toks) and re.fullmatch(r"[A-Za-z_]\w*", toks[j].text):
            names.add(toks[j].text)
    if not names:
        return
    for i, tok in enumerate(toks):
        if tok.text != "for" or i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        close = src.match_paren(i + 1)
        inner = toks[i + 2:close]
        for k, it in enumerate(inner):
            if it.text == ":" and k + 1 < len(inner) and \
                    inner[k + 1].text in names:
                out.append(Finding(
                    rel, tok.line, "R2",
                    f"iteration over unordered container "
                    f"`{inner[k + 1].text}`: order is hash-seed dependent",
                    "iterate a sorted copy, or switch the container to a "
                    "vector/std::set if order can reach trajectory or "
                    "output state"))
    for i, tok in enumerate(toks):
        if tok.text in names and i + 2 < len(toks) and \
                toks[i + 1].text == "." and toks[i + 2].text == "begin":
            out.append(Finding(
                rel, tok.line, "R2",
                f"iteration over unordered container `{tok.text}` via "
                ".begin(): order is hash-seed dependent",
                "iterate a sorted copy instead"))


def check_r3(src: SourceFile, rel: str, out: list[Finding]) -> None:
    if rel in R3_ALLOWLIST:
        return
    toks = src.tokens
    for i, tok in enumerate(toks):
        if tok.text != "static_cast":
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "<":
            continue
        # Destination type: tokens up to the matching '>'.
        j, depth, dest = i + 1, 0, []
        while j < len(toks):
            t = toks[j].text
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
                if depth == 0:
                    break
            elif depth >= 1:
                dest.append(t)
            j += 1
        dest_str = "".join(dest)
        if dest_str not in R3_NARROW_DESTS:
            continue
        if j + 1 >= len(toks) or toks[j + 1].text != "(":
            continue
        close = src.match_paren(j + 1)
        # Markers inside `[...]` subscripts don't widen the value (an index
        # cast like x[static_cast<std::size_t>(u)] says nothing about the
        # width of x's elements) — scan only bracket-depth-0 tokens.
        arg_tokens = []
        depth = 0
        for t in toks[j + 2:close]:
            if t.text == "[":
                depth += 1
                continue
            if t.text == "]":
                depth -= 1
                continue
            if depth == 0:
                arg_tokens.append(t.text)
        arg_str = " ".join(arg_tokens)
        wide = bool(R3_WIDE_MARKERS.search(arg_str))
        if not wide:
            for seq in R3_WIDE_TOKEN_SEQS:
                for k in range(len(arg_tokens) - len(seq) + 1):
                    if tuple(arg_tokens[k:k + len(seq)]) == seq:
                        wide = True
                        break
                if wide:
                    break
        if not wide:
            continue
        out.append(Finding(
            rel, tok.line, "R3",
            f"64-bit value narrowed by static_cast<{dest_str}> "
            "(silent truncation past 2^31)",
            "use ssmis::narrow_cast<T> (src/support/narrow.hpp): asserts "
            "the round-trip in debug builds, documents wraparound in "
            "release"))


def _lambda_body_ranges_of_parallel_for(src: SourceFile) -> list[tuple[int, int]]:
    """Token index ranges of lambda bodies passed to parallel_for(...)."""
    toks = src.tokens
    ranges = []
    for i, tok in enumerate(toks):
        if tok.text != "parallel_for":
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        close = src.match_paren(i + 1)
        j = i + 2
        while j < close:
            if toks[j].text == "[":
                cap_close = src.match_paren(j)
                k = cap_close + 1
                if k < close and toks[k].text == "(":
                    k = src.match_paren(k) + 1
                while k < close and toks[k].text in ("mutable", "noexcept",
                                                     "->", "void", "int",
                                                     "auto", "const", "&"):
                    k += 1
                if k < close and toks[k].text == "{":
                    ranges.append((k, src.match_paren(k)))
                    j = src.match_paren(k)
            j += 1
    return ranges


def _function_body_range(src: SourceFile, name: str) -> list[tuple[int, int]]:
    """Token ranges of the bodies of function *definitions* named `name`."""
    toks = src.tokens
    ranges = []
    for i, tok in enumerate(toks):
        if tok.text != name:
            continue
        if i > 0 and toks[i - 1].text in (".", "->"):
            continue  # call on an object
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        close = src.match_paren(i + 1)
        k = close + 1
        while k < len(toks) and toks[k].text in ("const", "noexcept",
                                                 "override", "final", "&",
                                                 "&&"):
            k += 1
        if k < len(toks) and toks[k].text == "{":
            ranges.append((k, src.match_paren(k)))
    return ranges


def check_r4(src: SourceFile, rel: str, out: list[Finding]) -> None:
    toks = src.tokens

    # (a) Parallel-region write discipline: transition_range bodies and
    # parallel_for lambdas may write only per-shard members.
    regions = _function_body_range(src, "transition_range")
    regions += _lambda_body_ranges_of_parallel_for(src)
    hint = ("the sharded decide phase must stay pure: stage into per-shard "
            "state (staged_, shard_changed_, locals) and merge in shard "
            "order after the join")
    for (b, e) in regions:
        for i in range(b + 1, e):
            t = toks[i]
            if not t.text.endswith("_") or not re.fullmatch(r"[A-Za-z_]\w*",
                                                            t.text):
                continue
            if t.text in R4_PER_SHARD_MEMBERS:
                continue
            if i > 0 and toks[i - 1].text in (".", "->", "::"):
                continue  # member of something else
            # Direct mutation?
            j = i + 1
            if j < len(toks) and toks[j].text == "[":
                j = src.match_paren(j) + 1
            nxt = toks[j].text if j < len(toks) else ""
            nxt2 = toks[j + 1].text if j + 1 < len(toks) else ""
            mutated = False
            if nxt in ("=", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=",
                       "++", "--") and nxt != "==":
                mutated = nxt != "=" or nxt2 != "="
            if not mutated and i > 0 and toks[i - 1].text in ("++", "--"):
                mutated = True
            if not mutated and nxt == "." and nxt2 in R4_MUTATORS:
                mutated = True
            if mutated:
                out.append(Finding(
                    rel, t.line, "R4",
                    f"write to non-per-shard engine member `{t.text}` "
                    "inside the parallel decide region", hint))

    # (b) Rule callback constness: decide-path callbacks must be const.
    for name in sorted(R4_CONST_CALLBACKS):
        for i, tok in enumerate(toks):
            if tok.text != name:
                continue
            if i > 0 and toks[i - 1].text in (".", "->"):
                continue  # call site
            if i + 1 >= len(toks) or toks[i + 1].text != "(":
                continue
            close = src.match_paren(i + 1)
            k = close + 1
            quals = []
            while k < len(toks) and toks[k].text in ("const", "noexcept",
                                                     "override", "final"):
                quals.append(toks[k].text)
                k += 1
            if k >= len(toks) or toks[k].text != "{":
                continue  # declaration or call, not a definition body
            # Free functions (no enclosing class) are out of scope; a cheap
            # proxy: require the definition to look like a member (either
            # qualified Foo::name or inside a class — we accept the FP risk
            # and let the const check run on any definition of these names).
            if "const" not in quals:
                out.append(Finding(
                    rel, tok.line, "R4",
                    f"decide-path rule callback `{name}` is not a const "
                    "member function (the sharded decide phase calls it "
                    "concurrently)",
                    "declare the callback const; mutable rule state on the "
                    "decide path breaks shard bit-identity"))


# --------------------------------------------------------------------------
# Optional libclang refinement (R1 receiver-type confirmation)
# --------------------------------------------------------------------------

def refine_r1_with_libclang(findings: list[Finding],
                            paths: dict[str, str]) -> list[Finding]:
    """Drop R1 findings whose receiver libclang proves is NOT ssmis::Graph.

    Best-effort: any import/parse failure returns the findings untouched
    (the token verdicts stand — the fallback is the engine of record).
    """
    try:
        from clang import cindex  # type: ignore
    except Exception:
        return findings
    r1_by_file: dict[str, list[Finding]] = {}
    for f in findings:
        if f.rule == "R1":
            r1_by_file.setdefault(f.path, []).append(f)
    if not r1_by_file:
        return findings
    keep = [f for f in findings if f.rule != "R1"]
    try:
        index = cindex.Index.create()
        for rel, flist in r1_by_file.items():
            abspath = paths.get(rel, rel)
            tu = index.parse(abspath, args=["-std=c++20",
                                            "-I", os.path.join(REPO_ROOT,
                                                               "src")])
            confirmed_lines: set[int] = set()
            for cur in tu.cursor.walk_preorder():
                if cur.kind != cindex.CursorKind.CALL_EXPR:
                    continue
                if cur.spelling not in ("neighbors", "offsets", "adjacency"):
                    continue
                ref = cur.referenced
                if ref is None:
                    confirmed_lines.add(cur.location.line)  # unresolved: keep
                    continue
                parent = ref.semantic_parent
                if parent is not None and parent.spelling == "Graph":
                    confirmed_lines.add(cur.location.line)
            for f in flist:
                if f.line in confirmed_lines:
                    keep.append(f)
        return keep
    except Exception:
        return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

CPP_EXTS = (".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh")


def collect_files(roots: list[str]) -> list[str]:
    files = []
    for root in roots:
        if os.path.isfile(root):
            files.append(root)
            continue
        for dirpath, _dirnames, filenames in os.walk(root):
            for fn in sorted(filenames):
                if fn.endswith(CPP_EXTS):
                    files.append(os.path.join(dirpath, fn))
    return sorted(set(files))


def lint_file(path: str, rules: set[str],
              honor_suppressions: bool = True) -> list[Finding]:
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        text = fh.read()
    rel = rel_path(path)
    src = SourceFile(path, text)
    findings: list[Finding] = []
    if "R1" in rules:
        check_r1(src, rel, findings)
    if "R2" in rules:
        check_r2(src, rel, findings)
    if "R3" in rules:
        check_r3(src, rel, findings)
    if "R4" in rules:
        check_r4(src, rel, findings)
    if honor_suppressions:
        for f in findings:
            for (rset, reason) in src.suppressions.get(f.line, []):
                if f.rule in rset:
                    if reason:
                        f.suppressed = True
                    else:
                        f.bad_suppression = True
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def render_table(findings: list[Finding]) -> str:
    lines = []
    width = max((len(f"{f.path}:{f.line}") for f in findings), default=0)
    width = max(width, len("FILE:LINE"))
    lines.append(f"{'FILE:LINE':<{width}}  RULE  {'FINDING'}")
    for f in findings:
        loc = f"{f.path}:{f.line}"
        tag = f"{f.rule} ({RULES[f.rule]})"
        lines.append(f"{loc:<{width}}  {f.rule}    {f.message}")
        lines.append(f"{'':<{width}}        rule: {tag}")
        lines.append(f"{'':<{width}}        hint: {f.hint}")
        if f.bad_suppression:
            lines.append(f"{'':<{width}}        note: an `ssmis-lint: "
                         "allow(...)` comment matched but gave no reason — "
                         "suppressions require one")
    return "\n".join(lines)


def run_lint(args: argparse.Namespace) -> int:
    rules = set(RULES) if not args.rules else {r.strip().upper()
                                              for r in args.rules.split(",")}
    bad = rules - set(RULES)
    if bad:
        print(f"ssmis_lint: unknown rule id(s): {', '.join(sorted(bad))}",
              file=sys.stderr)
        return 2
    roots = args.paths or [os.path.join(REPO_ROOT, "src")]
    files = collect_files(roots)
    if not files:
        print("ssmis_lint: no C++ files found under: " + ", ".join(roots),
              file=sys.stderr)
        return 2
    all_findings: list[Finding] = []
    paths_by_rel: dict[str, str] = {}
    for path in files:
        paths_by_rel[rel_path(path)] = os.path.abspath(path)
        all_findings.extend(lint_file(path, rules,
                                      honor_suppressions=not args.no_suppress))
    if args.engine == "clang":
        all_findings = refine_r1_with_libclang(all_findings, paths_by_rel)
        all_findings.sort(key=lambda f: (f.path, f.line, f.rule))
    visible = [f for f in all_findings if not f.suppressed]
    suppressed = [f for f in all_findings if f.suppressed]
    if visible:
        print(render_table(visible))
        print(f"\nssmis_lint: {len(visible)} finding(s) "
              f"({len(suppressed)} suppressed) in {len(files)} file(s)")
        return 1
    print(f"ssmis_lint: clean — 0 findings ({len(suppressed)} suppressed) "
          f"in {len(files)} file(s)")
    return 0


# --------------------------------------------------------------------------
# Self-test: the linter must bite before it is allowed to gate
# --------------------------------------------------------------------------

def run_self_test(_args: argparse.Namespace) -> int:
    fixtures = os.path.join(REPO_ROOT, "tests", "lint_fixtures")
    expected_path = os.path.join(fixtures, "expected.txt")
    if not os.path.isdir(fixtures) or not os.path.isfile(expected_path):
        print(f"ssmis_lint --self-test: fixtures missing at {fixtures}",
              file=sys.stderr)
        return 2

    expected: set[tuple[str, int, str]] = set()
    with open(expected_path, encoding="utf-8") as fh:
        for raw in fh:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            loc, rule = line.split()
            fname, lineno = loc.rsplit(":", 1)
            expected.add((fname, int(lineno), rule))

    got: set[tuple[str, int, str]] = set()
    files = collect_files([fixtures])
    for path in files:
        for f in lint_file(path, set(RULES)):
            if not f.suppressed:
                got.add((os.path.basename(f.path), f.line, f.rule))

    failures = []
    missing = expected - got
    surprise = got - expected
    if missing:
        failures.append("seeded violations the linter FAILED to catch:\n  " +
                        "\n  ".join(f"{f}:{l} {r}"
                                    for (f, l, r) in sorted(missing)))
    if surprise:
        failures.append("findings not in the golden expectations:\n  " +
                        "\n  ".join(f"{f}:{l} {r}"
                                    for (f, l, r) in sorted(surprise)))

    # The suppressed fixture must be clean WITH suppressions and dirty
    # WITHOUT them — both directions, or the allow() machinery is dead.
    suppressed_fixture = os.path.join(fixtures, "suppressed.cpp")
    if os.path.isfile(suppressed_fixture):
        with_supp = [f for f in lint_file(suppressed_fixture, set(RULES))
                     if not f.suppressed]
        without = lint_file(suppressed_fixture, set(RULES),
                            honor_suppressions=False)
        if with_supp:
            failures.append(
                "suppressed.cpp: allow() comments did not suppress: " +
                ", ".join(f"line {f.line} {f.rule}" for f in with_supp))
        if not without:
            failures.append("suppressed.cpp: produced no findings even with "
                            "suppressions ignored — the fixture is not "
                            "exercising anything")
    else:
        failures.append("suppressed.cpp fixture is missing")

    if failures:
        print("ssmis_lint --self-test FAILED:\n" + "\n".join(failures),
              file=sys.stderr)
        return 2
    print(f"ssmis_lint --self-test: OK — {len(expected)} seeded violations "
          f"caught with the right rule ids, clean fixture clean, "
          "suppressions verified in both directions")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(
        prog="ssmis_lint.py",
        description="repo-specific determinism & invariant linter "
                    "(rules R1-R4; see the module docstring)")
    ap.add_argument("paths", nargs="*",
                    help="files or directories to lint (default: src/)")
    ap.add_argument("--rules", default="",
                    help="comma-separated rule ids to run (default: all)")
    ap.add_argument("--engine", choices=("tokens", "clang"), default="tokens",
                    help="analysis engine; 'clang' refines R1 with libclang "
                         "when importable, falling back to token verdicts")
    ap.add_argument("--no-suppress", action="store_true",
                    help="ignore ssmis-lint: allow(...) comments")
    ap.add_argument("--self-test", action="store_true",
                    help="run the mutation self-test over "
                         "tests/lint_fixtures/ and exit")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule table and exit")
    args = ap.parse_args()
    if args.list_rules:
        for rid, name in RULES.items():
            print(f"{rid}  {name}")
        return 0
    if args.self_test:
        return run_self_test(args)
    return run_lint(args)


if __name__ == "__main__":
    sys.exit(main())
