// Summary statistics for experiment measurements.
#pragma once

#include <cstdint>
#include <vector>

namespace ssmis {

// Streaming mean/variance (Welford) with min/max tracking.
class StreamingStats {
 public:
  void add(double x);

  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Batch summary with order statistics.
struct Summary {
  std::int64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

Summary summarize(std::vector<double> values);

// Quantile with linear interpolation; q in [0, 1]. Throws
// std::invalid_argument for empty input or q outside [0, 1].
double quantile(std::vector<double> values, double q);

// Basic nonparametric bootstrap CI for the mean (percentile method).
struct BootstrapCi {
  double low = 0.0;
  double high = 0.0;
};
BootstrapCi bootstrap_mean_ci(const std::vector<double>& values, double confidence,
                              int resamples, std::uint64_t seed);

}  // namespace ssmis
