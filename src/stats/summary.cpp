#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rng/xoshiro256.hpp"

namespace ssmis {

void StreamingStats::add(double x) {
  ++count_;
  if (count_ == 1) {
    mean_ = x;
    min_ = x;
    max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = static_cast<std::int64_t>(values.size());
  if (values.empty()) return s;
  StreamingStats stream;
  for (double v : values) stream.add(v);
  s.mean = stream.mean();
  s.stddev = stream.stddev();
  s.min = stream.min();
  s.max = stream.max();
  s.median = quantile(values, 0.5);
  s.p90 = quantile(values, 0.9);
  s.p95 = quantile(values, 0.95);
  s.p99 = quantile(values, 0.99);
  return s;
}

BootstrapCi bootstrap_mean_ci(const std::vector<double>& values, double confidence,
                              int resamples, std::uint64_t seed) {
  if (values.empty()) throw std::invalid_argument("bootstrap: empty input");
  if (confidence <= 0.0 || confidence >= 1.0)
    throw std::invalid_argument("bootstrap: confidence outside (0,1)");
  if (resamples < 2) throw std::invalid_argument("bootstrap: need >= 2 resamples");
  Xoshiro256 rng(seed);
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i)
      sum += values[rng.next_below(values.size())];
    means.push_back(sum / static_cast<double>(values.size()));
  }
  const double alpha = 1.0 - confidence;
  BootstrapCi ci;
  ci.low = quantile(means, alpha / 2.0);
  ci.high = quantile(means, 1.0 - alpha / 2.0);
  return ci;
}

}  // namespace ssmis
