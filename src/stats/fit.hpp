// Least-squares fits used to check growth-rate claims: we regress measured
// stabilization times against transformed predictors (log n, log^2 n,
// delta*log n, ...) and report the fit quality, turning "is it O(log n)?"
// into "is the T / log n ratio flat and the R^2 high?".
#pragma once

#include <vector>

namespace ssmis {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

// Ordinary least squares y = intercept + slope * x. Throws
// std::invalid_argument if sizes differ or fewer than 2 points.
LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

// Ratio diagnostics: max(y_i/x_i) / min(y_i/x_i) over positive x. A growth
// claim y = Theta(x) predicts this stays O(1) as x grows; a wrong guess
// (e.g. y = Theta(x log x) against x) makes it drift with n.
double ratio_spread(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace ssmis
