#include "stats/fit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ssmis {

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size()) throw std::invalid_argument("fit_linear: size mismatch");
  if (x.size() < 2) throw std::invalid_argument("fit_linear: need >= 2 points");
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (std::abs(denom) < 1e-12) {
    fit.slope = 0.0;
    fit.intercept = sy / n;
  } else {
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
  }
  double ss_res = 0.0, ss_tot = 0.0;
  const double ybar = sy / n;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = fit.intercept + fit.slope * x[i];
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - ybar) * (y[i] - ybar);
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

double ratio_spread(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size()) throw std::invalid_argument("ratio_spread: size mismatch");
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0.0) continue;
    const double r = y[i] / x[i];
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  if (!std::isfinite(lo) || lo <= 0.0) return 0.0;
  return hi / lo;
}

}  // namespace ssmis
