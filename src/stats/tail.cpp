#include "stats/tail.hpp"

namespace ssmis {

std::vector<TailPoint> empirical_tail(const std::vector<double>& samples,
                                      const std::vector<double>& thresholds) {
  std::vector<TailPoint> out;
  out.reserve(thresholds.size());
  for (double t : thresholds) {
    TailPoint point;
    point.threshold = t;
    for (double x : samples)
      if (x >= t) ++point.exceed_count;
    point.probability = samples.empty()
                            ? 0.0
                            : static_cast<double>(point.exceed_count) /
                                  static_cast<double>(samples.size());
    out.push_back(point);
  }
  return out;
}

double mean_tail_decay(const std::vector<TailPoint>& tail) {
  double sum = 0.0;
  int count = 0;
  for (std::size_t i = 0; i + 1 < tail.size(); ++i) {
    if (tail[i].probability <= 0.0 || tail[i + 1].probability <= 0.0) continue;
    sum += tail[i + 1].probability / tail[i].probability;
    ++count;
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

}  // namespace ssmis
