#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "support/table.hpp"

namespace ssmis {

std::vector<HistogramBin> build_histogram(const std::vector<double>& values, int bins) {
  if (bins < 1) throw std::invalid_argument("build_histogram: bins must be >= 1");
  if (values.empty()) return {};
  const auto [lo_it, hi_it] = std::minmax_element(values.begin(), values.end());
  const double lo = *lo_it;
  double hi = *hi_it;
  if (hi == lo) hi = lo + 1.0;  // all-equal data: one unit-wide bin span
  const double width = (hi - lo) / bins;
  std::vector<HistogramBin> out(static_cast<std::size_t>(bins));
  for (int b = 0; b < bins; ++b) {
    out[static_cast<std::size_t>(b)].low = lo + b * width;
    out[static_cast<std::size_t>(b)].high = lo + (b + 1) * width;
  }
  for (double v : values) {
    int b = static_cast<int>((v - lo) / width);
    b = std::clamp(b, 0, bins - 1);
    ++out[static_cast<std::size_t>(b)].count;
  }
  return out;
}

std::string render_histogram(const std::vector<HistogramBin>& bins, int width) {
  if (bins.empty()) return "";
  int max_count = 1;
  for (const auto& bin : bins) max_count = std::max(max_count, bin.count);
  std::ostringstream oss;
  for (const auto& bin : bins) {
    const int bar = bin.count == 0
                        ? 0
                        : std::max(1, static_cast<int>(std::lround(
                                       static_cast<double>(bin.count) * width /
                                       max_count)));
    oss << "[" << format_double(bin.low, 1) << ", " << format_double(bin.high, 1)
        << ")\t" << bin.count << "\t" << std::string(static_cast<std::size_t>(bar), '#')
        << "\n";
  }
  return oss.str();
}

std::string sparkline(const std::vector<double>& series) {
  static const char kGlyphs[] = ".:-=+*#%";
  constexpr int kLevels = 8;
  if (series.empty()) return "";
  const auto [lo_it, hi_it] = std::minmax_element(series.begin(), series.end());
  const double lo = *lo_it;
  const double hi = *hi_it;
  std::string out;
  out.reserve(series.size());
  for (double v : series) {
    int level = 0;
    if (hi > lo) {
      level = static_cast<int>((v - lo) / (hi - lo) * (kLevels - 1) + 0.5);
      level = std::clamp(level, 0, kLevels - 1);
    }
    out += kGlyphs[level];
  }
  return out;
}

std::vector<double> downsample_max(const std::vector<double>& series,
                                   std::size_t max_points) {
  if (max_points == 0) throw std::invalid_argument("downsample_max: max_points == 0");
  if (series.size() <= max_points) return series;
  std::vector<double> out;
  out.reserve(max_points);
  const double chunk = static_cast<double>(series.size()) / static_cast<double>(max_points);
  for (std::size_t i = 0; i < max_points; ++i) {
    const std::size_t begin = static_cast<std::size_t>(i * chunk);
    std::size_t end = static_cast<std::size_t>((i + 1) * chunk);
    end = std::min(std::max(end, begin + 1), series.size());
    double best = series[begin];
    for (std::size_t j = begin; j < end; ++j) best = std::max(best, series[j]);
    out.push_back(best);
  }
  return out;
}

}  // namespace ssmis
