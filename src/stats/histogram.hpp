// Text visualization of distributions and time series: fixed-bin ASCII
// histograms for stabilization-time distributions, and sparklines for
// per-round progress traces. Used by the simulate example and the
// trace-shape experiment.
#pragma once

#include <string>
#include <vector>

namespace ssmis {

struct HistogramBin {
  double low = 0.0;
  double high = 0.0;
  int count = 0;
};

// Equal-width bins over [min, max] of the data; `bins` >= 1. Empty input
// yields an empty vector.
std::vector<HistogramBin> build_histogram(const std::vector<double>& values, int bins);

// Renders one line per bin: "[low, high)  count  ####...". Bars are scaled
// to `width` characters for the largest bin.
std::string render_histogram(const std::vector<HistogramBin>& bins, int width = 40);

// One-line sparkline of a series using 8 block glyph levels, scaled to the
// series' own min/max. ASCII fallback (".:-=+*#%") keeps the output
// terminal-safe; empty series renders as "".
std::string sparkline(const std::vector<double>& series);

// Downsamples a series to at most `max_points` by taking the max of each
// chunk (preserves peaks, which is what progress plots need).
std::vector<double> downsample_max(const std::vector<double>& series,
                                   std::size_t max_points);

}  // namespace ssmis
