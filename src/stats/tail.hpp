// Empirical tail probabilities: Theorem 8 claims
// P[T >= k log n] = 2^{-Theta(k)} on the clique — we estimate the tail of
// the stabilization-time distribution and compare successive tail ratios.
#pragma once

#include <vector>

namespace ssmis {

struct TailPoint {
  double threshold = 0.0;
  double probability = 0.0;  // empirical P[X >= threshold]
  int exceed_count = 0;
};

// Evaluates P[X >= t] at each threshold.
std::vector<TailPoint> empirical_tail(const std::vector<double>& samples,
                                      const std::vector<double>& thresholds);

// Geometric-decay diagnostic: mean ratio P[X >= t_{i+1}] / P[X >= t_i] over
// points with nonzero tail; a 2^{-Theta(k)} tail over equally spaced
// thresholds keeps this ratio bounded away from 1.
double mean_tail_decay(const std::vector<TailPoint>& tail);

}  // namespace ssmis
