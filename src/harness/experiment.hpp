// Shared experiment driver: every bench binary measures stabilization times
// through this module so trials, seeds, initial patterns, timeout handling,
// and the parallel runtime are uniform across the reproduction tables.
//
// Protocol dispatch goes through the ProtocolRegistry (harness/registry.hpp):
// any registered protocol — the paper's processes, the communication-model
// networks, daemon runs, new workloads — measures through the exact same
// path. The registry-era drivers are bit-identical to the deleted
// ProcessKind enum dispatch (golden fingerprints in tests/test_registry.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/init.hpp"
#include "core/trace.hpp"
#include "graph/graph.hpp"
#include "harness/registry.hpp"
#include "stats/summary.hpp"

namespace ssmis {

struct MeasureConfig {
  // Registered protocol name (see ProtocolRegistry::names()) plus its
  // construction options. `init` is kept alongside for convenience; the
  // harness folds it into the params before each construction.
  std::string protocol = "2state";
  ProtocolParams params;
  InitPattern init = InitPattern::kUniformRandom;
  int trials = 20;
  std::uint64_t seed = 1;
  std::int64_t max_rounds = 1000000;
  // Parallel runtime (defaults keep the old sequential behavior). With
  // threads > 1 and batch == true, whole trials interleave across the
  // shared thread pool (TrialBatch); with batch == false, trials run in
  // index order and each trial's engine decide phase is sharded `threads`
  // ways instead. Either way results are bit-identical to threads == 1 —
  // see docs/architecture.md ("Parallel runtime") for when each wins.
  int threads = 1;
  bool batch = true;
};

// Seed of trial i under the seed-assignment contract: base seed + i,
// independent of thread count and scheduling order.
inline std::uint64_t trial_seed(const MeasureConfig& config, int trial) {
  return config.seed + static_cast<std::uint64_t>(trial);
}

struct Measurements {
  std::vector<double> stabilization_rounds;  // one entry per stabilized trial
  // Seed of every trial that hit max_rounds, in trial order: a parallel run
  // that times out is reproduced by re-running that one seed sequentially.
  std::vector<std::uint64_t> timeout_seeds;
  int timeouts = 0;  // == timeout_seeds.size(), kept for existing consumers
  Summary summary;   // over stabilization_rounds
};

// Runs `config.trials` independent executions of the chosen protocol on `g`
// (seeds seed, seed+1, ...), each from `config.init` states, and verifies
// every stabilized run's output against the protocol's validity predicate
// (aborts via exception if invalid — the harness never reports an invalid
// "success"). Trials are scheduled over TrialBatch per
// config.threads/config.batch; the returned Measurements are identical for
// every thread count.
Measurements measure_stabilization(const Graph& g, const MeasureConfig& config);

// Single traced run, for shape plots. config.threads > 1 shards the
// engine's decide phase (config.batch is irrelevant for one run).
RunResult traced_run(const Graph& g, const MeasureConfig& config);

// Per-vertex stabilization times of one run: entry u is the first round at
// the end of which the protocol reports u settled (for the MIS family, u
// covered by N+(I_t) — stability is monotone, so this is u's stabilization
// time per Section 2's definition), or -1 if the run hit the horizon before
// u settled. Used by the local-vs-global convergence experiment: most
// vertices settle long before the last one.
std::vector<std::int64_t> vertex_stabilization_times(const Graph& g,
                                                     const MeasureConfig& config);

// Batched variant: one per-vertex time vector per trial, for seeds
// seed..seed+trials-1, trials interleaved across config.threads. Entry i
// equals vertex_stabilization_times with seed+i, for any thread count.
std::vector<std::vector<std::int64_t>> vertex_stabilization_times_batch(
    const Graph& g, const MeasureConfig& config);

}  // namespace ssmis
