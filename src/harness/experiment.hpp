// Shared experiment driver: every bench binary measures stabilization times
// through this module so trials, seeds, initial patterns, and timeout
// handling are uniform across the reproduction tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/init.hpp"
#include "core/trace.hpp"
#include "graph/graph.hpp"
#include "stats/summary.hpp"

namespace ssmis {

enum class ProcessKind { kTwoState, kThreeState, kThreeColor };

std::string to_string(ProcessKind kind);

struct MeasureConfig {
  ProcessKind kind = ProcessKind::kTwoState;
  InitPattern init = InitPattern::kUniformRandom;
  int trials = 20;
  std::uint64_t seed = 1;
  std::int64_t max_rounds = 1000000;
};

struct Measurements {
  std::vector<double> stabilization_rounds;  // one entry per stabilized trial
  int timeouts = 0;                          // trials that hit max_rounds
  Summary summary;                           // over stabilization_rounds
};

// Runs `config.trials` independent executions of the chosen process on `g`
// (seeds seed, seed+1, ...), each from `config.init` states, and verifies
// that every stabilized run's black set is an MIS (aborts via exception if
// not — the harness never reports an invalid "success").
Measurements measure_stabilization(const Graph& g, const MeasureConfig& config);

// Single traced run, for shape plots.
RunResult traced_run(const Graph& g, const MeasureConfig& config);

// Per-vertex stabilization times of one run: entry u is the first round at
// the end of which u is covered by N+(I_t) (stability is monotone, so this
// is u's stabilization time per Section 2's definition), or -1 if the run
// hit the horizon before u stabilized. Used by the local-vs-global
// convergence experiment: most vertices settle long before the last one.
std::vector<std::int64_t> vertex_stabilization_times(const Graph& g,
                                                     const MeasureConfig& config);

}  // namespace ssmis
