#include "harness/experiment.hpp"

#include <stdexcept>

#include "core/runner.hpp"
#include "core/three_color.hpp"
#include "core/three_state.hpp"
#include "core/two_state.hpp"
#include "core/verify.hpp"
#include "harness/trial_batch.hpp"

namespace ssmis {

std::string to_string(ProcessKind kind) {
  switch (kind) {
    case ProcessKind::kTwoState: return "2-state";
    case ProcessKind::kThreeState: return "3-state";
    case ProcessKind::kThreeColor: return "3-color";
  }
  return "?";
}

namespace {

template <MisProcess P>
RunResult run_and_check(const Graph& g, P& process, std::int64_t max_rounds,
                        TraceMode mode) {
  RunResult result = run_until_stabilized(process, max_rounds, mode);
  if (result.stabilized && !is_mis(g, process.black_set()))
    throw std::logic_error("experiment: process stabilized on a non-MIS");
  return result;
}

// One trial: construct the process for `seed`, shard its engine `shards`
// ways (1 = sequential), run to stabilization or the horizon. Thread-safe
// across concurrent calls with distinct seeds: the graph is read-only and
// every process owns its state.
RunResult run_one(const Graph& g, const MeasureConfig& config, std::uint64_t seed,
                  TraceMode mode, int shards) {
  const CoinOracle coins(seed);
  switch (config.kind) {
    case ProcessKind::kTwoState: {
      TwoStateMIS process(g, make_init2(g, config.init, coins), coins);
      process.set_shards(shards);
      return run_and_check(g, process, config.max_rounds, mode);
    }
    case ProcessKind::kThreeState: {
      ThreeStateMIS process(g, make_init3(g, config.init, coins), coins);
      process.set_shards(shards);
      return run_and_check(g, process, config.max_rounds, mode);
    }
    case ProcessKind::kThreeColor: {
      ThreeColorMIS process = ThreeColorMIS::with_randomized_switch(
          g, make_init_g(g, config.init, coins), coins);
      process.set_shards(shards);
      return run_and_check(g, process, config.max_rounds, mode);
    }
  }
  throw std::logic_error("experiment: unknown process kind");
}

// Batched trials shard nothing (one core per trial); sharded mode gives the
// whole budget to each trial in turn.
int shards_per_trial(const MeasureConfig& config) {
  return config.batch ? 1 : config.threads;
}

}  // namespace

Measurements measure_stabilization(const Graph& g, const MeasureConfig& config) {
  struct Outcome {
    std::int64_t rounds = 0;
    bool stabilized = false;
  };
  const TrialBatch batch(config.trials, config.batch ? config.threads : 1);
  const int shards = shards_per_trial(config);
  std::vector<Outcome> outcomes(static_cast<std::size_t>(batch.trials()));
  batch.run([&](int trial) {
    const RunResult result =
        run_one(g, config, trial_seed(config, trial), TraceMode::kNone, shards);
    outcomes[static_cast<std::size_t>(trial)] = {result.rounds, result.stabilized};
  });
  // Index-order reduce: the reported sequences match a sequential run.
  Measurements out;
  for (int trial = 0; trial < batch.trials(); ++trial) {
    const Outcome& o = outcomes[static_cast<std::size_t>(trial)];
    if (o.stabilized) {
      out.stabilization_rounds.push_back(static_cast<double>(o.rounds));
    } else {
      out.timeout_seeds.push_back(trial_seed(config, trial));
    }
  }
  out.timeouts = static_cast<int>(out.timeout_seeds.size());
  out.summary = summarize(out.stabilization_rounds);
  return out;
}

RunResult traced_run(const Graph& g, const MeasureConfig& config) {
  return run_one(g, config, config.seed, TraceMode::kPerRound, config.threads);
}

namespace {

// Marks vertices covered by N+(stable blacks) under `process`'s current
// colors and records first-cover rounds.
template <typename Process>
void record_coverage(const Graph& g, const Process& process, std::int64_t round,
                     std::vector<std::int64_t>* times) {
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (!process.stable_black(u)) continue;
    auto mark = [&](Vertex v) {
      auto& t = (*times)[static_cast<std::size_t>(v)];
      if (t < 0) t = round;
    };
    mark(u);
    for (Vertex v : g.neighbors(u)) mark(v);
  }
}

template <typename Process>
std::vector<std::int64_t> per_vertex_times(const Graph& g, Process& process,
                                           std::int64_t max_rounds) {
  std::vector<std::int64_t> times(static_cast<std::size_t>(g.num_vertices()), -1);
  record_coverage(g, process, 0, &times);
  std::int64_t round = 0;
  while (!process.stabilized() && round < max_rounds) {
    process.step();
    ++round;
    record_coverage(g, process, round, &times);
  }
  return times;
}

std::vector<std::int64_t> per_vertex_times_one(const Graph& g,
                                               const MeasureConfig& config,
                                               std::uint64_t seed, int shards) {
  const CoinOracle coins(seed);
  switch (config.kind) {
    case ProcessKind::kTwoState: {
      TwoStateMIS process(g, make_init2(g, config.init, coins), coins);
      process.set_shards(shards);
      return per_vertex_times(g, process, config.max_rounds);
    }
    case ProcessKind::kThreeState: {
      ThreeStateMIS process(g, make_init3(g, config.init, coins), coins);
      process.set_shards(shards);
      return per_vertex_times(g, process, config.max_rounds);
    }
    case ProcessKind::kThreeColor: {
      ThreeColorMIS process = ThreeColorMIS::with_randomized_switch(
          g, make_init_g(g, config.init, coins), coins);
      process.set_shards(shards);
      return per_vertex_times(g, process, config.max_rounds);
    }
  }
  throw std::logic_error("vertex_stabilization_times: unknown process kind");
}

}  // namespace

std::vector<std::int64_t> vertex_stabilization_times(const Graph& g,
                                                     const MeasureConfig& config) {
  return per_vertex_times_one(g, config, config.seed, config.threads);
}

std::vector<std::vector<std::int64_t>> vertex_stabilization_times_batch(
    const Graph& g, const MeasureConfig& config) {
  const TrialBatch batch(config.trials, config.batch ? config.threads : 1);
  const int shards = shards_per_trial(config);
  return batch.map<std::vector<std::int64_t>>([&](int trial) {
    return per_vertex_times_one(g, config, trial_seed(config, trial), shards);
  });
}

}  // namespace ssmis
