#include "harness/experiment.hpp"

#include <memory>

#include "core/process.hpp"
#include "harness/trial_batch.hpp"
#include "support/narrow.hpp"

namespace ssmis {

namespace {

ProtocolParams params_for(const MeasureConfig& config) {
  return with_init(config.params, config.init);
}

// One trial: construct the protocol's process for `seed` via the registry,
// shard its engine `shards` ways (1 = sequential), run to stabilization or
// the horizon, and check the stabilized output's validity. Thread-safe
// across concurrent calls with distinct seeds: the graph is read-only and
// every process owns its state. Type erasure sits here, at trial
// granularity — run() devirtualizes into the wrapper's hot loop.
RunResult run_one(const Graph& g, const MeasureConfig& config, std::uint64_t seed,
                  TraceMode mode, int shards) {
  const std::unique_ptr<Process> process =
      ProtocolRegistry::instance().make(config.protocol, g, params_for(config), seed);
  process->set_shards(shards);
  const RunResult result = process->run(config.max_rounds, mode);
  if (result.stabilized) process->verify_output();  // throws on invalid output
  return result;
}

// Batched trials shard nothing (one core per trial); sharded mode gives the
// whole budget to each trial in turn.
int shards_per_trial(const MeasureConfig& config) {
  return config.batch ? 1 : config.threads;
}

}  // namespace

Measurements measure_stabilization(const Graph& g, const MeasureConfig& config) {
  struct Outcome {
    std::int64_t rounds = 0;
    bool stabilized = false;
  };
  const TrialBatch batch(config.trials, config.batch ? config.threads : 1);
  const int shards = shards_per_trial(config);
  std::vector<Outcome> outcomes(static_cast<std::size_t>(batch.trials()));
  batch.run([&](int trial) {
    const RunResult result =
        run_one(g, config, trial_seed(config, trial), TraceMode::kNone, shards);
    outcomes[static_cast<std::size_t>(trial)] = {result.rounds, result.stabilized};
  });
  // Index-order reduce: the reported sequences match a sequential run.
  Measurements out;
  for (int trial = 0; trial < batch.trials(); ++trial) {
    const Outcome& o = outcomes[static_cast<std::size_t>(trial)];
    if (o.stabilized) {
      out.stabilization_rounds.push_back(static_cast<double>(o.rounds));
    } else {
      out.timeout_seeds.push_back(trial_seed(config, trial));
    }
  }
  out.timeouts = narrow_cast<int>(out.timeout_seeds.size());
  out.summary = summarize(out.stabilization_rounds);
  return out;
}

RunResult traced_run(const Graph& g, const MeasureConfig& config) {
  return run_one(g, config, config.seed, TraceMode::kPerRound, config.threads);
}

namespace {

// Records first-settled rounds. For the MIS family, settled(u) reads the
// engine's stable-black coverage counters — exactly u ∈ N+(I_t), what the
// pre-registry driver derived by re-marking N+(stable blacks) every round.
void record_settled(const Process& process, std::int64_t round,
                    std::vector<std::int64_t>* times) {
  const Vertex n = process.graph().num_vertices();
  for (Vertex u = 0; u < n; ++u) {
    auto& t = (*times)[static_cast<std::size_t>(u)];
    if (t < 0 && process.settled(u)) t = round;
  }
}

std::vector<std::int64_t> per_vertex_times_one(const Graph& g,
                                               const MeasureConfig& config,
                                               std::uint64_t seed, int shards) {
  const std::unique_ptr<Process> process =
      ProtocolRegistry::instance().make(config.protocol, g, params_for(config), seed);
  process->set_shards(shards);
  std::vector<std::int64_t> times(static_cast<std::size_t>(g.num_vertices()), -1);
  record_settled(*process, 0, &times);
  std::int64_t round = 0;
  while (!process->stabilized() && round < config.max_rounds) {
    process->step();
    ++round;
    record_settled(*process, round, &times);
  }
  return times;
}

}  // namespace

std::vector<std::int64_t> vertex_stabilization_times(const Graph& g,
                                                     const MeasureConfig& config) {
  return per_vertex_times_one(g, config, config.seed, config.threads);
}

std::vector<std::vector<std::int64_t>> vertex_stabilization_times_batch(
    const Graph& g, const MeasureConfig& config) {
  const TrialBatch batch(config.trials, config.batch ? config.threads : 1);
  const int shards = shards_per_trial(config);
  return batch.map<std::vector<std::int64_t>>([&](int trial) {
    return per_vertex_times_one(g, config, trial_seed(config, trial), shards);
  });
}

}  // namespace ssmis
