// Named graph suites used by the cross-cutting experiments (baselines,
// model-equivalence, fault recovery) and by the property-based tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace ssmis {

struct NamedGraph {
  std::string name;
  Graph graph;
};

// Small, structurally diverse graphs (n <= ~260): every family the paper
// mentions. Deterministic given `seed`.
std::vector<NamedGraph> small_suite(std::uint64_t seed);

// Medium graphs for baseline tables (n in the hundreds to low thousands).
std::vector<NamedGraph> medium_suite(std::uint64_t seed);

// Corner cases: empty, singleton, isolated vertices, K_2, disconnected.
std::vector<NamedGraph> corner_suite();

}  // namespace ssmis
