// Deterministic batched trial scheduler: the harness-side half of the
// parallel runtime (the engine-side half is sharded stepping,
// core/engine.hpp).
//
// An experiment cell is `trials` independent executions over one shared
// immutable Graph. TrialBatch hands out trial indices one at a time from a
// shared counter, so short trials never leave workers idle behind long
// ones, and trials interleave freely across the pool. Determinism comes
// from addressing, not ordering:
//
//   * the seed-assignment contract: trial i of a cell with base seed s uses
//     seed s + i, a function of the index alone — never of which worker ran
//     it, in what order, or how many threads exist;
//   * results land in per-trial slots and are reduced in index order.
//
// Hence Measurements (and any per-trial artifact) are bit-identical for any
// thread count, including 1.
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/thread_pool.hpp"

namespace ssmis {

class TrialBatch {
 public:
  // threads <= 1 runs trials in index order on the calling thread — exactly
  // the pre-batching per-trial loop.
  TrialBatch(int trials, int threads)
      : trials_(trials < 0 ? 0 : trials), threads_(threads < 1 ? 1 : threads) {}

  int trials() const { return trials_; }
  int threads() const { return threads_; }

  // Runs body(trial) for every trial in [0, trials). `body` must be
  // thread-safe across distinct trials (shared inputs read-only, outputs in
  // per-trial slots) and must derive all randomness from the trial index.
  // The first exception thrown by any trial is rethrown here.
  template <typename Body>
  void run(Body&& body) const {
    if (threads_ <= 1) {
      for (int i = 0; i < trials_; ++i) body(i);
      return;
    }
    const std::function<void(int)> fn = std::forward<Body>(body);
    ThreadPool::shared().parallel_for(trials_, threads_, fn);
  }

  // Convenience: materializes body(trial) into a vector in trial order.
  // T must be default-constructible and movable — and not bool, whose
  // bit-packed vector would make concurrent slot writes race on shared
  // bytes (use char for pass/fail tables).
  template <typename T, typename Body>
  std::vector<T> map(Body&& body) const {
    static_assert(!std::is_same_v<T, bool>,
                  "TrialBatch::map<bool> would race on vector<bool>'s packed "
                  "bits; map<char> instead");
    std::vector<T> out(static_cast<std::size_t>(trials_));
    run([&](int i) { out[static_cast<std::size_t>(i)] = body(i); });
    return out;
  }

 private:
  int trials_;
  int threads_;
};

}  // namespace ssmis
