#include "harness/suites.hpp"

#include "graph/generators.hpp"

namespace ssmis {

std::vector<NamedGraph> small_suite(std::uint64_t seed) {
  std::vector<NamedGraph> suite;
  suite.push_back({"K32", gen::complete(32)});
  suite.push_back({"path256", gen::path(256)});
  suite.push_back({"cycle255", gen::cycle(255)});
  suite.push_back({"star128", gen::star(128)});
  suite.push_back({"grid16x16", gen::grid(16, 16)});
  suite.push_back({"torus8x8", gen::torus(8, 8)});
  suite.push_back({"hypercube7", gen::hypercube(7)});
  suite.push_back({"tree256", gen::random_tree(256, seed)});
  suite.push_back({"binary255", gen::binary_tree(255)});
  suite.push_back({"caterpillar", gen::caterpillar(16, 8)});
  suite.push_back({"cliques8x16", gen::disjoint_cliques(8, 16)});
  suite.push_back({"gnp256-sparse", gen::gnp(256, 0.02, seed + 1)});
  suite.push_back({"gnp256-dense", gen::gnp(256, 0.3, seed + 2)});
  suite.push_back({"regular6", gen::random_regular(256, 6, seed + 3)});
  suite.push_back({"bipartite16x16", gen::complete_bipartite(16, 16)});
  suite.push_back({"barbell16", gen::barbell(16)});
  suite.push_back({"forest2", gen::forest_union(200, 2, seed + 4)});
  suite.push_back({"geometric", gen::random_geometric(256, 0.12, seed + 5)});
  suite.push_back({"smallworld", gen::small_world(256, 3, 0.1, seed + 6)});
  return suite;
}

std::vector<NamedGraph> medium_suite(std::uint64_t seed) {
  std::vector<NamedGraph> suite;
  suite.push_back({"K256", gen::complete(256)});
  suite.push_back({"tree2048", gen::random_tree(2048, seed)});
  suite.push_back({"grid45x45", gen::grid(45, 45)});
  suite.push_back({"gnp1024-p0.01", gen::gnp(1024, 0.01, seed + 1)});
  suite.push_back({"gnp1024-p0.1", gen::gnp(1024, 0.1, seed + 2)});
  suite.push_back({"cliques32x32", gen::disjoint_cliques(32, 32)});
  suite.push_back({"regular8-2048", gen::random_regular(2048, 8, seed + 3)});
  suite.push_back({"geometric2048", gen::random_geometric(2048, 0.04, seed + 4)});
  return suite;
}

std::vector<NamedGraph> corner_suite() {
  std::vector<NamedGraph> suite;
  suite.push_back({"empty", Graph::from_edges(0, {})});
  suite.push_back({"singleton", Graph::from_edges(1, {})});
  suite.push_back({"isolated5", Graph::from_edges(5, {})});
  suite.push_back({"K2", gen::complete(2)});
  suite.push_back({"K3", gen::complete(3)});
  suite.push_back({"two-components", Graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}})});
  suite.push_back({"star-with-isolated", Graph::from_edges(6, {{0, 1}, {0, 2}, {0, 3}})});
  return suite;
}

}  // namespace ssmis
