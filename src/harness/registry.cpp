#include "harness/registry.hpp"

#include <charconv>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "support/cli.hpp"

namespace ssmis {

namespace {

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const char* expected) {
  throw std::invalid_argument("protocol option " + key + ": expected " +
                              expected + ", got '" + value + "'");
}

std::string join(const std::vector<std::string>& items) {
  std::string out;
  for (const std::string& s : items) {
    if (!out.empty()) out += ", ";
    out += s;
  }
  return out;
}

}  // namespace

std::int64_t ProtocolParams::get_int(const std::string& key,
                                     std::int64_t fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  std::int64_t value = 0;
  const std::string& s = it->second;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size())
    bad_value(key, s, "integer");
  return value;
}

double ProtocolParams::get_double(const std::string& key, double fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  const std::string& s = it->second;
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') bad_value(key, s, "number");
  return value;
}

bool ProtocolParams::get_bool(const std::string& key, bool fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  const std::string& s = it->second;
  if (s.empty() || s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  bad_value(key, s, "boolean");
}

std::string ProtocolParams::get_string(const std::string& key,
                                       const std::string& fallback) const {
  auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

std::vector<std::string> ProtocolParams::keys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : options_) out.push_back(key);
  return out;
}

ProtocolRegistry& ProtocolRegistry::instance() {
  static ProtocolRegistry registry;  // construct-on-first-use: safe from
  return registry;                   // the pre-main static registrars
}

void ProtocolRegistry::add(std::string name, std::string description,
                           std::vector<std::string> options, Factory factory) {
  auto [it, inserted] = entries_.emplace(
      std::move(name),
      Entry{std::move(description), std::move(options), std::move(factory)});
  if (!inserted)
    throw std::logic_error("ProtocolRegistry: duplicate protocol '" +
                           it->first + "'");
}

bool ProtocolRegistry::contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

std::vector<std::string> ProtocolRegistry::names() const {
  std::vector<std::string> out;
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

std::string ProtocolRegistry::describe(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end())
    throw std::invalid_argument("ProtocolRegistry: unknown protocol '" + name +
                                "' (registered: " + join(names()) + ")");
  std::ostringstream oss;
  oss << name << " — " << it->second.description;
  if (!it->second.options.empty())
    oss << " (options: " << join(it->second.options) << ")";
  return oss.str();
}

const std::vector<std::string>& ProtocolRegistry::options(
    const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end())
    throw std::invalid_argument("ProtocolRegistry: unknown protocol '" + name +
                                "' (registered: " + join(names()) + ")");
  return it->second.options;
}

std::string ProtocolRegistry::describe_all() const {
  std::string out;
  for (const auto& [name, entry] : entries_) out += describe(name) + "\n";
  return out;
}

std::unique_ptr<Process> ProtocolRegistry::make(const std::string& name,
                                                const Graph& g,
                                                const ProtocolParams& params,
                                                std::uint64_t seed) const {
  auto it = entries_.find(name);
  if (it == entries_.end())
    throw std::invalid_argument("ProtocolRegistry: unknown protocol '" + name +
                                "' (registered: " + join(names()) + ")");
  // A typo'd option must not silently run the default configuration.
  for (const std::string& key : params.keys()) {
    bool known = false;
    for (const std::string& opt : it->second.options) known |= (opt == key);
    if (!known)
      throw std::invalid_argument(
          "protocol " + name + ": unknown option '" + key + "'" +
          (it->second.options.empty()
               ? " (this protocol takes no options)"
               : " (valid: " + join(it->second.options) + ")"));
  }
  return it->second.factory(g, params, seed);
}

ProtocolRegistrar::ProtocolRegistrar(std::string name, std::string description,
                                     std::vector<std::string> options,
                                     ProtocolRegistry::Factory factory) {
  ProtocolRegistry::instance().add(std::move(name), std::move(description),
                                   std::move(options), std::move(factory));
}

ProtocolParams protocol_params_from_args(const CliArgs& args, InitPattern init) {
  constexpr const char* kPrefix = "proto-";
  ProtocolParams params;
  params.init = init;
  for (const auto& [name, value] : args.options()) {
    if (name.rfind(kPrefix, 0) == 0) params.set(name.substr(6), value);
  }
  return params;
}

}  // namespace ssmis
