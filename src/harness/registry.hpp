// ProtocolRegistry: name -> factory for every runnable protocol.
//
// Each rule's translation unit self-registers a factory (a static
// `ProtocolRegistrar` constructed before main), so adding a workload is ONE
// file: the rule + its Process adapter + a registrar. The harness, the
// shared `--protocol` CLI flag, the registry test suite, and the bench
// near-stabilized rows all enumerate `names()` — a new protocol reaches all
// of them with zero scheduling or driver code.
//
// Factories are pure: factory(graph, params, seed) builds a fresh process
// whose entire trajectory is a function of (graph, params, seed). The
// registry-era drivers are bit-identical to the deleted enum-era ones; the
// golden fingerprints in tests/test_registry.cpp pin that equivalence.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/init.hpp"
#include "core/process.hpp"
#include "graph/graph.hpp"

namespace ssmis {

// Construction-time knobs shared by every factory: the initial pattern plus
// protocol-specific options as string key/values (set from `--proto-KEY=V`
// CLI flags or directly in code). Typed accessors throw
// std::invalid_argument on malformed values — a bad knob must never
// silently run the default.
class ProtocolParams {
 public:
  InitPattern init = InitPattern::kUniformRandom;

  void set(const std::string& key, const std::string& value) {
    options_[key] = value;
  }
  bool has(const std::string& key) const { return options_.count(key) > 0; }

  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  std::string get_string(const std::string& key, const std::string& fallback) const;

  // Keys present, ascending — the registry validates them against the
  // protocol's declared option list.
  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> options_;
};

class ProtocolRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Process>(
      const Graph& g, const ProtocolParams& params, std::uint64_t seed)>;

  // The process-wide registry (populated by the static registrars).
  static ProtocolRegistry& instance();

  // Registers a protocol. `options` lists the `--proto-*` keys the factory
  // understands; make() rejects anything else. Throws std::logic_error on a
  // duplicate name.
  void add(std::string name, std::string description,
           std::vector<std::string> options, Factory factory);

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;  // ascending

  // "name — description (options: ...)"; throws std::invalid_argument on an
  // unknown name.
  std::string describe(const std::string& name) const;

  // The `--proto-*` option keys the protocol declared (as registered, not
  // sorted); throws std::invalid_argument on an unknown name. Lets generic
  // drivers (the bench's fast-forward A/B rows) discover which protocols
  // accept a knob without hardcoding the list.
  const std::vector<std::string>& options(const std::string& name) const;

  // describe() of every protocol, one per line — the `--list-protocols`
  // output, shared by every binary.
  std::string describe_all() const;

  // Builds a fresh process. Throws std::invalid_argument on an unknown name
  // (listing the registered ones) or an option key the protocol did not
  // declare (listing the valid ones) — typos never run a default silently.
  std::unique_ptr<Process> make(const std::string& name, const Graph& g,
                                const ProtocolParams& params,
                                std::uint64_t seed) const;

 private:
  struct Entry {
    std::string description;
    std::vector<std::string> options;
    Factory factory;
  };
  std::map<std::string, Entry> entries_;
};

// `static ProtocolRegistrar reg{"name", "desc", {...options}, factory};`
// in the rule's TU registers the protocol before main runs.
struct ProtocolRegistrar {
  ProtocolRegistrar(std::string name, std::string description,
                    std::vector<std::string> options,
                    ProtocolRegistry::Factory factory);
};

class CliArgs;

// Shared CLI convention: every `--proto-KEY=VALUE` flag becomes
// params.set(KEY, VALUE) (the registry validates KEY against the chosen
// protocol's declared options at construction). `init` seeds the pattern.
ProtocolParams protocol_params_from_args(
    const CliArgs& args, InitPattern init = InitPattern::kUniformRandom);

// The one way drivers fold an initial pattern into factory params.
inline ProtocolParams with_init(ProtocolParams params, InitPattern init) {
  params.init = init;
  return params;
}

}  // namespace ssmis
