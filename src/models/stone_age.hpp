// The synchronous stone-age model (Emek-Wattenhofer 2013), in the form the
// paper uses: a constant number of beeping channels without collision
// detection. Each node beeps on at most one channel per round and receives,
// per channel, the single bit "did at least one neighbor beep on it?"
// (the one-two-many principle with bounding parameter b = 1).
//
// The 3-state MIS process runs in this model with 2 channels; the 3-color
// process (18 states) runs with one channel per state via full-state
// announcement. Both automata live in mis_automata.hpp.
//
// Simulation substrate: the network runs on ProcessEngine (core/engine.hpp)
// with one incrementally maintained counter per channel — the per-node heard
// mask is read off the counters instead of an O(m) neighborhood rescan, so a
// round costs O(|scheduled| + sum deg(nodes that changed state)). Automata
// that declare quiescent (state, heard-mask) pairs get sparse scheduling;
// others run dense with identical semantics.
#pragma once

#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "graph/graph.hpp"
#include "rng/coin_oracle.hpp"

namespace ssmis {

class StoneAgeAutomaton {
 public:
  virtual ~StoneAgeAutomaton() = default;

  virtual int num_states() const = 0;
  virtual int num_channels() const = 0;  // the communication alphabet size

  // Channel this state beeps on, or -1 for silence. (At most one channel:
  // the stone-age restriction.)
  virtual int emit(std::uint8_t state) const = 0;

  // `heard_mask` bit c is set iff >= 1 neighbor beeped on channel c.
  // `w_color` / `w_aux` are two independent 64-bit random words for the
  // round (MIS coin and auxiliary sub-process coin, respectively).
  virtual std::uint8_t next(std::uint8_t state, std::uint32_t heard_mask,
                            std::uint64_t w_color, std::uint64_t w_aux) const = 0;

  // Scheduling hint for the sparse engine: return true only if
  // next(state, heard_mask, w1, w2) == state for EVERY pair of coin words.
  // The default (never quiescent) is always sound: it means dense stepping.
  virtual bool quiescent(std::uint8_t /*state*/, std::uint32_t /*heard_mask*/) const {
    return false;
  }

  // Stable-periodic fast-forward hints (core/engine.hpp, FastForwardRule).
  // orbit(state, heard) declares that as long as the heard mask stays put,
  // the node's trajectory from this configuration is autonomous and
  // memoryless — its state at any later round is orbit_state evaluated on
  // that round's coin words alone — with the MIS-relevant projection
  // (in_mis, and the number of channels beeped on) constant along the
  // orbit, and with every state of the orbit non-quiescent. The default
  // (no orbits) is always sound: it means no fast-forward.
  virtual bool orbit(std::uint8_t /*state*/, std::uint32_t /*heard_mask*/) const {
    return false;
  }
  virtual std::uint8_t orbit_state(std::uint8_t state, std::uint32_t /*heard_mask*/,
                                   std::uint64_t /*w_color*/,
                                   std::uint64_t /*w_aux*/) const {
    return state;
  }

  virtual bool in_mis(std::uint8_t state) const = 0;
};

// Engine policy wrapping a StoneAgeAutomaton: counter j counts the
// neighbors currently beeping on channel j.
class StoneAgeRule {
 public:
  using Color = std::uint8_t;
  static constexpr bool kTracksStability = false;

  StoneAgeRule(const StoneAgeAutomaton* automaton, const CoinOracle& coins)
      : automaton_(automaton), coins_(coins) {}

  int num_colors() const { return automaton_->num_states(); }
  int num_counters() const { return automaton_->num_channels(); }
  Vertex contribution(std::uint8_t s, int j) const {
    return automaton_->emit(s) == j ? 1 : 0;
  }

  bool scheduled(std::uint8_t s, const Vertex* cnt) const {
    return !automaton_->quiescent(s, heard_mask(cnt));
  }

  std::uint8_t transition(Vertex u, std::uint8_t s, const Vertex* cnt,
                          std::int64_t t) const {
    return automaton_->next(s, heard_mask(cnt),
                            coins_.word(t, u, CoinTag::kMisColor),
                            coins_.word(t, u, CoinTag::kSwitchBit));
  }

  // Stable-periodic fast-forward (engine.hpp): forwards the automaton's
  // orbit declaration, drawing the same coin words transition() would, so
  // a materialized state is bit-identical to having stepped every round.
  static constexpr std::int64_t kOrbitPeriodHint = 1;
  bool fast_forwardable(std::uint8_t s, const Vertex* cnt) const {
    return automaton_->orbit(s, heard_mask(cnt));
  }
  std::uint8_t orbit_color(Vertex u, std::uint8_t s, const Vertex* cnt,
                           std::int64_t entry_round, std::int64_t now) const {
    if (now == entry_round) return s;
    return automaton_->orbit_state(s, heard_mask(cnt),
                                   coins_.word(now, u, CoinTag::kMisColor),
                                   coins_.word(now, u, CoinTag::kSwitchBit));
  }

  const StoneAgeAutomaton& automaton() const { return *automaton_; }

 private:
  std::uint32_t heard_mask(const Vertex* cnt) const {
    std::uint32_t mask = 0;
    const int k = automaton_->num_channels();
    for (int j = 0; j < k; ++j)
      if (cnt[j] > 0) mask |= (static_cast<std::uint32_t>(1) << j);
    return mask;
  }

  const StoneAgeAutomaton* automaton_;
  CoinOracle coins_;
};

class StoneAgeNetwork {
 public:
  using Engine = ProcessEngine<StoneAgeRule>;

  // Throws std::invalid_argument on init size/state range violations or if
  // the automaton declares more than 32 channels, and std::logic_error if
  // any state emits a channel outside [-1, num_channels).
  StoneAgeNetwork(const Graph& g, const StoneAgeAutomaton& automaton,
                  std::vector<std::uint8_t> init, const CoinOracle& coins);

  void step();
  std::int64_t round() const { return engine_.round(); }

  const std::vector<std::uint8_t>& states() const { return engine_.colors(); }
  std::uint8_t state(Vertex u) const { return engine_.color(u); }

  std::vector<Vertex> claimed_mis() const;

  // Messages are letters from a constant alphabet: log2(channels+1) bits
  // of information per node per round.
  std::int64_t total_transmissions() const { return total_transmissions_; }

  const Graph& graph() const { return engine_.graph(); }

  // Shards the decide phase across the shared thread pool (bit-identical
  // executions at any value; 1 = sequential).
  void set_shards(int shards) { engine_.set_shards(shards); }

  // Stable-periodic fast-forward toggle (on by default; engages only for
  // automata that declare orbits — bit-identical trajectories either way).
  void set_fast_forward(bool on) { engine_.set_fast_forward(on); }
  bool fast_forward_enabled() const { return engine_.fast_forward_enabled(); }
  Vertex num_fast_forwarded() const { return engine_.num_fast_forwarded(); }

  // Fault-injection / test hook: overwrite one node's automaton state in
  // O(deg(u)), keeping the channel counters consistent. Not a round.
  void force_state(Vertex u, std::uint8_t s) { engine_.force_color(u, s); }

  const Engine& engine() const { return engine_; }

 private:
  Engine engine_;
  std::int64_t total_transmissions_ = 0;
};

}  // namespace ssmis
