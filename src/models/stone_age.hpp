// The synchronous stone-age model (Emek-Wattenhofer 2013), in the form the
// paper uses: a constant number of beeping channels without collision
// detection. Each node beeps on at most one channel per round and receives,
// per channel, the single bit "did at least one neighbor beep on it?"
// (the one-two-many principle with bounding parameter b = 1).
//
// The 3-state MIS process runs in this model with 2 channels; the 3-color
// process (18 states) runs with one channel per state via full-state
// announcement. Both automata live in mis_automata.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "rng/coin_oracle.hpp"

namespace ssmis {

class StoneAgeAutomaton {
 public:
  virtual ~StoneAgeAutomaton() = default;

  virtual int num_states() const = 0;
  virtual int num_channels() const = 0;  // the communication alphabet size

  // Channel this state beeps on, or -1 for silence. (At most one channel:
  // the stone-age restriction.)
  virtual int emit(std::uint8_t state) const = 0;

  // `heard_mask` bit c is set iff >= 1 neighbor beeped on channel c.
  // `w_color` / `w_aux` are two independent 64-bit random words for the
  // round (MIS coin and auxiliary sub-process coin, respectively).
  virtual std::uint8_t next(std::uint8_t state, std::uint32_t heard_mask,
                            std::uint64_t w_color, std::uint64_t w_aux) const = 0;

  virtual bool in_mis(std::uint8_t state) const = 0;
};

class StoneAgeNetwork {
 public:
  // Throws std::invalid_argument on init size/state range violations or if
  // the automaton declares more than 32 channels.
  StoneAgeNetwork(const Graph& g, const StoneAgeAutomaton& automaton,
                  std::vector<std::uint8_t> init, const CoinOracle& coins);

  void step();
  std::int64_t round() const { return round_; }

  const std::vector<std::uint8_t>& states() const { return states_; }
  std::uint8_t state(Vertex u) const { return states_[static_cast<std::size_t>(u)]; }

  std::vector<Vertex> claimed_mis() const;

  // Messages are letters from a constant alphabet: log2(channels+1) bits
  // of information per node per round.
  std::int64_t total_transmissions() const { return total_transmissions_; }

  const Graph& graph() const { return *graph_; }

 private:
  const Graph* graph_;
  const StoneAgeAutomaton* automaton_;
  CoinOracle coins_;
  std::vector<std::uint8_t> states_;
  std::vector<std::int8_t> channel_;    // scratch: per-node emitted channel
  std::vector<std::uint32_t> heard_;    // scratch: per-node heard mask
  std::int64_t round_ = 0;
  std::int64_t total_transmissions_ = 0;
};

}  // namespace ssmis
