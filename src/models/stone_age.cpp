#include "models/stone_age.hpp"

#include <stdexcept>

namespace ssmis {

namespace {

const StoneAgeAutomaton& checked(const StoneAgeAutomaton& automaton) {
  if (automaton.num_channels() > 32)
    throw std::invalid_argument("StoneAgeNetwork: more than 32 channels");
  for (int s = 0; s < automaton.num_states(); ++s) {
    const int c = automaton.emit(static_cast<std::uint8_t>(s));
    if (c >= automaton.num_channels() || c < -1)
      throw std::logic_error("StoneAgeNetwork: automaton emitted bad channel");
  }
  return automaton;
}

}  // namespace

StoneAgeNetwork::StoneAgeNetwork(const Graph& g, const StoneAgeAutomaton& automaton,
                                 std::vector<std::uint8_t> init,
                                 const CoinOracle& coins)
    : engine_(g, std::move(init), StoneAgeRule(&checked(automaton), coins)) {}

void StoneAgeNetwork::step() {
  // Broadcast accounting against the frozen states (histogram sum over the
  // constant-size state alphabet): silent states transmit nothing. Raw
  // histogram entries: the sum over emitting states is exact under
  // fast-forward (orbits keep the number of channels beeped on constant —
  // part of the orbit contract in StoneAgeAutomaton), and staying off the
  // exact-state accessor keeps the per-round cost O(states), not
  // O(periodic set).
  const StoneAgeAutomaton& automaton = engine_.rule().automaton();
  for (int s = 0; s < automaton.num_states(); ++s) {
    if (automaton.emit(static_cast<std::uint8_t>(s)) >= 0)
      total_transmissions_ += engine_.raw_color_count(static_cast<std::uint8_t>(s));
  }
  engine_.step();
}

std::vector<Vertex> StoneAgeNetwork::claimed_mis() const {
  const StoneAgeAutomaton& automaton = engine_.rule().automaton();
  return engine_.select(
      [&](Vertex u) { return automaton.in_mis(state(u)); });
}

}  // namespace ssmis
