#include "models/stone_age.hpp"

#include <stdexcept>

namespace ssmis {

StoneAgeNetwork::StoneAgeNetwork(const Graph& g, const StoneAgeAutomaton& automaton,
                                 std::vector<std::uint8_t> init,
                                 const CoinOracle& coins)
    : graph_(&g), automaton_(&automaton), coins_(coins), states_(std::move(init)) {
  if (states_.size() != static_cast<std::size_t>(g.num_vertices()))
    throw std::invalid_argument("StoneAgeNetwork: init size != num_vertices");
  if (automaton.num_channels() > 32)
    throw std::invalid_argument("StoneAgeNetwork: more than 32 channels");
  for (std::uint8_t s : states_) {
    if (s >= automaton.num_states())
      throw std::invalid_argument("StoneAgeNetwork: init state out of range");
  }
  channel_.resize(states_.size());
  heard_.resize(states_.size());
}

void StoneAgeNetwork::step() {
  const std::int64_t t = round_ + 1;
  const Vertex n = graph_->num_vertices();
  // Broadcast phase.
  for (Vertex u = 0; u < n; ++u) {
    const int c = automaton_->emit(state(u));
    if (c >= automaton_->num_channels())
      throw std::logic_error("StoneAgeNetwork: automaton emitted bad channel");
    channel_[static_cast<std::size_t>(u)] = static_cast<std::int8_t>(c);
    if (c >= 0) ++total_transmissions_;
  }
  // Carrier-sense per channel, per node (neighbors only; no self-hearing,
  // no collision detection: two beeping neighbors read the same as one).
  for (Vertex u = 0; u < n; ++u) {
    std::uint32_t mask = 0;
    for (Vertex v : graph_->neighbors(u)) {
      const int c = channel_[static_cast<std::size_t>(v)];
      if (c >= 0) mask |= (static_cast<std::uint32_t>(1) << c);
    }
    heard_[static_cast<std::size_t>(u)] = mask;
  }
  // Transition phase.
  for (Vertex u = 0; u < n; ++u) {
    states_[static_cast<std::size_t>(u)] = automaton_->next(
        state(u), heard_[static_cast<std::size_t>(u)],
        coins_.word(t, u, CoinTag::kMisColor), coins_.word(t, u, CoinTag::kSwitchBit));
  }
  ++round_;
}

std::vector<Vertex> StoneAgeNetwork::claimed_mis() const {
  std::vector<Vertex> out;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u)
    if (automaton_->in_mis(state(u))) out.push_back(u);
  return out;
}

}  // namespace ssmis
