// The paper's MIS algorithms expressed as communication-model automata.
//
//  * TwoStateBeepAutomaton  — Definition 4 in the beeping model with sender
//    collision detection: black nodes beep, white nodes listen; 2 states,
//    1 random bit per round.
//  * ThreeStateStoneAgeAutomaton — Definition 5 in the stone-age model:
//    2 channels ("I am black0" / "I am black1"), no collision detection;
//    3 states, 1 random bit per round.
//  * ThreeColorStoneAgeAutomaton — Definition 28 + the randomized
//    logarithmic switch, via full-state announcement on 18 channels;
//    18 states, 1 + 7 random bits per round (color coin + switch coin).
//
// Each automaton is constructed so that, when driven by the corresponding
// network simulator with the same CoinOracle seed, the execution is
// bit-identical to the direct process simulation. The test suite asserts
// this round-by-round.
#pragma once

#include <cstdint>

#include "core/color.hpp"
#include "models/beeping.hpp"
#include "models/stone_age.hpp"

namespace ssmis {

class TwoStateBeepAutomaton final : public BeepingAutomaton {
 public:
  static constexpr std::uint8_t kWhite = 0;
  static constexpr std::uint8_t kBlack = 1;

  int num_states() const override { return 2; }
  BeepAction emit(std::uint8_t state) const override {
    return state == kBlack ? BeepAction::kBeep : BeepAction::kListen;
  }
  std::uint8_t next(std::uint8_t state, bool heard,
                    std::uint64_t coin_word) const override;
  // Non-active nodes keep their state for every coin word — this is what
  // lets the engine keep only the Definition 4 active set on its worklist.
  bool quiescent(std::uint8_t state, bool heard) const override {
    return (state == kBlack) ? !heard : heard;
  }
  bool in_mis(std::uint8_t state) const override { return state == kBlack; }

  static std::uint8_t encode(Color2 c) {
    return c == Color2::kBlack ? kBlack : kWhite;
  }
  static Color2 decode(std::uint8_t s) {
    return s == kBlack ? Color2::kBlack : Color2::kWhite;
  }
};

class ThreeStateStoneAgeAutomaton final : public StoneAgeAutomaton {
 public:
  // State encoding matches Color3's underlying values.
  static constexpr std::uint8_t kWhite = 0;
  static constexpr std::uint8_t kBlack0 = 1;
  static constexpr std::uint8_t kBlack1 = 2;
  static constexpr int kChannelBlack0 = 0;
  static constexpr int kChannelBlack1 = 1;

  int num_states() const override { return 3; }
  int num_channels() const override { return 2; }
  int emit(std::uint8_t state) const override;
  std::uint8_t next(std::uint8_t state, std::uint32_t heard_mask,
                    std::uint64_t w_color, std::uint64_t w_aux) const override;
  // The only fixed point of Definition 5 is a covered white vertex; black
  // states always re-randomize their black1/black0 representation.
  bool quiescent(std::uint8_t state, std::uint32_t heard_mask) const override {
    return state == kWhite &&
           (heard_mask & ((1u << kChannelBlack0) | (1u << kChannelBlack1))) != 0;
  }
  // A black node hearing silence is a stable black: it re-randomizes
  // black1/black0 off its color coin alone, forever, and every neighbor is
  // a silent white (a black neighbor would beep into our mask). The orbit
  // is memoryless and its projection — in-MIS, beeping on exactly one
  // channel — is constant; which channel it beeps on is invisible to the
  // silent whites around it (they only test "some black channel heard").
  bool orbit(std::uint8_t state, std::uint32_t heard_mask) const override {
    return state != kWhite && heard_mask == 0;
  }
  std::uint8_t orbit_state(std::uint8_t /*state*/, std::uint32_t /*heard_mask*/,
                           std::uint64_t w_color,
                           std::uint64_t /*w_aux*/) const override {
    return (w_color >> 63) != 0 ? kBlack1 : kBlack0;
  }
  bool in_mis(std::uint8_t state) const override { return state != kWhite; }

  static std::uint8_t encode(Color3 c) { return static_cast<std::uint8_t>(c); }
  static Color3 decode(std::uint8_t s) { return static_cast<Color3>(s); }
};

// 18 states = (color in {white, black, gray}) x (switch level in 0..5);
// channel = state id (full-state announcement, one channel per round).
class ThreeColorStoneAgeAutomaton final : public StoneAgeAutomaton {
 public:
  // zeta = zeta_num / 2^zeta_log2_den must match the process's switch.
  explicit ThreeColorStoneAgeAutomaton(std::uint64_t zeta_num = 1,
                                       unsigned zeta_log2_den = 7)
      : zeta_num_(zeta_num), zeta_log2_den_(zeta_log2_den) {}

  int num_states() const override { return 18; }
  int num_channels() const override { return 18; }
  int emit(std::uint8_t state) const override { return state; }
  std::uint8_t next(std::uint8_t state, std::uint32_t heard_mask,
                    std::uint64_t w_color, std::uint64_t w_aux) const override;
  bool in_mis(std::uint8_t state) const override {
    return decode_color(state) == ColorG::kBlack;
  }

  static std::uint8_t encode(ColorG color, int level) {
    return static_cast<std::uint8_t>(level * 3 + static_cast<int>(color));
  }
  static ColorG decode_color(std::uint8_t state) {
    return static_cast<ColorG>(state % 3);
  }
  static int decode_level(std::uint8_t state) { return state / 3; }

 private:
  std::uint64_t zeta_num_;
  unsigned zeta_log2_den_;
};

}  // namespace ssmis
