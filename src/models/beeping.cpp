#include "models/beeping.hpp"

#include <stdexcept>

namespace ssmis {

BeepingNetwork::BeepingNetwork(const Graph& g, const BeepingAutomaton& automaton,
                               std::vector<std::uint8_t> init,
                               const CoinOracle& coins,
                               bool sender_collision_detection)
    : graph_(&g),
      automaton_(&automaton),
      coins_(coins),
      states_(std::move(init)),
      sender_cd_(sender_collision_detection) {
  if (states_.size() != static_cast<std::size_t>(g.num_vertices()))
    throw std::invalid_argument("BeepingNetwork: init size != num_vertices");
  for (std::uint8_t s : states_) {
    if (s >= automaton.num_states())
      throw std::invalid_argument("BeepingNetwork: init state out of range");
  }
  beeping_.resize(states_.size());
}

void BeepingNetwork::step() {
  const std::int64_t t = round_ + 1;
  const Vertex n = graph_->num_vertices();
  beeps_last_round_ = 0;
  // Broadcast phase: who beeps, from frozen states.
  for (Vertex u = 0; u < n; ++u) {
    const bool beep = automaton_->emit(state(u)) == BeepAction::kBeep;
    beeping_[static_cast<std::size_t>(u)] = beep ? 1 : 0;
    if (beep) ++beeps_last_round_;
  }
  total_beeps_ += beeps_last_round_;
  // Feedback + transition phase. The only information available to a node
  // is the carrier-sense bit over its *neighbors* (full-duplex: available
  // to beeping nodes too).
  for (Vertex u = 0; u < n; ++u) {
    bool heard = false;
    // Without sender collision detection, a beeping node's radio is busy
    // transmitting: it receives nothing this round.
    if (sender_cd_ || !beeping_[static_cast<std::size_t>(u)]) {
      for (Vertex v : graph_->neighbors(u)) {
        if (beeping_[static_cast<std::size_t>(v)]) {
          heard = true;
          break;
        }
      }
    }
    if (heard && loss_probability_ > 0.0 &&
        coins_.bernoulli(t, u, CoinTag::kNoise, loss_probability_)) {
      heard = false;  // the carrier-sense bit was lost this round
    }
    states_[static_cast<std::size_t>(u)] = automaton_->next(
        state(u), heard, coins_.word(t, u, CoinTag::kMisColor));
  }
  ++round_;
}

void BeepingNetwork::set_loss_probability(double p) {
  if (p < 0.0 || p >= 1.0)
    throw std::invalid_argument("set_loss_probability: need p in [0, 1)");
  loss_probability_ = p;
}

std::vector<Vertex> BeepingNetwork::claimed_mis() const {
  std::vector<Vertex> out;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u)
    if (automaton_->in_mis(state(u))) out.push_back(u);
  return out;
}

}  // namespace ssmis
