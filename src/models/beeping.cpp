#include "models/beeping.hpp"

#include <stdexcept>

namespace ssmis {

BeepingNetwork::BeepingNetwork(const Graph& g, const BeepingAutomaton& automaton,
                               std::vector<std::uint8_t> init,
                               const CoinOracle& coins,
                               bool sender_collision_detection)
    : engine_(g, std::move(init),
              BeepingRule(&automaton, coins, sender_collision_detection)) {}

void BeepingNetwork::step() {
  // Broadcast accounting against the frozen states: the number of beeping
  // nodes is a histogram sum over the (constant-size) state alphabet.
  const BeepingAutomaton& automaton = engine_.rule().automaton();
  Vertex beeps = 0;
  for (int s = 0; s < automaton.num_states(); ++s) {
    if (automaton.emit(static_cast<std::uint8_t>(s)) == BeepAction::kBeep)
      beeps += engine_.color_count(static_cast<std::uint8_t>(s));
  }
  beeps_last_round_ = beeps;
  total_beeps_ += beeps;
  engine_.step();
}

void BeepingNetwork::set_loss_probability(double p) {
  if (p < 0.0 || p >= 1.0)
    throw std::invalid_argument("set_loss_probability: need p in [0, 1)");
  engine_.rule().set_loss_probability(p);
  // The loss probability is part of the scheduling predicate (a lossy
  // carrier-sense bit can wake otherwise-quiescent states).
  engine_.notify_rule_changed();
}

std::vector<Vertex> BeepingNetwork::claimed_mis() const {
  const BeepingAutomaton& automaton = engine_.rule().automaton();
  return engine_.select(
      [&](Vertex u) { return automaton.in_mis(state(u)); });
}

}  // namespace ssmis
