#include "models/mis_automata.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "core/init.hpp"
#include "core/process.hpp"
#include "core/verify.hpp"
#include "harness/registry.hpp"

namespace ssmis {

std::uint8_t TwoStateBeepAutomaton::next(std::uint8_t state, bool heard,
                                         std::uint64_t coin_word) const {
  // heard == "some neighbor is black". Active: black with a black neighbor
  // (detected via sender collision detection) or white with none.
  const bool active = (state == kBlack) ? heard : !heard;
  if (!active) return state;
  return (coin_word >> 63) != 0 ? kBlack : kWhite;
}

int ThreeStateStoneAgeAutomaton::emit(std::uint8_t state) const {
  switch (state) {
    case kBlack0: return kChannelBlack0;
    case kBlack1: return kChannelBlack1;
    default: return -1;  // white is silent
  }
}

std::uint8_t ThreeStateStoneAgeAutomaton::next(std::uint8_t state,
                                               std::uint32_t heard_mask,
                                               std::uint64_t w_color,
                                               std::uint64_t /*w_aux*/) const {
  const bool heard_black0 = (heard_mask & (1u << kChannelBlack0)) != 0;
  const bool heard_black1 = (heard_mask & (1u << kChannelBlack1)) != 0;
  const bool heard_black = heard_black0 || heard_black1;
  const bool active = state == kBlack1 ||
                      (state == kBlack0 && !heard_black1) ||
                      (state == kWhite && !heard_black);
  if (active) return (w_color >> 63) != 0 ? kBlack1 : kBlack0;
  if (state == kBlack0) return kWhite;  // black0 with a black1 neighbor
  return state;                          // white with a black neighbor
}

std::uint8_t ThreeColorStoneAgeAutomaton::next(std::uint8_t state,
                                               std::uint32_t heard_mask,
                                               std::uint64_t w_color,
                                               std::uint64_t w_aux) const {
  const ColorG color = decode_color(state);
  const int level = decode_level(state);

  // Decode the announcement channels: which (color, level) combinations are
  // present among neighbors.
  bool black_neighbor = false;
  int max_heard_level = -1;
  for (int s = 0; s < 18; ++s) {
    if ((heard_mask & (1u << s)) == 0) continue;
    if (decode_color(static_cast<std::uint8_t>(s)) == ColorG::kBlack)
      black_neighbor = true;
    max_heard_level = std::max(max_heard_level, decode_level(static_cast<std::uint8_t>(s)));
  }

  // Color sub-process (Definition 28), using sigma_{t-1} = (own level <= 2).
  ColorG next_color = color;
  if (color == ColorG::kBlack && black_neighbor) {
    next_color = (w_color >> 63) != 0 ? ColorG::kBlack : ColorG::kGray;
  } else if (color == ColorG::kWhite && !black_neighbor) {
    next_color = (w_color >> 63) != 0 ? ColorG::kBlack : ColorG::kWhite;
  } else if (color == ColorG::kGray && level <= 2) {
    next_color = ColorG::kWhite;
  }

  // Switch sub-process (Definition 26 phase clock, top level 5).
  int next_level;
  bool reset_to_top = false;
  if (level == 5) {
    const bool b_is_zero =
        (w_aux >> (64 - zeta_log2_den_)) < zeta_num_;  // P[b=0] = zeta
    reset_to_top = !b_is_zero;
  }
  if (level == 0) reset_to_top = true;
  if (reset_to_top) {
    next_level = 5;
  } else {
    next_level = std::max(level, max_heard_level) - 1;
  }
  return encode(next_color, next_level);
}

namespace {

// --- registry adapters ------------------------------------------------------
//
// The network protocols run the MIS automata through the communication-model
// simulators. The engine does not track MIS stability for generic automata
// (kTracksStability is off), so the adapters read the fixed point off the
// engine worklist instead: a stabilized configuration leaves only benign
// vertices scheduled, and every scheduled vertex is inspected in
// O(|worklist|) — the same order as the round cost itself. snapshot()
// reports B_t (in-MIS states) and the scheduled-set size as the activity
// column; the coverage aggregates (I_t, V_t) are not tracked and read 0.

// 2-state MIS as a beeping automaton (sender collision detection).
class BeepingMisProcess final : public Process {
 public:
  BeepingMisProcess(const Graph& g, std::vector<std::uint8_t> init,
                    const CoinOracle& coins, bool sender_cd, double loss)
      : net_(g, automaton_, std::move(init), coins, sender_cd) {
    // Unconditional: set_loss_probability validates the range, so a bad
    // --proto-loss (negative, NaN, >= 1) aborts instead of silently
    // running lossless.
    net_.set_loss_probability(loss);
  }

  const Graph& graph() const override { return net_.graph(); }
  void step() override { net_.step(); }
  std::int64_t round() const override { return net_.round(); }

  // With sender collision detection, every MIS violation keeps its vertex
  // scheduled, so lossless runs read stabilization off the worklist size
  // (O(1)) and lossy runs scan the worklist (covered whites stay scheduled
  // because a lost carrier-sense bit could wake them — any scheduled black,
  // or scheduled white hearing no beep, is a violation). WITHOUT sender CD
  // a conflicting black never hears its rival and falls off the worklist
  // while the configuration is invalid, so that (demonstration) mode pays
  // an O(n) scan per check instead of misreporting a stuck execution as
  // stabilized.
  bool stabilized() const override {
    const auto& e = net_.engine();
    if (!net_.sender_collision_detection()) {
      for (Vertex u = 0; u < graph().num_vertices(); ++u) {
        const bool black = net_.state(u) == TwoStateBeepAutomaton::kBlack;
        if (black ? e.counter(u, 0) > 0 : e.counter(u, 0) == 0) return false;
      }
      return true;
    }
    if (net_.loss_probability() == 0.0) return e.num_scheduled() == 0;
    for (Vertex u : e.worklist().items()) {
      if (net_.state(u) == TwoStateBeepAutomaton::kBlack || e.counter(u, 0) == 0)
        return false;
    }
    return true;
  }

  RoundStats snapshot() const override {
    RoundStats s;
    s.round = net_.round();
    s.black = net_.engine().color_count(TwoStateBeepAutomaton::kBlack);
    s.active = net_.engine().num_scheduled();
    return s;
  }

  std::vector<Vertex> output_set() const override { return net_.claimed_mis(); }

  // u is covered by a stable black (a beeping node hearing silence).
  bool settled(Vertex u) const override {
    const auto& e = net_.engine();
    auto stable_black = [&](Vertex v) {
      return net_.state(v) == TwoStateBeepAutomaton::kBlack && e.counter(v, 0) == 0;
    };
    if (stable_black(u)) return true;
    bool covered = false;
    graph().for_each_neighbor(u, [&](Vertex v) {
      covered = stable_black(v);
      return !covered;
    });
    return covered;
  }

  void verify_output() const override {
    verify_mis_output(graph(), net_.claimed_mis());
  }

  void force_state(Vertex u, std::uint8_t raw) override {
    net_.force_state(u, raw);
  }
  std::uint8_t raw_state(Vertex u) const override { return net_.state(u); }
  int num_colors() const override { return net_.engine().num_colors(); }
  void set_shards(int shards) override { net_.set_shards(shards); }
  void set_fast_forward(bool on) override { net_.set_fast_forward(on); }

 private:
  TwoStateBeepAutomaton automaton_;  // must outlive (and precede) net_
  BeepingNetwork net_;
};

// 3-state MIS as a 2-channel stone-age automaton (no collision detection).
class StoneAgeMisProcess final : public Process {
 public:
  StoneAgeMisProcess(const Graph& g, std::vector<std::uint8_t> init,
                     const CoinOracle& coins)
      : net_(g, automaton_, std::move(init), coins) {}

  const Graph& graph() const override { return net_.graph(); }
  void step() override { net_.step(); }
  std::int64_t round() const override { return net_.round(); }

  // Stable blacks stay scheduled forever (they re-randomize black1/black0
  // by design), so the worklist never empties: stabilized ⟺ every
  // scheduled vertex is a black hearing no black neighbor (whites off the
  // worklist are covered by construction).
  bool stabilized() const override {
    const auto& e = net_.engine();
    for (Vertex u : e.worklist().items()) {
      if (net_.state(u) == ThreeStateStoneAgeAutomaton::kWhite) return false;
      if (e.counter(u, 0) + e.counter(u, 1) != 0) return false;
    }
    return true;
  }

  RoundStats snapshot() const override {
    RoundStats s;
    s.round = net_.round();
    // Raw histogram sum: exact under fast-forward (parked orbits stay
    // within {black0, black1}) and O(1) per round.
    s.black = net_.engine().raw_color_count(ThreeStateStoneAgeAutomaton::kBlack0) +
              net_.engine().raw_color_count(ThreeStateStoneAgeAutomaton::kBlack1);
    s.active = net_.engine().num_scheduled();
    return s;
  }

  std::vector<Vertex> output_set() const override { return net_.claimed_mis(); }

  bool settled(Vertex u) const override {
    const auto& e = net_.engine();
    auto stable_black = [&](Vertex v) {
      return net_.state(v) != ThreeStateStoneAgeAutomaton::kWhite &&
             e.counter(v, 0) + e.counter(v, 1) == 0;
    };
    if (stable_black(u)) return true;
    bool covered = false;
    graph().for_each_neighbor(u, [&](Vertex v) {
      covered = stable_black(v);
      return !covered;
    });
    return covered;
  }

  void verify_output() const override {
    verify_mis_output(graph(), net_.claimed_mis());
  }

  void force_state(Vertex u, std::uint8_t raw) override {
    net_.force_state(u, raw);
  }
  std::uint8_t raw_state(Vertex u) const override { return net_.state(u); }
  int num_colors() const override { return net_.engine().num_colors(); }
  void set_shards(int shards) override { net_.set_shards(shards); }
  void set_fast_forward(bool on) override { net_.set_fast_forward(on); }

 private:
  ThreeStateStoneAgeAutomaton automaton_;  // must outlive (and precede) net_
  StoneAgeNetwork net_;
};

const ProtocolRegistrar kBeepingProtocol{
    "beeping",
    "the 2-state MIS automaton in the beeping model (1 bit/round; "
    "--proto-sender-cd=0 disables sender collision detection, "
    "--proto-loss sets the carrier-sense loss rate, "
    "--proto-fast-forward=0 disables stable-periodic fast-forward — a no-op "
    "A/B knob here, the automaton declares no orbits); lossless runs are "
    "bit-identical to 2state",
    {"sender-cd", "loss", "fast-forward"},
    [](const Graph& g, const ProtocolParams& params, std::uint64_t seed) {
      const CoinOracle coins(seed);
      const auto c2 = make_init2(g, params.init, coins);
      std::vector<std::uint8_t> init(c2.size());
      for (std::size_t i = 0; i < c2.size(); ++i)
        init[i] = TwoStateBeepAutomaton::encode(c2[i]);
      auto p = std::make_unique<BeepingMisProcess>(
          g, std::move(init), coins, params.get_bool("sender-cd", true),
          params.get_double("loss", 0.0));
      p->set_fast_forward(params.get_bool("fast-forward", true));
      return p;
    }};

const ProtocolRegistrar kStoneAgeProtocol{
    "stoneage",
    "the 3-state MIS automaton in the synchronous stone-age model "
    "(2 channels, no collision detection; --proto-fast-forward=0 disables "
    "stable-periodic fast-forward); bit-identical to 3state",
    {"fast-forward"},
    [](const Graph& g, const ProtocolParams& params, std::uint64_t seed) {
      const CoinOracle coins(seed);
      const auto c3 = make_init3(g, params.init, coins);
      std::vector<std::uint8_t> init(c3.size());
      for (std::size_t i = 0; i < c3.size(); ++i)
        init[i] = ThreeStateStoneAgeAutomaton::encode(c3[i]);
      auto p = std::make_unique<StoneAgeMisProcess>(g, std::move(init), coins);
      p->set_fast_forward(params.get_bool("fast-forward", true));
      return p;
    }};

}  // namespace

}  // namespace ssmis
