#include "models/mis_automata.hpp"

#include <algorithm>

namespace ssmis {

std::uint8_t TwoStateBeepAutomaton::next(std::uint8_t state, bool heard,
                                         std::uint64_t coin_word) const {
  // heard == "some neighbor is black". Active: black with a black neighbor
  // (detected via sender collision detection) or white with none.
  const bool active = (state == kBlack) ? heard : !heard;
  if (!active) return state;
  return (coin_word >> 63) != 0 ? kBlack : kWhite;
}

int ThreeStateStoneAgeAutomaton::emit(std::uint8_t state) const {
  switch (state) {
    case kBlack0: return kChannelBlack0;
    case kBlack1: return kChannelBlack1;
    default: return -1;  // white is silent
  }
}

std::uint8_t ThreeStateStoneAgeAutomaton::next(std::uint8_t state,
                                               std::uint32_t heard_mask,
                                               std::uint64_t w_color,
                                               std::uint64_t /*w_aux*/) const {
  const bool heard_black0 = (heard_mask & (1u << kChannelBlack0)) != 0;
  const bool heard_black1 = (heard_mask & (1u << kChannelBlack1)) != 0;
  const bool heard_black = heard_black0 || heard_black1;
  const bool active = state == kBlack1 ||
                      (state == kBlack0 && !heard_black1) ||
                      (state == kWhite && !heard_black);
  if (active) return (w_color >> 63) != 0 ? kBlack1 : kBlack0;
  if (state == kBlack0) return kWhite;  // black0 with a black1 neighbor
  return state;                          // white with a black neighbor
}

std::uint8_t ThreeColorStoneAgeAutomaton::next(std::uint8_t state,
                                               std::uint32_t heard_mask,
                                               std::uint64_t w_color,
                                               std::uint64_t w_aux) const {
  const ColorG color = decode_color(state);
  const int level = decode_level(state);

  // Decode the announcement channels: which (color, level) combinations are
  // present among neighbors.
  bool black_neighbor = false;
  int max_heard_level = -1;
  for (int s = 0; s < 18; ++s) {
    if ((heard_mask & (1u << s)) == 0) continue;
    if (decode_color(static_cast<std::uint8_t>(s)) == ColorG::kBlack)
      black_neighbor = true;
    max_heard_level = std::max(max_heard_level, decode_level(static_cast<std::uint8_t>(s)));
  }

  // Color sub-process (Definition 28), using sigma_{t-1} = (own level <= 2).
  ColorG next_color = color;
  if (color == ColorG::kBlack && black_neighbor) {
    next_color = (w_color >> 63) != 0 ? ColorG::kBlack : ColorG::kGray;
  } else if (color == ColorG::kWhite && !black_neighbor) {
    next_color = (w_color >> 63) != 0 ? ColorG::kBlack : ColorG::kWhite;
  } else if (color == ColorG::kGray && level <= 2) {
    next_color = ColorG::kWhite;
  }

  // Switch sub-process (Definition 26 phase clock, top level 5).
  int next_level;
  bool reset_to_top = false;
  if (level == 5) {
    const bool b_is_zero =
        (w_aux >> (64 - zeta_log2_den_)) < zeta_num_;  // P[b=0] = zeta
    reset_to_top = !b_is_zero;
  }
  if (level == 0) reset_to_top = true;
  if (reset_to_top) {
    next_level = 5;
  } else {
    next_level = std::max(level, max_heard_level) - 1;
  }
  return encode(next_color, next_level);
}

}  // namespace ssmis
