// The beeping model with sender collision detection (a.k.a. full-duplex),
// as in Cornejo-Kuhn 2010 / Afek et al. 2013 — the communication model the
// 2-state MIS process targets (Section 1 of the paper).
//
// Per synchronous round, every node either beeps or listens, driven by a
// finite-state automaton with no IDs and no knowledge of the graph. The
// single bit a node receives is "did at least one *neighbor* beep?". Sender
// collision detection means a beeping node receives this bit too.
//
// The network simulator is generic over the automaton; `mis_automata.hpp`
// provides the 2-state MIS automaton, and the test suite proves its
// execution bit-identical to the direct TwoStateMIS simulation.
//
// Simulation substrate: the network runs on the same ProcessEngine as the
// direct processes (core/engine.hpp) — states are engine colors and the
// carrier-sense bit is an incrementally maintained beeping-neighbor counter,
// so a round costs O(|scheduled| + sum deg(nodes that changed state))
// instead of an O(n + m) rescan. Automata that declare quiescent states
// (see `BeepingAutomaton::quiescent`) get sparse scheduling; others run
// dense with identical semantics, since every coin is a pure function of
// (seed, round, node, tag).
#pragma once

#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "graph/graph.hpp"
#include "rng/coin_oracle.hpp"

namespace ssmis {

enum class BeepAction : std::uint8_t { kListen = 0, kBeep = 1 };

// Node behavior. States are opaque bytes; the automaton interprets them.
class BeepingAutomaton {
 public:
  virtual ~BeepingAutomaton() = default;

  virtual int num_states() const = 0;

  // What the node does this round, as a function of its state only.
  virtual BeepAction emit(std::uint8_t state) const = 0;

  // Transition at the end of the round. `heard` is the feedback bit (some
  // neighbor beeped); `coin_word` is the node's private randomness for the
  // round (64 uniform bits).
  virtual std::uint8_t next(std::uint8_t state, bool heard,
                            std::uint64_t coin_word) const = 0;

  // Scheduling hint for the sparse engine: return true only if
  // next(state, heard, w) == state for EVERY coin word w. The default
  // (never quiescent) is always sound — it merely keeps every node on the
  // worklist, i.e. dense stepping.
  virtual bool quiescent(std::uint8_t /*state*/, bool /*heard*/) const {
    return false;
  }

  // Interpretation hook: does this state claim MIS membership?
  virtual bool in_mis(std::uint8_t state) const = 0;
};

// Engine policy wrapping a BeepingAutomaton: one counter (beeping
// neighbors), carrier-sense/loss resolution in the transition.
class BeepingRule {
 public:
  using Color = std::uint8_t;
  static constexpr bool kTracksStability = false;

  BeepingRule(const BeepingAutomaton* automaton, const CoinOracle& coins,
              bool sender_collision_detection)
      : automaton_(automaton), coins_(coins), sender_cd_(sender_collision_detection) {}

  int num_colors() const { return automaton_->num_states(); }
  int num_counters() const { return 1; }
  Vertex contribution(std::uint8_t s, int) const {
    return automaton_->emit(s) == BeepAction::kBeep ? 1 : 0;
  }

  // Scheduled unless the state is quiescent for every carrier-sense bit the
  // node could receive this round (loss can only turn heard -> silence).
  bool scheduled(std::uint8_t s, const Vertex* cnt) const {
    const bool heard = effective_heard(s, cnt);
    if (!automaton_->quiescent(s, heard)) return true;
    return heard && loss_probability_ > 0.0 && !automaton_->quiescent(s, false);
  }

  std::uint8_t transition(Vertex u, std::uint8_t s, const Vertex* cnt,
                          std::int64_t t) const {
    bool heard = effective_heard(s, cnt);
    if (heard && loss_probability_ > 0.0 &&
        coins_.bernoulli(t, u, CoinTag::kNoise, loss_probability_)) {
      heard = false;  // the carrier-sense bit was lost this round
    }
    return automaton_->next(s, heard, coins_.word(t, u, CoinTag::kMisColor));
  }

  const BeepingAutomaton& automaton() const { return *automaton_; }
  bool sender_collision_detection() const { return sender_cd_; }
  double loss_probability() const { return loss_probability_; }
  void set_loss_probability(double p) { loss_probability_ = p; }

 private:
  bool effective_heard(std::uint8_t s, const Vertex* cnt) const {
    // Without sender collision detection, a beeping node's radio is busy
    // transmitting: it receives nothing this round.
    if (!sender_cd_ && automaton_->emit(s) == BeepAction::kBeep) return false;
    return cnt[0] > 0;
  }

  const BeepingAutomaton* automaton_;
  CoinOracle coins_;
  bool sender_cd_;
  double loss_probability_ = 0.0;
};

class BeepingNetwork {
 public:
  using Engine = ProcessEngine<BeepingRule>;

  // The automaton must outlive the network. Throws std::invalid_argument on
  // init size mismatch or states outside [0, num_states).
  //
  // `sender_collision_detection` selects the model variant: with it (the
  // paper's full-duplex assumption), a beeping node also receives the
  // carrier-sense bit; without it, a beeping node learns nothing. The
  // 2-state MIS algorithm provably needs the former — two adjacent black
  // nodes could otherwise never detect their conflict (see the
  // NoCollisionDetection tests for the stuck execution).
  BeepingNetwork(const Graph& g, const BeepingAutomaton& automaton,
                 std::vector<std::uint8_t> init, const CoinOracle& coins,
                 bool sender_collision_detection = true);

  void step();
  std::int64_t round() const { return engine_.round(); }

  const std::vector<std::uint8_t>& states() const { return engine_.colors(); }
  std::uint8_t state(Vertex u) const { return engine_.color(u); }

  std::vector<Vertex> claimed_mis() const;

  // Communication accounting for experiment E13: every node sends at most
  // one bit per round (beep or silence).
  std::int64_t total_beeps() const { return total_beeps_; }
  Vertex beeps_last_round() const { return beeps_last_round_; }

  const Graph& graph() const { return engine_.graph(); }
  bool sender_collision_detection() const {
    return engine_.rule().sender_collision_detection();
  }

  // Lossy-channel robustness knob: each round, each receiver's carrier-sense
  // bit is independently suppressed (heard -> silence) with this probability
  // — modeling fading/interference misses. The MIS processes tolerate this:
  // losses can re-activate settled vertices, but self-stabilization pulls
  // the system back (see exp_lossy). Throws std::invalid_argument outside
  // [0, 1).
  void set_loss_probability(double p);
  double loss_probability() const { return engine_.rule().loss_probability(); }

  // Shards the decide phase across the shared thread pool (bit-identical
  // executions at any value; 1 = sequential).
  void set_shards(int shards) { engine_.set_shards(shards); }

  // Stable-periodic fast-forward toggle: accepted for A/B symmetry with
  // the other networks, but a no-op here — BeepingAutomaton declares no
  // orbits (the 2-state family's stable states are quiescent, i.e. already
  // off the worklist), so the engine compiles the machinery away.
  void set_fast_forward(bool on) { engine_.set_fast_forward(on); }
  bool fast_forward_enabled() const { return engine_.fast_forward_enabled(); }

  // Fault-injection / test hook: overwrite one node's automaton state in
  // O(deg(u)), keeping the beep counters consistent. Not a round.
  void force_state(Vertex u, std::uint8_t s) { engine_.force_color(u, s); }

  const Engine& engine() const { return engine_; }

 private:
  Engine engine_;
  std::int64_t total_beeps_ = 0;
  Vertex beeps_last_round_ = 0;
};

}  // namespace ssmis
