// The beeping model with sender collision detection (a.k.a. full-duplex),
// as in Cornejo-Kuhn 2010 / Afek et al. 2013 — the communication model the
// 2-state MIS process targets (Section 1 of the paper).
//
// Per synchronous round, every node either beeps or listens, driven by a
// finite-state automaton with no IDs and no knowledge of the graph. The
// single bit a node receives is "did at least one *neighbor* beep?". Sender
// collision detection means a beeping node receives this bit too.
//
// The network simulator is generic over the automaton; `mis_automata.hpp`
// provides the 2-state MIS automaton, and the test suite proves its
// execution bit-identical to the direct TwoStateMIS simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "rng/coin_oracle.hpp"

namespace ssmis {

enum class BeepAction : std::uint8_t { kListen = 0, kBeep = 1 };

// Node behavior. States are opaque bytes; the automaton interprets them.
class BeepingAutomaton {
 public:
  virtual ~BeepingAutomaton() = default;

  virtual int num_states() const = 0;

  // What the node does this round, as a function of its state only.
  virtual BeepAction emit(std::uint8_t state) const = 0;

  // Transition at the end of the round. `heard` is the feedback bit (some
  // neighbor beeped); `coin_word` is the node's private randomness for the
  // round (64 uniform bits).
  virtual std::uint8_t next(std::uint8_t state, bool heard,
                            std::uint64_t coin_word) const = 0;

  // Interpretation hook: does this state claim MIS membership?
  virtual bool in_mis(std::uint8_t state) const = 0;
};

class BeepingNetwork {
 public:
  // The automaton must outlive the network. Throws std::invalid_argument on
  // init size mismatch or states outside [0, num_states).
  //
  // `sender_collision_detection` selects the model variant: with it (the
  // paper's full-duplex assumption), a beeping node also receives the
  // carrier-sense bit; without it, a beeping node learns nothing. The
  // 2-state MIS algorithm provably needs the former — two adjacent black
  // nodes could otherwise never detect their conflict (see the
  // NoCollisionDetection tests for the stuck execution).
  BeepingNetwork(const Graph& g, const BeepingAutomaton& automaton,
                 std::vector<std::uint8_t> init, const CoinOracle& coins,
                 bool sender_collision_detection = true);

  void step();
  std::int64_t round() const { return round_; }

  const std::vector<std::uint8_t>& states() const { return states_; }
  std::uint8_t state(Vertex u) const { return states_[static_cast<std::size_t>(u)]; }

  std::vector<Vertex> claimed_mis() const;

  // Communication accounting for experiment E13: every node sends at most
  // one bit per round (beep or silence).
  std::int64_t total_beeps() const { return total_beeps_; }
  Vertex beeps_last_round() const { return beeps_last_round_; }

  const Graph& graph() const { return *graph_; }
  bool sender_collision_detection() const { return sender_cd_; }

  // Lossy-channel robustness knob: each round, each receiver's carrier-sense
  // bit is independently suppressed (heard -> silence) with this probability
  // — modeling fading/interference misses. The MIS processes tolerate this:
  // losses can re-activate settled vertices, but self-stabilization pulls
  // the system back (see exp_lossy). Throws std::invalid_argument outside
  // [0, 1).
  void set_loss_probability(double p);
  double loss_probability() const { return loss_probability_; }

 private:
  const Graph* graph_;
  const BeepingAutomaton* automaton_;
  CoinOracle coins_;
  std::vector<std::uint8_t> states_;
  std::vector<char> beeping_;  // scratch
  std::int64_t round_ = 0;
  std::int64_t total_beeps_ = 0;
  Vertex beeps_last_round_ = 0;
  bool sender_cd_ = true;
  double loss_probability_ = 0.0;
};

}  // namespace ssmis
