// Minimal command-line argument parsing for bench and example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--flag` forms.
// Unknown arguments are collected and can be reported as errors, so that
// typos in sweep parameters do not silently run the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ssmis {

// Shared parallel-runtime knobs, parsed uniformly by every experiment and
// example binary:
//   --threads N   parallelism budget (1 = sequential, the default;
//                 0 = hardware concurrency)
//   --batch[=0|1] with N > 1: interleave whole trials across the pool
//                 (default) vs. --batch=0 / --shard: run trials in order,
//                 sharding each engine's decide phase N ways
// Both modes are bit-identical to sequential; see docs/architecture.md.
struct ParallelOptions {
  int threads = 1;
  bool batch = true;
};

ParallelOptions parse_parallel_options(const class CliArgs& args);

// Parsed view of argv. Values are stored as strings and converted on access.
class CliArgs {
 public:
  CliArgs() = default;

  // Parses argv[1..argc). Never throws; malformed numeric values surface when
  // the typed accessor is called (falling back to the provided default and
  // recording an error).
  static CliArgs parse(int argc, const char* const* argv);

  // Typed accessors; return `fallback` when the option is absent.
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  std::string get_string(const std::string& name, const std::string& fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  bool has(const std::string& name) const;

  // All parsed options, name -> raw value (for generic forwarding, e.g. the
  // protocol registry's `--proto-KEY=VALUE` namespace).
  const std::map<std::string, std::string>& options() const { return options_; }

  // Unknown-option rejection: one error message per parsed option whose
  // name is neither in `known` (exact match) nor covered by a `known` entry
  // ending in '*' (prefix wildcard, e.g. "proto-*"). Each message lists the
  // valid flags — a typo'd `--protocal` must not silently run the default.
  std::vector<std::string> unknown_options(
      const std::vector<std::string>& known) const;

  // Positional (non --option) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  // Conversion failures accumulated by the typed accessors.
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
  mutable std::vector<std::string> errors_;
};

}  // namespace ssmis
