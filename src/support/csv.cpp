#include "support/csv.hpp"

namespace ssmis {

std::string CsvWriter::escape(const std::string& cell) {
  bool needs_quote = false;
  for (char c : cell) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

}  // namespace ssmis
