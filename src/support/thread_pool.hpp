// A small persistent worker pool shared by the whole parallel runtime:
// sharded engine stepping (core/engine.hpp) and batched trial scheduling
// (harness/trial_batch.hpp) both fan out through this one pool, so threads
// are spawned once per process, not once per round or per experiment cell.
//
// Determinism contract: `parallel_for` addresses work by index. Callers
// write results into per-index slots and merge them in index order, so what
// is computed — and every merged artifact — is independent of the worker
// count and of scheduling interleavings. The pool only decides *when* an
// index runs, never *what* the index computes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ssmis {

class ThreadPool {
 public:
  // Workers beyond this are never spawned (guards against --threads typos).
  static constexpr int kMaxWorkers = 64;

  ThreadPool() = default;
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // The process-wide pool. Starts with zero workers and grows on demand
  // (ensure_workers / parallel_for); it is never shrunk.
  static ThreadPool& shared();

  // Grows the pool to at least min(n, kMaxWorkers) workers.
  void ensure_workers(int n);
  int num_workers() const;

  // Runs body(i) for every i in [0, tasks), using at most `concurrency`
  // threads in total (the calling thread participates and takes tasks too,
  // so short tasks never leave it idle). Indices are handed out one at a
  // time from a shared counter — a cheap task cannot stall behind an
  // expensive one assigned to the same worker. Blocks until every task
  // finished; rethrows the first exception a task threw (remaining tasks
  // are skipped once an exception is recorded).
  //
  // Calls made from inside a pool task run inline on the calling thread:
  // nested fan-out (a batched trial whose engine also wants shards) degrades
  // to sequential instead of deadlocking or oversubscribing.
  void parallel_for(int tasks, int concurrency,
                    const std::function<void(int)>& body);

 private:
  // One fan-out. Each job owns its counters and a copy of the body, so a
  // worker that wakes late (after the job drained and a new one started)
  // still holds a self-consistent job: it sees `next >= tasks` and exits
  // without ever touching another job's counters.
  struct Job {
    std::function<void(int)> body;
    int tasks = 0;
    std::atomic<int> next{0};
    std::atomic<int> remaining{0};
    std::atomic<bool> has_error{false};
    std::exception_ptr error;  // guarded by the pool's mu_
  };

  void worker_loop();
  void run_tasks(Job& job);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a job with free slots exists
  std::condition_variable done_cv_;  // submitter: all tasks of its job done
  std::vector<std::thread> workers_;
  bool shutdown_ = false;

  std::mutex submit_mu_;  // serializes top-level parallel_for calls
  std::shared_ptr<Job> job_;  // current job, null when idle (guarded by mu_)
  int job_slots_ = 0;         // worker-participation budget for job_
};

}  // namespace ssmis
