// Checked narrowing conversion for vertex ids and adjacency offsets.
//
// The repo keeps vertex ids in i32 (`Vertex`) while degree sums, adjacency
// offsets, and file sizes live in i64 — so i64 -> i32 conversions are
// everywhere, and each ad-hoc `static_cast` is a silent-truncation hazard
// once graphs pass 2^31 endpoints (exp_scale already runs n = 10^8).
// `narrow_cast` is the one sanctioned way to make that conversion:
//
//   Debug (NDEBUG unset):  asserts the value round-trips through the
//     destination type with its sign intact, so a truncating conversion
//     aborts at the cast instead of corrupting a trajectory that only a
//     golden-fingerprint mismatch would eventually catch.
//   Release (NDEBUG set):  compiles to exactly `static_cast<To>(value)` —
//     zero cost, wraparound semantics identical to the raw cast. The name
//     at the call site is the documentation that the author considered the
//     range and accepted modular wraparound as the out-of-contract result.
//
// Lint rule R3 (tools/ssmis_lint.py) flags raw static_casts that narrow
// 64-bit-sourced values and points here; this header is the only file
// allowed to spell that cast.
#pragma once

#include <cassert>
#include <type_traits>

namespace ssmis {

template <typename To, typename From>
[[nodiscard]] constexpr To narrow_cast(From value) noexcept {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                "narrow_cast is for integral conversions only; convert "
                "floating-point values explicitly first");
  const To out = static_cast<To>(value);
  assert(static_cast<From>(out) == value &&
         "narrow_cast: value does not fit the destination type");
  // Same-width sign changes round-trip bit-exactly, so the check above
  // misses them (int32 -1 <-> uint32 0xFFFFFFFF); pin signedness directly.
  if constexpr (std::is_signed_v<From> && !std::is_signed_v<To>) {
    assert(value >= From{} &&
           "narrow_cast: negative value cast to an unsigned type");
  } else if constexpr (!std::is_signed_v<From> && std::is_signed_v<To>) {
    assert(out >= To{} &&
           "narrow_cast: unsigned value wrapped to a negative");
  }
  return out;
}

}  // namespace ssmis
