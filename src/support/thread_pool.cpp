#include "support/thread_pool.hpp"

#include <algorithm>

#include "support/narrow.hpp"

namespace ssmis {

namespace {

// Set while the current thread is executing a pool task (worker or
// participating submitter): nested parallel_for calls run inline.
thread_local bool tl_in_pool_task = false;

}  // namespace

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::ensure_workers(int n) {
  n = std::min(n, kMaxWorkers);
  std::lock_guard<std::mutex> lk(mu_);
  while (narrow_cast<int>(workers_.size()) < n)
    workers_.emplace_back([this] { worker_loop(); });
}

int ThreadPool::num_workers() const {
  std::lock_guard<std::mutex> lk(mu_);
  return narrow_cast<int>(workers_.size());
}

// Shared inner loop: pop indices until the job is drained. Each index is
// claimed by exactly one thread and `remaining` is decremented exactly once
// per index, so completion detection is exact.
void ThreadPool::run_tasks(Job& job) {
  const bool was_in_task = tl_in_pool_task;
  tl_in_pool_task = true;
  for (;;) {
    const int i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.tasks) break;
    if (!job.has_error.load(std::memory_order_acquire)) {
      try {
        job.body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!job.error) job.error = std::current_exception();
        job.has_error.store(true, std::memory_order_release);
      }
    }
    if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(mu_);
      done_cv_.notify_all();
    }
  }
  tl_in_pool_task = was_in_task;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this] {
        return shutdown_ || (job_ != nullptr && job_slots_ > 0);
      });
      if (shutdown_) return;
      --job_slots_;  // claim a participation slot for this job
      job = job_;
    }
    run_tasks(*job);
  }
}

void ThreadPool::parallel_for(int tasks, int concurrency,
                              const std::function<void(int)>& body) {
  if (tasks <= 0) return;
  if (tasks == 1 || concurrency <= 1 || tl_in_pool_task) {
    for (int i = 0; i < tasks; ++i) body(i);
    return;
  }
  ensure_workers(std::min(concurrency - 1, tasks - 1));
  std::lock_guard<std::mutex> submit_lk(submit_mu_);
  auto job = std::make_shared<Job>();
  job->body = body;
  job->tasks = tasks;
  job->next.store(0, std::memory_order_relaxed);
  job->remaining.store(tasks, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = job;
    job_slots_ = std::min({concurrency - 1, tasks - 1,
                           narrow_cast<int>(workers_.size())});
  }
  work_cv_.notify_all();
  run_tasks(*job);  // the submitter works too
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&job] {
      return job->remaining.load(std::memory_order_acquire) == 0;
    });
    job_ = nullptr;
    job_slots_ = 0;
    err = job->error;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace ssmis
