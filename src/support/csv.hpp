// CSV emission for experiment results, so runs can be post-processed
// (plotting, regression) outside the harness.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ssmis {

// Streaming CSV writer with RFC-4180 style quoting. Rows may be ragged;
// the writer does not enforce a column count (the harness controls shape).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_row(const std::vector<std::string>& cells);

  // Quotes `cell` if it contains a comma, quote, or newline.
  static std::string escape(const std::string& cell);

 private:
  std::ostream& os_;
};

}  // namespace ssmis
