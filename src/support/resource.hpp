// Process resource introspection for the scale drivers and benchmarks.
#pragma once

#include <cstdint>

namespace ssmis {

// High-water-mark resident set size of this process in bytes (getrusage
// ru_maxrss). Returns 0 on platforms without the facility. Note this is a
// lifetime maximum: it never decreases, so measure deltas around the
// allocation being budgeted, not absolute values.
std::int64_t peak_rss_bytes();

// Current resident set size in bytes (/proc/self/statm on Linux), or 0 when
// unavailable.
std::int64_t current_rss_bytes();

}  // namespace ssmis
