#include "support/resource.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>
#endif

namespace ssmis {

std::int64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

std::int64_t current_rss_bytes() {
#if defined(__linux__)
  long long pages_total = 0, pages_resident = 0;
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  const int got = std::fscanf(f, "%lld %lld", &pages_total, &pages_resident);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<std::int64_t>(pages_resident) *
         static_cast<std::int64_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

}  // namespace ssmis
