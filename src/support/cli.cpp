#include "support/cli.hpp"

#include <charconv>
#include <cstdlib>
#include <thread>

namespace ssmis {

namespace {

// Returns true if `s` looks like an option token (`--name` or `--name=value`).
bool is_option(const std::string& s) {
  return s.size() > 2 && s[0] == '-' && s[1] == '-';
}

}  // namespace

CliArgs CliArgs::parse(int argc, const char* const* argv) {
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (!is_option(tok)) {
      args.positional_.push_back(std::move(tok));
      continue;
    }
    std::string body = tok.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      args.options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` form: consume the next token if it is not an option.
    if (i + 1 < argc && !is_option(argv[i + 1])) {
      args.options_[body] = argv[i + 1];
      ++i;
    } else {
      args.options_[body] = "";  // boolean flag
    }
  }
  return args;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t fallback) const {
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  std::int64_t value = 0;
  const std::string& s = it->second;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    errors_.push_back("--" + name + ": expected integer, got '" + s + "'");
    return fallback;
  }
  return value;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  const std::string& s = it->second;
  char* end = nullptr;
  double value = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    errors_.push_back("--" + name + ": expected number, got '" + s + "'");
    return fallback;
  }
  return value;
}

std::string CliArgs::get_string(const std::string& name, const std::string& fallback) const {
  auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  const std::string& s = it->second;
  if (s.empty() || s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  errors_.push_back("--" + name + ": expected boolean, got '" + s + "'");
  return fallback;
}

bool CliArgs::has(const std::string& name) const {
  return options_.count(name) > 0;
}

std::vector<std::string> CliArgs::unknown_options(
    const std::vector<std::string>& known) const {
  std::string valid;
  for (const std::string& k : known) {
    if (!valid.empty()) valid += ", ";
    valid += "--" + k;
  }
  std::vector<std::string> out;
  for (const auto& [name, value] : options_) {
    bool ok = false;
    for (const std::string& k : known) {
      if (!k.empty() && k.back() == '*'
              ? name.rfind(k.substr(0, k.size() - 1), 0) == 0
              : name == k) {
        ok = true;
        break;
      }
    }
    if (!ok)
      out.push_back("unknown flag --" + name + " (valid flags: " + valid + ")");
  }
  return out;
}

ParallelOptions parse_parallel_options(const CliArgs& args) {
  ParallelOptions out;
  out.threads = static_cast<int>(args.get_int("threads", 1));
  if (out.threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    out.threads = hw > 0 ? static_cast<int>(hw) : 1;
  }
  if (out.threads < 1) out.threads = 1;
  // --shard is shorthand for --batch=0; an explicit --batch value wins.
  out.batch = args.get_bool("batch", !args.get_bool("shard", false));
  return out;
}

}  // namespace ssmis
