// Fixed-width text table rendering for experiment output.
//
// Every bench binary reports its results through this printer so that all
// reproduction tables share one format: a title line, a header row, aligned
// data rows, and an optional note citing the paper's predicted value.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace ssmis {

// Column-aligned table. Cells are strings; numeric helpers format doubles
// with a fixed precision. Widths are computed from content.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Starts a new row. Subsequent add_cell calls append to it.
  void begin_row();
  void add_cell(std::string value);
  void add_cell(std::int64_t value);
  void add_cell(double value, int precision = 2);

  // Convenience: append a complete row at once.
  void add_row(std::vector<std::string> cells);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

  // Renders with 2-space column gaps; pads ragged rows with empty cells.
  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with fixed precision (no locale surprises).
std::string format_double(double value, int precision = 2);

// Prints a section banner: `== title ==` padded to a constant width.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace ssmis
