#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace ssmis {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::begin_row() {
  rows_.emplace_back();
}

void TextTable::add_cell(std::string value) {
  if (rows_.empty()) begin_row();
  rows_.back().push_back(std::move(value));
}

void TextTable::add_cell(std::int64_t value) {
  add_cell(std::to_string(value));
}

void TextTable::add_cell(double value, int precision) {
  add_cell(format_double(value, precision));
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c >= widths.size()) widths.resize(c + 1, 0);
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string cell = c < row.size() ? row[c] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[c])) << cell;
      if (c + 1 < widths.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.empty() ? 0 : widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

std::string format_double(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace ssmis
