// Shared non-cryptographic hashing primitives (the .ssg checksum and the
// test-side CSR fingerprints build on these; keep them in sync by reuse,
// not by copying).
#pragma once

#include <cstddef>
#include <cstdint>

namespace ssmis {

inline constexpr std::uint64_t kFnv1aBasis = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ULL;

// Folds `bytes` bytes at `data` into the running FNV-1a state `h`.
inline std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnv1aPrime;
  }
  return h;
}

}  // namespace ssmis
