#include "rng/xoshiro256.hpp"

namespace ssmis {

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling: draw from the largest multiple of `bound` that fits
  // in 64 bits; expected < 2 draws for any bound.
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t draw;
  do {
    draw = next();
  } while (draw >= limit);
  return draw % bound;
}

}  // namespace ssmis
