// SplitMix64: the standard 64-bit mixing function (Steele, Lea & Flood 2014).
//
// Used (a) to expand a user seed into Xoshiro256++ state, and (b) as the
// avalanche primitive of the counter-based CoinOracle.
#pragma once

#include <cstdint>

namespace ssmis {

// One SplitMix64 step applied to `x` (the fixed-increment variant folded in
// by the caller). This is the finalizer only: callers add the golden-gamma
// increment themselves when generating sequences.
constexpr std::uint64_t splitmix64_mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Stateful SplitMix64 sequence generator; used for seeding other engines.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    return splitmix64_mix(state_);
  }

 private:
  std::uint64_t state_;
};

}  // namespace ssmis
