// Counter-based randomness: every random decision a process makes is a pure
// function of (seed, round, vertex, tag).
//
// This mirrors the paper's analysis device: "at the beginning of each round t
// we flip for each vertex u an independent coin phi_t(u)" (Section 2.1). It
// also makes the beeping-model and stone-age-model simulations *bit-identical*
// to the direct process simulations given the same seed, which the test suite
// exploits for exact trace-equivalence checks.
//
// The construction hashes the (round, vertex, tag) counter with two rounds of
// SplitMix64 mixing keyed by the seed. This is not cryptographic; it is
// statistically strong enough for simulation (verified by the distribution
// tests in tests/test_rng.cpp).
#pragma once

#include <cstdint>

#include "rng/splitmix64.hpp"

namespace ssmis {

// Tags separate independent random streams consumed by one vertex in one
// round (e.g. the MIS coin vs. the phase-clock coin of the 3-color process).
enum class CoinTag : std::uint32_t {
  kMisColor = 1,      // phi_t(u): the black/white (or black1/black0) coin
  kSwitchBit = 2,     // b_t(u): the logarithmic-switch biased coin
  kLuby = 3,          // Luby's algorithm per-round priority
  kInit = 4,          // random initial states
  kFault = 5,         // transient-fault injection choices
  kScheduler = 6,     // randomized sequential scheduler
  kAblation = 7,      // ablation variants (biased update coin, etc.)
  kNoise = 8,         // lossy-channel carrier-sense suppression
  kPriority = 9,      // weight/ID-biased update coin (PriorityMIS)
};

class CoinOracle {
 public:
  explicit constexpr CoinOracle(std::uint64_t seed) : seed_(seed) {}

  constexpr std::uint64_t seed() const { return seed_; }

  // 64 uniform bits for (round, vertex, tag).
  constexpr std::uint64_t word(std::int64_t round, std::int32_t vertex,
                               CoinTag tag) const {
    // Distinct multipliers keep the three counter dimensions from aliasing;
    // two mix rounds give full avalanche on the combined counter.
    std::uint64_t x = seed_;
    x ^= static_cast<std::uint64_t>(round) * 0x9e3779b97f4a7c15ULL;
    x ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(vertex)) *
         0xc2b2ae3d27d4eb4fULL;
    x ^= static_cast<std::uint64_t>(tag) * 0x165667b19e3779f9ULL;
    return splitmix64_mix(splitmix64_mix(x) + 0x9e3779b97f4a7c15ULL);
  }

  // The fair coin phi_t(u): true = black.
  constexpr bool fair_coin(std::int64_t round, std::int32_t vertex,
                           CoinTag tag = CoinTag::kMisColor) const {
    return (word(round, vertex, tag) >> 63) != 0;
  }

  // Bernoulli(p) with p given as a dyadic threshold: true with probability
  // `num / 2^log2_den` (exact, no floating point). Used by the logarithmic
  // switch whose parameter is zeta = 2^-7.
  constexpr bool dyadic_bernoulli(std::int64_t round, std::int32_t vertex,
                                  CoinTag tag, std::uint64_t num,
                                  unsigned log2_den) const {
    const std::uint64_t w = word(round, vertex, tag) >> (64 - log2_den);
    return w < num;
  }

  // Bernoulli(p) for arbitrary double p in [0,1] (53-bit resolution).
  constexpr bool bernoulli(std::int64_t round, std::int32_t vertex, CoinTag tag,
                           double p) const {
    const double u =
        static_cast<double>(word(round, vertex, tag) >> 11) * 0x1.0p-53;
    return u < p;
  }

  // Uniform double in [0,1) — used by Luby's algorithm for priorities.
  constexpr double uniform(std::int64_t round, std::int32_t vertex,
                           CoinTag tag) const {
    return static_cast<double>(word(round, vertex, tag) >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t seed_;
};

}  // namespace ssmis
