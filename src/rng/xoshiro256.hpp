// Xoshiro256++ (Blackman & Vigna 2019): fast, high-quality 64-bit generator.
//
// Satisfies the C++ UniformRandomBitGenerator requirements so it can be used
// with <random> distributions where convenient (harness-side code only; the
// processes themselves draw through CoinOracle for reproducibility).
#pragma once

#include <cstdint>

#include "rng/splitmix64.hpp"

namespace ssmis {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
    escape_zero_state();
  }

  // Constructs from raw state words (tests, state transplants). The all-zero
  // state is the one fixed point of the xoshiro update — a generator seeded
  // there emits zeros forever — so it is escaped deterministically here and
  // in the seeding constructor (SplitMix64 expansion cannot actually produce
  // four zero words, but the guard makes that a proof obligation nobody has
  // to re-derive).
  explicit Xoshiro256(const std::uint64_t (&state)[4]) {
    for (int i = 0; i < 4; ++i) state_[i] = state[i];
    escape_zero_state();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound) without modulo bias (Lemire's method would need
  // 128-bit multiply; we use rejection sampling on the top bits instead).
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform double in [0, 1) with 53 bits of precision.
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool next_bool() { return (next() >> 63) != 0; }

 private:
  void escape_zero_state() {
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
      SplitMix64 sm(0x9e3779b97f4a7c15ULL);
      for (auto& word : state_) word = sm.next();
    }
  }

  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace ssmis
