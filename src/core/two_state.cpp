#include "core/two_state.hpp"

#include <memory>

#include "core/init.hpp"
#include "core/process.hpp"
#include "harness/registry.hpp"

namespace ssmis {

std::vector<Vertex> TwoStateMIS::black_set() const {
  return engine_.select([this](Vertex u) { return black(u); });
}

std::vector<Vertex> TwoStateMIS::active_set() const {
  return engine_.select([this](Vertex u) { return active(u); });
}

std::vector<Vertex> TwoStateMIS::stable_black_set() const {
  return engine_.select([this](Vertex u) { return stable_black(u); });
}

std::vector<Vertex> TwoStateMIS::unstable_set() const {
  return engine_.select([this](Vertex u) { return engine_.unstable(u); });
}

namespace {

// Registry entry. The construction matches the pre-registry harness driver
// exactly (same oracle, same init draw), so registry-era trajectories are
// bit-identical to the enum-era ones (pinned in tests/test_registry.cpp).
const ProtocolRegistrar kTwoStateProtocol{
    "2state",
    "the paper's 2-state MIS process (Definition 4): active vertices "
    "resample uniformly; 1 bit of state, beeping-model implementable",
    {},
    [](const Graph& g, const ProtocolParams& params, std::uint64_t seed) {
      const CoinOracle coins(seed);
      return std::make_unique<MisFamilyAdapter<TwoStateMIS>>(
          TwoStateMIS(g, make_init2(g, params.init, coins), coins));
    }};

}  // namespace

}  // namespace ssmis
