#include "core/two_state.hpp"

#include <stdexcept>

namespace ssmis {

TwoStateMIS::TwoStateMIS(const Graph& g, std::vector<Color2> init,
                         const CoinOracle& coins)
    : graph_(&g), coins_(coins), colors_(std::move(init)) {
  if (colors_.size() != static_cast<std::size_t>(g.num_vertices()))
    throw std::invalid_argument("TwoStateMIS: init size != num_vertices");
  black_nbr_.assign(colors_.size(), 0);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (!black(u)) continue;
    ++num_black_;
    for (Vertex v : g.neighbors(u)) ++black_nbr_[static_cast<std::size_t>(v)];
  }
  recount_active();
}

void TwoStateMIS::recount_active() {
  num_active_ = 0;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u)
    if (active(u)) ++num_active_;
}

void TwoStateMIS::step() {
  const std::int64_t t = round_ + 1;
  scratch_changed_.clear();
  // Phase 1: decide new colors from the frozen end-of-round-(t-1) state.
  // Active vertices take phi_t(u); a change is recorded only when the drawn
  // color differs from the current one.
  for (Vertex u = 0; u < graph_->num_vertices(); ++u) {
    if (!active(u)) continue;
    const Color2 drawn =
        coins_.fair_coin(t, u) ? Color2::kBlack : Color2::kWhite;
    if (drawn != colors_[static_cast<std::size_t>(u)]) scratch_changed_.push_back(u);
  }
  // Phase 2: apply flips and patch neighbor counters.
  for (Vertex u : scratch_changed_) {
    auto& c = colors_[static_cast<std::size_t>(u)];
    const Vertex delta = (c == Color2::kWhite) ? 1 : -1;  // flipping
    c = (c == Color2::kWhite) ? Color2::kBlack : Color2::kWhite;
    num_black_ += delta;
    for (Vertex v : graph_->neighbors(u))
      black_nbr_[static_cast<std::size_t>(v)] += delta;
  }
  ++round_;
  recount_active();
}

Vertex TwoStateMIS::num_stable_black() const {
  Vertex count = 0;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u)
    if (stable_black(u)) ++count;
  return count;
}

Vertex TwoStateMIS::num_unstable() const {
  // V_t = V \ N+(I_t): mark stable blacks and their neighborhoods.
  std::vector<char> covered(colors_.size(), 0);
  for (Vertex u = 0; u < graph_->num_vertices(); ++u) {
    if (!stable_black(u)) continue;
    covered[static_cast<std::size_t>(u)] = 1;
    for (Vertex v : graph_->neighbors(u)) covered[static_cast<std::size_t>(v)] = 1;
  }
  Vertex unstable = 0;
  for (char c : covered)
    if (!c) ++unstable;
  return unstable;
}

std::vector<Vertex> TwoStateMIS::black_set() const {
  std::vector<Vertex> out;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u)
    if (black(u)) out.push_back(u);
  return out;
}

std::vector<Vertex> TwoStateMIS::active_set() const {
  std::vector<Vertex> out;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u)
    if (active(u)) out.push_back(u);
  return out;
}

std::vector<Vertex> TwoStateMIS::stable_black_set() const {
  std::vector<Vertex> out;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u)
    if (stable_black(u)) out.push_back(u);
  return out;
}

std::vector<Vertex> TwoStateMIS::unstable_set() const {
  std::vector<char> covered(colors_.size(), 0);
  for (Vertex u = 0; u < graph_->num_vertices(); ++u) {
    if (!stable_black(u)) continue;
    covered[static_cast<std::size_t>(u)] = 1;
    for (Vertex v : graph_->neighbors(u)) covered[static_cast<std::size_t>(v)] = 1;
  }
  std::vector<Vertex> out;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u)
    if (!covered[static_cast<std::size_t>(u)]) out.push_back(u);
  return out;
}

void TwoStateMIS::force_color(Vertex u, Color2 c) {
  if (u < 0 || u >= graph_->num_vertices())
    throw std::out_of_range("force_color: vertex out of range");
  auto& cur = colors_[static_cast<std::size_t>(u)];
  if (cur == c) return;
  const Vertex delta = (c == Color2::kBlack) ? 1 : -1;
  cur = c;
  num_black_ += delta;
  for (Vertex v : graph_->neighbors(u))
    black_nbr_[static_cast<std::size_t>(v)] += delta;
  recount_active();
}

}  // namespace ssmis
