#include "core/two_state.hpp"

namespace ssmis {

std::vector<Vertex> TwoStateMIS::black_set() const {
  return engine_.select([this](Vertex u) { return black(u); });
}

std::vector<Vertex> TwoStateMIS::active_set() const {
  return engine_.select([this](Vertex u) { return active(u); });
}

std::vector<Vertex> TwoStateMIS::stable_black_set() const {
  return engine_.select([this](Vertex u) { return stable_black(u); });
}

std::vector<Vertex> TwoStateMIS::unstable_set() const {
  return engine_.select([this](Vertex u) { return engine_.unstable(u); });
}

}  // namespace ssmis
