// Luby's algorithm (1986): the classical O(log n)-round randomized
// distributed MIS baseline.
//
// Round: every undecided vertex draws a uniform priority; a vertex whose
// priority beats all undecided neighbors' joins the MIS, and its neighbors
// drop out. Terminates when no vertex is undecided.
//
// Included as the comparison point of experiment E12: it is fast from a
// clean start but NOT self-stabilizing — its decided/undecided flags are
// never re-examined, so a transient fault (or adversarial initial flags)
// yields a wrong answer forever. `corrupt_decisions` makes that failure
// observable.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "rng/coin_oracle.hpp"

namespace ssmis {

enum class LubyStatus : std::uint8_t { kUndecided = 0, kInMis = 1, kOut = 2 };

class LubyMIS {
 public:
  // Clean start: all vertices undecided.
  LubyMIS(const Graph& g, const CoinOracle& coins);

  // Adversarial start for the self-stabilization failure demo.
  LubyMIS(const Graph& g, std::vector<LubyStatus> init, const CoinOracle& coins);

  void step();
  bool done() const { return num_undecided_ == 0; }
  std::int64_t round() const { return round_; }

  LubyStatus status(Vertex u) const { return status_[static_cast<std::size_t>(u)]; }
  Vertex num_undecided() const { return num_undecided_; }
  std::vector<Vertex> mis_set() const;

  // Runs to completion; returns the number of rounds used.
  std::int64_t run(std::int64_t max_rounds);

  // Transient fault: overwrite `u`'s decision. The algorithm has no repair
  // path — subsequent rounds never revisit decided vertices.
  void corrupt_decision(Vertex u, LubyStatus s);

 private:
  const Graph* graph_;
  CoinOracle coins_;
  std::vector<LubyStatus> status_;
  std::int64_t round_ = 0;
  Vertex num_undecided_ = 0;
};

}  // namespace ssmis
