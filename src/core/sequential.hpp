// The deterministic sequential self-stabilizing MIS algorithm the paper's
// process parallelizes (Shukla-Rosenkrantz-Ravi 1995; Hedetniemi et al.
// 2003), under a central daemon with pluggable schedulers.
//
// Rule for the single scheduled vertex u (a "move"):
//   black with a black neighbor -> white
//   white with no black neighbor -> black
//
// Known result exercised by tests and experiment E12: under *any* central
// schedule, each vertex moves at most twice, so the algorithm stabilizes
// within 2n moves. The synchronous deterministic parallelization, by
// contrast, can livelock (two adjacent black vertices flip in lockstep
// forever) — which is precisely why the paper's processes randomize.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/color.hpp"
#include "graph/graph.hpp"
#include "rng/coin_oracle.hpp"

namespace ssmis {

// Picks which enabled vertex moves next. `enabled` is non-empty and sorted.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual Vertex pick(std::span<const Vertex> enabled, std::int64_t step_index) = 0;
  virtual std::string name() const = 0;
};

// Cycles through vertex ids, picking the next enabled vertex >= cursor.
class RoundRobinScheduler final : public Scheduler {
 public:
  Vertex pick(std::span<const Vertex> enabled, std::int64_t step_index) override;
  std::string name() const override { return "round-robin"; }

 private:
  Vertex cursor_ = 0;
};

// Uniformly random enabled vertex (deterministic per seed).
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : coins_(seed) {}
  Vertex pick(std::span<const Vertex> enabled, std::int64_t step_index) override;
  std::string name() const override { return "random"; }

 private:
  CoinOracle coins_;
};

// Adversary flavor: always the highest-degree enabled vertex (maximizes the
// number of neighbors whose enabledness the move may toggle).
class MaxDegreeScheduler final : public Scheduler {
 public:
  explicit MaxDegreeScheduler(const Graph& g) : graph_(&g) {}
  Vertex pick(std::span<const Vertex> enabled, std::int64_t step_index) override;
  std::string name() const override { return "max-degree"; }

 private:
  const Graph* graph_;
};

// Always the smallest enabled vertex id.
class LowestIdScheduler final : public Scheduler {
 public:
  Vertex pick(std::span<const Vertex> enabled, std::int64_t step_index) override;
  std::string name() const override { return "lowest-id"; }
};

struct SequentialRunResult {
  bool stabilized = false;
  std::int64_t total_moves = 0;
  Vertex max_moves_per_vertex = 0;
};

class SequentialMIS {
 public:
  SequentialMIS(const Graph& g, std::vector<Color2> init);

  // Enabled = would move if scheduled (same predicate as "active").
  bool enabled(Vertex u) const;
  std::vector<Vertex> enabled_set() const;
  bool stabilized() const { return enabled_set().empty(); }

  // Executes one move by `u` (must be enabled; throws std::logic_error
  // otherwise). Returns the vertex's new color.
  Color2 move(Vertex u);

  // Runs under `scheduler` until no vertex is enabled or `max_moves` is hit.
  SequentialRunResult run(Scheduler& scheduler, std::int64_t max_moves);

  // Randomized transition ([Shukla et al. 95]'s observation, also the
  // Turau-Weyer transformation): the scheduled enabled vertex moves to a
  // uniformly random color instead of flipping deterministically. Under ANY
  // central daemon this stabilizes with probability 1 (the deterministic
  // <= 2-moves bound no longer holds, but adversarial schedules cannot force
  // a livelock). The coin comes from `coins` keyed by the step index.
  Color2 move_randomized(Vertex u, std::int64_t step_index, const CoinOracle& coins);
  SequentialRunResult run_randomized(Scheduler& scheduler, const CoinOracle& coins,
                                     std::int64_t max_moves);

  // One *synchronous deterministic* round: every enabled vertex moves at
  // once. Returns the number of movers. Exists to demonstrate livelock.
  Vertex step_parallel_deterministic();

  const Graph& graph() const { return *graph_; }
  const std::vector<Color2>& colors() const { return colors_; }
  bool black(Vertex u) const { return colors_[static_cast<std::size_t>(u)] == Color2::kBlack; }
  std::vector<Vertex> black_set() const;
  Vertex moves_of(Vertex u) const { return moves_[static_cast<std::size_t>(u)]; }

 private:
  Vertex black_neighbors(Vertex u) const;

  const Graph* graph_;
  std::vector<Color2> colors_;
  std::vector<Vertex> moves_;
};

}  // namespace ssmis
