// Activation daemons: the general adversarial-scheduler model of Section 1.
//
// The paper's synchronous 2-state process activates EVERY inconsistent
// vertex each round; the sequential algorithm of [Shukla et al. 95]
// activates exactly one. Both are special cases of a daemon that, each
// step, activates an arbitrary non-empty subset of the enabled vertices —
// and the observation the paper cites is that with *randomized* transitions
// the process stabilizes with probability 1 under every such daemon.
//
// DaemonMIS runs the 2-state rule under a pluggable ActivationDaemon:
//   * SynchronousDaemon   — all enabled vertices (the paper's process;
//                           bit-identical to TwoStateMIS given the oracle)
//   * CentralDaemon       — a single enabled vertex per step
//   * RandomSubsetDaemon  — each enabled vertex independently w.p. rho
//                           (rho -> 1 recovers synchronous behavior)
//   * AdversarialPairDaemon — always activates a maximal set of *conflicting
//                           sibling pairs* (both endpoints of black-black
//                           edges together), the schedule that maximizes
//                           coordinated re-collisions.
//
// DaemonMIS drives the same ProcessEngine<TwoStateRule> as the synchronous
// process, through the engine's subset-transition primitive: the enabled set
// IS the engine's scheduled worklist, so enabled-set queries are O(|enabled|)
// rather than O(n) scans.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/color.hpp"
#include "core/engine.hpp"
#include "core/two_state.hpp"
#include "graph/graph.hpp"
#include "rng/coin_oracle.hpp"

namespace ssmis {

class ActivationDaemon {
 public:
  virtual ~ActivationDaemon() = default;
  // Chooses a non-empty subset of `enabled` (sorted) to activate at `step`.
  // Returning an empty vector is treated as "activate all" to keep the
  // process live (a daemon must not starve the system forever).
  virtual std::vector<Vertex> activate(std::span<const Vertex> enabled,
                                       std::int64_t step) = 0;
  virtual std::string name() const = 0;
};

class SynchronousDaemon final : public ActivationDaemon {
 public:
  std::vector<Vertex> activate(std::span<const Vertex> enabled, std::int64_t) override {
    return {enabled.begin(), enabled.end()};
  }
  std::string name() const override { return "synchronous"; }
};

class CentralDaemon final : public ActivationDaemon {
 public:
  explicit CentralDaemon(std::uint64_t seed) : coins_(seed) {}
  std::vector<Vertex> activate(std::span<const Vertex> enabled,
                               std::int64_t step) override {
    const std::uint64_t w = coins_.word(step, 0, CoinTag::kScheduler);
    return {enabled[static_cast<std::size_t>(w % enabled.size())]};
  }
  std::string name() const override { return "central"; }

 private:
  CoinOracle coins_;
};

class RandomSubsetDaemon final : public ActivationDaemon {
 public:
  // Throws std::invalid_argument unless 0 < rho <= 1.
  RandomSubsetDaemon(double rho, std::uint64_t seed);
  std::vector<Vertex> activate(std::span<const Vertex> enabled,
                               std::int64_t step) override;
  std::string name() const override;

 private:
  double rho_;
  CoinOracle coins_;
};

// Activates both endpoints of every black-black edge simultaneously (so
// conflicting pairs re-roll together, the coordination that livelocks the
// deterministic rule), plus every other enabled vertex.
class AdversarialPairDaemon final : public ActivationDaemon {
 public:
  std::vector<Vertex> activate(std::span<const Vertex> enabled, std::int64_t) override {
    return {enabled.begin(), enabled.end()};  // = synchronous for 2-state
  }
  std::string name() const override { return "adversarial-pairs"; }
};

// The 2-state rule under an activation daemon. Enabled = active in the
// Definition 4 sense; an activated vertex resamples its color with the
// oracle coin phi_step(u) — exactly TwoStateMIS's coin stream, so the
// SynchronousDaemon run is bit-identical to the synchronous process.
class DaemonMIS {
 public:
  using Engine = ProcessEngine<TwoStateRule>;

  DaemonMIS(const Graph& g, std::vector<Color2> init,
            std::unique_ptr<ActivationDaemon> daemon, const CoinOracle& coins);

  // One daemon step (activates one chosen subset). Returns the number of
  // vertices activated.
  Vertex step();
  std::int64_t steps() const { return steps_; }

  const Graph& graph() const { return engine_.graph(); }
  const std::vector<Color2>& colors() const { return engine_.colors(); }
  bool black(Vertex u) const { return is_black(engine_.color(u)); }
  Vertex black_neighbor_count(Vertex u) const { return engine_.counter(u, 0); }
  bool enabled(Vertex u) const { return engine_.scheduled(u); }
  bool stabilized() const { return engine_.stabilized(); }
  Vertex num_enabled() const { return engine_.num_scheduled(); }
  std::vector<Vertex> black_set() const;
  std::vector<Vertex> enabled_set() const { return engine_.scheduled_set(); }

  // Runs until stabilized or `max_steps`; returns steps used.
  std::int64_t run(std::int64_t max_steps);

  // Fault-injection / test hook: overwrite one vertex's color in O(deg(u)),
  // keeping the internal counters consistent. Not a daemon step.
  void force_color(Vertex u, Color2 c) { engine_.force_color(u, c); }

  // Shards the subset-transition computation across the shared thread pool
  // (bit-identical trajectories at any value; 1 = sequential). The daemon's
  // own choice of subset stays sequential — only the chosen vertices'
  // simultaneous coin flips fan out.
  void set_shards(int shards) { engine_.set_shards(shards); }

  const Engine& engine() const { return engine_; }

 private:
  Engine engine_;
  std::unique_ptr<ActivationDaemon> daemon_;
  std::int64_t steps_ = 0;
};

}  // namespace ssmis
