// PriorityMIS: a weight/ID-biased 2-state variant — the second registry
// workload. Same states, same activity predicate, same stabilization target
// (the black set is an MIS) as Definition 4, but an active vertex u turns
// black with a PER-VERTEX probability p_u derived from a priority weight
// w_u ∈ [0, 1]:
//
//     p_u = bias-lo + (bias-hi - bias-lo) * w_u
//
// Higher-priority vertices claim black more aggressively and back off less,
// so the stabilized MIS is biased toward them — a cheap knob for
// weighted-MIS-style workloads (cluster-head election where battery level
// or link quality should win) without leaving the 2-state protocol family
// or its weak-communication implementability. Correctness is untouched:
// any 0 < p_u < 1 keeps every absorbing configuration an MIS and
// stabilization almost sure; only the distribution over MISes shifts
// (tests/test_matching.cpp measures the skew).
//
// Weight modes (the `priority` option): "id" (w = u / (n-1), the ID bias),
// "degree" (w = deg(u) / max_deg — high-degree vertices dominate), and
// "random" (w drawn once per (seed, vertex) from the oracle).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/color.hpp"
#include "core/engine.hpp"
#include "graph/graph.hpp"
#include "rng/coin_oracle.hpp"

namespace ssmis {

class PriorityMisRule {
 public:
  using Color = Color2;
  static constexpr bool kTracksStability = true;

  // `biases` must hold one probability in (0, 1) per vertex; throws
  // std::invalid_argument otherwise.
  PriorityMisRule(const CoinOracle& coins,
                  std::shared_ptr<const std::vector<double>> biases);

  int num_colors() const { return 2; }
  int num_counters() const { return 1; }  // cnt[0] = black neighbors
  Vertex contribution(Color2 c, int) const { return is_black(c) ? 1 : 0; }

  bool active(Color2 c, const Vertex* cnt) const {
    return is_black(c) ? cnt[0] > 0 : cnt[0] == 0;
  }
  bool scheduled(Color2 c, const Vertex* cnt) const { return active(c, cnt); }
  bool violating(Color2 c, const Vertex* cnt) const { return active(c, cnt); }
  bool stable_black(Color2 c, const Vertex* cnt) const {
    return is_black(c) && cnt[0] == 0;
  }

  Color2 transition(Vertex u, Color2, const Vertex*, std::int64_t t) const {
    const double p = (*biases_)[static_cast<std::size_t>(u)];
    return coins_.bernoulli(t, u, CoinTag::kPriority, p) ? Color2::kBlack
                                                         : Color2::kWhite;
  }

  double bias(Vertex u) const { return (*biases_)[static_cast<std::size_t>(u)]; }

 private:
  CoinOracle coins_;
  // Shared: the engine copies the rule by value; the bias table is per-trial
  // immutable, so one allocation serves every copy.
  std::shared_ptr<const std::vector<double>> biases_;
};

class PriorityMIS {
 public:
  using Engine = ProcessEngine<PriorityMisRule>;

  PriorityMIS(const Graph& g, std::vector<Color2> init, const CoinOracle& coins,
              std::shared_ptr<const std::vector<double>> biases)
      : engine_(g, std::move(init), PriorityMisRule(coins, std::move(biases))) {}

  // Builds the per-vertex bias table for a weight mode ("id", "degree",
  // "random"); throws std::invalid_argument on an unknown mode or biases
  // outside (0, 1).
  static std::shared_ptr<const std::vector<double>> make_biases(
      const Graph& g, const std::string& mode, double lo, double hi,
      std::uint64_t seed);

  void step() { engine_.step(); }
  std::int64_t round() const { return engine_.round(); }

  const Graph& graph() const { return engine_.graph(); }
  const std::vector<Color2>& colors() const { return engine_.colors(); }
  bool black(Vertex u) const { return is_black(engine_.color(u)); }
  Vertex black_neighbor_count(Vertex u) const { return engine_.counter(u, 0); }
  bool active(Vertex u) const { return engine_.active(u); }
  bool stable_black(Vertex u) const { return engine_.stable_black(u); }
  double bias(Vertex u) const { return engine_.rule().bias(u); }

  bool stabilized() const { return engine_.stabilized(); }

  Vertex num_black() const { return engine_.color_count(Color2::kBlack); }
  Vertex num_active() const { return engine_.num_active(); }
  Vertex num_stable_black() const { return engine_.num_stable_black(); }
  Vertex num_unstable() const { return engine_.num_unstable(); }
  Vertex num_gray() const { return 0; }

  std::vector<Vertex> black_set() const;

  void force_color(Vertex u, Color2 c) { engine_.force_color(u, c); }
  void set_shards(int shards) { engine_.set_shards(shards); }

  const Engine& engine() const { return engine_; }

 private:
  Engine engine_;
};

}  // namespace ssmis
