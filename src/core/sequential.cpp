#include "core/sequential.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/narrow.hpp"

namespace ssmis {

Vertex RoundRobinScheduler::pick(std::span<const Vertex> enabled,
                                 std::int64_t /*step_index*/) {
  // First enabled vertex with id >= cursor_, wrapping around.
  auto it = std::lower_bound(enabled.begin(), enabled.end(), cursor_);
  const Vertex chosen = it != enabled.end() ? *it : enabled.front();
  cursor_ = chosen + 1;
  return chosen;
}

Vertex RandomScheduler::pick(std::span<const Vertex> enabled, std::int64_t step_index) {
  const std::uint64_t w = coins_.word(step_index, 0, CoinTag::kScheduler);
  return enabled[static_cast<std::size_t>(w % enabled.size())];
}

Vertex MaxDegreeScheduler::pick(std::span<const Vertex> enabled,
                                std::int64_t /*step_index*/) {
  Vertex best = enabled.front();
  for (Vertex u : enabled)
    if (graph_->degree(u) > graph_->degree(best)) best = u;
  return best;
}

Vertex LowestIdScheduler::pick(std::span<const Vertex> enabled,
                               std::int64_t /*step_index*/) {
  return enabled.front();
}

SequentialMIS::SequentialMIS(const Graph& g, std::vector<Color2> init)
    : graph_(&g), colors_(std::move(init)),
      moves_(static_cast<std::size_t>(g.num_vertices()), 0) {
  if (colors_.size() != static_cast<std::size_t>(g.num_vertices()))
    throw std::invalid_argument("SequentialMIS: init size != num_vertices");
}

Vertex SequentialMIS::black_neighbors(Vertex u) const {
  Vertex count = 0;
  graph_->for_each_neighbor(u, [&](Vertex v) {
    if (black(v)) ++count;
  });
  return count;
}

bool SequentialMIS::enabled(Vertex u) const {
  return black(u) ? black_neighbors(u) > 0 : black_neighbors(u) == 0;
}

std::vector<Vertex> SequentialMIS::enabled_set() const {
  std::vector<Vertex> out;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u)
    if (enabled(u)) out.push_back(u);
  return out;
}

Color2 SequentialMIS::move(Vertex u) {
  if (!enabled(u)) throw std::logic_error("SequentialMIS::move: vertex not enabled");
  auto& c = colors_[static_cast<std::size_t>(u)];
  c = (c == Color2::kBlack) ? Color2::kWhite : Color2::kBlack;
  ++moves_[static_cast<std::size_t>(u)];
  return c;
}

SequentialRunResult SequentialMIS::run(Scheduler& scheduler, std::int64_t max_moves) {
  SequentialRunResult result;
  for (std::int64_t i = 0; i < max_moves; ++i) {
    const std::vector<Vertex> enabled = enabled_set();
    if (enabled.empty()) {
      result.stabilized = true;
      break;
    }
    move(scheduler.pick(enabled, i));
    ++result.total_moves;
  }
  if (enabled_set().empty()) result.stabilized = true;
  if (!moves_.empty())
    result.max_moves_per_vertex = *std::max_element(moves_.begin(), moves_.end());
  return result;
}

Color2 SequentialMIS::move_randomized(Vertex u, std::int64_t step_index,
                                      const CoinOracle& coins) {
  if (!enabled(u))
    throw std::logic_error("SequentialMIS::move_randomized: vertex not enabled");
  auto& c = colors_[static_cast<std::size_t>(u)];
  const Color2 drawn = coins.fair_coin(step_index, u, CoinTag::kScheduler)
                           ? Color2::kBlack
                           : Color2::kWhite;
  if (drawn != c) {
    c = drawn;
    ++moves_[static_cast<std::size_t>(u)];
  }
  return c;
}

SequentialRunResult SequentialMIS::run_randomized(Scheduler& scheduler,
                                                  const CoinOracle& coins,
                                                  std::int64_t max_moves) {
  SequentialRunResult result;
  for (std::int64_t i = 0; i < max_moves; ++i) {
    const std::vector<Vertex> enabled = enabled_set();
    if (enabled.empty()) {
      result.stabilized = true;
      break;
    }
    move_randomized(scheduler.pick(enabled, i), i, coins);
    ++result.total_moves;
  }
  if (enabled_set().empty()) result.stabilized = true;
  if (!moves_.empty())
    result.max_moves_per_vertex = *std::max_element(moves_.begin(), moves_.end());
  return result;
}

Vertex SequentialMIS::step_parallel_deterministic() {
  const std::vector<Vertex> movers = enabled_set();
  for (Vertex u : movers) {
    auto& c = colors_[static_cast<std::size_t>(u)];
    c = (c == Color2::kBlack) ? Color2::kWhite : Color2::kBlack;
    ++moves_[static_cast<std::size_t>(u)];
  }
  return narrow_cast<Vertex>(movers.size());
}

std::vector<Vertex> SequentialMIS::black_set() const {
  std::vector<Vertex> out;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u)
    if (black(u)) out.push_back(u);
  return out;
}

}  // namespace ssmis
