// Type-erased process runtime: ONE measurement path for every rule.
//
// The harness used to dispatch on a closed `ProcessKind` enum, so only the
// three headline processes could reach `measure_stabilization` and every
// other protocol (daemon runs, the communication-model networks, any new
// workload) needed bespoke driver code. `Process` erases the concrete
// wrapper type behind the interface the harness actually needs —
// step/round/stabilized/trace snapshot/output/verify/force-state/shards —
// so trial scheduling, timeout accounting, per-vertex times, and the CLI
// all work for any registered protocol (harness/registry.hpp).
//
// Cost model: type erasure sits at TRIAL granularity, not step granularity.
// A trial calls the virtual `run()` once; the adapter's override immediately
// re-enters the templated `run_until_stabilized` loop on the concrete
// wrapper, so the hot stepping loop is exactly the pre-refactor code with
// zero added indirection. Drivers that interleave work between rounds
// (per-vertex times, the interactive simulator) pay one virtual call per
// ROUND — noise next to the O(|A_t| + sum deg(changed)) round body.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "core/trace.hpp"
#include "core/verify.hpp"
#include "graph/graph.hpp"

namespace ssmis {

class Process {
 public:
  virtual ~Process() = default;

  virtual const Graph& graph() const = 0;

  // One synchronous round (or one daemon step, for scheduler-driven
  // protocols — `round()` then counts steps; the horizon semantics match).
  virtual void step() = 0;
  virtual std::int64_t round() const = 0;

  // The protocol's own fixed-point predicate: for the MIS family this is
  // "the claimed set is an MIS", for matching "no vertex wants to move".
  virtual bool stabilized() const = 0;

  // The paper's bookkeeping aggregates for this round (B_t, A_t, I_t, V_t,
  // Gamma_t — protocols reinterpret them as documented in their adapter).
  virtual RoundStats snapshot() const = 0;

  // Runs until stabilized() or `max_rounds` further rounds. The default
  // implementation loops over the virtual step(); engine-wrapper adapters
  // override it with the devirtualized run_until_stabilized hot loop.
  virtual RunResult run(std::int64_t max_rounds, TraceMode mode) {
    RunResult result;
    if (mode == TraceMode::kPerRound) result.trace.push_back(snapshot());
    const std::int64_t start = round();
    while (!stabilized() && round() - start < max_rounds) {
      step();
      if (mode == TraceMode::kPerRound) result.trace.push_back(snapshot());
    }
    result.stabilized = stabilized();
    result.rounds = round() - start;
    return result;
  }

  // The protocol's output: the claimed MIS / matched vertices / etc.,
  // ascending. Meaningful once stabilized (and best-effort before).
  virtual std::vector<Vertex> output_set() const = 0;

  // u is covered by the protocol's stable structure (u ∈ N+(I_t) for the
  // MIS family; protocol-defined otherwise). Drives the per-vertex
  // stabilization-time tables; must be monotone once no faults are injected
  // for protocols that report such tables.
  virtual bool settled(Vertex u) const = 0;

  // Checks the stabilized output against the protocol's global validity
  // predicate (is_mis, is_maximal_matching, ...) and throws std::logic_error
  // naming the violation if it fails — the harness never reports an invalid
  // "success". Called by the harness after every stabilized trial.
  virtual void verify_output() const = 0;

  // Fault-injection hook: overwrite one vertex's raw state byte, keeping
  // the engine's counters/worklist consistent. Throws std::out_of_range /
  // std::invalid_argument on a bad vertex or state value.
  virtual void force_state(Vertex u, std::uint8_t raw_state) = 0;

  // Raw state byte of u (the engine color; decodes per protocol).
  virtual std::uint8_t raw_state(Vertex u) const = 0;

  // Number of raw state values force_state accepts.
  virtual int num_colors() const = 0;

  // Corrupts u's FULL per-vertex state (auxiliary clocks included) from 64
  // random bits — the transient-fault primitive behind the generic
  // inject_faults(Process&, ...). Returns whether any state was actually
  // overwritten (a protocol may have nothing to corrupt at u, e.g. an
  // isolated vertex under edge-state protocols). Default: a uniformly
  // random raw color.
  virtual bool inject_fault(Vertex u, std::uint64_t w) {
    force_state(u, static_cast<std::uint8_t>(
                       w % static_cast<std::uint64_t>(num_colors())));
    return true;
  }

  // Shards the engine's decide phase across the shared thread pool
  // (bit-identical trajectories at any value; 1 = sequential).
  virtual void set_shards(int shards) = 0;

  // Toggles the stable-periodic fast-forward optimization (on by default
  // where the protocol supports it; a no-op elsewhere). Purely a schedule
  // change: trajectories, aggregates, and outputs are bit-identical either
  // way, which tests/test_fast_forward.cpp pins.
  virtual void set_fast_forward(bool /*on*/) {}
};

// Optional per-wrapper toggle for the stable-periodic fast-forward
// schedule; wrappers without it silently ignore the request.
template <typename P>
concept ProcessHasFastForwardToggle = requires(P& p, bool on) {
  p.set_fast_forward(on);
};

// Adapter for wrappers satisfying the MisProcess concept (the direct
// engine-backed processes). Derived classes supply output/verify/settled/
// force-state; stepping, snapshots, and the devirtualized run loop are
// shared here.
template <MisProcess P>
class MisProcessAdapter : public Process {
 public:
  explicit MisProcessAdapter(P process) : process_(std::move(process)) {}

  const Graph& graph() const override { return process_.graph(); }
  void step() override { process_.step(); }
  std::int64_t round() const override { return process_.round(); }
  bool stabilized() const override { return process_.stabilized(); }
  RoundStats snapshot() const override { return ssmis::snapshot(process_); }
  RunResult run(std::int64_t max_rounds, TraceMode mode) override {
    return run_until_stabilized(process_, max_rounds, mode);
  }
  void set_shards(int shards) override { process_.set_shards(shards); }
  void set_fast_forward(bool on) override {
    if constexpr (ProcessHasFastForwardToggle<P>)
      process_.set_fast_forward(on);
    else
      (void)on;
  }

  P& impl() { return process_; }
  const P& impl() const { return process_; }

 protected:
  P process_;
};

// The obligations MisFamilyAdapter places on a wrapper beyond MisProcess —
// previously a prose comment, now a named concept so a wrapper missing one
// fails with `MisFamilyProcess` in the diagnostic instead of a template
// error inside an override body.
template <typename P>
concept MisFamilyProcess =
    MisProcess<P> &&
    requires(P p, const P cp, Vertex u, typename P::Engine::Color c) {
      typename P::Engine;
      cp.colors();
      { cp.black_set() } -> std::convertible_to<std::vector<Vertex>>;
      p.force_color(u, c);
      { cp.engine().unstable(u) } -> std::convertible_to<bool>;
      { cp.engine().num_colors() } -> std::convertible_to<int>;
    };

// Shared adapter for the MIS-family wrappers: output is the black set, the
// validity predicate is is_mis, settled(u) is membership in N+(I_t) (the
// engine's coverage counters), and faults route through force_color.
// Protocols with auxiliary per-vertex state (the 3-color switch) subclass
// and override inject_fault.
template <MisFamilyProcess P>
class MisFamilyAdapter : public MisProcessAdapter<P> {
 public:
  using Color = typename P::Engine::Color;
  using MisProcessAdapter<P>::MisProcessAdapter;

  std::vector<Vertex> output_set() const override {
    return this->process_.black_set();
  }
  bool settled(Vertex u) const override {
    return !this->process_.engine().unstable(u);
  }
  void verify_output() const override {
    verify_mis_output(this->graph(), this->process_.black_set());
  }
  void force_state(Vertex u, std::uint8_t raw) override {
    this->process_.force_color(u, static_cast<Color>(raw));
  }
  std::uint8_t raw_state(Vertex u) const override {
    return static_cast<std::uint8_t>(
        this->process_.colors()[static_cast<std::size_t>(u)]);
  }
  int num_colors() const override { return this->process_.engine().num_colors(); }
};

}  // namespace ssmis
