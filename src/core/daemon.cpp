#include "core/daemon.hpp"

#include <sstream>
#include <stdexcept>

namespace ssmis {

RandomSubsetDaemon::RandomSubsetDaemon(double rho, std::uint64_t seed)
    : rho_(rho), coins_(seed) {
  if (!(rho > 0.0) || rho > 1.0)
    throw std::invalid_argument("RandomSubsetDaemon: need 0 < rho <= 1");
}

std::vector<Vertex> RandomSubsetDaemon::activate(std::span<const Vertex> enabled,
                                                 std::int64_t step) {
  std::vector<Vertex> out;
  for (Vertex u : enabled) {
    if (coins_.bernoulli(step, u, CoinTag::kScheduler, rho_)) out.push_back(u);
  }
  return out;  // may be empty; DaemonMIS falls back to "all"
}

std::string RandomSubsetDaemon::name() const {
  std::ostringstream oss;
  oss << "subset(rho=" << rho_ << ")";
  return oss.str();
}

DaemonMIS::DaemonMIS(const Graph& g, std::vector<Color2> init,
                     std::unique_ptr<ActivationDaemon> daemon, const CoinOracle& coins)
    : engine_(g, std::move(init), TwoStateRule(coins)), daemon_(std::move(daemon)) {
  if (daemon_ == nullptr)
    throw std::invalid_argument("DaemonMIS: daemon must not be null");
}

Vertex DaemonMIS::step() {
  if (stabilized()) {
    ++steps_;
    return 0;
  }
  const std::vector<Vertex> enabled_now = enabled_set();
  std::vector<Vertex> chosen = daemon_->activate(
      std::span<const Vertex>(enabled_now.data(), enabled_now.size()), steps_ + 1);
  if (chosen.empty()) chosen = enabled_now;  // liveness fallback
  // All chosen vertices resample simultaneously against the frozen state;
  // the engine throws std::logic_error if the daemon activated a vertex that
  // is not enabled.
  engine_.apply_transitions(
      std::span<const Vertex>(chosen.data(), chosen.size()), steps_ + 1);
  ++steps_;
  return static_cast<Vertex>(chosen.size());
}

std::vector<Vertex> DaemonMIS::black_set() const {
  return engine_.select([this](Vertex u) { return black(u); });
}

std::int64_t DaemonMIS::run(std::int64_t max_steps) {
  const std::int64_t start = steps_;
  while (!stabilized() && steps_ - start < max_steps) step();
  return steps_ - start;
}

}  // namespace ssmis
