#include "core/daemon.hpp"

#include <sstream>
#include <stdexcept>

namespace ssmis {

RandomSubsetDaemon::RandomSubsetDaemon(double rho, std::uint64_t seed)
    : rho_(rho), coins_(seed) {
  if (!(rho > 0.0) || rho > 1.0)
    throw std::invalid_argument("RandomSubsetDaemon: need 0 < rho <= 1");
}

std::vector<Vertex> RandomSubsetDaemon::activate(std::span<const Vertex> enabled,
                                                 std::int64_t step) {
  std::vector<Vertex> out;
  for (Vertex u : enabled) {
    if (coins_.bernoulli(step, u, CoinTag::kScheduler, rho_)) out.push_back(u);
  }
  return out;  // may be empty; DaemonMIS falls back to "all"
}

std::string RandomSubsetDaemon::name() const {
  std::ostringstream oss;
  oss << "subset(rho=" << rho_ << ")";
  return oss.str();
}

DaemonMIS::DaemonMIS(const Graph& g, std::vector<Color2> init,
                     std::unique_ptr<ActivationDaemon> daemon, const CoinOracle& coins)
    : graph_(&g), coins_(coins), daemon_(std::move(daemon)), colors_(std::move(init)) {
  if (colors_.size() != static_cast<std::size_t>(g.num_vertices()))
    throw std::invalid_argument("DaemonMIS: init size != num_vertices");
  if (daemon_ == nullptr)
    throw std::invalid_argument("DaemonMIS: daemon must not be null");
  black_nbr_.assign(colors_.size(), 0);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (!black(u)) continue;
    for (Vertex v : g.neighbors(u)) ++black_nbr_[static_cast<std::size_t>(v)];
  }
  num_enabled_ = 0;
  for (Vertex u = 0; u < g.num_vertices(); ++u)
    if (enabled(u)) ++num_enabled_;
}

Vertex DaemonMIS::step() {
  if (stabilized()) {
    ++steps_;
    return 0;
  }
  const std::vector<Vertex> enabled_now = enabled_set();
  std::vector<Vertex> chosen = daemon_->activate(
      std::span<const Vertex>(enabled_now.data(), enabled_now.size()), steps_ + 1);
  if (chosen.empty()) chosen = enabled_now;  // liveness fallback
  const std::int64_t t = steps_ + 1;
  // All chosen vertices resample simultaneously against the frozen state.
  std::vector<Vertex> flipped;
  for (Vertex u : chosen) {
    if (!enabled(u))
      throw std::logic_error("DaemonMIS: daemon activated a non-enabled vertex");
    const Color2 drawn = coins_.fair_coin(t, u) ? Color2::kBlack : Color2::kWhite;
    if (drawn != colors_[static_cast<std::size_t>(u)]) flipped.push_back(u);
  }
  for (Vertex u : flipped) {
    auto& c = colors_[static_cast<std::size_t>(u)];
    const Vertex delta = (c == Color2::kWhite) ? 1 : -1;
    c = (c == Color2::kWhite) ? Color2::kBlack : Color2::kWhite;
    for (Vertex v : graph_->neighbors(u))
      black_nbr_[static_cast<std::size_t>(v)] += delta;
  }
  ++steps_;
  num_enabled_ = 0;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u)
    if (enabled(u)) ++num_enabled_;
  return static_cast<Vertex>(chosen.size());
}

std::vector<Vertex> DaemonMIS::black_set() const {
  std::vector<Vertex> out;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u)
    if (black(u)) out.push_back(u);
  return out;
}

std::vector<Vertex> DaemonMIS::enabled_set() const {
  std::vector<Vertex> out;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u)
    if (enabled(u)) out.push_back(u);
  return out;
}

std::int64_t DaemonMIS::run(std::int64_t max_steps) {
  const std::int64_t start = steps_;
  while (!stabilized() && steps_ - start < max_steps) step();
  return steps_ - start;
}

}  // namespace ssmis
