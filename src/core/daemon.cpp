#include "core/daemon.hpp"

#include <memory>
#include <sstream>
#include <stdexcept>

#include "core/init.hpp"
#include "core/process.hpp"
#include "harness/registry.hpp"
#include "rng/splitmix64.hpp"
#include "support/narrow.hpp"

namespace ssmis {

RandomSubsetDaemon::RandomSubsetDaemon(double rho, std::uint64_t seed)
    : rho_(rho), coins_(seed) {
  if (!(rho > 0.0) || rho > 1.0)
    throw std::invalid_argument("RandomSubsetDaemon: need 0 < rho <= 1");
}

std::vector<Vertex> RandomSubsetDaemon::activate(std::span<const Vertex> enabled,
                                                 std::int64_t step) {
  std::vector<Vertex> out;
  for (Vertex u : enabled) {
    if (coins_.bernoulli(step, u, CoinTag::kScheduler, rho_)) out.push_back(u);
  }
  return out;  // may be empty; DaemonMIS falls back to "all"
}

std::string RandomSubsetDaemon::name() const {
  std::ostringstream oss;
  oss << "subset(rho=" << rho_ << ")";
  return oss.str();
}

DaemonMIS::DaemonMIS(const Graph& g, std::vector<Color2> init,
                     std::unique_ptr<ActivationDaemon> daemon, const CoinOracle& coins)
    : engine_(g, std::move(init), TwoStateRule(coins)), daemon_(std::move(daemon)) {
  if (daemon_ == nullptr)
    throw std::invalid_argument("DaemonMIS: daemon must not be null");
}

Vertex DaemonMIS::step() {
  if (stabilized()) {
    ++steps_;
    return 0;
  }
  const std::vector<Vertex> enabled_now = enabled_set();
  std::vector<Vertex> chosen = daemon_->activate(
      std::span<const Vertex>(enabled_now.data(), enabled_now.size()), steps_ + 1);
  if (chosen.empty()) chosen = enabled_now;  // liveness fallback
  // All chosen vertices resample simultaneously against the frozen state;
  // the engine throws std::logic_error if the daemon activated a vertex that
  // is not enabled.
  engine_.apply_transitions(
      std::span<const Vertex>(chosen.data(), chosen.size()), steps_ + 1);
  ++steps_;
  return narrow_cast<Vertex>(chosen.size());
}

std::vector<Vertex> DaemonMIS::black_set() const {
  return engine_.select([this](Vertex u) { return black(u); });
}

std::int64_t DaemonMIS::run(std::int64_t max_steps) {
  const std::int64_t start = steps_;
  while (!stabilized() && steps_ - start < max_steps) step();
  return steps_ - start;
}

namespace {

// Process adapter: one daemon STEP is the unit the harness counts (a
// central step activates one vertex, a synchronous step up to n — steps are
// not comparable across daemons, but the horizon semantics are uniform).
class DaemonProcess final : public Process {
 public:
  explicit DaemonProcess(DaemonMIS process) : process_(std::move(process)) {}

  const Graph& graph() const override { return process_.graph(); }
  void step() override { process_.step(); }
  std::int64_t round() const override { return process_.steps(); }
  bool stabilized() const override { return process_.stabilized(); }

  RoundStats snapshot() const override {
    const DaemonMIS::Engine& e = process_.engine();
    RoundStats s;
    s.round = process_.steps();
    s.black = e.color_count(Color2::kBlack);
    s.active = e.num_active();
    s.stable_black = e.num_stable_black();
    s.unstable = e.num_unstable();
    s.gray = 0;
    return s;
  }

  // The base-class run() loop over the virtual step()/stabilized() is the
  // right driver here: one daemon step is small, and the per-step virtual
  // dispatch is noise next to the subset activation itself.

  std::vector<Vertex> output_set() const override { return process_.black_set(); }
  bool settled(Vertex u) const override { return !process_.engine().unstable(u); }

  void verify_output() const override {
    verify_mis_output(graph(), process_.black_set());
  }

  void force_state(Vertex u, std::uint8_t raw) override {
    process_.force_color(u, static_cast<Color2>(raw));
  }
  std::uint8_t raw_state(Vertex u) const override {
    return static_cast<std::uint8_t>(
        process_.colors()[static_cast<std::size_t>(u)]);
  }
  int num_colors() const override { return process_.engine().num_colors(); }

  void set_shards(int shards) override { process_.set_shards(shards); }

 private:
  DaemonMIS process_;
};

std::unique_ptr<ActivationDaemon> make_daemon(const std::string& kind,
                                              double rho, std::uint64_t seed) {
  if (kind == "synchronous") return std::make_unique<SynchronousDaemon>();
  if (kind == "central") return std::make_unique<CentralDaemon>(seed);
  if (kind == "random") return std::make_unique<RandomSubsetDaemon>(rho, seed);
  if (kind == "pairs") return std::make_unique<AdversarialPairDaemon>();
  throw std::invalid_argument(
      "protocol daemon: unknown daemon '" + kind +
      "' (valid: synchronous, central, random, pairs)");
}

const ProtocolRegistrar kDaemonProtocol{
    "daemon",
    "the 2-state rule under an activation daemon (--proto-daemon="
    "synchronous|central|random|pairs, --proto-rho for random); the "
    "synchronous daemon is bit-identical to 2state",
    {"daemon", "rho"},
    [](const Graph& g, const ProtocolParams& params, std::uint64_t seed) {
      const CoinOracle coins(seed);
      // The daemon's private scheduler coins must not alias the process's
      // phi_t(u) stream: derive its seed with one avalanching mix.
      return std::make_unique<DaemonProcess>(DaemonMIS(
          g, make_init2(g, params.init, coins),
          make_daemon(params.get_string("daemon", "synchronous"),
                      params.get_double("rho", 0.5), splitmix64_mix(seed)),
          coins));
    }};

}  // namespace

}  // namespace ssmis
