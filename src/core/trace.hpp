// Per-round measurement records shared by the runner and the harness.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ssmis {

// One round of the paper's bookkeeping sets: B_t (black), A_t (active),
// I_t (stable black), V_t (not yet stable) and, for the 3-color process,
// Gamma_t (gray).
struct RoundStats {
  std::int64_t round = 0;
  Vertex black = 0;
  Vertex active = 0;
  Vertex stable_black = 0;
  Vertex unstable = 0;
  Vertex gray = 0;
};

struct RunResult {
  bool stabilized = false;
  std::int64_t rounds = 0;  // stabilization time, or the horizon if not stabilized
  std::vector<RoundStats> trace;  // empty unless tracing was requested
};

}  // namespace ssmis
