#include "core/phase_clock.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/narrow.hpp"

namespace ssmis {

PhaseClock::PhaseClock(const Graph& g, int d, std::vector<int> init_levels,
                       const CoinOracle& coins, std::uint64_t zeta_num,
                       unsigned zeta_log2_den)
    : graph_(&g),
      coins_(coins),
      d_(d),
      zeta_num_(zeta_num),
      zeta_log2_den_(zeta_log2_den),
      levels_(std::move(init_levels)) {
  if (d < 1) throw std::invalid_argument("PhaseClock: d must be >= 1");
  if (zeta_log2_den == 0 || zeta_log2_den > 63 ||
      zeta_num == 0 || zeta_num >= (static_cast<std::uint64_t>(1) << zeta_log2_den))
    throw std::invalid_argument("PhaseClock: zeta must be in (0,1)");
  if (levels_.size() != static_cast<std::size_t>(g.num_vertices()))
    throw std::invalid_argument("PhaseClock: init size != num_vertices");
  for (int lvl : levels_) {
    if (lvl < 0 || lvl > top_level())
      throw std::invalid_argument("PhaseClock: init level out of range");
  }
}

PhaseClock PhaseClock::with_random_levels(const Graph& g, int d,
                                          const CoinOracle& coins,
                                          std::uint64_t zeta_num,
                                          unsigned zeta_log2_den) {
  std::vector<int> levels(static_cast<std::size_t>(g.num_vertices()));
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    levels[static_cast<std::size_t>(u)] = narrow_cast<int>(
        coins.word(-1, u, CoinTag::kSwitchBit) % static_cast<std::uint64_t>(d + 3));
  }
  return PhaseClock(g, d, std::move(levels), coins, zeta_num, zeta_log2_den);
}

double PhaseClock::zeta() const {
  return static_cast<double>(zeta_num_) /
         std::pow(2.0, static_cast<double>(zeta_log2_den_));
}

void PhaseClock::step() {
  const std::int64_t t = round_ + 1;
  const int top = top_level();
  scratch_.resize(levels_.size());
  for (Vertex u = 0; u < graph_->num_vertices(); ++u) {
    const int lvl = level(u);
    bool reset_to_top = false;
    if (lvl == top) {
      // b = 0 with probability zeta; b = 1 keeps the vertex at top.
      const bool b_is_zero =
          coins_.dyadic_bernoulli(t, u, CoinTag::kSwitchBit, zeta_num_, zeta_log2_den_);
      reset_to_top = !b_is_zero;
    }
    if (lvl == 0) reset_to_top = true;
    if (reset_to_top) {
      scratch_[static_cast<std::size_t>(u)] = top;
      continue;
    }
    int max_level = lvl;
    graph_->for_each_neighbor(u, [&](Vertex v) {
      max_level = std::max(max_level, level(v));
    });
    scratch_[static_cast<std::size_t>(u)] = max_level - 1;
  }
  levels_.swap(scratch_);
  ++round_;
}

void PhaseClock::advance(std::int64_t rounds) {
  for (std::int64_t i = 0; i < rounds; ++i) step();
}

void PhaseClock::force_level(Vertex u, int lvl) {
  if (u < 0 || u >= graph_->num_vertices())
    throw std::out_of_range("force_level: vertex out of range");
  if (lvl < 0 || lvl > top_level())
    throw std::invalid_argument("force_level: level out of range");
  levels_[static_cast<std::size_t>(u)] = lvl;
}

}  // namespace ssmis
