#include "core/matching.hpp"

#include <stdexcept>
#include <utility>

#include "core/process.hpp"
#include "core/verify.hpp"
#include "graph/csr_builder.hpp"
#include "harness/registry.hpp"
#include "support/narrow.hpp"

namespace ssmis {

namespace {

// CSR of incident edge ids over the vertices of g: ids grouped by endpoint,
// ascending within each row (edges_ is in ascending (u, v) order and each
// id is placed at both endpoints in id order). Shared by line_graph's edge
// stream and MaximalMatching's per-vertex settled/matched queries.
struct IncidentCsr {
  std::vector<std::int64_t> offsets;  // n + 1
  std::vector<Vertex> ids;            // 2m edge ids
};

IncidentCsr incident_edge_csr(const Graph& g, const std::vector<Edge>& edges) {
  IncidentCsr csr;
  csr.offsets.assign(static_cast<std::size_t>(g.num_vertices()) + 1, 0);
  for (const auto& [u, v] : edges) {
    ++csr.offsets[static_cast<std::size_t>(u) + 1];
    ++csr.offsets[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t i = 1; i < csr.offsets.size(); ++i)
    csr.offsets[i] += csr.offsets[i - 1];
  csr.ids.resize(edges.size() * 2);
  std::vector<std::int64_t> cursor(csr.offsets.begin(), csr.offsets.end() - 1);
  for (std::size_t k = 0; k < edges.size(); ++k) {
    const auto place = [&](Vertex endpoint) {
      csr.ids[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(endpoint)]++)] = static_cast<Vertex>(k);
    };
    place(edges[k].first);
    place(edges[k].second);
  }
  return csr;
}

// Every pair of edges meeting at one vertex is a line edge (a pair can
// meet at only one vertex in a simple graph, so no duplicates), and the
// per-vertex cliques replay deterministically — stream them through the
// two-pass CsrBuilder instead of buffering the sum-deg^2 edge list.
Graph build_line_graph(const Graph& g, const std::vector<Edge>& edges) {
  const IncidentCsr inc = incident_edge_csr(g, edges);
  return CsrBuilder::from_source(
      narrow_cast<Vertex>(edges.size()), [&](auto&& emit) {
        for (Vertex w = 0; w < g.num_vertices(); ++w) {
          const auto begin = inc.offsets[static_cast<std::size_t>(w)];
          const auto end = inc.offsets[static_cast<std::size_t>(w) + 1];
          for (auto i = begin; i < end; ++i) {
            for (auto j = i + 1; j < end; ++j)
              emit(inc.ids[static_cast<std::size_t>(i)],
                   inc.ids[static_cast<std::size_t>(j)]);
          }
        }
      });
}

}  // namespace

Graph line_graph(const Graph& g) { return build_line_graph(g, g.edge_list()); }

MaximalMatching::MaximalMatching(const Graph& g, std::vector<Edge> edges,
                                 std::unique_ptr<Graph> lg,
                                 std::vector<Color2> init,
                                 const CoinOracle& coins)
    : graph_(&g),
      edges_(std::move(edges)),
      line_graph_(std::move(lg)),
      line_process_(*line_graph_, std::move(init), coins) {
  IncidentCsr inc = incident_edge_csr(g, edges_);
  incident_offsets_ = std::move(inc.offsets);
  incident_ids_ = std::move(inc.ids);
}

MaximalMatching MaximalMatching::from_pattern(const Graph& g,
                                              InitPattern pattern,
                                              const CoinOracle& coins) {
  // The factory path (one construction per trial): edge list and line
  // graph are each computed exactly once.
  auto edges = g.edge_list();
  auto lg = std::make_unique<Graph>(build_line_graph(g, edges));
  auto init = make_init2(*lg, pattern, coins);
  return MaximalMatching(g, std::move(edges), std::move(lg), std::move(init),
                         coins);
}

MaximalMatching::MaximalMatching(const Graph& g, std::vector<Color2> init,
                                 const CoinOracle& coins)
    : MaximalMatching(g, g.edge_list(),
                      std::make_unique<Graph>(ssmis::line_graph(g)),
                      std::move(init), coins) {}

bool MaximalMatching::matched(Vertex u) const {
  for (Vertex k : incident_edges(u))
    if (claimed(k)) return true;
  return false;
}

std::vector<Edge> MaximalMatching::matching() const {
  std::vector<Edge> out;
  for (Vertex k : line_process_.black_set())
    out.push_back(edges_[static_cast<std::size_t>(k)]);
  return out;
}

std::vector<Vertex> MaximalMatching::matched_set() const {
  std::vector<Vertex> out;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u)
    if (matched(u)) out.push_back(u);
  return out;
}

bool MaximalMatching::settled(Vertex u) const {
  for (Vertex k : incident_edges(u)) {
    if (line_process_.engine().unstable(k)) return false;
  }
  return true;  // isolated vertices settle at round 0
}

namespace {

class MatchingProcess final : public Process {
 public:
  explicit MatchingProcess(MaximalMatching process)
      : process_(std::move(process)) {}

  const Graph& graph() const override { return process_.graph(); }
  void step() override { process_.step(); }
  std::int64_t round() const override { return process_.round(); }
  bool stabilized() const override { return process_.stabilized(); }
  RoundStats snapshot() const override { return ssmis::snapshot(process_); }
  RunResult run(std::int64_t max_rounds, TraceMode mode) override {
    return run_until_stabilized(process_, max_rounds, mode);
  }

  std::vector<Vertex> output_set() const override {
    return process_.matched_set();
  }
  bool settled(Vertex u) const override { return process_.settled(u); }

  void verify_output() const override {
    if (const auto violation =
            find_matching_violation(graph(), process_.matching()))
      throw std::logic_error("process stabilized on an invalid matching: " +
                             *violation);
  }

  // The states live on edges: force_state(u, bit) sets every incident
  // edge's claim (the node-crash reading); inject_fault corrupts ONE
  // incident edge chosen by the random word.
  void force_state(Vertex u, std::uint8_t raw) override {
    if (static_cast<int>(raw) >= 2)
      throw std::invalid_argument("matching: force_state takes 0 (free) or 1");
    for (Vertex k : process_.incident_edges(u))
      process_.force_edge(k, static_cast<Color2>(raw));
  }
  std::uint8_t raw_state(Vertex u) const override {
    return process_.matched(u) ? 1 : 0;
  }
  int num_colors() const override { return 2; }
  bool inject_fault(Vertex u, std::uint64_t w) override {
    const auto incident = process_.incident_edges(u);
    if (incident.empty()) return false;  // isolated: nothing to corrupt
    const Vertex k = incident[static_cast<std::size_t>(
        w % static_cast<std::uint64_t>(incident.size()))];
    process_.force_edge(k,
                        ((w >> 32) & 1) != 0 ? Color2::kBlack : Color2::kWhite);
    return true;
  }

  void set_shards(int shards) override { process_.set_shards(shards); }

 private:
  MaximalMatching process_;
};

const ProtocolRegistrar kMatchingProtocol{
    "matching",
    "self-stabilizing maximal matching = the 2-state process on the line "
    "graph (one claim bit per EDGE; conflicting claims resample, addable "
    "edges resample); output decoded to vertex pairs and verified by "
    "is_maximal_matching",
    {},
    [](const Graph& g, const ProtocolParams& params, std::uint64_t seed) {
      const CoinOracle coins(seed);
      return std::make_unique<MatchingProcess>(
          MaximalMatching::from_pattern(g, params.init, coins));
    }};

}  // namespace

}  // namespace ssmis
