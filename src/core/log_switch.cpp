#include "core/log_switch.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace ssmis {

RandomizedLogSwitch::RandomizedLogSwitch(const Graph& g, const CoinOracle& coins,
                                         std::uint64_t zeta_num,
                                         unsigned zeta_log2_den)
    : clock_(PhaseClock::with_random_levels(g, 3, coins, zeta_num, zeta_log2_den)) {}

RandomizedLogSwitch::RandomizedLogSwitch(const Graph& g, std::vector<int> init_levels,
                                         const CoinOracle& coins,
                                         std::uint64_t zeta_num,
                                         unsigned zeta_log2_den)
    : clock_(g, 3, std::move(init_levels), coins, zeta_num, zeta_log2_den) {}

PhaseClockSwitch::PhaseClockSwitch(const Graph& g, int d, const CoinOracle& coins,
                                   std::uint64_t zeta_num, unsigned zeta_log2_den)
    : clock_(PhaseClock::with_random_levels(g, d, coins, zeta_num, zeta_log2_den)) {}

PeriodicSwitch::PeriodicSwitch(std::int64_t off_len, std::int64_t on_len)
    : off_len_(off_len), on_len_(on_len) {
  if (off_len < 0 || on_len <= 0)
    throw std::invalid_argument("PeriodicSwitch: need off_len >= 0, on_len > 0");
}

SwitchRunStats measure_switch_runs(SwitchProcess& sw, Vertex n, std::int64_t rounds,
                                   std::int64_t warmup) {
  SwitchRunStats stats;
  stats.rounds_observed = rounds;
  stats.min_completed_off_run = std::numeric_limits<std::int64_t>::max();

  std::vector<char> run_value(static_cast<std::size_t>(n));
  std::vector<std::int64_t> run_length(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> run_start(static_cast<std::size_t>(n), 0);

  for (Vertex u = 0; u < n; ++u) {
    run_value[static_cast<std::size_t>(u)] = sw.on(u) ? 1 : 0;
    run_length[static_cast<std::size_t>(u)] = 1;
  }

  auto account_off_completion = [&](Vertex u, std::int64_t /*t*/) {
    // Completed off-run: counted toward S2's minimum only if it started
    // after the warm-up (S2 constrains runs beginning once the clock has
    // synchronized).
    if (run_start[static_cast<std::size_t>(u)] >= warmup) {
      stats.min_completed_off_run = std::min(
          stats.min_completed_off_run, run_length[static_cast<std::size_t>(u)]);
    }
  };

  for (std::int64_t t = 1; t <= rounds; ++t) {
    sw.step();
    for (Vertex u = 0; u < n; ++u) {
      const char now = sw.on(u) ? 1 : 0;
      const auto idx = static_cast<std::size_t>(u);
      if (now == run_value[idx]) {
        ++run_length[idx];
      } else {
        if (run_value[idx] == 0) {
          stats.max_off_run = std::max(stats.max_off_run, run_length[idx]);
          account_off_completion(u, t);
        } else if (run_start[idx] >= warmup) {
          stats.max_on_run = std::max(stats.max_on_run, run_length[idx]);
        }
        run_value[idx] = now;
        run_length[idx] = 1;
        run_start[idx] = t;
      }
    }
  }
  // Runs still open at the horizon: they lower-bound a genuine run length,
  // so they count toward the maxima (S1/S3 violations cannot hide behind the
  // horizon) but not toward the S2 minimum.
  for (Vertex u = 0; u < n; ++u) {
    const auto idx = static_cast<std::size_t>(u);
    if (run_value[idx] == 0) {
      stats.max_off_run = std::max(stats.max_off_run, run_length[idx]);
    } else if (run_start[idx] >= warmup) {
      stats.max_on_run = std::max(stats.max_on_run, run_length[idx]);
    }
  }
  if (stats.min_completed_off_run == std::numeric_limits<std::int64_t>::max())
    stats.min_completed_off_run = 0;  // no completed off-run observed
  return stats;
}

}  // namespace ssmis
