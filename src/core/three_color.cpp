#include "core/three_color.hpp"

namespace ssmis {

std::vector<Vertex> ThreeColorMIS::black_set() const {
  return engine_.select([this](Vertex u) { return black(u); });
}

}  // namespace ssmis
