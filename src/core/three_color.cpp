#include "core/three_color.hpp"

#include <memory>

#include "core/init.hpp"
#include "core/process.hpp"
#include "harness/registry.hpp"
#include "support/narrow.hpp"

namespace ssmis {

std::vector<Vertex> ThreeColorMIS::black_set() const {
  return engine_.select([this](Vertex u) { return black(u); });
}

namespace {

// The 3-color per-vertex state includes the switch level: a transient fault
// corrupts both (mirroring inject_faults(ThreeColorMIS&) in core/faults.cpp).
class ThreeColorProcess final : public MisFamilyAdapter<ThreeColorMIS> {
 public:
  using MisFamilyAdapter<ThreeColorMIS>::MisFamilyAdapter;

  bool inject_fault(Vertex u, std::uint64_t w) override {
    process_.force_color(u, static_cast<ColorG>(w % 3));
    PhaseClock* clock = nullptr;
    if (auto* sw = dynamic_cast<RandomizedLogSwitch*>(&process_.switch_process()))
      clock = &sw->clock();
    else if (auto* sw = dynamic_cast<PhaseClockSwitch*>(&process_.switch_process()))
      clock = &sw->clock();
    if (clock != nullptr) {
      clock->force_level(u, narrow_cast<int>(
                                (w >> 8) %
                                static_cast<std::uint64_t>(clock->num_states())));
    }
    return true;
  }
};

const ProtocolRegistrar kThreeColorProtocol{
    "3color",
    "the paper's 3-color MIS process (Definition 28) with the randomized "
    "6-state logarithmic switch (or --proto-switch-d=D for the generalized "
    "phase-clock switch): poly(log n) on G(n,p) for ALL p "
    "(--proto-fast-forward=0 disables the lazy-switch fast-forward)",
    {"switch-d", "fast-forward"},
    [](const Graph& g, const ProtocolParams& params, std::uint64_t seed) {
      const CoinOracle coins(seed);
      auto init = make_init_g(g, params.init, coins);
      std::unique_ptr<ThreeColorProcess> p;
      if (params.has("switch-d")) {
        const int d = static_cast<int>(params.get_int("switch-d", 3));
        p = std::make_unique<ThreeColorProcess>(ThreeColorMIS(
            g, std::move(init), std::make_unique<PhaseClockSwitch>(g, d, coins),
            coins));
      } else {
        p = std::make_unique<ThreeColorProcess>(
            ThreeColorMIS::with_randomized_switch(g, std::move(init), coins));
      }
      p->impl().set_fast_forward(params.get_bool("fast-forward", true));
      return p;
    }};

}  // namespace

}  // namespace ssmis
