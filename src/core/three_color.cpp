#include "core/three_color.hpp"

#include <stdexcept>

namespace ssmis {

ThreeColorMIS::ThreeColorMIS(const Graph& g, std::vector<ColorG> init,
                             std::unique_ptr<SwitchProcess> sw,
                             const CoinOracle& coins)
    : graph_(&g), coins_(coins), colors_(std::move(init)), switch_(std::move(sw)) {
  if (colors_.size() != static_cast<std::size_t>(g.num_vertices()))
    throw std::invalid_argument("ThreeColorMIS: init size != num_vertices");
  if (switch_ == nullptr)
    throw std::invalid_argument("ThreeColorMIS: switch must not be null");
  if (switch_->round() != 0)
    throw std::invalid_argument("ThreeColorMIS: switch must start at round 0");
  rebuild_counters();
}

ThreeColorMIS ThreeColorMIS::with_randomized_switch(const Graph& g,
                                                    std::vector<ColorG> init,
                                                    const CoinOracle& coins) {
  return ThreeColorMIS(g, std::move(init),
                       std::make_unique<RandomizedLogSwitch>(g, coins), coins);
}

void ThreeColorMIS::rebuild_counters() {
  black_nbr_.assign(colors_.size(), 0);
  num_black_ = 0;
  num_gray_ = 0;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u) {
    const ColorG c = color(u);
    if (c == ColorG::kGray) ++num_gray_;
    if (!is_black(c)) continue;
    ++num_black_;
    for (Vertex v : graph_->neighbors(u)) ++black_nbr_[static_cast<std::size_t>(v)];
  }
  recount_violations();
}

void ThreeColorMIS::recount_violations() {
  num_violations_ = 0;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u) {
    const bool ok = black(u) ? black_neighbor_count(u) == 0
                             : black_neighbor_count(u) > 0;
    if (!ok) ++num_violations_;
  }
}

void ThreeColorMIS::step() {
  const std::int64_t t = round_ + 1;
  const Vertex n = graph_->num_vertices();
  scratch_next_.resize(colors_.size());
  // Phase 1: decide next colors from the frozen colors and the switch value
  // sigma_{t-1} (the switch state at the end of the previous round).
  for (Vertex u = 0; u < n; ++u) {
    const ColorG c = color(u);
    ColorG next = c;
    if (c == ColorG::kBlack && black_neighbor_count(u) > 0) {
      next = coins_.fair_coin(t, u) ? ColorG::kBlack : ColorG::kGray;
    } else if (c == ColorG::kWhite && black_neighbor_count(u) == 0) {
      next = coins_.fair_coin(t, u) ? ColorG::kBlack : ColorG::kWhite;
    } else if (c == ColorG::kGray && switch_->on(u)) {
      next = ColorG::kWhite;
    }
    scratch_next_[static_cast<std::size_t>(u)] = next;
  }
  // Phase 2: apply diffs and patch counters.
  for (Vertex u = 0; u < n; ++u) {
    const ColorG prev = colors_[static_cast<std::size_t>(u)];
    const ColorG next = scratch_next_[static_cast<std::size_t>(u)];
    if (prev == next) continue;
    colors_[static_cast<std::size_t>(u)] = next;
    num_gray_ += static_cast<int>(next == ColorG::kGray) -
                 static_cast<int>(prev == ColorG::kGray);
    const int black_delta =
        static_cast<int>(is_black(next)) - static_cast<int>(is_black(prev));
    if (black_delta != 0) {
      num_black_ += black_delta;
      for (Vertex v : graph_->neighbors(u))
        black_nbr_[static_cast<std::size_t>(v)] += black_delta;
    }
  }
  // The switch advances in lockstep, *after* its round-(t-1) value was read.
  switch_->step();
  ++round_;
  recount_violations();
}

Vertex ThreeColorMIS::num_active() const {
  Vertex count = 0;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u)
    if (active(u)) ++count;
  return count;
}

Vertex ThreeColorMIS::num_stable_black() const {
  Vertex count = 0;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u)
    if (stable_black(u)) ++count;
  return count;
}

Vertex ThreeColorMIS::num_unstable() const {
  std::vector<char> covered(colors_.size(), 0);
  for (Vertex u = 0; u < graph_->num_vertices(); ++u) {
    if (!stable_black(u)) continue;
    covered[static_cast<std::size_t>(u)] = 1;
    for (Vertex v : graph_->neighbors(u)) covered[static_cast<std::size_t>(v)] = 1;
  }
  Vertex unstable = 0;
  for (char c : covered)
    if (!c) ++unstable;
  return unstable;
}

std::vector<Vertex> ThreeColorMIS::black_set() const {
  std::vector<Vertex> out;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u)
    if (black(u)) out.push_back(u);
  return out;
}

void ThreeColorMIS::force_color(Vertex u, ColorG c) {
  if (u < 0 || u >= graph_->num_vertices())
    throw std::out_of_range("force_color: vertex out of range");
  if (colors_[static_cast<std::size_t>(u)] == c) return;
  colors_[static_cast<std::size_t>(u)] = c;
  rebuild_counters();
}

}  // namespace ssmis
