#include "core/runner.hpp"

#include <sstream>

namespace ssmis {

std::string trace_to_csv(const RunResult& result) {
  std::ostringstream oss;
  oss << "round,black,active,stable_black,unstable,gray\n";
  for (const RoundStats& s : result.trace) {
    oss << s.round << ',' << s.black << ',' << s.active << ',' << s.stable_black
        << ',' << s.unstable << ',' << s.gray << '\n';
  }
  return oss.str();
}

}  // namespace ssmis
