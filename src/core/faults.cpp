#include "core/faults.hpp"

#include "support/narrow.hpp"

namespace ssmis {

namespace {

// Decision stream for fault injection: salted rounds far below zero so they
// can never collide with process rounds.
std::int64_t fault_round(std::int64_t salt, int which) {
  return -1000000 - salt * 4 - which;
}

}  // namespace

FaultReport inject_faults(Process& process, double fraction, std::int64_t salt) {
  FaultReport report;
  CoinOracle fault_coins(static_cast<std::uint64_t>(salt) * 0x9e3779b97f4a7c15ULL + 43);
  for (Vertex u = 0; u < process.graph().num_vertices(); ++u) {
    if (!fault_coins.bernoulli(0, u, CoinTag::kFault, fraction)) continue;
    if (process.inject_fault(u, fault_coins.word(1, u, CoinTag::kFault)))
      ++report.corrupted;
  }
  return report;
}

FaultReport inject_faults(TwoStateMIS& process, double fraction, std::int64_t salt) {
  FaultReport report;
  const CoinOracle& coins = process.coins();
  for (Vertex u = 0; u < process.graph().num_vertices(); ++u) {
    if (!coins.bernoulli(fault_round(salt, 0), u, CoinTag::kFault, fraction)) continue;
    const Color2 c = coins.fair_coin(fault_round(salt, 1), u, CoinTag::kFault)
                         ? Color2::kBlack
                         : Color2::kWhite;
    process.force_color(u, c);
    ++report.corrupted;
  }
  return report;
}

FaultReport inject_faults(ThreeStateMIS& process, double fraction, std::int64_t salt) {
  FaultReport report;
  // ThreeStateMIS does not expose its oracle; derive decisions from a salt-
  // seeded oracle instead. Determinism per salt is all the experiments need.
  CoinOracle fault_coins(static_cast<std::uint64_t>(salt) * 0x9e3779b97f4a7c15ULL + 17);
  for (Vertex u = 0; u < process.graph().num_vertices(); ++u) {
    if (!fault_coins.bernoulli(0, u, CoinTag::kFault, fraction)) continue;
    const std::uint64_t w = fault_coins.word(1, u, CoinTag::kFault);
    const Color3 c = static_cast<Color3>(w % 3);
    process.force_color(u, c);
    ++report.corrupted;
  }
  return report;
}

FaultReport inject_faults(ThreeColorMIS& process, double fraction, std::int64_t salt) {
  FaultReport report;
  CoinOracle fault_coins(static_cast<std::uint64_t>(salt) * 0x9e3779b97f4a7c15ULL + 29);
  auto* rand_switch = dynamic_cast<RandomizedLogSwitch*>(&process.switch_process());
  auto* clock_switch = dynamic_cast<PhaseClockSwitch*>(&process.switch_process());
  for (Vertex u = 0; u < process.graph().num_vertices(); ++u) {
    if (!fault_coins.bernoulli(0, u, CoinTag::kFault, fraction)) continue;
    const std::uint64_t w = fault_coins.word(1, u, CoinTag::kFault);
    process.force_color(u, static_cast<ColorG>(w % 3));
    PhaseClock* clock = rand_switch != nullptr ? &rand_switch->clock()
                        : clock_switch != nullptr ? &clock_switch->clock()
                                                  : nullptr;
    if (clock != nullptr) {
      const int lvl = narrow_cast<int>((w >> 8) %
                                       static_cast<std::uint64_t>(clock->num_states()));
      clock->force_level(u, lvl);
    }
    ++report.corrupted;
  }
  return report;
}

}  // namespace ssmis
