#include "core/engine.hpp"

#include <algorithm>

namespace ssmis {

void VertexWorklist::reset(Vertex n) {
  items_.clear();
  pos_.assign(static_cast<std::size_t>(n), -1);
}

void VertexWorklist::insert(Vertex u) {
  Vertex& p = pos_[static_cast<std::size_t>(u)];
  if (p >= 0) return;
  p = narrow_cast<Vertex>(items_.size());
  items_.push_back(u);
}

void VertexWorklist::erase(Vertex u) {
  Vertex& p = pos_[static_cast<std::size_t>(u)];
  if (p < 0) return;
  const Vertex last = items_.back();
  items_[static_cast<std::size_t>(p)] = last;
  pos_[static_cast<std::size_t>(last)] = p;
  items_.pop_back();
  p = -1;
}

std::vector<Vertex> VertexWorklist::sorted() const {
  std::vector<Vertex> out = items_;
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ssmis
