// Parameterized variant of the 2-state MIS process, for the ablation
// experiments around the paper's design choices:
//
//  * `black_bias` q: an active vertex resamples to black with probability q
//    (the paper fixes q = 1/2; footnote 1 notes the transition choice is a
//    simplification for analysis, so we measure how q affects speed);
//  * `eager_white` : a white active vertex becomes black with probability 1
//    (the deterministic transition footnote 1 mentions), while black active
//    vertices still resample with bias q.
//
// With q = 1/2 and eager_white = false this is exactly Definition 4, which
// the test suite verifies against TwoStateMIS.
//
// Implemented as an engine rule (core/engine.hpp): same activity predicate
// as the 2-state process, different coin stream (CoinTag::kAblation).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/color.hpp"
#include "core/engine.hpp"
#include "graph/graph.hpp"
#include "rng/coin_oracle.hpp"

namespace ssmis {

class TwoStateVariantRule {
 public:
  using Color = Color2;
  static constexpr bool kTracksStability = true;

  // Throws std::invalid_argument unless 0 < black_bias < 1 (q = 0 or 1 can
  // deadlock).
  TwoStateVariantRule(const CoinOracle& coins, double black_bias, bool eager_white)
      : coins_(coins), black_bias_(black_bias), eager_white_(eager_white) {
    if (!(black_bias > 0.0) || !(black_bias < 1.0))
      throw std::invalid_argument("TwoStateVariant: black_bias must be in (0,1)");
  }

  int num_colors() const { return 2; }
  int num_counters() const { return 1; }
  Vertex contribution(Color2 c, int) const { return is_black(c) ? 1 : 0; }

  bool active(Color2 c, const Vertex* cnt) const {
    return is_black(c) ? cnt[0] > 0 : cnt[0] == 0;
  }
  bool scheduled(Color2 c, const Vertex* cnt) const { return active(c, cnt); }
  bool violating(Color2 c, const Vertex* cnt) const { return active(c, cnt); }
  bool stable_black(Color2 c, const Vertex* cnt) const {
    return is_black(c) && cnt[0] == 0;
  }

  Color2 transition(Vertex u, Color2 c, const Vertex*, std::int64_t t) const {
    bool to_black;
    if (eager_white_ && !is_black(c)) {
      to_black = true;  // deterministic white -> black
    } else {
      to_black = coins_.bernoulli(t, u, CoinTag::kAblation, black_bias_);
    }
    return to_black ? Color2::kBlack : Color2::kWhite;
  }

  double black_bias() const { return black_bias_; }
  bool eager_white() const { return eager_white_; }

 private:
  CoinOracle coins_;
  double black_bias_;
  bool eager_white_;
};

class TwoStateVariant {
 public:
  using Engine = ProcessEngine<TwoStateVariantRule>;

  // Throws std::invalid_argument unless 0 < black_bias < 1 and init matches
  // the graph size.
  TwoStateVariant(const Graph& g, std::vector<Color2> init, const CoinOracle& coins,
                  double black_bias, bool eager_white)
      : engine_(g, std::move(init),
                TwoStateVariantRule(coins, black_bias, eager_white)) {}

  void step() { engine_.step(); }
  std::int64_t round() const { return engine_.round(); }

  const Graph& graph() const { return engine_.graph(); }
  const std::vector<Color2>& colors() const { return engine_.colors(); }
  bool black(Vertex u) const { return is_black(engine_.color(u)); }
  Vertex black_neighbor_count(Vertex u) const { return engine_.counter(u, 0); }
  bool active(Vertex u) const { return engine_.active(u); }

  bool stabilized() const { return engine_.stabilized(); }

  Vertex num_black() const { return engine_.color_count(Color2::kBlack); }
  Vertex num_active() const { return engine_.num_active(); }
  Vertex num_stable_black() const { return engine_.num_stable_black(); }
  Vertex num_unstable() const { return engine_.num_unstable(); }
  Vertex num_gray() const { return 0; }

  std::vector<Vertex> black_set() const;

  double black_bias() const { return engine_.rule().black_bias(); }
  bool eager_white() const { return engine_.rule().eager_white(); }

  // Fault-injection / test hook: overwrite one vertex's color in O(deg(u)),
  // keeping the internal counters consistent.
  void force_color(Vertex u, Color2 c) { engine_.force_color(u, c); }

  // Shards the decide phase across the shared thread pool (bit-identical
  // trajectories at any value; 1 = sequential).
  void set_shards(int shards) { engine_.set_shards(shards); }

  const Engine& engine() const { return engine_; }

 private:
  Engine engine_;
};

}  // namespace ssmis
