// Parameterized variant of the 2-state MIS process, for the ablation
// experiments around the paper's design choices:
//
//  * `black_bias` q: an active vertex resamples to black with probability q
//    (the paper fixes q = 1/2; footnote 1 notes the transition choice is a
//    simplification for analysis, so we measure how q affects speed);
//  * `eager_white` : a white active vertex becomes black with probability 1
//    (the deterministic transition footnote 1 mentions), while black active
//    vertices still resample with bias q.
//
// With q = 1/2 and eager_white = false this is exactly Definition 4, which
// the test suite verifies against TwoStateMIS.
#pragma once

#include <cstdint>
#include <vector>

#include "core/color.hpp"
#include "graph/graph.hpp"
#include "rng/coin_oracle.hpp"

namespace ssmis {

class TwoStateVariant {
 public:
  // Throws std::invalid_argument unless 0 < black_bias < 1 (q = 0 or 1 can
  // deadlock) and init matches the graph size.
  TwoStateVariant(const Graph& g, std::vector<Color2> init, const CoinOracle& coins,
                  double black_bias, bool eager_white);

  void step();
  std::int64_t round() const { return round_; }

  const Graph& graph() const { return *graph_; }
  const std::vector<Color2>& colors() const { return colors_; }
  bool black(Vertex u) const {
    return colors_[static_cast<std::size_t>(u)] == Color2::kBlack;
  }
  Vertex black_neighbor_count(Vertex u) const {
    return black_nbr_[static_cast<std::size_t>(u)];
  }
  bool active(Vertex u) const {
    return black(u) ? black_neighbor_count(u) > 0 : black_neighbor_count(u) == 0;
  }

  bool stabilized() const { return num_active_ == 0; }

  Vertex num_black() const { return num_black_; }
  Vertex num_active() const { return num_active_; }
  Vertex num_stable_black() const;
  Vertex num_unstable() const;
  Vertex num_gray() const { return 0; }

  std::vector<Vertex> black_set() const;

  double black_bias() const { return black_bias_; }
  bool eager_white() const { return eager_white_; }

 private:
  const Graph* graph_;
  CoinOracle coins_;
  std::vector<Color2> colors_;
  std::vector<Vertex> black_nbr_;
  std::vector<Vertex> scratch_changed_;
  std::int64_t round_ = 0;
  Vertex num_black_ = 0;
  Vertex num_active_ = 0;
  double black_bias_;
  bool eager_white_;
};

}  // namespace ssmis
