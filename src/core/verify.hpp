// MIS verification and reference construction.
//
// These functions take the global graph view (which the distributed
// processes never do) and are the ground truth for tests, the runner's
// stabilization cross-checks, and the experiment harness.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace ssmis {

// No two set members are adjacent. Accepts membership as a 0/1 vector of
// size n. Throws std::invalid_argument on size mismatch.
bool is_independent_set(const Graph& g, const std::vector<char>& in_set);

// Every non-member has a member neighbor (i.e. the set is dominating, which
// together with independence makes it maximal).
bool is_maximal(const Graph& g, const std::vector<char>& in_set);

bool is_mis(const Graph& g, const std::vector<char>& in_set);

// Vertex-list conveniences.
bool is_independent_set(const Graph& g, const std::vector<Vertex>& members);
bool is_maximal(const Graph& g, const std::vector<Vertex>& members);
bool is_mis(const Graph& g, const std::vector<Vertex>& members);

// Human-readable description of the first violation found, or nullopt if
// the set is an MIS. For test failure messages.
std::optional<std::string> find_mis_violation(const Graph& g,
                                              const std::vector<char>& in_set);

// Deterministic greedy MIS (ascending vertex order): the reference answer
// for size comparisons.
std::vector<Vertex> greedy_mis(const Graph& g);

std::vector<char> members_to_mask(Vertex n, const std::vector<Vertex>& members);

}  // namespace ssmis
