// MIS verification and reference construction.
//
// These functions take the global graph view (which the distributed
// processes never do) and are the ground truth for tests, the runner's
// stabilization cross-checks, and the experiment harness.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace ssmis {

// No two set members are adjacent. Accepts membership as a 0/1 vector of
// size n. Throws std::invalid_argument on size mismatch.
bool is_independent_set(const Graph& g, const std::vector<char>& in_set);

// Every non-member has a member neighbor (i.e. the set is dominating, which
// together with independence makes it maximal).
bool is_maximal(const Graph& g, const std::vector<char>& in_set);

bool is_mis(const Graph& g, const std::vector<char>& in_set);

// Vertex-list conveniences.
bool is_independent_set(const Graph& g, const std::vector<Vertex>& members);
bool is_maximal(const Graph& g, const std::vector<Vertex>& members);
bool is_mis(const Graph& g, const std::vector<Vertex>& members);

// Human-readable description of the first violation found, or nullopt if
// the set is an MIS. For test failure messages.
std::optional<std::string> find_mis_violation(const Graph& g,
                                              const std::vector<char>& in_set);

// Harness-side validity abort shared by every MIS-family Process adapter:
// throws std::logic_error naming the violation unless `claimed` is an MIS.
void verify_mis_output(const Graph& g, const std::vector<Vertex>& claimed);

// Matching validity over an explicit EDGE list: every listed pair is a real
// edge of g and no vertex appears twice.
bool is_matching(const Graph& g, const std::vector<Edge>& matching);

// Maximal matching: a matching such that every edge of g shares an endpoint
// with a matching edge (nothing can be added).
bool is_maximal_matching(const Graph& g, const std::vector<Edge>& matching);

// First maximal-matching violation, or nullopt. For test failure messages
// and the harness's validity aborts.
std::optional<std::string> find_matching_violation(
    const Graph& g, const std::vector<Edge>& matching);

// Deterministic greedy maximal matching (ascending edge order): the
// reference answer for size comparisons. Returns matched pairs (u < v).
std::vector<Edge> greedy_maximal_matching(const Graph& g);

// Deterministic greedy MIS (ascending vertex order): the reference answer
// for size comparisons.
std::vector<Vertex> greedy_mis(const Graph& g);

std::vector<char> members_to_mask(Vertex n, const std::vector<Vertex>& members);

}  // namespace ssmis
