#include "core/init.hpp"

#include <algorithm>

namespace ssmis {

std::string to_string(Color2 c) {
  return c == Color2::kBlack ? "black" : "white";
}

std::string to_string(Color3 c) {
  switch (c) {
    case Color3::kWhite: return "white";
    case Color3::kBlack0: return "black0";
    case Color3::kBlack1: return "black1";
  }
  return "?";
}

std::string to_string(ColorG c) {
  switch (c) {
    case ColorG::kWhite: return "white";
    case ColorG::kBlack: return "black";
    case ColorG::kGray: return "gray";
  }
  return "?";
}

std::string to_string(InitPattern pattern) {
  switch (pattern) {
    case InitPattern::kAllWhite: return "all-white";
    case InitPattern::kAllBlack: return "all-black";
    case InitPattern::kUniformRandom: return "uniform-random";
    case InitPattern::kAlternating: return "alternating";
    case InitPattern::kHighDegreeBlack: return "high-degree-black";
    case InitPattern::kOneBlack: return "one-black";
  }
  return "?";
}

const std::vector<InitPattern>& all_init_patterns() {
  static const std::vector<InitPattern> kAll = {
      InitPattern::kAllWhite,        InitPattern::kAllBlack,
      InitPattern::kUniformRandom,   InitPattern::kAlternating,
      InitPattern::kHighDegreeBlack, InitPattern::kOneBlack,
  };
  return kAll;
}

namespace {

// Degree above (strictly) the median => black. Uses nth_element on a copy.
bool high_degree(const Graph& g, Vertex u) {
  static thread_local const Graph* cached_graph = nullptr;
  static thread_local Vertex cached_median = 0;
  if (cached_graph != &g) {
    std::vector<Vertex> degrees = g.degrees();
    if (!degrees.empty()) {
      auto mid = degrees.begin() + degrees.size() / 2;
      std::nth_element(degrees.begin(), mid, degrees.end());
      cached_median = *mid;
    } else {
      cached_median = 0;
    }
    cached_graph = &g;
  }
  return g.degree(u) > cached_median;
}

// Shared pattern logic: returns true if the vertex starts "black".
bool black_at(const Graph& g, InitPattern pattern, const CoinOracle& coins,
              Vertex u) {
  switch (pattern) {
    case InitPattern::kAllWhite: return false;
    case InitPattern::kAllBlack: return true;
    case InitPattern::kUniformRandom:
      return coins.fair_coin(0, u, CoinTag::kInit);
    case InitPattern::kAlternating: return (u % 2) == 0;
    case InitPattern::kHighDegreeBlack: return high_degree(g, u);
    case InitPattern::kOneBlack: return u == 0;
  }
  return false;
}

}  // namespace

std::vector<Color2> make_init2(const Graph& g, InitPattern pattern,
                               const CoinOracle& coins) {
  std::vector<Color2> init(static_cast<std::size_t>(g.num_vertices()));
  for (Vertex u = 0; u < g.num_vertices(); ++u)
    init[static_cast<std::size_t>(u)] =
        black_at(g, pattern, coins, u) ? Color2::kBlack : Color2::kWhite;
  return init;
}

std::vector<Color3> make_init3(const Graph& g, InitPattern pattern,
                               const CoinOracle& coins) {
  std::vector<Color3> init(static_cast<std::size_t>(g.num_vertices()));
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (!black_at(g, pattern, coins, u)) {
      init[static_cast<std::size_t>(u)] = Color3::kWhite;
    } else {
      // Split black starts between the two black states deterministically.
      init[static_cast<std::size_t>(u)] =
          coins.fair_coin(1, u, CoinTag::kInit) ? Color3::kBlack1 : Color3::kBlack0;
    }
  }
  return init;
}

std::vector<ColorG> make_init_g(const Graph& g, InitPattern pattern,
                                const CoinOracle& coins) {
  std::vector<ColorG> init(static_cast<std::size_t>(g.num_vertices()));
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (black_at(g, pattern, coins, u)) {
      init[static_cast<std::size_t>(u)] = ColorG::kBlack;
    } else {
      // A third of non-black starters begin gray: adversarial inits must
      // exercise the gray state too.
      init[static_cast<std::size_t>(u)] =
          (pattern == InitPattern::kUniformRandom &&
           coins.dyadic_bernoulli(2, u, CoinTag::kInit, 1, 2))
              ? ColorG::kGray
              : ColorG::kWhite;
    }
  }
  return init;
}

}  // namespace ssmis
