// Transient-fault injection.
//
// Self-stabilization (Dijkstra 1974) means convergence from *any* state, so
// a transient fault — an adversary rewriting a subset of vertex states — is
// survived by construction: the post-fault configuration is just another
// initial state. The injector makes this concrete for experiments E14 and
// the fault-recovery example: it corrupts a random fraction of vertices to
// uniformly random states (colors, and switch levels for the 3-color
// process), deterministically per (oracle seed, salt).
#pragma once

#include <cstdint>

#include "core/process.hpp"
#include "core/three_color.hpp"
#include "core/three_state.hpp"
#include "core/two_state.hpp"
#include "rng/coin_oracle.hpp"

namespace ssmis {

struct FaultReport {
  Vertex corrupted = 0;  // number of vertices rewritten
};

// Type-erased injection for any registry protocol: corrupts each vertex
// independently w.p. `fraction` through Process::inject_fault (which covers
// the full per-vertex state, switch levels included). Deterministic per
// (fraction, salt); `salt` decorrelates successive injections.
FaultReport inject_faults(Process& process, double fraction, std::int64_t salt);

// Each vertex is independently corrupted with probability `fraction`; a
// corrupted vertex gets a uniformly random color (which may equal its
// current one). `salt` decorrelates successive injections.
FaultReport inject_faults(TwoStateMIS& process, double fraction, std::int64_t salt);
FaultReport inject_faults(ThreeStateMIS& process, double fraction, std::int64_t salt);
// Also randomizes the phase-clock level of corrupted vertices when the
// switch is a RandomizedLogSwitch or PhaseClockSwitch.
FaultReport inject_faults(ThreeColorMIS& process, double fraction, std::int64_t salt);

}  // namespace ssmis
