// The 3-color MIS process (Definition 28): the paper's extension that is
// provably poly(log n) on G(n,p) for the *entire* range 0 <= p <= 1
// (Theorem 3 / Theorem 32).
//
// Two sub-processes run in lockstep on the same graph:
//   1. a logarithmic switch emitting sigma_t(u) ∈ {on, off};
//   2. a 2-state-like color process over {black, white, gray}:
//        black with a black neighbor  -> uniform random {black, gray}
//        white with no black neighbor -> uniform random {black, white}
//        gray and sigma_{t-1} = on    -> white
//        otherwise                    -> unchanged
//
// Gray vertices behave like non-active white vertices toward their
// neighbors; the switch rate-limits how often a vertex can return to the
// white (and hence black-competing) pool, which is what fixes the dense
// regime the plain 2-state analysis cannot handle.
//
// With the randomized 6-state switch the combined per-vertex state space is
// 3 x 6 = 18 states, matching the paper's Theorem 3.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/color.hpp"
#include "core/log_switch.hpp"
#include "graph/graph.hpp"
#include "rng/coin_oracle.hpp"

namespace ssmis {

class ThreeColorMIS {
 public:
  // Takes ownership of the switch, which must be freshly constructed (round
  // 0) and built over the same graph. Throws std::invalid_argument on size
  // mismatch or null/misaligned switch.
  ThreeColorMIS(const Graph& g, std::vector<ColorG> init,
                std::unique_ptr<SwitchProcess> sw, const CoinOracle& coins);

  // Paper-default construction: randomized 6-state logarithmic switch with
  // zeta = 2^-7 and random initial levels.
  static ThreeColorMIS with_randomized_switch(const Graph& g,
                                              std::vector<ColorG> init,
                                              const CoinOracle& coins);

  void step();
  std::int64_t round() const { return round_; }

  const Graph& graph() const { return *graph_; }
  const std::vector<ColorG>& colors() const { return colors_; }
  ColorG color(Vertex u) const { return colors_[static_cast<std::size_t>(u)]; }
  bool black(Vertex u) const { return is_black(color(u)); }
  bool gray(Vertex u) const { return color(u) == ColorG::kGray; }

  Vertex black_neighbor_count(Vertex u) const {
    return black_nbr_[static_cast<std::size_t>(u)];
  }

  // u takes a random transition next round (gray vertices never do).
  bool active(Vertex u) const {
    const ColorG c = color(u);
    if (c == ColorG::kBlack) return black_neighbor_count(u) > 0;
    if (c == ColorG::kWhite) return black_neighbor_count(u) == 0;
    return false;
  }

  bool stable_black(Vertex u) const { return black(u) && black_neighbor_count(u) == 0; }

  // Stabilized ⟺ black set is an MIS: no black-black edge, and every
  // non-black vertex (white *or* gray) has a black neighbor.
  bool stabilized() const { return num_violations_ == 0; }

  Vertex num_black() const { return num_black_; }
  Vertex num_gray() const { return num_gray_; }
  Vertex num_active() const;
  Vertex num_stable_black() const;
  Vertex num_unstable() const;

  std::vector<Vertex> black_set() const;

  const SwitchProcess& switch_process() const { return *switch_; }
  SwitchProcess& switch_process() { return *switch_; }

  // Combined per-vertex state count (3 colors x switch states).
  int num_states() const { return 3 * switch_->num_states(); }

  void force_color(Vertex u, ColorG c);

 private:
  void rebuild_counters();
  void recount_violations();

  const Graph* graph_;
  CoinOracle coins_;
  std::vector<ColorG> colors_;
  std::unique_ptr<SwitchProcess> switch_;
  std::vector<Vertex> black_nbr_;
  std::vector<ColorG> scratch_next_;
  std::int64_t round_ = 0;
  Vertex num_black_ = 0;
  Vertex num_gray_ = 0;
  Vertex num_violations_ = 0;
};

}  // namespace ssmis
