// The 3-color MIS process (Definition 28): the paper's extension that is
// provably poly(log n) on G(n,p) for the *entire* range 0 <= p <= 1
// (Theorem 3 / Theorem 32).
//
// Two sub-processes run in lockstep on the same graph:
//   1. a logarithmic switch emitting sigma_t(u) ∈ {on, off};
//   2. a 2-state-like color process over {black, white, gray}:
//        black with a black neighbor  -> uniform random {black, gray}
//        white with no black neighbor -> uniform random {black, white}
//        gray and sigma_{t-1} = on    -> white
//        otherwise                    -> unchanged
//
// Gray vertices behave like non-active white vertices toward their
// neighbors; the switch rate-limits how often a vertex can return to the
// white (and hence black-competing) pool, which is what fixes the dense
// regime the plain 2-state analysis cannot handle.
//
// With the randomized 6-state switch the combined per-vertex state space is
// 3 x 6 = 18 states, matching the paper's Theorem 3.
//
// Implemented as an engine rule (core/engine.hpp): the scheduled set is the
// active set plus the gray vertices (a gray vertex can turn white purely
// because its switch turns on, with no color change anywhere near it, so it
// stays on the worklist until it leaves gray). The switch advances in the
// rule's end-of-round hook, after the colors that read sigma_{t-1} commit.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/color.hpp"
#include "core/engine.hpp"
#include "core/log_switch.hpp"
#include "graph/graph.hpp"
#include "rng/coin_oracle.hpp"

namespace ssmis {

class ThreeColorRule {
 public:
  using Color = ColorG;
  static constexpr bool kTracksStability = true;

  // The switch is owned by the wrapping process; the rule only reads/steps it.
  ThreeColorRule(const CoinOracle& coins, SwitchProcess* sw)
      : coins_(coins), switch_(sw) {}

  int num_colors() const { return 3; }
  int num_counters() const { return 1; }  // cnt[0] = black neighbors
  Vertex contribution(ColorG c, int) const { return is_black(c) ? 1 : 0; }

  // u takes a random transition next round (gray vertices never do).
  bool active(ColorG c, const Vertex* cnt) const {
    if (c == ColorG::kBlack) return cnt[0] > 0;
    if (c == ColorG::kWhite) return cnt[0] == 0;
    return false;
  }
  // Gray is always scheduled: its transition fires whenever its own switch
  // turns on, independent of any neighborhood color change.
  bool scheduled(ColorG c, const Vertex* cnt) const {
    return c == ColorG::kGray || active(c, cnt);
  }
  // MIS violation: every non-black vertex (white *or* gray) needs a black
  // neighbor, and blacks must have none.
  bool violating(ColorG c, const Vertex* cnt) const {
    return is_black(c) ? cnt[0] > 0 : cnt[0] == 0;
  }
  bool stable_black(ColorG c, const Vertex* cnt) const {
    return is_black(c) && cnt[0] == 0;
  }

  ColorG transition(Vertex u, ColorG c, const Vertex* cnt, std::int64_t t) const {
    if (c == ColorG::kBlack && cnt[0] > 0)
      return coins_.fair_coin(t, u) ? ColorG::kBlack : ColorG::kGray;
    if (c == ColorG::kWhite && cnt[0] == 0)
      return coins_.fair_coin(t, u) ? ColorG::kBlack : ColorG::kWhite;
    // Gray: reads sigma_{t-1} (the switch advances after this round commits).
    return switch_->on(u) ? ColorG::kWhite : ColorG::kGray;
  }

  // The switch advances in lockstep, *after* its round-(t-1) value was read.
  // Under deferral (the 3-color fast-forward path) the advancement is
  // recorded instead of executed: only gray transitions read sigma, so
  // while no gray vertex exists the O(n + m) clock round can be postponed
  // and replayed — bit-identically, the clock being autonomous — right
  // before the next round that could read it.
  void end_round(std::int64_t) {
    if (defer_switch_)
      ++deferred_rounds_;
    else
      switch_->step();
  }

  // Lazy-switch controls, driven by ThreeColorMIS::step (which guarantees
  // replay happens before any round with gray vertices decides).
  void set_defer_switch(bool defer) { defer_switch_ = defer; }
  std::int64_t deferred_rounds() const { return deferred_rounds_; }
  void replay_switch() {
    switch_->advance(deferred_rounds_);
    deferred_rounds_ = 0;
  }

 private:
  CoinOracle coins_;
  SwitchProcess* switch_;
  bool defer_switch_ = false;
  std::int64_t deferred_rounds_ = 0;
};

class ThreeColorMIS {
 public:
  using Engine = ProcessEngine<ThreeColorRule>;

  // Takes ownership of the switch, which must be freshly constructed (round
  // 0) and built over the same graph. Throws std::invalid_argument on size
  // mismatch or null/misaligned switch.
  ThreeColorMIS(const Graph& g, std::vector<ColorG> init,
                std::unique_ptr<SwitchProcess> sw, const CoinOracle& coins)
      : switch_(std::move(sw)),
        engine_(g, std::move(init), ThreeColorRule(coins, checked(switch_.get()))) {}

  // Paper-default construction: randomized 6-state logarithmic switch with
  // zeta = 2^-7 and random initial levels.
  static ThreeColorMIS with_randomized_switch(const Graph& g,
                                              std::vector<ColorG> init,
                                              const CoinOracle& coins) {
    return ThreeColorMIS(g, std::move(init),
                         std::make_unique<RandomizedLogSwitch>(g, coins), coins);
  }

  // One synchronous round. With fast-forward on (the default), the O(n + m)
  // switch round is deferred while the worklist is empty — grays are always
  // scheduled, so an empty worklist means no vertex reads sigma — and
  // replayed in a single batch before the next non-quiet round decides.
  // Gating on the worklist rather than the gray count alone keeps the
  // deferral from flapping pre-stabilization (sparse runs pass through
  // many zero-gray rounds whose actives re-spawn grays immediately, and a
  // one-round defer/replay cycle is pure overhead). Post-stabilization
  // (grays drained) a round is O(1); trajectories are bit-identical.
  void step() {
    if (fast_forward_) {
      ThreeColorRule& r = engine_.rule();
      const bool quiet = engine_.worklist().empty();
      if (!quiet && r.deferred_rounds() > 0) r.replay_switch();
      r.set_defer_switch(quiet);
    }
    engine_.step();
  }
  std::int64_t round() const { return engine_.round(); }

  const Graph& graph() const { return engine_.graph(); }
  const std::vector<ColorG>& colors() const { return engine_.colors(); }
  ColorG color(Vertex u) const { return engine_.color(u); }
  bool black(Vertex u) const { return is_black(color(u)); }
  bool gray(Vertex u) const { return color(u) == ColorG::kGray; }

  Vertex black_neighbor_count(Vertex u) const { return engine_.counter(u, 0); }

  // u takes a random transition next round (gray vertices never do).
  bool active(Vertex u) const { return engine_.active(u); }

  bool stable_black(Vertex u) const { return engine_.stable_black(u); }

  // Stabilized ⟺ black set is an MIS: no black-black edge, and every
  // non-black vertex (white *or* gray) has a black neighbor.
  bool stabilized() const { return engine_.stabilized(); }

  Vertex num_black() const { return engine_.color_count(ColorG::kBlack); }
  Vertex num_gray() const { return engine_.color_count(ColorG::kGray); }
  Vertex num_active() const { return engine_.num_active(); }
  Vertex num_stable_black() const { return engine_.num_stable_black(); }
  Vertex num_unstable() const { return engine_.num_unstable(); }

  std::vector<Vertex> black_set() const;

  // Exact-switch accessors: replay any deferred clock rounds first, so
  // external reads (and fault injections via force_level) always see — and
  // mutate — the logical round-aligned switch state.
  const SwitchProcess& switch_process() const {
    const_cast<ThreeColorMIS*>(this)->sync_switch();
    return *switch_;
  }
  SwitchProcess& switch_process() {
    sync_switch();
    return *switch_;
  }

  // Combined per-vertex state count (3 colors x switch states).
  int num_states() const { return 3 * switch_->num_states(); }

  // Overwrites one vertex's color in O(deg(u)) (the pre-engine version did a
  // full O(n + m) counter rebuild).
  void force_color(Vertex u, ColorG c) { engine_.force_color(u, c); }

  // Shards the decide phase across the shared thread pool (bit-identical
  // trajectories at any value; 1 = sequential). The switch still advances
  // in the sequential end-of-round hook, after decided colors commit.
  void set_shards(int shards) { engine_.set_shards(shards); }

  // Stable-periodic fast-forward toggle (on by default): for 3-color the
  // optimization is the lazy switch above — the engine side has no orbits
  // to declare (stable blacks and covered whites already leave the
  // worklist). Turning it off replays any deferred rounds, restoring exact
  // lockstep. Bit-identical trajectories either way.
  void set_fast_forward(bool on) {
    if (!on) {
      sync_switch();
      engine_.rule().set_defer_switch(false);
    }
    fast_forward_ = on;
  }
  bool fast_forward_enabled() const { return fast_forward_; }
  std::int64_t deferred_switch_rounds() const {
    return engine_.rule().deferred_rounds();
  }

  const Engine& engine() const { return engine_; }

 private:
  static SwitchProcess* checked(SwitchProcess* sw) {
    if (sw == nullptr)
      throw std::invalid_argument("ThreeColorMIS: switch must not be null");
    if (sw->round() != 0)
      throw std::invalid_argument("ThreeColorMIS: switch must start at round 0");
    return sw;
  }

  void sync_switch() {
    ThreeColorRule& r = engine_.rule();
    if (r.deferred_rounds() > 0) r.replay_switch();
  }

  // Declaration order matters: the engine's rule holds a raw pointer into
  // `switch_`, which must outlive (and be constructed before) the engine.
  std::unique_ptr<SwitchProcess> switch_;
  Engine engine_;
  bool fast_forward_ = true;
};

}  // namespace ssmis
