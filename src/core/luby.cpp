#include "core/luby.hpp"

#include <stdexcept>

namespace ssmis {

LubyMIS::LubyMIS(const Graph& g, const CoinOracle& coins)
    : LubyMIS(g,
              std::vector<LubyStatus>(static_cast<std::size_t>(g.num_vertices()),
                                      LubyStatus::kUndecided),
              coins) {}

LubyMIS::LubyMIS(const Graph& g, std::vector<LubyStatus> init, const CoinOracle& coins)
    : graph_(&g), coins_(coins), status_(std::move(init)) {
  if (status_.size() != static_cast<std::size_t>(g.num_vertices()))
    throw std::invalid_argument("LubyMIS: init size != num_vertices");
  for (LubyStatus s : status_)
    if (s == LubyStatus::kUndecided) ++num_undecided_;
}

void LubyMIS::step() {
  const std::int64_t t = ++round_;
  const Vertex n = graph_->num_vertices();
  // Priorities are (uniform double, vertex id) pairs; the id breaks the
  // measure-zero ties deterministically.
  auto beats = [&](Vertex a, Vertex b) {
    const double pa = coins_.uniform(t, a, CoinTag::kLuby);
    const double pb = coins_.uniform(t, b, CoinTag::kLuby);
    return pa > pb || (pa == pb && a > b);
  };
  std::vector<Vertex> winners;
  for (Vertex u = 0; u < n; ++u) {
    if (status(u) != LubyStatus::kUndecided) continue;
    bool is_local_max = true;
    graph_->for_each_neighbor(u, [&](Vertex v) {
      if (status(v) == LubyStatus::kUndecided && beats(v, u)) {
        is_local_max = false;
        return false;
      }
      return true;
    });
    if (is_local_max) winners.push_back(u);
  }
  for (Vertex u : winners) {
    status_[static_cast<std::size_t>(u)] = LubyStatus::kInMis;
    --num_undecided_;
    graph_->for_each_neighbor(u, [&](Vertex v) {
      if (status(v) == LubyStatus::kUndecided) {
        status_[static_cast<std::size_t>(v)] = LubyStatus::kOut;
        --num_undecided_;
      }
    });
  }
}

std::vector<Vertex> LubyMIS::mis_set() const {
  std::vector<Vertex> out;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u)
    if (status(u) == LubyStatus::kInMis) out.push_back(u);
  return out;
}

std::int64_t LubyMIS::run(std::int64_t max_rounds) {
  while (!done() && round_ < max_rounds) step();
  return round_;
}

void LubyMIS::corrupt_decision(Vertex u, LubyStatus s) {
  if (u < 0 || u >= graph_->num_vertices())
    throw std::out_of_range("corrupt_decision: vertex out of range");
  auto& cur = status_[static_cast<std::size_t>(u)];
  if (cur == LubyStatus::kUndecided && s != LubyStatus::kUndecided) --num_undecided_;
  if (cur != LubyStatus::kUndecided && s == LubyStatus::kUndecided) ++num_undecided_;
  cur = s;
}

}  // namespace ssmis
