#include "core/two_state_variant.hpp"

#include <memory>

#include "core/init.hpp"
#include "core/process.hpp"
#include "harness/registry.hpp"

namespace ssmis {

std::vector<Vertex> TwoStateVariant::black_set() const {
  return engine_.select([this](Vertex u) { return black(u); });
}

namespace {

const ProtocolRegistrar kTwoStateVariantProtocol{
    "2state-variant",
    "parameterized 2-state ablation: active vertices turn black with "
    "probability black-bias; eager-white makes white->black deterministic",
    {"black-bias", "eager-white"},
    [](const Graph& g, const ProtocolParams& params, std::uint64_t seed) {
      const CoinOracle coins(seed);
      return std::make_unique<MisFamilyAdapter<TwoStateVariant>>(TwoStateVariant(
          g, make_init2(g, params.init, coins), coins,
          params.get_double("black-bias", 0.5),
          params.get_bool("eager-white", false)));
    }};

}  // namespace

}  // namespace ssmis
