#include "core/two_state_variant.hpp"

#include <stdexcept>

namespace ssmis {

TwoStateVariant::TwoStateVariant(const Graph& g, std::vector<Color2> init,
                                 const CoinOracle& coins, double black_bias,
                                 bool eager_white)
    : graph_(&g),
      coins_(coins),
      colors_(std::move(init)),
      black_bias_(black_bias),
      eager_white_(eager_white) {
  if (colors_.size() != static_cast<std::size_t>(g.num_vertices()))
    throw std::invalid_argument("TwoStateVariant: init size != num_vertices");
  if (!(black_bias > 0.0) || !(black_bias < 1.0))
    throw std::invalid_argument("TwoStateVariant: black_bias must be in (0,1)");
  black_nbr_.assign(colors_.size(), 0);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (!black(u)) continue;
    ++num_black_;
    for (Vertex v : g.neighbors(u)) ++black_nbr_[static_cast<std::size_t>(v)];
  }
  num_active_ = 0;
  for (Vertex u = 0; u < g.num_vertices(); ++u)
    if (active(u)) ++num_active_;
}

void TwoStateVariant::step() {
  const std::int64_t t = round_ + 1;
  scratch_changed_.clear();
  for (Vertex u = 0; u < graph_->num_vertices(); ++u) {
    if (!active(u)) continue;
    bool to_black;
    if (eager_white_ && !black(u)) {
      to_black = true;  // deterministic white -> black
    } else {
      to_black = coins_.bernoulli(t, u, CoinTag::kAblation, black_bias_);
    }
    const Color2 drawn = to_black ? Color2::kBlack : Color2::kWhite;
    if (drawn != colors_[static_cast<std::size_t>(u)]) scratch_changed_.push_back(u);
  }
  for (Vertex u : scratch_changed_) {
    auto& c = colors_[static_cast<std::size_t>(u)];
    const Vertex delta = (c == Color2::kWhite) ? 1 : -1;
    c = (c == Color2::kWhite) ? Color2::kBlack : Color2::kWhite;
    num_black_ += delta;
    for (Vertex v : graph_->neighbors(u))
      black_nbr_[static_cast<std::size_t>(v)] += delta;
  }
  ++round_;
  num_active_ = 0;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u)
    if (active(u)) ++num_active_;
}

Vertex TwoStateVariant::num_stable_black() const {
  Vertex count = 0;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u)
    if (black(u) && black_neighbor_count(u) == 0) ++count;
  return count;
}

Vertex TwoStateVariant::num_unstable() const {
  std::vector<char> covered(colors_.size(), 0);
  for (Vertex u = 0; u < graph_->num_vertices(); ++u) {
    if (!(black(u) && black_neighbor_count(u) == 0)) continue;
    covered[static_cast<std::size_t>(u)] = 1;
    for (Vertex v : graph_->neighbors(u)) covered[static_cast<std::size_t>(v)] = 1;
  }
  Vertex unstable = 0;
  for (char c : covered)
    if (!c) ++unstable;
  return unstable;
}

std::vector<Vertex> TwoStateVariant::black_set() const {
  std::vector<Vertex> out;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u)
    if (black(u)) out.push_back(u);
  return out;
}

}  // namespace ssmis
