#include "core/two_state_variant.hpp"

namespace ssmis {

std::vector<Vertex> TwoStateVariant::black_set() const {
  return engine_.select([this](Vertex u) { return black(u); });
}

}  // namespace ssmis
