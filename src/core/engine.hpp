// Unified sparse process engine: active-set scheduling for every MIS
// process and communication-model simulation in the library.
//
// The structural fact the engine exploits is Giakkoupis-Ziccardi's: only
// *scheduled* vertices take a transition in a round, and whether a vertex is
// scheduled depends solely on its own color and on incrementally maintained
// neighbor counters — so scheduling can change only inside the closed
// neighborhood N+(changed) of the vertices that changed color. A round
// therefore costs
//
//     O(|A_t| + sum of deg(u) over vertices whose color class changed)
//
// instead of the O(n + m) dense rescan of the hand-rolled per-process loops,
// and every aggregate the tracer wants (|B_t|, |A_t|, |I_t|, |V_t|,
// |Gamma_t|) is maintained incrementally and read in O(1).
//
// The engine is policy-based: `ProcessEngine<Rule>` owns colors, counters,
// the worklist, and the aggregates; the Rule supplies only the paper's
// transition table and predicates (see `ProcessRule` below). The four direct
// processes (2-state, 2-state variant, 3-state, 3-color), the daemon
// adapter, and both communication-model network simulators are all thin
// rules/wrappers over this one stepping core.
//
// Randomness: rules draw coins from the counter-based CoinOracle, where
// every coin is a pure function of (seed, round, vertex, tag). Because no
// sequential RNG stream exists, sparse scheduling is *bit-identical* to the
// dense seed semantics: the same vertices take the same transitions with the
// same coins, in any iteration order. The differential tests assert this
// round-by-round against the naive transcriptions of Definitions 4, 5, 26
// and 28.
//
// The same purity makes the decide phase shardable: set_shards(s) fans the
// worklist out across the shared worker pool and merges per-shard change
// lists in shard order, keeping trajectories bit-identical at any shard
// count (docs/architecture.md, "Parallel runtime").
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <iterator>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/graph.hpp"
#include "support/narrow.hpp"
#include "support/thread_pool.hpp"

namespace ssmis {

// Sparse vertex set with O(1) insert / erase / contains and O(|set|)
// unordered iteration. Backing store for the engine's active-set worklist.
class VertexWorklist {
 public:
  // Empties the set and resizes the universe to [0, n).
  void reset(Vertex n);

  [[nodiscard]] bool contains(Vertex u) const { return pos_[static_cast<std::size_t>(u)] >= 0; }
  void insert(Vertex u);  // no-op if already present
  void erase(Vertex u);   // no-op if absent (swap-with-last removal)

  [[nodiscard]] Vertex size() const { return narrow_cast<Vertex>(items_.size()); }
  [[nodiscard]] bool empty() const { return items_.empty(); }

  // Unordered view of the members (stable while no insert/erase happens).
  [[nodiscard]] const std::vector<Vertex>& items() const { return items_; }

  // Members in ascending vertex order (O(|set| log |set|) copy + sort).
  [[nodiscard]] std::vector<Vertex> sorted() const;

 private:
  std::vector<Vertex> items_;
  std::vector<Vertex> pos_;  // index into items_, or -1 if absent
};

// The policy interface. A rule is a value type describing one process:
//
//   using Color = ...;                 // uint8-backed enum or std::uint8_t
//   static constexpr bool kTracksStability;  // MIS bookkeeping on/off
//   int num_colors() const;            // histogram size (raw color values)
//   int num_counters() const;          // neighbor counters per vertex (<= 32)
//   Vertex contribution(Color c, int j) const;
//                                      // how much a c-colored neighbor adds
//                                      // to counter j (typically 0/1)
//   bool scheduled(Color c, const Vertex* cnt) const;
//                                      // u takes SOME transition next round
//   Color transition(Vertex u, Color c, const Vertex* cnt, int64_t t) const;
//                                      // the next color; called only for
//                                      // scheduled vertices, must be a pure
//                                      // function of its arguments + coins
//
// Rules with kTracksStability additionally provide the paper's bookkeeping
// predicates over (color, counters):
//
//   bool active(Color c, const Vertex* cnt) const;       // u ∈ A_t
//   bool violating(Color c, const Vertex* cnt) const;    // MIS violation
//   bool stable_black(Color c, const Vertex* cnt) const; // u ∈ I_t
//
// and may provide `void end_round(int64_t t)` — a hook run once per
// synchronous round after the colors were committed (the 3-color process
// steps its logarithmic switch there).
//
// ProcessRule is decomposed into one named concept per obligation so that a
// rule missing a member fails ProcessEngine's static_assert cascade with
// the obligation's name in the diagnostic (pinned by
// tests/compile_fail/bad_rule.cpp) instead of an overload-resolution spew.
template <typename R>
concept RuleHasColor = requires { typename R::Color; };

// `static constexpr bool kTracksStability` — MIS bookkeeping on/off.
template <typename R>
concept RuleDeclaresStabilityTracking = requires {
  { R::kTracksStability } -> std::convertible_to<bool>;
};

// num_colors()/num_counters() — the engine's array shapes.
template <typename R>
concept RuleHasShape = requires(const R r) {
  { r.num_colors() } -> std::convertible_to<int>;
  { r.num_counters() } -> std::convertible_to<int>;
};

// contribution(c, j) — what a c-colored neighbor adds to counter j.
template <typename R>
concept RuleHasContribution =
    RuleHasColor<R> && requires(const R r, typename R::Color c, int j) {
      { r.contribution(c, j) } -> std::convertible_to<Vertex>;
    };

// scheduled(c, cnt) — does the vertex take SOME transition next round?
template <typename R>
concept RuleHasScheduling =
    RuleHasColor<R> &&
    requires(const R r, typename R::Color c, const Vertex* cnt) {
      { r.scheduled(c, cnt) } -> std::convertible_to<bool>;
    };

// transition(u, c, cnt, t) — the next color; pure in its arguments + coins.
template <typename R>
concept RuleHasTransition =
    RuleHasColor<R> &&
    requires(const R r, typename R::Color c, const Vertex* cnt, Vertex u,
             std::int64_t t) {
      { r.transition(u, c, cnt, t) } -> std::convertible_to<typename R::Color>;
    };

template <typename R>
concept ProcessRule = RuleHasColor<R> && RuleDeclaresStabilityTracking<R> &&
                      RuleHasShape<R> && RuleHasContribution<R> &&
                      RuleHasScheduling<R> && RuleHasTransition<R>;

// The paper's bookkeeping predicates (active/violating/stable_black) —
// required exactly when the rule sets kTracksStability, asserted at engine
// instantiation (they used to be documentation only).
template <typename R>
concept StabilityTrackingRule =
    RuleHasColor<R> &&
    requires(const R r, typename R::Color c, const Vertex* cnt) {
      { r.active(c, cnt) } -> std::convertible_to<bool>;
      { r.violating(c, cnt) } -> std::convertible_to<bool>;
      { r.stable_black(c, cnt) } -> std::convertible_to<bool>;
    };

// Optional once-per-round hook, run after the colors were committed.
template <typename R>
concept RuleHasEndRoundHook = requires(R& r, std::int64_t t) {
  r.end_round(t);
};

// Optional stable-periodic fast-forward extension (docs/architecture.md,
// "Stable-periodic fast-forward"). A rule that implements it declares, for
// some (color, counters) pairs, that the vertex's future orbit is
// AUTONOMOUS: as long as its own neighbor counters stay frozen, its color
// at any later round T is a pure function of (entry color, frozen counters,
// entry round, T) plus the counter-based coins — and the rule promises that
// along the orbit
//
//   * every engine predicate the rule defines (scheduled, and for
//     stability-tracking rules active/violating/stable_black) is constant,
//     with the scheduled predicate TRUE (a quiescent vertex is already off
//     the worklist for free);
//   * the only counter components of OTHER vertices that the orbit's color
//     changes would move are components no live vertex's predicates or
//     transition can observe while the mover is on its orbit (the "output
//     projection" contract: the MIS-relevant projection of the orbit is
//     constant, and neighbors can only see the projection).
//
// Under that contract the engine parks such vertices in a periodic set off
// the hot worklist, leaves their stored color at the entry round, and
// re-materializes them by ONE orbit_color evaluation exactly when a
// neighbor's color change patches their counters, when a fault
// (force_color) touches them or a neighbor, or when an exact-state query
// needs them — so trajectories and fingerprints are bit-identical to the
// dense semantics while near-stabilized rounds cost O(1).
//
//   bool fast_forwardable(Color c, const Vertex* cnt) const;
//   Color orbit_color(Vertex u, Color c, const Vertex* cnt,
//                     std::int64_t entry_round, std::int64_t now) const;
//       // the orbit color at round `now` >= entry_round, given the color
//       // held at the end of round `entry_round`; must cost O(1) (the
//       // implemented orbits are memoryless: the color at round T depends
//       // only on round-T coins), and must equal `c` when now == entry.
//
// Rules additionally declare `kOrbitPeriodHint` (the orbit period of the
// output projection; 1 for the memoryless re-randomizing orbits) for
// documentation and diagnostics.
template <typename R>
concept FastForwardRule =
    ProcessRule<R> &&
    requires(const R r, typename R::Color c, const Vertex* cnt, Vertex u,
             std::int64_t t0, std::int64_t t1) {
      { r.fast_forwardable(c, cnt) } -> std::convertible_to<bool>;
      { r.orbit_color(u, c, cnt, t0, t1) } -> std::convertible_to<typename R::Color>;
    };

template <typename Rule>
class ProcessEngine {
  // Deliberately `typename` + a static_assert cascade rather than
  // `template <ProcessRule Rule>`: an unconstrained parameter lets every
  // missing obligation report its OWN named concept here, where a
  // constrained template would only say "constraints not satisfied".
  static_assert(RuleHasColor<Rule>,
                "ProcessEngine<Rule>: Rule violates concept "
                "ssmis::RuleHasColor — it must define a nested Color type "
                "(the raw per-vertex state)");
  static_assert(RuleDeclaresStabilityTracking<Rule>,
                "ProcessEngine<Rule>: Rule violates concept "
                "ssmis::RuleDeclaresStabilityTracking — it must declare "
                "`static constexpr bool kTracksStability`");
  static_assert(RuleHasShape<Rule>,
                "ProcessEngine<Rule>: Rule violates concept "
                "ssmis::RuleHasShape — it must provide const "
                "num_colors()/num_counters() returning int");
  static_assert(RuleHasContribution<Rule>,
                "ProcessEngine<Rule>: Rule violates concept "
                "ssmis::RuleHasContribution — it must provide const "
                "contribution(Color, int) -> Vertex");
  static_assert(RuleHasScheduling<Rule>,
                "ProcessEngine<Rule>: Rule violates concept "
                "ssmis::RuleHasScheduling — it must provide const "
                "scheduled(Color, const Vertex*) -> bool");
  static_assert(RuleHasTransition<Rule>,
                "ProcessEngine<Rule>: Rule violates concept "
                "ssmis::RuleHasTransition — it must provide const "
                "transition(Vertex, Color, const Vertex*, int64_t) -> Color");
  static_assert(ProcessRule<Rule>,
                "ProcessEngine<Rule>: Rule does not satisfy "
                "ssmis::ProcessRule (see the failed sub-concept above)");

 public:
  using Color = typename Rule::Color;
  static constexpr bool kTracksStability = Rule::kTracksStability;
  static_assert(!kTracksStability || StabilityTrackingRule<Rule>,
                "ProcessEngine<Rule>: Rule sets kTracksStability but "
                "violates concept ssmis::StabilityTrackingRule — it must "
                "provide const active/violating/stable_black"
                "(Color, const Vertex*) -> bool");
  // Rules satisfying FastForwardRule get stable-periodic fast-forward; for
  // everything else the machinery folds away at compile time (no periodic
  // set, no extra branches in refresh, accessors stay raw).
  static constexpr bool kFastForward = FastForwardRule<Rule>;
  static constexpr int kMaxCounters = 32;
  // Minimum worklist items a shard must get before fan-out pays for itself.
  static constexpr std::size_t kShardGrain = 256;

  // `init` must have size g.num_vertices() and only colors with raw value
  // below rule.num_colors(); the graph must outlive the engine. Throws
  // std::invalid_argument otherwise.
  ProcessEngine(const Graph& g, std::vector<Color> init, Rule rule)
      : graph_(&g), rule_(std::move(rule)), colors_(std::move(init)) {
    if (colors_.size() != static_cast<std::size_t>(g.num_vertices()))
      throw std::invalid_argument("ProcessEngine: init size != num_vertices");
    k_ = rule_.num_counters();
    if (k_ < 0 || k_ > kMaxCounters)
      throw std::invalid_argument("ProcessEngine: rule needs 0..32 counters");
    num_colors_ = rule_.num_colors();
    for (Color c : colors_) {
      if (static_cast<int>(raw(c)) >= num_colors_)
        throw std::invalid_argument("ProcessEngine: init color out of range");
    }
    const std::size_t n = colors_.size();
    staged_.resize(n);
    stage_mark_.assign(n, 0);
    touch_mark_.assign(n, 0);
    rebuild();
  }

  // --- stepping ------------------------------------------------------------

  // One synchronous round: every scheduled vertex transitions against the
  // frozen end-of-round state; counters, worklist, and aggregates are
  // patched in O(|A_t| + sum deg(changed)). Advances round() by one.
  //
  // With set_shards(s > 1) the decide phase is partitioned into contiguous
  // slices of the worklist and run on the shared thread pool; the per-shard
  // change lists are merged in shard order, which reproduces the sequential
  // change order exactly, so the whole trajectory — colors, counters,
  // worklist contents and internal ordering, aggregates — is bit-identical
  // to a sequential run (transitions are pure functions of their arguments
  // and the counter-based coins; see docs/architecture.md).
  void step() {
    const std::int64_t t = round_ + 1;
    decide(worklist_.items(), t);
    // round_ advances before apply so that any vertex materialized out of
    // the periodic set during the commit lands on its orbit value for the
    // round being committed (colors_ always holds end-of-round_ state).
    ++round_;
    apply();
    if constexpr (RuleHasEndRoundHook<Rule>) rule_.end_round(t);
  }

  // Daemon primitive: transitions exactly `chosen` (each must currently be
  // scheduled — std::logic_error otherwise), simultaneously against the
  // frozen state, drawing coins for logical time `t`. Does NOT advance
  // round() and does NOT run the rule's end-of-round hook; the caller owns
  // the schedule's notion of time. Duplicate entries are transitioned once.
  void apply_transitions(std::span<const Vertex> chosen, std::int64_t t) {
    // Validation + dedup stay sequential (which duplicate survives is
    // bookkeeping order); the transition computation itself then shards.
    ++stage_gen_;
    chosen_unique_.clear();
    for (Vertex u : chosen) {
      // A fast-forwarded vertex is logically scheduled; bring its stored
      // color up to date before it transitions (round_ is frozen under a
      // daemon, so this is a bookkeeping no-op for parked orbits — there is
      // no synchronous time for them to have advanced along).
      if constexpr (kFastForward) {
        if (u >= 0 && u < graph_->num_vertices() && periodic_.contains(u))
          refresh(u);
      }
      if (u < 0 || u >= graph_->num_vertices() ||
          (flags_[static_cast<std::size_t>(u)] & kScheduledBit) == 0)
        throw std::logic_error(
            "ProcessEngine: transition requested for a non-scheduled vertex");
      const std::size_t su = static_cast<std::size_t>(u);
      if (stage_mark_[su] == stage_gen_) continue;  // duplicate in `chosen`
      stage_mark_[su] = stage_gen_;
      chosen_unique_.push_back(u);
    }
    decide(chosen_unique_, t);
    apply();
  }

  // --- parallelism ---------------------------------------------------------

  // Shards the decide phase across the shared thread pool. `shards` <= 1
  // (the default) keeps sequential stepping; any value yields bit-identical
  // trajectories, so this is purely a throughput knob. Worklists below the
  // per-shard grain run sequentially regardless (fan-out would cost more
  // than the work).
  void set_shards(int shards) {
    shards_ = shards < 1 ? 1 : shards;
    if (shards_ > 1) ThreadPool::shared().ensure_workers(shards_ - 1);
    // One decode scratch per shard: any engine phase — today's sequential
    // apply/refresh walks or a future sharded one — has a private buffer,
    // so parallel stepping on compressed graphs stays allocation-free (the
    // buffers are reused across rounds) and bit-identical (decoding is a
    // pure read of the shared payload).
    nbr_scratch_.resize(static_cast<std::size_t>(shards_));
  }
  [[nodiscard]] int shards() const { return shards_; }

  // Fault-injection / test hook: overwrite one vertex's color, keeping every
  // counter, worklist entry, and aggregate consistent in O(deg(u)). Counts
  // as a transient fault, not a round. Throws std::out_of_range on a bad
  // vertex and std::invalid_argument on a color outside the rule's range.
  void force_color(Vertex u, Color c) {
    if (u < 0 || u >= graph_->num_vertices())
      throw std::out_of_range("force_color: vertex out of range");
    if (static_cast<int>(raw(c)) >= num_colors_)
      throw std::invalid_argument("force_color: color out of range");
    // A fault is a re-activation point: materialize u first so the
    // comparison (and the commit's prev-color accounting) sees the logical
    // state, not the parked entry-round state.
    if constexpr (kFastForward) {
      if (periodic_.contains(u)) refresh(u);
    }
    if (colors_[static_cast<std::size_t>(u)] == c) return;
    changed_.clear();
    staged_[static_cast<std::size_t>(u)] = c;
    changed_.push_back(u);
    apply();
  }

  // Re-derives worklist membership and aggregates from the (unchanged)
  // colors and counters. Call after mutating rule parameters that alter the
  // scheduling predicate (e.g. the beeping network's loss probability).
  // Fast-forwarded vertices are materialized first (a rule change may
  // invalidate the orbit declaration they entered under).
  void notify_rule_changed() {
    sync_fast_forward();
    rebuild_flags();
  }

  // --- stable-periodic fast-forward ----------------------------------------

  // Enables/disables the periodic-set optimization (FastForwardRule rules
  // only; a no-op otherwise). On by default for eligible rules. Turning it
  // off materializes every parked vertex, so the engine is back to plain
  // dense-equivalent sparse stepping with identical state.
  void set_fast_forward(bool on) {
    if constexpr (kFastForward) {
      if (on == fast_forward_) return;
      fast_forward_ = on;
      if (on) {
        scan_worklist_for_orbits();
      } else {
        const std::vector<Vertex> snap = periodic_.items();
        for (Vertex u : snap) refresh(u);  // flag is off: no re-entry
      }
    } else {
      (void)on;
    }
  }
  [[nodiscard]] bool fast_forward_enabled() const {
    if constexpr (kFastForward) return fast_forward_;
    return false;
  }
  // Physical size of the periodic set (0 for non-fast-forward rules).
  [[nodiscard]] Vertex num_fast_forwarded() const {
    if constexpr (kFastForward) return periodic_.size();
    return 0;
  }
  // Whether u is currently parked in the periodic set (its live entry is in
  // `worklist() ∪ this`, never both). Always false for non-ff rules.
  [[nodiscard]] bool fast_forwarded(Vertex u) const {
    if constexpr (kFastForward) return periodic_.contains(u);
    (void)u;
    return false;
  }
  // Materializes every parked vertex (stored colors become exact for the
  // current round) without disabling the optimization — members re-enter
  // the periodic set with a fresh entry round. Exact-state accessors call
  // this; repeated calls per round are O(|periodic set|) no-ops.
  void sync_fast_forward() const {
    if constexpr (kFastForward) {
      if (periodic_.empty()) return;
      ProcessEngine* self = const_cast<ProcessEngine*>(this);
      const std::vector<Vertex> snap = periodic_.items();
      for (Vertex u : snap) self->refresh(u);
    }
  }

  // --- state queries -------------------------------------------------------

  [[nodiscard]] std::int64_t round() const { return round_; }
  [[nodiscard]] const Graph& graph() const { return *graph_; }
  [[nodiscard]] const Rule& rule() const { return rule_; }
  Rule& rule() { return rule_; }

  // Raw color values run over [0, num_colors()).
  [[nodiscard]] int num_colors() const { return num_colors_; }

  // Exact-state accessors. With fast-forward engaged, the stored color of a
  // parked vertex lags at its entry round, so these materialize what they
  // expose before returning (O(|periodic set|) for the bulk views, O(1) /
  // O(deg) for the per-vertex ones; zero-cost for non-fast-forward rules).
  [[nodiscard]] const std::vector<Color>& colors() const {
    sync_fast_forward();
    return colors_;
  }
  Color color(Vertex u) const {
    if constexpr (kFastForward) {
      if (periodic_.contains(u)) const_cast<ProcessEngine*>(this)->refresh(u);
    }
    return colors_[static_cast<std::size_t>(u)];
  }

  // Incrementally maintained neighbor counter j of u. Parked neighbors of u
  // are materialized first, so the value is the exact dense-semantics one.
  // (While a neighbor is parked, only the counter components the rule's
  // output projection declares invariant are maintained; the accessor
  // restores the rest on demand.)
  [[nodiscard]] Vertex counter(Vertex u, int j) const {
    return counters(u)[static_cast<std::size_t>(j)];
  }
  const Vertex* counters(Vertex u) const {
    if constexpr (kFastForward) {
      if (!periodic_.empty())
        const_cast<ProcessEngine*>(this)->sync_neighbors(u);
    }
    return cnt_ptr(u);
  }

  // Number of vertices currently holding color c (histogram-backed; syncs
  // the periodic set first, so O(|periodic set|) under fast-forward).
  [[nodiscard]] Vertex color_count(Color c) const {
    sync_fast_forward();
    return hist_[static_cast<std::size_t>(raw(c))];
  }
  // The raw histogram entry, without materializing parked orbits — O(1).
  // Individual entries may be stale under fast-forward, but any sum over a
  // set of colors closed under every declared orbit (e.g. black0 + black1
  // for the 3-state family) is exact, which is what the wrappers' hot
  // per-round accounting reads.
  [[nodiscard]] Vertex raw_color_count(Color c) const {
    return hist_[static_cast<std::size_t>(raw(c))];
  }

  // --- worklist ------------------------------------------------------------

  [[nodiscard]] bool scheduled(Vertex u) const {
    return (flags_[static_cast<std::size_t>(u)] & kScheduledBit) != 0;
  }
  // Logical scheduled count: live worklist plus fast-forwarded vertices
  // (parked orbits are scheduled every round by declaration).
  [[nodiscard]] Vertex num_scheduled() const {
    if constexpr (kFastForward) return worklist_.size() + periodic_.size();
    return worklist_.size();
  }
  // The LIVE worklist only — under fast-forward, parked vertices are
  // excluded (that exclusion is the optimization). Logical queries should
  // use num_scheduled()/scheduled_set().
  [[nodiscard]] const VertexWorklist& worklist() const { return worklist_; }
  // Ascending order — what a dense seed-semantics scan would produce.
  // Includes the fast-forwarded vertices.
  [[nodiscard]] std::vector<Vertex> scheduled_set() const {
    if constexpr (kFastForward) {
      if (!periodic_.empty()) {
        const std::vector<Vertex> live = worklist_.sorted();
        const std::vector<Vertex> parked = periodic_.sorted();
        std::vector<Vertex> out;
        out.reserve(live.size() + parked.size());
        std::merge(live.begin(), live.end(), parked.begin(), parked.end(),
                   std::back_inserter(out));
        return out;
      }
    }
    return worklist_.sorted();
  }

  // Ascending list of the vertices satisfying `pred` (O(n) scan) — the
  // shared backing for the wrappers' black_set()/active_set()/... queries.
  template <typename Pred>
  std::vector<Vertex> select(Pred pred) const {
    std::vector<Vertex> out;
    for (Vertex u = 0; u < graph_->num_vertices(); ++u)
      if (pred(u)) out.push_back(u);
    return out;
  }

  // --- paper bookkeeping (rules with kTracksStability) ---------------------

  // These queries only exist for stability-tracking rules — for anything
  // else (the network rules) they would be vacuously wrong, so misuse is a
  // compile error rather than a bad answer.
  bool active(Vertex u) const
    requires(kTracksStability)
  {
    return (flags_[static_cast<std::size_t>(u)] & kActiveBit) != 0;
  }
  bool stable_black(Vertex u) const
    requires(kTracksStability)
  {
    return (flags_[static_cast<std::size_t>(u)] & kStableBlackBit) != 0;
  }
  // u ∈ V_t: not covered by the closed neighborhood of any stable black.
  bool unstable(Vertex u) const
    requires(kTracksStability)
  {
    return covered_[static_cast<std::size_t>(u)] == 0;
  }

  // |A_t|, violation count, |I_t|, |V_t| — all O(1), maintained
  // incrementally (the seed implementations rescanned O(n + m) per query).
  Vertex num_active() const
    requires(kTracksStability)
  {
    return num_active_;
  }
  Vertex num_violations() const
    requires(kTracksStability)
  {
    return num_violations_;
  }
  Vertex num_stable_black() const
    requires(kTracksStability)
  {
    return num_stable_black_;
  }
  Vertex num_unstable() const
    requires(kTracksStability)
  {
    return num_unstable_;
  }

  // Stabilized ⟺ no MIS violation remains (for the 2-state family this
  // coincides with A_t = ∅).
  bool stabilized() const
    requires(kTracksStability)
  {
    return num_violations_ == 0;
  }

 private:
  static constexpr std::uint8_t kScheduledBit = 1;
  static constexpr std::uint8_t kActiveBit = 2;
  static constexpr std::uint8_t kViolatingBit = 4;
  static constexpr std::uint8_t kStableBlackBit = 8;

  static constexpr std::uint8_t raw(Color c) { return static_cast<std::uint8_t>(c); }

  // Transition kernel: computes next colors for items[begin, end) against
  // the frozen state, staging changes and appending changed vertices to
  // `out`. Pure reads of colors_/counters_ plus writes to disjoint staged_
  // slots (items are unique), so concurrent shards never touch the same
  // memory. `items` must contain currently valid, duplicate-free vertices.
  void transition_range(const Vertex* items, std::size_t begin, std::size_t end,
                        std::int64_t t, std::vector<Vertex>& out) {
    for (std::size_t i = begin; i < end; ++i) {
      const Vertex u = items[i];
      const std::size_t su = static_cast<std::size_t>(u);
      const Color next = rule_.transition(u, colors_[su], cnt_ptr(u), t);
      if (next != colors_[su]) {
        // Guard the histogram/counter indexing against a buggy rule (user
        // automata are extension points): fail loudly instead of corrupting.
        if (static_cast<int>(raw(next)) >= num_colors_)
          throw std::logic_error("ProcessEngine: rule produced a color out of range");
        staged_[su] = next;
        out.push_back(u);
      }
    }
  }

  // Phase 1: compute next colors against the frozen state; stage changes.
  // Sequential by default; with shards > 1 the index range is cut into
  // contiguous slices decided in parallel, and the per-shard change lists
  // are concatenated in shard order — exactly the sequential change order.
  void decide(const std::vector<Vertex>& items, std::int64_t t) {
    changed_.clear();
    const std::size_t n = items.size();
    const int s = effective_shards(n);
    if (s <= 1) {
      transition_range(items.data(), 0, n, t, changed_);
      return;
    }
    shard_changed_.resize(static_cast<std::size_t>(s));
    ThreadPool::shared().parallel_for(s, shards_, [&](int i) {
      const std::size_t b = n * static_cast<std::size_t>(i) /
                            static_cast<std::size_t>(s);
      const std::size_t e = n * (static_cast<std::size_t>(i) + 1) /
                            static_cast<std::size_t>(s);
      std::vector<Vertex>& out = shard_changed_[static_cast<std::size_t>(i)];
      out.clear();
      transition_range(items.data(), b, e, t, out);
    });
    for (int i = 0; i < s; ++i) {
      const std::vector<Vertex>& part = shard_changed_[static_cast<std::size_t>(i)];
      changed_.insert(changed_.end(), part.begin(), part.end());
    }
  }

  // How many shards this decide pass actually uses: never more than the
  // configured budget, and never so many that a shard falls below the grain
  // (fan-out overhead would dominate the coin flips it buys).
  int effective_shards(std::size_t items) const {
    if (shards_ <= 1 || items < 2 * kShardGrain) return 1;
    const std::size_t cap = items / kShardGrain;
    return narrow_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(shards_), cap));
  }

  // Phase 2: commit staged colors, patch counters of N(changed), and
  // refresh flags/worklist/aggregates for N+(changed) only. Touched parked
  // vertices are materialized by their refresh (the re-activation point),
  // which may touch further vertices — hence the index-based final loop.
  void apply() {
    ++touch_gen_;
    touched_.clear();
    in_apply_ = true;
    for (Vertex u : changed_) {
      const std::size_t su = static_cast<std::size_t>(u);
      const Color prev = colors_[su];
      const Color next = staged_[su];
      --hist_[raw(prev)];
      ++hist_[raw(next)];
      colors_[su] = next;
      touch(u);
      // Sparse counter patch: only the counters whose contribution differs
      // between prev and next (at most 2 for one-hot emission rules).
      int nz = 0;
      int js[kMaxCounters];
      Vertex ds[kMaxCounters];
      for (int j = 0; j < k_; ++j) {
        const Vertex d = rule_.contribution(next, j) - rule_.contribution(prev, j);
        if (d != 0) {
          js[nz] = j;
          ds[nz] = d;
          ++nz;
        }
      }
      if (nz == 0) continue;
      for (Vertex v : nbrs(u)) {
        Vertex* base = counters_.data() +
                       static_cast<std::size_t>(v) * static_cast<std::size_t>(k_);
        for (int i = 0; i < nz; ++i) base[js[i]] += ds[i];
        touch(v);
      }
    }
    for (std::size_t i = 0; i < touched_.size(); ++i) refresh(touched_[i]);
    in_apply_ = false;
  }

  void touch(Vertex u) {
    const std::size_t su = static_cast<std::size_t>(u);
    if (touch_mark_[su] == touch_gen_) return;
    touch_mark_[su] = touch_gen_;
    touched_.push_back(u);
  }

  // Raw (non-materializing) counter row — the view every internal phase and
  // rule callback reads; live vertices' rows are exact in every component a
  // rule predicate can observe (the fast-forward output-projection
  // contract).
  const Vertex* cnt_ptr(Vertex u) const {
    return counters_.data() +
           static_cast<std::size_t>(u) * static_cast<std::size_t>(k_);
  }

  std::uint8_t compute_flags(Vertex u) const {
    const Color c = colors_[static_cast<std::size_t>(u)];
    const Vertex* cnt = cnt_ptr(u);
    std::uint8_t f = rule_.scheduled(c, cnt) ? kScheduledBit : 0;
    if constexpr (kTracksStability) {
      if (rule_.active(c, cnt)) f |= kActiveBit;
      if (rule_.violating(c, cnt)) f |= kViolatingBit;
      if (rule_.stable_black(c, cnt)) f |= kStableBlackBit;
    }
    return f;
  }

  // Re-evaluates u's predicate flags and patches the worklist, aggregates,
  // and (when stability is tracked) the stable-black coverage counts.
  //
  // Under fast-forward this is also both the re-activation point (a parked
  // u is materialized before anything reads its flags or color) and the
  // entry point (a live scheduled u whose rule declares its current
  // configuration an autonomous orbit is parked: removed from the live
  // worklist with its kScheduledBit — and all predicate flags, frozen by
  // the orbit's constancy promise — left set, so the O(1) aggregates stay
  // the logical values).
  void refresh(Vertex u) {
    const std::size_t su = static_cast<std::size_t>(u);
    if constexpr (kFastForward) {
      if (periodic_.contains(u)) materialize(u);
    }
    const std::uint8_t now = compute_flags(u);
    const std::uint8_t before = flags_[su];
    if (now != before) {
      flags_[su] = now;
      if ((now ^ before) & kScheduledBit) {
        if (now & kScheduledBit)
          worklist_.insert(u);
        else
          worklist_.erase(u);
      }
      if constexpr (kTracksStability) {
        num_active_ += ((now >> 1) & 1) - ((before >> 1) & 1);
        num_violations_ += ((now >> 2) & 1) - ((before >> 2) & 1);
        num_stable_black_ += ((now >> 3) & 1) - ((before >> 3) & 1);
        if ((now ^ before) & kStableBlackBit) {
          const Vertex d = (now & kStableBlackBit) ? 1 : -1;
          bump_covered(u, d);
          for (Vertex v : nbrs(u)) bump_covered(v, d);
        }
      }
    }
    if constexpr (kFastForward) {
      if (fast_forward_ && (now & kScheduledBit) &&
          rule_.fast_forwardable(colors_[su], cnt_ptr(u))) {
        worklist_.erase(u);
        periodic_.insert(u);
        ff_entry_[su] = round_;
      }
    }
  }

  // Exit the periodic set: advance u's stored color to the current round by
  // one orbit evaluation, rejoin the live worklist, and patch the histogram
  // and neighbor counters if the orbit moved. Callers re-derive u's flags
  // right after (refresh). Only reached under kFastForward.
  void materialize(Vertex u) {
    const std::size_t su = static_cast<std::size_t>(u);
    periodic_.erase(u);
    worklist_.insert(u);  // kScheduledBit is still set — orbit invariant
    const Color prev = colors_[su];
    const Color now =
        rule_.orbit_color(u, prev, cnt_ptr(u), ff_entry_[su], round_);
    if (now == prev) return;
    if (static_cast<int>(raw(now)) >= num_colors_)
      throw std::logic_error("ProcessEngine: orbit produced a color out of range");
    --hist_[raw(prev)];
    ++hist_[raw(now)];
    colors_[su] = now;
    int nz = 0;
    int js[kMaxCounters];
    Vertex ds[kMaxCounters];
    for (int j = 0; j < k_; ++j) {
      const Vertex d = rule_.contribution(now, j) - rule_.contribution(prev, j);
      if (d != 0) {
        js[nz] = j;
        ds[nz] = d;
        ++nz;
      }
    }
    if (nz == 0) return;
    // Local neighbor copy: outside apply() the refresh pass below can
    // materialize further vertices, which would reuse the shared decode
    // scratch mid-iteration. Materializations that move a counter are rare
    // (re-activation events), so the allocation is off the hot path.
    const auto view = nbrs(u);
    const std::vector<Vertex> nb(view.begin(), view.end());
    for (Vertex v : nb) {
      Vertex* base = counters_.data() +
                     static_cast<std::size_t>(v) * static_cast<std::size_t>(k_);
      for (int i = 0; i < nz; ++i) base[js[i]] += ds[i];
    }
    if (in_apply_) {
      for (Vertex v : nb) touch(v);
    } else {
      for (Vertex v : nb) refresh(v);
    }
  }

  // Materializes the parked neighbors of u (exact-counter accessor path).
  void sync_neighbors(Vertex u) {
    bool any = false;
    for (Vertex v : nbrs(u)) {
      if (periodic_.contains(v)) {
        any = true;
        break;
      }
    }
    if (!any) return;
    const auto view = nbrs(u);
    const std::vector<Vertex> nb(view.begin(), view.end());
    for (Vertex v : nb)
      if (periodic_.contains(v)) refresh(v);
  }

  // Parks every eligible member of the live worklist (fast-forward enable /
  // full rebuild). refresh() is a no-op for the ineligible.
  void scan_worklist_for_orbits() {
    const std::vector<Vertex> snap = worklist_.items();
    for (Vertex u : snap) refresh(u);
  }

  // Decode-aware neighbor view for the sequential engine phases (apply,
  // refresh): the raw CSR span on plain graphs, a decode into this engine's
  // shard-0 scratch on compressed graphs. The scratch vector is sized by
  // set_shards so every shard owns a slot; all *current* neighbor walks
  // happen in the sequential phases (the sharded decide phase reads only
  // colors and counters), so slot 0 suffices there.
  std::span<const Vertex> nbrs(Vertex u) {
    return graph_->neighbors(u, nbr_scratch_[0]);
  }

  void bump_covered(Vertex x, Vertex d) {
    Vertex& c = covered_[static_cast<std::size_t>(x)];
    if (c == 0 && d > 0) --num_unstable_;
    c += d;
    if (c == 0 && d < 0) ++num_unstable_;
  }

  // Full O(n + m) derivation of counters + histogram (construction only).
  // Rows are swept sequentially through a RowStream: on compressed graphs
  // that costs one pass over the payload instead of n random row seeks.
  void rebuild() {
    const Vertex n = graph_->num_vertices();
    hist_.assign(static_cast<std::size_t>(num_colors_), 0);
    counters_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(k_), 0);
    Graph::RowStream rows(*graph_);
    for (Vertex u = 0; u < n; ++u) {
      const Color c = colors_[static_cast<std::size_t>(u)];
      ++hist_[raw(c)];
      bool any = false;
      for (int j = 0; j < k_ && !any; ++j) any = rule_.contribution(c, j) != 0;
      if (!any) {
        rows.skip();
        continue;
      }
      const auto nb = rows.next(nbr_scratch_[0]);
      for (int j = 0; j < k_; ++j) {
        const Vertex d = rule_.contribution(c, j);
        if (d == 0) continue;
        for (Vertex v : nb) {
          counters_[static_cast<std::size_t>(v) * static_cast<std::size_t>(k_) +
                    static_cast<std::size_t>(j)] += d;
        }
      }
    }
    rebuild_flags();
  }

  // O(n) re-derivation of flags, worklist, and aggregates from the current
  // colors/counters (plus O(m) coverage marking when stability is tracked).
  void rebuild_flags() {
    const Vertex n = graph_->num_vertices();
    flags_.assign(static_cast<std::size_t>(n), 0);
    worklist_.reset(n);
    if constexpr (kFastForward) {
      // Callers materialize first (notify_rule_changed) or are starting
      // from exact colors (construction), so dropping the set is safe.
      periodic_.reset(n);
      ff_entry_.assign(static_cast<std::size_t>(n), round_);
    }
    num_active_ = 0;
    num_violations_ = 0;
    num_stable_black_ = 0;
    covered_.assign(static_cast<std::size_t>(n), 0);
    Graph::RowStream rows(*graph_);
    for (Vertex u = 0; u < n; ++u) {
      const std::uint8_t f = compute_flags(u);
      flags_[static_cast<std::size_t>(u)] = f;
      if (f & kScheduledBit) worklist_.insert(u);
      bool row_used = false;
      if constexpr (kTracksStability) {
        if (f & kActiveBit) ++num_active_;
        if (f & kViolatingBit) ++num_violations_;
        if (f & kStableBlackBit) {
          ++num_stable_black_;
          ++covered_[static_cast<std::size_t>(u)];
          for (Vertex v : rows.next(nbr_scratch_[0]))
            ++covered_[static_cast<std::size_t>(v)];
          row_used = true;
        }
      }
      if (!row_used) rows.skip();
    }
    num_unstable_ = 0;
    if constexpr (kTracksStability) {
      for (Vertex u = 0; u < n; ++u)
        if (covered_[static_cast<std::size_t>(u)] == 0) ++num_unstable_;
    }
    if constexpr (kFastForward) {
      if (fast_forward_) scan_worklist_for_orbits();
    }
  }

  const Graph* graph_;
  Rule rule_;
  std::vector<Color> colors_;
  std::vector<Vertex> counters_;  // flat [u * k_ + j]
  std::vector<Vertex> hist_;      // vertices per raw color value
  std::vector<std::uint8_t> flags_;
  VertexWorklist worklist_;
  std::vector<Vertex> covered_;  // stable blacks in N+[u] (stability rules)

  // Stable-periodic fast-forward state (empty / unused unless the rule
  // satisfies FastForwardRule). Invariant: periodic_ and worklist_ are
  // disjoint, their union is exactly the flagged-scheduled vertices, and a
  // member of periodic_ holds its end-of-ff_entry_[u] color in colors_.
  VertexWorklist periodic_;
  std::vector<std::int64_t> ff_entry_;
  bool fast_forward_ = kFastForward;
  bool in_apply_ = false;

  // Scratch for decide/apply (generation-marked to avoid per-round clears;
  // 64-bit so the marks cannot wrap and collide within any feasible run).
  // stage_mark_ backs only apply_transitions's duplicate detection.
  std::vector<Color> staged_;
  std::vector<std::uint64_t> stage_mark_;
  std::vector<Vertex> changed_;
  std::vector<Vertex> chosen_unique_;
  std::vector<std::vector<Vertex>> shard_changed_;
  std::vector<std::uint64_t> touch_mark_;
  std::vector<Vertex> touched_;
  std::uint64_t stage_gen_ = 0;
  std::uint64_t touch_gen_ = 0;
  // Per-shard compressed-row decode buffers (see nbrs()); untouched on
  // plain graphs.
  std::vector<NeighborScratch> nbr_scratch_ = std::vector<NeighborScratch>(1);

  int shards_ = 1;
  std::int64_t round_ = 0;
  int k_ = 0;
  int num_colors_ = 0;
  Vertex num_active_ = 0;
  Vertex num_violations_ = 0;
  Vertex num_stable_black_ = 0;
  Vertex num_unstable_ = 0;
};

}  // namespace ssmis
