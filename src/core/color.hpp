// Vertex state alphabets of the three MIS processes.
#pragma once

#include <cstdint>
#include <string>

namespace ssmis {

// 2-state MIS process (Definition 4).
enum class Color2 : std::uint8_t { kWhite = 0, kBlack = 1 };

// 3-state MIS process (Definition 5). Both kBlack0 and kBlack1 count as
// "black"; a stable black vertex alternates between them forever.
enum class Color3 : std::uint8_t { kWhite = 0, kBlack0 = 1, kBlack1 = 2 };

// 3-color MIS process (Definition 28). Gray is the intermediate color a
// black vertex takes when it loses a coin flip; gray turns white when the
// vertex's logarithmic switch is on.
enum class ColorG : std::uint8_t { kWhite = 0, kBlack = 1, kGray = 2 };

inline bool is_black(Color2 c) { return c == Color2::kBlack; }
inline bool is_black(Color3 c) { return c != Color3::kWhite; }
inline bool is_black(ColorG c) { return c == ColorG::kBlack; }

std::string to_string(Color2 c);
std::string to_string(Color3 c);
std::string to_string(ColorG c);

}  // namespace ssmis
