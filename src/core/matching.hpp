// MaximalMatching: a few-state self-stabilizing EDGE-symmetry-breaking
// protocol — the first registry workload that is not a vertex-MIS rule,
// cashing in the ROADMAP's "a new protocol costs one Rule type".
//
// Construction: a maximal matching of G is exactly a maximal independent
// set of the line graph L(G) (vertices of L(G) = edges of G, adjacent iff
// the edges share an endpoint). The protocol therefore IS the paper's
// 2-state process (Definition 4), run with one binary state per EDGE: an
// edge is "claimed" or "free"; a claimed edge sharing an endpoint with
// another claimed edge is in conflict and resamples, a free edge none of
// whose touching edges are claimed is addable and resamples. Stabilization,
// convergence-from-anywhere, and the active-set engine costs are all
// inherited verbatim from the 2-state analysis — zero new scheduling code,
// zero new transition code (it is ProcessEngine<TwoStateRule> over L(G)).
//
// Why edge states are necessary, not a convenience: with per-VERTEX states
// and neighbor counts alone, a matched vertex cannot distinguish its
// partner from an adjacent vertex matched elsewhere — on C_5 no
// count-based vertex encoding of a maximal matching even exists (any
// matched-vertex set of a maximal matching there contains an endpoint with
// two matched neighbors). The communication reading of edge states: one
// claim bit relayed per incident edge, the port-numbering analogue of the
// paper's beeping implementation.
//
// Output: the claimed edges, decoded back to vertex pairs; verified by
// verify.hpp's is_maximal_matching (pairwise-disjoint edges, every graph
// edge blocked by one).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/color.hpp"
#include "core/engine.hpp"
#include "core/init.hpp"
#include "core/two_state.hpp"
#include "graph/graph.hpp"
#include "rng/coin_oracle.hpp"

namespace ssmis {

// The line graph L(g): one vertex per edge of g (ids = positions in
// g.edge_list(), i.e. ascending (u, v) order), adjacent iff the edges share
// an endpoint. O(sum_v deg(v)^2) construction.
Graph line_graph(const Graph& g);

class MaximalMatching {
 public:
  using Engine = ProcessEngine<TwoStateRule>;

  // Starts the 2-state process on L(g) from `pattern` edge states (drawn
  // over the line graph, so e.g. high-degree-black marks high-conflict
  // edges). The graph must outlive the process.
  static MaximalMatching from_pattern(const Graph& g, InitPattern pattern,
                                      const CoinOracle& coins);
  // Explicit initial claims, one Color2 per edge of g (kBlack = claimed).
  // Throws std::invalid_argument on size != g.num_edges().
  MaximalMatching(const Graph& g, std::vector<Color2> init,
                  const CoinOracle& coins);

  void step() { line_process_.step(); }
  std::int64_t round() const { return line_process_.round(); }

  // The ORIGINAL graph; the line graph is an internal representation.
  const Graph& graph() const { return *graph_; }
  const Graph& line_graph() const { return *line_graph_; }

  // Edge k of g as a (u, v) pair with u < v.
  const std::vector<Edge>& edges() const { return edges_; }
  // Ascending edge ids incident to u (a view into the internal CSR).
  std::span<const Vertex> incident_edges(Vertex u) const {
    const auto begin = incident_offsets_[static_cast<std::size_t>(u)];
    const auto end = incident_offsets_[static_cast<std::size_t>(u) + 1];
    return {incident_ids_.data() + begin, static_cast<std::size_t>(end - begin)};
  }

  bool claimed(Vertex edge_id) const { return line_process_.black(edge_id); }
  bool matched(Vertex u) const;

  // The matching: claimed edges, ascending by edge id.
  std::vector<Edge> matching() const;
  // Matched vertices, ascending — the uniform output_set encoding.
  std::vector<Vertex> matched_set() const;

  // Stabilized ⟺ the claimed edge set is an MIS of L(g) ⟺ a maximal
  // matching of g.
  bool stabilized() const { return line_process_.stabilized(); }

  // Uniform trace interface — aggregates count LINE vertices, i.e. EDGES of
  // g: black = claimed edges, active = edges that resample next round,
  // stable_black = claims with no claimed contender, unstable = edges not
  // yet covered by a stable claim.
  Vertex num_black() const { return line_process_.num_black(); }
  Vertex num_active() const { return line_process_.num_active(); }
  Vertex num_stable_black() const { return line_process_.num_stable_black(); }
  Vertex num_unstable() const { return line_process_.num_unstable(); }
  Vertex num_gray() const { return 0; }

  // u is settled once every incident edge is covered by a stable claim
  // (isolated vertices: immediately) — monotone, like N+(I_t) coverage.
  bool settled(Vertex u) const;

  // Fault hook: overwrite one EDGE's claim bit, O(deg_L(edge)).
  void force_edge(Vertex edge_id, Color2 c) {
    line_process_.force_color(edge_id, c);
  }

  // Shards the line engine's decide phase (bit-identical at any value).
  void set_shards(int shards) { line_process_.set_shards(shards); }

  const TwoStateMIS& line_process() const { return line_process_; }

 private:
  MaximalMatching(const Graph& g, std::vector<Edge> edges,
                  std::unique_ptr<Graph> lg, std::vector<Color2> init,
                  const CoinOracle& coins);

  const Graph* graph_;
  std::vector<Edge> edges_;                     // edge_id -> (u, v), u < v
  std::vector<std::int64_t> incident_offsets_;  // CSR over incident edge ids
  std::vector<Vertex> incident_ids_;
  // Heap-allocated so the line engine's graph pointer survives moves of
  // this wrapper (declared before, hence constructed before, the process).
  std::unique_ptr<Graph> line_graph_;
  TwoStateMIS line_process_;
};

}  // namespace ssmis
