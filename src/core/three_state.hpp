// The 3-state MIS process (Definition 5 of the paper).
//
// States {black1, black0, white}; both black states count as black. Update
// rule in round t (NC = set of neighbor colors at end of round t-1):
//
//   if c = black1, or (c = black0 and NC ∌ black1), or
//      (c = white and no neighbor is black)
//        -> c_t = uniform random in {black1, black0}
//   else if c = black0 (i.e. black0 with a black1 neighbor)
//        -> c_t = white
//   else  (white with a black neighbor)
//        -> unchanged
//
// Note on the white rule: the paper writes "NC_t(u) = {white}". For graphs
// with isolated vertices that literal reading (NC = ∅ ≠ {white}) would leave
// an isolated white vertex stuck forever and the process could never reach
// an MIS, so — as clearly intended — we implement the condition as "white
// and no black neighbor". On graphs without isolated vertices the two
// readings coincide.
//
// A stable black vertex alternates between black1/black0 forever; the black
// *set* is what stabilizes. No collision detection is needed: the process
// translates to the synchronous stone-age model with two one-bit channels
// ("some neighbor is black", "some neighbor is black1").
//
// Implemented as an engine rule (core/engine.hpp) with two incrementally
// maintained counters per vertex. The scheduled set is everything except
// covered whites, so a round costs O(|scheduled| + sum deg(changed)) — on a
// stabilized graph that is O(|MIS|) per round (the stable blacks keep
// re-randomizing their black1/black0 representation by design).
#pragma once

#include <cstdint>
#include <vector>

#include "core/color.hpp"
#include "core/engine.hpp"
#include "graph/graph.hpp"
#include "rng/coin_oracle.hpp"

namespace ssmis {

class ThreeStateRule {
 public:
  using Color = Color3;
  static constexpr bool kTracksStability = true;
  static constexpr int kBlackNbr = 0;   // neighbors in {black0, black1}
  static constexpr int kBlack1Nbr = 1;  // neighbors in {black1}

  explicit ThreeStateRule(const CoinOracle& coins) : coins_(coins) {}

  int num_colors() const { return 3; }
  int num_counters() const { return 2; }
  Vertex contribution(Color3 c, int j) const {
    return j == kBlackNbr ? (is_black(c) ? 1 : 0) : (c == Color3::kBlack1 ? 1 : 0);
  }

  // u takes the random {black1, black0} transition next round.
  bool active(Color3 c, const Vertex* cnt) const {
    if (c == Color3::kBlack1) return true;
    if (c == Color3::kBlack0) return cnt[kBlack1Nbr] == 0;
    return cnt[kBlackNbr] == 0;  // white with no black neighbor
  }
  // Takes ANY transition: active, or black0 demoting to white. Equivalently,
  // everything except a white vertex that already has a black neighbor.
  bool scheduled(Color3 c, const Vertex* cnt) const {
    return !(c == Color3::kWhite && cnt[kBlackNbr] > 0);
  }
  // Black-set violation: black with a black neighbor, or white without one.
  bool violating(Color3 c, const Vertex* cnt) const {
    return is_black(c) ? cnt[kBlackNbr] > 0 : cnt[kBlackNbr] == 0;
  }
  bool stable_black(Color3 c, const Vertex* cnt) const {
    return is_black(c) && cnt[kBlackNbr] == 0;
  }

  Color3 transition(Vertex u, Color3 c, const Vertex* cnt, std::int64_t t) const {
    if (active(c, cnt))
      return coins_.fair_coin(t, u) ? Color3::kBlack1 : Color3::kBlack0;
    return Color3::kWhite;  // scheduled non-active: black0 with black1 neighbor
  }

  // --- stable-periodic fast-forward (engine.hpp, FastForwardRule) ----------
  //
  // A stable black (black, no black neighbor) re-randomizes black1/black0
  // forever: its color at round T is fair_coin(T, u) alone — a memoryless
  // orbit (period-1 output projection: "black"). Along it every predicate
  // above is constant (active/scheduled/stable_black true, violating
  // false), and the only neighbor-counter component the orbit moves is
  // kBlack1Nbr — which only black0 vertices read, and no black vertex can
  // be adjacent to a stable black. That is the output-projection contract.
  static constexpr std::int64_t kOrbitPeriodHint = 1;
  bool fast_forwardable(Color3 c, const Vertex* cnt) const {
    return is_black(c) && cnt[kBlackNbr] == 0;
  }
  Color3 orbit_color(Vertex u, Color3 c, const Vertex* /*cnt*/,
                     std::int64_t entry_round, std::int64_t now) const {
    if (now == entry_round) return c;
    return coins_.fair_coin(now, u) ? Color3::kBlack1 : Color3::kBlack0;
  }

 private:
  CoinOracle coins_;
};

class ThreeStateMIS {
 public:
  using Engine = ProcessEngine<ThreeStateRule>;

  ThreeStateMIS(const Graph& g, std::vector<Color3> init, const CoinOracle& coins)
      : engine_(g, std::move(init), ThreeStateRule(coins)) {}

  void step() { engine_.step(); }
  std::int64_t round() const { return engine_.round(); }

  const Graph& graph() const { return engine_.graph(); }
  const std::vector<Color3>& colors() const { return engine_.colors(); }
  Color3 color(Vertex u) const { return engine_.color(u); }
  bool black(Vertex u) const { return is_black(color(u)); }

  Vertex black_neighbor_count(Vertex u) const {
    return engine_.counter(u, ThreeStateRule::kBlackNbr);
  }
  Vertex black1_neighbor_count(Vertex u) const {
    return engine_.counter(u, ThreeStateRule::kBlack1Nbr);
  }

  // u takes the random {black1, black0} transition next round.
  bool active(Vertex u) const { return engine_.active(u); }

  // Zero violations ⟺ the black set is an MIS ⟺ stabilized.
  bool stabilized() const { return engine_.stabilized(); }

  bool stable_black(Vertex u) const { return engine_.stable_black(u); }

  // Raw histogram sum: exact under fast-forward (the parked orbits stay
  // within {black0, black1}) and O(1), so the per-round tracer never forces
  // a periodic-set sync.
  Vertex num_black() const {
    return engine_.raw_color_count(Color3::kBlack0) +
           engine_.raw_color_count(Color3::kBlack1);
  }
  Vertex num_active() const { return engine_.num_active(); }
  Vertex num_stable_black() const { return engine_.num_stable_black(); }
  Vertex num_unstable() const { return engine_.num_unstable(); }
  Vertex num_gray() const { return 0; }

  std::vector<Vertex> black_set() const;

  // Overwrites one vertex's color in O(deg(u)) (the pre-engine version did a
  // full O(n + m) counter rebuild).
  void force_color(Vertex u, Color3 c) { engine_.force_color(u, c); }

  // Shards the decide phase across the shared thread pool (bit-identical
  // trajectories at any value; 1 = sequential).
  void set_shards(int shards) { engine_.set_shards(shards); }

  // Stable-periodic fast-forward toggle (on by default; bit-identical
  // trajectories either way — a throughput knob, like set_shards).
  void set_fast_forward(bool on) { engine_.set_fast_forward(on); }
  bool fast_forward_enabled() const { return engine_.fast_forward_enabled(); }
  Vertex num_fast_forwarded() const { return engine_.num_fast_forwarded(); }

  const Engine& engine() const { return engine_; }

 private:
  Engine engine_;
};

}  // namespace ssmis
