// The 3-state MIS process (Definition 5 of the paper).
//
// States {black1, black0, white}; both black states count as black. Update
// rule in round t (NC = set of neighbor colors at end of round t-1):
//
//   if c = black1, or (c = black0 and NC ∌ black1), or
//      (c = white and no neighbor is black)
//        -> c_t = uniform random in {black1, black0}
//   else if c = black0 (i.e. black0 with a black1 neighbor)
//        -> c_t = white
//   else  (white with a black neighbor)
//        -> unchanged
//
// Note on the white rule: the paper writes "NC_t(u) = {white}". For graphs
// with isolated vertices that literal reading (NC = ∅ ≠ {white}) would leave
// an isolated white vertex stuck forever and the process could never reach
// an MIS, so — as clearly intended — we implement the condition as "white
// and no black neighbor". On graphs without isolated vertices the two
// readings coincide.
//
// A stable black vertex alternates between black1/black0 forever; the black
// *set* is what stabilizes. No collision detection is needed: the process
// translates to the synchronous stone-age model with two one-bit channels
// ("some neighbor is black", "some neighbor is black1").
#pragma once

#include <cstdint>
#include <vector>

#include "core/color.hpp"
#include "graph/graph.hpp"
#include "rng/coin_oracle.hpp"

namespace ssmis {

class ThreeStateMIS {
 public:
  ThreeStateMIS(const Graph& g, std::vector<Color3> init, const CoinOracle& coins);

  void step();
  std::int64_t round() const { return round_; }

  const Graph& graph() const { return *graph_; }
  const std::vector<Color3>& colors() const { return colors_; }
  Color3 color(Vertex u) const { return colors_[static_cast<std::size_t>(u)]; }
  bool black(Vertex u) const { return is_black(color(u)); }

  Vertex black_neighbor_count(Vertex u) const {
    return black_nbr_[static_cast<std::size_t>(u)];
  }
  Vertex black1_neighbor_count(Vertex u) const {
    return black1_nbr_[static_cast<std::size_t>(u)];
  }

  // u takes the random {black1, black0} transition next round.
  bool active(Vertex u) const {
    const Color3 c = color(u);
    if (c == Color3::kBlack1) return true;
    if (c == Color3::kBlack0) return black1_neighbor_count(u) == 0;
    return black_neighbor_count(u) == 0;  // white with no black neighbor
  }

  // Black-set violation count: blacks with black neighbors + whites without
  // black neighbors. Zero ⟺ the black set is an MIS ⟺ stabilized.
  bool stabilized() const { return num_violations_ == 0; }

  bool stable_black(Vertex u) const { return black(u) && black_neighbor_count(u) == 0; }

  Vertex num_black() const { return num_black_; }
  Vertex num_active() const;
  Vertex num_stable_black() const;
  Vertex num_unstable() const;
  Vertex num_gray() const { return 0; }

  std::vector<Vertex> black_set() const;

  void force_color(Vertex u, Color3 c);

 private:
  void rebuild_counters();
  void recount_violations();

  const Graph* graph_;
  CoinOracle coins_;
  std::vector<Color3> colors_;
  std::vector<Vertex> black_nbr_;   // neighbors in {black0, black1}
  std::vector<Vertex> black1_nbr_;  // neighbors in {black1}
  std::vector<Color3> scratch_next_;
  std::int64_t round_ = 0;
  Vertex num_black_ = 0;
  Vertex num_violations_ = 0;
};

}  // namespace ssmis
