// Drives a process to stabilization and records traces.
//
// Works with any type satisfying MisProcess: the three direct processes and
// the communication-model simulations all qualify, so every experiment is
// written once against this interface.
#pragma once

#include <concepts>
#include <cstdint>
#include <string>

#include "core/trace.hpp"

namespace ssmis {

template <typename P>
concept MisProcess = requires(P p, const P cp, Vertex v) {
  { p.step() };
  { cp.stabilized() } -> std::convertible_to<bool>;
  { cp.round() } -> std::convertible_to<std::int64_t>;
  { cp.num_black() } -> std::convertible_to<Vertex>;
  { cp.num_active() } -> std::convertible_to<Vertex>;
  { cp.num_stable_black() } -> std::convertible_to<Vertex>;
  { cp.num_unstable() } -> std::convertible_to<Vertex>;
  { cp.num_gray() } -> std::convertible_to<Vertex>;
};

enum class TraceMode { kNone, kPerRound };

template <MisProcess P>
RoundStats snapshot(const P& process) {
  RoundStats s;
  s.round = process.round();
  s.black = process.num_black();
  s.active = process.num_active();
  s.stable_black = process.num_stable_black();
  s.unstable = process.num_unstable();
  s.gray = process.num_gray();
  return s;
}

// Runs until stabilized() or until `max_rounds` further rounds have elapsed.
// With TraceMode::kPerRound the trace includes the initial state and every
// round end. All engine-backed processes expose O(1) incrementally
// maintained aggregates (num_stable_black, num_unstable, ...), so per-round
// tracing adds O(1) per round — a traced round costs the same
// O(|A_t| + sum deg(changed)) as an untraced one. (Before the engine
// refactor the V_t snapshot alone was an O(n + m) rescan per round.)
template <MisProcess P>
RunResult run_until_stabilized(P& process, std::int64_t max_rounds,
                               TraceMode mode = TraceMode::kNone) {
  RunResult result;
  if (mode == TraceMode::kPerRound) result.trace.push_back(snapshot(process));
  const std::int64_t start = process.round();
  while (!process.stabilized() && process.round() - start < max_rounds) {
    process.step();
    if (mode == TraceMode::kPerRound) result.trace.push_back(snapshot(process));
  }
  result.stabilized = process.stabilized();
  result.rounds = process.round() - start;
  return result;
}

// CSV rendering of a trace ("round,black,active,stable_black,unstable,gray").
std::string trace_to_csv(const RunResult& result);

}  // namespace ssmis
