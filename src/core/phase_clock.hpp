// Randomized phase clock, the core mechanism of the logarithmic switch
// (Definition 26), generalized to a diameter parameter D as in Emek-Keren's
// RandPhase [PODC 2021].
//
// Each vertex holds a level in {0, ..., D+2} (D+3 states; the paper's switch
// is the D = 3 instance with 6 states). Per round, with top = D+2:
//
//   if level = top: draw a bit b with P[b = 0] = zeta
//   if (level = top and b = 1) or level = 0:  level' = top
//   else:                                     level' = max over N+(u) of level, minus 1
//
// The paper's insight (Section 5.1) is to run the D = 3 clock on graphs of
// *arbitrary unknown* diameter: when diam(G) <= 2 the clock synchronizes and
// yields both S2 and S3; on larger-diameter graphs only the upper bound S1
// survives — which is exactly what the 3-color analysis needs.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "rng/coin_oracle.hpp"

namespace ssmis {

class PhaseClock {
 public:
  // zeta = zeta_num / 2^zeta_log2_den (the paper uses 1/2^7 = 4/a, a = 512).
  // Throws std::invalid_argument for d < 1 or malformed zeta or init levels
  // outside [0, d+2].
  PhaseClock(const Graph& g, int d, std::vector<int> init_levels,
             const CoinOracle& coins, std::uint64_t zeta_num = 1,
             unsigned zeta_log2_den = 7);

  // Uniformly random initial levels drawn from the oracle (self-stabilizing
  // processes must cope with arbitrary levels).
  static PhaseClock with_random_levels(const Graph& g, int d, const CoinOracle& coins,
                                       std::uint64_t zeta_num = 1,
                                       unsigned zeta_log2_den = 7);

  void step();
  // Replays `rounds` consecutive step()s (no-op for rounds <= 0). The clock
  // trajectory is a pure function of (levels, round, coins), so a deferred
  // batch replay is bit-identical to having stepped every round — the
  // lazy-switch hook of the 3-color fast-forward path.
  void advance(std::int64_t rounds);
  std::int64_t round() const { return round_; }

  int d() const { return d_; }
  int top_level() const { return d_ + 2; }
  int num_states() const { return d_ + 3; }
  double zeta() const;

  int level(Vertex u) const { return levels_[static_cast<std::size_t>(u)]; }
  const std::vector<int>& levels() const { return levels_; }

  // Test/fault hook.
  void force_level(Vertex u, int level);

 private:
  const Graph* graph_;
  CoinOracle coins_;
  int d_;
  std::uint64_t zeta_num_;
  unsigned zeta_log2_den_;
  std::vector<int> levels_;
  std::vector<int> scratch_;
  std::int64_t round_ = 0;
};

}  // namespace ssmis
