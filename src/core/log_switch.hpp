// Logarithmic switch processes (Definitions 25 and 26).
//
// An (a, b)-logarithmic switch emits a per-vertex binary signal
// sigma_t(u) ∈ {on, off} with:
//   S1: every off-run has length at most a ln n;
//   S2 (diam <= 2): after warm-up, every off-run has length >= (a/6) ln n;
//   S3 (diam <= 2): after O(1) rounds, every on-run has length <= b.
//
// `SwitchProcess` is the interface consumed by the 3-color MIS process;
// implementations:
//   * RandomizedLogSwitch — the paper's construction: a D = 3 phase clock
//     with levels {0..5}; sigma = on iff level <= 2. Uses 6 states/vertex,
//     giving the 3-color process its 3 x 6 = 18 total states.
//   * PhaseClockSwitch — same mapping over an arbitrary-D clock (for the
//     D = 2 vs 3 ablation). on iff level <= D - 1.
//   * AlwaysOnSwitch / NeverOnSwitch — degenerate test doubles.
//   * PeriodicSwitch — deterministic oracle switch (off for `off_len`
//     rounds, then on for `on_len`), for unit-testing the 3-color color
//     dynamics independently of clock randomness.
#pragma once

#include <cstdint>
#include <memory>

#include "core/phase_clock.hpp"
#include "graph/graph.hpp"
#include "rng/coin_oracle.hpp"

namespace ssmis {

class SwitchProcess {
 public:
  virtual ~SwitchProcess() = default;

  // Advances the switch by one round, in lockstep with the MIS process.
  virtual void step() = 0;

  // Replays `rounds` consecutive step()s (no-op for rounds <= 0). Used by
  // the 3-color fast-forward path, which defers switch rounds while no
  // gray vertex can read sigma and replays them — bit-identically, since
  // every implementation is a pure function of (state, round, coins) —
  // just before one can. Implementations with cheaper batch advancement
  // override this.
  virtual void advance(std::int64_t rounds) {
    for (std::int64_t i = 0; i < rounds; ++i) step();
  }

  // sigma_t(u) where t is the number of step() calls so far.
  virtual bool on(Vertex u) const = 0;

  virtual std::int64_t round() const = 0;

  // Per-vertex state count (6 for the paper's switch), for state accounting.
  virtual int num_states() const = 0;
};

// The paper's randomized logarithmic switch (Definition 26): 6 levels,
// sigma(u) = on iff level(u) <= 2, zeta = 2^-7 by default (a = 4/zeta = 512).
class RandomizedLogSwitch final : public SwitchProcess {
 public:
  RandomizedLogSwitch(const Graph& g, const CoinOracle& coins,
                      std::uint64_t zeta_num = 1, unsigned zeta_log2_den = 7);
  RandomizedLogSwitch(const Graph& g, std::vector<int> init_levels,
                      const CoinOracle& coins, std::uint64_t zeta_num = 1,
                      unsigned zeta_log2_den = 7);

  void step() override { clock_.step(); }
  void advance(std::int64_t rounds) override { clock_.advance(rounds); }
  bool on(Vertex u) const override { return clock_.level(u) <= 2; }
  std::int64_t round() const override { return clock_.round(); }
  int num_states() const override { return clock_.num_states(); }

  PhaseClock& clock() { return clock_; }
  const PhaseClock& clock() const { return clock_; }

  // The paper's parameter a = 4/zeta for which S1-S3 hold (Lemma 27).
  double parameter_a() const { return 4.0 / clock_.zeta(); }

 private:
  PhaseClock clock_;
};

// Arbitrary-D clock with the generalized mapping on iff level <= D-1.
class PhaseClockSwitch final : public SwitchProcess {
 public:
  PhaseClockSwitch(const Graph& g, int d, const CoinOracle& coins,
                   std::uint64_t zeta_num = 1, unsigned zeta_log2_den = 7);

  void step() override { clock_.step(); }
  void advance(std::int64_t rounds) override { clock_.advance(rounds); }
  bool on(Vertex u) const override { return clock_.level(u) <= clock_.d() - 1; }
  std::int64_t round() const override { return clock_.round(); }
  int num_states() const override { return clock_.num_states(); }

  PhaseClock& clock() { return clock_; }

 private:
  PhaseClock clock_;
};

class AlwaysOnSwitch final : public SwitchProcess {
 public:
  void step() override { ++round_; }
  void advance(std::int64_t rounds) override {
    if (rounds > 0) round_ += rounds;
  }
  bool on(Vertex) const override { return true; }
  std::int64_t round() const override { return round_; }
  int num_states() const override { return 1; }

 private:
  std::int64_t round_ = 0;
};

class NeverOnSwitch final : public SwitchProcess {
 public:
  void step() override { ++round_; }
  void advance(std::int64_t rounds) override {
    if (rounds > 0) round_ += rounds;
  }
  bool on(Vertex) const override { return false; }
  std::int64_t round() const override { return round_; }
  int num_states() const override { return 1; }

 private:
  std::int64_t round_ = 0;
};

// Deterministic global cycle: off for `off_len` rounds, on for `on_len`.
class PeriodicSwitch final : public SwitchProcess {
 public:
  PeriodicSwitch(std::int64_t off_len, std::int64_t on_len);

  void step() override { ++round_; }
  void advance(std::int64_t rounds) override {
    if (rounds > 0) round_ += rounds;
  }
  bool on(Vertex) const override {
    return round_ % (off_len_ + on_len_) >= off_len_;
  }
  std::int64_t round() const override { return round_; }
  int num_states() const override {
    return static_cast<int>(off_len_ + on_len_);
  }

 private:
  std::int64_t off_len_;
  std::int64_t on_len_;
  std::int64_t round_ = 0;
};

// Measured on/off run-length statistics of a switch execution; the
// Lemma 27 experiment (S1-S3) is built on this.
struct SwitchRunStats {
  std::int64_t max_off_run = 0;
  std::int64_t min_completed_off_run = 0;  // shortest *completed* off-run after warm-up
  std::int64_t max_on_run = 0;             // after warm-up
  std::int64_t rounds_observed = 0;
};

// Runs `sw` for `rounds` rounds and aggregates per-vertex run lengths.
// Runs still open at the horizon count toward the maxima but not the minima.
// `warmup` rounds are discarded before min/max-on accounting (S2/S3 hold
// only after a warm-up; S1 is accounted from round 0).
SwitchRunStats measure_switch_runs(SwitchProcess& sw, Vertex n, std::int64_t rounds,
                                   std::int64_t warmup);

}  // namespace ssmis
