#include "core/priority_mis.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "core/init.hpp"
#include "core/process.hpp"
#include "harness/registry.hpp"

namespace ssmis {

PriorityMisRule::PriorityMisRule(
    const CoinOracle& coins, std::shared_ptr<const std::vector<double>> biases)
    : coins_(coins), biases_(std::move(biases)) {
  if (biases_ == nullptr)
    throw std::invalid_argument("PriorityMIS: bias table must not be null");
  for (double p : *biases_) {
    if (!(p > 0.0) || !(p < 1.0))
      throw std::invalid_argument("PriorityMIS: biases must be in (0,1)");
  }
}

std::shared_ptr<const std::vector<double>> PriorityMIS::make_biases(
    const Graph& g, const std::string& mode, double lo, double hi,
    std::uint64_t seed) {
  if (!(lo > 0.0) || !(hi < 1.0) || !(lo <= hi))
    throw std::invalid_argument(
        "PriorityMIS: need 0 < bias-lo <= bias-hi < 1");
  const Vertex n = g.num_vertices();
  auto biases = std::make_shared<std::vector<double>>(
      static_cast<std::size_t>(n), (lo + hi) / 2.0);
  auto weight_to_bias = [&](Vertex u, double w) {
    (*biases)[static_cast<std::size_t>(u)] = lo + (hi - lo) * w;
  };
  if (mode == "id") {
    for (Vertex u = 0; u < n; ++u)
      weight_to_bias(u, n > 1 ? static_cast<double>(u) /
                                    static_cast<double>(n - 1)
                              : 1.0);
  } else if (mode == "degree") {
    const std::vector<Vertex> degrees = g.degrees();  // one sweep, any storage
    const Vertex max_deg =
        degrees.empty() ? 0 : *std::max_element(degrees.begin(), degrees.end());
    for (Vertex u = 0; u < n; ++u)
      weight_to_bias(u, max_deg > 0
                            ? static_cast<double>(
                                  degrees[static_cast<std::size_t>(u)]) /
                                  static_cast<double>(max_deg)
                            : 1.0);
  } else if (mode == "random") {
    const CoinOracle coins(seed);
    for (Vertex u = 0; u < n; ++u)
      weight_to_bias(u, coins.uniform(0, u, CoinTag::kPriority));
  } else {
    throw std::invalid_argument("PriorityMIS: unknown priority mode '" + mode +
                                "' (valid: id, degree, random)");
  }
  return biases;
}

std::vector<Vertex> PriorityMIS::black_set() const {
  return engine_.select([this](Vertex u) { return black(u); });
}

namespace {

const ProtocolRegistrar kPriorityProtocol{
    "priority",
    "weight/ID-biased 2-state MIS: active vertex u turns black with "
    "probability bias-lo + (bias-hi - bias-lo) * w_u "
    "(--proto-priority=id|degree|random); the MIS skews toward "
    "high-priority vertices, validity is unchanged",
    {"priority", "bias-lo", "bias-hi"},
    [](const Graph& g, const ProtocolParams& params, std::uint64_t seed) {
      const CoinOracle coins(seed);
      auto biases = PriorityMIS::make_biases(
          g, params.get_string("priority", "id"),
          params.get_double("bias-lo", 0.25), params.get_double("bias-hi", 0.75),
          seed);
      return std::make_unique<MisFamilyAdapter<PriorityMIS>>(PriorityMIS(
          g, make_init2(g, params.init, coins), coins, std::move(biases)));
    }};

}  // namespace

}  // namespace ssmis
