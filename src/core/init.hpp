// Initial-state generators.
//
// Self-stabilization means the processes must converge from *arbitrary*
// initial states; the experiment harness therefore sweeps over adversarial
// patterns, not just the all-white "clean start" that non-self-stabilizing
// algorithms assume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/color.hpp"
#include "graph/graph.hpp"
#include "rng/coin_oracle.hpp"

namespace ssmis {

enum class InitPattern {
  kAllWhite,        // the clean start
  kAllBlack,        // maximally conflicted
  kUniformRandom,   // each vertex independently uniform
  kAlternating,     // by vertex parity
  kHighDegreeBlack, // vertices with degree above the median start black
  kOneBlack,        // a single black vertex (vertex 0)
};

std::string to_string(InitPattern pattern);

// All six patterns, for sweep loops.
const std::vector<InitPattern>& all_init_patterns();

std::vector<Color2> make_init2(const Graph& g, InitPattern pattern,
                               const CoinOracle& coins);
std::vector<Color3> make_init3(const Graph& g, InitPattern pattern,
                               const CoinOracle& coins);
std::vector<ColorG> make_init_g(const Graph& g, InitPattern pattern,
                                const CoinOracle& coins);

}  // namespace ssmis
