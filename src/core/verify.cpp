#include "core/verify.hpp"

#include <sstream>
#include <stdexcept>

namespace ssmis {

namespace {

void check_size(const Graph& g, const std::vector<char>& in_set) {
  if (in_set.size() != static_cast<std::size_t>(g.num_vertices()))
    throw std::invalid_argument("verify: membership vector size != num_vertices");
}

}  // namespace

bool is_independent_set(const Graph& g, const std::vector<char>& in_set) {
  check_size(g, in_set);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (!in_set[static_cast<std::size_t>(u)]) continue;
    bool ok = true;
    g.for_each_neighbor(u, [&](Vertex v) {
      if (v > u && in_set[static_cast<std::size_t>(v)]) {
        ok = false;
        return false;
      }
      return true;
    });
    if (!ok) return false;
  }
  return true;
}

bool is_maximal(const Graph& g, const std::vector<char>& in_set) {
  check_size(g, in_set);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (in_set[static_cast<std::size_t>(u)]) continue;
    bool has_member_neighbor = false;
    g.for_each_neighbor(u, [&](Vertex v) {
      if (in_set[static_cast<std::size_t>(v)]) {
        has_member_neighbor = true;
        return false;
      }
      return true;
    });
    if (!has_member_neighbor) return false;
  }
  return true;
}

bool is_mis(const Graph& g, const std::vector<char>& in_set) {
  return is_independent_set(g, in_set) && is_maximal(g, in_set);
}

std::vector<char> members_to_mask(Vertex n, const std::vector<Vertex>& members) {
  std::vector<char> mask(static_cast<std::size_t>(n), 0);
  for (Vertex u : members) {
    if (u < 0 || u >= n)
      throw std::out_of_range("members_to_mask: vertex out of range");
    mask[static_cast<std::size_t>(u)] = 1;
  }
  return mask;
}

bool is_independent_set(const Graph& g, const std::vector<Vertex>& members) {
  return is_independent_set(g, members_to_mask(g.num_vertices(), members));
}

bool is_maximal(const Graph& g, const std::vector<Vertex>& members) {
  return is_maximal(g, members_to_mask(g.num_vertices(), members));
}

bool is_mis(const Graph& g, const std::vector<Vertex>& members) {
  return is_mis(g, members_to_mask(g.num_vertices(), members));
}

std::optional<std::string> find_mis_violation(const Graph& g,
                                              const std::vector<char>& in_set) {
  check_size(g, in_set);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (!in_set[static_cast<std::size_t>(u)]) continue;
    std::optional<std::string> violation;
    g.for_each_neighbor(u, [&](Vertex v) {
      if (v > u && in_set[static_cast<std::size_t>(v)]) {
        std::ostringstream oss;
        oss << "independence violated: members " << u << " and " << v
            << " are adjacent";
        violation = oss.str();
        return false;
      }
      return true;
    });
    if (violation) return violation;
  }
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (in_set[static_cast<std::size_t>(u)]) continue;
    bool has_member_neighbor = false;
    g.for_each_neighbor(u, [&](Vertex v) {
      if (in_set[static_cast<std::size_t>(v)]) {
        has_member_neighbor = true;
        return false;
      }
      return true;
    });
    if (!has_member_neighbor) {
      std::ostringstream oss;
      oss << "maximality violated: vertex " << u << " has no member neighbor";
      return oss.str();
    }
  }
  return std::nullopt;
}

void verify_mis_output(const Graph& g, const std::vector<Vertex>& claimed) {
  const auto mask = members_to_mask(g.num_vertices(), claimed);
  if (const auto violation = find_mis_violation(g, mask))
    throw std::logic_error("process stabilized on a non-MIS: " + *violation);
}

bool is_matching(const Graph& g, const std::vector<Edge>& matching) {
  std::vector<char> used(static_cast<std::size_t>(g.num_vertices()), 0);
  for (const auto& [u, v] : matching) {
    if (u < 0 || v < 0 || u >= g.num_vertices() || v >= g.num_vertices() ||
        !g.has_edge(u, v))
      return false;
    if (used[static_cast<std::size_t>(u)] || used[static_cast<std::size_t>(v)])
      return false;
    used[static_cast<std::size_t>(u)] = 1;
    used[static_cast<std::size_t>(v)] = 1;
  }
  return true;
}

bool is_maximal_matching(const Graph& g, const std::vector<Edge>& matching) {
  return !find_matching_violation(g, matching).has_value();
}

std::optional<std::string> find_matching_violation(
    const Graph& g, const std::vector<Edge>& matching) {
  std::vector<char> used(static_cast<std::size_t>(g.num_vertices()), 0);
  for (const auto& [u, v] : matching) {
    if (u < 0 || v < 0 || u >= g.num_vertices() || v >= g.num_vertices() ||
        !g.has_edge(u, v)) {
      std::ostringstream oss;
      oss << "matching violated: {" << u << ", " << v << "} is not an edge";
      return oss.str();
    }
    for (Vertex x : {u, v}) {
      if (used[static_cast<std::size_t>(x)]) {
        std::ostringstream oss;
        oss << "matching violated: vertex " << x << " is in two matching edges";
        return oss.str();
      }
      used[static_cast<std::size_t>(x)] = 1;
    }
  }
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (used[static_cast<std::size_t>(u)]) continue;
    std::optional<std::string> violation;
    g.for_each_neighbor(u, [&](Vertex v) {
      if (v > u && !used[static_cast<std::size_t>(v)]) {
        std::ostringstream oss;
        oss << "maximality violated: edge {" << u << ", " << v
            << "} has both endpoints unmatched";
        violation = oss.str();
        return false;
      }
      return true;
    });
    if (violation) return violation;
  }
  return std::nullopt;
}

std::vector<Edge> greedy_maximal_matching(const Graph& g) {
  std::vector<char> used(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<Edge> edges;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (used[static_cast<std::size_t>(u)]) continue;
    g.for_each_neighbor(u, [&](Vertex v) {
      if (v > u && !used[static_cast<std::size_t>(v)]) {
        used[static_cast<std::size_t>(u)] = 1;
        used[static_cast<std::size_t>(v)] = 1;
        edges.emplace_back(u, v);
        return false;
      }
      return true;
    });
  }
  return edges;
}

std::vector<Vertex> greedy_mis(const Graph& g) {
  std::vector<char> blocked(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<Vertex> mis;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (blocked[static_cast<std::size_t>(u)]) continue;
    mis.push_back(u);
    g.for_each_neighbor(u, [&](Vertex v) { blocked[static_cast<std::size_t>(v)] = 1; });
  }
  return mis;
}

}  // namespace ssmis
