#include "core/verify.hpp"

#include <sstream>
#include <stdexcept>

namespace ssmis {

namespace {

void check_size(const Graph& g, const std::vector<char>& in_set) {
  if (in_set.size() != static_cast<std::size_t>(g.num_vertices()))
    throw std::invalid_argument("verify: membership vector size != num_vertices");
}

}  // namespace

bool is_independent_set(const Graph& g, const std::vector<char>& in_set) {
  check_size(g, in_set);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (!in_set[static_cast<std::size_t>(u)]) continue;
    for (Vertex v : g.neighbors(u)) {
      if (v > u && in_set[static_cast<std::size_t>(v)]) return false;
    }
  }
  return true;
}

bool is_maximal(const Graph& g, const std::vector<char>& in_set) {
  check_size(g, in_set);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (in_set[static_cast<std::size_t>(u)]) continue;
    bool has_member_neighbor = false;
    for (Vertex v : g.neighbors(u)) {
      if (in_set[static_cast<std::size_t>(v)]) {
        has_member_neighbor = true;
        break;
      }
    }
    if (!has_member_neighbor) return false;
  }
  return true;
}

bool is_mis(const Graph& g, const std::vector<char>& in_set) {
  return is_independent_set(g, in_set) && is_maximal(g, in_set);
}

std::vector<char> members_to_mask(Vertex n, const std::vector<Vertex>& members) {
  std::vector<char> mask(static_cast<std::size_t>(n), 0);
  for (Vertex u : members) {
    if (u < 0 || u >= n)
      throw std::out_of_range("members_to_mask: vertex out of range");
    mask[static_cast<std::size_t>(u)] = 1;
  }
  return mask;
}

bool is_independent_set(const Graph& g, const std::vector<Vertex>& members) {
  return is_independent_set(g, members_to_mask(g.num_vertices(), members));
}

bool is_maximal(const Graph& g, const std::vector<Vertex>& members) {
  return is_maximal(g, members_to_mask(g.num_vertices(), members));
}

bool is_mis(const Graph& g, const std::vector<Vertex>& members) {
  return is_mis(g, members_to_mask(g.num_vertices(), members));
}

std::optional<std::string> find_mis_violation(const Graph& g,
                                              const std::vector<char>& in_set) {
  check_size(g, in_set);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (!in_set[static_cast<std::size_t>(u)]) continue;
    for (Vertex v : g.neighbors(u)) {
      if (v > u && in_set[static_cast<std::size_t>(v)]) {
        std::ostringstream oss;
        oss << "independence violated: members " << u << " and " << v
            << " are adjacent";
        return oss.str();
      }
    }
  }
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (in_set[static_cast<std::size_t>(u)]) continue;
    bool has_member_neighbor = false;
    for (Vertex v : g.neighbors(u)) {
      if (in_set[static_cast<std::size_t>(v)]) {
        has_member_neighbor = true;
        break;
      }
    }
    if (!has_member_neighbor) {
      std::ostringstream oss;
      oss << "maximality violated: vertex " << u << " has no member neighbor";
      return oss.str();
    }
  }
  return std::nullopt;
}

std::vector<Vertex> greedy_mis(const Graph& g) {
  std::vector<char> blocked(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<Vertex> mis;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (blocked[static_cast<std::size_t>(u)]) continue;
    mis.push_back(u);
    for (Vertex v : g.neighbors(u)) blocked[static_cast<std::size_t>(v)] = 1;
  }
  return mis;
}

}  // namespace ssmis
