// The 2-state MIS process (Definition 4 of the paper).
//
// Each vertex holds a binary color. In every synchronous round, every
// *active* vertex — black with a black neighbor, or white with no black
// neighbor — resamples its color uniformly at random; all other vertices
// keep their color. Once the black set is a maximal independent set nothing
// is active and the process has stabilized.
//
// Randomness: the color drawn by vertex u in round t is CoinOracle's
// phi_t(u), exactly the coupling device of Section 2.1, so runs are
// reproducible and bit-identical to the beeping-model simulation.
//
// Complexity: a round costs O(n + sum of deg(u) over vertices that changed
// color), thanks to incrementally maintained black-neighbor counters.
#pragma once

#include <cstdint>
#include <vector>

#include "core/color.hpp"
#include "graph/graph.hpp"
#include "rng/coin_oracle.hpp"

namespace ssmis {

class TwoStateMIS {
 public:
  // `init` must have size g.num_vertices(); the graph must outlive the
  // process. Throws std::invalid_argument on size mismatch.
  TwoStateMIS(const Graph& g, std::vector<Color2> init, const CoinOracle& coins);

  // Executes one synchronous round (round counter advances by one).
  void step();

  // Rounds executed so far; colors() is c_t with t = round().
  std::int64_t round() const { return round_; }

  const Graph& graph() const { return *graph_; }
  const std::vector<Color2>& colors() const { return colors_; }
  Color2 color(Vertex u) const { return colors_[static_cast<std::size_t>(u)]; }
  bool black(Vertex u) const { return is_black(color(u)); }

  // Number of black neighbors of u (maintained incrementally).
  Vertex black_neighbor_count(Vertex u) const {
    return black_nbr_[static_cast<std::size_t>(u)];
  }

  // u ∈ A_t: u takes a random transition in the next round.
  bool active(Vertex u) const {
    return black(u) ? black_neighbor_count(u) > 0 : black_neighbor_count(u) == 0;
  }

  // u ∈ I_t: stable black (black with no black neighbor).
  bool stable_black(Vertex u) const { return black(u) && black_neighbor_count(u) == 0; }

  // |B_t|, |A_t| (O(1), maintained); |I_t|, |V_t| (O(n + m) scans).
  Vertex num_black() const { return num_black_; }
  Vertex num_active() const { return num_active_; }
  Vertex num_stable_black() const;
  Vertex num_unstable() const;  // |V_t| = |V \ N+(I_t)|
  Vertex num_gray() const { return 0; }  // uniform trace interface

  std::vector<Vertex> black_set() const;
  std::vector<Vertex> active_set() const;
  std::vector<Vertex> stable_black_set() const;
  std::vector<Vertex> unstable_set() const;

  // Stabilized ⟺ A_t = ∅ ⟺ the black set is an MIS.
  bool stabilized() const { return num_active_ == 0; }

  // Fault-injection / test hook: overwrite one vertex's color, keeping the
  // internal counters consistent. Counts as a transient fault, not a round.
  void force_color(Vertex u, Color2 c);

  const CoinOracle& coins() const { return coins_; }

 private:
  void recount_active();

  const Graph* graph_;
  CoinOracle coins_;
  std::vector<Color2> colors_;
  std::vector<Vertex> black_nbr_;
  std::vector<Vertex> scratch_changed_;
  std::int64_t round_ = 0;
  Vertex num_black_ = 0;
  Vertex num_active_ = 0;
};

}  // namespace ssmis
