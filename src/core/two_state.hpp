// The 2-state MIS process (Definition 4 of the paper).
//
// Each vertex holds a binary color. In every synchronous round, every
// *active* vertex — black with a black neighbor, or white with no black
// neighbor — resamples its color uniformly at random; all other vertices
// keep their color. Once the black set is a maximal independent set nothing
// is active and the process has stabilized.
//
// Randomness: the color drawn by vertex u in round t is CoinOracle's
// phi_t(u), exactly the coupling device of Section 2.1, so runs are
// reproducible and bit-identical to the beeping-model simulation.
//
// Implementation: a thin rule over ProcessEngine (core/engine.hpp). A round
// costs O(|A_t| + sum of deg(u) over vertices that changed color), and all
// trace aggregates (num_active, num_stable_black, num_unstable, ...) are
// O(1) incrementally maintained reads.
#pragma once

#include <cstdint>
#include <vector>

#include "core/color.hpp"
#include "core/engine.hpp"
#include "graph/graph.hpp"
#include "rng/coin_oracle.hpp"

namespace ssmis {

// Definition 4 as an engine policy: transition table + activity predicate.
class TwoStateRule {
 public:
  using Color = Color2;
  static constexpr bool kTracksStability = true;

  explicit TwoStateRule(const CoinOracle& coins) : coins_(coins) {}

  int num_colors() const { return 2; }
  int num_counters() const { return 1; }  // cnt[0] = black neighbors
  Vertex contribution(Color2 c, int) const { return is_black(c) ? 1 : 0; }

  bool active(Color2 c, const Vertex* cnt) const {
    return is_black(c) ? cnt[0] > 0 : cnt[0] == 0;
  }
  // For the 2-state rule, the scheduled, active, and violating sets coincide.
  bool scheduled(Color2 c, const Vertex* cnt) const { return active(c, cnt); }
  bool violating(Color2 c, const Vertex* cnt) const { return active(c, cnt); }
  bool stable_black(Color2 c, const Vertex* cnt) const {
    return is_black(c) && cnt[0] == 0;
  }

  // Called only for active vertices: resample with phi_t(u).
  Color2 transition(Vertex u, Color2, const Vertex*, std::int64_t t) const {
    return coins_.fair_coin(t, u) ? Color2::kBlack : Color2::kWhite;
  }

  const CoinOracle& coins() const { return coins_; }

 private:
  CoinOracle coins_;
};

class TwoStateMIS {
 public:
  using Engine = ProcessEngine<TwoStateRule>;

  // `init` must have size g.num_vertices(); the graph must outlive the
  // process. Throws std::invalid_argument on size mismatch.
  TwoStateMIS(const Graph& g, std::vector<Color2> init, const CoinOracle& coins)
      : engine_(g, std::move(init), TwoStateRule(coins)) {}

  // Executes one synchronous round (round counter advances by one).
  void step() { engine_.step(); }

  // Rounds executed so far; colors() is c_t with t = round().
  std::int64_t round() const { return engine_.round(); }

  const Graph& graph() const { return engine_.graph(); }
  const std::vector<Color2>& colors() const { return engine_.colors(); }
  Color2 color(Vertex u) const { return engine_.color(u); }
  bool black(Vertex u) const { return is_black(color(u)); }

  // Number of black neighbors of u (maintained incrementally).
  Vertex black_neighbor_count(Vertex u) const { return engine_.counter(u, 0); }

  // u ∈ A_t: u takes a random transition in the next round.
  bool active(Vertex u) const { return engine_.active(u); }

  // u ∈ I_t: stable black (black with no black neighbor).
  bool stable_black(Vertex u) const { return engine_.stable_black(u); }

  // |B_t|, |A_t|, |I_t|, |V_t| — all O(1), engine-maintained (the V_t count
  // used to be an O(n + m) rescan per traced round).
  Vertex num_black() const { return engine_.color_count(Color2::kBlack); }
  Vertex num_active() const { return engine_.num_active(); }
  Vertex num_stable_black() const { return engine_.num_stable_black(); }
  Vertex num_unstable() const { return engine_.num_unstable(); }
  Vertex num_gray() const { return 0; }  // uniform trace interface

  std::vector<Vertex> black_set() const;
  std::vector<Vertex> active_set() const;
  std::vector<Vertex> stable_black_set() const;
  std::vector<Vertex> unstable_set() const;

  // Stabilized ⟺ A_t = ∅ ⟺ the black set is an MIS.
  bool stabilized() const { return engine_.stabilized(); }

  // Fault-injection / test hook: overwrite one vertex's color, keeping the
  // internal counters consistent. Counts as a transient fault, not a round.
  void force_color(Vertex u, Color2 c) { engine_.force_color(u, c); }

  // Shards the decide phase across the shared thread pool (bit-identical
  // trajectories at any value; 1 = sequential).
  void set_shards(int shards) { engine_.set_shards(shards); }

  const CoinOracle& coins() const { return engine_.rule().coins(); }

  const Engine& engine() const { return engine_; }

 private:
  Engine engine_;
};

}  // namespace ssmis
