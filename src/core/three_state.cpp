#include "core/three_state.hpp"

namespace ssmis {

std::vector<Vertex> ThreeStateMIS::black_set() const {
  return engine_.select([this](Vertex u) { return black(u); });
}

}  // namespace ssmis
