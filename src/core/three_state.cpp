#include "core/three_state.hpp"

#include <stdexcept>

namespace ssmis {

ThreeStateMIS::ThreeStateMIS(const Graph& g, std::vector<Color3> init,
                             const CoinOracle& coins)
    : graph_(&g), coins_(coins), colors_(std::move(init)) {
  if (colors_.size() != static_cast<std::size_t>(g.num_vertices()))
    throw std::invalid_argument("ThreeStateMIS: init size != num_vertices");
  rebuild_counters();
}

void ThreeStateMIS::rebuild_counters() {
  black_nbr_.assign(colors_.size(), 0);
  black1_nbr_.assign(colors_.size(), 0);
  num_black_ = 0;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u) {
    const Color3 c = color(u);
    if (!is_black(c)) continue;
    ++num_black_;
    for (Vertex v : graph_->neighbors(u)) {
      ++black_nbr_[static_cast<std::size_t>(v)];
      if (c == Color3::kBlack1) ++black1_nbr_[static_cast<std::size_t>(v)];
    }
  }
  recount_violations();
}

void ThreeStateMIS::recount_violations() {
  num_violations_ = 0;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u) {
    if (black(u) ? black_neighbor_count(u) > 0 : black_neighbor_count(u) == 0)
      ++num_violations_;
  }
}

void ThreeStateMIS::step() {
  const std::int64_t t = round_ + 1;
  const Vertex n = graph_->num_vertices();
  scratch_next_.resize(colors_.size());
  // Phase 1: compute all next colors from the frozen state. Unlike the
  // 2-state process, most vertices change representation each round (stable
  // blacks keep re-randomizing between black1/black0), so we snapshot the
  // full next-color vector and patch counters by diffing.
  for (Vertex u = 0; u < n; ++u) {
    const Color3 c = color(u);
    Color3 next = c;
    if (active(u)) {
      next = coins_.fair_coin(t, u) ? Color3::kBlack1 : Color3::kBlack0;
    } else if (c == Color3::kBlack0) {
      next = Color3::kWhite;  // black0 with a black1 neighbor
    }
    scratch_next_[static_cast<std::size_t>(u)] = next;
  }
  // Phase 2: apply diffs.
  for (Vertex u = 0; u < n; ++u) {
    const Color3 prev = colors_[static_cast<std::size_t>(u)];
    const Color3 next = scratch_next_[static_cast<std::size_t>(u)];
    if (prev == next) continue;
    colors_[static_cast<std::size_t>(u)] = next;
    const int black_delta = static_cast<int>(is_black(next)) - static_cast<int>(is_black(prev));
    const int black1_delta = static_cast<int>(next == Color3::kBlack1) -
                             static_cast<int>(prev == Color3::kBlack1);
    num_black_ += black_delta;
    if (black_delta != 0 || black1_delta != 0) {
      for (Vertex v : graph_->neighbors(u)) {
        black_nbr_[static_cast<std::size_t>(v)] += black_delta;
        black1_nbr_[static_cast<std::size_t>(v)] += black1_delta;
      }
    }
  }
  ++round_;
  recount_violations();
}

Vertex ThreeStateMIS::num_active() const {
  Vertex count = 0;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u)
    if (active(u)) ++count;
  return count;
}

Vertex ThreeStateMIS::num_stable_black() const {
  Vertex count = 0;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u)
    if (stable_black(u)) ++count;
  return count;
}

Vertex ThreeStateMIS::num_unstable() const {
  std::vector<char> covered(colors_.size(), 0);
  for (Vertex u = 0; u < graph_->num_vertices(); ++u) {
    if (!stable_black(u)) continue;
    covered[static_cast<std::size_t>(u)] = 1;
    for (Vertex v : graph_->neighbors(u)) covered[static_cast<std::size_t>(v)] = 1;
  }
  Vertex unstable = 0;
  for (char c : covered)
    if (!c) ++unstable;
  return unstable;
}

std::vector<Vertex> ThreeStateMIS::black_set() const {
  std::vector<Vertex> out;
  for (Vertex u = 0; u < graph_->num_vertices(); ++u)
    if (black(u)) out.push_back(u);
  return out;
}

void ThreeStateMIS::force_color(Vertex u, Color3 c) {
  if (u < 0 || u >= graph_->num_vertices())
    throw std::out_of_range("force_color: vertex out of range");
  if (colors_[static_cast<std::size_t>(u)] == c) return;
  colors_[static_cast<std::size_t>(u)] = c;
  rebuild_counters();
}

}  // namespace ssmis
