#include "core/three_state.hpp"

#include <memory>

#include "core/init.hpp"
#include "core/process.hpp"
#include "harness/registry.hpp"

namespace ssmis {

std::vector<Vertex> ThreeStateMIS::black_set() const {
  return engine_.select([this](Vertex u) { return black(u); });
}

namespace {

const ProtocolRegistrar kThreeStateProtocol{
    "3state",
    "the paper's 3-state MIS process (Definition 5): stable blacks keep "
    "re-randomizing black1/black0; stone-age implementable, no collision "
    "detection (--proto-fast-forward=0 disables stable-periodic "
    "fast-forward)",
    {"fast-forward"},
    [](const Graph& g, const ProtocolParams& params, std::uint64_t seed) {
      const CoinOracle coins(seed);
      auto p = std::make_unique<MisFamilyAdapter<ThreeStateMIS>>(
          ThreeStateMIS(g, make_init3(g, params.init, coins), coins));
      p->impl().set_fast_forward(params.get_bool("fast-forward", true));
      return p;
    }};

}  // namespace

}  // namespace ssmis
