#include "core/three_state.hpp"

#include <memory>

#include "core/init.hpp"
#include "core/process.hpp"
#include "harness/registry.hpp"

namespace ssmis {

std::vector<Vertex> ThreeStateMIS::black_set() const {
  return engine_.select([this](Vertex u) { return black(u); });
}

namespace {

const ProtocolRegistrar kThreeStateProtocol{
    "3state",
    "the paper's 3-state MIS process (Definition 5): stable blacks keep "
    "re-randomizing black1/black0; stone-age implementable, no collision "
    "detection",
    {},
    [](const Graph& g, const ProtocolParams& params, std::uint64_t seed) {
      const CoinOracle coins(seed);
      return std::make_unique<MisFamilyAdapter<ThreeStateMIS>>(
          ThreeStateMIS(g, make_init3(g, params.init, coins), coins));
    }};

}  // namespace

}  // namespace ssmis
