#include "graph/ssg.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "graph/compressed.hpp"
#include "graph/io.hpp"
#include "support/cli.hpp"
#include "support/hash.hpp"
#include "support/narrow.hpp"
#include "support/thread_pool.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define SSMIS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace ssmis {
namespace io {

namespace {

// One header layout for both versions: v1 zeroes the last three fields
// (they were "reserved" before v2 claimed them), v2 uses them as
// flags / payload_bytes / superblock. v1 files are byte-identical to the
// pre-v2 writer's output.
struct SsgHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t endian_tag;
  std::int64_t n;
  std::int64_t adj_len;
  std::uint64_t checksum;
  std::uint64_t flags;
  std::uint64_t payload_bytes;
  std::uint64_t superblock;
};
static_assert(sizeof(SsgHeader) == kSsgHeaderBytes);

// v1 checksum covers the shape fields and both payload arrays, so a
// corrupted header count fails as loudly as a flipped adjacency byte.
std::uint64_t payload_checksum(std::int64_t n, std::int64_t adj_len,
                               const std::int64_t* offsets, const Vertex* adj) {
  std::uint64_t h = kFnv1aBasis;
  h = fnv1a(h, &n, sizeof(n));
  h = fnv1a(h, &adj_len, sizeof(adj_len));
  h = fnv1a(h, offsets, static_cast<std::size_t>(n + 1) * sizeof(std::int64_t));
  h = fnv1a(h, adj, static_cast<std::size_t>(adj_len) * sizeof(Vertex));
  return h;
}

// v2 checksum: shape + codec parameters + index + payload, same loudness
// contract as v1.
std::uint64_t compressed_checksum(const SsgHeader& h, const std::uint64_t* index,
                                  std::size_t index_entries,
                                  const std::uint8_t* payload) {
  std::uint64_t sum = kFnv1aBasis;
  sum = fnv1a(sum, &h.n, sizeof(h.n));
  sum = fnv1a(sum, &h.adj_len, sizeof(h.adj_len));
  sum = fnv1a(sum, &h.flags, sizeof(h.flags));
  sum = fnv1a(sum, &h.payload_bytes, sizeof(h.payload_bytes));
  sum = fnv1a(sum, &h.superblock, sizeof(h.superblock));
  sum = fnv1a(sum, index, index_entries * sizeof(std::uint64_t));
  sum = fnv1a(sum, payload, static_cast<std::size_t>(h.payload_bytes));
  return sum;
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("ssg: " + path + ": " + what);
}

// Version-independent header gate: magic and endianness first (them failing
// means "not our file at all"), then a version we implement.
void validate_magic_and_version(const std::string& path, const SsgHeader& h) {
  if (std::memcmp(h.magic, kSsgMagic, sizeof(kSsgMagic)) != 0)
    fail(path, "bad magic (not an .ssg file)");
  if (h.endian_tag != kSsgEndianTag)
    fail(path, "endianness mismatch (file written on an incompatible host)");
  if (h.version != kSsgVersion && h.version != kSsgVersionCompressed)
    fail(path, "unsupported format version " + std::to_string(h.version));
}

// v1 shape validation. `file_bytes` is the actual on-disk size.
void validate(const std::string& path, const SsgHeader& h, std::int64_t file_bytes) {
  if (h.n < 0 || h.adj_len < 0 || h.n > 0x7fffffffLL) fail(path, "corrupt header counts");
  // Derive the adjacency byte budget from the actual file size instead of
  // multiplying header counts (4 * adj_len on a hostile header overflows
  // int64 and would wrap past this check into out-of-bounds reads).
  const std::int64_t payload_bytes =
      file_bytes - static_cast<std::int64_t>(kSsgHeaderBytes) - 8 * (h.n + 1);
  if (payload_bytes < 0 || payload_bytes % 4 != 0 || payload_bytes / 4 != h.adj_len)
    fail(path, "truncated or oversized file (" + std::to_string(file_bytes) +
                   " bytes does not match n=" + std::to_string(h.n) +
                   ", adj_len=" + std::to_string(h.adj_len) + ")");
}

// v2 shape validation: codec parameters plus section sizes, again derived
// from the actual file size so hostile headers cannot wrap the math.
// Returns the index entry count.
std::size_t validate_compressed_header(const std::string& path, const SsgHeader& h,
                                       std::int64_t file_bytes) {
  if (h.n < 0 || h.adj_len < 0 || h.n > 0x7fffffffLL) fail(path, "corrupt header counts");
  if (h.flags != kSsgFlagCompressed)
    fail(path, "unsupported flags " + std::to_string(h.flags) +
                   " (v2 requires the compressed-payload flag alone)");
  if (h.superblock != static_cast<std::uint64_t>(cadj::kSuperblock))
    fail(path, "unsupported superblock " + std::to_string(h.superblock) +
                   " (this reader implements " + std::to_string(cadj::kSuperblock) + ")");
  const std::size_t entries = cadj::index_entries(h.n);
  const std::int64_t payload_bytes =
      file_bytes - static_cast<std::int64_t>(kSsgHeaderBytes) -
      static_cast<std::int64_t>(entries) * 8;
  if (payload_bytes < 0 ||
      static_cast<std::uint64_t>(payload_bytes) != h.payload_bytes)
    fail(path, "truncated or oversized file (" + std::to_string(file_bytes) +
                   " bytes does not match n=" + std::to_string(h.n) +
                   ", payload_bytes=" + std::to_string(h.payload_bytes) + ")");
  return entries;
}

// Offsets are what row iteration indexes with — corruption there means
// out-of-bounds reads on the first neighbors() call. This check is O(n)
// and runs on EVERY v1 load, trusted or not.
void validate_offsets(const std::string& path, std::int64_t n, std::int64_t adj_len,
                      const std::int64_t* offsets) {
  if (offsets[0] != 0) fail(path, "corrupt offsets (offsets[0] != 0)");
  for (std::int64_t u = 0; u < n; ++u)
    if (offsets[u] > offsets[u + 1]) fail(path, "corrupt offsets (not monotone)");
  if (offsets[n] != adj_len) fail(path, "corrupt offsets (offsets[n] != adj_len)");
  if (adj_len % 2 != 0)
    fail(path, "corrupt adjacency (odd endpoint count: a dangling half-edge)");
}

// Full structural audit of the v1 adjacency payload: out-of-range values
// mean out-of-bounds per-vertex state access in every process, unsorted or
// duplicated rows break the binary-search/dedup invariant Graph's contract
// promises (has_edge would silently miss present edges), and asymmetric
// rows desync the engine's incremental neighbor counters. All of it can
// arrive with a perfectly valid checksum from an external writer, so the
// default kFull load runs this O(m log maxdeg) scan; kTrusted skips it.
//
// Audits rows [u_begin, u_end) in ascending order, throwing (via fail) at
// the FIRST violation — the chunk decomposition below relies on that order.
void audit_adjacency_rows(const std::string& path, std::int64_t n,
                          const std::int64_t* offsets, const Vertex* adj,
                          std::int64_t u_begin, std::int64_t u_end) {
  for (std::int64_t u = u_begin; u < u_end; ++u) {
    for (std::int64_t i = offsets[u]; i < offsets[u + 1]; ++i) {
      const Vertex v = adj[i];
      if (v < 0 || v >= n)
        fail(path, "corrupt adjacency (vertex id out of range at index " +
                       std::to_string(i) + ")");
      if (v == u)
        fail(path, "corrupt adjacency (self-loop in row " + std::to_string(u) + ")");
      if (i > offsets[u] && adj[i - 1] >= v)
        fail(path, "corrupt adjacency (row " + std::to_string(u) +
                       " not sorted/deduplicated)");
      // Undirected symmetry: u must appear in row v (rows are sorted, so a
      // binary search keeps the whole scan O(m log maxdeg)).
      if (!std::binary_search(adj + offsets[static_cast<std::size_t>(v)],
                              adj + offsets[static_cast<std::size_t>(v) + 1],
                              narrow_cast<Vertex>(u)))
        fail(path, "corrupt adjacency (edge " + std::to_string(u) + "->" +
                       std::to_string(v) + " has no reverse entry)");
    }
  }
}

// The audit is read-only and row-independent, so large files fan it out
// over the shared pool. Accept/reject behavior is byte-identical to the
// sequential scan: each chunk scans its rows in ascending order and records
// only its FIRST violation, and the lowest-numbered failing chunk's message
// is the one rethrown — exactly the violation the sequential scan would hit
// first. Below the threshold (or on 1-core hosts) the scan stays inline;
// thread fan-out on a tiny file costs more than it saves.
void validate_adjacency(const std::string& path, std::int64_t n,
                        const std::int64_t* offsets, const Vertex* adj) {
  constexpr std::int64_t kParallelEndpoints = std::int64_t{1} << 20;
  const std::int64_t endpoints = n > 0 ? offsets[n] : 0;
  const int width = std::min(
      // ssmis-lint: allow(R2) audit fan-out width only: the first-error report is byte-identical at any width
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency())),
      ThreadPool::kMaxWorkers);
  if (endpoints < kParallelEndpoints || width <= 1 || n < 2) {
    audit_adjacency_rows(path, n, offsets, adj, 0, n);
    return;
  }
  // Endpoint-balanced chunk boundaries (equal shares of the adjacency
  // array, not of the vertex range): a handful of huge rows must not
  // serialize the whole scan behind one worker.
  const int chunks = narrow_cast<int>(
      std::min<std::int64_t>(n, static_cast<std::int64_t>(width) * 4));
  std::vector<std::int64_t> bounds(static_cast<std::size_t>(chunks) + 1, 0);
  for (int c = 1; c < chunks; ++c) {
    const std::int64_t target = endpoints / chunks * c;
    const std::int64_t* it = std::lower_bound(offsets, offsets + n + 1, target);
    bounds[static_cast<std::size_t>(c)] =
        std::max<std::int64_t>(it - offsets, bounds[static_cast<std::size_t>(c) - 1]);
  }
  bounds[static_cast<std::size_t>(chunks)] = n;
  std::vector<std::string> first_error(static_cast<std::size_t>(chunks));
  ThreadPool::shared().parallel_for(chunks, width, [&](int c) {
    try {
      audit_adjacency_rows(path, n, offsets, adj, bounds[static_cast<std::size_t>(c)],
                           bounds[static_cast<std::size_t>(c) + 1]);
    } catch (const std::runtime_error& e) {
      first_error[static_cast<std::size_t>(c)] = e.what();
    }
  });
  for (const std::string& e : first_error)
    if (!e.empty()) throw std::runtime_error(e);
}

// The codec validators throw without the file path; re-throw with it so a
// corrupted v2 file names itself like every other .ssg failure.
template <typename Fn>
void validate_codec(const std::string& path, Fn&& fn) {
  try {
    fn();
  } catch (const std::runtime_error& e) {
    fail(path, e.what());
  }
}

// Scratch-file + atomic-rename writer shared by both formats: the replace
// is atomic (no half-written .ssg visible at `path`), saving over the very
// file a Graph is mmap'd from cannot truncate the live mapping (the old
// inode survives until it is unmapped), and a failed write removes the
// scratch file instead of stranding it.
void write_atomically(const std::string& path,
                      const std::function<void(std::ofstream&)>& body) {
#ifdef SSMIS_HAVE_MMAP
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
#else
  // No pid available: a random suffix keeps concurrent saves to the same
  // target from clobbering one shared scratch file.
  const std::string tmp =
      // ssmis-lint: allow(R2) scratch-file name salt on non-unix hosts; never reaches a trajectory
      path + ".tmp." + std::to_string(std::random_device{}());
#endif
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) fail(tmp, "cannot open for writing");
    body(out);
    // close() flushes; checking only before the flush would let an ENOSPC
    // on the final buffer slip a truncated file past the rename below.
    out.close();
    if (out.fail()) {
      std::error_code cleanup_ec;
      std::filesystem::remove(tmp, cleanup_ec);  // don't strand a partial file
      fail(tmp, "write failed");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    fail(path, "rename from scratch file failed");
  }
}

#ifdef SSMIS_HAVE_MMAP
struct MmapRegion {
  void* base = nullptr;
  std::size_t bytes = 0;
  ~MmapRegion() {
    if (base != nullptr) ::munmap(base, bytes);
  }
};
#endif

}  // namespace

std::int64_t ssg_file_bytes(const Graph& g) {
  if (g.is_compressed()) {
    return static_cast<std::int64_t>(kSsgHeaderBytes) +
           static_cast<std::int64_t>(g.compressed_index().size()) * 8 +
           static_cast<std::int64_t>(g.compressed_payload().size());
  }
  // ssmis-lint: allow(R1) plain-storage branch: the compressed case returned above
  const auto adjacency_words = static_cast<std::int64_t>(g.adjacency().size());
  return static_cast<std::int64_t>(kSsgHeaderBytes) +
         8 * (static_cast<std::int64_t>(g.num_vertices()) + 1) +
         4 * adjacency_words;
}

void save_ssg(const std::string& path, const Graph& g) {
  SsgHeader h{};
  std::memcpy(h.magic, kSsgMagic, sizeof(kSsgMagic));
  h.endian_tag = kSsgEndianTag;
  h.n = g.num_vertices();
  if (g.is_compressed()) {
    const auto index = g.compressed_index();
    const auto payload = g.compressed_payload();
    h.version = kSsgVersionCompressed;
    h.adj_len = 2 * g.num_edges();
    h.flags = kSsgFlagCompressed;
    h.payload_bytes = payload.size();
    h.superblock = static_cast<std::uint64_t>(cadj::kSuperblock);
    h.checksum = compressed_checksum(h, index.data(), index.size(), payload.data());
    write_atomically(path, [&](std::ofstream& out) {
      out.write(reinterpret_cast<const char*>(&h), sizeof(h));
      out.write(reinterpret_cast<const char*>(index.data()),
                static_cast<std::streamsize>(index.size() * sizeof(std::uint64_t)));
      out.write(reinterpret_cast<const char*>(payload.data()),
                static_cast<std::streamsize>(payload.size()));
    });
    return;
  }
  h.version = kSsgVersion;
  // ssmis-lint: allow(R1) plain-storage branch: the compressed case returned above
  const auto offsets = g.offsets();
  // ssmis-lint: allow(R1) plain-storage branch: the compressed case returned above
  const auto adjacency = g.adjacency();
  h.adj_len = static_cast<std::int64_t>(adjacency.size());
  h.checksum = payload_checksum(h.n, h.adj_len, offsets.data(), adjacency.data());
  write_atomically(path, [&](std::ofstream& out) {
    out.write(reinterpret_cast<const char*>(&h), sizeof(h));
    out.write(reinterpret_cast<const char*>(offsets.data()),
              static_cast<std::streamsize>(offsets.size() * sizeof(std::int64_t)));
    out.write(reinterpret_cast<const char*>(adjacency.data()),
              static_cast<std::streamsize>(adjacency.size() * sizeof(Vertex)));
  });
}

Graph load_ssg(const std::string& path, SsgValidation validation) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) fail(path, "cannot open");
  const std::int64_t file_bytes = static_cast<std::int64_t>(in.tellg());
  in.seekg(0);
  SsgHeader h{};
  if (file_bytes < static_cast<std::int64_t>(sizeof(h))) fail(path, "truncated header");
  in.read(reinterpret_cast<char*>(&h), sizeof(h));
  validate_magic_and_version(path, h);

  if (h.version == kSsgVersionCompressed) {
    const std::size_t entries = validate_compressed_header(path, h, file_bytes);
    std::vector<std::uint64_t> index(entries);
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(h.payload_bytes));
    in.read(reinterpret_cast<char*>(index.data()),
            static_cast<std::streamsize>(index.size() * sizeof(std::uint64_t)));
    in.read(reinterpret_cast<char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
    if (!in) fail(path, "read failed");
    validate_codec(path, [&] {
      validate_compressed_index(h.n, index.data(), payload.size());
    });
    if (validation == SsgValidation::kFull) {
      if (compressed_checksum(h, index.data(), index.size(), payload.data()) !=
          h.checksum)
        fail(path, "checksum mismatch (corrupted file)");
      validate_codec(path, [&] {
        validate_compressed_payload(h.n, h.adj_len, index.data(), payload.data(),
                                    payload.size());
      });
    }
    return Graph::from_compressed(narrow_cast<Vertex>(h.n), h.adj_len,
                                  std::move(index), std::move(payload));
  }

  validate(path, h, file_bytes);
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(h.n) + 1);
  std::vector<Vertex> adj(static_cast<std::size_t>(h.adj_len));
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(std::int64_t)));
  in.read(reinterpret_cast<char*>(adj.data()),
          static_cast<std::streamsize>(adj.size() * sizeof(Vertex)));
  if (!in) fail(path, "read failed");
  validate_offsets(path, h.n, h.adj_len, offsets.data());
  if (validation == SsgValidation::kFull) {
    if (payload_checksum(h.n, h.adj_len, offsets.data(), adj.data()) != h.checksum)
      fail(path, "checksum mismatch (corrupted file)");
    validate_adjacency(path, h.n, offsets.data(), adj.data());
  }
  return Graph::from_owned_csr(narrow_cast<Vertex>(h.n), std::move(offsets),
                               std::move(adj));
}

Graph mmap_ssg(const std::string& path, SsgValidation validation) {
#ifdef SSMIS_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail(path, "cannot open");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail(path, "fstat failed");
  }
  const std::int64_t file_bytes = static_cast<std::int64_t>(st.st_size);
  if (file_bytes < static_cast<std::int64_t>(sizeof(SsgHeader))) {
    ::close(fd);
    fail(path, "truncated header");
  }
  void* base = ::mmap(nullptr, static_cast<std::size_t>(file_bytes), PROT_READ,
                      MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (base == MAP_FAILED) fail(path, "mmap failed");
  auto region = std::make_shared<MmapRegion>();
  region->base = base;
  region->bytes = static_cast<std::size_t>(file_bytes);

  SsgHeader h{};
  std::memcpy(&h, base, sizeof(h));
  validate_magic_and_version(path, h);
  const auto* bytes = static_cast<const unsigned char*>(base);

  if (h.version == kSsgVersionCompressed) {
    const std::size_t entries = validate_compressed_header(path, h, file_bytes);
    const auto* index =
        reinterpret_cast<const std::uint64_t*>(bytes + kSsgHeaderBytes);
    const auto* payload = bytes + kSsgHeaderBytes + entries * 8;
    validate_codec(path, [&] {
      validate_compressed_index(h.n, index,
                                static_cast<std::size_t>(h.payload_bytes));
    });
    if (validation == SsgValidation::kFull) {
      if (compressed_checksum(h, index, entries, payload) != h.checksum)
        fail(path, "checksum mismatch (corrupted file)");
      validate_codec(path, [&] {
        validate_compressed_payload(h.n, h.adj_len, index, payload,
                                    static_cast<std::size_t>(h.payload_bytes));
      });
    }
    return Graph::from_external_compressed(
        narrow_cast<Vertex>(h.n), h.adj_len, index, payload,
        static_cast<std::size_t>(h.payload_bytes), std::move(region));
  }

  validate(path, h, file_bytes);
  const auto* offsets =
      reinterpret_cast<const std::int64_t*>(bytes + kSsgHeaderBytes);
  const auto* adj = reinterpret_cast<const Vertex*>(
      bytes + kSsgHeaderBytes + 8 * (static_cast<std::size_t>(h.n) + 1));
  validate_offsets(path, h.n, h.adj_len, offsets);
  if (validation == SsgValidation::kFull) {
    if (payload_checksum(h.n, h.adj_len, offsets, adj) != h.checksum)
      fail(path, "checksum mismatch (corrupted file)");
    validate_adjacency(path, h.n, offsets, adj);
  }
  return Graph::from_external_csr(narrow_cast<Vertex>(h.n), offsets, adj,
                                  static_cast<std::size_t>(h.adj_len),
                                  std::move(region));
#else
  return load_ssg(path, validation);
#endif
}

Graph load_graph_file(const std::string& path, bool prefer_mmap,
                      SsgValidation validation) {
  const bool is_ssg =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".ssg") == 0;
  if (is_ssg)
    return prefer_mmap ? mmap_ssg(path, validation) : load_ssg(path, validation);
  std::ifstream in(path);
  if (!in) fail(path, "cannot open");
  return read_edge_list(in);
}

Graph load_graph_file_from_args(const CliArgs& args) {
  return load_graph_file(args.get_string("graph-file", ""),
                         args.get_bool("graph-mmap", true),
                         args.get_bool("graph-trusted", false)
                             ? SsgValidation::kTrusted
                             : SsgValidation::kFull);
}

}  // namespace io
}  // namespace ssmis
