// `.ssg` — the versioned binary on-disk graph format.
//
// Generating a 10^7-vertex G(n,p) takes longer than simulating on it; the
// `.ssg` file lets a graph be generated once and reused across every
// experiment binary (the shared `--graph-file` flag). Two payload layouts
// exist, selected by the header's version field; all fields little-endian,
// 8-byte-aligned sections.
//
// Version 1 — plain CSR (written for plain-storage Graphs):
//
//   offset  size            field
//   ------  --------------  ---------------------------------------------
//        0  8               magic "SSGRAPH1"
//        8  4 (u32)         format version (1)
//       12  4 (u32)         endianness tag 0x01020304 as written
//       16  8 (i64)         n  (vertex count)
//       24  8 (i64)         adj_len (= 2m directed endpoints)
//       32  8 (u64)         FNV-1a checksum of the payload (see ssg.cpp)
//       40  24              reserved, zero
//       64  8*(n+1)         offsets[] (i64)
//   64+8(n+1)  4*adj_len    adj[] (i32)
//
// Version 2 — compressed adjacency (written for compressed-storage Graphs;
// codec in src/graph/varint.hpp):
//
//   offset  size            field
//   ------  --------------  ---------------------------------------------
//        0  8               magic "SSGRAPH1"
//        8  4 (u32)         format version (2)
//       12  4 (u32)         endianness tag 0x01020304 as written
//       16  8 (i64)         n
//       24  8 (i64)         adj_len (= 2m, for num_edges without a decode)
//       32  8 (u64)         FNV-1a checksum of the payload (see ssg.cpp)
//       40  8 (u64)         flags: bit 0 = varint/delta-compressed payload
//                           (must be exactly 0x1 in v2)
//       48  8 (u64)         payload_bytes (size of the row payload section)
//       56  8 (u64)         superblock (rows per index sample; must equal
//                           cadj::kSuperblock — a codec-parameter change
//                           bumps the version or rejects here)
//       64  8*E             index[] (u64), E = ceil(n/superblock) + 1
//    64+8E  payload_bytes   row payload (varint/delta rows, byte-packed)
//
// Versioning/endianness contract: readers reject any magic or endianness-
// tag mismatch and any version they do not implement with
// std::runtime_error rather than guessing — v1 files keep loading
// byte-identically under a v2-capable reader, and a big-endian host reading
// a little-endian file fails loudly on the tag. Truncated files, checksum
// mismatches, and codec structure violations also throw; no load path ever
// reads out of the file's bounds, hostile headers included.
//
// `load_ssg` copies into heap vectors; `mmap_ssg` maps the file read-only
// and wraps the in-file arrays directly (zero allocation beyond the page
// tables — the OS can evict and refault pages under memory pressure). The
// v2 + mmap combination is the 10^8-vertex regime: adjacency RSS is capped
// by the compressed payload and reclaimable under pressure.
#pragma once

#include <cstddef>
#include <string>

#include "graph/graph.hpp"

namespace ssmis {

class CliArgs;

namespace io {

inline constexpr char kSsgMagic[8] = {'S', 'S', 'G', 'R', 'A', 'P', 'H', '1'};
inline constexpr std::uint32_t kSsgVersion = 1;            // plain CSR payload
inline constexpr std::uint32_t kSsgVersionCompressed = 2;  // varint/delta payload
inline constexpr std::uint32_t kSsgEndianTag = 0x01020304u;
inline constexpr std::size_t kSsgHeaderBytes = 64;
inline constexpr std::uint64_t kSsgFlagCompressed = 1;  // v2 flags, bit 0

// How much of the payload a load re-checks. Header fields and offsets
// (monotone, matching adj_len — what row iteration indexes with) are
// validated in EVERY mode; the modes grade the O(m)-and-up work:
//   kFull    checksum pass + adjacency structure (range, sorted/dedup rows,
//            no self-loops, undirected symmetry). The default: an external
//            or corrupted file throws, never loads wrong.
//   kTrusted header + offsets only. For files this process (or pipeline)
//            wrote itself: reuse costs page faults, not a re-validation of
//            every edge — the point of generating once. A crafted file can
//            defeat this mode; that is what makes it "trusted".
enum class SsgValidation { kFull, kTrusted };

// Writes the format matching the graph's storage: v1 (plain CSR) for plain
// graphs, v2 (compressed payload) for compressed ones. Goes through a
// scratch file + atomic rename either way. Throws std::runtime_error on
// I/O failure.
void save_ssg(const std::string& path, const Graph& g);

// Reads the whole file into owned heap storage (plain CSR for v1 files,
// compressed for v2 — the returned Graph keeps the on-disk representation).
// Throws std::runtime_error on malformed header, unsupported version,
// truncation, or (in kFull mode) checksum mismatch / structural corruption.
[[nodiscard]] Graph load_ssg(const std::string& path,
               SsgValidation validation = SsgValidation::kFull);

// Memory-maps the file read-only and returns a zero-copy Graph view; the
// mapping lives as long as any copy of the Graph. Falls back to load_ssg
// on platforms without mmap.
[[nodiscard]] Graph mmap_ssg(const std::string& path,
               SsgValidation validation = SsgValidation::kFull);

// Dispatches on extension: `.ssg` -> binary (mmap or owned read), anything
// else -> the whitespace edge-list reader. The one-stop entry point behind
// every binary's --graph-file flag (`--graph-trusted` maps to kTrusted).
[[nodiscard]] Graph load_graph_file(const std::string& path, bool prefer_mmap = true,
                      SsgValidation validation = SsgValidation::kFull);

// Reads the shared --graph-file / --graph-mmap / --graph-trusted flags and
// dispatches to load_graph_file — the single flag-to-semantics mapping used
// by every exp binary and examples/simulate.
[[nodiscard]] Graph load_graph_file_from_args(const CliArgs& args);

// Bytes `g` occupies on disk and (mapped) in memory: header + 8(n+1) + 4*2m
// for plain storage, header + index + payload for compressed storage.
[[nodiscard]] std::int64_t ssg_file_bytes(const Graph& g);

}  // namespace io
}  // namespace ssmis
