// `.ssg` — the versioned binary CSR on-disk graph format.
//
// Generating a 10^7-vertex G(n,p) takes longer than simulating on it; the
// `.ssg` file lets a graph be generated once and reused across every
// experiment binary (the shared `--graph-file` flag). Layout, all fields
// little-endian, 8-byte-aligned sections:
//
//   offset  size            field
//   ------  --------------  ---------------------------------------------
//        0  8               magic "SSGRAPH1"
//        8  4 (u32)         format version (currently 1)
//       12  4 (u32)         endianness tag 0x01020304 as written
//       16  8 (i64)         n  (vertex count)
//       24  8 (i64)         adj_len (= 2m directed endpoints)
//       32  8 (u64)         FNV-1a checksum of the payload (see ssg.cpp)
//       40  24              reserved, zero
//       64  8*(n+1)         offsets[] (i64)
//   64+8(n+1)  4*adj_len    adj[] (i32)
//
// Versioning/endianness contract: readers reject any magic, version, or
// endianness-tag mismatch with std::runtime_error rather than guessing —
// a v2 writer must bump the version field, and a big-endian host reading a
// little-endian file fails loudly on the tag. Truncated files and checksum
// mismatches also throw.
//
// `load_ssg` copies into heap vectors; `mmap_ssg` maps the file read-only
// and wraps the in-file arrays directly (zero allocation beyond the page
// tables — the OS can evict and refault pages under memory pressure), which
// is the intended path for the 10^7-vertex regime.
#pragma once

#include <cstddef>
#include <string>

#include "graph/graph.hpp"

namespace ssmis {

class CliArgs;

namespace io {

inline constexpr char kSsgMagic[8] = {'S', 'S', 'G', 'R', 'A', 'P', 'H', '1'};
inline constexpr std::uint32_t kSsgVersion = 1;
inline constexpr std::uint32_t kSsgEndianTag = 0x01020304u;
inline constexpr std::size_t kSsgHeaderBytes = 64;

// How much of the payload a load re-checks. Header fields and offsets
// (monotone, matching adj_len — what row iteration indexes with) are
// validated in EVERY mode; the modes grade the O(m)-and-up work:
//   kFull    checksum pass + adjacency structure (range, sorted/dedup rows,
//            no self-loops, undirected symmetry). The default: an external
//            or corrupted file throws, never loads wrong.
//   kTrusted header + offsets only. For files this process (or pipeline)
//            wrote itself: reuse costs page faults, not a re-validation of
//            every edge — the point of generating once. A crafted file can
//            defeat this mode; that is what makes it "trusted".
enum class SsgValidation { kFull, kTrusted };

// Throws std::runtime_error on I/O failure.
void save_ssg(const std::string& path, const Graph& g);

// Reads the whole file into owned heap storage. Throws std::runtime_error
// on malformed header, truncation, or (in kFull mode) checksum mismatch.
Graph load_ssg(const std::string& path,
               SsgValidation validation = SsgValidation::kFull);

// Memory-maps the file read-only and returns a zero-copy Graph view; the
// mapping lives as long as any copy of the Graph. Falls back to load_ssg
// on platforms without mmap.
Graph mmap_ssg(const std::string& path,
               SsgValidation validation = SsgValidation::kFull);

// Dispatches on extension: `.ssg` -> binary (mmap or owned read), anything
// else -> the whitespace edge-list reader. The one-stop entry point behind
// every binary's --graph-file flag (`--graph-trusted` maps to kTrusted).
Graph load_graph_file(const std::string& path, bool prefer_mmap = true,
                      SsgValidation validation = SsgValidation::kFull);

// Reads the shared --graph-file / --graph-mmap / --graph-trusted flags and
// dispatches to load_graph_file — the single flag-to-semantics mapping used
// by every exp binary and examples/simulate.
Graph load_graph_file_from_args(const CliArgs& args);

// Bytes the CSR payload of `g` occupies on disk and (mapped) in memory:
// header + 8(n+1) + 4*2m.
std::int64_t ssg_file_bytes(const Graph& g);

}  // namespace io
}  // namespace ssmis
