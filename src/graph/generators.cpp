#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "graph/builder.hpp"
#include "graph/csr_builder.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"
#include "support/narrow.hpp"

namespace ssmis {
namespace gen {

namespace {

void require(bool cond, const char* message) {
  if (!cond) throw std::invalid_argument(message);
}

// Geometric(p) skip length for G(n,p) skip-sampling, hardened against the
// floating-point edge cases: r at the extremes of next_double and denormal-
// small p can push log1p(-r)/log1p(-p) to -0.0, inf, or (0/-0) NaN; the
// clamps map every non-finite or negative value to a safe skip instead of
// feeding it to the int64 cast (UB on NaN/overflow). The 1e18 cap matches
// the pre-hardening code so in-range seeds keep byte-identical streams.
std::int64_t geometric_skip(double r, double log_1mp) {
  const double skip_f = std::floor(std::log1p(-r) / log_1mp);
  if (!(skip_f > 0.0)) return 0;  // NaN, -0.0, and negatives land here
  if (skip_f >= 1e18) return static_cast<std::int64_t>(1e18);
  return static_cast<std::int64_t>(skip_f);
}

// Emits G(n,p) via skip-sampling over the lexicographic enumeration of pairs
// (u < v): the gap between successive present edges is geometric(p).
// Deterministic in (n, p, seed), so the stream replays for the two-pass CSR
// build. Requires 0 < p < 1.
template <typename Emit>
void emit_gnp(Vertex n, double p, std::uint64_t seed, Emit&& emit) {
  Xoshiro256 rng(seed);
  const double log_1mp = std::log1p(-p);
  std::int64_t v = 1;
  std::int64_t u = -1;
  while (v < n) {
    const std::int64_t skip = geometric_skip(rng.next_double(), log_1mp);
    u += 1 + skip;
    while (u >= v && v < n) {
      u -= v;
      ++v;
    }
    if (v < n) emit(static_cast<Vertex>(u), static_cast<Vertex>(v));
  }
}

// Packs a normalized pair (u < v) into one hash key.
std::uint64_t edge_key(Vertex n, Vertex u, Vertex v) {
  return static_cast<std::uint64_t>(u) * static_cast<std::uint64_t>(n) +
         static_cast<std::uint64_t>(v);
}

// Draws distinct uniform edges into `chosen` until it holds `want` of them,
// emitting each accepted edge. The draw/reject sequence (self-loops, then
// duplicates) is identical to the historical std::set sampler, so sparse
// G(n,m) streams are unchanged for fixed seeds — only the heap-heavy
// ordered-set bookkeeping is gone.
template <typename Emit>
void sample_distinct_edges(Vertex n, std::int64_t want, std::uint64_t seed,
                           std::unordered_set<std::uint64_t>& chosen,
                           Emit&& emit) {
  Xoshiro256 rng(seed);
  chosen.clear();
  chosen.reserve(static_cast<std::size_t>(want) * 2);
  while (static_cast<std::int64_t>(chosen.size()) < want) {
    Vertex u = narrow_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
    Vertex v = narrow_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (chosen.insert(edge_key(n, u, v)).second) emit(u, v);
  }
}

// Emits a uniform random labeled tree (Pruefer decoding) on n >= 1 vertices.
// Deterministic in (n, seed): replayable for the two-pass CSR build.
template <typename Emit>
void emit_random_tree(Vertex n, std::uint64_t seed, Emit&& emit) {
  if (n <= 1) return;
  if (n == 2) {
    emit(0, 1);
    return;
  }
  Xoshiro256 rng(seed);
  std::vector<Vertex> pruefer(static_cast<std::size_t>(n) - 2);
  for (auto& x : pruefer)
    x = narrow_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
  std::vector<Vertex> remaining_degree(static_cast<std::size_t>(n), 1);
  for (Vertex x : pruefer) ++remaining_degree[static_cast<std::size_t>(x)];

  std::set<Vertex> leaves;
  for (Vertex u = 0; u < n; ++u)
    if (remaining_degree[static_cast<std::size_t>(u)] == 1) leaves.insert(u);
  for (Vertex x : pruefer) {
    const Vertex leaf = *leaves.begin();
    leaves.erase(leaves.begin());
    emit(leaf, x);
    if (--remaining_degree[static_cast<std::size_t>(x)] == 1) leaves.insert(x);
  }
  const Vertex a = *leaves.begin();
  const Vertex c = *std::next(leaves.begin());
  emit(a, c);
}

}  // namespace

Graph complete(Vertex n) {
  require(n >= 0, "complete: n must be >= 0");
  return CsrBuilder::from_source(n, [n](auto&& emit) {
    for (Vertex u = 0; u < n; ++u)
      for (Vertex v = u + 1; v < n; ++v) emit(u, v);
  });
}

Graph path(Vertex n) {
  require(n >= 0, "path: n must be >= 0");
  return CsrBuilder::from_source(n, [n](auto&& emit) {
    for (Vertex u = 0; u + 1 < n; ++u) emit(u, u + 1);
  });
}

Graph cycle(Vertex n) {
  require(n >= 0, "cycle: n must be >= 0");
  return CsrBuilder::from_source(n, [n](auto&& emit) {
    for (Vertex u = 0; u + 1 < n; ++u) emit(u, u + 1);
    if (n >= 3) emit(n - 1, 0);
  });
}

Graph star(Vertex n) {
  require(n >= 0, "star: n must be >= 0");
  return CsrBuilder::from_source(n, [n](auto&& emit) {
    for (Vertex u = 1; u < n; ++u) emit(0, u);
  });
}

Graph complete_bipartite(Vertex a, Vertex b_size) {
  require(a >= 0 && b_size >= 0, "complete_bipartite: sizes must be >= 0");
  return CsrBuilder::from_source(a + b_size, [a, b_size](auto&& emit) {
    for (Vertex u = 0; u < a; ++u)
      for (Vertex v = a; v < a + b_size; ++v) emit(u, v);
  });
}

Graph disjoint_cliques(Vertex count, Vertex size) {
  require(count >= 0 && size >= 0, "disjoint_cliques: sizes must be >= 0");
  return CsrBuilder::from_source(count * size, [count, size](auto&& emit) {
    for (Vertex c = 0; c < count; ++c) {
      const Vertex base = c * size;
      for (Vertex i = 0; i < size; ++i)
        for (Vertex j = i + 1; j < size; ++j) emit(base + i, base + j);
    }
  });
}

Graph grid(Vertex rows, Vertex cols) {
  require(rows >= 0 && cols >= 0, "grid: dimensions must be >= 0");
  return CsrBuilder::from_source(rows * cols, [rows, cols](auto&& emit) {
    auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
    for (Vertex r = 0; r < rows; ++r) {
      for (Vertex c = 0; c < cols; ++c) {
        if (c + 1 < cols) emit(id(r, c), id(r, c + 1));
        if (r + 1 < rows) emit(id(r, c), id(r + 1, c));
      }
    }
  });
}

Graph torus(Vertex rows, Vertex cols) {
  require(rows >= 0 && cols >= 0, "torus: dimensions must be >= 0");
  return CsrBuilder::from_source(rows * cols, [rows, cols](auto&& emit) {
    auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
    for (Vertex r = 0; r < rows; ++r) {
      for (Vertex c = 0; c < cols; ++c) {
        emit(id(r, c), id(r, (c + 1) % cols));
        emit(id(r, c), id((r + 1) % rows, c));
      }
    }
  });
}

Graph hypercube(int dim) {
  require(dim >= 0 && dim < 25, "hypercube: dim must be in [0, 25)");
  const Vertex n = static_cast<Vertex>(1) << dim;
  return CsrBuilder::from_source(n, [n, dim](auto&& emit) {
    for (Vertex u = 0; u < n; ++u) {
      for (int bit = 0; bit < dim; ++bit) {
        const Vertex v = u ^ (static_cast<Vertex>(1) << bit);
        if (u < v) emit(u, v);
      }
    }
  });
}

Graph binary_tree(Vertex n) {
  require(n >= 0, "binary_tree: n must be >= 0");
  return CsrBuilder::from_source(n, [n](auto&& emit) {
    for (Vertex u = 1; u < n; ++u) emit(u, (u - 1) / 2);
  });
}

Graph caterpillar(Vertex spine, Vertex legs) {
  require(spine >= 0 && legs >= 0, "caterpillar: sizes must be >= 0");
  const Vertex n = spine + spine * legs;
  return CsrBuilder::from_source(n, [spine, legs](auto&& emit) {
    for (Vertex s = 0; s + 1 < spine; ++s) emit(s, s + 1);
    for (Vertex s = 0; s < spine; ++s)
      for (Vertex l = 0; l < legs; ++l) emit(s, spine + s * legs + l);
  });
}

Graph barbell(Vertex k) {
  require(k >= 1, "barbell: clique size must be >= 1");
  return CsrBuilder::from_source(2 * k, [k](auto&& emit) {
    for (Vertex i = 0; i < k; ++i) {
      for (Vertex j = i + 1; j < k; ++j) {
        emit(i, j);
        emit(k + i, k + j);
      }
    }
    emit(k - 1, k);  // the bridge
  });
}

Graph gnp(Vertex n, double p, std::uint64_t seed) {
  require(n >= 0, "gnp: n must be >= 0");
  require(p >= 0.0 && p <= 1.0, "gnp: p must be in [0,1]");
  if (p >= 1.0) return complete(n);
  if (p <= 0.0) return CsrBuilder::from_source(n, [](auto&&) {});
  return CsrBuilder::from_source(
      n, [n, p, seed](auto&& emit) { emit_gnp(n, p, seed, emit); });
}

Graph gnp_compressed(Vertex n, double p, std::uint64_t seed,
                     std::int64_t chunk_endpoints) {
  require(n >= 0, "gnp: n must be >= 0");
  require(p >= 0.0 && p <= 1.0, "gnp: p must be in [0,1]");
  if (chunk_endpoints <= 0) chunk_endpoints = CsrBuilder::kDefaultChunkEndpoints;
  if (p >= 1.0) return Graph::compress(complete(n));
  if (p <= 0.0)
    return CsrBuilder::from_source_compressed(n, [](auto&&) {}, chunk_endpoints);
  return CsrBuilder::from_source_compressed(
      n, [n, p, seed](auto&& emit) { emit_gnp(n, p, seed, emit); },
      chunk_endpoints);
}

Graph gnm(Vertex n, std::int64_t m, std::uint64_t seed) {
  require(n >= 0, "gnm: n must be >= 0");
  const std::int64_t max_m = static_cast<std::int64_t>(n) * (n - 1) / 2;
  require(m >= 0 && m <= max_m, "gnm: m out of range");
  std::unordered_set<std::uint64_t> scratch;
  if (2 * m <= max_m) {
    // Sparse side: hash-set rejection sampling, O(m) expected.
    return CsrBuilder::from_source(n, [&](auto&& emit) {
      sample_distinct_edges(n, m, seed, scratch, emit);
    });
  }
  // Dense side: rejection sampling degenerates (coupon collector) as
  // m -> max_m, so sample the *complement* — max_m - m <= max_m/2 distinct
  // non-edges — and emit every pair not in it. O(n^2) = O(max_m) <= O(2m)
  // total work, independent of how close m is to max_m.
  return CsrBuilder::from_source(n, [&](auto&& emit) {
    sample_distinct_edges(n, max_m - m, seed, scratch, [](Vertex, Vertex) {});
    for (Vertex u = 0; u < n; ++u)
      for (Vertex v = u + 1; v < n; ++v)
        if (scratch.count(edge_key(n, u, v)) == 0) emit(u, v);
  });
}

Graph random_tree(Vertex n, std::uint64_t seed) {
  require(n >= 0, "random_tree: n must be >= 0");
  return CsrBuilder::from_source(
      n, [n, seed](auto&& emit) { emit_random_tree(n, seed, emit); });
}

Graph random_recursive_tree(Vertex n, std::uint64_t seed) {
  require(n >= 0, "random_recursive_tree: n must be >= 0");
  return CsrBuilder::from_source(n, [n, seed](auto&& emit) {
    Xoshiro256 rng(seed);
    for (Vertex u = 1; u < n; ++u) {
      const Vertex parent =
          narrow_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(u)));
      emit(u, parent);
    }
  });
}

Graph forest_union(Vertex n, int k, std::uint64_t seed) {
  require(k >= 1, "forest_union: k must be >= 1");
  require(n >= 0, "forest_union: n must be >= 0");
  // Per-tree seeds come from the SplitMix64 stream of the *avalanched* base
  // seed. The historical `seed + i * golden` scheme made forest_union(n,k,s)
  // and forest_union(n,k,s+golden) share k-1 identical trees — and seeding
  // the stream with the raw base seed would reproduce the same shift overlap
  // (SplitMix64 itself advances by the same golden increment), so the base
  // seed is mixed once before it enters the stream.
  return CsrBuilder::from_source(n, [n, k, seed](auto&& emit) {
    SplitMix64 seeder(splitmix64_mix(seed));
    for (int i = 0; i < k; ++i) emit_random_tree(n, seeder.next(), emit);
  });
}

Graph random_regular(Vertex n, int d, std::uint64_t seed) {
  require(n >= 0 && d >= 0, "random_regular: n, d must be >= 0");
  require(static_cast<std::int64_t>(n) * d % 2 == 0, "random_regular: n*d must be even");
  require(d < n || n == 0, "random_regular: need d < n");
  // Configuration model: pair up n*d stubs uniformly; drop loops/multi-edges
  // (the CSR build deduplicates the multi-edges).
  return CsrBuilder::from_source(n, [n, d, seed](auto&& emit) {
    Xoshiro256 rng(seed);
    std::vector<Vertex> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
    for (Vertex u = 0; u < n; ++u)
      for (int i = 0; i < d; ++i) stubs.push_back(u);
    // Fisher-Yates shuffle, then pair consecutive stubs.
    for (std::size_t i = stubs.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
      std::swap(stubs[i - 1], stubs[j]);
    }
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2)
      emit(stubs[i], stubs[i + 1]);  // builder drops the loops, dedups the rest
  });
}

Graph random_geometric(Vertex n, double radius, std::uint64_t seed) {
  require(n >= 0, "random_geometric: n must be >= 0");
  require(radius >= 0.0, "random_geometric: radius must be >= 0");
  Xoshiro256 rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  std::vector<double> y(static_cast<std::size_t>(n));
  for (Vertex u = 0; u < n; ++u) {
    x[static_cast<std::size_t>(u)] = rng.next_double();
    y[static_cast<std::size_t>(u)] = rng.next_double();
  }
  // Bucket grid with cell side >= radius: candidates are the 3x3 neighborhood.
  // Resolution is capped at sqrt(n) cells per side — finer grids cost memory
  // without pruning more pairs (and radius -> 0 would otherwise explode).
  const int max_cells =
      std::max(1, static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n)))));
  const int cells = std::clamp(
      static_cast<int>(std::floor(1.0 / std::max(radius, 1e-9))), 1, max_cells);
  std::vector<std::vector<Vertex>> buckets(static_cast<std::size_t>(cells) * cells);
  auto bucket_of = [&](Vertex u) {
    int cx = std::min(cells - 1, static_cast<int>(x[static_cast<std::size_t>(u)] * cells));
    int cy = std::min(cells - 1, static_cast<int>(y[static_cast<std::size_t>(u)] * cells));
    return static_cast<std::size_t>(cx) * static_cast<std::size_t>(cells) +
           static_cast<std::size_t>(cy);
  };
  for (Vertex u = 0; u < n; ++u) buckets[bucket_of(u)].push_back(u);

  const double r2 = radius * radius;
  GraphBuilder b(n);
  for (Vertex u = 0; u < n; ++u) {
    const std::size_t bu = bucket_of(u);
    const int cx = narrow_cast<int>(bu / static_cast<std::size_t>(cells));
    const int cy = narrow_cast<int>(bu % static_cast<std::size_t>(cells));
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        const int nx = cx + dx;
        const int ny = cy + dy;
        if (nx < 0 || ny < 0 || nx >= cells || ny >= cells) continue;
        for (Vertex v : buckets[static_cast<std::size_t>(nx) * cells +
                                static_cast<std::size_t>(ny)]) {
          if (v <= u) continue;
          const double ddx = x[static_cast<std::size_t>(u)] - x[static_cast<std::size_t>(v)];
          const double ddy = y[static_cast<std::size_t>(u)] - y[static_cast<std::size_t>(v)];
          if (ddx * ddx + ddy * ddy <= r2) b.add_edge(u, v);
        }
      }
    }
  }
  return std::move(b).build();
}

Graph small_world(Vertex n, int k, double beta, std::uint64_t seed) {
  require(n >= 0 && k >= 0, "small_world: n, k must be >= 0");
  require(beta >= 0.0 && beta <= 1.0, "small_world: beta must be in [0,1]");
  require(2 * k < n || n == 0, "small_world: need 2k < n");
  Xoshiro256 rng(seed);
  std::set<Edge> edges;
  for (Vertex u = 0; u < n; ++u) {
    for (int j = 1; j <= k; ++j) {
      Vertex v = static_cast<Vertex>((u + j) % n);
      Vertex a = u, c = v;
      if (a > c) std::swap(a, c);
      edges.emplace(a, c);
    }
  }
  std::vector<Edge> rewired;
  for (const Edge& e : edges) {
    if (rng.next_double() < beta) {
      // Rewire: keep endpoint u, pick a fresh non-neighbor target.
      Vertex u = e.first;
      for (int attempt = 0; attempt < 64; ++attempt) {
        Vertex w = narrow_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
        if (w == u) continue;
        Vertex a = u, c = w;
        if (a > c) std::swap(a, c);
        if (edges.count({a, c}) > 0) continue;
        rewired.emplace_back(a, c);
        break;
      }
    } else {
      rewired.push_back(e);
    }
  }
  GraphBuilder b(n);
  for (const auto& [u, v] : rewired) b.add_edge(u, v);
  return std::move(b).build();
}

}  // namespace gen
}  // namespace ssmis
