// Classical graph algorithms used by the harness, verifiers, and the
// good-graph checker. These may use global views of the graph; the MIS
// processes themselves never do.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace ssmis {

// BFS distances from `source`; unreachable vertices get -1.
std::vector<std::int64_t> bfs_distances(const Graph& g, Vertex source);

// Connected component id per vertex (ids are dense, in discovery order).
std::vector<Vertex> connected_components(const Graph& g);

// Number of connected components.
Vertex num_components(const Graph& g);

// Exact diameter via BFS from every vertex: O(n(n+m)). Returns nullopt for
// disconnected graphs, 0 for graphs with <= 1 vertex.
std::optional<std::int64_t> diameter(const Graph& g);

// True iff every pair of distinct vertices is adjacent or shares a common
// neighbor. O(sum deg^2) — cheaper than full diameter for the diam <= 2 test
// used by good-graph property P6.
bool has_diameter_at_most_2(const Graph& g);

// True iff g is connected and acyclic.
bool is_tree(const Graph& g);
// True iff g is acyclic (forest).
bool is_forest(const Graph& g);

// Degeneracy (max over subgraphs of the min degree) and a degeneracy
// ordering; computed by repeated min-degree removal in O(n + m).
struct DegeneracyResult {
  Vertex degeneracy = 0;
  std::vector<Vertex> order;  // removal order
};
DegeneracyResult degeneracy(const Graph& g);

// Arboricity bounds from degeneracy: arboricity(G) is within
// [ceil(degeneracy/2), degeneracy] (and >= max subgraph density bound).
struct ArboricityBounds {
  Vertex lower = 0;
  Vertex upper = 0;
};
ArboricityBounds arboricity_bounds(const Graph& g);

// |N(u) ∩ N(v)| for one pair (merge of sorted adjacency lists).
Vertex common_neighbors(const Graph& g, Vertex u, Vertex v);

// max over all vertex pairs of |N(u) ∩ N(v)| (property P5 input).
// O(sum_v deg(v)^2) via per-wedge counting.
Vertex max_common_neighbors(const Graph& g);

// Number of triangles (for generator sanity tests).
std::int64_t triangle_count(const Graph& g);

// Induced subgraph on `keep` (vertices are relabeled 0..|keep|-1 in the
// order given); also returns the mapping new->old.
struct InducedSubgraph {
  Graph graph;
  std::vector<Vertex> to_original;
};
InducedSubgraph induced_subgraph(const Graph& g, const std::vector<Vertex>& keep);

// Complement graph (O(n^2) memory; guarded to n <= 4096).
Graph complement(const Graph& g);

// Two-colorability via BFS; returns the coloring if bipartite.
std::optional<std::vector<char>> bipartition(const Graph& g);
bool is_bipartite(const Graph& g);

// Core number per vertex (largest k such that the vertex survives in the
// k-core); max entry equals the degeneracy.
std::vector<Vertex> core_numbers(const Graph& g);

// Exact maximum independent set by branch-and-bound with max-degree
// pivoting. Exponential worst case; intended for n <= ~40 (the MIS-quality
// experiment and tests). Throws std::invalid_argument above `max_n`.
std::vector<Vertex> exact_max_independent_set(const Graph& g, Vertex max_n = 48);

// Smallest possible MIS size (minimum *maximal* independent set, i.e. the
// independent domination number), same branch-and-bound regime.
Vertex independent_domination_number(const Graph& g, Vertex max_n = 32);

}  // namespace ssmis
