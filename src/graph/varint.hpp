// Byte-level primitives of the compressed adjacency codec: bounds-checked
// LEB128 varints, delta-coded row decode, and superblock-sampled row seek.
//
// Row layout (rows are concatenated in vertex order inside one payload):
//
//   varint(deg) [varint(v_0)] [varint(v_1 - v_0)] ... [varint(v_{d-1} - v_{d-2})]
//
// Neighbor lists are sorted and duplicate-free (the Graph invariant), so
// every gap is >= 1 and the deltas compress: a 10^8-vertex avg-degree-8
// G(n,p) row costs ~4 bytes/endpoint while the 8-byte-per-vertex offsets
// array of plain CSR disappears entirely into a sampled index (one u64 per
// kSuperblock = 64 rows).
//
// Every decode path here is bounds-checked against the payload end and
// validates decoded values against the vertex universe — a hostile or
// truncated payload throws std::runtime_error, it never reads out of bounds
// and never hands back a neighbor id that would index per-vertex state out
// of range. (Structural lies a checksummed-but-wrong writer can tell —
// self-loops, asymmetry — are the full-validation pass's job; see
// compressed.hpp.)
#pragma once

#include <cstdint>
#include <stdexcept>
#include <type_traits>
#include <utility>

namespace ssmis::cadj {

// Rows per sampled index entry. The index stores the byte offset of every
// kSuperblock-th row, so a random row seek is one index lookup plus at most
// kSuperblock - 1 varint-level row skips — O(1) for a fixed superblock.
inline constexpr std::int64_t kSuperblock = 64;

// Index entries for an n-vertex payload: one per started superblock plus
// the end-of-payload sentinel.
[[nodiscard]] inline constexpr std::size_t index_entries(std::int64_t n) {
  return static_cast<std::size_t>((n + kSuperblock - 1) / kSuperblock) + 1;
}

[[noreturn]] inline void fail(const char* what) {
  throw std::runtime_error(std::string("compressed adjacency: ") + what);
}

// Encoded size of one varint (1..5 bytes for values < 2^31). Monotone in
// `value`, so varint_len(n) bounds the bytes of any vertex id or gap in an
// n-vertex payload — what the compress sink's exact reservation rests on.
[[nodiscard]] inline std::size_t varint_len(std::uint32_t value) {
  std::size_t len = 1;
  while (value >= 0x80u) {
    value >>= 7;
    ++len;
  }
  return len;
}

// Appends the LEB128 encoding of `value` (7 data bits per byte, high bit =
// continuation) to `out`. Values are vertex ids / gaps / degrees: always
// non-negative and < 2^31, so at most 5 bytes.
template <typename ByteVec>
inline void append_varint(ByteVec& out, std::uint32_t value) {
  while (value >= 0x80u) {
    out.push_back(static_cast<std::uint8_t>(value | 0x80u));
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

// Decodes one varint at `p`, advancing it. Throws on payload overrun, on an
// encoding longer than 5 bytes, on a value outside [0, 2^31), and on a
// NON-MINIMAL encoding (a zero-padded final byte, e.g. 1 as 0x81 0x00) —
// the codec is canonical, one byte stream per adjacency structure, which is
// what lets payload equality stand in for structural equality and makes v2
// checksums comparable across writers.
[[nodiscard]] inline std::uint32_t read_varint(const std::uint8_t*& p, const std::uint8_t* end) {
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    if (p == end) fail("truncated payload (varint runs past the end)");
    const std::uint8_t byte = *p++;
    value |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
    if ((byte & 0x80u) == 0) {
      if (shift > 0 && byte == 0)
        fail("varint overrun (non-canonical zero-padded encoding)");
      break;
    }
    shift += 7;
    if (shift >= 35) fail("varint overrun (encoding longer than 5 bytes)");
  }
  if (value > 0x7fffffffull) fail("varint overrun (value outside the vertex range)");
  return static_cast<std::uint32_t>(value);
}

// Skips one varint without decoding its value (continuation-bit scan).
inline void skip_varint(const std::uint8_t*& p, const std::uint8_t* end) {
  for (int len = 0; len < 5; ++len) {
    if (p == end) fail("truncated payload (varint runs past the end)");
    if ((*p++ & 0x80u) == 0) return;
  }
  fail("varint overrun (encoding longer than 5 bytes)");
}

// Reads a row's degree header and sanity-bounds it: a degree can neither
// exceed the vertex universe nor the bytes left in the payload (every
// neighbor costs at least one byte), so hostile headers cannot provoke
// grotesque scratch allocations or long blind scans.
[[nodiscard]] inline std::int64_t read_degree(const std::uint8_t*& p, const std::uint8_t* end,
                                std::int64_t n) {
  const std::int64_t deg = read_varint(p, end);
  if (deg > n) fail("corrupt row header (degree exceeds vertex count)");
  if (deg > end - p) fail("truncated payload (row shorter than its degree)");
  return deg;
}

// Advances `p` past one full row (degree header + payload).
inline void skip_row(const std::uint8_t*& p, const std::uint8_t* end,
                     std::int64_t n) {
  const std::int64_t deg = read_degree(p, end, n);
  for (std::int64_t i = 0; i < deg; ++i) skip_varint(p, end);
}

// Decodes the row at `p` (advancing it), invoking `f(v)` per neighbor in
// ascending order. `f` may return void, or bool with false = stop early
// (the cursor position is then mid-row; callers that continue decoding must
// re-seek). Gap-zero entries (duplicates) and ids >= n throw: even the
// trusted load path can never feed the engine a neighbor id that indexes
// its per-vertex arrays out of range.
template <typename F>
inline void visit_row(const std::uint8_t*& p, const std::uint8_t* end,
                      std::int64_t n, F&& f) {
  const std::int64_t deg = read_degree(p, end, n);
  std::int64_t v = -1;
  for (std::int64_t i = 0; i < deg; ++i) {
    const std::uint32_t delta = read_varint(p, end);
    if (i > 0 && delta == 0) fail("corrupt row (duplicate neighbor)");
    v = (i == 0) ? static_cast<std::int64_t>(delta)
                 : v + static_cast<std::int64_t>(delta);
    if (v >= n) fail("corrupt row (neighbor id out of range)");
    if constexpr (std::is_void_v<std::invoke_result_t<F&, std::int32_t>>) {
      f(static_cast<std::int32_t>(v));
    } else {
      if (!f(static_cast<std::int32_t>(v))) return;
    }
  }
}

// Decodes the row at `p` into `buf` (cleared first), advancing `p` — the
// one shared materialization loop behind Graph's scratch-span paths.
template <typename Vec>
inline void decode_row_into(const std::uint8_t*& p, const std::uint8_t* end,
                            std::int64_t n, Vec& buf) {
  buf.clear();
  visit_row(p, end, n, [&](std::int32_t v) { buf.push_back(v); });
}

// Byte position of row `u`: one sampled-index lookup plus at most
// kSuperblock - 1 row skips. The index entry itself is validated against
// the payload size (an index/offset mismatch in a corrupted file throws
// here rather than seeding an out-of-bounds scan).
[[nodiscard]] inline const std::uint8_t* seek_row(const std::uint8_t* payload,
                                    std::size_t payload_bytes,
                                    const std::uint64_t* index, std::int64_t n,
                                    std::int64_t u) {
  const std::uint64_t start = index[static_cast<std::size_t>(u / kSuperblock)];
  if (start > payload_bytes) fail("index/offset mismatch (entry past payload end)");
  const std::uint8_t* p = payload + start;
  const std::uint8_t* end = payload + payload_bytes;
  for (std::int64_t r = u % kSuperblock; r > 0; --r) skip_row(p, end, n);
  return p;
}

}  // namespace ssmis::cadj
