// Graph serialization: whitespace edge-list format and Graphviz DOT export.
// (The binary CSR format for large graphs lives in graph/ssg.hpp.)
//
// Edge-list format: first line `n m`, then one `u v` pair per line. Lines
// starting with '#' are comments.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace ssmis {
namespace io {

void write_edge_list(std::ostream& os, const Graph& g);
// Throws std::runtime_error on malformed input.
Graph read_edge_list(std::istream& is);

// DOT export; `highlight` vertices (e.g. an MIS) are filled black.
void write_dot(std::ostream& os, const Graph& g,
               const std::vector<Vertex>& highlight = {});

std::string to_edge_list_string(const Graph& g);
Graph from_edge_list_string(const std::string& text);

}  // namespace io
}  // namespace ssmis
