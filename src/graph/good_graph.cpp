#include "graph/good_graph.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "graph/algorithms.hpp"
#include "rng/xoshiro256.hpp"
#include "support/narrow.hpp"

namespace ssmis {

namespace {

double ln_n(const Graph& g) {
  return std::log(std::max<double>(2.0, g.num_vertices()));
}

// Number of edges inside `subset` (marker-scan, O(sum deg)).
std::int64_t edges_inside(const Graph& g, const std::vector<Vertex>& subset) {
  std::vector<char> in(static_cast<std::size_t>(g.num_vertices()), 0);
  for (Vertex u : subset) in[static_cast<std::size_t>(u)] = 1;
  std::int64_t twice = 0;
  for (Vertex u : subset)
    g.for_each_neighbor(u, [&](Vertex v) {
      if (in[static_cast<std::size_t>(v)]) ++twice;
    });
  return twice / 2;
}

// N(set) as a marker vector (open neighborhood, excludes `set` itself).
std::vector<char> open_neighborhood(const Graph& g, const std::vector<Vertex>& set) {
  std::vector<char> in(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<char> nbr(static_cast<std::size_t>(g.num_vertices()), 0);
  for (Vertex u : set) in[static_cast<std::size_t>(u)] = 1;
  for (Vertex u : set)
    g.for_each_neighbor(u, [&](Vertex v) {
      if (!in[static_cast<std::size_t>(v)]) nbr[static_cast<std::size_t>(v)] = 1;
    });
  return nbr;
}

}  // namespace

std::string GoodGraphReport::to_string() const {
  std::ostringstream oss;
  oss << "P1=" << p1 << " P2=" << p2 << " P3=" << p3 << " P4=" << p4
      << " P5=" << p5 << " P6=" << p6 << (p6_applicable ? " (P6 applies)" : " (P6 vacuous)");
  return oss.str();
}

bool p1_holds_for_subset(const Graph& g, double p, const std::vector<Vertex>& subset) {
  if (subset.empty()) return true;
  const double avg_deg = 2.0 * static_cast<double>(edges_inside(g, subset)) /
                         static_cast<double>(subset.size());
  const double bound =
      std::max(8.0 * p * static_cast<double>(subset.size()), 4.0 * ln_n(g));
  return avg_deg <= bound;
}

bool p2_holds_for_subset(const Graph& g, double p, const std::vector<Vertex>& subset) {
  const double k = static_cast<double>(subset.size());
  if (p <= 0.0 || k < 40.0 * ln_n(g) / p) return true;  // precondition unmet
  std::vector<char> in(static_cast<std::size_t>(g.num_vertices()), 0);
  for (Vertex u : subset) in[static_cast<std::size_t>(u)] = 1;
  std::int64_t weak = 0;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (in[static_cast<std::size_t>(u)]) continue;
    Vertex inside = 0;
    g.for_each_neighbor(u, [&](Vertex v) {
      if (in[static_cast<std::size_t>(v)]) ++inside;
    });
    if (static_cast<double>(inside) < p * k / 2.0) ++weak;
  }
  return static_cast<double>(weak) <= k / 2.0;
}

bool p4_holds_for_pair(const Graph& g, const std::vector<Vertex>& s,
                       const std::vector<Vertex>& t) {
  if (s.size() < t.size()) return true;  // precondition unmet
  std::vector<char> in_s(static_cast<std::size_t>(g.num_vertices()), 0);
  for (Vertex u : s) in_s[static_cast<std::size_t>(u)] = 1;
  std::int64_t cross = 0;
  for (Vertex u : t)
    g.for_each_neighbor(u, [&](Vertex v) {
      if (in_s[static_cast<std::size_t>(v)]) ++cross;
    });
  return static_cast<double>(cross) <= 6.0 * static_cast<double>(s.size()) * ln_n(g);
}

bool p3_holds_for_triplet(const Graph& g, double p, const std::vector<Vertex>& s,
                          const std::vector<Vertex>& t, const std::vector<Vertex>& i,
                          bool* precondition_met) {
  if (precondition_met != nullptr) *precondition_met = false;
  if (s.size() < 2 * t.size()) return true;
  // Disjointness and (S ∪ T) ∩ N(I) = ∅ preconditions.
  std::vector<char> tag(static_cast<std::size_t>(g.num_vertices()), 0);
  for (Vertex u : s) tag[static_cast<std::size_t>(u)] |= 1;
  for (Vertex u : t) tag[static_cast<std::size_t>(u)] |= 2;
  for (Vertex u : i) tag[static_cast<std::size_t>(u)] |= 4;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    const char bits = tag[static_cast<std::size_t>(u)];
    if (bits != 0 && (bits & (bits - 1)) != 0) return true;  // not disjoint
  }
  const auto n_of_i = open_neighborhood(g, i);
  for (Vertex u : s)
    if (n_of_i[static_cast<std::size_t>(u)]) return true;
  for (Vertex u : t)
    if (n_of_i[static_cast<std::size_t>(u)]) return true;
  if (precondition_met != nullptr) *precondition_met = true;

  // |N(T) \ N+(S ∪ I)| <= |N(S) \ N+(I)| + 8 ln^2(n)/p.
  std::vector<Vertex> s_union_i = s;
  s_union_i.insert(s_union_i.end(), i.begin(), i.end());
  const auto n_of_t = open_neighborhood(g, t);
  const auto n_of_s = open_neighborhood(g, s);
  std::vector<char> in_s_union_i(static_cast<std::size_t>(g.num_vertices()), 0);
  for (Vertex u : s_union_i) in_s_union_i[static_cast<std::size_t>(u)] = 1;
  const auto n_of_s_union_i = open_neighborhood(g, s_union_i);
  std::vector<char> in_i(static_cast<std::size_t>(g.num_vertices()), 0);
  for (Vertex u : i) in_i[static_cast<std::size_t>(u)] = 1;

  std::int64_t lhs = 0;
  std::int64_t rhs = 0;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    const auto idx = static_cast<std::size_t>(u);
    // N+(S ∪ I) membership: in the set or adjacent to it.
    const bool in_closed_si = in_s_union_i[idx] || n_of_s_union_i[idx];
    if (n_of_t[idx] && !in_closed_si) ++lhs;
    const bool in_closed_i = in_i[idx] || n_of_i[idx];
    if (n_of_s[idx] && !in_closed_i) ++rhs;
  }
  const double slack = p > 0.0 ? 8.0 * ln_n(g) * ln_n(g) / p : 1e18;
  return static_cast<double>(lhs) <= static_cast<double>(rhs) + slack;
}

bool check_p5(const Graph& g, double p) {
  const double bound = std::max(
      6.0 * static_cast<double>(g.num_vertices()) * p * p, 4.0 * ln_n(g));
  return static_cast<double>(max_common_neighbors(g)) <= bound;
}

bool p6_applies(Vertex n, double p) {
  const double ln_val = std::log(std::max<double>(2.0, n));
  return p >= 2.0 * std::sqrt(ln_val / std::max<double>(1.0, n));
}

bool check_p6(const Graph& g, double p) {
  if (!p6_applies(g.num_vertices(), p)) return true;
  return has_diameter_at_most_2(g);
}

namespace {

// Enumerate all subsets of [0, n) for exhaustive checks (n <= 20 guarded by
// the caller's patience; tests use n <= 14).
template <typename Fn>
void for_each_subset(Vertex n, Fn&& fn) {
  const std::uint32_t limit = static_cast<std::uint32_t>(1) << n;
  std::vector<Vertex> subset;
  for (std::uint32_t mask = 0; mask < limit; ++mask) {
    subset.clear();
    for (Vertex u = 0; u < n; ++u)
      if (mask & (static_cast<std::uint32_t>(1) << u)) subset.push_back(u);
    fn(subset, mask);
  }
}

}  // namespace

GoodGraphReport check_good_exhaustive(const Graph& g, double p) {
  GoodGraphReport report;
  const Vertex n = g.num_vertices();
  report.p6_applicable = p6_applies(n, p);
  report.p5 = check_p5(g, p);
  report.p6 = check_p6(g, p);

  for_each_subset(n, [&](const std::vector<Vertex>& s, std::uint32_t) {
    if (!p1_holds_for_subset(g, p, s)) report.p1 = false;
    if (!p2_holds_for_subset(g, p, s)) report.p2 = false;
  });

  // P4 over all disjoint pairs; P3 over all disjoint triplets (3^n labelings).
  for_each_subset(n, [&](const std::vector<Vertex>& s, std::uint32_t mask_s) {
    for_each_subset(n, [&](const std::vector<Vertex>& t, std::uint32_t mask_t) {
      if ((mask_s & mask_t) != 0) return;
      if (!p4_holds_for_pair(g, s, t)) report.p4 = false;
      // For P3, enumerate I over subsets of the complement of S ∪ T only
      // when the graph is tiny; otherwise this is O(4^n).
      if (n <= 12) {
        const std::uint32_t rest = ~(mask_s | mask_t) & ((1u << n) - 1);
        // iterate over submasks of `rest`
        std::uint32_t sub = rest;
        while (true) {
          std::vector<Vertex> i_set;
          for (Vertex u = 0; u < n; ++u)
            if (sub & (1u << u)) i_set.push_back(u);
          bool pre = false;
          if (!p3_holds_for_triplet(g, p, s, t, i_set, &pre)) report.p3 = false;
          if (sub == 0) break;
          sub = (sub - 1) & rest;
        }
      }
    });
  });
  return report;
}

GoodGraphReport check_good_sampled(const Graph& g, double p, int samples,
                                   std::uint64_t seed) {
  GoodGraphReport report;
  const Vertex n = g.num_vertices();
  report.p6_applicable = p6_applies(n, p);
  report.p5 = check_p5(g, p);
  report.p6 = check_p6(g, p);
  if (n == 0) return report;

  Xoshiro256 rng(seed);
  // Candidate subset generators: biased families that stress each property.
  std::vector<Vertex> by_degree(static_cast<std::size_t>(n));
  for (Vertex u = 0; u < n; ++u) by_degree[static_cast<std::size_t>(u)] = u;
  std::sort(by_degree.begin(), by_degree.end(), [&](Vertex a, Vertex b) {
    return g.degree(a) > g.degree(b);
  });

  auto random_subset = [&](Vertex size) {
    std::vector<Vertex> out;
    out.reserve(static_cast<std::size_t>(size));
    std::vector<char> used(static_cast<std::size_t>(n), 0);
    while (narrow_cast<Vertex>(out.size()) < std::min(size, n)) {
      const Vertex u =
          narrow_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
      if (!used[static_cast<std::size_t>(u)]) {
        used[static_cast<std::size_t>(u)] = 1;
        out.push_back(u);
      }
    }
    return out;
  };
  auto neighborhood_subset = [&](Vertex size) {
    // BFS ball around a random root: subsets with many internal edges.
    std::vector<Vertex> out;
    std::vector<char> used(static_cast<std::size_t>(n), 0);
    Vertex root = narrow_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
    std::vector<Vertex> frontier{root};
    used[static_cast<std::size_t>(root)] = 1;
    out.push_back(root);
    while (!frontier.empty() && narrow_cast<Vertex>(out.size()) < size) {
      std::vector<Vertex> next;
      for (Vertex u : frontier) {
        bool full = false;
        g.for_each_neighbor(u, [&](Vertex v) {
          if (used[static_cast<std::size_t>(v)]) return true;
          used[static_cast<std::size_t>(v)] = 1;
          out.push_back(v);
          next.push_back(v);
          full = narrow_cast<Vertex>(out.size()) >= size;
          return !full;
        });
        if (full) return out;
      }
      frontier = std::move(next);
    }
    return out;
  };

  for (int iter = 0; iter < samples; ++iter) {
    const Vertex size = narrow_cast<Vertex>(
        1 + rng.next_below(static_cast<std::uint64_t>(n)));
    // Three candidate shapes per iteration.
    std::vector<std::vector<Vertex>> candidates;
    candidates.push_back(random_subset(size));
    candidates.push_back(neighborhood_subset(size));
    candidates.emplace_back(by_degree.begin(),
                            by_degree.begin() + std::min<std::size_t>(
                                                    by_degree.size(),
                                                    static_cast<std::size_t>(size)));
    for (const auto& s : candidates) {
      if (!p1_holds_for_subset(g, p, s)) report.p1 = false;
      if (!p2_holds_for_subset(g, p, s)) report.p2 = false;
    }
    // P4: T = small high-degree set, S = random larger set.
    const double max_t = std::max(1.0, std::log(std::max<double>(2.0, n)) /
                                           std::max(p, 1e-12));
    const double t_cap = std::min<double>(
        max_t, 1 + static_cast<double>(rng.next_below(
                       static_cast<std::uint64_t>(std::max<double>(1.0, max_t)))));
    const Vertex t_size = narrow_cast<Vertex>(static_cast<std::int64_t>(t_cap));
    std::vector<Vertex> t_set(by_degree.begin(),
                              by_degree.begin() + std::min<std::size_t>(
                                                      by_degree.size(),
                                                      static_cast<std::size_t>(t_size)));
    std::vector<Vertex> s_set = random_subset(
        std::max<Vertex>(t_size, narrow_cast<Vertex>(rng.next_below(
                                     static_cast<std::uint64_t>(n)) + 1)));
    // Remove overlap (keep S disjoint from T).
    {
      std::vector<char> in_t(static_cast<std::size_t>(n), 0);
      for (Vertex u : t_set) in_t[static_cast<std::size_t>(u)] = 1;
      std::erase_if(s_set, [&](Vertex u) { return in_t[static_cast<std::size_t>(u)]; });
    }
    if (!p4_holds_for_pair(g, s_set, t_set)) report.p4 = false;
    // P3: I = random independent-ish seed set far from S, T. We simply pick
    // random disjoint triples; triples failing the precondition are skipped
    // inside the predicate.
    std::vector<Vertex> i_set = random_subset(std::max<Vertex>(1, size / 4));
    {
      std::vector<char> taken(static_cast<std::size_t>(n), 0);
      for (Vertex u : s_set) taken[static_cast<std::size_t>(u)] = 1;
      for (Vertex u : t_set) taken[static_cast<std::size_t>(u)] = 1;
      std::erase_if(i_set, [&](Vertex u) { return taken[static_cast<std::size_t>(u)]; });
    }
    if (!p3_holds_for_triplet(g, p, s_set, t_set, i_set, nullptr)) report.p3 = false;
  }
  return report;
}

}  // namespace ssmis
