#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"

namespace ssmis {
namespace io {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edge_list()) os << u << ' ' << v << '\n';
}

Graph read_edge_list(std::istream& is) {
  std::string line;
  Vertex n = -1;
  std::int64_t m = -1;
  std::int64_t seen = 0;
  GraphBuilder builder(0);
  bool have_header = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    if (!have_header) {
      if (!(ls >> n >> m) || n < 0 || m < 0)
        throw std::runtime_error("read_edge_list: malformed header");
      builder = GraphBuilder(n);
      have_header = true;
      continue;
    }
    Vertex u, v;
    if (!(ls >> u >> v)) throw std::runtime_error("read_edge_list: malformed edge line");
    builder.add_edge(u, v);
    ++seen;
  }
  if (!have_header) throw std::runtime_error("read_edge_list: missing header");
  if (seen != m) throw std::runtime_error("read_edge_list: edge count mismatch");
  return std::move(builder).build();
}

void write_dot(std::ostream& os, const Graph& g, const std::vector<Vertex>& highlight) {
  std::vector<char> mark(static_cast<std::size_t>(g.num_vertices()), 0);
  for (Vertex u : highlight) {
    if (u >= 0 && u < g.num_vertices()) mark[static_cast<std::size_t>(u)] = 1;
  }
  os << "graph G {\n  node [shape=circle];\n";
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    os << "  " << u;
    if (mark[static_cast<std::size_t>(u)])
      os << " [style=filled, fillcolor=black, fontcolor=white]";
    os << ";\n";
  }
  for (const auto& [u, v] : g.edge_list()) os << "  " << u << " -- " << v << ";\n";
  os << "}\n";
}

std::string to_edge_list_string(const Graph& g) {
  std::ostringstream oss;
  write_edge_list(oss, g);
  return oss.str();
}

Graph from_edge_list_string(const std::string& text) {
  std::istringstream iss(text);
  return read_edge_list(iss);
}

}  // namespace io
}  // namespace ssmis
