#include "graph/csr_builder.hpp"

#include <algorithm>

namespace ssmis {

Graph CsrBuilder::finalize(Vertex n, std::vector<std::int64_t> offsets,
                           std::vector<Vertex> adj) {
  // After pass 2, offsets[u] == end of row u for u in [0, n) and offsets[n]
  // is the untouched total, which equals end of row n-1; shift right to
  // recover [0, end(0), ..., end(n-2)] starts.
  for (std::size_t u = static_cast<std::size_t>(n); u >= 1; --u)
    offsets[u] = offsets[u - 1];
  offsets[0] = 0;

  // Sort + deduplicate each row, compacting the adjacency array in place
  // (the write cursor never overtakes the read cursor).
  std::size_t write = 0;
  std::int64_t row_start = 0;
  for (std::size_t u = 0; u < static_cast<std::size_t>(n); ++u) {
    const std::int64_t row_end = offsets[u + 1];
    std::sort(adj.begin() + row_start, adj.begin() + row_end);
    offsets[u] = static_cast<std::int64_t>(write);
    for (std::int64_t i = row_start; i < row_end; ++i) {
      if (i == row_start || adj[static_cast<std::size_t>(i)] !=
                                adj[static_cast<std::size_t>(i) - 1]) {
        adj[write++] = adj[static_cast<std::size_t>(i)];
      }
    }
    row_start = row_end;
  }
  offsets[static_cast<std::size_t>(n)] = static_cast<std::int64_t>(write);

  // Return duplicate slack when it is worth a realloc; duplicate-free
  // streams (gnp, trees) take the no-op branch and never copy.
  if (write < adj.size()) {
    adj.resize(write);
    if (adj.capacity() - adj.size() > adj.size() / 8) adj.shrink_to_fit();
  }
  return Graph(n, std::move(offsets), std::move(adj));
}

}  // namespace ssmis
