#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>

#include "graph/builder.hpp"

namespace ssmis {

struct Graph::Storage {
  std::vector<std::int64_t> offsets;
  std::vector<Vertex> adj;
};

Graph::Graph() = default;

Graph::Graph(Vertex n, std::vector<std::int64_t> offsets, std::vector<Vertex> adj)
    : n_(n) {
  auto storage = std::make_shared<Storage>();
  storage->offsets = std::move(offsets);
  storage->adj = std::move(adj);
  offsets_ = storage->offsets.data();
  adj_ = storage->adj.data();
  adj_size_ = storage->adj.size();
  backing_ = std::move(storage);
}

Graph Graph::from_external_csr(Vertex n, const std::int64_t* offsets,
                               const Vertex* adj, std::size_t adj_len,
                               std::shared_ptr<const void> backing) {
  Graph g;
  g.n_ = n;
  g.offsets_ = offsets;
  g.adj_ = adj;
  g.adj_size_ = adj_len;
  g.mapped_ = true;
  g.backing_ = std::move(backing);
  return g;
}

Graph Graph::from_edges(Vertex n, std::span<const Edge> edges) {
  GraphBuilder builder(n);
  for (const auto& [u, v] : edges) builder.add_edge(u, v);
  return builder.build();
}

Graph Graph::from_edges(Vertex n, std::initializer_list<Edge> edges) {
  return from_edges(n, std::span<const Edge>(edges.begin(), edges.size()));
}

Vertex Graph::max_degree() const {
  Vertex best = 0;
  for (Vertex u = 0; u < n_; ++u) best = std::max(best, degree(u));
  return best;
}

double Graph::average_degree() const {
  if (n_ == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) / static_cast<double>(n_);
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  if (u < 0 || v < 0 || u >= n_ || v >= n_ || u == v) return false;
  // Search in the shorter adjacency list.
  if (degree(u) > degree(v)) std::swap(u, v);
  auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> Graph::edge_list() const {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(num_edges()));
  for (Vertex u = 0; u < n_; ++u) {
    for (Vertex v : neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

bool Graph::operator==(const Graph& other) const {
  if (n_ != other.n_ || adj_size_ != other.adj_size_) return false;
  if (offsets_ == other.offsets_ && adj_ == other.adj_) return true;
  return std::equal(offsets_, offsets_ + n_ + 1, other.offsets_) &&
         std::equal(adj_, adj_ + adj_size_, other.adj_);
}

std::string Graph::summary() const {
  std::ostringstream oss;
  oss << "Graph(n=" << n_ << ", m=" << num_edges() << ", maxdeg=" << max_degree()
      << ")";
  return oss.str();
}

}  // namespace ssmis
