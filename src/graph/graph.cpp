#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>

#include "graph/builder.hpp"

namespace ssmis {

Graph::Graph() : n_(0), offsets_(1, 0) {}

Graph::Graph(Vertex n, std::vector<std::int64_t> offsets, std::vector<Vertex> adj)
    : n_(n), offsets_(std::move(offsets)), adj_(std::move(adj)) {}

Graph Graph::from_edges(Vertex n, std::span<const Edge> edges) {
  GraphBuilder builder(n);
  for (const auto& [u, v] : edges) builder.add_edge(u, v);
  return builder.build();
}

Graph Graph::from_edges(Vertex n, std::initializer_list<Edge> edges) {
  return from_edges(n, std::span<const Edge>(edges.begin(), edges.size()));
}

Vertex Graph::max_degree() const {
  Vertex best = 0;
  for (Vertex u = 0; u < n_; ++u) best = std::max(best, degree(u));
  return best;
}

double Graph::average_degree() const {
  if (n_ == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) / static_cast<double>(n_);
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  if (u < 0 || v < 0 || u >= n_ || v >= n_ || u == v) return false;
  // Search in the shorter adjacency list.
  if (degree(u) > degree(v)) std::swap(u, v);
  auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> Graph::edge_list() const {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(num_edges()));
  for (Vertex u = 0; u < n_; ++u) {
    for (Vertex v : neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

std::string Graph::summary() const {
  std::ostringstream oss;
  oss << "Graph(n=" << n_ << ", m=" << num_edges() << ", maxdeg=" << max_degree()
      << ")";
  return oss.str();
}

}  // namespace ssmis
