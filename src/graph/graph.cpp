#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "graph/builder.hpp"

namespace ssmis {

struct Graph::Storage {
  std::vector<std::int64_t> offsets;
  std::vector<Vertex> adj;
};

struct Graph::CompressedStorage {
  std::vector<std::uint64_t> index;
  std::vector<std::uint8_t> payload;
};

Graph::Graph() = default;

Graph::Graph(Vertex n, std::vector<std::int64_t> offsets, std::vector<Vertex> adj)
    : n_(n) {
  auto storage = std::make_shared<Storage>();
  storage->offsets = std::move(offsets);
  storage->adj = std::move(adj);
  offsets_ = storage->offsets.data();
  adj_ = storage->adj.data();
  adj_size_ = storage->adj.size();
  backing_ = std::move(storage);
}

Graph Graph::from_external_csr(Vertex n, const std::int64_t* offsets,
                               const Vertex* adj, std::size_t adj_len,
                               std::shared_ptr<const void> backing) {
  Graph g;
  g.n_ = n;
  g.offsets_ = offsets;
  g.adj_ = adj;
  g.adj_size_ = adj_len;
  g.mapped_ = true;
  g.backing_ = std::move(backing);
  return g;
}

Graph Graph::from_compressed(Vertex n, std::int64_t adj_len,
                             std::vector<std::uint64_t> index,
                             std::vector<std::uint8_t> payload) {
  if (n < 0 || adj_len < 0 || index.size() != cadj::index_entries(n))
    throw std::invalid_argument("Graph::from_compressed: malformed codec arrays");
  auto storage = std::make_shared<CompressedStorage>();
  storage->index = std::move(index);
  storage->payload = std::move(payload);
  Graph g;
  g.n_ = n;
  g.adj_size_ = static_cast<std::size_t>(adj_len);
  g.compressed_ = true;
  g.offsets_ = nullptr;
  g.cindex_ = storage->index.data();
  g.cpayload_ = storage->payload.data();
  g.cpayload_bytes_ = storage->payload.size();
  g.backing_ = std::move(storage);
  return g;
}

Graph Graph::from_external_compressed(Vertex n, std::int64_t adj_len,
                                      const std::uint64_t* index,
                                      const std::uint8_t* payload,
                                      std::size_t payload_bytes,
                                      std::shared_ptr<const void> backing) {
  if (n < 0 || adj_len < 0)
    throw std::invalid_argument(
        "Graph::from_external_compressed: malformed codec arrays");
  Graph g;
  g.n_ = n;
  g.adj_size_ = static_cast<std::size_t>(adj_len);
  g.compressed_ = true;
  g.mapped_ = true;
  g.offsets_ = nullptr;
  g.cindex_ = index;
  g.cpayload_ = payload;
  g.cpayload_bytes_ = payload_bytes;
  g.backing_ = std::move(backing);
  return g;
}

Graph Graph::from_edges(Vertex n, std::span<const Edge> edges) {
  GraphBuilder builder(n);
  for (const auto& [u, v] : edges) builder.add_edge(u, v);
  return builder.build();
}

Graph Graph::from_edges(Vertex n, std::initializer_list<Edge> edges) {
  return from_edges(n, std::span<const Edge>(edges.begin(), edges.size()));
}

void Graph::fail_needs_decode() {
  throw std::logic_error(
      "Graph: raw CSR access on compressed storage — use for_each_neighbor, "
      "neighbors(u, scratch), or RowStream (or Graph::decompress)");
}

void Graph::fail_not_compressed() {
  throw std::logic_error("Graph: codec access on plain CSR storage");
}

std::span<const Vertex> Graph::decode_row(Vertex u, NeighborScratch& scratch) const {
  const std::uint8_t* p = cadj::seek_row(cpayload_, cpayload_bytes_, cindex_, n_, u);
  cadj::decode_row_into(p, cpayload_ + cpayload_bytes_, n_, scratch.buf);
  return {scratch.buf.data(), scratch.buf.size()};
}

Vertex Graph::compressed_degree(Vertex u) const {
  const std::uint8_t* p = cadj::seek_row(cpayload_, cpayload_bytes_, cindex_, n_, u);
  return narrow_cast<Vertex>(
      cadj::read_degree(p, cpayload_ + cpayload_bytes_, n_));
}

std::span<const std::uint64_t> Graph::compressed_index() const {
  if (!compressed_) fail_not_compressed();
  return {cindex_, cadj::index_entries(n_)};
}

std::span<const std::uint8_t> Graph::compressed_payload() const {
  if (!compressed_) fail_not_compressed();
  return {cpayload_, cpayload_bytes_};
}

namespace {

// One sequential degree-header sweep — O(n) span math on plain storage,
// O(payload bytes) on compressed (never n random seeks) — shared by
// max_degree and degrees.
template <typename Fn>
void for_each_degree(const Graph& g, bool compressed, const std::uint8_t* payload,
                     std::size_t payload_bytes, Fn&& fn) {
  const Vertex n = g.num_vertices();
  if (!compressed) {
    for (Vertex u = 0; u < n; ++u) fn(u, g.degree(u));
    return;
  }
  const std::uint8_t* p = payload;
  const std::uint8_t* end = payload + payload_bytes;
  for (Vertex u = 0; u < n; ++u) {
    const std::int64_t deg = cadj::read_degree(p, end, n);
    fn(u, static_cast<Vertex>(deg));
    for (std::int64_t i = 0; i < deg; ++i) cadj::skip_varint(p, end);
  }
}

}  // namespace

Vertex Graph::max_degree() const {
  Vertex best = 0;
  for_each_degree(*this, compressed_, cpayload_, cpayload_bytes_,
                  [&](Vertex, Vertex d) { best = std::max(best, d); });
  return best;
}

std::vector<Vertex> Graph::degrees() const {
  std::vector<Vertex> out(static_cast<std::size_t>(n_));
  for_each_degree(*this, compressed_, cpayload_, cpayload_bytes_,
                  [&](Vertex u, Vertex d) { out[static_cast<std::size_t>(u)] = d; });
  return out;
}

double Graph::average_degree() const {
  if (n_ == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) / static_cast<double>(n_);
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  if (u < 0 || v < 0 || u >= n_ || v >= n_ || u == v) return false;
  if (!compressed_) {
    // Binary search in the shorter adjacency list.
    if (degree(u) > degree(v)) std::swap(u, v);
    auto nbrs = neighbors(u);
    return std::binary_search(nbrs.begin(), nbrs.end(), v);
  }
  // Early-exit streaming scan of one (sorted) row. No degree-swap
  // heuristic here: comparing degrees would cost two extra superblock
  // seeks, more than the few entries of decode it could save.
  bool found = false;
  for_each_neighbor(u, [&](Vertex w) {
    if (w >= v) {
      found = (w == v);
      return false;
    }
    return true;
  });
  return found;
}

std::vector<Edge> Graph::edge_list() const {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(num_edges()));
  NeighborScratch scratch;
  RowStream rows(*this);
  for (Vertex u = 0; u < n_; ++u) {
    for (Vertex v : rows.next(scratch)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

bool Graph::operator==(const Graph& other) const {
  if (n_ != other.n_ || adj_size_ != other.adj_size_) return false;
  if (!compressed_ && !other.compressed_) {
    if (offsets_ == other.offsets_ && adj_ == other.adj_) return true;
    return std::equal(offsets_, offsets_ + n_ + 1, other.offsets_) &&
           std::equal(adj_, adj_ + adj_size_, other.adj_);
  }
  if (compressed_ && other.compressed_) {
    // The codec is canonical (one byte stream per adjacency structure), so
    // payload equality IS structural equality.
    return cpayload_bytes_ == other.cpayload_bytes_ &&
           (cpayload_ == other.cpayload_ ||
            std::equal(cpayload_, cpayload_ + cpayload_bytes_, other.cpayload_));
  }
  // Mixed storage: stream both sides row by row.
  NeighborScratch sa, sb;
  RowStream ra(*this), rb(other);
  for (Vertex u = 0; u < n_; ++u) {
    const auto a = ra.next(sa);
    const auto b = rb.next(sb);
    if (a.size() != b.size() || !std::equal(a.begin(), a.end(), b.begin()))
      return false;
  }
  return true;
}

std::string Graph::storage_mode() const {
  if (compressed_) return mapped_ ? "compressed+mmap" : "compressed";
  return mapped_ ? "mmap" : "owned";
}

std::string Graph::summary() const {
  std::ostringstream oss;
  oss << "Graph(n=" << n_ << ", m=" << num_edges() << ", maxdeg=" << max_degree()
      << ")";
  return oss.str();
}

}  // namespace ssmis
