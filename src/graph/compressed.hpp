// Compressed adjacency construction and validation.
//
// The codec itself (varint/delta rows + sampled offset index) lives in
// varint.hpp; the Graph handle knows how to *read* it. This header owns the
// two remaining jobs:
//
//   CompressedAdjacencyEncoder  append rows 0..n-1 in order, get a
//                               compressed-storage Graph — the shared sink
//                               behind Graph::compress and the CsrBuilder
//                               streaming compress build;
//   validate_compressed_payload the full structural audit a `.ssg` v2 kFull
//                               load runs before trusting a file: strict
//                               decode of every row (bounds, sortedness,
//                               range, self-loops), an exact cross-check of
//                               every sampled index entry against the real
//                               row positions, the endpoint-count total,
//                               and undirected symmetry via a reversed
//                               multiset hash (an asymmetric payload
//                               escapes detection with probability ~2^-64,
//                               the same odds the CsrBuilder replay check
//                               already accepts).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace ssmis {

class CompressedAdjacencyEncoder {
 public:
  // Prepares an encoder for exactly `n` rows. Throws std::invalid_argument
  // on negative n.
  explicit CompressedAdjacencyEncoder(Vertex n);

  // Pre-sizes the payload buffer. Every gap and id is < n, so
  //   sum_u [varint_len(deg_u) + deg_u * varint_len(n)]
  // computed from a degree pass is a hard upper bound — reserving it makes
  // payload growth realloc-free, which at n = 10^8 is the difference
  // between a ~1.2x and a ~2x construction peak (the doubling transient).
  void reserve(std::size_t payload_bytes) { payload_.reserve(payload_bytes); }

  // Appends the next row (vertex `rows_added()`): neighbors must be sorted,
  // duplicate-free, loop-free, and in [0, n) — the Graph invariant. Throws
  // std::invalid_argument on a violation and std::logic_error past row n-1.
  void add_row(std::span<const Vertex> row);

  [[nodiscard]] Vertex rows_added() const { return row_; }
  [[nodiscard]] std::int64_t endpoints() const { return adj_len_; }
  [[nodiscard]] std::size_t payload_bytes() const { return payload_.size(); }

  // Finishes the index and wraps the arrays in a compressed-storage Graph.
  // Throws std::logic_error unless exactly n rows were added.
  Graph finish() &&;

 private:
  Vertex n_ = 0;
  Vertex row_ = 0;
  std::int64_t adj_len_ = 0;
  std::vector<std::uint64_t> index_;
  std::vector<std::uint8_t> payload_;
};

// Full structural audit of a compressed payload (see header comment).
// Throws std::runtime_error describing the first violation found.
void validate_compressed_payload(std::int64_t n, std::int64_t adj_len,
                                 const std::uint64_t* index,
                                 const std::uint8_t* payload,
                                 std::size_t payload_bytes);

// The always-on subset every v2 load (trusted included) runs before any row
// is decoded: the sampled index is what seeks scan from, so it must start
// at 0, be monotone, stay inside the payload, and end exactly at its end.
// Throws std::runtime_error on violation.
void validate_compressed_index(std::int64_t n, const std::uint64_t* index,
                               std::size_t payload_bytes);

}  // namespace ssmis
