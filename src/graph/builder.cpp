#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace ssmis {

GraphBuilder::GraphBuilder(Vertex n) : n_(n) {
  if (n < 0) throw std::invalid_argument("GraphBuilder: negative vertex count");
}

void GraphBuilder::add_edge(Vertex u, Vertex v) {
  if (u < 0 || v < 0 || u >= n_ || v >= n_) {
    throw std::invalid_argument("GraphBuilder: edge (" + std::to_string(u) + "," +
                                std::to_string(v) + ") out of range [0," +
                                std::to_string(n_) + ")");
  }
  if (u == v) return;  // drop self-loops
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

Graph GraphBuilder::build_from(Vertex n, std::vector<Edge> edges) {
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  std::vector<std::int64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : edges) {
    ++offsets[static_cast<std::size_t>(u) + 1];
    ++offsets[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<Vertex> adj(static_cast<std::size_t>(offsets.back()));
  std::vector<std::int64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : edges) {
    adj[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = v;
    adj[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = u;
  }
  // Rows are already sorted because the edge list is sorted lexicographically
  // for the first endpoint; the second endpoint's rows need a sort.
  for (Vertex u = 0; u < n; ++u) {
    auto first = adj.begin() + offsets[static_cast<std::size_t>(u)];
    auto last = adj.begin() + offsets[static_cast<std::size_t>(u) + 1];
    std::sort(first, last);
  }
  return Graph(n, std::move(offsets), std::move(adj));
}

Graph GraphBuilder::build() && {
  return build_from(n_, std::move(edges_));
}

Graph GraphBuilder::build() const& {
  return build_from(n_, edges_);
}

}  // namespace ssmis
