// Immutable undirected graph in compressed sparse row (CSR) form.
//
// All processes, models, and verifiers operate on this type. Vertices are
// dense integers [0, n). Adjacency lists are sorted, deduplicated, and
// loop-free (enforced by the builders), so `has_edge` is a binary search and
// neighborhood iteration is cache-friendly.
//
// Storage model: a Graph is a cheap-to-copy immutable handle. The CSR arrays
// live either in heap vectors (builder output, `load_ssg`) or in an external
// read-only region such as an mmap'd `.ssg` file (`mmap_ssg`); a shared
// keep-alive handle owns the backing either way, so copies share storage
// instead of duplicating hundreds of megabytes at the 10^7-vertex scale.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace ssmis {

using Vertex = std::int32_t;
using Edge = std::pair<Vertex, Vertex>;

class Graph {
 public:
  // Empty graph (0 vertices). Useful as a placeholder; all queries are valid.
  Graph();

  // Builds from an arbitrary edge list: self-loops are dropped, duplicate and
  // reversed duplicates are merged, endpoints are validated against [0, n).
  // Throws std::invalid_argument on out-of-range endpoints or negative n.
  static Graph from_edges(Vertex n, std::span<const Edge> edges);
  static Graph from_edges(Vertex n, std::initializer_list<Edge> edges);

  // Zero-copy view over externally owned CSR arrays (the `.ssg` mmap loader).
  // `backing` keeps the arrays alive for the Graph's lifetime. The arrays
  // must already satisfy the class invariants — sorted deduplicated rows,
  // symmetric adjacency, no self-loops, monotone offsets with
  // offsets[0] == 0 and offsets[n] == adj_len; callers are trusted.
  static Graph from_external_csr(Vertex n, const std::int64_t* offsets,
                                 const Vertex* adj, std::size_t adj_len,
                                 std::shared_ptr<const void> backing);

  // Adopts already-valid CSR vectors (the `.ssg` owned-storage loader).
  // Same trust contract as from_external_csr.
  static Graph from_owned_csr(Vertex n, std::vector<std::int64_t> offsets,
                              std::vector<Vertex> adj) {
    return Graph(n, std::move(offsets), std::move(adj));
  }

  Vertex num_vertices() const { return n_; }
  std::int64_t num_edges() const { return static_cast<std::int64_t>(adj_size_) / 2; }

  // Sorted, duplicate-free open neighborhood of u.
  std::span<const Vertex> neighbors(Vertex u) const {
    return {adj_ + offsets_[static_cast<std::size_t>(u)],
            adj_ + offsets_[static_cast<std::size_t>(u) + 1]};
  }

  Vertex degree(Vertex u) const {
    return static_cast<Vertex>(offsets_[static_cast<std::size_t>(u) + 1] -
                               offsets_[static_cast<std::size_t>(u)]);
  }

  Vertex max_degree() const;
  double average_degree() const;

  // Binary search over the sorted adjacency list of the lower-degree endpoint.
  bool has_edge(Vertex u, Vertex v) const;

  // All edges (u < v), in increasing (u, v) order.
  std::vector<Edge> edge_list() const;

  // Raw CSR views (serialization and checksumming).
  std::span<const std::int64_t> offsets() const {
    return {offsets_, static_cast<std::size_t>(n_) + 1};
  }
  std::span<const Vertex> adjacency() const { return {adj_, adj_size_}; }

  // True when the CSR arrays live in an external region (e.g. an mmap'd
  // `.ssg` file) rather than heap vectors.
  bool is_mapped() const { return mapped_; }

  // Deep structural equality (n, offsets, adjacency).
  bool operator==(const Graph& other) const;

  // One-line human-readable summary, e.g. "Graph(n=100, m=250, maxdeg=9)".
  std::string summary() const;

 private:
  friend class GraphBuilder;
  friend class CsrBuilder;
  Graph(Vertex n, std::vector<std::int64_t> offsets, std::vector<Vertex> adj);

  // Owned-storage backing: the vectors a builder produced, parked behind the
  // shared keep-alive handle so copies of the Graph share them.
  struct Storage;

  static constexpr std::int64_t kEmptyOffsets[1] = {0};

  Vertex n_ = 0;
  const std::int64_t* offsets_ = kEmptyOffsets;  // n+1 entries
  const Vertex* adj_ = nullptr;                  // 2m entries, sorted per row
  std::size_t adj_size_ = 0;
  bool mapped_ = false;
  std::shared_ptr<const void> backing_;  // owns whatever offsets_/adj_ point into
};

}  // namespace ssmis
