// Immutable undirected graph handle over one of two storage modes.
//
// All processes, models, and verifiers operate on this type. Vertices are
// dense integers [0, n). Adjacency lists are sorted, deduplicated, and
// loop-free (enforced by the builders), so `has_edge` is a (logical) binary
// search and neighborhood iteration is cache-friendly.
//
// Storage model: a Graph is a cheap-to-copy immutable handle. Two layouts
// exist underneath it:
//
//   plain CSR    offsets[n+1] (i64) + adj[2m] (i32), in heap vectors
//                (builder output, `load_ssg`) or an external read-only
//                region such as an mmap'd `.ssg` v1 file (`mmap_ssg`);
//   compressed   varint/delta row codec (src/graph/varint.hpp): per-row
//                delta-coded neighbor gaps plus a sampled offset index
//                (one u64 per 64 rows) — the 10^8-vertex format, heap-owned
//                (`Graph::compress`, the CsrBuilder compress sink) or
//                mmap'd from an `.ssg` v2 file.
//
// A shared keep-alive handle owns the backing either way, so copies share
// storage instead of duplicating gigabytes at scale.
//
// Neighbor access and the decode path: `neighbors(u)` returns a zero-copy
// span for plain storage and THROWS std::logic_error for compressed storage
// (there is no contiguous row to point at) — code that must run on either
// layout uses one of the three decode-aware paths, all of which degrade to
// the raw span (zero overhead) on plain storage:
//
//   for_each_neighbor(u, f)    streaming decode, zero allocation, safe to
//                              nest; f may return bool (false = stop);
//   neighbors(u, scratch)      decodes into a caller-owned NeighborScratch
//                              and returns a span over it — for code that
//                              needs random access / std algorithms over
//                              the row (spans into a scratch die on its
//                              next use);
//   RowStream                  sequential sweep over rows 0..n-1 in O(total
//                              payload bytes) — full-graph passes must use
//                              this instead of n random seeks.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "graph/varint.hpp"
#include "support/narrow.hpp"

namespace ssmis {

using Vertex = std::int32_t;
using Edge = std::pair<Vertex, Vertex>;

// Caller-owned decode buffer for Graph::neighbors(u, scratch). Reused across
// calls (no allocation once grown to the max degree seen); one scratch per
// concurrent decoder — the engine keeps one per shard.
struct NeighborScratch {
  std::vector<Vertex> buf;
};

class Graph {
 public:
  // Empty graph (0 vertices). Useful as a placeholder; all queries are valid.
  Graph();

  // Builds from an arbitrary edge list: self-loops are dropped, duplicate and
  // reversed duplicates are merged, endpoints are validated against [0, n).
  // Throws std::invalid_argument on out-of-range endpoints or negative n.
  [[nodiscard]] static Graph from_edges(Vertex n, std::span<const Edge> edges);
  [[nodiscard]] static Graph from_edges(Vertex n, std::initializer_list<Edge> edges);

  // Zero-copy view over externally owned CSR arrays (the `.ssg` mmap loader).
  // `backing` keeps the arrays alive for the Graph's lifetime. The arrays
  // must already satisfy the class invariants — sorted deduplicated rows,
  // symmetric adjacency, no self-loops, monotone offsets with
  // offsets[0] == 0 and offsets[n] == adj_len; callers are trusted.
  [[nodiscard]] static Graph from_external_csr(Vertex n, const std::int64_t* offsets,
                                 const Vertex* adj, std::size_t adj_len,
                                 std::shared_ptr<const void> backing);

  // Adopts already-valid CSR vectors (the `.ssg` owned-storage loader).
  // Same trust contract as from_external_csr.
  [[nodiscard]] static Graph from_owned_csr(Vertex n, std::vector<std::int64_t> offsets,
                              std::vector<Vertex> adj) {
    return Graph(n, std::move(offsets), std::move(adj));
  }

  // Adopts an already-encoded compressed payload (the CsrBuilder compress
  // sink and the `.ssg` v2 owned loader). `index` must have
  // cadj::index_entries(n) entries sampled every cadj::kSuperblock rows with
  // the end-of-payload sentinel last; `adj_len` is the total endpoint count
  // (2m). Rows must satisfy the same structural invariants as CSR storage;
  // callers are trusted (the v2 kFull load validates before trusting).
  [[nodiscard]] static Graph from_compressed(Vertex n, std::int64_t adj_len,
                               std::vector<std::uint64_t> index,
                               std::vector<std::uint8_t> payload);

  // Zero-copy compressed view over an external region (the `.ssg` v2 mmap
  // loader). Same trust contract as from_compressed.
  [[nodiscard]] static Graph from_external_compressed(Vertex n, std::int64_t adj_len,
                                        const std::uint64_t* index,
                                        const std::uint8_t* payload,
                                        std::size_t payload_bytes,
                                        std::shared_ptr<const void> backing);

  // Transcodes any graph into (heap-owned) compressed storage / back into
  // plain CSR. `compress` on an already-compressed graph (and `decompress`
  // on a plain one) returns a storage-sharing copy.
  [[nodiscard]] static Graph compress(const Graph& g);
  [[nodiscard]] static Graph decompress(const Graph& g);

  [[nodiscard]] Vertex num_vertices() const { return n_; }
  [[nodiscard]] std::int64_t num_edges() const { return static_cast<std::int64_t>(adj_size_) / 2; }

  // Sorted, duplicate-free open neighborhood of u — plain storage only.
  // Throws std::logic_error on compressed storage: use for_each_neighbor,
  // neighbors(u, scratch), or RowStream there.
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex u) const {
    if (compressed_) fail_needs_decode();
    return {adj_ + offsets_[static_cast<std::size_t>(u)],
            adj_ + offsets_[static_cast<std::size_t>(u) + 1]};
  }

  // Decode-aware row view: the raw span on plain storage (scratch untouched,
  // inline — zero overhead over neighbors(u)), a decode into `scratch` on
  // compressed storage. The returned span is invalidated by the next use of
  // the same scratch.
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex u, NeighborScratch& scratch) const {
    if (!compressed_) {
      return {adj_ + offsets_[static_cast<std::size_t>(u)],
              adj_ + offsets_[static_cast<std::size_t>(u) + 1]};
    }
    return decode_row(u, scratch);
  }

  // Streams u's neighbors in ascending order through `f` — zero-allocation
  // on every storage mode. `f` returns void, or bool with false = stop.
  template <typename F>
  void for_each_neighbor(Vertex u, F&& f) const {
    if (!compressed_) {
      const Vertex* it = adj_ + offsets_[static_cast<std::size_t>(u)];
      const Vertex* end = adj_ + offsets_[static_cast<std::size_t>(u) + 1];
      for (; it != end; ++it) {
        if constexpr (std::is_void_v<std::invoke_result_t<F&, Vertex>>) {
          f(*it);
        } else {
          if (!f(*it)) return;
        }
      }
      return;
    }
    const std::uint8_t* p =
        cadj::seek_row(cpayload_, cpayload_bytes_, cindex_, n_, u);
    cadj::visit_row(p, cpayload_ + cpayload_bytes_, n_, std::forward<F>(f));
  }

  // Sequential whole-graph sweep: next() yields the rows of 0, 1, ..., n-1
  // in order, costing O(total payload bytes) overall on compressed storage
  // (vs O(n * superblock) for n random seeks). The returned span obeys the
  // same lifetime rule as neighbors(u, scratch).
  class RowStream {
   public:
    explicit RowStream(const Graph& g)
        : g_(&g),
          p_(g.compressed_ ? g.cpayload_ : nullptr),
          end_(g.compressed_ ? g.cpayload_ + g.cpayload_bytes_ : nullptr) {}

    // Row for vertex `row()`; advances to the next row.
    [[nodiscard]] std::span<const Vertex> next(NeighborScratch& scratch) {
      const Vertex u = row_++;
      if (!g_->compressed_) return g_->neighbors(u);
      cadj::decode_row_into(p_, end_, g_->n_, scratch.buf);
      return {scratch.buf.data(), scratch.buf.size()};
    }

    // Advances past the current row without materializing it (cheaper than
    // next() on compressed storage when the row's contents are not needed).
    void skip() {
      ++row_;
      if (g_->compressed_) cadj::skip_row(p_, end_, g_->n_);
    }

    [[nodiscard]] Vertex row() const { return row_; }

   private:
    const Graph* g_;
    const std::uint8_t* p_;
    const std::uint8_t* end_;
    Vertex row_ = 0;
  };

  [[nodiscard]] Vertex degree(Vertex u) const {
    if (compressed_) return compressed_degree(u);
    return narrow_cast<Vertex>(offsets_[static_cast<std::size_t>(u) + 1] -
                               offsets_[static_cast<std::size_t>(u)]);
  }

  [[nodiscard]] Vertex max_degree() const;
  [[nodiscard]] double average_degree() const;

  // All n degrees at once: O(n) reads on plain storage, one sequential
  // degree-header sweep (O(payload), not n superblock seeks) on compressed.
  // What degree-keyed algorithms (degeneracy peeling, degree-biased inits)
  // should call instead of n random degree(u) lookups.
  [[nodiscard]] std::vector<Vertex> degrees() const;

  // Membership test over the sorted adjacency of the lower-degree endpoint:
  // binary search on plain storage, early-exit decode on compressed.
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const;

  // All edges (u < v), in increasing (u, v) order.
  [[nodiscard]] std::vector<Edge> edge_list() const;

  // Raw CSR views (serialization and checksumming) — plain storage only;
  // std::logic_error on compressed storage (see compressed_index/payload).
  [[nodiscard]] std::span<const std::int64_t> offsets() const {
    if (compressed_) fail_needs_decode();
    return {offsets_, static_cast<std::size_t>(n_) + 1};
  }
  [[nodiscard]] std::span<const Vertex> adjacency() const {
    if (compressed_) fail_needs_decode();
    return {adj_, adj_size_};
  }

  // Raw codec views (the `.ssg` v2 writer) — compressed storage only;
  // std::logic_error otherwise.
  [[nodiscard]] std::span<const std::uint64_t> compressed_index() const;
  [[nodiscard]] std::span<const std::uint8_t> compressed_payload() const;

  // True when the arrays live in an external region (e.g. an mmap'd `.ssg`
  // file) rather than heap vectors.
  [[nodiscard]] bool is_mapped() const { return mapped_; }

  // True for the varint/delta compressed layout (either heap or mmap).
  [[nodiscard]] bool is_compressed() const { return compressed_; }

  // One-word storage-mode label: "owned", "mmap", "compressed", or
  // "compressed+mmap" — what the scale drivers print next to timings.
  [[nodiscard]] std::string storage_mode() const;

  // Deep structural equality (n, per-row adjacency) across any mix of
  // storage modes; same-layout comparisons short-circuit on the raw arrays.
  [[nodiscard]] bool operator==(const Graph& other) const;

  // One-line human-readable summary, e.g. "Graph(n=100, m=250, maxdeg=9)".
  [[nodiscard]] std::string summary() const;

 private:
  friend class GraphBuilder;
  friend class CsrBuilder;
  Graph(Vertex n, std::vector<std::int64_t> offsets, std::vector<Vertex> adj);

  [[noreturn]] static void fail_needs_decode();
  [[noreturn]] static void fail_not_compressed();
  Vertex compressed_degree(Vertex u) const;
  std::span<const Vertex> decode_row(Vertex u, NeighborScratch& scratch) const;

  // Owned-storage backings, parked behind the shared keep-alive handle so
  // copies of the Graph share them.
  struct Storage;
  struct CompressedStorage;

  static constexpr std::int64_t kEmptyOffsets[1] = {0};

  Vertex n_ = 0;
  const std::int64_t* offsets_ = kEmptyOffsets;  // n+1 entries (plain mode)
  const Vertex* adj_ = nullptr;                  // 2m entries, sorted per row
  std::size_t adj_size_ = 0;                     // total endpoints (2m), any mode
  bool mapped_ = false;
  bool compressed_ = false;
  const std::uint64_t* cindex_ = nullptr;   // sampled row offsets (compressed)
  const std::uint8_t* cpayload_ = nullptr;  // varint/delta row payload
  std::size_t cpayload_bytes_ = 0;
  std::shared_ptr<const void> backing_;  // owns whatever the pointers point into
};

}  // namespace ssmis
