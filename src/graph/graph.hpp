// Immutable undirected graph in compressed sparse row (CSR) form.
//
// All processes, models, and verifiers operate on this type. Vertices are
// dense integers [0, n). Adjacency lists are sorted, deduplicated, and
// loop-free (enforced by GraphBuilder), so `has_edge` is a binary search and
// neighborhood iteration is cache-friendly.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace ssmis {

using Vertex = std::int32_t;
using Edge = std::pair<Vertex, Vertex>;

class Graph {
 public:
  // Empty graph (0 vertices). Useful as a placeholder; all queries are valid.
  Graph();

  // Builds from an arbitrary edge list: self-loops are dropped, duplicate and
  // reversed duplicates are merged, endpoints are validated against [0, n).
  // Throws std::invalid_argument on out-of-range endpoints or negative n.
  static Graph from_edges(Vertex n, std::span<const Edge> edges);
  static Graph from_edges(Vertex n, std::initializer_list<Edge> edges);

  Vertex num_vertices() const { return n_; }
  std::int64_t num_edges() const { return static_cast<std::int64_t>(adj_.size()) / 2; }

  // Sorted, duplicate-free open neighborhood of u.
  std::span<const Vertex> neighbors(Vertex u) const {
    return {adj_.data() + offsets_[static_cast<std::size_t>(u)],
            adj_.data() + offsets_[static_cast<std::size_t>(u) + 1]};
  }

  Vertex degree(Vertex u) const {
    return static_cast<Vertex>(offsets_[static_cast<std::size_t>(u) + 1] -
                               offsets_[static_cast<std::size_t>(u)]);
  }

  Vertex max_degree() const;
  double average_degree() const;

  // Binary search over the sorted adjacency list of the lower-degree endpoint.
  bool has_edge(Vertex u, Vertex v) const;

  // All edges (u < v), in increasing (u, v) order.
  std::vector<Edge> edge_list() const;

  bool operator==(const Graph& other) const {
    return n_ == other.n_ && offsets_ == other.offsets_ && adj_ == other.adj_;
  }

  // One-line human-readable summary, e.g. "Graph(n=100, m=250, maxdeg=9)".
  std::string summary() const;

 private:
  friend class GraphBuilder;
  Graph(Vertex n, std::vector<std::int64_t> offsets, std::vector<Vertex> adj);

  Vertex n_ = 0;
  std::vector<std::int64_t> offsets_;  // size n+1
  std::vector<Vertex> adj_;            // size 2m, sorted within each row
};

}  // namespace ssmis
