#include "graph/compressed.hpp"

#include <stdexcept>
#include <string>

#include "rng/splitmix64.hpp"
#include "support/narrow.hpp"

namespace ssmis {

namespace {

[[noreturn]] void fail_validate(const std::string& what) {
  throw std::runtime_error("compressed adjacency: " + what);
}

std::uint64_t directed_hash(Vertex u, Vertex v) {
  return splitmix64_mix(
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
}

}  // namespace

CompressedAdjacencyEncoder::CompressedAdjacencyEncoder(Vertex n) : n_(n) {
  if (n < 0)
    throw std::invalid_argument("CompressedAdjacencyEncoder: negative vertex count");
  index_.reserve(cadj::index_entries(n));
}

void CompressedAdjacencyEncoder::add_row(std::span<const Vertex> row) {
  if (row_ >= n_)
    throw std::logic_error("CompressedAdjacencyEncoder: more rows than vertices");
  if (row_ % cadj::kSuperblock == 0)
    index_.push_back(static_cast<std::uint64_t>(payload_.size()));
  cadj::append_varint(payload_, narrow_cast<std::uint32_t>(row.size()));
  Vertex prev = -1;
  for (const Vertex v : row) {
    if (v < 0 || v >= n_)
      throw std::invalid_argument(
          "CompressedAdjacencyEncoder: neighbor id out of range");
    if (v == row_)
      throw std::invalid_argument("CompressedAdjacencyEncoder: self-loop");
    if (v <= prev)
      throw std::invalid_argument(
          "CompressedAdjacencyEncoder: row not sorted/deduplicated");
    cadj::append_varint(payload_, narrow_cast<std::uint32_t>(
                                      prev < 0 ? v : v - prev));
    prev = v;
  }
  adj_len_ += static_cast<std::int64_t>(row.size());
  ++row_;
}

Graph CompressedAdjacencyEncoder::finish() && {
  if (row_ != n_)
    throw std::logic_error("CompressedAdjacencyEncoder: finish before row n-1");
  index_.push_back(static_cast<std::uint64_t>(payload_.size()));
  // Return reservation slack (the reserve() bound over-estimates clustered
  // graphs) when it is worth a realloc — same idiom as CsrBuilder::finalize.
  if (payload_.capacity() - payload_.size() > payload_.size() / 8)
    payload_.shrink_to_fit();
  return Graph::from_compressed(n_, adj_len_, std::move(index_),
                                std::move(payload_));
}

void validate_compressed_index(std::int64_t n, const std::uint64_t* index,
                               std::size_t payload_bytes) {
  const std::size_t entries = cadj::index_entries(n);
  if (index[0] != 0) fail_validate("corrupt index (first entry != 0)");
  for (std::size_t i = 0; i + 1 < entries; ++i)
    if (index[i] > index[i + 1]) fail_validate("corrupt index (not monotone)");
  if (index[entries - 1] != payload_bytes)
    fail_validate("index/offset mismatch (last entry != payload size)");
}

void validate_compressed_payload(std::int64_t n, std::int64_t adj_len,
                                 const std::uint64_t* index,
                                 const std::uint8_t* payload,
                                 std::size_t payload_bytes) {
  validate_compressed_index(n, index, payload_bytes);
  // One strict sequential decode of every row. visit_row already rejects
  // bounds/varint/duplicate/range corruption; this pass adds self-loops,
  // the per-superblock index cross-check, the endpoint total, and the
  // directed-vs-reversed multiset hash (symmetry).
  const std::uint8_t* p = payload;
  const std::uint8_t* end = payload + payload_bytes;
  std::int64_t endpoints = 0;
  std::uint64_t fwd = 0, rev = 0;
  for (std::int64_t u = 0; u < n; ++u) {
    if (u % cadj::kSuperblock == 0 &&
        static_cast<std::uint64_t>(p - payload) !=
            index[static_cast<std::size_t>(u / cadj::kSuperblock)])
      fail_validate("index/offset mismatch (entry does not point at its row)");
    cadj::visit_row(p, end, n, [&](Vertex v) {
      if (v == u) fail_validate("corrupt row (self-loop)");
      ++endpoints;
      fwd += directed_hash(narrow_cast<Vertex>(u), v);
      rev += directed_hash(v, narrow_cast<Vertex>(u));
    });
  }
  if (p != end)
    fail_validate("oversized payload (trailing bytes after the last row)");
  if (endpoints != adj_len)
    fail_validate("corrupt payload (endpoint count != header adj_len)");
  if (fwd != rev)
    fail_validate("corrupt adjacency (rows are not symmetric)");
}

Graph Graph::compress(const Graph& g) {
  if (g.compressed_) return g;
  const Vertex n = g.num_vertices();
  CompressedAdjacencyEncoder enc(n);
  // Same exact-bound reservation as the CsrBuilder sink (degrees are O(1)
  // reads off the plain offsets here).
  const std::size_t id_len =
      cadj::varint_len(n > 0 ? narrow_cast<std::uint32_t>(n) : 0u);
  std::size_t bound = 0;
  for (Vertex u = 0; u < n; ++u) {
    const auto d = narrow_cast<std::uint32_t>(g.degree(u));
    bound += cadj::varint_len(d) + static_cast<std::size_t>(d) * id_len;
  }
  enc.reserve(bound);
  NeighborScratch scratch;
  RowStream rows(g);
  for (Vertex u = 0; u < n; ++u) enc.add_row(rows.next(scratch));
  return std::move(enc).finish();
}

Graph Graph::decompress(const Graph& g) {
  if (!g.compressed_) return g;
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(g.n_) + 1, 0);
  std::vector<Vertex> adj;
  adj.reserve(g.adj_size_);
  NeighborScratch scratch;
  RowStream rows(g);
  for (Vertex u = 0; u < g.n_; ++u) {
    const auto row = rows.next(scratch);
    adj.insert(adj.end(), row.begin(), row.end());
    offsets[static_cast<std::size_t>(u) + 1] =
        static_cast<std::int64_t>(adj.size());
  }
  return Graph::from_owned_csr(g.n_, std::move(offsets), std::move(adj));
}

}  // namespace ssmis
