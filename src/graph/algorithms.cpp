#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "graph/builder.hpp"
#include "support/narrow.hpp"

namespace ssmis {

std::vector<std::int64_t> bfs_distances(const Graph& g, Vertex source) {
  if (source < 0 || source >= g.num_vertices())
    throw std::out_of_range("bfs_distances: source out of range");
  std::vector<std::int64_t> dist(static_cast<std::size_t>(g.num_vertices()), -1);
  std::queue<Vertex> queue;
  dist[static_cast<std::size_t>(source)] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const Vertex u = queue.front();
    queue.pop();
    g.for_each_neighbor(u, [&](Vertex v) {
      if (dist[static_cast<std::size_t>(v)] < 0) {
        dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
        queue.push(v);
      }
    });
  }
  return dist;
}

std::vector<Vertex> connected_components(const Graph& g) {
  const Vertex n = g.num_vertices();
  std::vector<Vertex> comp(static_cast<std::size_t>(n), -1);
  Vertex next_id = 0;
  std::vector<Vertex> stack;
  for (Vertex s = 0; s < n; ++s) {
    if (comp[static_cast<std::size_t>(s)] >= 0) continue;
    comp[static_cast<std::size_t>(s)] = next_id;
    stack.push_back(s);
    while (!stack.empty()) {
      const Vertex u = stack.back();
      stack.pop_back();
      g.for_each_neighbor(u, [&](Vertex v) {
        if (comp[static_cast<std::size_t>(v)] < 0) {
          comp[static_cast<std::size_t>(v)] = next_id;
          stack.push_back(v);
        }
      });
    }
    ++next_id;
  }
  return comp;
}

Vertex num_components(const Graph& g) {
  const auto comp = connected_components(g);
  Vertex best = 0;
  for (Vertex c : comp) best = std::max(best, static_cast<Vertex>(c + 1));
  return best;
}

std::optional<std::int64_t> diameter(const Graph& g) {
  const Vertex n = g.num_vertices();
  if (n <= 1) return 0;
  std::int64_t best = 0;
  for (Vertex s = 0; s < n; ++s) {
    const auto dist = bfs_distances(g, s);
    for (std::int64_t d : dist) {
      if (d < 0) return std::nullopt;
      best = std::max(best, d);
    }
  }
  return best;
}

bool has_diameter_at_most_2(const Graph& g) {
  const Vertex n = g.num_vertices();
  if (n <= 1) return true;
  // Mark-and-scan: for each u, mark N+(u); every other vertex v must either
  // be marked (distance <= 1) or have a marked neighbor (distance 2).
  std::vector<char> marked(static_cast<std::size_t>(n), 0);
  for (Vertex u = 0; u < n; ++u) {
    marked[static_cast<std::size_t>(u)] = 1;
    g.for_each_neighbor(u, [&](Vertex w) { marked[static_cast<std::size_t>(w)] = 1; });
    for (Vertex v = 0; v < n; ++v) {
      if (marked[static_cast<std::size_t>(v)]) continue;
      bool ok = false;
      g.for_each_neighbor(v, [&](Vertex w) {
        if (marked[static_cast<std::size_t>(w)]) {
          ok = true;
          return false;
        }
        return true;
      });
      if (!ok) return false;
    }
    marked[static_cast<std::size_t>(u)] = 0;
    g.for_each_neighbor(u, [&](Vertex w) { marked[static_cast<std::size_t>(w)] = 0; });
  }
  return true;
}

bool is_tree(const Graph& g) {
  return g.num_vertices() >= 1 && g.num_edges() == g.num_vertices() - 1 &&
         num_components(g) == 1;
}

bool is_forest(const Graph& g) {
  return g.num_edges() == g.num_vertices() - num_components(g);
}

DegeneracyResult degeneracy(const Graph& g) {
  const Vertex n = g.num_vertices();
  DegeneracyResult result;
  result.order.reserve(static_cast<std::size_t>(n));
  std::vector<Vertex> deg = g.degrees();  // one sweep, any storage mode
  Vertex max_deg = 0;
  for (Vertex u = 0; u < n; ++u)
    max_deg = std::max(max_deg, deg[static_cast<std::size_t>(u)]);
  // Bucket queue keyed by current degree.
  std::vector<std::vector<Vertex>> buckets(static_cast<std::size_t>(max_deg) + 1);
  for (Vertex u = 0; u < n; ++u) buckets[static_cast<std::size_t>(deg[static_cast<std::size_t>(u)])].push_back(u);
  std::vector<char> removed(static_cast<std::size_t>(n), 0);
  // Invariant: no non-removed vertex has a current degree below `cursor`.
  // Pushes after a degree decrement lower `cursor` accordingly; entries with
  // outdated degrees are skipped as stale.
  Vertex cursor = 0;
  Vertex processed = 0;
  while (processed < n) {
    while (buckets[static_cast<std::size_t>(cursor)].empty()) ++cursor;
    auto& bucket = buckets[static_cast<std::size_t>(cursor)];
    const Vertex u = bucket.back();
    bucket.pop_back();
    if (removed[static_cast<std::size_t>(u)] ||
        deg[static_cast<std::size_t>(u)] != cursor) {
      continue;  // stale entry
    }
    removed[static_cast<std::size_t>(u)] = 1;
    result.order.push_back(u);
    result.degeneracy = std::max(result.degeneracy, cursor);
    ++processed;
    g.for_each_neighbor(u, [&](Vertex v) {
      if (removed[static_cast<std::size_t>(v)]) return;
      const Vertex nd = --deg[static_cast<std::size_t>(v)];
      buckets[static_cast<std::size_t>(nd)].push_back(v);
      cursor = std::min(cursor, nd);
    });
  }
  return result;
}

ArboricityBounds arboricity_bounds(const Graph& g) {
  const Vertex d = degeneracy(g).degeneracy;
  ArboricityBounds bounds;
  bounds.upper = d;  // greedy forest partition along a degeneracy ordering
  bounds.lower = static_cast<Vertex>((d + 1) / 2);
  if (g.num_edges() > 0) bounds.lower = std::max(bounds.lower, Vertex{1});
  return bounds;
}

Vertex common_neighbors(const Graph& g, Vertex u, Vertex v) {
  NeighborScratch su, sv;
  auto a = g.neighbors(u, su);
  auto b = g.neighbors(v, sv);
  Vertex count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

Vertex max_common_neighbors(const Graph& g) {
  const Vertex n = g.num_vertices();
  // Count wedges: for each center w, every pair of neighbors gains one
  // common neighbor. Quadratic in degree but linear in wedge count, which is
  // what P5 bounds anyway. We cap the per-pair map with a flat matrix for
  // small n and a hash-free two-pass for large n.
  Vertex best = 0;
  std::vector<Vertex> counter(static_cast<std::size_t>(n), 0);
  NeighborScratch su;
  for (Vertex u = 0; u < n; ++u) {
    // counter[v] = |N(u) ∩ N(v)| computed by scanning two-hop paths. The
    // outer row sits in a scratch buffer so the inner decode cannot
    // invalidate it.
    std::vector<Vertex> touched;
    for (Vertex w : g.neighbors(u, su)) {
      g.for_each_neighbor(w, [&](Vertex v) {
        if (v <= u) return;  // count each unordered pair once
        if (counter[static_cast<std::size_t>(v)] == 0) touched.push_back(v);
        ++counter[static_cast<std::size_t>(v)];
      });
    }
    for (Vertex v : touched) {
      best = std::max(best, counter[static_cast<std::size_t>(v)]);
      counter[static_cast<std::size_t>(v)] = 0;
    }
  }
  return best;
}

std::int64_t triangle_count(const Graph& g) {
  std::int64_t triangles = 0;
  NeighborScratch su, sv;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    // The outer row doubles as merge operand `a`; `b` decodes into its own
    // scratch, so `a` stays valid across the inner merges.
    const auto a = g.neighbors(u, su);
    for (Vertex v : a) {
      if (v <= u) continue;
      // Count w > v adjacent to both u and v.
      auto b = g.neighbors(v, sv);
      std::size_t i = 0, j = 0;
      while (i < a.size() && j < b.size()) {
        if (a[i] == b[j]) {
          if (a[i] > v) ++triangles;
          ++i;
          ++j;
        } else if (a[i] < b[j]) {
          ++i;
        } else {
          ++j;
        }
      }
    }
  }
  return triangles;
}

InducedSubgraph induced_subgraph(const Graph& g, const std::vector<Vertex>& keep) {
  std::vector<Vertex> old_to_new(static_cast<std::size_t>(g.num_vertices()), -1);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    const Vertex u = keep[i];
    if (u < 0 || u >= g.num_vertices())
      throw std::out_of_range("induced_subgraph: vertex out of range");
    if (old_to_new[static_cast<std::size_t>(u)] >= 0)
      throw std::invalid_argument("induced_subgraph: duplicate vertex in keep");
    old_to_new[static_cast<std::size_t>(u)] = static_cast<Vertex>(i);
  }
  GraphBuilder b(narrow_cast<Vertex>(keep.size()));
  for (Vertex u : keep) {
    g.for_each_neighbor(u, [&](Vertex v) {
      const Vertex nv = old_to_new[static_cast<std::size_t>(v)];
      const Vertex nu = old_to_new[static_cast<std::size_t>(u)];
      if (nv >= 0 && nu < nv) b.add_edge(nu, nv);
    });
  }
  InducedSubgraph result{std::move(b).build(), keep};
  return result;
}

Graph complement(const Graph& g) {
  const Vertex n = g.num_vertices();
  if (n > 4096) throw std::invalid_argument("complement: n too large (O(n^2) result)");
  GraphBuilder b(n);
  NeighborScratch scratch;
  for (Vertex u = 0; u < n; ++u) {
    auto nbrs = g.neighbors(u, scratch);
    std::size_t i = 0;
    for (Vertex v = u + 1; v < n; ++v) {
      while (i < nbrs.size() && nbrs[i] < v) ++i;
      if (i < nbrs.size() && nbrs[i] == v) continue;
      b.add_edge(u, v);
    }
  }
  return std::move(b).build();
}

std::optional<std::vector<char>> bipartition(const Graph& g) {
  const Vertex n = g.num_vertices();
  std::vector<char> color(static_cast<std::size_t>(n), -1);
  std::vector<Vertex> queue;
  for (Vertex s = 0; s < n; ++s) {
    if (color[static_cast<std::size_t>(s)] >= 0) continue;
    color[static_cast<std::size_t>(s)] = 0;
    queue.assign(1, s);
    while (!queue.empty()) {
      const Vertex u = queue.back();
      queue.pop_back();
      bool odd_cycle = false;
      g.for_each_neighbor(u, [&](Vertex v) {
        if (color[static_cast<std::size_t>(v)] < 0) {
          color[static_cast<std::size_t>(v)] =
              static_cast<char>(1 - color[static_cast<std::size_t>(u)]);
          queue.push_back(v);
        } else if (color[static_cast<std::size_t>(v)] ==
                   color[static_cast<std::size_t>(u)]) {
          odd_cycle = true;
          return false;
        }
        return true;
      });
      if (odd_cycle) return std::nullopt;
    }
  }
  return color;
}

bool is_bipartite(const Graph& g) { return bipartition(g).has_value(); }

std::vector<Vertex> core_numbers(const Graph& g) {
  // Reuse the degeneracy peeling order: the core number of a vertex is the
  // maximum min-degree seen up to (and including) its removal.
  const auto result = degeneracy(g);
  std::vector<Vertex> core(static_cast<std::size_t>(g.num_vertices()), 0);
  // Recompute peel degrees along the order.
  std::vector<Vertex> deg = g.degrees();
  std::vector<char> removed(static_cast<std::size_t>(g.num_vertices()), 0);
  Vertex running_max = 0;
  for (Vertex u : result.order) {
    running_max = std::max(running_max, deg[static_cast<std::size_t>(u)]);
    core[static_cast<std::size_t>(u)] = running_max;
    removed[static_cast<std::size_t>(u)] = 1;
    g.for_each_neighbor(u, [&](Vertex v) {
      if (!removed[static_cast<std::size_t>(v)]) --deg[static_cast<std::size_t>(v)];
    });
  }
  return core;
}

namespace {

// Branch-and-bound over "undecided" vertex sets. `mode` selects the
// objective: maximize an independent set, or minimize a *maximal* one.
struct MisSearch {
  const Graph* g;
  std::vector<char> in_set;     // current independent set
  std::vector<char> excluded;   // vertices decided out
  std::vector<Vertex> best;
  bool minimize_maximal = false;

  Vertex pick_undecided_max_degree() const {
    Vertex best_v = -1;
    Vertex best_deg = -1;
    for (Vertex u = 0; u < g->num_vertices(); ++u) {
      const auto idx = static_cast<std::size_t>(u);
      if (in_set[idx] || excluded[idx]) continue;
      Vertex live = 0;
      g->for_each_neighbor(u, [&](Vertex v) {
        const auto j = static_cast<std::size_t>(v);
        if (!in_set[j] && !excluded[j]) ++live;
      });
      if (live > best_deg) {
        best_deg = live;
        best_v = u;
      }
    }
    return best_v;
  }

  std::vector<Vertex> current_members() const {
    std::vector<Vertex> out;
    for (Vertex u = 0; u < g->num_vertices(); ++u)
      if (in_set[static_cast<std::size_t>(u)]) out.push_back(u);
    return out;
  }

  // Is the current set maximal? (Every excluded/undecided vertex must have a
  // member neighbor; used by the minimize branch when no undecided remain.)
  bool current_is_maximal() const {
    for (Vertex u = 0; u < g->num_vertices(); ++u) {
      if (in_set[static_cast<std::size_t>(u)]) continue;
      bool dominated = false;
      g->for_each_neighbor(u, [&](Vertex v) {
        if (in_set[static_cast<std::size_t>(v)]) {
          dominated = true;
          return false;
        }
        return true;
      });
      if (!dominated) return false;
    }
    return true;
  }

  void search(Vertex set_size, Vertex undecided) {
    if (!minimize_maximal) {
      // Bound: even taking every undecided vertex cannot beat the best.
      if (set_size + undecided <= narrow_cast<Vertex>(best.size())) return;
    } else {
      // Bound: the set can only grow; prune when already >= best.
      if (!best.empty() && set_size >= narrow_cast<Vertex>(best.size())) return;
    }
    const Vertex u = pick_undecided_max_degree();
    if (u < 0) {
      if (!minimize_maximal) {
        if (set_size > narrow_cast<Vertex>(best.size())) best = current_members();
      } else if (current_is_maximal()) {
        if (best.empty() || set_size < narrow_cast<Vertex>(best.size()))
          best = current_members();
      }
      return;
    }
    const auto idx = static_cast<std::size_t>(u);
    // Branch 1: take u (exclude its live neighbors).
    std::vector<Vertex> newly_excluded;
    in_set[idx] = 1;
    g->for_each_neighbor(u, [&](Vertex v) {
      const auto j = static_cast<std::size_t>(v);
      if (!excluded[j] && !in_set[j]) {
        excluded[j] = 1;
        newly_excluded.push_back(v);
      }
    });
    search(set_size + 1,
           undecided - 1 - narrow_cast<Vertex>(newly_excluded.size()));
    in_set[idx] = 0;
    for (Vertex v : newly_excluded) excluded[static_cast<std::size_t>(v)] = 0;
    // Branch 2: exclude u.
    excluded[idx] = 1;
    search(set_size, undecided - 1);
    excluded[idx] = 0;
  }
};

}  // namespace

std::vector<Vertex> exact_max_independent_set(const Graph& g, Vertex max_n) {
  if (g.num_vertices() > max_n)
    throw std::invalid_argument("exact_max_independent_set: graph too large");
  MisSearch search;
  search.g = &g;
  search.in_set.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  search.excluded = search.in_set;
  search.search(0, g.num_vertices());
  return search.best;
}

Vertex independent_domination_number(const Graph& g, Vertex max_n) {
  if (g.num_vertices() > max_n)
    throw std::invalid_argument("independent_domination_number: graph too large");
  if (g.num_vertices() == 0) return 0;
  MisSearch search;
  search.g = &g;
  search.minimize_maximal = true;
  search.in_set.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  search.excluded = search.in_set;
  search.search(0, g.num_vertices());
  return narrow_cast<Vertex>(search.best.size());
}

}  // namespace ssmis
