// Graph family generators: every workload named by the paper plus the
// geometric family used by the sensor-network example.
//
// All randomized generators take an explicit seed and are deterministic given
// (parameters, seed).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace ssmis {
namespace gen {

// --- Deterministic families -------------------------------------------------

// Complete graph K_n (Theorem 8 workload).
Graph complete(Vertex n);

// Path P_n (arboricity 1).
Graph path(Vertex n);

// Cycle C_n.
Graph cycle(Vertex n);

// Star K_{1,n-1}: vertex 0 is the hub. Diameter 2 for n >= 3 (a useful
// logarithmic-switch workload that is *not* dense).
Graph star(Vertex n);

// Complete bipartite K_{a,b}; sides [0,a) and [a,a+b).
Graph complete_bipartite(Vertex a, Vertex b);

// `count` disjoint copies of K_size (Remark 9 workload: sqrt(n) cliques of
// size sqrt(n)).
Graph disjoint_cliques(Vertex count, Vertex size);

// rows x cols grid (max degree 4).
Graph grid(Vertex rows, Vertex cols);

// rows x cols torus (4-regular for rows, cols >= 3).
Graph torus(Vertex rows, Vertex cols);

// d-dimensional hypercube: 2^dim vertices, dim-regular.
Graph hypercube(int dim);

// Complete binary tree on n vertices (heap indexing).
Graph binary_tree(Vertex n);

// Caterpillar: a path of `spine` vertices, each with `legs` pendant leaves.
Graph caterpillar(Vertex spine, Vertex legs);

// Two cliques of size k joined by a single edge ("barbell"): a worst case
// for symmetry breaking across the bridge.
Graph barbell(Vertex k);

// --- Randomized families ----------------------------------------------------

// Erdos-Renyi G(n,p), sampled edge-by-edge with geometric skips: O(n + m).
Graph gnp(Vertex n, double p, std::uint64_t seed);

// G(n,p) built straight into compressed adjacency storage (the 10^8-vertex
// path): identical distribution and seed semantics to gnp — the result is
// structurally equal to Graph::compress(gnp(n, p, seed)) — but construction
// peaks at ~the compressed size instead of the plain CSR (the skip-sampling
// stream replays once per CsrBuilder chunk; see from_source_compressed).
// chunk_endpoints <= 0 selects the builder default.
Graph gnp_compressed(Vertex n, double p, std::uint64_t seed,
                     std::int64_t chunk_endpoints = 0);

// G(n,m): exactly m distinct uniform edges (rejection sampling).
Graph gnm(Vertex n, std::int64_t m, std::uint64_t seed);

// Uniform random labeled tree via a random Pruefer sequence.
Graph random_tree(Vertex n, std::uint64_t seed);

// Random recursive tree: vertex i attaches to a uniform vertex < i.
Graph random_recursive_tree(Vertex n, std::uint64_t seed);

// Union of k independent uniform random trees on the same vertex set:
// arboricity <= k (Theorem 11 workload beyond plain trees).
Graph forest_union(Vertex n, int k, std::uint64_t seed);

// Random d-regular-ish multigraph via the configuration model, with loops
// and multi-edges dropped; max degree <= d. Requires n*d even.
Graph random_regular(Vertex n, int d, std::uint64_t seed);

// Random geometric graph: n uniform points in the unit square, edge iff
// distance <= radius. Grid-bucketed: O(n + m) expected.
Graph random_geometric(Vertex n, double radius, std::uint64_t seed);

// Watts-Strogatz small world: ring lattice with k nearest neighbors per
// side, each edge rewired with probability beta.
Graph small_world(Vertex n, int k, double beta, std::uint64_t seed);

}  // namespace gen
}  // namespace ssmis
