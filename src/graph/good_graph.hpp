// (n,p)-good graphs: Definition 17 of the paper.
//
// The analysis of the 2-state and 3-color processes on G(n,p) works for any
// graph satisfying properties P1-P6; Lemma 18 shows a G(n,p) sample is good
// w.h.p. This module checks the properties:
//
//   P1: every induced subgraph has average degree <= max{8 p |S|, 4 ln n}.
//   P2: every S with |S| >= 40 ln(n)/p has at most |S|/2 outside vertices
//       with fewer than p|S|/2 neighbors in S.
//   P3: for disjoint S, T, I with |S| >= 2|T| and (S ∪ T) ∩ N(I) = ∅:
//       |N(T) \ N+(S ∪ I)| <= |N(S) \ N+(I)| + 8 ln^2(n)/p.
//   P4: for disjoint S, T with |S| >= |T|, |T| <= ln(n)/p:
//       |E(S,T)| <= 6 |S| ln n.
//   P5: no two vertices have more than max{6 n p^2, 4 ln n} common neighbors.
//   P6: if p >= 2 sqrt(ln(n)/n) then diam(G) <= 2.
//
// P5 and P6 are checked exactly (polynomial). P1-P4 quantify over all vertex
// subsets; we provide (a) exhaustive checks for small n (tests), and
// (b) randomized refutation search for larger n (the Lemma 18 experiment):
// sampled subsets drawn from adversarially biased distributions (degree-
// ordered prefixes, neighborhoods, uniform) try to violate the property.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace ssmis {

struct GoodGraphReport {
  bool p1 = true;
  bool p2 = true;
  bool p3 = true;
  bool p4 = true;
  bool p5 = true;
  bool p6 = true;  // vacuously true when p < 2 sqrt(ln n / n)
  bool p6_applicable = false;

  bool all() const { return p1 && p2 && p3 && p4 && p5 && p6; }
  std::string to_string() const;
};

// Exhaustive verification over all subsets; exponential, intended for
// n <= ~16 in tests.
GoodGraphReport check_good_exhaustive(const Graph& g, double p);

// Randomized refutation search with `samples` candidate subsets per
// property. A returned `true` for P1-P4 means "no violation found".
GoodGraphReport check_good_sampled(const Graph& g, double p, int samples,
                                   std::uint64_t seed);

// Individual exact predicates (used by both drivers and by tests).
bool check_p5(const Graph& g, double p);
bool check_p6(const Graph& g, double p);
bool p6_applies(Vertex n, double p);

// P1 predicate for one subset.
bool p1_holds_for_subset(const Graph& g, double p, const std::vector<Vertex>& subset);
// P2 predicate for one subset.
bool p2_holds_for_subset(const Graph& g, double p, const std::vector<Vertex>& subset);
// P4 predicate for one (S, T) pair.
bool p4_holds_for_pair(const Graph& g, const std::vector<Vertex>& s,
                       const std::vector<Vertex>& t);
// P3 predicate for one (S, T, I) triplet; `precondition_met` is set to false
// (and the check returns true) when the triplet does not satisfy the
// property's preconditions.
bool p3_holds_for_triplet(const Graph& g, double p, const std::vector<Vertex>& s,
                          const std::vector<Vertex>& t, const std::vector<Vertex>& i,
                          bool* precondition_met);

}  // namespace ssmis
