// Mutable edge accumulator producing immutable CSR Graphs.
//
// Generators add edges freely (duplicates and both orientations are fine);
// build() sorts, deduplicates, and validates once. Peak memory is ~3x the
// final CSR (the buffered edge list is 16 bytes/edge) — fine for the
// point-set generators and tests that use it; large-graph generators emit
// through the streaming CsrBuilder (graph/csr_builder.hpp) instead.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace ssmis {

class GraphBuilder {
 public:
  // Throws std::invalid_argument if n < 0.
  explicit GraphBuilder(Vertex n);

  Vertex num_vertices() const { return n_; }

  // Records an undirected edge {u, v}. Self-loops are silently dropped
  // (the MIS processes are defined on simple graphs). Throws
  // std::invalid_argument on out-of-range endpoints.
  void add_edge(Vertex u, Vertex v);

  std::size_t num_recorded_edges() const { return edges_.size(); }

  // Consumes the builder. Duplicate edges collapse to one.
  Graph build() &&;
  // Non-destructive build for callers that keep adding edges afterwards.
  Graph build() const&;

 private:
  static Graph build_from(Vertex n, std::vector<Edge> edges);

  Vertex n_;
  std::vector<Edge> edges_;  // stored with u < v
};

}  // namespace ssmis
