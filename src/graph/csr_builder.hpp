// Streaming CSR construction: builds a Graph directly from an edge stream in
// two passes, with no buffered edge list.
//
// The classic GraphBuilder materializes a std::vector<Edge> (16 bytes/edge),
// sorts it, and only then lays out the CSR — roughly 3x the final footprint
// at peak. CsrBuilder instead asks the caller to *replay* its edge stream
// twice:
//
//   pass 1  counts degrees (offsets array),
//   pass 2  places endpoints through a cursor folded into the offsets array,
//
// then sorts and deduplicates each row in place. Peak memory is the final
// CSR (8 bytes/vertex offsets + 4 bytes/endpoint adjacency) plus the
// duplicate slack of the stream itself — for duplicate-free generators like
// G(n,p) skip-sampling that is exactly the final footprint (~1.0x; <= ~1.3x
// with the transient slack of dup-emitting sources like the configuration
// model), which is what makes 10^7-vertex graphs constructible in CI memory.
//
// The edge source must be *replayable*: invoking it twice must emit the
// identical multiset of edges. Deterministic generators satisfy this for
// free by re-seeding their RNG per pass. Self-loops are dropped and
// endpoints validated exactly like GraphBuilder, and the resulting Graph is
// byte-identical to the GraphBuilder output for the same edge multiset
// (rows end up sorted and deduplicated either way).
//
// `from_source_compressed` is the 10^8-vertex variant: instead of
// materializing the 12-bytes-per-endpoint plain CSR it encodes rows
// straight into the varint/delta codec, chunk by chunk. The source replays
// once for the degree pass and once per chunk; peak memory is the growing
// compressed payload plus one bounded chunk buffer (default 2^26 endpoints
// = 256 MB) plus the 4-bytes-per-vertex degree array — ~1.0x the final
// *compressed* size in the large sparse regime, where the plain builder's
// peak is the (much larger) plain CSR.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "graph/compressed.hpp"
#include "graph/graph.hpp"
#include "rng/splitmix64.hpp"
#include "support/narrow.hpp"

namespace ssmis {

class CsrBuilder {
 public:
  // Builds a Graph on n vertices from `source`, a callable invoked exactly
  // twice as `source(emit)` where `emit(Vertex u, Vertex v)` records one
  // undirected edge. Throws std::invalid_argument on negative n or
  // out-of-range endpoints, std::logic_error if the two passes disagree
  // (detected via an order-independent multiset hash of each pass's stream,
  // so equal edge *counts* over different edges are caught too — with
  // 2^-64-style false-accept odds, not a guarantee).
  template <typename Source>
  static Graph from_source(Vertex n, Source&& source) {
    if (n < 0) throw std::invalid_argument("CsrBuilder: negative vertex count");
    std::vector<std::int64_t> offsets(static_cast<std::size_t>(n) + 1, 0);

    // Pass 1: per-endpoint degree counts (duplicates included; self-loops
    // dropped here and in pass 2).
    std::uint64_t stream_hash1 = 0;
    source([&](Vertex u, Vertex v) {
      check_endpoints(n, u, v);
      if (u == v) return;
      ++offsets[static_cast<std::size_t>(u) + 1];
      ++offsets[static_cast<std::size_t>(v) + 1];
      stream_hash1 += edge_hash(u, v);
    });
    for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

    // Pass 2: placement. offsets[u] doubles as the write cursor for row u;
    // after the pass offsets[u] holds the *end* of row u and is shifted back.
    std::vector<Vertex> adj(static_cast<std::size_t>(offsets.back()));
    std::uint64_t stream_hash2 = 0;
    source([&](Vertex u, Vertex v) {
      check_endpoints(n, u, v);
      if (u == v) return;
      const auto cu = static_cast<std::size_t>(offsets[static_cast<std::size_t>(u)]++);
      const auto cv = static_cast<std::size_t>(offsets[static_cast<std::size_t>(v)]++);
      if (cu >= adj.size() || cv >= adj.size())
        throw std::logic_error("CsrBuilder: edge source is not replayable "
                               "(pass 2 emitted more edges than pass 1)");
      adj[cu] = v;
      adj[cv] = u;
      stream_hash2 += edge_hash(u, v);
    });
    if (stream_hash1 != stream_hash2)
      throw std::logic_error(
          "CsrBuilder: edge source is not replayable (the two passes emitted "
          "different edge multisets)");
    return finalize(n, std::move(offsets), std::move(adj));
  }

  // Default cap on the compressed sink's chunk buffer, in endpoints
  // (x4 bytes). The effective chunk is adaptive — see from_source_compressed.
  static constexpr std::int64_t kDefaultChunkEndpoints = std::int64_t{1} << 26;

  // Builds a compressed-storage Graph from `source` without materializing
  // the plain CSR: a degree pass sizes contiguous row chunks, then one
  // replay per chunk collects, sorts, deduplicates, and encodes those rows.
  // `chunk_endpoints` CAPS the in-flight chunk buffer; the effective chunk
  // is min(cap, max(2^22, total_endpoints / 8)), so small graphs never pay
  // a buffer sized for huge ones and huge graphs never exceed the cap —
  // scratch stays proportionate at ~8 replays until the cap bites.
  // Same contracts as from_source (replayability enforced via the
  // order-independent multiset hash on EVERY replay, endpoint validation,
  // self-loop dropping), and the result is structurally identical to
  // Graph::compress(from_source(n, source)).
  template <typename Source>
  static Graph from_source_compressed(
      Vertex n, Source&& source,
      std::int64_t chunk_endpoints = kDefaultChunkEndpoints) {
    if (n < 0) throw std::invalid_argument("CsrBuilder: negative vertex count");
    if (chunk_endpoints <= 0)
      throw std::invalid_argument("CsrBuilder: chunk_endpoints must be positive");

    // Degree pass (duplicates included — dedup happens per-row below).
    std::vector<Vertex> degrees(static_cast<std::size_t>(n), 0);
    std::uint64_t hash1 = 0;
    std::int64_t total_endpoints = 0;
    source([&](Vertex u, Vertex v) {
      check_endpoints(n, u, v);
      if (u == v) return;
      ++degrees[static_cast<std::size_t>(u)];
      ++degrees[static_cast<std::size_t>(v)];
      total_endpoints += 2;
      hash1 += edge_hash(u, v);
    });
    chunk_endpoints = std::min<std::int64_t>(
        chunk_endpoints,
        std::max<std::int64_t>(std::int64_t{1} << 22, total_endpoints / 8));

    CompressedAdjacencyEncoder enc(n);
    // Exact-bound reservation: every encoded id/gap is < n and degrees only
    // shrink under dedup, so this sum can never be exceeded — payload
    // growth stays realloc-free (no doubling transient at the 10^8 scale).
    {
      const std::size_t id_len = cadj::varint_len(
          n > 0 ? narrow_cast<std::uint32_t>(n) : 0u);
      std::size_t bound = 0;
      for (const Vertex d : degrees)
        bound += cadj::varint_len(narrow_cast<std::uint32_t>(d)) +
                 static_cast<std::size_t>(d) * id_len;
      enc.reserve(bound);
    }
    std::vector<Vertex> buf;
    std::vector<std::int64_t> start;  // row boundaries within the chunk
    std::vector<std::int64_t> cursor;
    Vertex lo = 0;
    while (lo < n) {
      // Grow the chunk while it fits the endpoint budget (a single row
      // larger than the budget gets a chunk of its own). The row-count cap
      // at a quarter of the budget bounds the 16 B/row start+cursor arrays
      // by the chunk buffer itself, even across long low-degree runs.
      Vertex hi = lo;
      std::int64_t endpoints = 0;
      while (hi < n) {
        const auto d = static_cast<std::int64_t>(degrees[static_cast<std::size_t>(hi)]);
        if (hi > lo && (endpoints + d > chunk_endpoints ||
                        static_cast<std::int64_t>(hi - lo) >=
                            std::max<std::int64_t>(1, chunk_endpoints / 4)))
          break;
        endpoints += d;
        ++hi;
      }
      const std::size_t rows = static_cast<std::size_t>(hi - lo);
      start.assign(rows + 1, 0);
      for (std::size_t r = 0; r < rows; ++r)
        start[r + 1] = start[r] +
                       degrees[static_cast<std::size_t>(lo) + r];
      buf.resize(static_cast<std::size_t>(endpoints));
      cursor.assign(start.begin(), start.end() - 1);

      std::uint64_t hash2 = 0;
      source([&](Vertex u, Vertex v) {
        check_endpoints(n, u, v);
        if (u == v) return;
        hash2 += edge_hash(u, v);
        const auto place = [&](Vertex at, Vertex nbr) {
          if (at < lo || at >= hi) return;
          std::int64_t& c = cursor[static_cast<std::size_t>(at - lo)];
          if (c >= start[static_cast<std::size_t>(at - lo) + 1])
            throw std::logic_error(
                "CsrBuilder: edge source is not replayable (a replay emitted "
                "more edges than the degree pass)");
          buf[static_cast<std::size_t>(c++)] = nbr;
        };
        place(u, v);
        place(v, u);
      });
      if (hash2 != hash1)
        throw std::logic_error(
            "CsrBuilder: edge source is not replayable (a replay emitted a "
            "different edge multiset than the degree pass)");

      for (std::size_t r = 0; r < rows; ++r) {
        Vertex* first = buf.data() + start[r];
        Vertex* last = buf.data() + start[r + 1];
        std::sort(first, last);
        last = std::unique(first, last);
        enc.add_row({first, static_cast<std::size_t>(last - first)});
      }
      lo = hi;
    }
    // The scratch is dead; release it before finish() so its slack-return
    // copy (if any) is not stacked on top of the chunk buffers.
    degrees = {};
    buf = {};
    start = {};
    cursor = {};
    return std::move(enc).finish();
  }

 private:
  // Commutative per-edge hash summed over a pass: order-independent, so the
  // passes may emit in any order, but (with overwhelming probability) not
  // different multisets.
  static std::uint64_t edge_hash(Vertex u, Vertex v) {
    return splitmix64_mix((static_cast<std::uint64_t>(static_cast<std::uint32_t>(u))
                           << 32) |
                          static_cast<std::uint64_t>(static_cast<std::uint32_t>(v))) +
           splitmix64_mix((static_cast<std::uint64_t>(static_cast<std::uint32_t>(v))
                           << 32) |
                          static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)));
  }

  static void check_endpoints(Vertex n, Vertex u, Vertex v) {
    if (u < 0 || v < 0 || u >= n || v >= n) {
      throw std::invalid_argument("CsrBuilder: edge (" + std::to_string(u) + "," +
                                  std::to_string(v) + ") out of range [0," +
                                  std::to_string(n) + ")");
    }
  }

  // Restores the cursor-shifted offsets, sorts each row, deduplicates in
  // place, and wraps the arrays in a Graph.
  static Graph finalize(Vertex n, std::vector<std::int64_t> offsets,
                        std::vector<Vertex> adj);
};

}  // namespace ssmis
