// Streaming CSR construction: builds a Graph directly from an edge stream in
// two passes, with no buffered edge list.
//
// The classic GraphBuilder materializes a std::vector<Edge> (16 bytes/edge),
// sorts it, and only then lays out the CSR — roughly 3x the final footprint
// at peak. CsrBuilder instead asks the caller to *replay* its edge stream
// twice:
//
//   pass 1  counts degrees (offsets array),
//   pass 2  places endpoints through a cursor folded into the offsets array,
//
// then sorts and deduplicates each row in place. Peak memory is the final
// CSR (8 bytes/vertex offsets + 4 bytes/endpoint adjacency) plus the
// duplicate slack of the stream itself — for duplicate-free generators like
// G(n,p) skip-sampling that is exactly the final footprint (~1.0x; <= ~1.3x
// with the transient slack of dup-emitting sources like the configuration
// model), which is what makes 10^7-vertex graphs constructible in CI memory.
//
// The edge source must be *replayable*: invoking it twice must emit the
// identical multiset of edges. Deterministic generators satisfy this for
// free by re-seeding their RNG per pass. Self-loops are dropped and
// endpoints validated exactly like GraphBuilder, and the resulting Graph is
// byte-identical to the GraphBuilder output for the same edge multiset
// (rows end up sorted and deduplicated either way).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "rng/splitmix64.hpp"

namespace ssmis {

class CsrBuilder {
 public:
  // Builds a Graph on n vertices from `source`, a callable invoked exactly
  // twice as `source(emit)` where `emit(Vertex u, Vertex v)` records one
  // undirected edge. Throws std::invalid_argument on negative n or
  // out-of-range endpoints, std::logic_error if the two passes disagree
  // (detected via an order-independent multiset hash of each pass's stream,
  // so equal edge *counts* over different edges are caught too — with
  // 2^-64-style false-accept odds, not a guarantee).
  template <typename Source>
  static Graph from_source(Vertex n, Source&& source) {
    if (n < 0) throw std::invalid_argument("CsrBuilder: negative vertex count");
    std::vector<std::int64_t> offsets(static_cast<std::size_t>(n) + 1, 0);

    // Pass 1: per-endpoint degree counts (duplicates included; self-loops
    // dropped here and in pass 2).
    std::uint64_t stream_hash1 = 0;
    source([&](Vertex u, Vertex v) {
      check_endpoints(n, u, v);
      if (u == v) return;
      ++offsets[static_cast<std::size_t>(u) + 1];
      ++offsets[static_cast<std::size_t>(v) + 1];
      stream_hash1 += edge_hash(u, v);
    });
    for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

    // Pass 2: placement. offsets[u] doubles as the write cursor for row u;
    // after the pass offsets[u] holds the *end* of row u and is shifted back.
    std::vector<Vertex> adj(static_cast<std::size_t>(offsets.back()));
    std::uint64_t stream_hash2 = 0;
    source([&](Vertex u, Vertex v) {
      check_endpoints(n, u, v);
      if (u == v) return;
      const auto cu = static_cast<std::size_t>(offsets[static_cast<std::size_t>(u)]++);
      const auto cv = static_cast<std::size_t>(offsets[static_cast<std::size_t>(v)]++);
      if (cu >= adj.size() || cv >= adj.size())
        throw std::logic_error("CsrBuilder: edge source is not replayable "
                               "(pass 2 emitted more edges than pass 1)");
      adj[cu] = v;
      adj[cv] = u;
      stream_hash2 += edge_hash(u, v);
    });
    if (stream_hash1 != stream_hash2)
      throw std::logic_error(
          "CsrBuilder: edge source is not replayable (the two passes emitted "
          "different edge multisets)");
    return finalize(n, std::move(offsets), std::move(adj));
  }

 private:
  // Commutative per-edge hash summed over a pass: order-independent, so the
  // passes may emit in any order, but (with overwhelming probability) not
  // different multisets.
  static std::uint64_t edge_hash(Vertex u, Vertex v) {
    return splitmix64_mix((static_cast<std::uint64_t>(static_cast<std::uint32_t>(u))
                           << 32) |
                          static_cast<std::uint64_t>(static_cast<std::uint32_t>(v))) +
           splitmix64_mix((static_cast<std::uint64_t>(static_cast<std::uint32_t>(v))
                           << 32) |
                          static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)));
  }

  static void check_endpoints(Vertex n, Vertex u, Vertex v) {
    if (u < 0 || v < 0 || u >= n || v >= n) {
      throw std::invalid_argument("CsrBuilder: edge (" + std::to_string(u) + "," +
                                  std::to_string(v) + ") out of range [0," +
                                  std::to_string(n) + ")");
    }
  }

  // Restores the cursor-shifted offsets, sorts each row, deduplicates in
  // place, and wraps the arrays in a Graph.
  static Graph finalize(Vertex n, std::vector<std::int64_t> offsets,
                        std::vector<Vertex> adj);
};

}  // namespace ssmis
