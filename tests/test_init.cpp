#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/init.hpp"
#include "graph/generators.hpp"

namespace ssmis {
namespace {

TEST(Init, AllWhiteAndAllBlack) {
  const Graph g = gen::path(10);
  const CoinOracle coins(1);
  for (Color2 c : make_init2(g, InitPattern::kAllWhite, coins))
    EXPECT_EQ(c, Color2::kWhite);
  for (Color2 c : make_init2(g, InitPattern::kAllBlack, coins))
    EXPECT_EQ(c, Color2::kBlack);
}

TEST(Init, AlternatingParity) {
  const Graph g = gen::path(6);
  const CoinOracle coins(1);
  const auto init = make_init2(g, InitPattern::kAlternating, coins);
  for (Vertex u = 0; u < 6; ++u)
    EXPECT_EQ(init[static_cast<std::size_t>(u)],
              u % 2 == 0 ? Color2::kBlack : Color2::kWhite);
}

TEST(Init, OneBlackIsVertexZero) {
  const Graph g = gen::path(5);
  const CoinOracle coins(1);
  const auto init = make_init2(g, InitPattern::kOneBlack, coins);
  EXPECT_EQ(init[0], Color2::kBlack);
  for (Vertex u = 1; u < 5; ++u)
    EXPECT_EQ(init[static_cast<std::size_t>(u)], Color2::kWhite);
}

TEST(Init, HighDegreeBlackPicksHub) {
  const Graph g = gen::star(9);
  const CoinOracle coins(1);
  const auto init = make_init2(g, InitPattern::kHighDegreeBlack, coins);
  EXPECT_EQ(init[0], Color2::kBlack);  // hub degree 8 > median 1
  for (Vertex u = 1; u < 9; ++u)
    EXPECT_EQ(init[static_cast<std::size_t>(u)], Color2::kWhite);
}

TEST(Init, UniformRandomRoughlyBalanced) {
  const Graph g = Graph::from_edges(4000, {});
  const CoinOracle coins(99);
  const auto init = make_init2(g, InitPattern::kUniformRandom, coins);
  int black = 0;
  for (Color2 c : init) black += c == Color2::kBlack;
  EXPECT_NEAR(black, 2000, 250);
}

TEST(Init, UniformRandomDeterministicPerSeed) {
  const Graph g = gen::path(50);
  EXPECT_EQ(make_init2(g, InitPattern::kUniformRandom, CoinOracle(5)),
            make_init2(g, InitPattern::kUniformRandom, CoinOracle(5)));
  EXPECT_NE(make_init2(g, InitPattern::kUniformRandom, CoinOracle(5)),
            make_init2(g, InitPattern::kUniformRandom, CoinOracle(6)));
}

TEST(Init, ThreeStateBlackStartsSplitBetweenBlackStates) {
  const Graph g = Graph::from_edges(2000, {});
  const CoinOracle coins(7);
  const auto init = make_init3(g, InitPattern::kAllBlack, coins);
  int black0 = 0, black1 = 0;
  for (Color3 c : init) {
    black0 += c == Color3::kBlack0;
    black1 += c == Color3::kBlack1;
  }
  EXPECT_EQ(black0 + black1, 2000);
  EXPECT_GT(black0, 700);
  EXPECT_GT(black1, 700);
}

TEST(Init, ThreeColorRandomIncludesGray) {
  const Graph g = Graph::from_edges(2000, {});
  const CoinOracle coins(11);
  const auto init = make_init_g(g, InitPattern::kUniformRandom, coins);
  int gray = 0;
  for (ColorG c : init) gray += c == ColorG::kGray;
  EXPECT_GT(gray, 100);  // adversarial inits must exercise gray
}

TEST(Init, ThreeColorDeterministicPatternsHaveNoGray) {
  const Graph g = gen::path(20);
  const CoinOracle coins(13);
  for (InitPattern pattern : {InitPattern::kAllWhite, InitPattern::kAllBlack,
                              InitPattern::kAlternating, InitPattern::kOneBlack}) {
    for (ColorG c : make_init_g(g, pattern, coins)) EXPECT_NE(c, ColorG::kGray);
  }
}

TEST(Init, PatternNamesAreDistinct) {
  std::set<std::string> names;
  for (InitPattern pattern : all_init_patterns()) names.insert(to_string(pattern));
  EXPECT_EQ(names.size(), all_init_patterns().size());
}

TEST(Init, ColorToStringCoversAll) {
  EXPECT_EQ(to_string(Color2::kBlack), "black");
  EXPECT_EQ(to_string(Color2::kWhite), "white");
  EXPECT_EQ(to_string(Color3::kBlack0), "black0");
  EXPECT_EQ(to_string(Color3::kBlack1), "black1");
  EXPECT_EQ(to_string(Color3::kWhite), "white");
  EXPECT_EQ(to_string(ColorG::kGray), "gray");
  EXPECT_EQ(to_string(ColorG::kBlack), "black");
  EXPECT_EQ(to_string(ColorG::kWhite), "white");
}

}  // namespace
}  // namespace ssmis
