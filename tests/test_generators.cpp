#include <gtest/gtest.h>

#include <cmath>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace ssmis {
namespace {

TEST(Generators, CompleteGraph) {
  const Graph g = gen::complete(6);
  EXPECT_EQ(g.num_vertices(), 6);
  EXPECT_EQ(g.num_edges(), 15);
  EXPECT_EQ(g.max_degree(), 5);
  for (Vertex u = 0; u < 6; ++u)
    for (Vertex v = 0; v < 6; ++v) {
      if (u != v) EXPECT_TRUE(g.has_edge(u, v));
    }
}

TEST(Generators, CompleteEdgeCases) {
  EXPECT_EQ(gen::complete(0).num_vertices(), 0);
  EXPECT_EQ(gen::complete(1).num_edges(), 0);
  EXPECT_EQ(gen::complete(2).num_edges(), 1);
}

TEST(Generators, Path) {
  const Graph g = gen::path(5);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 2);
  EXPECT_TRUE(is_tree(g));
}

TEST(Generators, CycleDegreesAllTwo) {
  const Graph g = gen::cycle(7);
  EXPECT_EQ(g.num_edges(), 7);
  for (Vertex u = 0; u < 7; ++u) EXPECT_EQ(g.degree(u), 2);
}

TEST(Generators, CycleSmallCases) {
  EXPECT_EQ(gen::cycle(2).num_edges(), 1);  // degenerate: a single edge
  EXPECT_EQ(gen::cycle(3).num_edges(), 3);
}

TEST(Generators, Star) {
  const Graph g = gen::star(9);
  EXPECT_EQ(g.degree(0), 8);
  for (Vertex u = 1; u < 9; ++u) EXPECT_EQ(g.degree(u), 1);
  EXPECT_TRUE(is_tree(g));
  EXPECT_TRUE(has_diameter_at_most_2(g));
}

TEST(Generators, CompleteBipartite) {
  const Graph g = gen::complete_bipartite(3, 4);
  EXPECT_EQ(g.num_vertices(), 7);
  EXPECT_EQ(g.num_edges(), 12);
  EXPECT_EQ(triangle_count(g), 0);
}

TEST(Generators, DisjointCliques) {
  const Graph g = gen::disjoint_cliques(4, 5);
  EXPECT_EQ(g.num_vertices(), 20);
  EXPECT_EQ(g.num_edges(), 4 * 10);
  EXPECT_EQ(num_components(g), 4);
  EXPECT_FALSE(g.has_edge(0, 5));  // across cliques
  EXPECT_TRUE(g.has_edge(5, 9));   // within a clique
}

TEST(Generators, Grid) {
  const Graph g = gen::grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 4 * 2);  // horizontal + vertical
  EXPECT_LE(g.max_degree(), 4);
}

TEST(Generators, TorusIsFourRegular) {
  const Graph g = gen::torus(4, 5);
  for (Vertex u = 0; u < g.num_vertices(); ++u) EXPECT_EQ(g.degree(u), 4);
  EXPECT_EQ(g.num_edges(), 2 * 20);
}

TEST(Generators, Hypercube) {
  const Graph g = gen::hypercube(4);
  EXPECT_EQ(g.num_vertices(), 16);
  EXPECT_EQ(g.num_edges(), 32);
  for (Vertex u = 0; u < 16; ++u) EXPECT_EQ(g.degree(u), 4);
  EXPECT_EQ(diameter(g).value(), 4);
}

TEST(Generators, BinaryTree) {
  const Graph g = gen::binary_tree(15);
  EXPECT_TRUE(is_tree(g));
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_LE(g.max_degree(), 3);
}

TEST(Generators, Caterpillar) {
  const Graph g = gen::caterpillar(5, 3);
  EXPECT_EQ(g.num_vertices(), 5 + 15);
  EXPECT_TRUE(is_tree(g));
}

TEST(Generators, Barbell) {
  const Graph g = gen::barbell(6);
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_EQ(g.num_edges(), 2 * 15 + 1);
  EXPECT_EQ(num_components(g), 1);
}

TEST(Generators, GnpExtremes) {
  EXPECT_EQ(gen::gnp(50, 0.0, 1).num_edges(), 0);
  EXPECT_EQ(gen::gnp(50, 1.0, 1).num_edges(), 50 * 49 / 2);
}

TEST(Generators, GnpEdgeCountNearExpectation) {
  // n=400, p=0.1: mean ~7980, sd ~85; allow 6 sigma.
  const Graph g = gen::gnp(400, 0.1, 12345);
  const double expected = 0.1 * 400 * 399 / 2.0;
  const double sigma = std::sqrt(expected * 0.9);
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 6 * sigma);
}

TEST(Generators, GnpDeterministicPerSeed) {
  EXPECT_EQ(gen::gnp(100, 0.05, 7), gen::gnp(100, 0.05, 7));
  EXPECT_FALSE(gen::gnp(100, 0.05, 7) == gen::gnp(100, 0.05, 8));
}

TEST(Generators, GnpRejectsBadP) {
  EXPECT_THROW(gen::gnp(10, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(gen::gnp(10, 1.1, 1), std::invalid_argument);
}

TEST(Generators, GnmExactEdgeCount) {
  const Graph g = gen::gnm(60, 140, 3);
  EXPECT_EQ(g.num_vertices(), 60);
  EXPECT_EQ(g.num_edges(), 140);
}

TEST(Generators, GnmFullRange) {
  EXPECT_EQ(gen::gnm(5, 10, 1).num_edges(), 10);  // complete
  EXPECT_EQ(gen::gnm(5, 0, 1).num_edges(), 0);
  EXPECT_THROW(gen::gnm(5, 11, 1), std::invalid_argument);
}

TEST(Generators, RandomTreeIsTree) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = gen::random_tree(100, seed);
    EXPECT_TRUE(is_tree(g)) << "seed " << seed;
  }
}

TEST(Generators, RandomTreeSmall) {
  EXPECT_EQ(gen::random_tree(0, 1).num_vertices(), 0);
  EXPECT_EQ(gen::random_tree(1, 1).num_edges(), 0);
  EXPECT_EQ(gen::random_tree(2, 1).num_edges(), 1);
  EXPECT_TRUE(is_tree(gen::random_tree(3, 1)));
}

TEST(Generators, RandomRecursiveTreeIsTree) {
  const Graph g = gen::random_recursive_tree(200, 9);
  EXPECT_TRUE(is_tree(g));
}

TEST(Generators, ForestUnionArboricityBounded) {
  const Graph g = gen::forest_union(150, 3, 11);
  EXPECT_LE(g.num_edges(), 3 * 149);
  // Degeneracy-based arboricity upper bound should be small.
  EXPECT_LE(arboricity_bounds(g).upper, 6);
}

TEST(Generators, RandomRegularDegreesAtMostD) {
  const Graph g = gen::random_regular(100, 6, 21);
  EXPECT_LE(g.max_degree(), 6);
  // Configuration model drops few edges: average degree close to d.
  EXPECT_GT(g.average_degree(), 5.0);
}

TEST(Generators, RandomRegularOddProductThrows) {
  EXPECT_THROW(gen::random_regular(5, 3, 1), std::invalid_argument);
}

TEST(Generators, RandomGeometricSymmetricAndDeterministic) {
  const Graph a = gen::random_geometric(200, 0.1, 5);
  const Graph b = gen::random_geometric(200, 0.1, 5);
  EXPECT_EQ(a, b);
}

TEST(Generators, RandomGeometricRadiusMonotone) {
  const Graph small = gen::random_geometric(300, 0.05, 5);
  const Graph large = gen::random_geometric(300, 0.15, 5);
  EXPECT_LT(small.num_edges(), large.num_edges());
}

TEST(Generators, RandomGeometricExtremes) {
  EXPECT_EQ(gen::random_geometric(50, 0.0, 1).num_edges(), 0);
  const Graph g = gen::random_geometric(50, 2.0, 1);  // radius covers unit square
  EXPECT_EQ(g.num_edges(), 50 * 49 / 2);
}

TEST(Generators, SmallWorldBasic) {
  const Graph g = gen::small_world(100, 3, 0.1, 2);
  EXPECT_EQ(g.num_vertices(), 100);
  // Ring lattice has 3n edges; rewiring preserves the count approximately
  // (rare rewire failures may drop a few).
  EXPECT_GE(g.num_edges(), 290);
  EXPECT_LE(g.num_edges(), 300);
}

TEST(Generators, SmallWorldBetaZeroIsRingLattice) {
  const Graph g = gen::small_world(20, 2, 0.0, 3);
  for (Vertex u = 0; u < 20; ++u) EXPECT_EQ(g.degree(u), 4);
}

}  // namespace
}  // namespace ssmis
