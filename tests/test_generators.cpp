#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <string>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "support/hash.hpp"

namespace ssmis {
namespace {

// Order-sensitive hash of the full CSR structure (n, per-row degrees and
// sorted adjacency): two graphs fingerprint equal iff operator== holds.
std::uint64_t fingerprint(const Graph& g) {
  std::uint64_t h = kFnv1aBasis;
  const std::int64_t n = g.num_vertices();
  h = fnv1a(h, &n, sizeof(n));
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    auto nbrs = g.neighbors(u);
    const std::int64_t d = static_cast<std::int64_t>(nbrs.size());
    h = fnv1a(h, &d, sizeof(d));
    h = fnv1a(h, nbrs.data(), nbrs.size() * sizeof(Vertex));
  }
  return h;
}

TEST(Generators, CompleteGraph) {
  const Graph g = gen::complete(6);
  EXPECT_EQ(g.num_vertices(), 6);
  EXPECT_EQ(g.num_edges(), 15);
  EXPECT_EQ(g.max_degree(), 5);
  for (Vertex u = 0; u < 6; ++u)
    for (Vertex v = 0; v < 6; ++v) {
      if (u != v) {
        EXPECT_TRUE(g.has_edge(u, v));
      }
    }
}

TEST(Generators, CompleteEdgeCases) {
  EXPECT_EQ(gen::complete(0).num_vertices(), 0);
  EXPECT_EQ(gen::complete(1).num_edges(), 0);
  EXPECT_EQ(gen::complete(2).num_edges(), 1);
}

TEST(Generators, Path) {
  const Graph g = gen::path(5);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 2);
  EXPECT_TRUE(is_tree(g));
}

TEST(Generators, CycleDegreesAllTwo) {
  const Graph g = gen::cycle(7);
  EXPECT_EQ(g.num_edges(), 7);
  for (Vertex u = 0; u < 7; ++u) EXPECT_EQ(g.degree(u), 2);
}

TEST(Generators, CycleSmallCases) {
  EXPECT_EQ(gen::cycle(2).num_edges(), 1);  // degenerate: a single edge
  EXPECT_EQ(gen::cycle(3).num_edges(), 3);
}

TEST(Generators, Star) {
  const Graph g = gen::star(9);
  EXPECT_EQ(g.degree(0), 8);
  for (Vertex u = 1; u < 9; ++u) EXPECT_EQ(g.degree(u), 1);
  EXPECT_TRUE(is_tree(g));
  EXPECT_TRUE(has_diameter_at_most_2(g));
}

TEST(Generators, CompleteBipartite) {
  const Graph g = gen::complete_bipartite(3, 4);
  EXPECT_EQ(g.num_vertices(), 7);
  EXPECT_EQ(g.num_edges(), 12);
  EXPECT_EQ(triangle_count(g), 0);
}

TEST(Generators, DisjointCliques) {
  const Graph g = gen::disjoint_cliques(4, 5);
  EXPECT_EQ(g.num_vertices(), 20);
  EXPECT_EQ(g.num_edges(), 4 * 10);
  EXPECT_EQ(num_components(g), 4);
  EXPECT_FALSE(g.has_edge(0, 5));  // across cliques
  EXPECT_TRUE(g.has_edge(5, 9));   // within a clique
}

TEST(Generators, Grid) {
  const Graph g = gen::grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 4 * 2);  // horizontal + vertical
  EXPECT_LE(g.max_degree(), 4);
}

TEST(Generators, TorusIsFourRegular) {
  const Graph g = gen::torus(4, 5);
  for (Vertex u = 0; u < g.num_vertices(); ++u) EXPECT_EQ(g.degree(u), 4);
  EXPECT_EQ(g.num_edges(), 2 * 20);
}

TEST(Generators, Hypercube) {
  const Graph g = gen::hypercube(4);
  EXPECT_EQ(g.num_vertices(), 16);
  EXPECT_EQ(g.num_edges(), 32);
  for (Vertex u = 0; u < 16; ++u) EXPECT_EQ(g.degree(u), 4);
  EXPECT_EQ(diameter(g).value(), 4);
}

TEST(Generators, BinaryTree) {
  const Graph g = gen::binary_tree(15);
  EXPECT_TRUE(is_tree(g));
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_LE(g.max_degree(), 3);
}

TEST(Generators, Caterpillar) {
  const Graph g = gen::caterpillar(5, 3);
  EXPECT_EQ(g.num_vertices(), 5 + 15);
  EXPECT_TRUE(is_tree(g));
}

TEST(Generators, Barbell) {
  const Graph g = gen::barbell(6);
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_EQ(g.num_edges(), 2 * 15 + 1);
  EXPECT_EQ(num_components(g), 1);
}

TEST(Generators, GnpExtremes) {
  EXPECT_EQ(gen::gnp(50, 0.0, 1).num_edges(), 0);
  EXPECT_EQ(gen::gnp(50, 1.0, 1).num_edges(), 50 * 49 / 2);
}

TEST(Generators, GnpEdgeCountNearExpectation) {
  // n=400, p=0.1: mean ~7980, sd ~85; allow 6 sigma.
  const Graph g = gen::gnp(400, 0.1, 12345);
  const double expected = 0.1 * 400 * 399 / 2.0;
  const double sigma = std::sqrt(expected * 0.9);
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 6 * sigma);
}

TEST(Generators, GnpDeterministicPerSeed) {
  EXPECT_EQ(gen::gnp(100, 0.05, 7), gen::gnp(100, 0.05, 7));
  EXPECT_FALSE(gen::gnp(100, 0.05, 7) == gen::gnp(100, 0.05, 8));
}

TEST(Generators, GnpRejectsBadP) {
  EXPECT_THROW(gen::gnp(10, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(gen::gnp(10, 1.1, 1), std::invalid_argument);
}

TEST(Generators, GnmExactEdgeCount) {
  const Graph g = gen::gnm(60, 140, 3);
  EXPECT_EQ(g.num_vertices(), 60);
  EXPECT_EQ(g.num_edges(), 140);
}

TEST(Generators, GnmFullRange) {
  EXPECT_EQ(gen::gnm(5, 10, 1).num_edges(), 10);  // complete
  EXPECT_EQ(gen::gnm(5, 0, 1).num_edges(), 0);
  EXPECT_THROW(gen::gnm(5, 11, 1), std::invalid_argument);
}

TEST(Generators, RandomTreeIsTree) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = gen::random_tree(100, seed);
    EXPECT_TRUE(is_tree(g)) << "seed " << seed;
  }
}

TEST(Generators, RandomTreeSmall) {
  EXPECT_EQ(gen::random_tree(0, 1).num_vertices(), 0);
  EXPECT_EQ(gen::random_tree(1, 1).num_edges(), 0);
  EXPECT_EQ(gen::random_tree(2, 1).num_edges(), 1);
  EXPECT_TRUE(is_tree(gen::random_tree(3, 1)));
}

TEST(Generators, RandomRecursiveTreeIsTree) {
  const Graph g = gen::random_recursive_tree(200, 9);
  EXPECT_TRUE(is_tree(g));
}

TEST(Generators, ForestUnionArboricityBounded) {
  const Graph g = gen::forest_union(150, 3, 11);
  EXPECT_LE(g.num_edges(), 3 * 149);
  // Degeneracy-based arboricity upper bound should be small.
  EXPECT_LE(arboricity_bounds(g).upper, 6);
}

TEST(Generators, RandomRegularDegreesAtMostD) {
  const Graph g = gen::random_regular(100, 6, 21);
  EXPECT_LE(g.max_degree(), 6);
  // Configuration model drops few edges: average degree close to d.
  EXPECT_GT(g.average_degree(), 5.0);
}

TEST(Generators, RandomRegularOddProductThrows) {
  EXPECT_THROW(gen::random_regular(5, 3, 1), std::invalid_argument);
}

TEST(Generators, RandomGeometricSymmetricAndDeterministic) {
  const Graph a = gen::random_geometric(200, 0.1, 5);
  const Graph b = gen::random_geometric(200, 0.1, 5);
  EXPECT_EQ(a, b);
}

TEST(Generators, RandomGeometricRadiusMonotone) {
  const Graph small = gen::random_geometric(300, 0.05, 5);
  const Graph large = gen::random_geometric(300, 0.15, 5);
  EXPECT_LT(small.num_edges(), large.num_edges());
}

TEST(Generators, RandomGeometricExtremes) {
  EXPECT_EQ(gen::random_geometric(50, 0.0, 1).num_edges(), 0);
  const Graph g = gen::random_geometric(50, 2.0, 1);  // radius covers unit square
  EXPECT_EQ(g.num_edges(), 50 * 49 / 2);
}

TEST(Generators, SmallWorldBasic) {
  const Graph g = gen::small_world(100, 3, 0.1, 2);
  EXPECT_EQ(g.num_vertices(), 100);
  // Ring lattice has 3n edges; rewiring preserves the count approximately
  // (rare rewire failures may drop a few).
  EXPECT_GE(g.num_edges(), 290);
  EXPECT_LE(g.num_edges(), 300);
}

TEST(Generators, SmallWorldBetaZeroIsRingLattice) {
  const Graph g = gen::small_world(20, 2, 0.0, 3);
  for (Vertex u = 0; u < 20; ++u) EXPECT_EQ(g.degree(u), 4);
}

// ---------------------------------------------------------------------------
// Fixed-seed byte-identity regressions for the streaming-builder port.
//
// Every fingerprint below except two was captured from the pre-streaming
// GraphBuilder implementations, so these tests pin the CsrBuilder port to
// the historical outputs exactly. The two exceptions carry intentional,
// documented stream changes (see CHANGES.md):
//   * forest_union — per-tree seeds now run through SplitMix64 (bugfix: the
//     additive golden-ratio scheme correlated nearby base seeds);
//   * dense gnm (2m > max_m) — now complement-sampled (bugfix: rejection
//     sampling was coupon-collector-degenerate near max_m).
// Their fingerprints were re-captured from the fixed implementations and
// pin determinism going forward.
// ---------------------------------------------------------------------------

TEST(GeneratorGoldens, FixedSeedByteIdentity) {
  const std::map<std::string, std::uint64_t> golden = {
      {"gnp_n1000_p0.01_s7", 0x7edf8714190be531ULL},
      {"gnp_n500_p0.3_s42", 0x8ca1f45597c3eb77ULL},
      {"gnp_n2000_p0.002_s1", 0x91588948a3fa7ed2ULL},
      {"gnm_n200_m1500_s3", 0xeb51b6277acf6669ULL},
      {"gnm_n100_m50_s9", 0x71cf8e575aaa2f1fULL},
      {"random_tree_n1000_s11", 0x2b8f116eb56d210bULL},
      {"random_tree_n3_s5", 0x18eb6066171f6db1ULL},
      {"random_recursive_tree_n500_s13", 0x38c55f70fbdb1608ULL},
      {"random_regular_n400_d6_s21", 0xed15c44084d9f490ULL},
      {"complete_n50", 0x41d4acb73f6b29e0ULL},
      {"path_n100", 0x335bece25ec73584ULL},
      {"cycle_n100", 0xfc4e5788f8413a67ULL},
      {"star_n100", 0x6666916563c741c5ULL},
      {"complete_bipartite_20_30", 0xdf44b252bf413191ULL},
      {"disjoint_cliques_5_8", 0x6227a1a51bd208cbULL},
      {"grid_12_17", 0x0e814bf3f541ff64ULL},
      {"torus_9_11", 0xac9d84a3211fb764ULL},
      {"hypercube_7", 0x01ac5573205e3b63ULL},
      {"binary_tree_n127", 0x93dd5056fb6e47d1ULL},
      {"caterpillar_10_4", 0x8edd93a4b0782128ULL},
      {"barbell_12", 0x089af3366272b7bcULL},
      {"random_geometric_n300_r0.1_s5", 0xc1c00ece67b30bb7ULL},
      {"small_world_n200_k3_b0.1_s2", 0xe7a58bfda06b25adULL},
      // Intentional stream changes (bugfixes), re-captured:
      {"forest_union_n300_k3_s17", 0xe9e6fe0f24650fbaULL},
      {"gnm_dense_n60_m1600_s5", 0x4d8c016a962eaca2ULL},
  };
  const std::map<std::string, Graph> actual = {
      {"gnp_n1000_p0.01_s7", gen::gnp(1000, 0.01, 7)},
      {"gnp_n500_p0.3_s42", gen::gnp(500, 0.3, 42)},
      {"gnp_n2000_p0.002_s1", gen::gnp(2000, 0.002, 1)},
      {"gnm_n200_m1500_s3", gen::gnm(200, 1500, 3)},
      {"gnm_n100_m50_s9", gen::gnm(100, 50, 9)},
      {"random_tree_n1000_s11", gen::random_tree(1000, 11)},
      {"random_tree_n3_s5", gen::random_tree(3, 5)},
      {"random_recursive_tree_n500_s13", gen::random_recursive_tree(500, 13)},
      {"random_regular_n400_d6_s21", gen::random_regular(400, 6, 21)},
      {"complete_n50", gen::complete(50)},
      {"path_n100", gen::path(100)},
      {"cycle_n100", gen::cycle(100)},
      {"star_n100", gen::star(100)},
      {"complete_bipartite_20_30", gen::complete_bipartite(20, 30)},
      {"disjoint_cliques_5_8", gen::disjoint_cliques(5, 8)},
      {"grid_12_17", gen::grid(12, 17)},
      {"torus_9_11", gen::torus(9, 11)},
      {"hypercube_7", gen::hypercube(7)},
      {"binary_tree_n127", gen::binary_tree(127)},
      {"caterpillar_10_4", gen::caterpillar(10, 4)},
      {"barbell_12", gen::barbell(12)},
      {"random_geometric_n300_r0.1_s5", gen::random_geometric(300, 0.1, 5)},
      {"small_world_n200_k3_b0.1_s2", gen::small_world(200, 3, 0.1, 2)},
      {"forest_union_n300_k3_s17", gen::forest_union(300, 3, 17)},
      {"gnm_dense_n60_m1600_s5", gen::gnm(60, 1600, 5)},
  };
  ASSERT_EQ(golden.size(), actual.size());
  for (const auto& [name, g] : actual) {
    EXPECT_EQ(fingerprint(g), golden.at(name)) << name;
  }
}

// --- Bugfix regressions -----------------------------------------------------

TEST(Generators, GnmDenseTerminatesWithExactCount) {
  // Near-complete G(n,m): the historical rejection sampler needed ~m ln m
  // draws here; the complement sampler is O(max_m). n=80 -> max_m=3160.
  const Graph g = gen::gnm(80, 3150, 4);
  EXPECT_EQ(g.num_edges(), 3150);
  EXPECT_EQ(gen::gnm(80, 3160, 4).num_edges(), 3160);  // exactly complete
  EXPECT_EQ(fingerprint(gen::gnm(80, 3150, 4)), fingerprint(gen::gnm(80, 3150, 4)));
  EXPECT_NE(fingerprint(gen::gnm(80, 3150, 4)), fingerprint(gen::gnm(80, 3150, 5)));
}

TEST(Generators, ForestUnionNearbySeedsShareNoTree) {
  // Regression for the additive per-tree seeding bug: with tree i seeded at
  // seed + i * golden, forests at base seeds s and s + golden shared k-1
  // trees. SplitMix64-mixed per-tree seeds must decorrelate them entirely.
  const std::uint64_t golden_gamma = 0x9e3779b97f4a7c15ULL;
  const int k = 3;
  const Vertex n = 200;
  const Graph a = gen::forest_union(n, k, 1000);
  const Graph b = gen::forest_union(n, k, 1000 + golden_gamma);
  EXPECT_FALSE(a == b);
  // Count shared edges: independent forests on n vertices share only a few
  // edges by chance (expected ~2k^2 at degree ~2); the buggy scheme shared
  // ~(k-1)(n-1) of them.
  const auto edges_a = a.edge_list();
  int shared = 0;
  for (const auto& [u, v] : edges_a)
    if (b.has_edge(u, v)) ++shared;
  EXPECT_LT(shared, n / 4) << "nearby-seed forests still share tree structure";
}

TEST(Generators, GnpExtremePDeathFree) {
  // Denormal-small and near-1 p must not produce NaN skips, negative
  // indices, or non-termination (the historical skip-sampling cast a
  // possibly-NaN double straight to int64 — UB).
  const Graph tiny = gen::gnp(2000, 1e-300, 3);
  EXPECT_EQ(tiny.num_edges(), 0);
  const Graph small = gen::gnp(2000, 1e-9, 3);
  EXPECT_LE(small.num_edges(), 4);
  const Graph nearly = gen::gnp(120, 0.999999, 3);
  const std::int64_t max_m = 120 * 119 / 2;
  EXPECT_GE(nearly.num_edges(), max_m - 2);
  EXPECT_LE(nearly.num_edges(), max_m);
  // Determinism across the hardened path.
  EXPECT_EQ(gen::gnp(120, 0.999999, 3), gen::gnp(120, 0.999999, 3));
}

}  // namespace
}  // namespace ssmis
