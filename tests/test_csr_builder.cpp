#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "graph/csr_builder.hpp"
#include "rng/xoshiro256.hpp"

namespace ssmis {
namespace {

// Replays a fixed edge list (the canonical replayable source).
auto list_source(const std::vector<Edge>& edges) {
  return [&edges](auto&& emit) {
    for (const auto& [u, v] : edges) emit(u, v);
  };
}

TEST(CsrBuilder, EmptyAndEdgeless) {
  const Graph empty = CsrBuilder::from_source(0, [](auto&&) {});
  EXPECT_EQ(empty.num_vertices(), 0);
  EXPECT_EQ(empty.num_edges(), 0);

  const Graph isolated = CsrBuilder::from_source(5, [](auto&&) {});
  EXPECT_EQ(isolated.num_vertices(), 5);
  EXPECT_EQ(isolated.num_edges(), 0);
  for (Vertex u = 0; u < 5; ++u) EXPECT_EQ(isolated.degree(u), 0);
}

TEST(CsrBuilder, NegativeVertexCountThrows) {
  EXPECT_THROW(CsrBuilder::from_source(-1, [](auto&&) {}), std::invalid_argument);
}

TEST(CsrBuilder, BasicConstruction) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  const Graph g = CsrBuilder::from_source(4, list_source(edges));
  EXPECT_EQ(g.num_edges(), 4);
  for (Vertex u = 0; u < 4; ++u) EXPECT_EQ(g.degree(u), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(3, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(CsrBuilder, DropsSelfLoopsAndDeduplicates) {
  const std::vector<Edge> edges = {{0, 0}, {0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}};
  const Graph g = CsrBuilder::from_source(3, list_source(edges));
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(CsrBuilder, OutOfRangeThrows) {
  const std::vector<Edge> bad = {{0, 3}};
  EXPECT_THROW(CsrBuilder::from_source(3, list_source(bad)), std::invalid_argument);
  const std::vector<Edge> negative = {{-1, 0}};
  EXPECT_THROW(CsrBuilder::from_source(3, list_source(negative)),
               std::invalid_argument);
}

TEST(CsrBuilder, NonReplayableSourceThrows) {
  // Emits one edge on the first pass, two on the second.
  int pass = 0;
  auto broken = [&pass](auto&& emit) {
    ++pass;
    emit(0, 1);
    if (pass == 2) emit(1, 2);
  };
  EXPECT_THROW(CsrBuilder::from_source(3, broken), std::logic_error);
}

TEST(CsrBuilder, DivergentEqualCountSourceThrows) {
  // Same edge COUNT but different edges per pass: the multiset stream hash
  // must catch the divergence rather than hand back a silently corrupt CSR.
  int pass = 0;
  auto broken = [&pass](auto&& emit) {
    ++pass;
    emit(0, 1);
    if (pass == 1)
      emit(0, 2);
    else
      emit(2, 3);
  };
  EXPECT_THROW(CsrBuilder::from_source(4, broken), std::logic_error);
}

TEST(CsrBuilder, EndpointOrientationIsIrrelevantAcrossPasses) {
  // Pass 2 may emit the same undirected edges with flipped endpoints; the
  // multiset hash and placement are orientation-independent.
  int pass = 0;
  auto flipping = [&pass](auto&& emit) {
    ++pass;
    if (pass == 1) {
      emit(0, 1);
      emit(2, 3);
    } else {
      emit(1, 0);
      emit(3, 2);
    }
  };
  const Graph g = CsrBuilder::from_source(4, flipping);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(CsrBuilder, MatchesGraphBuilderOnRandomMultisets) {
  // Random edge multisets with duplicates, reversed duplicates, and
  // self-loops: the streaming two-pass build must produce a Graph equal to
  // the buffered sort/dedup build.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Xoshiro256 rng(seed);
    const Vertex n = 2 + static_cast<Vertex>(rng.next_below(60));
    const int count = static_cast<int>(rng.next_below(300));
    std::vector<Edge> edges;
    for (int i = 0; i < count; ++i) {
      const auto u = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
      const auto v = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
      edges.emplace_back(u, v);
      if (rng.next_bool()) edges.emplace_back(v, u);  // reversed duplicate
    }
    GraphBuilder b(n);
    for (const auto& [u, v] : edges) b.add_edge(u, v);
    const Graph buffered = std::move(b).build();
    const Graph streamed = CsrBuilder::from_source(n, list_source(edges));
    EXPECT_EQ(buffered, streamed) << "seed " << seed << " n " << n;
  }
}

TEST(CsrBuilder, RowsSortedDeduplicated) {
  const std::vector<Edge> edges = {{2, 4}, {2, 0}, {2, 3}, {2, 1}, {4, 2}, {0, 2}};
  const Graph g = CsrBuilder::from_source(5, list_source(edges));
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_TRUE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end());
}

TEST(GraphHandle, CopiesShareStorageAndCompareEqual) {
  const Graph a = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const Graph b = a;  // shallow handle copy
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.neighbors(1).data(), b.neighbors(1).data());  // shared CSR arrays
  EXPECT_FALSE(a.is_mapped());
}

}  // namespace
}  // namespace ssmis
