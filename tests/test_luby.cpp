#include <gtest/gtest.h>

#include <cmath>

#include "core/luby.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"

namespace ssmis {
namespace {

TEST(Luby, ProducesMisOnSuite) {
  const std::vector<Graph> graphs = {
      gen::complete(30),     gen::path(50),          gen::cycle(41),
      gen::star(20),         gen::gnp(100, 0.08, 3), gen::random_tree(80, 4),
      gen::grid(9, 9),       gen::disjoint_cliques(5, 8),
      Graph::from_edges(4, {}),
  };
  for (const Graph& g : graphs) {
    LubyMIS luby(g, CoinOracle(7));
    const auto rounds = luby.run(10000);
    ASSERT_TRUE(luby.done()) << g.summary();
    EXPECT_TRUE(is_mis(g, luby.mis_set())) << g.summary();
    EXPECT_LT(rounds, 10000);
  }
}

TEST(Luby, EmptyGraphDoneImmediately) {
  const Graph g = Graph::from_edges(0, {});
  LubyMIS luby(g, CoinOracle(1));
  EXPECT_TRUE(luby.done());
  EXPECT_EQ(luby.run(10), 0);
}

TEST(Luby, IsolatedVerticesAllJoin) {
  const Graph g = Graph::from_edges(5, {});
  LubyMIS luby(g, CoinOracle(1));
  luby.run(10);
  EXPECT_EQ(luby.mis_set().size(), 5u);
}

TEST(Luby, LogarithmicRoundsOnGnp) {
  // O(log n) rounds w.h.p.; generous cap 8 log2(n).
  const Graph g = gen::gnp(500, 0.05, 9);
  LubyMIS luby(g, CoinOracle(11));
  const auto rounds = luby.run(10000);
  EXPECT_LE(rounds, 8.0 * std::log2(500.0));
}

TEST(Luby, DeterministicPerSeed) {
  const Graph g = gen::gnp(60, 0.1, 13);
  LubyMIS a(g, CoinOracle(5));
  LubyMIS b(g, CoinOracle(5));
  a.run(1000);
  b.run(1000);
  EXPECT_EQ(a.mis_set(), b.mis_set());
}

TEST(Luby, UndecidedCountMonotone) {
  const Graph g = gen::gnp(80, 0.1, 17);
  LubyMIS luby(g, CoinOracle(19));
  Vertex prev = luby.num_undecided();
  while (!luby.done()) {
    luby.step();
    EXPECT_LE(luby.num_undecided(), prev);
    prev = luby.num_undecided();
  }
}

TEST(Luby, NotSelfStabilizing_AdversarialInitYieldsNonMis) {
  // Mark two adjacent vertices InMis and everything else Out: the algorithm
  // immediately reports "done" with an invalid MIS and never repairs it.
  const Graph g = gen::path(4);
  std::vector<LubyStatus> init(4, LubyStatus::kOut);
  init[0] = LubyStatus::kInMis;
  init[1] = LubyStatus::kInMis;  // adjacent to 0: independence violated
  LubyMIS luby(g, init, CoinOracle(23));
  EXPECT_TRUE(luby.done());
  EXPECT_FALSE(is_mis(g, luby.mis_set()));
}

TEST(Luby, NotSelfStabilizing_CorruptionAfterCompletion) {
  const Graph g = gen::gnp(50, 0.15, 29);
  LubyMIS luby(g, CoinOracle(31));
  luby.run(1000);
  ASSERT_TRUE(is_mis(g, luby.mis_set()));
  // Corrupt: evict one MIS member. Maximality now fails, and further steps
  // change nothing because every vertex is decided.
  const Vertex victim = luby.mis_set().front();
  luby.corrupt_decision(victim, LubyStatus::kOut);
  for (int i = 0; i < 50; ++i) luby.step();
  EXPECT_FALSE(is_mis(g, luby.mis_set()));
}

TEST(Luby, CorruptToUndecidedRestartsLocally) {
  const Graph g = gen::complete(10);
  LubyMIS luby(g, CoinOracle(37));
  luby.run(1000);
  const Vertex member = luby.mis_set().front();
  luby.corrupt_decision(member, LubyStatus::kUndecided);
  EXPECT_FALSE(luby.done());
  luby.run(1000);
  EXPECT_TRUE(luby.done());
}

TEST(Luby, CorruptDecisionValidation) {
  const Graph g = gen::path(3);
  LubyMIS luby(g, CoinOracle(1));
  EXPECT_THROW(luby.corrupt_decision(9, LubyStatus::kOut), std::out_of_range);
}

}  // namespace
}  // namespace ssmis
