// Stable-periodic fast-forward correctness battery.
//
// The engine's fast-forward (core/engine.hpp) and the 3-color lazy switch
// (core/three_color.hpp) are SCHEDULE optimizations: they must never change
// a single bit of any trajectory, any aggregate, or any failure mode. Three
// contracts are pinned here:
//
//   1. Long-horizon bit-identity: every registered protocol that declares
//      the fast-forward knob runs >= 10x its stabilization time with the
//      optimization on and off, at 1 and 4 shards, and the round-by-round
//      fingerprints over (raw per-vertex state + every snapshot aggregate)
//      must match exactly. Protocols without the knob are pinned 1-shard
//      vs 4-shard over the same deep post-stabilization horizon.
//
//   2. Adversarial re-activation: faults injected while the MIS sits parked
//      in periodic orbits — including repeated hits on the same vertices —
//      must wake exactly the right neighborhoods. The optimized process is
//      compared round-by-round against an unoptimized twin through several
//      fault storms and recovery windows.
//
//   3. Logical aggregates under bulk advance: num_active / num_stable_black
//      / num_unstable / histogram counts reported with vertices parked must
//      equal the unoptimized twin's values every round (the physical
//      worklist is allowed to be empty; the logical answers are not).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/process.hpp"
#include "graph/generators.hpp"
#include "harness/registry.hpp"
#include "rng/coin_oracle.hpp"
#include "support/hash.hpp"

namespace ssmis {
namespace {

bool declares_fast_forward(const std::string& name) {
  const auto& opts = ProtocolRegistry::instance().options(name);
  return std::find(opts.begin(), opts.end(), "fast-forward") != opts.end();
}

ProtocolParams ff_params(bool on) {
  ProtocolParams params;
  params.set("fast-forward", on ? "1" : "0");
  return params;
}

// Folds the full observable surface of one round into a running FNV-1a
// hash: every vertex's raw state plus every aggregate the snapshot
// reports. A fast-forward bug that corrupts either a parked orbit or a
// logical counter lands here as a fingerprint mismatch.
std::uint64_t fold_round(std::uint64_t h, const Process& p) {
  for (Vertex u = 0; u < p.graph().num_vertices(); ++u) {
    const std::uint8_t b = p.raw_state(u);
    h = fnv1a(h, &b, 1);
  }
  const RoundStats s = p.snapshot();
  h = fnv1a(h, &s.round, sizeof(s.round));
  h = fnv1a(h, &s.black, sizeof(s.black));
  h = fnv1a(h, &s.active, sizeof(s.active));
  h = fnv1a(h, &s.stable_black, sizeof(s.stable_black));
  h = fnv1a(h, &s.unstable, sizeof(s.unstable));
  h = fnv1a(h, &s.gray, sizeof(s.gray));
  return h;
}

std::uint64_t long_horizon_fingerprint(const std::string& name,
                                       const ProtocolParams& params,
                                       const Graph& g, std::uint64_t seed,
                                       std::int64_t rounds, int shards) {
  const auto p = ProtocolRegistry::instance().make(name, g, params, seed);
  if (shards > 1) p->set_shards(shards);
  std::uint64_t h = fold_round(kFnv1aBasis, *p);
  for (std::int64_t i = 0; i < rounds; ++i) {
    p->step();
    h = fold_round(h, *p);
  }
  return h;
}

// Horizon >= 10x the protocol's own stabilization time on this (graph,
// seed), so the overwhelming majority of the compared rounds run in the
// parked/fast-forwarded regime the optimization actually changes.
std::int64_t deep_horizon(const std::string& name, const Graph& g,
                          std::uint64_t seed) {
  const auto p =
      ProtocolRegistry::instance().make(name, g, ProtocolParams(), seed);
  const RunResult r = p->run(500000, TraceMode::kNone);
  EXPECT_TRUE(r.stabilized) << name;
  return std::max<std::int64_t>(10 * r.rounds, 300);
}

TEST(FastForward, LongHorizonBitIdenticalForEveryProtocol) {
  const Graph g = gen::gnp(300, 0.03, 7);
  const std::uint64_t seed = 42;
  for (const std::string& name : ProtocolRegistry::instance().names()) {
    const std::int64_t horizon = deep_horizon(name, g, seed);
    if (declares_fast_forward(name)) {
      const std::uint64_t off =
          long_horizon_fingerprint(name, ff_params(false), g, seed, horizon, 1);
      for (const int shards : {1, 4}) {
        ASSERT_EQ(long_horizon_fingerprint(name, ff_params(true), g, seed,
                                           horizon, shards),
                  off)
            << name << " fast-forward diverged over " << horizon
            << " rounds at " << shards << " shard(s)";
      }
      // The optimized engine must also be shard-independent against itself
      // with the knob off (the baseline the A/B above compares against).
      ASSERT_EQ(long_horizon_fingerprint(name, ff_params(false), g, seed,
                                         horizon, 4),
                off)
          << name << " ff-off sharding diverged";
    } else {
      const std::uint64_t one = long_horizon_fingerprint(
          name, ProtocolParams(), g, seed, horizon, 1);
      ASSERT_EQ(long_horizon_fingerprint(name, ProtocolParams(), g, seed,
                                         horizon, 4),
                one)
          << name << " sharding diverged over " << horizon << " rounds";
    }
  }
}

// Fault storms against a parked MIS: the optimized process and its
// unoptimized twin absorb identical inject_fault calls deep in the
// fast-forwarded regime, and every round in between — including the storm
// rounds themselves — must agree on all per-vertex states and aggregates.
TEST(FastForward, AdversarialFaultsMidFastForwardMatchUnoptimizedTwin) {
  const Graph g = gen::gnp(200, 0.04, 11);
  const CoinOracle fault_coins(4242);
  for (const std::string& name : ProtocolRegistry::instance().names()) {
    if (!declares_fast_forward(name)) continue;
    const auto opt = ProtocolRegistry::instance().make(name, g, ff_params(true), 9);
    const auto ref = ProtocolRegistry::instance().make(name, g, ff_params(false), 9);
    // Park the system: run well past stabilization.
    ASSERT_TRUE(opt->run(500000, TraceMode::kNone).stabilized) << name;
    ASSERT_TRUE(ref->run(500000, TraceMode::kNone).stabilized) << name;
    for (int i = 0; i < 50; ++i) {
      opt->step();
      ref->step();
    }
    for (std::int64_t t = 1; t <= 400; ++t) {
      // Periodic storms, dense enough that re-faulted vertices and whole
      // re-activated neighborhoods overlap across consecutive storms.
      if (t % 60 == 0) {
        for (Vertex u = 0; u < g.num_vertices(); ++u) {
          if (!fault_coins.bernoulli(t, u, CoinTag::kFault, 0.25)) continue;
          const std::uint64_t w = fault_coins.word(t, u, CoinTag::kFault);
          ASSERT_EQ(opt->inject_fault(u, w), ref->inject_fault(u, w))
              << name << " fault acceptance diverged at " << t << "/" << u;
        }
      }
      // Edge-local perturbation: a single-vertex flip adjacent to the
      // parked set exercises the exact one-neighbor re-activation edge.
      if (t % 97 == 0) {
        const Vertex u = static_cast<Vertex>(
            fault_coins.word(t, 0, CoinTag::kFault) %
            static_cast<std::uint64_t>(g.num_vertices()));
        const std::uint64_t w = fault_coins.word(t, 1, CoinTag::kFault);
        ASSERT_EQ(opt->inject_fault(u, w), ref->inject_fault(u, w)) << name;
      }
      opt->step();
      ref->step();
      for (Vertex u = 0; u < g.num_vertices(); ++u)
        ASSERT_EQ(opt->raw_state(u), ref->raw_state(u))
            << name << " state diverged at round " << t << " vertex " << u;
      const RoundStats a = opt->snapshot();
      const RoundStats b = ref->snapshot();
      ASSERT_EQ(a.black, b.black) << name << " round " << t;
      ASSERT_EQ(a.active, b.active) << name << " round " << t;
      ASSERT_EQ(a.stable_black, b.stable_black) << name << " round " << t;
      ASSERT_EQ(a.unstable, b.unstable) << name << " round " << t;
      ASSERT_EQ(a.gray, b.gray) << name << " round " << t;
      for (Vertex u = 0; u < g.num_vertices(); ++u)
        ASSERT_EQ(opt->settled(u), ref->settled(u))
            << name << " settled diverged at round " << t << " vertex " << u;
    }
  }
}

// Toggling the optimization off mid-run materializes every parked orbit;
// the process must land exactly on the unoptimized twin's state and keep
// matching from there (and re-enabling must stay matched too).
TEST(FastForward, MidRunToggleLandsOnUnoptimizedTrajectory) {
  const Graph g = gen::gnp(150, 0.05, 13);
  for (const std::string& name : ProtocolRegistry::instance().names()) {
    if (!declares_fast_forward(name)) continue;
    const auto opt = ProtocolRegistry::instance().make(name, g, ff_params(true), 21);
    const auto ref = ProtocolRegistry::instance().make(name, g, ff_params(false), 21);
    ASSERT_TRUE(opt->run(500000, TraceMode::kNone).stabilized) << name;
    ASSERT_TRUE(ref->run(500000, TraceMode::kNone).stabilized) << name;
    for (int phase = 0; phase < 4; ++phase) {
      opt->set_fast_forward(phase % 2 == 0);
      for (int i = 0; i < 40; ++i) {
        opt->step();
        ref->step();
        for (Vertex u = 0; u < g.num_vertices(); ++u)
          ASSERT_EQ(opt->raw_state(u), ref->raw_state(u))
              << name << " phase " << phase << " step " << i << " vertex " << u;
      }
    }
  }
}

}  // namespace
}  // namespace ssmis
