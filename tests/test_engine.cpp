// Engine invariant and differential tests.
//
// 1. Invariant cross-check: the engine's incrementally maintained state —
//    per-vertex neighbor counters, the active-set worklist, and the O(1)
//    aggregates (num_active, num_stable_black, num_unstable, histogram) —
//    is compared against brute-force recomputation from the raw colors,
//    every round, on random graphs, and under random force_color fault
//    injection between rounds.
//
// 2. Differential check: the engine-backed processes must produce
//    bit-identical color trajectories to the seed semantics (the naive
//    Definition 4/5 transcriptions in reference_processes.hpp), including
//    across force_color faults.
#include <gtest/gtest.h>

#include <vector>

#include "core/engine.hpp"
#include "core/init.hpp"
#include "core/three_color.hpp"
#include "core/three_state.hpp"
#include "core/two_state.hpp"
#include "core/two_state_variant.hpp"
#include "graph/generators.hpp"
#include "reference_processes.hpp"
#include "rng/coin_oracle.hpp"

namespace ssmis {
namespace {

// ---------------------------------------------------------------- helpers --

// Brute-force mirror of the engine state for any rule, recomputed from
// colors alone.
template <typename Engine>
void expect_engine_consistent(const Engine& e, const std::string& context) {
  const Graph& g = e.graph();
  const auto& rule = e.rule();
  const Vertex n = g.num_vertices();
  const int k = rule.num_counters();

  // Counters.
  std::vector<Vertex> want_cnt(static_cast<std::size_t>(n) * static_cast<std::size_t>(k), 0);
  for (Vertex u = 0; u < n; ++u) {
    for (int j = 0; j < k; ++j) {
      const Vertex c = rule.contribution(e.color(u), j);
      if (c == 0) continue;
      for (Vertex v : g.neighbors(u))
        want_cnt[static_cast<std::size_t>(v) * static_cast<std::size_t>(k) +
                 static_cast<std::size_t>(j)] += c;
    }
  }
  for (Vertex u = 0; u < n; ++u) {
    for (int j = 0; j < k; ++j) {
      ASSERT_EQ(e.counter(u, j),
                want_cnt[static_cast<std::size_t>(u) * static_cast<std::size_t>(k) +
                         static_cast<std::size_t>(j)])
          << context << ": counter " << j << " of vertex " << u;
    }
  }

  // Histogram.
  std::vector<Vertex> want_hist(static_cast<std::size_t>(rule.num_colors()), 0);
  for (Vertex u = 0; u < n; ++u)
    ++want_hist[static_cast<std::size_t>(static_cast<std::uint8_t>(e.color(u)))];
  for (int c = 0; c < rule.num_colors(); ++c) {
    ASSERT_EQ(e.color_count(static_cast<typename Engine::Color>(c)),
              want_hist[static_cast<std::size_t>(c)])
        << context << ": histogram bucket " << c;
  }

  // Worklist ∪ periodic set = scheduled predicate, exactly and disjointly.
  // (Fast-forwarded vertices are parked off the live worklist but remain
  // logically scheduled; for non-ff rules fast_forwarded(u) is always
  // false and this degenerates to worklist == scheduled.)
  Vertex want_scheduled = 0;
  for (Vertex u = 0; u < n; ++u) {
    const bool want = rule.scheduled(e.color(u), e.counters(u));
    const bool live = e.worklist().contains(u);
    const bool parked = e.fast_forwarded(u);
    ASSERT_EQ(e.scheduled(u), want) << context << ": scheduled flag of " << u;
    ASSERT_EQ(live || parked, want) << context << ": worklist/periodic entry " << u;
    ASSERT_FALSE(live && parked) << context << ": doubly tracked " << u;
    if (want) ++want_scheduled;
  }
  ASSERT_EQ(e.num_scheduled(), want_scheduled) << context;

  // Stability aggregates.
  if constexpr (Engine::kTracksStability) {
    Vertex want_active = 0, want_violations = 0, want_stable = 0;
    std::vector<char> covered(static_cast<std::size_t>(n), 0);
    for (Vertex u = 0; u < n; ++u) {
      const auto c = e.color(u);
      const Vertex* cnt = e.counters(u);
      const bool active = rule.active(c, cnt);
      const bool stable = rule.stable_black(c, cnt);
      ASSERT_EQ(e.active(u), active) << context << ": active flag of " << u;
      ASSERT_EQ(e.stable_black(u), stable) << context << ": stable flag of " << u;
      if (active) ++want_active;
      if (rule.violating(c, cnt)) ++want_violations;
      if (stable) {
        ++want_stable;
        covered[static_cast<std::size_t>(u)] = 1;
        for (Vertex v : g.neighbors(u)) covered[static_cast<std::size_t>(v)] = 1;
      }
    }
    Vertex want_unstable = 0;
    for (Vertex u = 0; u < n; ++u) {
      ASSERT_EQ(e.unstable(u), covered[static_cast<std::size_t>(u)] == 0)
          << context << ": unstable flag of " << u;
      if (!covered[static_cast<std::size_t>(u)]) ++want_unstable;
    }
    ASSERT_EQ(e.num_active(), want_active) << context;
    ASSERT_EQ(e.num_violations(), want_violations) << context;
    ASSERT_EQ(e.num_stable_black(), want_stable) << context;
    ASSERT_EQ(e.num_unstable(), want_unstable) << context;
    ASSERT_EQ(e.stabilized(), want_violations == 0) << context;
  }
}

std::string ctx(const char* name, const Graph& g, int round) {
  return std::string(name) + " " + g.summary() + " round " + std::to_string(round);
}

// ------------------------------------------------------- invariant checks --

TEST(EngineInvariants, TwoStateUnderSteppingAndFaults) {
  const std::vector<Graph> graphs = {gen::gnp(60, 0.08, 3), gen::complete(20),
                                     gen::random_tree(50, 5), Graph::from_edges(5, {})};
  const CoinOracle fault_coins(999);
  for (const Graph& g : graphs) {
    const CoinOracle coins(11);
    TwoStateMIS p(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
    expect_engine_consistent(p.engine(), ctx("2-state init", g, 0));
    for (int round = 1; round <= 60; ++round) {
      p.step();
      expect_engine_consistent(p.engine(), ctx("2-state", g, round));
      // A burst of random transient faults every few rounds.
      if (round % 7 == 0) {
        for (Vertex u = 0; u < g.num_vertices(); ++u) {
          if (!fault_coins.bernoulli(round, u, CoinTag::kFault, 0.2)) continue;
          p.force_color(u, fault_coins.fair_coin(round, u, CoinTag::kFault)
                               ? Color2::kBlack
                               : Color2::kWhite);
        }
        expect_engine_consistent(p.engine(), ctx("2-state post-fault", g, round));
      }
    }
  }
}

TEST(EngineInvariants, ThreeStateUnderSteppingAndFaults) {
  const std::vector<Graph> graphs = {gen::gnp(50, 0.1, 7), gen::star(17),
                                     gen::cycle(23)};
  const CoinOracle fault_coins(1000);
  for (const Graph& g : graphs) {
    const CoinOracle coins(13);
    ThreeStateMIS p(g, make_init3(g, InitPattern::kUniformRandom, coins), coins);
    for (int round = 1; round <= 60; ++round) {
      p.step();
      expect_engine_consistent(p.engine(), ctx("3-state", g, round));
      if (round % 9 == 0) {
        for (Vertex u = 0; u < g.num_vertices(); ++u) {
          if (!fault_coins.bernoulli(round, u, CoinTag::kFault, 0.2)) continue;
          p.force_color(u, static_cast<Color3>(
                               fault_coins.word(round, u, CoinTag::kFault) % 3));
        }
        expect_engine_consistent(p.engine(), ctx("3-state post-fault", g, round));
      }
    }
  }
}

TEST(EngineInvariants, ThreeColorUnderSteppingAndFaults) {
  const std::vector<Graph> graphs = {gen::gnp(40, 0.15, 17), gen::complete(14)};
  const CoinOracle fault_coins(1001);
  for (const Graph& g : graphs) {
    const CoinOracle coins(19);
    auto p = ThreeColorMIS::with_randomized_switch(
        g, make_init_g(g, InitPattern::kUniformRandom, coins), coins);
    for (int round = 1; round <= 60; ++round) {
      p.step();
      expect_engine_consistent(p.engine(), ctx("3-color", g, round));
      if (round % 8 == 0) {
        for (Vertex u = 0; u < g.num_vertices(); ++u) {
          if (!fault_coins.bernoulli(round, u, CoinTag::kFault, 0.2)) continue;
          p.force_color(u, static_cast<ColorG>(
                               fault_coins.word(round, u, CoinTag::kFault) % 3));
        }
        expect_engine_consistent(p.engine(), ctx("3-color post-fault", g, round));
      }
    }
  }
}

TEST(EngineInvariants, TwoStateVariantUnderStepping) {
  const Graph g = gen::gnp(50, 0.1, 23);
  const CoinOracle coins(29);
  TwoStateVariant p(g, make_init2(g, InitPattern::kAlternating, coins), coins, 0.3,
                    true);
  for (int round = 1; round <= 80; ++round) {
    p.step();
    expect_engine_consistent(p.engine(), ctx("variant", g, round));
  }
}

// The engine's subset-transition primitive (the daemon path) must uphold
// the same invariants and reject non-scheduled vertices.
TEST(EngineInvariants, SubsetTransitions) {
  const Graph g = gen::gnp(40, 0.12, 31);
  const CoinOracle coins(37);
  ProcessEngine<TwoStateRule> e(g, make_init2(g, InitPattern::kAllBlack, coins),
                                TwoStateRule(coins));
  const CoinOracle pick(41);
  for (int step = 1; step <= 200 && !e.stabilized(); ++step) {
    const auto enabled = e.scheduled_set();
    std::vector<Vertex> chosen;
    for (Vertex u : enabled)
      if (pick.bernoulli(step, u, CoinTag::kScheduler, 0.5)) chosen.push_back(u);
    if (chosen.empty()) chosen = enabled;
    e.apply_transitions({chosen.data(), chosen.size()}, step);
    expect_engine_consistent(e, ctx("subset", g, step));
  }
  // Activating a non-scheduled vertex is a daemon bug, not a silent no-op.
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (e.scheduled(u)) continue;
    const std::vector<Vertex> bad = {u};
    EXPECT_THROW(e.apply_transitions({bad.data(), bad.size()}, 1000),
                 std::logic_error);
    break;
  }
}

// ----------------------------------------------------- differential checks --

TEST(EngineDifferential, TwoStateMatchesReferenceAcrossFaults) {
  const Graph g = gen::gnp(45, 0.12, 43);
  const CoinOracle coins(47);
  std::vector<Color2> ref = make_init2(g, InitPattern::kUniformRandom, coins);
  TwoStateMIS p(g, ref, coins);
  const CoinOracle fault_coins(1002);
  for (std::int64_t t = 1; t <= 120; ++t) {
    p.step();
    ref = testing::reference_step2(g, ref, coins, t);
    ASSERT_EQ(p.colors(), ref) << "diverged at round " << t;
    if (t % 11 == 0) {
      for (Vertex u = 0; u < g.num_vertices(); ++u) {
        if (!fault_coins.bernoulli(t, u, CoinTag::kFault, 0.15)) continue;
        const Color2 c = fault_coins.fair_coin(t, u, CoinTag::kFault)
                             ? Color2::kBlack
                             : Color2::kWhite;
        p.force_color(u, c);
        ref[static_cast<std::size_t>(u)] = c;
      }
    }
  }
}

TEST(EngineDifferential, ThreeStateMatchesReferenceAcrossFaults) {
  const Graph g = gen::gnp(45, 0.12, 53);
  const CoinOracle coins(59);
  std::vector<Color3> ref = make_init3(g, InitPattern::kUniformRandom, coins);
  ThreeStateMIS p(g, ref, coins);
  const CoinOracle fault_coins(1003);
  for (std::int64_t t = 1; t <= 120; ++t) {
    p.step();
    ref = testing::reference_step3(g, ref, coins, t);
    ASSERT_EQ(p.colors(), ref) << "diverged at round " << t;
    if (t % 13 == 0) {
      for (Vertex u = 0; u < g.num_vertices(); ++u) {
        if (!fault_coins.bernoulli(t, u, CoinTag::kFault, 0.15)) continue;
        const Color3 c =
            static_cast<Color3>(fault_coins.word(t, u, CoinTag::kFault) % 3);
        p.force_color(u, c);
        ref[static_cast<std::size_t>(u)] = c;
      }
    }
  }
}

// The variant rule with q = 1/2 and eager_white = false is Definition 4 on
// the kAblation coin stream: check against an inline transcription.
TEST(EngineDifferential, VariantMatchesInlineReference) {
  const Graph g = gen::gnp(40, 0.15, 61);
  const CoinOracle coins(67);
  for (const bool eager : {false, true}) {
    const double q = 0.35;
    std::vector<Color2> ref = make_init2(g, InitPattern::kUniformRandom, coins);
    TwoStateVariant p(g, ref, coins, q, eager);
    for (std::int64_t t = 1; t <= 100; ++t) {
      std::vector<Color2> next = ref;
      for (Vertex u = 0; u < g.num_vertices(); ++u) {
        bool has_black_nbr = false;
        for (Vertex v : g.neighbors(u))
          if (ref[static_cast<std::size_t>(v)] == Color2::kBlack) has_black_nbr = true;
        const bool is_b = ref[static_cast<std::size_t>(u)] == Color2::kBlack;
        if (!(is_b ? has_black_nbr : !has_black_nbr)) continue;  // not active
        bool to_black;
        if (eager && !is_b) {
          to_black = true;
        } else {
          to_black = coins.bernoulli(t, u, CoinTag::kAblation, q);
        }
        next[static_cast<std::size_t>(u)] = to_black ? Color2::kBlack : Color2::kWhite;
      }
      p.step();
      ref = next;
      ASSERT_EQ(p.colors(), ref) << "eager=" << eager << " round " << t;
    }
  }
}

// force_color must be an exact no-op when the color is unchanged, and must
// validate its arguments.
TEST(Engine, ForceColorValidation) {
  const Graph g = gen::path(4);
  const CoinOracle coins(1);
  TwoStateMIS p(g, std::vector<Color2>(4, Color2::kWhite), coins);
  EXPECT_THROW(p.force_color(-1, Color2::kBlack), std::out_of_range);
  EXPECT_THROW(p.force_color(4, Color2::kBlack), std::out_of_range);
  const auto before = p.colors();
  p.force_color(2, Color2::kWhite);  // same color: no-op
  EXPECT_EQ(p.colors(), before);
  expect_engine_consistent(p.engine(), "force_color no-op");
}

// Engine-level construction validation.
TEST(Engine, ConstructionValidation) {
  const Graph g = gen::path(3);
  const CoinOracle coins(1);
  EXPECT_THROW(ProcessEngine<TwoStateRule>(g, std::vector<Color2>(2, Color2::kWhite),
                                           TwoStateRule(coins)),
               std::invalid_argument);
}

}  // namespace
}  // namespace ssmis
