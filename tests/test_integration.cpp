// End-to-end scenarios crossing module boundaries: processes + models +
// faults + harness + verification in one flow.
#include <gtest/gtest.h>

#include <cmath>

#include "core/faults.hpp"
#include "core/init.hpp"
#include "core/luby.hpp"
#include "core/runner.hpp"
#include "core/sequential.hpp"
#include "core/three_color.hpp"
#include "core/two_state.hpp"
#include "core/verify.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/good_graph.hpp"
#include "harness/experiment.hpp"
#include "models/beeping.hpp"
#include "models/mis_automata.hpp"
#include "stats/fit.hpp"

namespace ssmis {
namespace {

TEST(Integration, Theorem8ShapeCliqueLogarithmic) {
  // 2-state on K_n: mean stabilization grows like log n — the ratio
  // mean/log2(n) should stay within a small constant band across sizes.
  std::vector<double> log_n, mean_rounds;
  for (Vertex n : {16, 32, 64, 128, 256}) {
    const Graph g = gen::complete(n);
    MeasureConfig config;
    config.trials = 15;
    config.seed = 100 + static_cast<std::uint64_t>(n);
    config.max_rounds = 1000000;
    const Measurements m = measure_stabilization(g, config);
    ASSERT_EQ(m.timeouts, 0);
    log_n.push_back(std::log2(static_cast<double>(n)));
    mean_rounds.push_back(m.summary.mean);
  }
  // Growth clearly sub-linear: mean(K256) < 4 x mean(K16) even though n
  // grew 16x; and positively correlated with log n.
  EXPECT_LT(mean_rounds.back(), 6.0 * mean_rounds.front());
  EXPECT_GT(fit_linear(log_n, mean_rounds).slope, 0.0);
}

TEST(Integration, Theorem11TreesFasterThanCliques) {
  // Bounded arboricity O(log n) vs clique Theta(log n) expected but with
  // larger constants: at minimum, trees must stabilize and stay in the same
  // order of magnitude of rounds.
  const Graph tree = gen::random_tree(1024, 5);
  MeasureConfig config;
  config.trials = 10;
  config.max_rounds = 100000;
  const Measurements m = measure_stabilization(tree, config);
  EXPECT_EQ(m.timeouts, 0);
  EXPECT_LT(m.summary.mean, 30 * std::log2(1024.0));
}

TEST(Integration, GnpSparseAndDenseBothPolylog) {
  for (double p : {0.01, 0.3}) {
    const Graph g = gen::gnp(512, p, 77);
    MeasureConfig config;
    config.trials = 5;
    config.max_rounds = 500000;
    const Measurements m = measure_stabilization(g, config);
    EXPECT_EQ(m.timeouts, 0) << "p=" << p;
    const double log_n = std::log2(512.0);
    EXPECT_LT(m.summary.max, 20 * log_n * log_n) << "p=" << p;
  }
}

TEST(Integration, ThreeColorHandlesIntermediateRegime) {
  // p = n^{-1/4}: the regime where the 2-state analysis does not apply but
  // Theorem 32 guarantees poly(log n) for the 3-color process.
  const Vertex n = 512;
  const double p = std::pow(static_cast<double>(n), -0.25);
  const Graph g = gen::gnp(n, p, 31);
  MeasureConfig config;
  config.protocol = "3color";
  config.trials = 5;
  config.max_rounds = 500000;
  const Measurements m = measure_stabilization(g, config);
  EXPECT_EQ(m.timeouts, 0);
  const double log_n = std::log2(static_cast<double>(n));
  EXPECT_LT(m.summary.max, 40 * log_n * log_n);
}

TEST(Integration, BeepingNetworkSurvivesFaultsViaUnderlyingProcess) {
  // Run the beeping-model 2-state algorithm, corrupt mid-flight by forcing
  // states in the network, keep running: it must still reach a valid MIS
  // (self-stabilization at the model level).
  const Graph g = gen::gnp(80, 0.08, 41);
  const CoinOracle coins(43);
  const TwoStateBeepAutomaton automaton;
  std::vector<std::uint8_t> init(static_cast<std::size_t>(g.num_vertices()), 0);
  BeepingNetwork net(g, automaton, init, coins);
  for (int i = 0; i < 300; ++i) net.step();
  // "Fault": rebuild the network from a half-corrupted snapshot, keeping
  // the same oracle (future coins unchanged).
  std::vector<std::uint8_t> corrupted = net.states();
  for (Vertex u = 0; u < g.num_vertices(); u += 2)
    corrupted[static_cast<std::size_t>(u)] ^= 1;
  BeepingNetwork net2(g, automaton, corrupted, coins);
  for (int i = 0; i < 5000; ++i) {
    net2.step();
    if (is_mis(g, net2.claimed_mis())) break;
  }
  EXPECT_TRUE(is_mis(g, net2.claimed_mis()));
}

TEST(Integration, RepeatedFaultBurstsAlwaysReconverge) {
  const Graph g = gen::gnp(100, 0.06, 47);
  const CoinOracle coins(53);
  TwoStateMIS p(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
  for (int burst = 0; burst < 5; ++burst) {
    const RunResult r = run_until_stabilized(p, 100000);
    ASSERT_TRUE(r.stabilized) << "burst " << burst;
    ASSERT_TRUE(is_mis(g, p.black_set()));
    inject_faults(p, 0.3, burst);
  }
}

TEST(Integration, AllAlgorithmsAgreeOnValidityNotIdentity) {
  // Different algorithms on the same graph: all MIS, often different sets.
  const Graph g = gen::gnp(120, 0.07, 59);
  const CoinOracle coins(61);

  TwoStateMIS p2(g, make_init2(g, InitPattern::kAllWhite, coins), coins);
  run_until_stabilized(p2, 100000);
  ASSERT_TRUE(is_mis(g, p2.black_set()));

  LubyMIS luby(g, coins);
  luby.run(1000);
  ASSERT_TRUE(is_mis(g, luby.mis_set()));

  SequentialMIS seq(g, make_init2(g, InitPattern::kAllWhite, coins));
  RoundRobinScheduler sched;
  seq.run(sched, 10 * g.num_vertices());
  ASSERT_TRUE(is_mis(g, seq.black_set()));

  EXPECT_TRUE(is_mis(g, greedy_mis(g)));
}

TEST(Integration, GoodGraphPropertiesHoldOnTypicalGnp) {
  // Lemma 18 in miniature: a few (n, p) cells, sampled checker, all pass.
  struct Cell { Vertex n; double p; };
  for (const Cell cell : {Cell{128, 0.2}, Cell{256, 0.1}, Cell{256, 0.05}}) {
    const Graph g = gen::gnp(cell.n, cell.p, 1000 + cell.n);
    const auto report = check_good_sampled(g, cell.p, 15, 7);
    EXPECT_TRUE(report.all())
        << "n=" << cell.n << " p=" << cell.p << " " << report.to_string();
  }
}

TEST(Integration, DisjointCliquesStabilizationIsMaxOverComponents) {
  // Remark 9's mechanism: the process on disjoint cliques is the max of
  // independent clique processes. Cross-check: running on the union gives
  // the same per-component black sets as running per component with the
  // same per-vertex coins would (components do not interact).
  const Graph g = gen::disjoint_cliques(8, 16);
  const CoinOracle coins(67);
  TwoStateMIS p(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
  const RunResult r = run_until_stabilized(p, 1000000);
  ASSERT_TRUE(r.stabilized);
  const auto comp = connected_components(g);
  std::vector<int> blacks_per_comp(8, 0);
  for (Vertex u : p.black_set()) ++blacks_per_comp[static_cast<std::size_t>(comp[static_cast<std::size_t>(u)])];
  for (int count : blacks_per_comp) EXPECT_EQ(count, 1);  // one per clique
}

TEST(Integration, TracedRunShowsProgressStructure) {
  const Graph g = gen::gnp(200, 0.05, 71);
  MeasureConfig config;
  config.trials = 1;
  config.max_rounds = 100000;
  const RunResult r = traced_run(g, config);
  ASSERT_TRUE(r.stabilized);
  // |V_t| ends at 0, starts positive, never increases.
  ASSERT_GE(r.trace.size(), 2u);
  EXPECT_GT(r.trace.front().unstable, 0);
  EXPECT_EQ(r.trace.back().unstable, 0);
  for (std::size_t i = 1; i < r.trace.size(); ++i)
    ASSERT_LE(r.trace[i].unstable, r.trace[i - 1].unstable);
}

}  // namespace
}  // namespace ssmis
