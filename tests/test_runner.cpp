#include <gtest/gtest.h>

#include "core/faults.hpp"
#include "core/init.hpp"
#include "core/runner.hpp"
#include "core/three_color.hpp"
#include "core/three_state.hpp"
#include "core/two_state.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"

namespace ssmis {
namespace {

TEST(Runner, StopsAtStabilization) {
  const Graph g = gen::complete(16);
  const CoinOracle coins(3);
  TwoStateMIS p(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
  const RunResult r = run_until_stabilized(p, 100000);
  ASSERT_TRUE(r.stabilized);
  EXPECT_EQ(r.rounds, p.round());
  EXPECT_TRUE(p.stabilized());
}

TEST(Runner, RespectsMaxRounds) {
  const Graph g = gen::complete(64);
  const CoinOracle coins(3);
  TwoStateMIS p(g, make_init2(g, InitPattern::kAllBlack, coins), coins);
  const RunResult r = run_until_stabilized(p, 1);
  EXPECT_EQ(r.rounds, 1);
  // (A 64-clique essentially never stabilizes in one round from all-black.)
  EXPECT_FALSE(r.stabilized);
}

TEST(Runner, TraceRecordsEveryRoundPlusInitial) {
  const Graph g = gen::complete(8);
  const CoinOracle coins(5);
  TwoStateMIS p(g, make_init2(g, InitPattern::kAllBlack, coins), coins);
  const RunResult r = run_until_stabilized(p, 10000, TraceMode::kPerRound);
  ASSERT_TRUE(r.stabilized);
  ASSERT_EQ(r.trace.size(), static_cast<std::size_t>(r.rounds) + 1);
  EXPECT_EQ(r.trace.front().round, 0);
  EXPECT_EQ(r.trace.back().round, r.rounds);
  // Final snapshot: no active vertices, everything stable.
  EXPECT_EQ(r.trace.back().active, 0);
  EXPECT_EQ(r.trace.back().unstable, 0);
}

TEST(Runner, TraceInvariants) {
  const Graph g = gen::gnp(40, 0.15, 7);
  const CoinOracle coins(7);
  TwoStateMIS p(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
  const RunResult r = run_until_stabilized(p, 10000, TraceMode::kPerRound);
  ASSERT_TRUE(r.stabilized);
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    const RoundStats& s = r.trace[i];
    EXPECT_LE(s.stable_black, s.black);
    EXPECT_LE(s.active, 40);
    EXPECT_GE(s.unstable, 0);
    if (i > 0) {
      EXPECT_LE(s.unstable, r.trace[i - 1].unstable);  // V_t shrinks
    }
  }
}

TEST(Runner, SnapshotReflectsProcess) {
  const Graph g = gen::path(4);
  TwoStateMIS p(g, {Color2::kBlack, Color2::kWhite, Color2::kBlack, Color2::kWhite},
                CoinOracle(1));
  const RoundStats s = snapshot(p);
  EXPECT_EQ(s.black, 2);
  EXPECT_EQ(s.active, 0);
  EXPECT_EQ(s.stable_black, 2);
  EXPECT_EQ(s.unstable, 0);
  EXPECT_EQ(s.gray, 0);
}

TEST(Runner, TraceCsvFormat) {
  RunResult r;
  r.trace.push_back({0, 3, 2, 1, 4, 0});
  const std::string csv = trace_to_csv(r);
  EXPECT_NE(csv.find("round,black,active,stable_black,unstable,gray"), std::string::npos);
  EXPECT_NE(csv.find("0,3,2,1,4,0"), std::string::npos);
}

TEST(Faults, TwoStateRecoversFromCorruption) {
  const Graph g = gen::gnp(60, 0.1, 11);
  const CoinOracle coins(13);
  TwoStateMIS p(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
  RunResult r = run_until_stabilized(p, 50000);
  ASSERT_TRUE(r.stabilized);
  const auto report = inject_faults(p, 0.5, /*salt=*/1);
  EXPECT_GT(report.corrupted, 0);
  // Self-stabilization: it re-converges to some (possibly different) MIS.
  r = run_until_stabilized(p, 50000);
  ASSERT_TRUE(r.stabilized);
  EXPECT_TRUE(is_mis(g, p.black_set()));
}

TEST(Faults, ThreeStateRecovers) {
  const Graph g = gen::gnp(60, 0.1, 17);
  const CoinOracle coins(19);
  ThreeStateMIS p(g, make_init3(g, InitPattern::kAllWhite, coins), coins);
  RunResult r = run_until_stabilized(p, 50000);
  ASSERT_TRUE(r.stabilized);
  inject_faults(p, 0.4, 2);
  r = run_until_stabilized(p, 50000);
  ASSERT_TRUE(r.stabilized);
  EXPECT_TRUE(is_mis(g, p.black_set()));
}

TEST(Faults, ThreeColorRecoversIncludingClockCorruption) {
  const Graph g = gen::gnp(50, 0.2, 23);
  const CoinOracle coins(29);
  auto p = ThreeColorMIS::with_randomized_switch(
      g, make_init_g(g, InitPattern::kUniformRandom, coins), coins);
  RunResult r = run_until_stabilized(p, 100000);
  ASSERT_TRUE(r.stabilized);
  inject_faults(p, 0.5, 3);
  r = run_until_stabilized(p, 100000);
  ASSERT_TRUE(r.stabilized);
  EXPECT_TRUE(is_mis(g, p.black_set()));
}

TEST(Faults, ZeroFractionCorruptsNothing) {
  const Graph g = gen::path(10);
  const CoinOracle coins(31);
  TwoStateMIS p(g, make_init2(g, InitPattern::kAllWhite, coins), coins);
  EXPECT_EQ(inject_faults(p, 0.0, 1).corrupted, 0);
}

TEST(Faults, FullFractionTouchesEveryVertex) {
  const Graph g = gen::path(10);
  const CoinOracle coins(37);
  TwoStateMIS p(g, make_init2(g, InitPattern::kAllWhite, coins), coins);
  EXPECT_EQ(inject_faults(p, 1.0, 1).corrupted, 10);
}

TEST(Harness, MeasureStabilizationVerifiesMis) {
  const Graph g = gen::complete(16);
  MeasureConfig config;
  config.protocol = "2state";
  config.trials = 10;
  config.max_rounds = 100000;
  const Measurements m = measure_stabilization(g, config);
  EXPECT_EQ(m.timeouts, 0);
  EXPECT_EQ(m.stabilization_rounds.size(), 10u);
  EXPECT_GT(m.summary.mean, 0.0);
}

TEST(Harness, AllThreeKindsRun) {
  const Graph g = gen::gnp(30, 0.2, 41);
  for (const char* protocol : {"2state", "3state", "3color"}) {
    MeasureConfig config;
    config.protocol = protocol;
    config.trials = 3;
    config.max_rounds = 200000;
    const Measurements m = measure_stabilization(g, config);
    EXPECT_EQ(m.timeouts, 0) << protocol;
  }
}

TEST(Harness, TracedRunEndsStable) {
  const Graph g = gen::complete(12);
  MeasureConfig config;
  config.protocol = "3state";
  const RunResult r = traced_run(g, config);
  ASSERT_TRUE(r.stabilized);
  EXPECT_FALSE(r.trace.empty());
}

TEST(Harness, TimeoutsReported) {
  const Graph g = gen::complete(64);
  MeasureConfig config;
  config.protocol = "2state";
  config.init = InitPattern::kAllBlack;
  config.trials = 5;
  config.max_rounds = 1;  // cannot stabilize in one round
  const Measurements m = measure_stabilization(g, config);
  EXPECT_EQ(m.timeouts, 5);
}

}  // namespace
}  // namespace ssmis
