#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"

namespace ssmis {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.max_degree(), 0);
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
}

TEST(Graph, FromEdgesBasic) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Graph, DuplicateEdgesCollapse) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 0}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 2);
}

TEST(Graph, SelfLoopsDropped) {
  const Graph g = Graph::from_edges(3, {{0, 0}, {1, 1}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Graph, NeighborsSortedAndDeduplicated) {
  const Graph g = Graph::from_edges(5, {{2, 4}, {2, 0}, {2, 3}, {2, 1}, {4, 2}});
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_TRUE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end());
}

TEST(Graph, AdjacencyIsSymmetric) {
  const Graph g = Graph::from_edges(6, {{0, 1}, {2, 5}, {3, 4}, {1, 5}});
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (Vertex v : g.neighbors(u)) {
      EXPECT_TRUE(g.has_edge(v, u)) << u << "-" << v;
    }
  }
}

TEST(Graph, OutOfRangeEdgeThrows) {
  EXPECT_THROW(Graph::from_edges(3, {{0, 3}}), std::invalid_argument);
  EXPECT_THROW(Graph::from_edges(3, {{-1, 0}}), std::invalid_argument);
}

TEST(Graph, EdgeListRoundTrip) {
  const std::vector<Edge> edges = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  const Graph g = Graph::from_edges(4, edges);
  EXPECT_EQ(g.edge_list(), edges);
}

TEST(Graph, EqualityOperator) {
  const Graph a = Graph::from_edges(3, {{0, 1}});
  const Graph b = Graph::from_edges(3, {{1, 0}});
  const Graph c = Graph::from_edges(3, {{0, 2}});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(Graph, AverageDegree) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
}

TEST(Graph, SummaryMentionsCounts) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}});
  const std::string s = g.summary();
  EXPECT_NE(s.find("n=4"), std::string::npos);
  EXPECT_NE(s.find("m=2"), std::string::npos);
}

TEST(GraphBuilder, NegativeSizeThrows) {
  EXPECT_THROW(GraphBuilder(-1), std::invalid_argument);
}

TEST(GraphBuilder, NonDestructiveBuild) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g1 = b.build();
  b.add_edge(1, 2);
  const Graph g2 = b.build();
  EXPECT_EQ(g1.num_edges(), 1);
  EXPECT_EQ(g2.num_edges(), 2);
}

TEST(GraphBuilder, RecordsEdgeCountBeforeDedup) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  EXPECT_EQ(b.num_recorded_edges(), 2u);
  EXPECT_EQ(std::move(b).build().num_edges(), 1);
}

TEST(GraphIo, EdgeListRoundTrip) {
  const Graph g = Graph::from_edges(5, {{0, 1}, {1, 2}, {3, 4}});
  const Graph back = io::from_edge_list_string(io::to_edge_list_string(g));
  EXPECT_EQ(g, back);
}

TEST(GraphIo, CommentsAndBlankLinesSkipped) {
  const Graph g = io::from_edge_list_string("# header comment\n3 1\n\n# mid\n0 2\n");
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(GraphIo, MalformedHeaderThrows) {
  EXPECT_THROW(io::from_edge_list_string("x y\n"), std::runtime_error);
  EXPECT_THROW(io::from_edge_list_string(""), std::runtime_error);
}

TEST(GraphIo, EdgeCountMismatchThrows) {
  EXPECT_THROW(io::from_edge_list_string("3 2\n0 1\n"), std::runtime_error);
}

TEST(GraphIo, DotContainsHighlights) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}});
  std::ostringstream oss;
  io::write_dot(oss, g, {1});
  const std::string dot = oss.str();
  EXPECT_NE(dot.find("graph G"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=black"), std::string::npos);
}

}  // namespace
}  // namespace ssmis
