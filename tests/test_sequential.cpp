#include <gtest/gtest.h>

#include "core/init.hpp"
#include "core/sequential.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"

namespace ssmis {
namespace {

std::vector<Color2> colors_of(const char* pattern, Vertex n) {
  std::vector<Color2> out(static_cast<std::size_t>(n));
  for (Vertex u = 0; u < n; ++u)
    out[static_cast<std::size_t>(u)] = pattern[u] == 'b' ? Color2::kBlack : Color2::kWhite;
  return out;
}

TEST(Sequential, MoveRequiresEnabled) {
  const Graph g = gen::path(3);
  SequentialMIS p(g, colors_of("bwb", 3));  // an MIS: nothing enabled
  EXPECT_THROW(p.move(0), std::logic_error);
}

TEST(Sequential, MoveFlipsDeterministically) {
  const Graph g = gen::path(2);
  SequentialMIS p(g, colors_of("bb", 2));
  EXPECT_EQ(p.move(0), Color2::kWhite);  // black with black neighbor -> white
  EXPECT_FALSE(p.enabled(0));            // white with black neighbor: settled
  EXPECT_FALSE(p.enabled(1));            // black with no black neighbor: stable
  EXPECT_TRUE(p.stabilized());
}

TEST(Sequential, EnabledMatchesActivePredicate) {
  const Graph g = gen::path(4);
  const SequentialMIS p(g, colors_of("bbww", 4));
  EXPECT_TRUE(p.enabled(0));
  EXPECT_TRUE(p.enabled(1));
  EXPECT_FALSE(p.enabled(2));
  EXPECT_TRUE(p.enabled(3));
}

TEST(Sequential, AtMostTwoMovesPerVertexAllSchedulers) {
  // The classical invariant: under ANY central daemon, each vertex moves at
  // most twice and the result is an MIS.
  const std::vector<Graph> graphs = {
      gen::complete(20),       gen::path(50),        gen::cycle(33),
      gen::star(25),           gen::gnp(80, 0.1, 5), gen::random_tree(60, 6),
      gen::grid(7, 8),         gen::disjoint_cliques(4, 8),
  };
  for (const Graph& g : graphs) {
    for (InitPattern pattern : all_init_patterns()) {
      const CoinOracle coins(3);
      std::vector<std::unique_ptr<Scheduler>> schedulers;
      schedulers.push_back(std::make_unique<RoundRobinScheduler>());
      schedulers.push_back(std::make_unique<RandomScheduler>(7));
      schedulers.push_back(std::make_unique<MaxDegreeScheduler>(g));
      schedulers.push_back(std::make_unique<LowestIdScheduler>());
      for (auto& sched : schedulers) {
        SequentialMIS p(g, make_init2(g, pattern, coins));
        const auto result = p.run(*sched, 4 * g.num_vertices() + 10);
        ASSERT_TRUE(result.stabilized)
            << g.summary() << " " << sched->name() << " " << to_string(pattern);
        EXPECT_LE(result.max_moves_per_vertex, 2)
            << g.summary() << " " << sched->name();
        EXPECT_LE(result.total_moves, 2 * g.num_vertices());
        EXPECT_TRUE(is_mis(g, p.black_set()));
      }
    }
  }
}

TEST(Sequential, StabilizedImmediatelyOnMis) {
  const Graph g = gen::path(4);
  SequentialMIS p(g, colors_of("bwbw", 4));
  RoundRobinScheduler sched;
  const auto result = p.run(sched, 100);
  EXPECT_TRUE(result.stabilized);
  EXPECT_EQ(result.total_moves, 0);
}

TEST(Sequential, DeterministicParallelLivelocksOnK2) {
  // Both-black K_2 under the synchronous *deterministic* rule oscillates
  // forever: bb -> ww -> bb -> ... This is the livelock randomization fixes.
  const Graph g = gen::complete(2);
  SequentialMIS p(g, colors_of("bb", 2));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(p.step_parallel_deterministic(), 2);
    const bool all_white = !p.black(0) && !p.black(1);
    const bool all_black = p.black(0) && p.black(1);
    EXPECT_TRUE(all_white || all_black);
  }
  EXPECT_FALSE(p.enabled_set().empty());  // still livelocked
}

TEST(Sequential, DeterministicParallelLivelocksOnEvenCycleAllBlack) {
  const Graph g = gen::cycle(6);
  SequentialMIS p(g, colors_of("bbbbbb", 6));
  for (int i = 0; i < 20; ++i) p.step_parallel_deterministic();
  EXPECT_FALSE(p.enabled_set().empty());
}

TEST(Sequential, RoundRobinCursorWraps) {
  const Graph g = Graph::from_edges(3, {});  // all isolated, all enabled (white)
  SequentialMIS p(g, colors_of("www", 3));
  RoundRobinScheduler sched;
  EXPECT_EQ(p.move(sched.pick(p.enabled_set(), 0)), Color2::kBlack);
  EXPECT_EQ(sched.pick(p.enabled_set(), 1), 1);
  EXPECT_EQ(p.move(1), Color2::kBlack);
  EXPECT_EQ(sched.pick(p.enabled_set(), 2), 2);
}

TEST(Sequential, MaxDegreeSchedulerPicksHub) {
  const Graph g = gen::star(5);
  SequentialMIS p(g, colors_of("bbbbb", 5));
  MaxDegreeScheduler sched(g);
  EXPECT_EQ(sched.pick(p.enabled_set(), 0), 0);  // the hub
}

TEST(Sequential, MovesOfTracksPerVertex) {
  const Graph g = gen::complete(2);
  SequentialMIS p(g, colors_of("bb", 2));
  p.move(0);
  EXPECT_EQ(p.moves_of(0), 1);
  EXPECT_EQ(p.moves_of(1), 0);
}

TEST(Sequential, InitSizeMismatchThrows) {
  const Graph g = gen::path(3);
  EXPECT_THROW(SequentialMIS(g, colors_of("bw", 2)), std::invalid_argument);
}

}  // namespace
}  // namespace ssmis
