#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "rng/coin_oracle.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"

namespace ssmis {
namespace {

TEST(SplitMix64, KnownSequence) {
  // Reference values for seed 0 from the SplitMix64 reference implementation.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(SplitMix64, MixIsDeterministic) {
  EXPECT_EQ(splitmix64_mix(42), splitmix64_mix(42));
  EXPECT_NE(splitmix64_mix(42), splitmix64_mix(43));
}

TEST(Xoshiro256, DeterministicPerSeed) {
  Xoshiro256 a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    const auto x = a.next();
    EXPECT_EQ(x, b.next());
    EXPECT_NE(x, c.next());  // astronomically unlikely to collide repeatedly
  }
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(123);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Xoshiro256, NextBelowZeroBound) {
  Xoshiro256 rng(123);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256, AllZeroStateIsEscaped) {
  // The all-zero state is the fixed point of the xoshiro update: without a
  // guard such a generator emits 0 forever. The raw-state constructor (and
  // the seeding constructor, which shares the guard) must escape it.
  const std::uint64_t zeros[4] = {0, 0, 0, 0};
  Xoshiro256 rng(zeros);
  bool any_nonzero = false;
  for (int i = 0; i < 16; ++i) any_nonzero |= rng.next() != 0;
  EXPECT_TRUE(any_nonzero);
  // And the escape is deterministic.
  Xoshiro256 again(zeros);
  Xoshiro256 reference(zeros);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(again.next(), reference.next());
}

TEST(Xoshiro256, RawStatePassthroughWhenNonzero) {
  // A nonzero raw state is used verbatim (no silent re-mixing).
  const std::uint64_t state[4] = {1, 2, 3, 4};
  Xoshiro256 a(state), b(state);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.next(), b.next());
  // Seed whose SplitMix64 expansion starts with a zero word (seed = -gamma
  // makes the first increment wrap to 0, and splitmix64_mix(0) == 0): the
  // generator must still run fine — only ALL-zero states are degenerate.
  Xoshiro256 partial(0ULL - 0x9e3779b97f4a7c15ULL);
  bool any_nonzero = false;
  for (int i = 0; i < 16; ++i) any_nonzero |= partial.next() != 0;
  EXPECT_TRUE(any_nonzero);
}

TEST(Xoshiro256, UniformityCoarse) {
  // 10 bins, 100k draws: each bin within 10% of expectation.
  Xoshiro256 rng(99);
  std::vector<int> bins(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i)
    ++bins[static_cast<std::size_t>(rng.next_double() * 10.0)];
  for (int count : bins) {
    EXPECT_NEAR(count, draws / 10, draws / 100);
  }
}

TEST(CoinOracle, PureFunctionOfInputs) {
  const CoinOracle a(42), b(42), c(43);
  EXPECT_EQ(a.word(3, 7, CoinTag::kMisColor), b.word(3, 7, CoinTag::kMisColor));
  EXPECT_NE(a.word(3, 7, CoinTag::kMisColor), c.word(3, 7, CoinTag::kMisColor));
}

TEST(CoinOracle, DimensionsAreIndependent) {
  const CoinOracle coins(1);
  // Changing any single coordinate changes the word.
  const auto base = coins.word(5, 9, CoinTag::kMisColor);
  EXPECT_NE(base, coins.word(6, 9, CoinTag::kMisColor));
  EXPECT_NE(base, coins.word(5, 10, CoinTag::kMisColor));
  EXPECT_NE(base, coins.word(5, 9, CoinTag::kSwitchBit));
}

TEST(CoinOracle, NoObviousCounterAliasing) {
  // (round, vertex) pairs along a diagonal must not collide: hash 1000
  // nearby counters and expect all distinct words.
  const CoinOracle coins(17);
  std::set<std::uint64_t> words;
  for (int t = 0; t < 50; ++t)
    for (std::int32_t u = 0; u < 20; ++u)
      words.insert(coins.word(t, u, CoinTag::kMisColor));
  EXPECT_EQ(words.size(), 1000u);
}

TEST(CoinOracle, FairCoinIsRoughlyFair) {
  const CoinOracle coins(2024);
  int heads = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i)
    if (coins.fair_coin(i, i % 97)) ++heads;
  EXPECT_NEAR(heads, draws / 2, 4 * std::sqrt(draws));  // ~4 sigma
}

TEST(CoinOracle, DyadicBernoulliMatchesProbability) {
  // zeta = 1/128, 200k draws: expect ~1562 +- 5 sigma.
  const CoinOracle coins(7);
  int hits = 0;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i)
    if (coins.dyadic_bernoulli(i, 3, CoinTag::kSwitchBit, 1, 7)) ++hits;
  const double expect = draws / 128.0;
  EXPECT_NEAR(hits, expect, 5 * std::sqrt(expect));
}

TEST(CoinOracle, DyadicBernoulliExtremes) {
  const CoinOracle coins(7);
  // num = 2^den - 1 is probability ~1 - 2^-den: nearly always true.
  int hits = 0;
  for (int i = 0; i < 1000; ++i)
    if (coins.dyadic_bernoulli(i, 0, CoinTag::kSwitchBit, 127, 7)) ++hits;
  EXPECT_GT(hits, 980);
}

TEST(CoinOracle, BernoulliDoubleProbability) {
  const CoinOracle coins(3);
  int hits = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i)
    if (coins.bernoulli(i, 1, CoinTag::kFault, 0.3)) ++hits;
  EXPECT_NEAR(hits, 30000, 5 * std::sqrt(30000.0));
}

TEST(CoinOracle, BernoulliEdgeProbabilities) {
  const CoinOracle coins(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(coins.bernoulli(i, 0, CoinTag::kFault, 0.0));
    EXPECT_TRUE(coins.bernoulli(i, 0, CoinTag::kFault, 1.0));
  }
}

TEST(CoinOracle, UniformInUnitInterval) {
  const CoinOracle coins(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = coins.uniform(i, 5, CoinTag::kLuby);
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(CoinOracle, NegativeRoundsSupported) {
  // Fault injection and init streams use negative rounds; they must be
  // deterministic and distinct from positive rounds.
  const CoinOracle coins(9);
  EXPECT_EQ(coins.word(-5, 2, CoinTag::kFault), coins.word(-5, 2, CoinTag::kFault));
  EXPECT_NE(coins.word(-5, 2, CoinTag::kFault), coins.word(5, 2, CoinTag::kFault));
}

}  // namespace
}  // namespace ssmis
