#include <gtest/gtest.h>

#include "core/init.hpp"
#include "core/runner.hpp"
#include "core/two_state.hpp"
#include "core/two_state_variant.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"

namespace ssmis {
namespace {

TEST(TwoStateVariant, Validation) {
  const Graph g = gen::path(3);
  const std::vector<Color2> init(3, Color2::kWhite);
  EXPECT_THROW(TwoStateVariant(g, {Color2::kWhite}, CoinOracle(1), 0.5, false),
               std::invalid_argument);
  EXPECT_THROW(TwoStateVariant(g, init, CoinOracle(1), 0.0, false),
               std::invalid_argument);
  EXPECT_THROW(TwoStateVariant(g, init, CoinOracle(1), 1.0, false),
               std::invalid_argument);
  EXPECT_NO_THROW(TwoStateVariant(g, init, CoinOracle(1), 0.5, true));
}

TEST(TwoStateVariant, ActivePredicateMatchesBaseProcess) {
  const Graph g = gen::path(4);
  const std::vector<Color2> init = {Color2::kBlack, Color2::kBlack, Color2::kWhite,
                                    Color2::kWhite};
  const TwoStateVariant v(g, init, CoinOracle(1), 0.5, false);
  const TwoStateMIS base(g, init, CoinOracle(1));
  for (Vertex u = 0; u < 4; ++u) EXPECT_EQ(v.active(u), base.active(u));
}

TEST(TwoStateVariant, StabilizesToMisForAllBiases) {
  const Graph g = gen::gnp(50, 0.1, 7);
  for (double q : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const CoinOracle coins(11);
    TwoStateVariant p(g, make_init2(g, InitPattern::kUniformRandom, coins), coins, q,
                      false);
    const RunResult r = run_until_stabilized(p, 200000);
    ASSERT_TRUE(r.stabilized) << "q=" << q;
    EXPECT_TRUE(is_mis(g, p.black_set())) << "q=" << q;
  }
}

TEST(TwoStateVariant, EagerWhiteStabilizesToMis) {
  const Graph g = gen::gnp(50, 0.1, 13);
  const CoinOracle coins(17);
  TwoStateVariant p(g, make_init2(g, InitPattern::kAllWhite, coins), coins, 0.5, true);
  const RunResult r = run_until_stabilized(p, 200000);
  ASSERT_TRUE(r.stabilized);
  EXPECT_TRUE(is_mis(g, p.black_set()));
}

TEST(TwoStateVariant, EagerWhiteIsolatedVertexJoinsInOneRound) {
  const Graph g = Graph::from_edges(1, {});
  TwoStateVariant p(g, {Color2::kWhite}, CoinOracle(3), 0.5, true);
  p.step();
  EXPECT_TRUE(p.black(0));
  EXPECT_TRUE(p.stabilized());
}

TEST(TwoStateVariant, EagerWhiteK2LivelocksSlower) {
  // With eager white both vertices of K_2 jump white->black together, then
  // resolve via the black coin: the process still stabilizes (unlike the
  // fully deterministic rule).
  const Graph g = gen::complete(2);
  TwoStateVariant p(g, {Color2::kWhite, Color2::kWhite}, CoinOracle(5), 0.5, true);
  const RunResult r = run_until_stabilized(p, 100000);
  ASSERT_TRUE(r.stabilized);
  EXPECT_EQ(p.num_black(), 1);
}

TEST(TwoStateVariant, StableConfigurationUntouched) {
  const Graph g = gen::path(4);
  const std::vector<Color2> mis = {Color2::kBlack, Color2::kWhite, Color2::kBlack,
                                   Color2::kWhite};
  TwoStateVariant p(g, mis, CoinOracle(7), 0.3, true);
  EXPECT_TRUE(p.stabilized());
  for (int i = 0; i < 30; ++i) p.step();
  EXPECT_EQ(p.colors(), mis);
}

TEST(TwoStateVariant, BiasSkewsBlackMass) {
  // On an edgeless graph every vertex is active white initially; after one
  // round the black fraction approximates q.
  const Graph g = Graph::from_edges(2000, {});
  for (double q : {0.2, 0.8}) {
    const CoinOracle coins(23);
    TwoStateVariant p(g,
                      std::vector<Color2>(2000, Color2::kWhite), coins, q, false);
    p.step();
    EXPECT_NEAR(static_cast<double>(p.num_black()) / 2000.0, q, 0.05) << "q=" << q;
  }
}

TEST(TwoStateVariant, CountsConsistentWithSets) {
  const Graph g = gen::gnp(40, 0.15, 31);
  const CoinOracle coins(37);
  TwoStateVariant p(g, make_init2(g, InitPattern::kAlternating, coins), coins, 0.6,
                    false);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(static_cast<std::size_t>(p.num_black()), p.black_set().size());
    Vertex active = 0;
    for (Vertex u = 0; u < 40; ++u)
      if (p.active(u)) ++active;
    EXPECT_EQ(p.num_active(), active);
    p.step();
  }
}

TEST(TwoStateVariant, HalfBiasBehavesLikeDefinitionFour) {
  // q = 1/2 without eager white is distributionally Definition 4 (different
  // coin stream than TwoStateMIS, so traces differ, but it must stabilize
  // with comparable speed on the clique).
  const Graph g = gen::complete(64);
  double variant_total = 0;
  double base_total = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    const CoinOracle coins(100 + static_cast<std::uint64_t>(trial));
    TwoStateVariant v(g, make_init2(g, InitPattern::kUniformRandom, coins), coins,
                      0.5, false);
    TwoStateMIS b(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
    variant_total += static_cast<double>(run_until_stabilized(v, 100000).rounds);
    base_total += static_cast<double>(run_until_stabilized(b, 100000).rounds);
  }
  EXPECT_LT(variant_total / trials, 4.0 * (base_total / trials) + 10.0);
  EXPECT_LT(base_total / trials, 4.0 * (variant_total / trials) + 10.0);
}

}  // namespace
}  // namespace ssmis
