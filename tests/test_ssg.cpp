// Golden-file round-trip tests for the `.ssg` binary CSR format: owned and
// mmap'd loads must reproduce the in-memory Graph exactly, and corrupted or
// truncated files must throw rather than hand back garbage.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <sys/resource.h>
#endif

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/ssg.hpp"
#include "support/hash.hpp"

namespace ssmis {
namespace {

class SsgTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ssmis_ssg_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  static std::vector<char> read_all(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  }

  static void write_all(const std::string& p, const std::vector<char>& bytes) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // Recomputes the header checksum over tampered payload bytes, simulating
  // an external writer whose file is self-consistent but structurally wrong.
  static void refresh_checksum(std::vector<char>& bytes) {
    std::int64_t n = 0, adj_len = 0;
    std::memcpy(&n, bytes.data() + 16, sizeof(n));
    std::memcpy(&adj_len, bytes.data() + 24, sizeof(adj_len));
    std::uint64_t h = kFnv1aBasis;
    h = fnv1a(h, &n, sizeof(n));
    h = fnv1a(h, &adj_len, sizeof(adj_len));
    h = fnv1a(h, bytes.data() + io::kSsgHeaderBytes,
              static_cast<std::size_t>(8 * (n + 1)));
    h = fnv1a(h, bytes.data() + io::kSsgHeaderBytes + 8 * (n + 1),
              static_cast<std::size_t>(4 * adj_len));
    std::memcpy(bytes.data() + 32, &h, sizeof(h));
  }

  std::filesystem::path dir_;
};

TEST_F(SsgTest, SaveLoadRoundTrip) {
  const Graph g = gen::gnp(500, 0.02, 11);
  const std::string p = path("a.ssg");
  io::save_ssg(p, g);
  EXPECT_EQ(static_cast<std::int64_t>(std::filesystem::file_size(p)),
            io::ssg_file_bytes(g));
  const Graph back = io::load_ssg(p);
  EXPECT_EQ(g, back);
  EXPECT_FALSE(back.is_mapped());
}

TEST_F(SsgTest, SaveMmapRoundTrip) {
  const Graph g = gen::gnp(500, 0.02, 11);
  const std::string p = path("a.ssg");
  io::save_ssg(p, g);
  const Graph mapped = io::mmap_ssg(p);
  EXPECT_EQ(g, mapped);
  // Mapped copies share the mapping and stay valid after the original handle
  // goes away.
  Graph copy;
  {
    const Graph inner = io::mmap_ssg(p);
    copy = inner;
  }
  EXPECT_EQ(copy, g);
  EXPECT_EQ(copy.num_edges(), g.num_edges());
}

TEST_F(SsgTest, EmptyAndEdgelessGraphsRoundTrip) {
  for (const Graph& g : {Graph(), Graph::from_edges(7, {})}) {
    const std::string p = path("e.ssg");
    io::save_ssg(p, g);
    EXPECT_EQ(io::load_ssg(p), g);
    EXPECT_EQ(io::mmap_ssg(p), g);
  }
}

TEST_F(SsgTest, MappedGraphSupportsAllQueries) {
  const Graph g = gen::random_tree(200, 3);
  const std::string p = path("t.ssg");
  io::save_ssg(p, g);
  const Graph mapped = io::mmap_ssg(p);
  EXPECT_TRUE(mapped.is_mapped());
  EXPECT_EQ(mapped.max_degree(), g.max_degree());
  EXPECT_EQ(mapped.edge_list(), g.edge_list());
  for (Vertex u = 0; u < g.num_vertices(); ++u)
    EXPECT_EQ(mapped.degree(u), g.degree(u));
}

TEST_F(SsgTest, CorruptedAdjacencyByteThrows) {
  const Graph g = gen::gnp(300, 0.03, 5);
  const std::string p = path("c.ssg");
  io::save_ssg(p, g);
  auto bytes = read_all(p);
  bytes[bytes.size() - 3] ^= 0x40;  // flip a bit deep in the adj array
  write_all(p, bytes);
  EXPECT_THROW(io::load_ssg(p), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(p), std::runtime_error);
}

TEST_F(SsgTest, CorruptedChecksumFieldThrows) {
  const Graph g = gen::gnp(100, 0.05, 5);
  const std::string p = path("c2.ssg");
  io::save_ssg(p, g);
  auto bytes = read_all(p);
  bytes[32] ^= 0x01;  // checksum field lives at header offset 32
  write_all(p, bytes);
  EXPECT_THROW(io::load_ssg(p), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(p), std::runtime_error);
}

TEST_F(SsgTest, StructurallyInvalidButChecksummedFileThrows) {
  // An external writer can produce a file whose checksum matches its own
  // (broken) contents; the default kFull load must still reject structural
  // violations — out-of-range ids and asymmetric rows — rather than hand
  // the engine arrays that index out of bounds or desync its counters.
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  const std::string p = path("r.ssg");

  // Case 1: out-of-range adjacency id.
  io::save_ssg(p, g);
  auto bytes = read_all(p);
  const Vertex huge = 9;  // >= n
  std::memcpy(bytes.data() + bytes.size() - sizeof(Vertex), &huge, sizeof(huge));
  refresh_checksum(bytes);
  write_all(p, bytes);
  EXPECT_THROW(io::load_ssg(p), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(p), std::runtime_error);

  // Case 2: asymmetric rows (row 0 claims neighbor 3, row 3 says 2).
  io::save_ssg(p, g);
  bytes = read_all(p);
  const std::size_t adj_start = io::kSsgHeaderBytes + 8 * (4 + 1);
  const Vertex three = 3;  // row 0's single entry was 1
  std::memcpy(bytes.data() + adj_start, &three, sizeof(three));
  refresh_checksum(bytes);
  write_all(p, bytes);
  EXPECT_THROW(io::load_ssg(p), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(p), std::runtime_error);
}

TEST_F(SsgTest, TrustedLoadSkipsDeepValidationButChecksOffsets) {
  const Graph g = gen::gnp(300, 0.03, 5);
  const std::string p = path("t2.ssg");
  io::save_ssg(p, g);
  // A valid file loads identically under the trusted fast path.
  EXPECT_EQ(io::mmap_ssg(p, io::SsgValidation::kTrusted), g);
  // Offsets are validated even when trusted (row iteration indexes with
  // them): a non-monotone offset still throws.
  auto bytes = read_all(p);
  const std::int64_t bogus = -5;
  std::memcpy(bytes.data() + io::kSsgHeaderBytes + 8, &bogus, sizeof(bogus));
  write_all(p, bytes);
  EXPECT_THROW(io::mmap_ssg(p, io::SsgValidation::kTrusted), std::runtime_error);
}

TEST_F(SsgTest, TruncatedFileThrows) {
  const Graph g = gen::gnp(300, 0.03, 5);
  const std::string p = path("t.ssg");
  io::save_ssg(p, g);
  auto bytes = read_all(p);
  // Truncation below the header and mid-payload must both throw.
  for (const std::size_t keep : {std::size_t{10}, bytes.size() / 2}) {
    write_all(p, std::vector<char>(bytes.begin(), bytes.begin() + keep));
    EXPECT_THROW(io::load_ssg(p), std::runtime_error) << keep;
    EXPECT_THROW(io::mmap_ssg(p), std::runtime_error) << keep;
  }
}

TEST_F(SsgTest, BadMagicAndVersionThrow) {
  const Graph g = gen::gnp(50, 0.1, 5);
  const std::string p = path("m.ssg");
  io::save_ssg(p, g);
  auto bytes = read_all(p);
  {
    auto tampered = bytes;
    tampered[0] = 'X';
    write_all(p, tampered);
    EXPECT_THROW(io::load_ssg(p), std::runtime_error);
  }
  {
    auto tampered = bytes;
    tampered[8] = 99;  // version field
    write_all(p, tampered);
    EXPECT_THROW(io::load_ssg(p), std::runtime_error);
    EXPECT_THROW(io::mmap_ssg(p), std::runtime_error);
  }
  {
    auto tampered = bytes;
    tampered[12] ^= 0xff;  // endianness tag
    write_all(p, tampered);
    EXPECT_THROW(io::load_ssg(p), std::runtime_error);
  }
}

TEST_F(SsgTest, HostileAdjLenHeaderThrows) {
  // adj_len = real + 2^62 would overflow a naive `4 * adj_len` size check
  // and sail into out-of-bounds reads; the loader must reject it loudly.
  const Graph g = gen::gnp(100, 0.05, 5);
  const std::string p = path("h.ssg");
  io::save_ssg(p, g);
  auto bytes = read_all(p);
  std::int64_t adj_len;
  std::memcpy(&adj_len, bytes.data() + 24, sizeof(adj_len));
  adj_len += (std::int64_t{1} << 62);
  std::memcpy(bytes.data() + 24, &adj_len, sizeof(adj_len));
  write_all(p, bytes);
  EXPECT_THROW(io::load_ssg(p), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(p), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(p, io::SsgValidation::kTrusted), std::runtime_error);
}

TEST_F(SsgTest, SavingOverTheMappedSourceFileIsSafe) {
  // save_ssg writes through a scratch file + rename, so saving a graph over
  // the very .ssg it is mmap'd from must neither corrupt the live mapping
  // nor the resulting file (a plain truncating write would SIGBUS here).
  const Graph g = gen::gnp(400, 0.02, 9);
  const std::string p = path("self.ssg");
  io::save_ssg(p, g);
  const Graph mapped = io::mmap_ssg(p);
  io::save_ssg(p, mapped);  // overwrite the backing file of `mapped`
  EXPECT_EQ(mapped, g);     // old mapping still intact (old inode alive)
  EXPECT_EQ(io::mmap_ssg(p), g);  // new file is complete and valid
}

TEST_F(SsgTest, TrustedRejectsMalformedHeadersLikeFull) {
  // kTrusted only skips the O(m) payload audit; everything the HEADER can
  // lie about — magic, version, endianness, counts, section sizes, offsets —
  // is validated on every load. The same corruption matrix must therefore
  // throw in both modes.
  const Graph g = gen::gnp(200, 0.04, 13);
  const std::string p = path("th.ssg");
  io::save_ssg(p, g);
  const auto pristine = read_all(p);

  using Mutate = void (*)(std::vector<char>&);
  const std::pair<const char*, Mutate> cases[] = {
      {"bad magic", [](std::vector<char>& b) { b[0] = 'Z'; }},
      {"unsupported version", [](std::vector<char>& b) { b[8] = 77; }},
      {"endianness tag", [](std::vector<char>& b) { b[12] ^= char(0xff); }},
      {"negative n",
       [](std::vector<char>& b) {
         const std::int64_t n = -4;
         std::memcpy(b.data() + 16, &n, sizeof(n));
       }},
      {"n beyond Vertex range",
       [](std::vector<char>& b) {
         const std::int64_t n = std::int64_t{1} << 40;
         std::memcpy(b.data() + 16, &n, sizeof(n));
       }},
      {"negative adj_len",
       [](std::vector<char>& b) {
         const std::int64_t a = -2;
         std::memcpy(b.data() + 24, &a, sizeof(a));
       }},
      {"truncated mid-offsets",
       [](std::vector<char>& b) { b.resize(io::kSsgHeaderBytes + 24); }},
      {"truncated mid-adjacency", [](std::vector<char>& b) { b.resize(b.size() - 5); }},
      {"non-monotone offsets",
       [](std::vector<char>& b) {
         const std::int64_t bogus = std::int64_t{1} << 50;
         std::memcpy(b.data() + io::kSsgHeaderBytes + 8, &bogus, sizeof(bogus));
       }},
  };
  for (const auto& [what, mutate] : cases) {
    auto bytes = pristine;
    mutate(bytes);
    write_all(p, bytes);
    EXPECT_THROW(io::load_ssg(p, io::SsgValidation::kTrusted), std::runtime_error)
        << what;
    EXPECT_THROW(io::mmap_ssg(p, io::SsgValidation::kTrusted), std::runtime_error)
        << what;
    EXPECT_THROW(io::load_ssg(p), std::runtime_error) << what;
    EXPECT_THROW(io::mmap_ssg(p), std::runtime_error) << what;
  }
}

#if defined(__unix__) || defined(__APPLE__)
TEST_F(SsgTest, SaveCleansUpScratchFileWhenTheWriteFails) {
  // Simulate ENOSPC-style mid-write failure with RLIMIT_FSIZE: the graph
  // below needs ~20 KB, the limit allows 4 KB, so the buffered write fails
  // at flush time (SIGXFSZ ignored so write() returns EFBIG instead of
  // killing the process). save_ssg must throw AND remove its scratch file —
  // a crash-safe writer that strands .tmp litter on every full disk isn't.
  const Graph g = gen::gnp(500, 0.02, 3);
  ASSERT_GT(io::ssg_file_bytes(g), 8192);

  struct rlimit old_limit{};
  ASSERT_EQ(::getrlimit(RLIMIT_FSIZE, &old_limit), 0);
  auto old_handler = std::signal(SIGXFSZ, SIG_IGN);
  struct rlimit small = old_limit;
  small.rlim_cur = 4096;
  ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &small), 0);

  const std::string target = path("full_disk.ssg");
  EXPECT_THROW(io::save_ssg(target, g), std::runtime_error);

  ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &old_limit), 0);
  std::signal(SIGXFSZ, old_handler);

  // Neither the target nor any scratch file may remain.
  EXPECT_FALSE(std::filesystem::exists(target));
  for (const auto& entry : std::filesystem::directory_iterator(dir_))
    ADD_FAILURE() << "stranded file: " << entry.path();

  // And the writer still works once space is back.
  io::save_ssg(target, g);
  EXPECT_EQ(io::load_ssg(target), g);
}
#endif

TEST_F(SsgTest, MissingFileThrows) {
  EXPECT_THROW(io::load_ssg(path("nope.ssg")), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(path("nope.ssg")), std::runtime_error);
}

TEST_F(SsgTest, LoadGraphFileDispatchesOnExtension) {
  const Graph g = gen::gnp(80, 0.05, 2);
  const std::string bin = path("g.ssg");
  io::save_ssg(bin, g);
  EXPECT_EQ(io::load_graph_file(bin, /*prefer_mmap=*/true), g);
  EXPECT_TRUE(io::load_graph_file(bin, true).is_mapped());
  EXPECT_FALSE(io::load_graph_file(bin, /*prefer_mmap=*/false).is_mapped());

  const std::string txt = path("g.edges");
  {
    std::ofstream out(txt);
    io::write_edge_list(out, g);
  }
  EXPECT_EQ(io::load_graph_file(txt), g);
}

}  // namespace
}  // namespace ssmis
