// Golden-file round-trip tests for the `.ssg` binary CSR format: owned and
// mmap'd loads must reproduce the in-memory Graph exactly, and corrupted or
// truncated files must throw rather than hand back garbage.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <sys/resource.h>
#endif

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/ssg.hpp"
#include "support/hash.hpp"

namespace ssmis {
namespace {

class SsgTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ssmis_ssg_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  static std::vector<char> read_all(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  }

  static void write_all(const std::string& p, const std::vector<char>& bytes) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // Recomputes the header checksum over tampered payload bytes, simulating
  // an external writer whose file is self-consistent but structurally wrong.
  static void refresh_checksum(std::vector<char>& bytes) {
    std::int64_t n = 0, adj_len = 0;
    std::memcpy(&n, bytes.data() + 16, sizeof(n));
    std::memcpy(&adj_len, bytes.data() + 24, sizeof(adj_len));
    std::uint64_t h = kFnv1aBasis;
    h = fnv1a(h, &n, sizeof(n));
    h = fnv1a(h, &adj_len, sizeof(adj_len));
    h = fnv1a(h, bytes.data() + io::kSsgHeaderBytes,
              static_cast<std::size_t>(8 * (n + 1)));
    h = fnv1a(h, bytes.data() + io::kSsgHeaderBytes + 8 * (n + 1),
              static_cast<std::size_t>(4 * adj_len));
    std::memcpy(bytes.data() + 32, &h, sizeof(h));
  }

  std::filesystem::path dir_;
};

TEST_F(SsgTest, SaveLoadRoundTrip) {
  const Graph g = gen::gnp(500, 0.02, 11);
  const std::string p = path("a.ssg");
  io::save_ssg(p, g);
  EXPECT_EQ(static_cast<std::int64_t>(std::filesystem::file_size(p)),
            io::ssg_file_bytes(g));
  const Graph back = io::load_ssg(p);
  EXPECT_EQ(g, back);
  EXPECT_FALSE(back.is_mapped());
}

TEST_F(SsgTest, SaveMmapRoundTrip) {
  const Graph g = gen::gnp(500, 0.02, 11);
  const std::string p = path("a.ssg");
  io::save_ssg(p, g);
  const Graph mapped = io::mmap_ssg(p);
  EXPECT_EQ(g, mapped);
  // Mapped copies share the mapping and stay valid after the original handle
  // goes away.
  Graph copy;
  {
    const Graph inner = io::mmap_ssg(p);
    copy = inner;
  }
  EXPECT_EQ(copy, g);
  EXPECT_EQ(copy.num_edges(), g.num_edges());
}

TEST_F(SsgTest, EmptyAndEdgelessGraphsRoundTrip) {
  for (const Graph& g : {Graph(), Graph::from_edges(7, {})}) {
    const std::string p = path("e.ssg");
    io::save_ssg(p, g);
    EXPECT_EQ(io::load_ssg(p), g);
    EXPECT_EQ(io::mmap_ssg(p), g);
  }
}

TEST_F(SsgTest, MappedGraphSupportsAllQueries) {
  const Graph g = gen::random_tree(200, 3);
  const std::string p = path("t.ssg");
  io::save_ssg(p, g);
  const Graph mapped = io::mmap_ssg(p);
  EXPECT_TRUE(mapped.is_mapped());
  EXPECT_EQ(mapped.max_degree(), g.max_degree());
  EXPECT_EQ(mapped.edge_list(), g.edge_list());
  for (Vertex u = 0; u < g.num_vertices(); ++u)
    EXPECT_EQ(mapped.degree(u), g.degree(u));
}

TEST_F(SsgTest, CorruptedAdjacencyByteThrows) {
  const Graph g = gen::gnp(300, 0.03, 5);
  const std::string p = path("c.ssg");
  io::save_ssg(p, g);
  auto bytes = read_all(p);
  bytes[bytes.size() - 3] ^= 0x40;  // flip a bit deep in the adj array
  write_all(p, bytes);
  EXPECT_THROW(io::load_ssg(p), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(p), std::runtime_error);
}

TEST_F(SsgTest, CorruptedChecksumFieldThrows) {
  const Graph g = gen::gnp(100, 0.05, 5);
  const std::string p = path("c2.ssg");
  io::save_ssg(p, g);
  auto bytes = read_all(p);
  bytes[32] ^= 0x01;  // checksum field lives at header offset 32
  write_all(p, bytes);
  EXPECT_THROW(io::load_ssg(p), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(p), std::runtime_error);
}

TEST_F(SsgTest, StructurallyInvalidButChecksummedFileThrows) {
  // An external writer can produce a file whose checksum matches its own
  // (broken) contents; the default kFull load must still reject structural
  // violations — out-of-range ids and asymmetric rows — rather than hand
  // the engine arrays that index out of bounds or desync its counters.
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  const std::string p = path("r.ssg");

  // Case 1: out-of-range adjacency id.
  io::save_ssg(p, g);
  auto bytes = read_all(p);
  const Vertex huge = 9;  // >= n
  std::memcpy(bytes.data() + bytes.size() - sizeof(Vertex), &huge, sizeof(huge));
  refresh_checksum(bytes);
  write_all(p, bytes);
  EXPECT_THROW(io::load_ssg(p), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(p), std::runtime_error);

  // Case 2: asymmetric rows (row 0 claims neighbor 3, row 3 says 2).
  io::save_ssg(p, g);
  bytes = read_all(p);
  const std::size_t adj_start = io::kSsgHeaderBytes + 8 * (4 + 1);
  const Vertex three = 3;  // row 0's single entry was 1
  std::memcpy(bytes.data() + adj_start, &three, sizeof(three));
  refresh_checksum(bytes);
  write_all(p, bytes);
  EXPECT_THROW(io::load_ssg(p), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(p), std::runtime_error);
}

TEST_F(SsgTest, TrustedLoadSkipsDeepValidationButChecksOffsets) {
  const Graph g = gen::gnp(300, 0.03, 5);
  const std::string p = path("t2.ssg");
  io::save_ssg(p, g);
  // A valid file loads identically under the trusted fast path.
  EXPECT_EQ(io::mmap_ssg(p, io::SsgValidation::kTrusted), g);
  // Offsets are validated even when trusted (row iteration indexes with
  // them): a non-monotone offset still throws.
  auto bytes = read_all(p);
  const std::int64_t bogus = -5;
  std::memcpy(bytes.data() + io::kSsgHeaderBytes + 8, &bogus, sizeof(bogus));
  write_all(p, bytes);
  EXPECT_THROW(io::mmap_ssg(p, io::SsgValidation::kTrusted), std::runtime_error);
}

TEST_F(SsgTest, TruncatedFileThrows) {
  const Graph g = gen::gnp(300, 0.03, 5);
  const std::string p = path("t.ssg");
  io::save_ssg(p, g);
  auto bytes = read_all(p);
  // Truncation below the header and mid-payload must both throw.
  for (const std::size_t keep : {std::size_t{10}, bytes.size() / 2}) {
    write_all(p, std::vector<char>(bytes.begin(), bytes.begin() + keep));
    EXPECT_THROW(io::load_ssg(p), std::runtime_error) << keep;
    EXPECT_THROW(io::mmap_ssg(p), std::runtime_error) << keep;
  }
}

TEST_F(SsgTest, BadMagicAndVersionThrow) {
  const Graph g = gen::gnp(50, 0.1, 5);
  const std::string p = path("m.ssg");
  io::save_ssg(p, g);
  auto bytes = read_all(p);
  {
    auto tampered = bytes;
    tampered[0] = 'X';
    write_all(p, tampered);
    EXPECT_THROW(io::load_ssg(p), std::runtime_error);
  }
  {
    auto tampered = bytes;
    tampered[8] = 99;  // version field
    write_all(p, tampered);
    EXPECT_THROW(io::load_ssg(p), std::runtime_error);
    EXPECT_THROW(io::mmap_ssg(p), std::runtime_error);
  }
  {
    auto tampered = bytes;
    tampered[12] ^= 0xff;  // endianness tag
    write_all(p, tampered);
    EXPECT_THROW(io::load_ssg(p), std::runtime_error);
  }
}

TEST_F(SsgTest, HostileAdjLenHeaderThrows) {
  // adj_len = real + 2^62 would overflow a naive `4 * adj_len` size check
  // and sail into out-of-bounds reads; the loader must reject it loudly.
  const Graph g = gen::gnp(100, 0.05, 5);
  const std::string p = path("h.ssg");
  io::save_ssg(p, g);
  auto bytes = read_all(p);
  std::int64_t adj_len;
  std::memcpy(&adj_len, bytes.data() + 24, sizeof(adj_len));
  adj_len += (std::int64_t{1} << 62);
  std::memcpy(bytes.data() + 24, &adj_len, sizeof(adj_len));
  write_all(p, bytes);
  EXPECT_THROW(io::load_ssg(p), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(p), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(p, io::SsgValidation::kTrusted), std::runtime_error);
}

TEST_F(SsgTest, SavingOverTheMappedSourceFileIsSafe) {
  // save_ssg writes through a scratch file + rename, so saving a graph over
  // the very .ssg it is mmap'd from must neither corrupt the live mapping
  // nor the resulting file (a plain truncating write would SIGBUS here).
  const Graph g = gen::gnp(400, 0.02, 9);
  const std::string p = path("self.ssg");
  io::save_ssg(p, g);
  const Graph mapped = io::mmap_ssg(p);
  io::save_ssg(p, mapped);  // overwrite the backing file of `mapped`
  EXPECT_EQ(mapped, g);     // old mapping still intact (old inode alive)
  EXPECT_EQ(io::mmap_ssg(p), g);  // new file is complete and valid
}

TEST_F(SsgTest, TrustedRejectsMalformedHeadersLikeFull) {
  // kTrusted only skips the O(m) payload audit; everything the HEADER can
  // lie about — magic, version, endianness, counts, section sizes, offsets —
  // is validated on every load. The same corruption matrix must therefore
  // throw in both modes.
  const Graph g = gen::gnp(200, 0.04, 13);
  const std::string p = path("th.ssg");
  io::save_ssg(p, g);
  const auto pristine = read_all(p);

  using Mutate = void (*)(std::vector<char>&);
  const std::pair<const char*, Mutate> cases[] = {
      {"bad magic", [](std::vector<char>& b) { b[0] = 'Z'; }},
      {"unsupported version", [](std::vector<char>& b) { b[8] = 77; }},
      {"endianness tag", [](std::vector<char>& b) { b[12] ^= char(0xff); }},
      {"negative n",
       [](std::vector<char>& b) {
         const std::int64_t n = -4;
         std::memcpy(b.data() + 16, &n, sizeof(n));
       }},
      {"n beyond Vertex range",
       [](std::vector<char>& b) {
         const std::int64_t n = std::int64_t{1} << 40;
         std::memcpy(b.data() + 16, &n, sizeof(n));
       }},
      {"negative adj_len",
       [](std::vector<char>& b) {
         const std::int64_t a = -2;
         std::memcpy(b.data() + 24, &a, sizeof(a));
       }},
      {"truncated mid-offsets",
       [](std::vector<char>& b) { b.resize(io::kSsgHeaderBytes + 24); }},
      {"truncated mid-adjacency", [](std::vector<char>& b) { b.resize(b.size() - 5); }},
      {"non-monotone offsets",
       [](std::vector<char>& b) {
         const std::int64_t bogus = std::int64_t{1} << 50;
         std::memcpy(b.data() + io::kSsgHeaderBytes + 8, &bogus, sizeof(bogus));
       }},
  };
  for (const auto& [what, mutate] : cases) {
    auto bytes = pristine;
    mutate(bytes);
    write_all(p, bytes);
    EXPECT_THROW(io::load_ssg(p, io::SsgValidation::kTrusted), std::runtime_error)
        << what;
    EXPECT_THROW(io::mmap_ssg(p, io::SsgValidation::kTrusted), std::runtime_error)
        << what;
    EXPECT_THROW(io::load_ssg(p), std::runtime_error) << what;
    EXPECT_THROW(io::mmap_ssg(p), std::runtime_error) << what;
  }
}

#if defined(__unix__) || defined(__APPLE__)
TEST_F(SsgTest, SaveCleansUpScratchFileWhenTheWriteFails) {
  // Simulate ENOSPC-style mid-write failure with RLIMIT_FSIZE: the graph
  // below needs ~20 KB, the limit allows 4 KB, so the buffered write fails
  // at flush time (SIGXFSZ ignored so write() returns EFBIG instead of
  // killing the process). save_ssg must throw AND remove its scratch file —
  // a crash-safe writer that strands .tmp litter on every full disk isn't.
  const Graph g = gen::gnp(500, 0.02, 3);
  ASSERT_GT(io::ssg_file_bytes(g), 8192);

  struct rlimit old_limit{};
  ASSERT_EQ(::getrlimit(RLIMIT_FSIZE, &old_limit), 0);
  auto old_handler = std::signal(SIGXFSZ, SIG_IGN);
  struct rlimit small = old_limit;
  small.rlim_cur = 4096;
  ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &small), 0);

  const std::string target = path("full_disk.ssg");
  EXPECT_THROW(io::save_ssg(target, g), std::runtime_error);

  ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &old_limit), 0);
  std::signal(SIGXFSZ, old_handler);

  // Neither the target nor any scratch file may remain.
  EXPECT_FALSE(std::filesystem::exists(target));
  for (const auto& entry : std::filesystem::directory_iterator(dir_))
    ADD_FAILURE() << "stranded file: " << entry.path();

  // And the writer still works once space is back.
  io::save_ssg(target, g);
  EXPECT_EQ(io::load_ssg(target), g);
}
#endif

TEST_F(SsgTest, MissingFileThrows) {
  EXPECT_THROW(io::load_ssg(path("nope.ssg")), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(path("nope.ssg")), std::runtime_error);
}

TEST_F(SsgTest, LoadGraphFileDispatchesOnExtension) {
  const Graph g = gen::gnp(80, 0.05, 2);
  const std::string bin = path("g.ssg");
  io::save_ssg(bin, g);
  EXPECT_EQ(io::load_graph_file(bin, /*prefer_mmap=*/true), g);
  EXPECT_TRUE(io::load_graph_file(bin, true).is_mapped());
  EXPECT_FALSE(io::load_graph_file(bin, /*prefer_mmap=*/false).is_mapped());

  const std::string txt = path("g.edges");
  {
    std::ofstream out(txt);
    io::write_edge_list(out, g);
  }
  EXPECT_EQ(io::load_graph_file(txt), g);
}

// ---- parallel kFull adjacency audit (files past the fan-out threshold) ----

// Sequential transcription of the loader's adjacency audit, producing the
// exact message the sequential scan would raise first (empty = accept). The
// parallel fan-out in ssg.cpp must be byte-identical to this — same
// accept/reject decision, same message — regardless of chunking.
std::string reference_first_audit_error(const std::string& p, std::int64_t n,
                                        const std::int64_t* offsets,
                                        const Vertex* adj) {
  const auto msg = [&p](const std::string& what) { return "ssg: " + p + ": " + what; };
  for (std::int64_t u = 0; u < n; ++u) {
    for (std::int64_t i = offsets[u]; i < offsets[u + 1]; ++i) {
      const Vertex v = adj[i];
      if (v < 0 || v >= n)
        return msg("corrupt adjacency (vertex id out of range at index " +
                   std::to_string(i) + ")");
      if (v == u)
        return msg("corrupt adjacency (self-loop in row " + std::to_string(u) + ")");
      if (i > offsets[u] && adj[i - 1] >= v)
        return msg("corrupt adjacency (row " + std::to_string(u) +
                   " not sorted/deduplicated)");
      if (!std::binary_search(adj + offsets[static_cast<std::size_t>(v)],
                              adj + offsets[static_cast<std::size_t>(v) + 1],
                              static_cast<Vertex>(u)))
        return msg("corrupt adjacency (edge " + std::to_string(u) + "->" +
                   std::to_string(v) + " has no reverse entry)");
    }
  }
  return "";
}

// A graph whose adjacency exceeds the 2^20-endpoint threshold, so the kFull
// audit actually fans out over the thread pool.
const Graph& audit_scale_graph() {
  static const Graph g = gen::gnp(150000, 8.0 / 150000.0, 3);
  return g;
}

TEST_F(SsgTest, ParallelAuditAcceptsLargeValidFile) {
  const Graph& g = audit_scale_graph();
  ASSERT_GT(2 * g.num_edges(), std::int64_t{1} << 20);  // past the threshold
  const std::string p = path("big.ssg");
  io::save_ssg(p, g);
  EXPECT_EQ(io::load_ssg(p, io::SsgValidation::kFull), g);
  EXPECT_EQ(io::mmap_ssg(p, io::SsgValidation::kFull), g);
}

TEST_F(SsgTest, ParallelAuditRejectsWithTheSequentialScansFirstError) {
  const Graph& g = audit_scale_graph();
  const std::string p = path("bigbad.ssg");
  const std::size_t adj_start =
      io::kSsgHeaderBytes + 8 * (static_cast<std::size_t>(g.num_vertices()) + 1);
  const std::int64_t endpoints = static_cast<std::int64_t>(g.adjacency().size());

  // Corruption matrix: an early out-of-range id, a late self-loop, a mid-file
  // unsorted row, and an early+late pair (the lowest-chunk error must win).
  const Vertex n = g.num_vertices();
  struct Mutation {
    const char* name;
    std::vector<std::pair<std::int64_t, Vertex>> writes;  // (adj index, value)
  };
  const std::int64_t late = endpoints - 1;
  const std::int64_t mid = endpoints / 2;
  const std::vector<Mutation> cases = {
      {"early out-of-range", {{0, n}}},
      {"late out-of-range", {{late, n + 7}}},
      {"mid out-of-range", {{mid, static_cast<Vertex>(-3)}}},
      {"early+late, early must win", {{5, n + 1}, {late, n + 2}}},
  };
  for (const Mutation& mu : cases) {
    io::save_ssg(p, g);
    auto bytes = read_all(p);
    for (const auto& [idx, value] : mu.writes) {
      std::memcpy(bytes.data() + adj_start +
                      static_cast<std::size_t>(idx) * sizeof(Vertex),
                  &value, sizeof(Vertex));
    }
    refresh_checksum(bytes);
    write_all(p, bytes);
    // Expected message: replay the mutated arrays through the sequential
    // transcription.
    std::vector<Vertex> adj(g.adjacency().begin(), g.adjacency().end());
    for (const auto& [idx, value] : mu.writes)
      adj[static_cast<std::size_t>(idx)] = value;
    const std::string want =
        reference_first_audit_error(p, n, g.offsets().data(), adj.data());
    ASSERT_FALSE(want.empty()) << mu.name;
    for (const bool use_mmap : {false, true}) {
      try {
        use_mmap ? io::mmap_ssg(p, io::SsgValidation::kFull)
                 : io::load_ssg(p, io::SsgValidation::kFull);
        FAIL() << mu.name << " (mmap=" << use_mmap << "): expected a throw";
      } catch (const std::runtime_error& e) {
        EXPECT_EQ(std::string(e.what()), want)
            << mu.name << " (mmap=" << use_mmap << ")";
      }
    }
  }
}

}  // namespace
}  // namespace ssmis
