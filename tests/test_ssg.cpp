// Golden-file round-trip tests for the `.ssg` binary CSR format: owned and
// mmap'd loads must reproduce the in-memory Graph exactly, and corrupted or
// truncated files must throw rather than hand back garbage.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/ssg.hpp"
#include "support/hash.hpp"

namespace ssmis {
namespace {

class SsgTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ssmis_ssg_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  static std::vector<char> read_all(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  }

  static void write_all(const std::string& p, const std::vector<char>& bytes) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // Recomputes the header checksum over tampered payload bytes, simulating
  // an external writer whose file is self-consistent but structurally wrong.
  static void refresh_checksum(std::vector<char>& bytes) {
    std::int64_t n = 0, adj_len = 0;
    std::memcpy(&n, bytes.data() + 16, sizeof(n));
    std::memcpy(&adj_len, bytes.data() + 24, sizeof(adj_len));
    std::uint64_t h = kFnv1aBasis;
    h = fnv1a(h, &n, sizeof(n));
    h = fnv1a(h, &adj_len, sizeof(adj_len));
    h = fnv1a(h, bytes.data() + io::kSsgHeaderBytes,
              static_cast<std::size_t>(8 * (n + 1)));
    h = fnv1a(h, bytes.data() + io::kSsgHeaderBytes + 8 * (n + 1),
              static_cast<std::size_t>(4 * adj_len));
    std::memcpy(bytes.data() + 32, &h, sizeof(h));
  }

  std::filesystem::path dir_;
};

TEST_F(SsgTest, SaveLoadRoundTrip) {
  const Graph g = gen::gnp(500, 0.02, 11);
  const std::string p = path("a.ssg");
  io::save_ssg(p, g);
  EXPECT_EQ(static_cast<std::int64_t>(std::filesystem::file_size(p)),
            io::ssg_file_bytes(g));
  const Graph back = io::load_ssg(p);
  EXPECT_EQ(g, back);
  EXPECT_FALSE(back.is_mapped());
}

TEST_F(SsgTest, SaveMmapRoundTrip) {
  const Graph g = gen::gnp(500, 0.02, 11);
  const std::string p = path("a.ssg");
  io::save_ssg(p, g);
  const Graph mapped = io::mmap_ssg(p);
  EXPECT_EQ(g, mapped);
  // Mapped copies share the mapping and stay valid after the original handle
  // goes away.
  Graph copy;
  {
    const Graph inner = io::mmap_ssg(p);
    copy = inner;
  }
  EXPECT_EQ(copy, g);
  EXPECT_EQ(copy.num_edges(), g.num_edges());
}

TEST_F(SsgTest, EmptyAndEdgelessGraphsRoundTrip) {
  for (const Graph& g : {Graph(), Graph::from_edges(7, {})}) {
    const std::string p = path("e.ssg");
    io::save_ssg(p, g);
    EXPECT_EQ(io::load_ssg(p), g);
    EXPECT_EQ(io::mmap_ssg(p), g);
  }
}

TEST_F(SsgTest, MappedGraphSupportsAllQueries) {
  const Graph g = gen::random_tree(200, 3);
  const std::string p = path("t.ssg");
  io::save_ssg(p, g);
  const Graph mapped = io::mmap_ssg(p);
  EXPECT_TRUE(mapped.is_mapped());
  EXPECT_EQ(mapped.max_degree(), g.max_degree());
  EXPECT_EQ(mapped.edge_list(), g.edge_list());
  for (Vertex u = 0; u < g.num_vertices(); ++u)
    EXPECT_EQ(mapped.degree(u), g.degree(u));
}

TEST_F(SsgTest, CorruptedAdjacencyByteThrows) {
  const Graph g = gen::gnp(300, 0.03, 5);
  const std::string p = path("c.ssg");
  io::save_ssg(p, g);
  auto bytes = read_all(p);
  bytes[bytes.size() - 3] ^= 0x40;  // flip a bit deep in the adj array
  write_all(p, bytes);
  EXPECT_THROW(io::load_ssg(p), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(p), std::runtime_error);
}

TEST_F(SsgTest, CorruptedChecksumFieldThrows) {
  const Graph g = gen::gnp(100, 0.05, 5);
  const std::string p = path("c2.ssg");
  io::save_ssg(p, g);
  auto bytes = read_all(p);
  bytes[32] ^= 0x01;  // checksum field lives at header offset 32
  write_all(p, bytes);
  EXPECT_THROW(io::load_ssg(p), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(p), std::runtime_error);
}

TEST_F(SsgTest, StructurallyInvalidButChecksummedFileThrows) {
  // An external writer can produce a file whose checksum matches its own
  // (broken) contents; the default kFull load must still reject structural
  // violations — out-of-range ids and asymmetric rows — rather than hand
  // the engine arrays that index out of bounds or desync its counters.
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  const std::string p = path("r.ssg");

  // Case 1: out-of-range adjacency id.
  io::save_ssg(p, g);
  auto bytes = read_all(p);
  const Vertex huge = 9;  // >= n
  std::memcpy(bytes.data() + bytes.size() - sizeof(Vertex), &huge, sizeof(huge));
  refresh_checksum(bytes);
  write_all(p, bytes);
  EXPECT_THROW(io::load_ssg(p), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(p), std::runtime_error);

  // Case 2: asymmetric rows (row 0 claims neighbor 3, row 3 says 2).
  io::save_ssg(p, g);
  bytes = read_all(p);
  const std::size_t adj_start = io::kSsgHeaderBytes + 8 * (4 + 1);
  const Vertex three = 3;  // row 0's single entry was 1
  std::memcpy(bytes.data() + adj_start, &three, sizeof(three));
  refresh_checksum(bytes);
  write_all(p, bytes);
  EXPECT_THROW(io::load_ssg(p), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(p), std::runtime_error);
}

TEST_F(SsgTest, TrustedLoadSkipsDeepValidationButChecksOffsets) {
  const Graph g = gen::gnp(300, 0.03, 5);
  const std::string p = path("t2.ssg");
  io::save_ssg(p, g);
  // A valid file loads identically under the trusted fast path.
  EXPECT_EQ(io::mmap_ssg(p, io::SsgValidation::kTrusted), g);
  // Offsets are validated even when trusted (row iteration indexes with
  // them): a non-monotone offset still throws.
  auto bytes = read_all(p);
  const std::int64_t bogus = -5;
  std::memcpy(bytes.data() + io::kSsgHeaderBytes + 8, &bogus, sizeof(bogus));
  write_all(p, bytes);
  EXPECT_THROW(io::mmap_ssg(p, io::SsgValidation::kTrusted), std::runtime_error);
}

TEST_F(SsgTest, TruncatedFileThrows) {
  const Graph g = gen::gnp(300, 0.03, 5);
  const std::string p = path("t.ssg");
  io::save_ssg(p, g);
  auto bytes = read_all(p);
  // Truncation below the header and mid-payload must both throw.
  for (const std::size_t keep : {std::size_t{10}, bytes.size() / 2}) {
    write_all(p, std::vector<char>(bytes.begin(), bytes.begin() + keep));
    EXPECT_THROW(io::load_ssg(p), std::runtime_error) << keep;
    EXPECT_THROW(io::mmap_ssg(p), std::runtime_error) << keep;
  }
}

TEST_F(SsgTest, BadMagicAndVersionThrow) {
  const Graph g = gen::gnp(50, 0.1, 5);
  const std::string p = path("m.ssg");
  io::save_ssg(p, g);
  auto bytes = read_all(p);
  {
    auto tampered = bytes;
    tampered[0] = 'X';
    write_all(p, tampered);
    EXPECT_THROW(io::load_ssg(p), std::runtime_error);
  }
  {
    auto tampered = bytes;
    tampered[8] = 99;  // version field
    write_all(p, tampered);
    EXPECT_THROW(io::load_ssg(p), std::runtime_error);
    EXPECT_THROW(io::mmap_ssg(p), std::runtime_error);
  }
  {
    auto tampered = bytes;
    tampered[12] ^= 0xff;  // endianness tag
    write_all(p, tampered);
    EXPECT_THROW(io::load_ssg(p), std::runtime_error);
  }
}

TEST_F(SsgTest, HostileAdjLenHeaderThrows) {
  // adj_len = real + 2^62 would overflow a naive `4 * adj_len` size check
  // and sail into out-of-bounds reads; the loader must reject it loudly.
  const Graph g = gen::gnp(100, 0.05, 5);
  const std::string p = path("h.ssg");
  io::save_ssg(p, g);
  auto bytes = read_all(p);
  std::int64_t adj_len;
  std::memcpy(&adj_len, bytes.data() + 24, sizeof(adj_len));
  adj_len += (std::int64_t{1} << 62);
  std::memcpy(bytes.data() + 24, &adj_len, sizeof(adj_len));
  write_all(p, bytes);
  EXPECT_THROW(io::load_ssg(p), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(p), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(p, io::SsgValidation::kTrusted), std::runtime_error);
}

TEST_F(SsgTest, SavingOverTheMappedSourceFileIsSafe) {
  // save_ssg writes through a scratch file + rename, so saving a graph over
  // the very .ssg it is mmap'd from must neither corrupt the live mapping
  // nor the resulting file (a plain truncating write would SIGBUS here).
  const Graph g = gen::gnp(400, 0.02, 9);
  const std::string p = path("self.ssg");
  io::save_ssg(p, g);
  const Graph mapped = io::mmap_ssg(p);
  io::save_ssg(p, mapped);  // overwrite the backing file of `mapped`
  EXPECT_EQ(mapped, g);     // old mapping still intact (old inode alive)
  EXPECT_EQ(io::mmap_ssg(p), g);  // new file is complete and valid
}

TEST_F(SsgTest, MissingFileThrows) {
  EXPECT_THROW(io::load_ssg(path("nope.ssg")), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(path("nope.ssg")), std::runtime_error);
}

TEST_F(SsgTest, LoadGraphFileDispatchesOnExtension) {
  const Graph g = gen::gnp(80, 0.05, 2);
  const std::string bin = path("g.ssg");
  io::save_ssg(bin, g);
  EXPECT_EQ(io::load_graph_file(bin, /*prefer_mmap=*/true), g);
  EXPECT_TRUE(io::load_graph_file(bin, true).is_mapped());
  EXPECT_FALSE(io::load_graph_file(bin, /*prefer_mmap=*/false).is_mapped());

  const std::string txt = path("g.edges");
  {
    std::ofstream out(txt);
    io::write_edge_list(out, g);
  }
  EXPECT_EQ(io::load_graph_file(txt), g);
}

}  // namespace
}  // namespace ssmis
