#include <gtest/gtest.h>

#include "core/init.hpp"
#include "core/three_color.hpp"
#include "core/three_state.hpp"
#include "core/two_state.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "models/beeping.hpp"
#include "models/mis_automata.hpp"
#include "models/stone_age.hpp"

namespace ssmis {
namespace {

std::vector<std::uint8_t> encode2(const std::vector<Color2>& colors) {
  std::vector<std::uint8_t> out(colors.size());
  for (std::size_t i = 0; i < colors.size(); ++i)
    out[i] = TwoStateBeepAutomaton::encode(colors[i]);
  return out;
}

std::vector<std::uint8_t> encode3(const std::vector<Color3>& colors) {
  std::vector<std::uint8_t> out(colors.size());
  for (std::size_t i = 0; i < colors.size(); ++i)
    out[i] = ThreeStateStoneAgeAutomaton::encode(colors[i]);
  return out;
}

TEST(BeepingNetwork, ValidatesInit) {
  const Graph g = gen::path(3);
  const TwoStateBeepAutomaton automaton;
  EXPECT_THROW(BeepingNetwork(g, automaton, {0, 1}, CoinOracle(1)),
               std::invalid_argument);
  EXPECT_THROW(BeepingNetwork(g, automaton, {0, 1, 7}, CoinOracle(1)),
               std::invalid_argument);
}

TEST(BeepingNetwork, BeepAccounting) {
  const Graph g = gen::path(3);
  const TwoStateBeepAutomaton automaton;
  BeepingNetwork net(g, automaton, {1, 0, 1}, CoinOracle(1));
  net.step();
  EXPECT_EQ(net.beeps_last_round(), 2);  // the two black nodes beeped
  EXPECT_EQ(net.total_beeps(), 2);
}

TEST(BeepingEquivalence, TwoStateBitIdenticalOnSuite) {
  // The headline model theorem: the beeping-model execution IS the 2-state
  // process execution, coin for coin, on every graph and seed tested.
  const std::vector<Graph> graphs = {
      gen::complete(16), gen::path(40),        gen::star(15),
      gen::cycle(21),    gen::gnp(60, 0.1, 3), gen::random_tree(50, 4),
      Graph::from_edges(4, {}),
  };
  const TwoStateBeepAutomaton automaton;
  for (const Graph& g : graphs) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const CoinOracle coins(seed);
      const auto init = make_init2(g, InitPattern::kUniformRandom, coins);
      TwoStateMIS direct(g, init, coins);
      BeepingNetwork net(g, automaton, encode2(init), coins);
      for (int round = 0; round < 200; ++round) {
        direct.step();
        net.step();
        ASSERT_EQ(net.states(), encode2(direct.colors()))
            << g.summary() << " seed " << seed << " round " << round;
      }
    }
  }
}

TEST(BeepingEquivalence, ClaimedMisMatchesBlackSet) {
  const Graph g = gen::gnp(50, 0.1, 5);
  const CoinOracle coins(9);
  const auto init = make_init2(g, InitPattern::kAllBlack, coins);
  TwoStateMIS direct(g, init, coins);
  const TwoStateBeepAutomaton automaton;
  BeepingNetwork net(g, automaton, encode2(init), coins);
  for (int i = 0; i < 500 && !direct.stabilized(); ++i) {
    direct.step();
    net.step();
  }
  ASSERT_TRUE(direct.stabilized());
  EXPECT_EQ(net.claimed_mis(), direct.black_set());
  EXPECT_TRUE(is_mis(g, net.claimed_mis()));
}

TEST(StoneAgeNetwork, ValidatesInitAndChannels) {
  const Graph g = gen::path(3);
  const ThreeStateStoneAgeAutomaton automaton;
  EXPECT_THROW(StoneAgeNetwork(g, automaton, {0, 1}, CoinOracle(1)),
               std::invalid_argument);
  EXPECT_THROW(StoneAgeNetwork(g, automaton, {0, 1, 9}, CoinOracle(1)),
               std::invalid_argument);
}

TEST(StoneAgeNetwork, SilentNodesDoNotTransmit) {
  const Graph g = gen::path(2);
  const ThreeStateStoneAgeAutomaton automaton;
  StoneAgeNetwork net(g, automaton, {0, 0}, CoinOracle(1));  // both white
  net.step();
  EXPECT_EQ(net.total_transmissions(), 0);
}

TEST(StoneAgeEquivalence, ThreeStateBitIdenticalOnSuite) {
  const std::vector<Graph> graphs = {
      gen::complete(16), gen::path(40),        gen::star(15),
      gen::gnp(60, 0.1, 3), gen::random_tree(50, 4),
  };
  const ThreeStateStoneAgeAutomaton automaton;
  for (const Graph& g : graphs) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const CoinOracle coins(seed);
      const auto init = make_init3(g, InitPattern::kUniformRandom, coins);
      ThreeStateMIS direct(g, init, coins);
      StoneAgeNetwork net(g, automaton, encode3(init), coins);
      for (int round = 0; round < 200; ++round) {
        direct.step();
        net.step();
        ASSERT_EQ(net.states(), encode3(direct.colors()))
            << g.summary() << " seed " << seed << " round " << round;
      }
    }
  }
}

TEST(StoneAgeEquivalence, ThreeColorFullSystemBitIdentical) {
  // The 18-state automaton must reproduce the 3-color process INCLUDING its
  // randomized logarithmic switch, via 18-channel full-state announcement.
  const std::vector<Graph> graphs = {
      gen::complete(12), gen::star(14), gen::gnp(40, 0.2, 7), gen::path(25),
  };
  const ThreeColorStoneAgeAutomaton automaton;
  for (const Graph& g : graphs) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      const CoinOracle coins(seed);
      const auto init = make_init_g(g, InitPattern::kUniformRandom, coins);
      auto direct = ThreeColorMIS::with_randomized_switch(g, init, coins);
      const auto* sw = dynamic_cast<const RandomizedLogSwitch*>(&direct.switch_process());
      ASSERT_NE(sw, nullptr);
      std::vector<std::uint8_t> net_init(init.size());
      for (Vertex u = 0; u < g.num_vertices(); ++u) {
        net_init[static_cast<std::size_t>(u)] = ThreeColorStoneAgeAutomaton::encode(
            init[static_cast<std::size_t>(u)], sw->clock().level(u));
      }
      StoneAgeNetwork net(g, automaton, net_init, coins);
      for (int round = 0; round < 150; ++round) {
        direct.step();
        net.step();
        // Re-fetch through the syncing accessor each round: the lazy-switch
        // fast-forward may leave the physical clock behind the logical
        // round until a read forces the (bit-identical) replay.
        sw = dynamic_cast<const RandomizedLogSwitch*>(&direct.switch_process());
        for (Vertex u = 0; u < g.num_vertices(); ++u) {
          ASSERT_EQ(ThreeColorStoneAgeAutomaton::decode_color(net.state(u)),
                    direct.color(u))
              << g.summary() << " seed " << seed << " round " << round << " u " << u;
          ASSERT_EQ(ThreeColorStoneAgeAutomaton::decode_level(net.state(u)),
                    sw->clock().level(u))
              << g.summary() << " seed " << seed << " round " << round << " u " << u;
        }
      }
    }
  }
}

TEST(Automata, TwoStateTransitionTable) {
  const TwoStateBeepAutomaton a;
  const std::uint64_t black_word = ~0ULL;  // top bit set -> black
  const std::uint64_t white_word = 0;
  using A = TwoStateBeepAutomaton;
  // black + heard (collision) -> active -> coin decides.
  EXPECT_EQ(a.next(A::kBlack, true, black_word), A::kBlack);
  EXPECT_EQ(a.next(A::kBlack, true, white_word), A::kWhite);
  // black + silence -> stable black, keeps state regardless of coin.
  EXPECT_EQ(a.next(A::kBlack, false, white_word), A::kBlack);
  // white + heard -> covered, stays white.
  EXPECT_EQ(a.next(A::kWhite, true, black_word), A::kWhite);
  // white + silence -> active.
  EXPECT_EQ(a.next(A::kWhite, false, black_word), A::kBlack);
  EXPECT_EQ(a.next(A::kWhite, false, white_word), A::kWhite);
}

TEST(Automata, ThreeStateEmitsAtMostOneChannel) {
  const ThreeStateStoneAgeAutomaton a;
  EXPECT_EQ(a.emit(ThreeStateStoneAgeAutomaton::kWhite), -1);
  EXPECT_EQ(a.emit(ThreeStateStoneAgeAutomaton::kBlack0), 0);
  EXPECT_EQ(a.emit(ThreeStateStoneAgeAutomaton::kBlack1), 1);
}

TEST(Automata, ThreeColorEncodingRoundTrips) {
  for (int level = 0; level <= 5; ++level) {
    for (ColorG c : {ColorG::kWhite, ColorG::kBlack, ColorG::kGray}) {
      const auto s = ThreeColorStoneAgeAutomaton::encode(c, level);
      EXPECT_LT(s, 18);
      EXPECT_EQ(ThreeColorStoneAgeAutomaton::decode_color(s), c);
      EXPECT_EQ(ThreeColorStoneAgeAutomaton::decode_level(s), level);
    }
  }
}

TEST(Automata, StateCountsMatchPaper) {
  EXPECT_EQ(TwoStateBeepAutomaton().num_states(), 2);
  EXPECT_EQ(ThreeStateStoneAgeAutomaton().num_states(), 3);
  EXPECT_EQ(ThreeColorStoneAgeAutomaton().num_states(), 18);
}

}  // namespace
}  // namespace ssmis
