#!/usr/bin/env python3
"""Compile-fail harness for the engine's named-concept diagnostics.

Usage: check_compile_fail.py <cxx> <include-dir> <tu> <expected>...

Asserts that <tu> FAILS to compile under -std=c++20 -fsyntax-only and that
the compiler output mentions every <expected> string (the violated
concept's name). A fixture that compiles, or a diagnostic that no longer
names the concept, fails the test — both directions of the contract.
"""

import subprocess
import sys


def main() -> int:
    if len(sys.argv) < 5:
        print(__doc__, file=sys.stderr)
        return 2
    cxx, include_dir, tu = sys.argv[1], sys.argv[2], sys.argv[3]
    expected = sys.argv[4:]
    proc = subprocess.run(
        [cxx, "-std=c++20", "-fsyntax-only", "-I", include_dir, tu],
        capture_output=True, text=True)
    if proc.returncode == 0:
        print(f"FAIL: {tu} compiled cleanly; the bad rule must be rejected")
        return 1
    diagnostics = proc.stderr + proc.stdout
    missing = [e for e in expected if e not in diagnostics]
    if missing:
        print("FAIL: compile error does not name: " + ", ".join(missing))
        print("--- first 4000 chars of diagnostics ---")
        print(diagnostics[:4000])
        return 1
    print("OK: rejected with the named concept(s): " + ", ".join(expected))
    return 0


if __name__ == "__main__":
    sys.exit(main())
