// Compile-fail fixture: a rule missing `transition` must make
// ProcessEngine instantiation fail with the violated concept's NAME in the
// diagnostic (ssmis::RuleHasTransition), not an overload-resolution spew.
// Driven by check_compile_fail.py, registered in CTest as
// compile_fail_bad_rule; this file is never built into any target.
#include <cstdint>
#include <vector>

#include "core/engine.hpp"

namespace {

struct NoTransitionRule {
  using Color = std::uint8_t;
  static constexpr bool kTracksStability = false;
  int num_colors() const { return 2; }
  int num_counters() const { return 1; }
  ssmis::Vertex contribution(Color, int) const { return 1; }
  bool scheduled(Color, const ssmis::Vertex*) const { return false; }
  // transition(u, c, cnt, t) deliberately missing.
};

}  // namespace

void instantiate(const ssmis::Graph& g) {
  ssmis::ProcessEngine<NoTransitionRule> engine(
      g, std::vector<NoTransitionRule::Color>{}, NoTransitionRule{});
  engine.step();
}
