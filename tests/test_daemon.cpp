#include <gtest/gtest.h>

#include "core/daemon.hpp"
#include "core/init.hpp"
#include "core/two_state.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"

namespace ssmis {
namespace {

TEST(Daemon, ConstructorValidation) {
  const Graph g = gen::path(3);
  EXPECT_THROW(DaemonMIS(g, {Color2::kWhite}, std::make_unique<SynchronousDaemon>(),
                         CoinOracle(1)),
               std::invalid_argument);
  EXPECT_THROW(DaemonMIS(g, std::vector<Color2>(3, Color2::kWhite), nullptr,
                         CoinOracle(1)),
               std::invalid_argument);
  EXPECT_THROW(RandomSubsetDaemon(0.0, 1), std::invalid_argument);
  EXPECT_THROW(RandomSubsetDaemon(1.5, 1), std::invalid_argument);
}

TEST(Daemon, SynchronousDaemonBitIdenticalToTwoStateMIS) {
  // The unification check: under the all-enabled daemon with the same coin
  // oracle, DaemonMIS IS the synchronous 2-state process.
  const std::vector<Graph> graphs = {gen::complete(16), gen::gnp(50, 0.1, 3),
                                     gen::random_tree(40, 4), gen::path(30)};
  for (const Graph& g : graphs) {
    const CoinOracle coins(7);
    const auto init = make_init2(g, InitPattern::kUniformRandom, coins);
    TwoStateMIS direct(g, init, coins);
    DaemonMIS daemon(g, init, std::make_unique<SynchronousDaemon>(), coins);
    for (int i = 0; i < 150; ++i) {
      direct.step();
      daemon.step();
      ASSERT_EQ(daemon.colors(), direct.colors()) << g.summary() << " step " << i;
    }
  }
}

TEST(Daemon, StabilizesUnderAllDaemons) {
  const Graph g = gen::gnp(60, 0.1, 11);
  const CoinOracle coins(13);
  auto make_daemons = [&]() {
    std::vector<std::unique_ptr<ActivationDaemon>> daemons;
    daemons.push_back(std::make_unique<SynchronousDaemon>());
    daemons.push_back(std::make_unique<CentralDaemon>(17));
    daemons.push_back(std::make_unique<RandomSubsetDaemon>(0.1, 19));
    daemons.push_back(std::make_unique<RandomSubsetDaemon>(0.5, 23));
    daemons.push_back(std::make_unique<AdversarialPairDaemon>());
    return daemons;
  };
  for (auto& daemon : make_daemons()) {
    const std::string name = daemon->name();
    DaemonMIS p(g, make_init2(g, InitPattern::kAllBlack, coins), std::move(daemon),
                coins);
    const auto steps = p.run(5000000);
    ASSERT_TRUE(p.stabilized()) << name << " after " << steps << " steps";
    EXPECT_TRUE(is_mis(g, p.black_set())) << name;
  }
}

TEST(Daemon, CentralDaemonActivatesOnePerStep) {
  const Graph g = gen::complete(8);
  const CoinOracle coins(29);
  DaemonMIS p(g, std::vector<Color2>(8, Color2::kBlack),
              std::make_unique<CentralDaemon>(31), coins);
  while (!p.stabilized()) {
    const Vertex activated = p.step();
    ASSERT_LE(activated, 1);
  }
  EXPECT_TRUE(is_mis(g, p.black_set()));
}

TEST(Daemon, EmptySubsetFallsBackToAll) {
  // rho so small the subset is usually empty: the liveness fallback must
  // keep the process moving rather than spinning forever.
  const Graph g = gen::gnp(30, 0.15, 37);
  const CoinOracle coins(41);
  DaemonMIS p(g, make_init2(g, InitPattern::kUniformRandom, coins),
              std::make_unique<RandomSubsetDaemon>(0.01, 43), coins);
  const auto steps = p.run(200000);
  EXPECT_TRUE(p.stabilized()) << steps;
}

TEST(Daemon, StabilizedStepIsNoOp) {
  const Graph g = gen::path(3);
  DaemonMIS p(g, {Color2::kBlack, Color2::kWhite, Color2::kBlack},
              std::make_unique<SynchronousDaemon>(), CoinOracle(1));
  EXPECT_TRUE(p.stabilized());
  EXPECT_EQ(p.step(), 0);
  EXPECT_EQ(p.colors()[0], Color2::kBlack);
}

TEST(Daemon, EnabledMatchesDefinitionFourActivity) {
  const Graph g = gen::path(4);
  const std::vector<Color2> init = {Color2::kBlack, Color2::kBlack, Color2::kWhite,
                                    Color2::kWhite};
  DaemonMIS p(g, init, std::make_unique<SynchronousDaemon>(), CoinOracle(1));
  const TwoStateMIS reference(g, init, CoinOracle(1));
  for (Vertex u = 0; u < 4; ++u) EXPECT_EQ(p.enabled(u), reference.active(u));
  EXPECT_EQ(p.num_enabled(), reference.num_active());
}

TEST(Daemon, NamesAreInformative) {
  EXPECT_EQ(SynchronousDaemon().name(), "synchronous");
  EXPECT_EQ(CentralDaemon(1).name(), "central");
  EXPECT_NE(RandomSubsetDaemon(0.25, 1).name().find("0.25"), std::string::npos);
}

}  // namespace
}  // namespace ssmis
