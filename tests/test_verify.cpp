#include <gtest/gtest.h>

#include "core/verify.hpp"
#include "graph/generators.hpp"

namespace ssmis {
namespace {

TEST(Verify, IndependenceBasic) {
  const Graph g = gen::path(4);  // 0-1-2-3
  EXPECT_TRUE(is_independent_set(g, std::vector<Vertex>{0, 2}));
  EXPECT_TRUE(is_independent_set(g, std::vector<Vertex>{0, 3}));
  EXPECT_FALSE(is_independent_set(g, std::vector<Vertex>{0, 1}));
  EXPECT_TRUE(is_independent_set(g, std::vector<Vertex>{}));
}

TEST(Verify, MaximalityBasic) {
  const Graph g = gen::path(4);
  EXPECT_TRUE(is_maximal(g, std::vector<Vertex>{0, 2}));
  EXPECT_TRUE(is_maximal(g, std::vector<Vertex>{1, 3}));
  EXPECT_FALSE(is_maximal(g, std::vector<Vertex>{0}));  // 2, 3 uncovered
  EXPECT_FALSE(is_maximal(g, std::vector<Vertex>{}));
}

TEST(Verify, MisOnPath) {
  const Graph g = gen::path(4);
  EXPECT_TRUE(is_mis(g, std::vector<Vertex>{0, 2}));
  EXPECT_TRUE(is_mis(g, std::vector<Vertex>{1, 3}));
  EXPECT_TRUE(is_mis(g, std::vector<Vertex>{0, 3}));
  EXPECT_FALSE(is_mis(g, std::vector<Vertex>{0, 1, 3}));
  EXPECT_FALSE(is_mis(g, std::vector<Vertex>{0}));
}

TEST(Verify, MisOnClique) {
  const Graph g = gen::complete(5);
  for (Vertex u = 0; u < 5; ++u)
    EXPECT_TRUE(is_mis(g, std::vector<Vertex>{u}));
  EXPECT_FALSE(is_mis(g, std::vector<Vertex>{0, 1}));
  EXPECT_FALSE(is_mis(g, std::vector<Vertex>{}));
}

TEST(Verify, EmptyGraphEmptySetIsMis) {
  const Graph g = Graph::from_edges(0, {});
  EXPECT_TRUE(is_mis(g, std::vector<Vertex>{}));
}

TEST(Verify, IsolatedVerticesMustAllBeMembers) {
  const Graph g = Graph::from_edges(3, {});
  EXPECT_TRUE(is_mis(g, std::vector<Vertex>{0, 1, 2}));
  EXPECT_FALSE(is_mis(g, std::vector<Vertex>{0, 1}));
}

TEST(Verify, MaskSizeMismatchThrows) {
  const Graph g = gen::path(3);
  EXPECT_THROW(is_independent_set(g, std::vector<char>{1, 0}), std::invalid_argument);
  EXPECT_THROW(is_maximal(g, std::vector<char>{1, 0, 0, 0}), std::invalid_argument);
}

TEST(Verify, MemberOutOfRangeThrows) {
  const Graph g = gen::path(3);
  EXPECT_THROW(is_mis(g, std::vector<Vertex>{5}), std::out_of_range);
}

TEST(Verify, FindViolationDescribesIndependence) {
  const Graph g = gen::path(3);
  const auto v = find_mis_violation(g, members_to_mask(3, {0, 1}));
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->find("independence"), std::string::npos);
}

TEST(Verify, FindViolationDescribesMaximality) {
  const Graph g = gen::path(3);
  const auto v = find_mis_violation(g, members_to_mask(3, {0}));
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->find("maximality"), std::string::npos);
}

TEST(Verify, FindViolationNulloptForMis) {
  const Graph g = gen::path(3);
  EXPECT_FALSE(find_mis_violation(g, members_to_mask(3, {1})).has_value());
}

TEST(Verify, GreedyMisIsAlwaysMis) {
  const std::vector<Graph> graphs = {
      gen::complete(10),          gen::path(17),
      gen::cycle(12),             gen::star(9),
      gen::gnp(100, 0.1, 1),      gen::random_tree(64, 2),
      gen::grid(6, 7),            gen::disjoint_cliques(4, 6),
      Graph::from_edges(5, {}),
  };
  for (const Graph& g : graphs) {
    EXPECT_TRUE(is_mis(g, greedy_mis(g))) << g.summary();
  }
}

TEST(Verify, GreedyMisOnCliqueIsSingleton) {
  EXPECT_EQ(greedy_mis(gen::complete(7)).size(), 1u);
}

TEST(Verify, GreedyMisOnStarIsHubOrLeaves) {
  // Greedy from vertex 0 (the hub) picks the hub only.
  EXPECT_EQ(greedy_mis(gen::star(10)), (std::vector<Vertex>{0}));
}

}  // namespace
}  // namespace ssmis
