#include <gtest/gtest.h>

#include <sstream>

#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

namespace ssmis {
namespace {

CliArgs parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsForm) {
  const auto args = parse({"--n=128", "--p=0.5", "--name=clique"});
  EXPECT_EQ(args.get_int("n", 0), 128);
  EXPECT_DOUBLE_EQ(args.get_double("p", 0.0), 0.5);
  EXPECT_EQ(args.get_string("name", ""), "clique");
}

TEST(Cli, SpaceForm) {
  const auto args = parse({"--n", "64", "--label", "x"});
  EXPECT_EQ(args.get_int("n", 0), 64);
  EXPECT_EQ(args.get_string("label", ""), "x");
}

TEST(Cli, BooleanFlag) {
  const auto args = parse({"--verbose", "--csv=false"});
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_FALSE(args.get_bool("csv", true));
  EXPECT_FALSE(args.get_bool("absent"));
}

TEST(Cli, FallbacksWhenAbsent) {
  const auto args = parse({});
  EXPECT_EQ(args.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("p", 0.25), 0.25);
  EXPECT_EQ(args.get_string("s", "dflt"), "dflt");
}

TEST(Cli, MalformedIntRecordsError) {
  const auto args = parse({"--n=abc"});
  EXPECT_EQ(args.get_int("n", 7), 7);
  EXPECT_FALSE(args.errors().empty());
}

TEST(Cli, MalformedDoubleRecordsError) {
  const auto args = parse({"--p=zz"});
  EXPECT_DOUBLE_EQ(args.get_double("p", 0.5), 0.5);
  EXPECT_FALSE(args.errors().empty());
}

TEST(Cli, PositionalArguments) {
  const auto args = parse({"first", "--n=1", "second"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "first");
  EXPECT_EQ(args.positional()[1], "second");
}

TEST(Cli, HasDetectsPresence) {
  const auto args = parse({"--x=1"});
  EXPECT_TRUE(args.has("x"));
  EXPECT_FALSE(args.has("y"));
}

TEST(Cli, UnknownOptionsAcceptsKnownFlags) {
  const auto args = parse({"--trials=5", "--seed", "9", "--shard"});
  EXPECT_TRUE(args.unknown_options({"trials", "seed", "shard"}).empty());
}

TEST(Cli, UnknownOptionsRejectsTyposListingValidFlags) {
  // The motivating bug: --protocal must not silently run the default.
  const auto args = parse({"--protocal=3state", "--trials=5"});
  const auto errors = args.unknown_options({"protocol", "trials"});
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("--protocal"), std::string::npos);
  EXPECT_NE(errors[0].find("--protocol"), std::string::npos);
  EXPECT_NE(errors[0].find("--trials"), std::string::npos);
}

TEST(Cli, UnknownOptionsSupportsPrefixWildcards) {
  const auto args = parse({"--proto-loss=0.1", "--proto-rho=0.5", "--protx=1"});
  const auto errors = args.unknown_options({"proto-*"});
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("--protx"), std::string::npos);
}

TEST(Cli, UnknownOptionsReportsEveryOffender) {
  const auto args = parse({"--a=1", "--b=2"});
  EXPECT_EQ(args.unknown_options({"c"}).size(), 2u);
  EXPECT_TRUE(args.unknown_options({}).empty() == args.options().empty());
}

TEST(Cli, OptionsExposesParsedMap) {
  const auto args = parse({"--proto-loss=0.1", "--n=4"});
  ASSERT_EQ(args.options().size(), 2u);
  EXPECT_EQ(args.options().at("proto-loss"), "0.1");
}

TEST(Table, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // All lines (other than separator) should have equal-or-consistent width.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CellHelpers) {
  TextTable t({"a", "b", "c"});
  t.begin_row();
  t.add_cell(static_cast<std::int64_t>(7));
  t.add_cell(3.14159, 3);
  t.add_cell("x");
  const std::string out = t.to_string();
  EXPECT_NE(out.find("7"), std::string::npos);
  EXPECT_NE(out.find("3.142"), std::string::npos);
}

TEST(Table, RaggedRowsPadded) {
  TextTable t({"a", "b"});
  t.add_row({"only-one"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(1.0, 2), "1.00");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("q\"q"), "\"q\"\"q\"");
  EXPECT_EQ(CsvWriter::escape("nl\n"), "\"nl\n\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream oss;
  CsvWriter csv(oss);
  csv.write_row({"h1", "h2"});
  csv.write_row({"1", "a,b"});
  EXPECT_EQ(oss.str(), "h1,h2\n1,\"a,b\"\n");
}

}  // namespace
}  // namespace ssmis
