// Property-based tests: paper-level invariants checked across the full
// graph suite x initial pattern x seed grid via parameterized gtest.
#include <gtest/gtest.h>

#include <tuple>

#include "core/init.hpp"
#include "core/runner.hpp"
#include "core/three_color.hpp"
#include "core/three_state.hpp"
#include "core/two_state.hpp"
#include "core/verify.hpp"
#include "harness/suites.hpp"

namespace ssmis {
namespace {

// Graphs are addressed by suite index so gtest parameter values stay cheap
// to copy; the suites themselves are memoized.
const std::vector<NamedGraph>& suite() {
  static const std::vector<NamedGraph>* s = [] {
    auto* v = new std::vector<NamedGraph>(small_suite(/*seed=*/2024));
    const auto corners = corner_suite();
    v->insert(v->end(), corners.begin(), corners.end());
    return v;
  }();
  return *s;
}

struct ParamNames {
  template <typename T>
  std::string operator()(const ::testing::TestParamInfo<T>& info) const {
    const auto [graph_index, seed] = info.param;
    std::string name = suite()[static_cast<std::size_t>(graph_index)].name +
                       "_s" + std::to_string(seed);
    for (char& c : name)
      if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
    return name;
  }
};

using Param = std::tuple<int, int>;  // (suite index, seed)

std::vector<Param> all_params() {
  std::vector<Param> params;
  for (int g = 0; g < static_cast<int>(suite().size()); ++g)
    for (int seed = 1; seed <= 2; ++seed) params.emplace_back(g, seed);
  return params;
}

class ProcessProperty : public ::testing::TestWithParam<Param> {
 protected:
  const Graph& graph() const {
    return suite()[static_cast<std::size_t>(std::get<0>(GetParam()))].graph;
  }
  std::uint64_t seed() const {
    return static_cast<std::uint64_t>(std::get<1>(GetParam()));
  }
};

// -- Invariant: every process stabilizes on every suite graph from random
//    states, and the stabilized black set is an MIS.

TEST_P(ProcessProperty, TwoStateStabilizesToMis) {
  const CoinOracle coins(seed());
  TwoStateMIS p(graph(), make_init2(graph(), InitPattern::kUniformRandom, coins), coins);
  const RunResult r = run_until_stabilized(p, 300000);
  ASSERT_TRUE(r.stabilized);
  EXPECT_TRUE(is_mis(graph(), p.black_set()));
}

TEST_P(ProcessProperty, ThreeStateStabilizesToMis) {
  const CoinOracle coins(seed());
  ThreeStateMIS p(graph(), make_init3(graph(), InitPattern::kUniformRandom, coins), coins);
  const RunResult r = run_until_stabilized(p, 300000);
  ASSERT_TRUE(r.stabilized);
  EXPECT_TRUE(is_mis(graph(), p.black_set()));
}

TEST_P(ProcessProperty, ThreeColorStabilizesToMis) {
  const CoinOracle coins(seed());
  auto p = ThreeColorMIS::with_randomized_switch(
      graph(), make_init_g(graph(), InitPattern::kUniformRandom, coins), coins);
  const RunResult r = run_until_stabilized(p, 300000);
  ASSERT_TRUE(r.stabilized);
  EXPECT_TRUE(is_mis(graph(), p.black_set()));
}

// -- Invariant: stability is monotone — once a vertex is stable black, it
//    stays stable black; the unstable count never grows (2-state).

TEST_P(ProcessProperty, TwoStateStabilityMonotone) {
  const CoinOracle coins(seed());
  TwoStateMIS p(graph(), make_init2(graph(), InitPattern::kUniformRandom, coins), coins);
  std::vector<char> ever(static_cast<std::size_t>(graph().num_vertices()), 0);
  Vertex prev_unstable = p.num_unstable();
  for (int i = 0; i < 100 && !p.stabilized(); ++i) {
    p.step();
    for (Vertex u = 0; u < graph().num_vertices(); ++u) {
      if (ever[static_cast<std::size_t>(u)]) {
        ASSERT_TRUE(p.stable_black(u));
      }
      if (p.stable_black(u)) ever[static_cast<std::size_t>(u)] = 1;
    }
    ASSERT_LE(p.num_unstable(), prev_unstable);
    prev_unstable = p.num_unstable();
  }
}

// -- Invariant: the three processes agree on the *fixed-point* semantics:
//    a configuration is a fixed point of the black set iff it is an MIS.

TEST_P(ProcessProperty, GreedyMisIsFixedPointOfAllProcesses) {
  const auto mis = greedy_mis(graph());
  const auto mask = members_to_mask(graph().num_vertices(), mis);
  const CoinOracle coins(seed());

  std::vector<Color2> c2(mask.size());
  for (std::size_t i = 0; i < mask.size(); ++i)
    c2[i] = mask[i] ? Color2::kBlack : Color2::kWhite;
  TwoStateMIS p2(graph(), c2, coins);
  EXPECT_TRUE(p2.stabilized());
  for (int i = 0; i < 10; ++i) p2.step();
  EXPECT_EQ(p2.black_set(), mis);

  std::vector<Color3> c3(mask.size());
  for (std::size_t i = 0; i < mask.size(); ++i)
    c3[i] = mask[i] ? Color3::kBlack1 : Color3::kWhite;
  ThreeStateMIS p3(graph(), c3, coins);
  EXPECT_TRUE(p3.stabilized());
  for (int i = 0; i < 10; ++i) p3.step();
  EXPECT_EQ(p3.black_set(), mis);

  std::vector<ColorG> cg(mask.size());
  for (std::size_t i = 0; i < mask.size(); ++i)
    cg[i] = mask[i] ? ColorG::kBlack : ColorG::kWhite;
  auto pg = ThreeColorMIS::with_randomized_switch(graph(), cg, coins);
  EXPECT_TRUE(pg.stabilized());
  for (int i = 0; i < 10; ++i) pg.step();
  EXPECT_EQ(pg.black_set(), mis);
}

// -- Invariant: determinism — identical seeds give identical runs.

TEST_P(ProcessProperty, RunsAreReproducible) {
  const CoinOracle coins(seed());
  TwoStateMIS a(graph(), make_init2(graph(), InitPattern::kUniformRandom, coins), coins);
  TwoStateMIS b(graph(), make_init2(graph(), InitPattern::kUniformRandom, coins), coins);
  const RunResult ra = run_until_stabilized(a, 300000);
  const RunResult rb = run_until_stabilized(b, 300000);
  EXPECT_EQ(ra.rounds, rb.rounds);
  EXPECT_EQ(a.colors(), b.colors());
}

// -- Invariant: the MIS reported by different algorithms may differ, but
//    each is a valid MIS, and sizes are within the graph's possible range.

TEST_P(ProcessProperty, MisSizesWithinDominationBounds) {
  const CoinOracle coins(seed());
  TwoStateMIS p(graph(), make_init2(graph(), InitPattern::kAllWhite, coins), coins);
  const RunResult r = run_until_stabilized(p, 300000);
  ASSERT_TRUE(r.stabilized);
  const auto mis = p.black_set();
  const auto reference = greedy_mis(graph());
  // Any MIS is a dominating set; sizes are within a (Delta+1) factor of any
  // other MIS (each member dominates at most Delta+1 vertices).
  const double delta_plus_1 = graph().max_degree() + 1;
  EXPECT_GE(static_cast<double>(mis.size()) * delta_plus_1,
            static_cast<double>(reference.size()));
  EXPECT_GE(static_cast<double>(reference.size()) * delta_plus_1,
            static_cast<double>(mis.size()));
}

INSTANTIATE_TEST_SUITE_P(Suite, ProcessProperty, ::testing::ValuesIn(all_params()),
                         ParamNames());

}  // namespace
}  // namespace ssmis
