// The two post-registry workloads: MaximalMatching (2-state process on the
// line graph) and PriorityMIS (weight/ID-biased 2-state variant), plus the
// new maximal-matching verifier they are checked against.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/matching.hpp"
#include "core/priority_mis.hpp"
#include "core/runner.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "harness/registry.hpp"

namespace ssmis {
namespace {

// --- the verifier itself ---------------------------------------------------

TEST(MatchingVerify, AcceptsGreedyOnSuite) {
  for (std::uint64_t seed : {1ull, 2ull}) {
    for (const Graph& g : {gen::gnp(80, 0.06, seed), gen::random_tree(60, seed),
                           gen::complete(9), gen::cycle(5), gen::path(7)}) {
      const auto m = greedy_maximal_matching(g);
      EXPECT_TRUE(is_matching(g, m));
      EXPECT_TRUE(is_maximal_matching(g, m));
      EXPECT_FALSE(find_matching_violation(g, m).has_value());
    }
  }
}

TEST(MatchingVerify, RejectsNonEdges) {
  const Graph g = gen::path(4);  // edges 0-1, 1-2, 2-3
  EXPECT_FALSE(is_matching(g, {{0, 2}}));
  const auto violation = find_matching_violation(g, {{0, 2}});
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("not an edge"), std::string::npos);
}

TEST(MatchingVerify, RejectsSharedEndpoints) {
  const Graph g = gen::path(4);
  EXPECT_FALSE(is_matching(g, {{0, 1}, {1, 2}}));
  const auto violation = find_matching_violation(g, {{0, 1}, {1, 2}});
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("two matching edges"), std::string::npos);
}

TEST(MatchingVerify, RejectsNonMaximal) {
  const Graph g = gen::path(4);
  // {0-1} leaves edge 2-3 addable.
  EXPECT_TRUE(is_matching(g, {{0, 1}}));
  EXPECT_FALSE(is_maximal_matching(g, {{0, 1}}));
  const auto violation = find_matching_violation(g, {{0, 1}});
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("maximality"), std::string::npos);
  // The empty matching on an edgeless graph is trivially maximal.
  EXPECT_TRUE(is_maximal_matching(gen::path(1), {}));
}

// --- the line graph --------------------------------------------------------

TEST(LineGraph, PathAndTriangleAndStar) {
  // P4 has 3 edges in a path: L(P4) = P3.
  const Graph lp = line_graph(gen::path(4));
  EXPECT_EQ(lp.num_vertices(), 3);
  EXPECT_EQ(lp.num_edges(), 2);
  // Triangle: L(K3) = K3.
  const Graph lt = line_graph(gen::complete(3));
  EXPECT_EQ(lt.num_vertices(), 3);
  EXPECT_EQ(lt.num_edges(), 3);
  // Star K_{1,5}: all 5 edges share the hub => L = K5.
  const Graph ls = line_graph(gen::star(6));
  EXPECT_EQ(ls.num_vertices(), 5);
  EXPECT_EQ(ls.num_edges(), 10);
  // Edgeless graph: empty line graph.
  EXPECT_EQ(line_graph(gen::path(1)).num_vertices(), 0);
}

// --- MaximalMatching -------------------------------------------------------

TEST(MaximalMatchingProcess, StabilizesToValidMatchingAcrossFamilies) {
  for (std::uint64_t seed : {3ull, 4ull}) {
    for (const Graph& g :
         {gen::gnp(100, 0.05, seed), gen::complete(20), gen::cycle(5),
          gen::random_tree(80, seed), gen::star(12)}) {
      auto p = MaximalMatching::from_pattern(g, InitPattern::kUniformRandom,
                                             CoinOracle(seed + 10));
      const RunResult r = run_until_stabilized(p, 500000);
      ASSERT_TRUE(r.stabilized);
      const auto matching = p.matching();
      EXPECT_TRUE(is_maximal_matching(g, matching))
          << find_matching_violation(g, matching).value_or("");
      // matched_set is exactly the union of the matching's endpoints.
      std::set<Vertex> endpoints;
      for (const auto& [u, v] : matching) {
        endpoints.insert(u);
        endpoints.insert(v);
      }
      const auto matched = p.matched_set();
      EXPECT_TRUE(std::equal(matched.begin(), matched.end(), endpoints.begin(),
                             endpoints.end()));
      EXPECT_EQ(p.num_black(), static_cast<Vertex>(matching.size()));
    }
  }
}

TEST(MaximalMatchingProcess, AdversarialInitsRecover) {
  const Graph g = gen::gnp(60, 0.1, 7);
  for (InitPattern pattern : all_init_patterns()) {
    auto p = MaximalMatching::from_pattern(g, pattern, CoinOracle(11));
    const RunResult r = run_until_stabilized(p, 500000);
    ASSERT_TRUE(r.stabilized) << to_string(pattern);
    EXPECT_TRUE(is_maximal_matching(g, p.matching())) << to_string(pattern);
  }
}

TEST(MaximalMatchingProcess, EdgeFaultsRecover) {
  const Graph g = gen::gnp(50, 0.1, 13);
  auto p = MaximalMatching::from_pattern(g, InitPattern::kAllWhite, CoinOracle(17));
  ASSERT_TRUE(run_until_stabilized(p, 500000).stabilized);
  // Claim every edge at vertex 0 and free every edge at vertex 1: both
  // corruptions must be repaired.
  for (Vertex k : p.incident_edges(0)) p.force_edge(k, Color2::kBlack);
  for (Vertex k : p.incident_edges(1)) p.force_edge(k, Color2::kWhite);
  ASSERT_TRUE(run_until_stabilized(p, 500000).stabilized);
  EXPECT_TRUE(is_maximal_matching(g, p.matching()));
}

TEST(MaximalMatchingProcess, SizeWithinTwoApproximationBand) {
  // Any maximal matching is a 2-approximation of maximum: sizes across
  // seeds stay within [greedy/2, 2*greedy].
  const Graph g = gen::gnp(200, 0.03, 19);
  const double greedy = static_cast<double>(greedy_maximal_matching(g).size());
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto p = MaximalMatching::from_pattern(g, InitPattern::kUniformRandom,
                                           CoinOracle(seed));
    ASSERT_TRUE(run_until_stabilized(p, 500000).stabilized);
    const double size = static_cast<double>(p.matching().size());
    EXPECT_GE(size, greedy / 2.0);
    EXPECT_LE(size, greedy * 2.0);
  }
}

// --- PriorityMIS -----------------------------------------------------------

TEST(PriorityMis, StabilizesToValidMisForAllModes) {
  const Graph g = gen::gnp(80, 0.08, 23);
  for (const char* mode : {"id", "degree", "random"}) {
    const CoinOracle coins(29);
    PriorityMIS p(g, make_init2(g, InitPattern::kUniformRandom, coins), coins,
                  PriorityMIS::make_biases(g, mode, 0.25, 0.75, 29));
    const RunResult r = run_until_stabilized(p, 500000);
    ASSERT_TRUE(r.stabilized) << mode;
    EXPECT_TRUE(is_mis(g, p.black_set())) << mode;
  }
}

TEST(PriorityMis, BiasValidation) {
  const Graph g = gen::path(4);
  EXPECT_THROW(PriorityMIS::make_biases(g, "id", 0.0, 0.5, 1),
               std::invalid_argument);
  EXPECT_THROW(PriorityMIS::make_biases(g, "id", 0.5, 1.0, 1),
               std::invalid_argument);
  EXPECT_THROW(PriorityMIS::make_biases(g, "nope", 0.2, 0.8, 1),
               std::invalid_argument);
  const auto biases = PriorityMIS::make_biases(g, "id", 0.2, 0.8, 1);
  EXPECT_DOUBLE_EQ((*biases)[0], 0.2);
  EXPECT_DOUBLE_EQ((*biases)[3], 0.8);
}

// The differential the workload exists for: on a clique exactly one vertex
// wins, and with the ID bias the winner distribution must skew high — the
// mean winning id across seeds clearly exceeds the uniform mean (n-1)/2.
TEST(PriorityMis, IdBiasSkewsTheWinnerDifferential) {
  const Graph g = gen::complete(16);
  const int trials = 200;
  double priority_sum = 0.0;
  double uniform_sum = 0.0;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(t);
    ProtocolParams params;
    const auto biased =
        ProtocolRegistry::instance().make("priority", g, params, seed);
    EXPECT_TRUE(biased->run(100000, TraceMode::kNone).stabilized);
    priority_sum += static_cast<double>(biased->output_set().at(0));
    const auto fair = ProtocolRegistry::instance().make("2state", g, params, seed);
    EXPECT_TRUE(fair->run(100000, TraceMode::kNone).stabilized);
    uniform_sum += static_cast<double>(fair->output_set().at(0));
  }
  const double priority_mean = priority_sum / trials;
  const double uniform_mean = uniform_sum / trials;
  // Uniform sits near 7.5; the ID bias must push the winner mean well above
  // both it and the fair process's empirical mean.
  EXPECT_GT(priority_mean, 9.0);
  EXPECT_GT(priority_mean, uniform_mean + 1.0);
}

TEST(PriorityMis, DegreeBiasFavorsTheHub) {
  // Star: the hub is in the MIS iff the MIS is {hub}. With degree bias the
  // hub should win far more often than under the fair process.
  const Graph g = gen::star(9);
  const int trials = 200;
  int hub_biased = 0;
  int hub_fair = 0;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = 500 + static_cast<std::uint64_t>(t);
    ProtocolParams params;
    params.set("priority", "degree");
    params.set("bias-lo", "0.1");
    params.set("bias-hi", "0.9");
    const auto biased =
        ProtocolRegistry::instance().make("priority", g, params, seed);
    EXPECT_TRUE(biased->run(100000, TraceMode::kNone).stabilized);
    if (biased->output_set().front() == 0) ++hub_biased;
    ProtocolParams none;
    const auto fair = ProtocolRegistry::instance().make("2state", g, none, seed);
    EXPECT_TRUE(fair->run(100000, TraceMode::kNone).stabilized);
    if (fair->output_set().front() == 0) ++hub_fair;
  }
  EXPECT_GT(hub_biased, hub_fair + trials / 10);
}

}  // namespace
}  // namespace ssmis
