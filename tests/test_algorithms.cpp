#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace ssmis {
namespace {

TEST(Bfs, DistancesOnPath) {
  const Graph g = gen::path(5);
  const auto dist = bfs_distances(g, 0);
  for (Vertex u = 0; u < 5; ++u) EXPECT_EQ(dist[static_cast<std::size_t>(u)], u);
}

TEST(Bfs, UnreachableIsMinusOne) {
  const Graph g = Graph::from_edges(4, {{0, 1}});
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[2], -1);
  EXPECT_EQ(dist[3], -1);
}

TEST(Bfs, SourceOutOfRangeThrows) {
  const Graph g = gen::path(3);
  EXPECT_THROW(bfs_distances(g, 5), std::out_of_range);
}

TEST(Components, CountsComponents) {
  EXPECT_EQ(num_components(gen::path(10)), 1);
  EXPECT_EQ(num_components(gen::disjoint_cliques(5, 4)), 5);
  EXPECT_EQ(num_components(Graph::from_edges(3, {})), 3);
}

TEST(Components, LabelsAreConsistent) {
  const Graph g = Graph::from_edges(6, {{0, 1}, {2, 3}, {4, 5}});
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(Diameter, KnownValues) {
  EXPECT_EQ(diameter(gen::path(6)).value(), 5);
  EXPECT_EQ(diameter(gen::complete(8)).value(), 1);
  EXPECT_EQ(diameter(gen::cycle(8)).value(), 4);
  EXPECT_EQ(diameter(gen::star(10)).value(), 2);
}

TEST(Diameter, DisconnectedIsNullopt) {
  EXPECT_FALSE(diameter(gen::disjoint_cliques(2, 3)).has_value());
}

TEST(Diameter, TinyGraphs) {
  EXPECT_EQ(diameter(Graph::from_edges(0, {})).value(), 0);
  EXPECT_EQ(diameter(Graph::from_edges(1, {})).value(), 0);
}

TEST(DiameterAtMost2, AgreesWithExactDiameter) {
  const std::vector<Graph> graphs = {
      gen::complete(10), gen::star(12),          gen::path(4),
      gen::cycle(5),     gen::gnp(60, 0.5, 3),   gen::gnp(60, 0.05, 3),
      gen::grid(4, 4),   gen::complete_bipartite(4, 5),
  };
  for (const Graph& g : graphs) {
    const auto d = diameter(g);
    const bool expect = d.has_value() && *d <= 2;
    EXPECT_EQ(has_diameter_at_most_2(g), expect) << g.summary();
  }
}

TEST(DiameterAtMost2, DisconnectedFails) {
  EXPECT_FALSE(has_diameter_at_most_2(gen::disjoint_cliques(2, 4)));
}

TEST(TreeChecks, Classification) {
  EXPECT_TRUE(is_tree(gen::path(7)));
  EXPECT_FALSE(is_tree(gen::cycle(7)));
  EXPECT_FALSE(is_tree(gen::disjoint_cliques(2, 2)));  // forest, not tree
  EXPECT_TRUE(is_forest(gen::disjoint_cliques(2, 2)));
  EXPECT_FALSE(is_forest(gen::cycle(4)));
  EXPECT_TRUE(is_forest(Graph::from_edges(3, {})));
}

TEST(Degeneracy, KnownValues) {
  EXPECT_EQ(degeneracy(gen::path(10)).degeneracy, 1);
  EXPECT_EQ(degeneracy(gen::cycle(10)).degeneracy, 2);
  EXPECT_EQ(degeneracy(gen::complete(7)).degeneracy, 6);
  EXPECT_EQ(degeneracy(gen::star(20)).degeneracy, 1);
  EXPECT_EQ(degeneracy(gen::grid(5, 5)).degeneracy, 2);
}

TEST(Degeneracy, OrderCoversAllVertices) {
  const Graph g = gen::gnp(80, 0.1, 4);
  const auto result = degeneracy(g);
  EXPECT_EQ(result.order.size(), static_cast<std::size_t>(g.num_vertices()));
}

TEST(Degeneracy, OrderIsValidEliminationOrder) {
  // Along the removal order, each vertex has at most `degeneracy` neighbors
  // among the not-yet-removed vertices.
  const Graph g = gen::gnp(60, 0.15, 9);
  const auto result = degeneracy(g);
  std::vector<char> removed(static_cast<std::size_t>(g.num_vertices()), 0);
  for (Vertex u : result.order) {
    Vertex later = 0;
    for (Vertex v : g.neighbors(u))
      if (!removed[static_cast<std::size_t>(v)]) ++later;
    EXPECT_LE(later, result.degeneracy);
    removed[static_cast<std::size_t>(u)] = 1;
  }
}

TEST(Arboricity, TreeHasArboricityOne) {
  const auto bounds = arboricity_bounds(gen::random_tree(100, 5));
  EXPECT_EQ(bounds.lower, 1);
  EXPECT_EQ(bounds.upper, 1);
}

TEST(Arboricity, CliqueBounds) {
  const auto bounds = arboricity_bounds(gen::complete(9));
  // Arboricity of K_9 is ceil(9/2) = 5; bounds must bracket it.
  EXPECT_LE(bounds.lower, 5);
  EXPECT_GE(bounds.upper, 5);
}

TEST(CommonNeighbors, PairwiseCounts) {
  const Graph g = gen::complete(5);
  EXPECT_EQ(common_neighbors(g, 0, 1), 3);
  const Graph p = gen::path(4);
  EXPECT_EQ(common_neighbors(p, 0, 2), 1);
  EXPECT_EQ(common_neighbors(p, 0, 3), 0);
}

TEST(CommonNeighbors, MaxOverPairs) {
  EXPECT_EQ(max_common_neighbors(gen::complete(6)), 4);
  EXPECT_EQ(max_common_neighbors(gen::path(10)), 1);
  EXPECT_EQ(max_common_neighbors(gen::star(10)), 1);  // two leaves share hub
  EXPECT_EQ(max_common_neighbors(gen::complete_bipartite(3, 7)), 7);
}

TEST(Triangles, KnownCounts) {
  EXPECT_EQ(triangle_count(gen::complete(5)), 10);
  EXPECT_EQ(triangle_count(gen::cycle(5)), 0);
  EXPECT_EQ(triangle_count(gen::cycle(3)), 1);
  EXPECT_EQ(triangle_count(gen::complete_bipartite(4, 4)), 0);
}

TEST(InducedSubgraph, KeepsInternalEdges) {
  const Graph g = gen::complete(6);
  const auto sub = induced_subgraph(g, {1, 3, 5});
  EXPECT_EQ(sub.graph.num_vertices(), 3);
  EXPECT_EQ(sub.graph.num_edges(), 3);
  EXPECT_EQ(sub.to_original, (std::vector<Vertex>{1, 3, 5}));
}

TEST(InducedSubgraph, EmptyKeep) {
  const Graph g = gen::complete(4);
  EXPECT_EQ(induced_subgraph(g, {}).graph.num_vertices(), 0);
}

TEST(InducedSubgraph, RejectsBadInput) {
  const Graph g = gen::path(4);
  EXPECT_THROW(induced_subgraph(g, {0, 0}), std::invalid_argument);
  EXPECT_THROW(induced_subgraph(g, {7}), std::out_of_range);
}

}  // namespace
}  // namespace ssmis
