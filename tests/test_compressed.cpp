// Compressed adjacency codec battery.
//
// Three layers of defense are pinned here:
//   1. Round-trip properties: compress(decompress) == identity over every
//      graph family the generators produce (gnp/gnm/trees/regular, star
//      rows, degree-0 rows, empty graphs, n up to 10^5), with every
//      decode-aware query (neighbors-with-scratch, for_each_neighbor,
//      RowStream, degree, has_edge, edge_list) agreeing with the plain twin.
//   2. The streaming compress sink: CsrBuilder::from_source_compressed is
//      structurally identical to compressing the plain build, at any chunk
//      size, and rejects non-replayable sources like the plain builder.
//   3. Hostile input: a corruption matrix over `.ssg` v2 (bad flag, bad
//      superblock, truncation at every section, varint overrun, hostile
//      degree, index/offset mismatch, asymmetric payload, checksum) that
//      must throw std::runtime_error — never crash, never read out of
//      bounds (the CI ASan/UBSan jobs run this file) — plus a time-boxed
//      randomized corruption fuzz over v1 + v2 (SSMIS_FUZZ_SECONDS).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/compressed.hpp"
#include "graph/csr_builder.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/ssg.hpp"
#include "support/hash.hpp"

namespace ssmis {
namespace {

// Every decode-aware query on the compressed twin must agree with the
// plain-storage original.
void expect_equivalent(const Graph& plain, const Graph& comp) {
  ASSERT_TRUE(comp.is_compressed());
  ASSERT_FALSE(plain.is_compressed());
  EXPECT_EQ(comp.num_vertices(), plain.num_vertices());
  EXPECT_EQ(comp.num_edges(), plain.num_edges());
  EXPECT_EQ(comp.max_degree(), plain.max_degree());
  EXPECT_TRUE(comp == plain);
  EXPECT_TRUE(plain == comp);
  EXPECT_TRUE(Graph::decompress(comp) == plain);
  EXPECT_EQ(comp.edge_list(), plain.edge_list());
  EXPECT_EQ(comp.summary(), plain.summary());

  NeighborScratch scratch, stream_scratch;
  Graph::RowStream rows(comp);
  for (Vertex u = 0; u < plain.num_vertices(); ++u) {
    ASSERT_EQ(comp.degree(u), plain.degree(u)) << u;
    const auto expected = plain.neighbors(u);
    const auto via_scratch = comp.neighbors(u, scratch);
    ASSERT_TRUE(std::equal(expected.begin(), expected.end(), via_scratch.begin(),
                           via_scratch.end()))
        << u;
    std::vector<Vertex> via_visit;
    comp.for_each_neighbor(u, [&](Vertex v) { via_visit.push_back(v); });
    ASSERT_TRUE(std::equal(expected.begin(), expected.end(), via_visit.begin(),
                           via_visit.end()))
        << u;
    const auto via_stream = rows.next(stream_scratch);
    ASSERT_TRUE(std::equal(expected.begin(), expected.end(), via_stream.begin(),
                           via_stream.end()))
        << u;
  }
}

TEST(CompressedCodec, RoundTripAcrossFamilies) {
  const std::vector<Graph> graphs = {
      gen::gnp(100000, 8.0 / 100000.0, 5),   // the target regime, n = 10^5
      gen::gnp(300, 0.05, 7),                // small + denser
      gen::gnm(5000, 20000, 9),
      gen::random_tree(4000, 11),
      gen::random_regular(2000, 6, 13),
      gen::star(10000),                      // one huge row + 10^4 - 1 leaves
      gen::path(97),
      gen::complete(50),
      Graph::from_edges(64, {{0, 1}, {0, 63}}),  // mostly degree-0 rows
      Graph::from_edges(7, {}),                  // all rows degree 0
      Graph(),                                   // n = 0
  };
  for (const Graph& g : graphs) expect_equivalent(g, Graph::compress(g));
}

TEST(CompressedCodec, CompressAndDecompressAreIdempotentHandles) {
  const Graph g = gen::gnp(500, 0.02, 3);
  const Graph c = Graph::compress(g);
  // Re-compressing / re-decompressing matching storage shares, not copies.
  EXPECT_EQ(Graph::compress(c).compressed_payload().data(),
            c.compressed_payload().data());
  EXPECT_EQ(Graph::decompress(g).offsets().data(), g.offsets().data());
}

TEST(CompressedCodec, ForEachNeighborEarlyExitStops) {
  const Graph c = Graph::compress(gen::complete(20));
  int seen = 0;
  c.for_each_neighbor(0, [&](Vertex) { return ++seen < 5; });
  EXPECT_EQ(seen, 5);
  // Void visitors see everything.
  seen = 0;
  c.for_each_neighbor(0, [&](Vertex) { ++seen; });
  EXPECT_EQ(seen, 19);
}

TEST(CompressedCodec, RowStreamSkipKeepsAlignment) {
  const Graph g = gen::gnp(2000, 0.01, 17);
  const Graph c = Graph::compress(g);
  // Alternate skip/next in a fixed pattern; next() must still return the
  // row of the vertex the stream says it is on.
  NeighborScratch scratch;
  Graph::RowStream rows(c);
  std::mt19937 rng(42);
  while (rows.row() < c.num_vertices()) {
    const Vertex u = rows.row();
    if (rng() % 3 == 0) {
      rows.skip();
      continue;
    }
    const auto got = rows.next(scratch);
    const auto want = g.neighbors(u);
    ASSERT_TRUE(std::equal(want.begin(), want.end(), got.begin(), got.end())) << u;
  }
}

TEST(CompressedCodec, RawAccessorsThrowAcrossStorageModes) {
  const Graph g = gen::path(10);
  const Graph c = Graph::compress(g);
  NeighborScratch scratch;
  EXPECT_THROW(c.neighbors(3), std::logic_error);
  EXPECT_THROW(c.offsets(), std::logic_error);
  EXPECT_THROW(c.adjacency(), std::logic_error);
  EXPECT_THROW(g.compressed_index(), std::logic_error);
  EXPECT_THROW(g.compressed_payload(), std::logic_error);
  // The decode-aware paths work on both.
  EXPECT_EQ(c.neighbors(3, scratch).size(), 2u);
  EXPECT_EQ(g.neighbors(3, scratch).size(), 2u);
}

TEST(CompressedCodec, HasEdgeAgreesWithPlain) {
  const Graph g = gen::gnp(400, 0.03, 23);
  const Graph c = Graph::compress(g);
  for (const auto& [u, v] : g.edge_list()) {
    ASSERT_TRUE(c.has_edge(u, v));
    ASSERT_TRUE(c.has_edge(v, u));
  }
  std::mt19937 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const Vertex u = static_cast<Vertex>(rng() % 400);
    const Vertex v = static_cast<Vertex>(rng() % 400);
    ASSERT_EQ(c.has_edge(u, v), g.has_edge(u, v)) << u << "," << v;
  }
  EXPECT_FALSE(c.has_edge(-1, 3));
  EXPECT_FALSE(c.has_edge(3, 400));
  EXPECT_FALSE(c.has_edge(3, 3));
}

TEST(CompressedCodec, EncoderRejectsInvalidRows) {
  const Vertex bad_rows[][3] = {
      {3, 2, 1},  // not sorted
      {2, 2, 3},  // duplicate
      {0, 1, 2},  // self-loop (row 0)
      {1, 2, 9},  // out of range for n = 5
  };
  for (const auto& row : bad_rows) {
    CompressedAdjacencyEncoder enc(5);
    EXPECT_THROW(enc.add_row({row, 3}), std::invalid_argument);
  }
  {
    CompressedAdjacencyEncoder enc(1);
    enc.add_row({});
    EXPECT_THROW(enc.add_row({}), std::logic_error);  // more rows than n
  }
  {
    CompressedAdjacencyEncoder enc(2);
    enc.add_row({});
    EXPECT_THROW(std::move(enc).finish(), std::logic_error);  // a row short
  }
  EXPECT_THROW(CompressedAdjacencyEncoder(-1), std::invalid_argument);
}

// --- the streaming compress sink -------------------------------------------

TEST(CompressedCodec, SinkMatchesCompressOfPlainBuildAtAnyChunkSize) {
  const Vertex n = 3000;
  // A deliberately rude source: duplicates, both orientations, descending
  // endpoint order — everything the plain builder already tolerates.
  const auto source = [n](auto&& emit) {
    for (Vertex u = n - 1; u >= 1; --u) {
      emit(u, u - 1);
      if (u % 3 == 0) emit(u - 1, u);        // reversed duplicate
      if (u % 5 == 0) emit(u, u - 1);        // exact duplicate
      if (u >= 10 && u % 7 == 0) emit(u, u - 10);
      emit(u, u);                             // self-loop, dropped
    }
  };
  const Graph reference = Graph::compress(CsrBuilder::from_source(n, source));
  for (const std::int64_t chunk : {std::int64_t{64}, std::int64_t{1021},
                                   std::int64_t{1} << 20}) {
    const Graph c = CsrBuilder::from_source_compressed(n, source, chunk);
    ASSERT_TRUE(c == reference) << "chunk=" << chunk;
  }
  EXPECT_THROW(CsrBuilder::from_source_compressed(n, source, 0),
               std::invalid_argument);
  EXPECT_THROW(CsrBuilder::from_source_compressed(-1, source),
               std::invalid_argument);
}

TEST(CompressedCodec, SinkRejectsNonReplayableSources) {
  int pass = 0;
  const auto drifting = [&pass](auto&& emit) {
    // Emits a different edge set on every invocation.
    ++pass;
    for (Vertex u = 0; u + 1 < 100; ++u)
      if ((u + pass) % 2 == 0) emit(u, u + 1);
  };
  EXPECT_THROW(CsrBuilder::from_source_compressed(100, drifting, 64),
               std::logic_error);
  // Opaque endpoint: keeps GCC from constant-folding the doomed emit into a
  // (never-executed) out-of-bounds degrees increment and warning about it.
  const Vertex hostile_endpoint = []() -> Vertex {
    volatile Vertex v = 100;
    return v;
  }();
  const auto out_of_range = [hostile_endpoint](auto&& emit) {
    emit(0, hostile_endpoint);
  };
  EXPECT_THROW(CsrBuilder::from_source_compressed(100, out_of_range),
               std::invalid_argument);
}

TEST(CompressedCodec, GnpCompressedMatchesGnp) {
  for (const Vertex n : {0, 1, 1000, 50000}) {
    const double p = n > 1 ? 6.0 / static_cast<double>(n) : 0.5;
    ASSERT_TRUE(gen::gnp_compressed(n, p, 29) ==
                Graph::compress(gen::gnp(n, p, 29)))
        << n;
  }
  // The closed-form edges of the p = 0 / p = 1 shortcuts.
  EXPECT_TRUE(gen::gnp_compressed(40, 0.0, 1) == gen::gnp(40, 0.0, 1));
  EXPECT_TRUE(gen::gnp_compressed(40, 1.0, 1) == gen::complete(40));
}

TEST(CompressedCodec, RandomizedRoundTripProperty) {
  std::mt19937_64 rng(20260731);
  for (int iter = 0; iter < 40; ++iter) {
    const std::uint64_t seed = rng();
    const int family = static_cast<int>(rng() % 4);
    const Vertex n = static_cast<Vertex>(2 + rng() % (iter < 36 ? 800 : 100000));
    Graph g;
    switch (family) {
      case 0: g = gen::gnp(n, std::min(1.0, 8.0 / n), seed); break;
      case 1: {
        const std::int64_t max_m = static_cast<std::int64_t>(n) * (n - 1) / 2;
        g = gen::gnm(n, std::min<std::int64_t>(3 * n, max_m), seed);
        break;
      }
      case 2: g = gen::random_tree(n, seed); break;
      default: g = gen::random_regular(n - (n % 2), 4, seed); break;
    }
    const Graph c = Graph::compress(g);
    ASSERT_TRUE(Graph::decompress(c) == g) << "family=" << family << " n=" << n;
    NeighborScratch scratch;
    for (int probes = 0; probes < 32; ++probes) {
      const Vertex u = static_cast<Vertex>(rng() % g.num_vertices());
      const auto want = g.neighbors(u);
      const auto got = c.neighbors(u, scratch);
      ASSERT_TRUE(std::equal(want.begin(), want.end(), got.begin(), got.end()))
          << "family=" << family << " n=" << n << " u=" << u;
    }
  }
}

// --- `.ssg` v2 corruption matrix -------------------------------------------

class SsgV2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ssmis_ssg2_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  static std::vector<char> read_all(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  }

  static void write_all(const std::string& p, const std::vector<char>& bytes) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // Recomputes the v2 header checksum over (possibly tampered) bytes,
  // simulating a self-consistent external writer — structural validation,
  // not the checksum, must catch these.
  static void refresh_v2_checksum(std::vector<char>& b) {
    std::int64_t n = 0, adj_len = 0;
    std::uint64_t flags = 0, payload_bytes = 0, superblock = 0;
    std::memcpy(&n, b.data() + 16, 8);
    std::memcpy(&adj_len, b.data() + 24, 8);
    std::memcpy(&flags, b.data() + 40, 8);
    std::memcpy(&payload_bytes, b.data() + 48, 8);
    std::memcpy(&superblock, b.data() + 56, 8);
    const std::size_t entries = cadj::index_entries(n);
    std::uint64_t h = kFnv1aBasis;
    h = fnv1a(h, &n, 8);
    h = fnv1a(h, &adj_len, 8);
    h = fnv1a(h, &flags, 8);
    h = fnv1a(h, &payload_bytes, 8);
    h = fnv1a(h, &superblock, 8);
    h = fnv1a(h, b.data() + 64, entries * 8);
    h = fnv1a(h, b.data() + 64 + entries * 8,
              static_cast<std::size_t>(payload_bytes));
    std::memcpy(b.data() + 32, &h, 8);
  }

  // Hand-builds a v2 file from raw codec arrays (for payloads the encoder
  // refuses to produce), with a self-consistent checksum.
  std::string craft_v2(const std::string& name, std::int64_t n,
                       std::int64_t adj_len,
                       const std::vector<std::uint64_t>& index,
                       const std::vector<std::uint8_t>& payload) {
    EXPECT_EQ(index.size(), cadj::index_entries(n))
        << "test bug: wrong index entry count for n=" << n;
    std::vector<char> b(64 + index.size() * 8 + payload.size(), 0);
    std::memcpy(b.data(), "SSGRAPH1", 8);
    const std::uint32_t version = io::kSsgVersionCompressed;
    const std::uint32_t endian = io::kSsgEndianTag;
    const std::uint64_t flags = io::kSsgFlagCompressed;
    const std::uint64_t payload_bytes = payload.size();
    const std::uint64_t superblock = cadj::kSuperblock;
    std::memcpy(b.data() + 8, &version, 4);
    std::memcpy(b.data() + 12, &endian, 4);
    std::memcpy(b.data() + 16, &n, 8);
    std::memcpy(b.data() + 24, &adj_len, 8);
    std::memcpy(b.data() + 40, &flags, 8);
    std::memcpy(b.data() + 48, &payload_bytes, 8);
    std::memcpy(b.data() + 56, &superblock, 8);
    std::memcpy(b.data() + 64, index.data(), index.size() * 8);
    std::memcpy(b.data() + 64 + index.size() * 8, payload.data(), payload.size());
    refresh_v2_checksum(b);
    const std::string p = path(name);
    write_all(p, b);
    return p;
  }

  // Saves a reference compressed graph and returns (path, plain twin).
  std::string save_reference(const std::string& name, Vertex n = 600,
                             double p = 0.015, std::uint64_t seed = 31) {
    plain_ = gen::gnp(n, p, seed);
    const std::string f = path(name);
    io::save_ssg(f, Graph::compress(plain_));
    return f;
  }

  // A corrupted file must throw under every loader x validation combination
  // whose always-on checks cover the tampering; `trusted_too` says the
  // corruption is in the header/index layer that even kTrusted validates.
  void expect_rejected(const std::string& p, bool trusted_too) {
    EXPECT_THROW(io::load_ssg(p), std::runtime_error) << p;
    EXPECT_THROW(io::mmap_ssg(p), std::runtime_error) << p;
    if (trusted_too) {
      EXPECT_THROW(io::load_ssg(p, io::SsgValidation::kTrusted),
                   std::runtime_error)
          << p;
      EXPECT_THROW(io::mmap_ssg(p, io::SsgValidation::kTrusted),
                   std::runtime_error)
          << p;
    }
  }

  std::filesystem::path dir_;
  Graph plain_;
};

TEST_F(SsgV2Test, SaveLoadMmapRoundTrip) {
  const std::string p = save_reference("a.ssg");
  const Graph c = Graph::compress(plain_);
  EXPECT_EQ(static_cast<std::int64_t>(std::filesystem::file_size(p)),
            io::ssg_file_bytes(c));
  const Graph owned = io::load_ssg(p);
  EXPECT_TRUE(owned.is_compressed());
  EXPECT_FALSE(owned.is_mapped());
  EXPECT_TRUE(owned == plain_);
  const Graph mapped = io::mmap_ssg(p);
  EXPECT_TRUE(mapped.is_compressed());
  EXPECT_TRUE(mapped.is_mapped());
  EXPECT_EQ(mapped.storage_mode(), "compressed+mmap");
  EXPECT_TRUE(mapped == plain_);
  // Trusted loads of an intact file are identical.
  EXPECT_TRUE(io::load_ssg(p, io::SsgValidation::kTrusted) == plain_);
  EXPECT_TRUE(io::mmap_ssg(p, io::SsgValidation::kTrusted) == plain_);
  // Mapped copies keep the mapping alive.
  Graph copy;
  {
    const Graph inner = io::mmap_ssg(p);
    copy = inner;
  }
  EXPECT_TRUE(copy == plain_);
}

TEST_F(SsgV2Test, LoadGraphFileDispatchesV2) {
  const std::string p = save_reference("d.ssg");
  EXPECT_TRUE(io::load_graph_file(p, /*prefer_mmap=*/true).is_mapped());
  EXPECT_TRUE(io::load_graph_file(p, true).is_compressed());
  EXPECT_FALSE(io::load_graph_file(p, /*prefer_mmap=*/false).is_mapped());
  EXPECT_TRUE(io::load_graph_file(p, false) == plain_);
}

TEST_F(SsgV2Test, EmptyAndEdgelessRoundTrip) {
  for (const Graph& g : {Graph(), Graph::from_edges(9, {})}) {
    const std::string p = path("e.ssg");
    io::save_ssg(p, Graph::compress(g));
    EXPECT_TRUE(io::load_ssg(p) == g);
    EXPECT_TRUE(io::mmap_ssg(p) == g);
  }
}

TEST_F(SsgV2Test, BadFlagThrowsEvenWhenChecksummed) {
  for (const std::uint64_t bad_flags : {std::uint64_t{0}, std::uint64_t{3},
                                        std::uint64_t{1} << 40}) {
    const std::string p = save_reference("f.ssg");
    auto bytes = read_all(p);
    std::memcpy(bytes.data() + 40, &bad_flags, 8);
    refresh_v2_checksum(bytes);
    write_all(p, bytes);
    expect_rejected(p, /*trusted_too=*/true);
  }
}

TEST_F(SsgV2Test, UnsupportedSuperblockThrows) {
  const std::string p = save_reference("s.ssg");
  auto bytes = read_all(p);
  const std::uint64_t other = 32;  // a codec-parameter change, not corruption
  std::memcpy(bytes.data() + 56, &other, 8);
  refresh_v2_checksum(bytes);
  write_all(p, bytes);
  expect_rejected(p, /*trusted_too=*/true);
}

TEST_F(SsgV2Test, UnsupportedVersionThrows) {
  const std::string p = save_reference("v.ssg");
  auto bytes = read_all(p);
  bytes[8] = 3;
  write_all(p, bytes);
  expect_rejected(p, /*trusted_too=*/true);
}

TEST_F(SsgV2Test, TruncationAtEverySectionThrows) {
  const std::string p = save_reference("t.ssg");
  const auto bytes = read_all(p);
  const std::size_t index_end =
      64 + cadj::index_entries(plain_.num_vertices()) * 8;
  // Mid-header, mid-index, just past the index (superblock boundary), deep
  // inside the payload, and one byte short.
  for (const std::size_t keep :
       {std::size_t{17}, std::size_t{80}, index_end, index_end + 40,
        bytes.size() - 1}) {
    ASSERT_LT(keep, bytes.size());
    write_all(p, std::vector<char>(bytes.begin(), bytes.begin() + keep));
    expect_rejected(p, /*trusted_too=*/true);
  }
}

TEST_F(SsgV2Test, OversizedFileThrows) {
  const std::string p = save_reference("o.ssg");
  auto bytes = read_all(p);
  bytes.insert(bytes.end(), {char(1), char(2), char(3)});
  write_all(p, bytes);
  expect_rejected(p, /*trusted_too=*/true);
}

TEST_F(SsgV2Test, ChecksumMismatchThrows) {
  {
    const std::string p = save_reference("c.ssg");
    auto bytes = read_all(p);
    bytes[bytes.size() - 2] ^= 0x10;  // deep payload flip, checksum stale
    write_all(p, bytes);
    EXPECT_THROW(io::load_ssg(p), std::runtime_error);
    EXPECT_THROW(io::mmap_ssg(p), std::runtime_error);
  }
  {
    const std::string p = save_reference("c2.ssg");
    auto bytes = read_all(p);
    bytes[32] ^= 0x01;  // the checksum field itself
    write_all(p, bytes);
    EXPECT_THROW(io::load_ssg(p), std::runtime_error);
    EXPECT_THROW(io::mmap_ssg(p), std::runtime_error);
  }
}

TEST_F(SsgV2Test, HostilePayloadBytesHeaderThrows) {
  const std::string p = save_reference("h.ssg");
  auto bytes = read_all(p);
  std::uint64_t payload_bytes;
  std::memcpy(&payload_bytes, bytes.data() + 48, 8);
  payload_bytes += (std::uint64_t{1} << 62);
  std::memcpy(bytes.data() + 48, &payload_bytes, 8);
  write_all(p, bytes);
  expect_rejected(p, /*trusted_too=*/true);
}

TEST_F(SsgV2Test, IndexOffsetMismatchThrows) {
  // Interior index entry nudged off its true row start: the full decode
  // cross-checks every superblock boundary.
  const std::string p = save_reference("i.ssg", 600, 0.03, 7);
  auto bytes = read_all(p);
  std::uint64_t entry;
  std::memcpy(&entry, bytes.data() + 64 + 8, 8);  // superblock 1
  entry += 1;
  std::memcpy(bytes.data() + 64 + 8, &entry, 8);
  refresh_v2_checksum(bytes);
  write_all(p, bytes);
  EXPECT_THROW(io::load_ssg(p), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(p), std::runtime_error);

  // An entry past the payload end violates the always-on index check.
  auto bytes2 = read_all(save_reference("i2.ssg"));
  const std::uint64_t huge = std::uint64_t{1} << 40;
  std::memcpy(bytes2.data() + 64 + 8, &huge, 8);
  refresh_v2_checksum(bytes2);
  const std::string p2 = path("i2.ssg");
  write_all(p2, bytes2);
  expect_rejected(p2, /*trusted_too=*/true);

  // Last entry != payload size: always-on too.
  auto bytes3 = read_all(save_reference("i3.ssg"));
  const std::size_t last =
      64 + (cadj::index_entries(plain_.num_vertices()) - 1) * 8;
  std::uint64_t sentinel;
  std::memcpy(&sentinel, bytes3.data() + last, 8);
  sentinel -= 1;
  std::memcpy(bytes3.data() + last, &sentinel, 8);
  refresh_v2_checksum(bytes3);
  const std::string p3 = path("i3.ssg");
  write_all(p3, bytes3);
  expect_rejected(p3, /*trusted_too=*/true);
}

TEST_F(SsgV2Test, VarintOverrunThrows) {
  // Row 0 of a 2-vertex graph: degree varint with 6 continuation bytes.
  const std::vector<std::uint8_t> overlong = {0x81, 0x80, 0x80, 0x80, 0x80, 0x01};
  const std::string p =
      craft_v2("vo.ssg", 2, 0, {0, static_cast<std::uint64_t>(overlong.size())},
               overlong);
  EXPECT_THROW(io::load_ssg(p), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(p), std::runtime_error);

  // A varint cut off by the end of the payload ("truncated superblock"):
  // degree says 2, one continuation byte dangles.
  const std::vector<std::uint8_t> dangling = {0x02, 0x01, 0x80};
  const std::string p2 =
      craft_v2("vd.ssg", 4, 2, {0, static_cast<std::uint64_t>(dangling.size())},
               dangling);
  EXPECT_THROW(io::load_ssg(p2), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(p2), std::runtime_error);

  // Value outside the vertex range (5 bytes, > 2^31).
  const std::vector<std::uint8_t> huge_value = {0x01, 0xff, 0xff, 0xff, 0xff, 0x7f};
  const std::string p3 = craft_v2(
      "vh.ssg", 2, 1, {0, static_cast<std::uint64_t>(huge_value.size())},
      huge_value);
  EXPECT_THROW(io::load_ssg(p3), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(p3), std::runtime_error);
}

TEST_F(SsgV2Test, StructurallyInvalidButChecksummedPayloadThrows) {
  // Self-loop: row 0 = {0}.
  const std::string self_loop = craft_v2("sl.ssg", 2, 1, {0, 2}, {0x01, 0x00});
  EXPECT_THROW(io::load_ssg(self_loop), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(self_loop), std::runtime_error);

  // Duplicate neighbor: row 0 = {1, 1} (gap 0).
  const std::string dup =
      craft_v2("dup.ssg", 3, 2, {0, 3}, {0x02, 0x01, 0x00});
  EXPECT_THROW(io::load_ssg(dup), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(dup), std::runtime_error);

  // Neighbor id >= n: row 0 = {5} with n = 3.
  const std::string range =
      craft_v2("rg.ssg", 3, 1, {0, 2}, {0x01, 0x05});
  EXPECT_THROW(io::load_ssg(range), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(range), std::runtime_error);

  // Asymmetric rows: 0 -> {1} but 1 -> {} (valid per-row, wrong globally).
  const std::string asym =
      craft_v2("as.ssg", 2, 1, {0, 3}, {0x01, 0x01, 0x00});
  EXPECT_THROW(io::load_ssg(asym), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(asym), std::runtime_error);

  // Degree exceeding the remaining payload ("row shorter than degree").
  const std::string hungry = craft_v2("hg.ssg", 100, 0, {0, 1, 1}, {0x63});
  EXPECT_THROW(io::load_ssg(hungry), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(hungry), std::runtime_error);

  // Endpoint total disagreeing with the header's adj_len.
  const std::string miscount =
      craft_v2("mc.ssg", 2, 4, {0, 4}, {0x01, 0x01, 0x01, 0x00});
  EXPECT_THROW(io::load_ssg(miscount), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(miscount), std::runtime_error);

  // Non-canonical (zero-padded) varint: id 1 as 0x81 0x00. Structurally
  // "the same graph", but the codec is canonical — payload equality stands
  // in for structural equality — so a padding writer must be rejected.
  const std::string padded = craft_v2("nc.ssg", 2, 2, {0, 5},
                                      {0x01, 0x81, 0x00, 0x01, 0x00});
  EXPECT_THROW(io::load_ssg(padded), std::runtime_error);
  EXPECT_THROW(io::mmap_ssg(padded), std::runtime_error);
}

TEST_F(SsgV2Test, TrustedDecodeOfGarbageThrowsInsteadOfReadingOutOfBounds) {
  // kTrusted skips the up-front audit, so these garbage payloads LOAD —
  // but every row decode is still bounds- and range-checked, so touching
  // the rows throws std::runtime_error instead of scanning out of bounds
  // (ASan/UBSan verify the "no OOB" half of that claim in CI).
  const std::vector<std::pair<const char*, std::vector<std::uint8_t>>> cases = {
      {"dangling varint", {0x02, 0x01, 0x80}},
      {"hostile degree", {0x63}},
      {"value overflow", {0x01, 0xff, 0xff, 0xff, 0xff, 0x7f}},
  };
  int idx = 0;
  for (const auto& [what, payload] : cases) {
    const std::string p = craft_v2("tg" + std::to_string(idx++) + ".ssg", 100,
                                   0, {0, 0, static_cast<std::uint64_t>(payload.size())},
                                   payload);
    const Graph g = io::mmap_ssg(p, io::SsgValidation::kTrusted);
    NeighborScratch scratch;
    bool threw = false;
    try {
      for (Vertex u = 0; u < g.num_vertices(); ++u) g.neighbors(u, scratch);
    } catch (const std::runtime_error&) {
      threw = true;
    }
    EXPECT_TRUE(threw) << what;
  }
}

// --- randomized corruption fuzz (v1 + v2) ----------------------------------

// Time-boxed: SSMIS_FUZZ_SECONDS (CI sets 30 under ASan/UBSan; the default
// keeps local ctest fast). Every mutation of a valid file must either load
// cleanly or throw std::runtime_error; whatever loads must survive a full
// decode sweep without leaving the file's bounds.
TEST_F(SsgV2Test, RandomizedCorruptionFuzzNeverCrashes) {
  double budget_seconds = 2.0;
  if (const char* env = std::getenv("SSMIS_FUZZ_SECONDS"))
    budget_seconds = std::max(0.1, std::atof(env));

  const Graph plain = gen::gnp(400, 0.02, 77);
  const std::string v1 = path("fuzz1.ssg");
  const std::string v2 = path("fuzz2.ssg");
  io::save_ssg(v1, plain);
  io::save_ssg(v2, Graph::compress(plain));
  const std::vector<std::vector<char>> originals = {read_all(v1), read_all(v2)};

  std::mt19937_64 rng(0x5567u);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(budget_seconds);
  const std::string target = path("fuzz_mut.ssg");
  std::int64_t iterations = 0, survived = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    ++iterations;
    std::vector<char> bytes = originals[rng() % originals.size()];
    switch (rng() % 4) {
      case 0:  // flip 1..8 random bytes
        for (std::uint64_t i = 0, k = 1 + rng() % 8; i < k; ++i)
          bytes[rng() % bytes.size()] ^= static_cast<char>(1 + rng() % 255);
        break;
      case 1:  // truncate at a random point
        bytes.resize(rng() % bytes.size());
        break;
      case 2:  // append random garbage
        for (std::uint64_t i = 0, k = 1 + rng() % 64; i < k; ++i)
          bytes.push_back(static_cast<char>(rng()));
        break;
      default: {  // zero a random range
        if (!bytes.empty()) {
          const std::size_t at = rng() % bytes.size();
          const std::size_t len = std::min(bytes.size() - at,
                                           static_cast<std::size_t>(1 + rng() % 128));
          std::memset(bytes.data() + at, 0, len);
        }
        break;
      }
    }
    write_all(target, bytes);
    for (const auto validation :
         {io::SsgValidation::kFull, io::SsgValidation::kTrusted}) {
      for (const bool use_mmap : {false, true}) {
        try {
          const Graph g = use_mmap ? io::mmap_ssg(target, validation)
                                   : io::load_ssg(target, validation);
          ++survived;
          // Whatever loaded must be fully traversable or throw cleanly.
          try {
            NeighborScratch scratch;
            Graph::RowStream rows(g);
            std::int64_t endpoints = 0;
            for (Vertex u = 0; u < g.num_vertices(); ++u)
              endpoints += static_cast<std::int64_t>(rows.next(scratch).size());
            (void)endpoints;
          } catch (const std::runtime_error&) {
            // A trusted load of a corrupt payload may fail at decode time;
            // that is the contract (loud, in-bounds).
          }
        } catch (const std::runtime_error&) {
          // Rejected loudly: the expected outcome for most mutations.
        }
      }
    }
  }
  // The loop must have exercised real work, and full validation must have
  // let SOME loads through only if the mutation missed every checked byte
  // (rare) — mostly this asserts "no crash over many iterations".
  EXPECT_GT(iterations, 10) << "fuzz budget too small to mean anything";
  RecordProperty("fuzz_iterations", std::to_string(iterations));
  RecordProperty("fuzz_loads_survived", std::to_string(survived));
}

}  // namespace
}  // namespace ssmis
