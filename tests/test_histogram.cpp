#include <gtest/gtest.h>

#include "stats/histogram.hpp"

namespace ssmis {
namespace {

TEST(Histogram, BinsPartitionRange) {
  const std::vector<double> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto bins = build_histogram(v, 5);
  ASSERT_EQ(bins.size(), 5u);
  int total = 0;
  for (const auto& bin : bins) total += bin.count;
  EXPECT_EQ(total, 10);
  EXPECT_DOUBLE_EQ(bins.front().low, 0.0);
  EXPECT_DOUBLE_EQ(bins.back().high, 9.0);
  for (std::size_t i = 1; i < bins.size(); ++i)
    EXPECT_DOUBLE_EQ(bins[i].low, bins[i - 1].high);
}

TEST(Histogram, AllEqualValues) {
  const auto bins = build_histogram({3.0, 3.0, 3.0}, 4);
  int total = 0;
  for (const auto& bin : bins) total += bin.count;
  EXPECT_EQ(total, 3);
}

TEST(Histogram, EmptyInput) {
  EXPECT_TRUE(build_histogram({}, 3).empty());
}

TEST(Histogram, InvalidBinsThrows) {
  EXPECT_THROW(build_histogram({1.0}, 0), std::invalid_argument);
}

TEST(Histogram, MaxValueLandsInLastBin) {
  const auto bins = build_histogram({0.0, 10.0}, 2);
  EXPECT_EQ(bins.front().count, 1);
  EXPECT_EQ(bins.back().count, 1);
}

TEST(Histogram, RenderShowsBars) {
  const auto bins = build_histogram({1, 1, 1, 1, 5}, 2);
  const std::string out = render_histogram(bins, 20);
  EXPECT_NE(out.find("####"), std::string::npos);
  EXPECT_NE(out.find('\n'), std::string::npos);
}

TEST(Histogram, RenderEmptyIsEmpty) {
  EXPECT_EQ(render_histogram({}, 10), "");
}

TEST(Sparkline, UsesFullGlyphRange) {
  const std::string s = sparkline({0, 1, 2, 3, 4, 5, 6, 7});
  ASSERT_EQ(s.size(), 8u);
  EXPECT_EQ(s.front(), '.');
  EXPECT_EQ(s.back(), '%');
}

TEST(Sparkline, ConstantSeriesIsFlat) {
  const std::string s = sparkline({2, 2, 2});
  EXPECT_EQ(s, "...");
}

TEST(Sparkline, EmptySeries) {
  EXPECT_EQ(sparkline({}), "");
}

TEST(Downsample, PreservesPeaks) {
  std::vector<double> series(100, 1.0);
  series[57] = 50.0;
  const auto down = downsample_max(series, 10);
  ASSERT_EQ(down.size(), 10u);
  bool saw_peak = false;
  for (double v : down)
    if (v == 50.0) saw_peak = true;
  EXPECT_TRUE(saw_peak);
}

TEST(Downsample, ShortSeriesPassedThrough) {
  const std::vector<double> series = {1, 2, 3};
  EXPECT_EQ(downsample_max(series, 10), series);
}

TEST(Downsample, ZeroPointsThrows) {
  EXPECT_THROW(downsample_max({1.0}, 0), std::invalid_argument);
}

TEST(Downsample, ExactChunking) {
  const std::vector<double> series = {1, 9, 2, 8, 3, 7};
  const auto down = downsample_max(series, 3);
  EXPECT_EQ(down, (std::vector<double>{9, 8, 7}));
}

}  // namespace
}  // namespace ssmis
