#include <gtest/gtest.h>

#include "core/init.hpp"
#include "core/runner.hpp"
#include "core/three_color.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "reference_processes.hpp"

namespace ssmis {
namespace {

std::vector<ColorG> colors_of(const char* pattern, Vertex n) {
  // 'b' = black, 'w' = white, 'g' = gray.
  std::vector<ColorG> out(static_cast<std::size_t>(n));
  for (Vertex u = 0; u < n; ++u) {
    switch (pattern[u]) {
      case 'b': out[static_cast<std::size_t>(u)] = ColorG::kBlack; break;
      case 'g': out[static_cast<std::size_t>(u)] = ColorG::kGray; break;
      default: out[static_cast<std::size_t>(u)] = ColorG::kWhite; break;
    }
  }
  return out;
}

TEST(ThreeColor, ConstructorValidation) {
  const Graph g = gen::path(3);
  EXPECT_THROW(ThreeColorMIS(g, colors_of("ww", 2),
                             std::make_unique<AlwaysOnSwitch>(), CoinOracle(1)),
               std::invalid_argument);
  EXPECT_THROW(ThreeColorMIS(g, colors_of("www", 3), nullptr, CoinOracle(1)),
               std::invalid_argument);
  auto stale = std::make_unique<AlwaysOnSwitch>();
  stale->step();
  EXPECT_THROW(ThreeColorMIS(g, colors_of("www", 3), std::move(stale), CoinOracle(1)),
               std::invalid_argument);
}

TEST(ThreeColor, EighteenStatesWithRandomizedSwitch) {
  const Graph g = gen::path(4);
  const CoinOracle coins(1);
  auto p = ThreeColorMIS::with_randomized_switch(g, colors_of("wwww", 4), coins);
  EXPECT_EQ(p.num_states(), 18);  // Theorem 3's state count
}

TEST(ThreeColor, GrayTurnsWhiteWhenSwitchOn) {
  const Graph g = gen::path(2);
  ThreeColorMIS p(g, colors_of("gb", 2), std::make_unique<AlwaysOnSwitch>(),
                  CoinOracle(3));
  p.step();
  EXPECT_EQ(p.color(0), ColorG::kWhite);
}

TEST(ThreeColor, GrayStaysGrayWhenSwitchOff) {
  const Graph g = gen::path(2);
  ThreeColorMIS p(g, colors_of("gb", 2), std::make_unique<NeverOnSwitch>(),
                  CoinOracle(3));
  for (int i = 0; i < 20; ++i) {
    p.step();
    ASSERT_EQ(p.color(0), ColorG::kGray);
  }
}

TEST(ThreeColor, BlackConflictResolvesToBlackOrGray) {
  // Two adjacent blacks: each resamples {black, gray}, never white directly.
  const Graph g = gen::path(2);
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    ThreeColorMIS p(g, colors_of("bb", 2), std::make_unique<NeverOnSwitch>(),
                    CoinOracle(seed));
    p.step();
    for (Vertex u = 0; u < 2; ++u)
      EXPECT_NE(p.color(u), ColorG::kWhite) << "seed " << seed;
  }
}

TEST(ThreeColor, GrayIsTreatedAsNonBlackByNeighbors) {
  // 0 gray, 1 white: vertex 1 has no *black* neighbor, so it is active.
  const Graph g = gen::path(2);
  const ThreeColorMIS p(g, colors_of("gw", 2), std::make_unique<NeverOnSwitch>(),
                        CoinOracle(1));
  EXPECT_TRUE(p.active(1));
  EXPECT_FALSE(p.active(0));  // gray never active
}

TEST(ThreeColor, StabilizationRequiresGrayCoverage) {
  // Black set {1} on path 0-1-2 covers gray vertex 0: stabilized. But a
  // gray vertex with no black neighbor must block stabilization.
  const Graph g = gen::path(3);
  const ThreeColorMIS covered(g, colors_of("gbw", 3),
                              std::make_unique<NeverOnSwitch>(), CoinOracle(1));
  EXPECT_TRUE(covered.stabilized());
  const Graph g2 = gen::path(4);
  const ThreeColorMIS uncovered(g2, colors_of("bwwg", 4),
                                std::make_unique<NeverOnSwitch>(), CoinOracle(1));
  EXPECT_FALSE(uncovered.stabilized());
}

TEST(ThreeColor, MatchesReferenceWithPeriodicSwitch) {
  // Differential test against the Definition 28 transcription, driven by a
  // deterministic switch so the color dynamics are isolated.
  const Graph g = gen::gnp(40, 0.15, 71);
  const CoinOracle coins(41);
  std::vector<ColorG> ref = make_init_g(g, InitPattern::kUniformRandom, coins);
  ThreeColorMIS p(g, ref, std::make_unique<PeriodicSwitch>(5, 2), coins);
  PeriodicSwitch shadow(5, 2);
  for (std::int64_t t = 1; t <= 200; ++t) {
    std::vector<char> sigma(static_cast<std::size_t>(g.num_vertices()));
    for (Vertex u = 0; u < g.num_vertices(); ++u) sigma[static_cast<std::size_t>(u)] = shadow.on(u);
    p.step();
    shadow.step();
    ref = testing::reference_step_g(g, ref, sigma, coins, t);
    ASSERT_EQ(p.colors(), ref) << "diverged at round " << t;
  }
}

TEST(ThreeColor, MatchesReferenceWithRandomizedSwitch) {
  // Full-system differential test: colors AND clock levels must both track
  // the naive transcription.
  const Graph g = gen::gnp(30, 0.2, 73);
  const CoinOracle coins(43);
  std::vector<ColorG> ref = make_init_g(g, InitPattern::kUniformRandom, coins);
  auto p = ThreeColorMIS::with_randomized_switch(g, ref, coins);
  const auto* sw = dynamic_cast<const RandomizedLogSwitch*>(&p.switch_process());
  ASSERT_NE(sw, nullptr);
  std::vector<int> ref_levels = sw->clock().levels();
  for (std::int64_t t = 1; t <= 150; ++t) {
    std::vector<char> sigma(static_cast<std::size_t>(g.num_vertices()));
    for (Vertex u = 0; u < g.num_vertices(); ++u)
      sigma[static_cast<std::size_t>(u)] = ref_levels[static_cast<std::size_t>(u)] <= 2;
    p.step();
    ref = testing::reference_step_g(g, ref, sigma, coins, t);
    ref_levels = testing::reference_clock_step(g, ref_levels, coins, t, 3);
    ASSERT_EQ(p.colors(), ref) << "colors diverged at round " << t;
    ASSERT_EQ(sw->clock().levels(), ref_levels) << "levels diverged at round " << t;
  }
}

TEST(ThreeColor, StabilizesOnCliqueFromAllPatterns) {
  const Graph g = gen::complete(32);
  for (InitPattern pattern : all_init_patterns()) {
    const CoinOracle coins(83);
    auto p = ThreeColorMIS::with_randomized_switch(g, make_init_g(g, pattern, coins), coins);
    const RunResult r = run_until_stabilized(p, 100000);
    ASSERT_TRUE(r.stabilized) << to_string(pattern);
    EXPECT_TRUE(is_mis(g, p.black_set())) << to_string(pattern);
  }
}

TEST(ThreeColor, StabilizesOnGnpDense) {
  const Graph g = gen::gnp(100, 0.4, 89);
  const CoinOracle coins(97);
  auto p = ThreeColorMIS::with_randomized_switch(
      g, make_init_g(g, InitPattern::kUniformRandom, coins), coins);
  const RunResult r = run_until_stabilized(p, 200000);
  ASSERT_TRUE(r.stabilized);
  EXPECT_TRUE(is_mis(g, p.black_set()));
}

TEST(ThreeColor, BlackSetFrozenAfterStabilization) {
  const Graph g = gen::gnp(40, 0.2, 101);
  const CoinOracle coins(103);
  auto p = ThreeColorMIS::with_randomized_switch(
      g, make_init_g(g, InitPattern::kUniformRandom, coins), coins);
  const RunResult r = run_until_stabilized(p, 100000);
  ASSERT_TRUE(r.stabilized);
  const auto mis = p.black_set();
  for (int i = 0; i < 200; ++i) {
    p.step();
    ASSERT_EQ(p.black_set(), mis);
    ASSERT_TRUE(p.stabilized());
  }
}

TEST(ThreeColor, Lemma29GrayImpliesRecentlyActiveBlack) {
  // Lemma 29's mechanism: a vertex becomes gray only from active black. We
  // verify the one-step version: every newly gray vertex was black with a
  // black neighbor in the previous round.
  const Graph g = gen::gnp(40, 0.2, 107);
  const CoinOracle coins(109);
  auto p = ThreeColorMIS::with_randomized_switch(
      g, make_init_g(g, InitPattern::kUniformRandom, coins), coins);
  for (int i = 0; i < 150; ++i) {
    std::vector<ColorG> before = p.colors();
    std::vector<bool> was_active_black(40);
    for (Vertex u = 0; u < 40; ++u)
      was_active_black[static_cast<std::size_t>(u)] =
          before[static_cast<std::size_t>(u)] == ColorG::kBlack && p.active(u);
    p.step();
    for (Vertex u = 0; u < 40; ++u) {
      const bool newly_gray = p.color(u) == ColorG::kGray &&
                              before[static_cast<std::size_t>(u)] != ColorG::kGray;
      if (newly_gray) {
        ASSERT_TRUE(was_active_black[static_cast<std::size_t>(u)]) << "vertex " << u;
      }
    }
  }
}

TEST(ThreeColor, GrayCountTracked) {
  const Graph g = gen::path(5);
  ThreeColorMIS p(g, colors_of("ggbww", 5), std::make_unique<NeverOnSwitch>(),
                  CoinOracle(1));
  EXPECT_EQ(p.num_gray(), 2);
  p.force_color(0, ColorG::kWhite);
  EXPECT_EQ(p.num_gray(), 1);
}

TEST(ThreeColor, WithNeverOnSwitchGrayAbsorbs) {
  // With the switch permanently off, grays are permanent; the process still
  // stabilizes as long as every gray ends up covered. On a clique that is
  // guaranteed once one vertex goes stable black.
  const Graph g = gen::complete(16);
  const CoinOracle coins(113);
  ThreeColorMIS p(g, make_init_g(g, InitPattern::kAllBlack, coins),
                  std::make_unique<NeverOnSwitch>(), coins);
  const RunResult r = run_until_stabilized(p, 100000);
  ASSERT_TRUE(r.stabilized);
  EXPECT_TRUE(is_mis(g, p.black_set()));
}

}  // namespace
}  // namespace ssmis
