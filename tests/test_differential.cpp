// Differential sweep: the optimized incremental-counter implementations of
// all three processes are checked round-by-round against the naive
// transcriptions of Definitions 4, 5, 26 and 28 — across the full graph
// suite (including degenerate corner graphs) and multiple seeds. This is
// the library's strongest correctness guarantee: any divergence in counter
// maintenance, activity predicates, coin indexing, or switch coupling
// fails here with the exact round number.
#include <gtest/gtest.h>

#include <cctype>
#include <tuple>

#include "core/init.hpp"
#include "core/three_color.hpp"
#include "core/three_state.hpp"
#include "core/two_state.hpp"
#include "harness/suites.hpp"
#include "reference_processes.hpp"

namespace ssmis {
namespace {

const std::vector<NamedGraph>& suite() {
  static const std::vector<NamedGraph>* s = [] {
    auto* v = new std::vector<NamedGraph>(small_suite(/*seed=*/777));
    const auto corners = corner_suite();
    v->insert(v->end(), corners.begin(), corners.end());
    return v;
  }();
  return *s;
}

using Param = std::tuple<int, int>;  // (suite index, seed)

std::vector<Param> all_params() {
  std::vector<Param> params;
  for (int g = 0; g < static_cast<int>(suite().size()); ++g)
    for (int seed = 1; seed <= 2; ++seed) params.emplace_back(g, seed);
  return params;
}

struct ParamNames {
  template <typename T>
  std::string operator()(const ::testing::TestParamInfo<T>& info) const {
    const auto [graph_index, seed] = info.param;
    std::string name = suite()[static_cast<std::size_t>(graph_index)].name +
                       "_s" + std::to_string(seed);
    for (char& c : name)
      if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
    return name;
  }
};

class Differential : public ::testing::TestWithParam<Param> {
 protected:
  const Graph& graph() const {
    return suite()[static_cast<std::size_t>(std::get<0>(GetParam()))].graph;
  }
  std::uint64_t seed() const {
    return static_cast<std::uint64_t>(std::get<1>(GetParam())) * 7919 + 13;
  }
  static constexpr std::int64_t kRounds = 120;
};

TEST_P(Differential, TwoStateMatchesDefinitionFour) {
  const Graph& g = graph();
  const CoinOracle coins(seed());
  std::vector<Color2> ref = make_init2(g, InitPattern::kUniformRandom, coins);
  TwoStateMIS p(g, ref, coins);
  for (std::int64_t t = 1; t <= kRounds; ++t) {
    p.step();
    ref = testing::reference_step2(g, ref, coins, t);
    ASSERT_EQ(p.colors(), ref) << "round " << t;
    // Cross-check the maintained aggregates against the ground truth.
    Vertex black = 0;
    for (Color2 c : ref) black += c == Color2::kBlack;
    ASSERT_EQ(p.num_black(), black) << "round " << t;
  }
}

TEST_P(Differential, ThreeStateMatchesDefinitionFive) {
  const Graph& g = graph();
  const CoinOracle coins(seed());
  std::vector<Color3> ref = make_init3(g, InitPattern::kUniformRandom, coins);
  ThreeStateMIS p(g, ref, coins);
  for (std::int64_t t = 1; t <= kRounds; ++t) {
    p.step();
    ref = testing::reference_step3(g, ref, coins, t);
    ASSERT_EQ(p.colors(), ref) << "round " << t;
  }
}

TEST_P(Differential, ThreeColorMatchesDefinitions26And28) {
  const Graph& g = graph();
  const CoinOracle coins(seed());
  std::vector<ColorG> ref = make_init_g(g, InitPattern::kUniformRandom, coins);
  auto p = ThreeColorMIS::with_randomized_switch(g, ref, coins);
  const auto* sw = dynamic_cast<const RandomizedLogSwitch*>(&p.switch_process());
  ASSERT_NE(sw, nullptr);
  std::vector<int> ref_levels = sw->clock().levels();
  for (std::int64_t t = 1; t <= kRounds; ++t) {
    std::vector<char> sigma(ref_levels.size());
    for (std::size_t i = 0; i < ref_levels.size(); ++i) sigma[i] = ref_levels[i] <= 2;
    p.step();
    ref = testing::reference_step_g(g, ref, sigma, coins, t);
    ref_levels = testing::reference_clock_step(g, ref_levels, coins, t, 3);
    ASSERT_EQ(p.colors(), ref) << "colors diverged at round " << t;
    // Re-fetch through the syncing accessor: under the lazy-switch
    // fast-forward the physical clock may lag the logical round until a
    // read forces replay — which must land exactly on the reference.
    sw = dynamic_cast<const RandomizedLogSwitch*>(&p.switch_process());
    ASSERT_EQ(sw->clock().levels(), ref_levels) << "levels diverged at round " << t;
  }
}

TEST_P(Differential, TwoStateAdversarialInitsMatch) {
  // The uniform-random init exercises typical paths; all-black maximizes
  // simultaneous flips, the regime where diff-application bugs would hide.
  const Graph& g = graph();
  const CoinOracle coins(seed() + 1);
  std::vector<Color2> ref = make_init2(g, InitPattern::kAllBlack, coins);
  TwoStateMIS p(g, ref, coins);
  for (std::int64_t t = 1; t <= kRounds; ++t) {
    p.step();
    ref = testing::reference_step2(g, ref, coins, t);
    ASSERT_EQ(p.colors(), ref) << "round " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, Differential, ::testing::ValuesIn(all_params()),
                         ParamNames());

}  // namespace
}  // namespace ssmis
