// Tests for the extension features beyond the paper's core reproduction:
// exact MIS solvers, extra graph algorithms, the no-collision-detection
// beeping variant, and the randomized sequential daemon.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/init.hpp"
#include "core/sequential.hpp"
#include "core/verify.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "models/beeping.hpp"
#include "models/mis_automata.hpp"

namespace ssmis {
namespace {

TEST(Complement, InvertsAdjacency) {
  const Graph g = gen::path(5);
  const Graph c = complement(g);
  EXPECT_EQ(g.num_edges() + c.num_edges(), 5 * 4 / 2);
  for (Vertex u = 0; u < 5; ++u)
    for (Vertex v = u + 1; v < 5; ++v)
      EXPECT_NE(g.has_edge(u, v), c.has_edge(u, v)) << u << "," << v;
}

TEST(Complement, CompleteBecomesEmpty) {
  EXPECT_EQ(complement(gen::complete(8)).num_edges(), 0);
  EXPECT_EQ(complement(Graph::from_edges(6, {})).num_edges(), 15);
}

TEST(Complement, TooLargeThrows) {
  EXPECT_THROW(complement(gen::path(5000)), std::invalid_argument);
}

TEST(Bipartite, Classification) {
  EXPECT_TRUE(is_bipartite(gen::path(10)));
  EXPECT_TRUE(is_bipartite(gen::cycle(8)));
  EXPECT_FALSE(is_bipartite(gen::cycle(9)));
  EXPECT_TRUE(is_bipartite(gen::complete_bipartite(4, 5)));
  EXPECT_FALSE(is_bipartite(gen::complete(3)));
  EXPECT_TRUE(is_bipartite(gen::random_tree(50, 3)));
  EXPECT_TRUE(is_bipartite(gen::hypercube(5)));
  EXPECT_TRUE(is_bipartite(Graph::from_edges(4, {})));
}

TEST(Bipartite, PartitionIsProper) {
  const Graph g = gen::grid(6, 7);
  const auto part = bipartition(g);
  ASSERT_TRUE(part.has_value());
  for (const auto& [u, v] : g.edge_list())
    EXPECT_NE((*part)[static_cast<std::size_t>(u)], (*part)[static_cast<std::size_t>(v)]);
}

TEST(CoreNumbers, MatchKnownStructures) {
  const auto path_cores = core_numbers(gen::path(10));
  for (Vertex c : path_cores) EXPECT_EQ(c, 1);
  const auto clique_cores = core_numbers(gen::complete(6));
  for (Vertex c : clique_cores) EXPECT_EQ(c, 5);
  const auto cycle_cores = core_numbers(gen::cycle(7));
  for (Vertex c : cycle_cores) EXPECT_EQ(c, 2);
}

TEST(CoreNumbers, MaxEqualsDegeneracy) {
  const Graph g = gen::gnp(80, 0.1, 5);
  const auto cores = core_numbers(g);
  const Vertex max_core = *std::max_element(cores.begin(), cores.end());
  EXPECT_EQ(max_core, degeneracy(g).degeneracy);
}

TEST(ExactMis, KnownOptima) {
  EXPECT_EQ(exact_max_independent_set(gen::complete(7)).size(), 1u);
  EXPECT_EQ(exact_max_independent_set(gen::path(7)).size(), 4u);
  EXPECT_EQ(exact_max_independent_set(gen::cycle(8)).size(), 4u);
  EXPECT_EQ(exact_max_independent_set(gen::cycle(9)).size(), 4u);
  EXPECT_EQ(exact_max_independent_set(gen::complete_bipartite(3, 8)).size(), 8u);
  EXPECT_EQ(exact_max_independent_set(gen::star(12)).size(), 11u);
  EXPECT_EQ(exact_max_independent_set(Graph::from_edges(5, {})).size(), 5u);
}

TEST(ExactMis, ResultIsIndependentAndDominatesGreedy) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = gen::gnp(30, 0.2, seed);
    const auto opt = exact_max_independent_set(g);
    EXPECT_TRUE(is_independent_set(g, opt));
    EXPECT_GE(opt.size(), greedy_mis(g).size());
  }
}

TEST(ExactMis, TooLargeThrows) {
  EXPECT_THROW(exact_max_independent_set(gen::path(100)), std::invalid_argument);
}

TEST(IndependentDomination, KnownValues) {
  EXPECT_EQ(independent_domination_number(gen::complete(9)), 1);
  EXPECT_EQ(independent_domination_number(gen::star(10)), 1);  // the hub
  EXPECT_EQ(independent_domination_number(gen::path(7)), 3);
  EXPECT_EQ(independent_domination_number(gen::cycle(9)), 3);
  EXPECT_EQ(independent_domination_number(Graph::from_edges(0, {})), 0);
  EXPECT_EQ(independent_domination_number(Graph::from_edges(3, {})), 3);
}

TEST(IndependentDomination, LowerBoundsEveryProcessMis) {
  const Graph g = gen::gnp(20, 0.25, 9);
  const Vertex i_min = independent_domination_number(g);
  const auto alpha = exact_max_independent_set(g).size();
  const auto greedy = greedy_mis(g).size();
  EXPECT_LE(static_cast<std::size_t>(i_min), greedy);
  EXPECT_LE(greedy, alpha);
}

TEST(NoCollisionDetection, TwoBlackNeighborsStuckForever) {
  // The 2-state algorithm REQUIRES sender collision detection (Section 1):
  // without it, two adjacent beeping (black) nodes hear nothing, conclude
  // they are stable, and never resolve the conflict.
  const Graph g = gen::complete(2);
  const TwoStateBeepAutomaton automaton;
  BeepingNetwork net(g, automaton, {1, 1}, CoinOracle(3),
                     /*sender_collision_detection=*/false);
  for (int i = 0; i < 1000; ++i) net.step();
  EXPECT_EQ(net.state(0), TwoStateBeepAutomaton::kBlack);
  EXPECT_EQ(net.state(1), TwoStateBeepAutomaton::kBlack);
  EXPECT_FALSE(is_mis(g, net.claimed_mis()));
}

TEST(NoCollisionDetection, WithCdSameStartResolves) {
  const Graph g = gen::complete(2);
  const TwoStateBeepAutomaton automaton;
  BeepingNetwork net(g, automaton, {1, 1}, CoinOracle(3),
                     /*sender_collision_detection=*/true);
  for (int i = 0; i < 1000 && !is_mis(g, net.claimed_mis()); ++i) net.step();
  EXPECT_TRUE(is_mis(g, net.claimed_mis()));
}

TEST(NoCollisionDetection, ListenersUnaffected) {
  // Listeners hear the same bit in both variants; only beeping nodes differ.
  const Graph g = gen::path(3);
  const TwoStateBeepAutomaton automaton;
  // 0 black, 1 white, 2 white: vertex 1 hears the beep in both variants and
  // stays white; vertex 2 hears nothing and resamples identically (same
  // oracle word).
  BeepingNetwork with_cd(g, automaton, {1, 0, 0}, CoinOracle(5), true);
  BeepingNetwork without_cd(g, automaton, {1, 0, 0}, CoinOracle(5), false);
  with_cd.step();
  without_cd.step();
  EXPECT_EQ(with_cd.state(1), without_cd.state(1));
  EXPECT_EQ(with_cd.state(2), without_cd.state(2));
}

TEST(RandomizedSequential, StabilizesUnderAllSchedulers) {
  const Graph g = gen::gnp(60, 0.1, 11);
  const CoinOracle coins(13);
  std::vector<std::unique_ptr<Scheduler>> schedulers;
  schedulers.push_back(std::make_unique<RoundRobinScheduler>());
  schedulers.push_back(std::make_unique<RandomScheduler>(17));
  schedulers.push_back(std::make_unique<MaxDegreeScheduler>(g));
  schedulers.push_back(std::make_unique<LowestIdScheduler>());
  for (auto& sched : schedulers) {
    SequentialMIS p(g, make_init2(g, InitPattern::kAllBlack, coins));
    const auto result = p.run_randomized(*sched, coins, 1000000);
    ASSERT_TRUE(result.stabilized) << sched->name();
    EXPECT_TRUE(is_mis(g, p.black_set())) << sched->name();
  }
}

TEST(RandomizedSequential, MoveRequiresEnabled) {
  const Graph g = gen::path(3);
  SequentialMIS p(g, {Color2::kBlack, Color2::kWhite, Color2::kBlack});
  EXPECT_THROW(p.move_randomized(0, 0, CoinOracle(1)), std::logic_error);
}

TEST(RandomizedSequential, StillAtMostTwoColorChangesPerVertex) {
  // The <= 2 color-changes bound survives randomization: a vertex's second
  // change is white -> black (no black neighbors), after which no neighbor
  // can ever turn black, so it never changes again. What randomization adds
  // is *dithering*: scheduled activations that redraw the current color, so
  // activations can far exceed actual changes.
  const Graph g = gen::complete(8);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const CoinOracle coins(seed);
    SequentialMIS p(g, std::vector<Color2>(8, Color2::kBlack));
    RandomScheduler sched(seed);
    const auto result = p.run_randomized(sched, coins, 100000);
    ASSERT_TRUE(result.stabilized);
    EXPECT_LE(result.max_moves_per_vertex, 2) << "seed " << seed;
    // total_moves counts scheduled activations; changes are at most 2n.
    std::int64_t changes = 0;
    for (Vertex u = 0; u < 8; ++u) changes += p.moves_of(u);
    EXPECT_LE(changes, 2 * 8);
    EXPECT_GE(result.total_moves, changes);
  }
}

TEST(RandomizedSequential, ActivationsExceedChangesSomewhere) {
  // Dithering must actually occur over enough seeds: some activation redraws
  // the current color.
  bool saw_dither = false;
  const Graph g = gen::complete(8);
  for (std::uint64_t seed = 0; seed < 40 && !saw_dither; ++seed) {
    const CoinOracle coins(seed);
    SequentialMIS p(g, std::vector<Color2>(8, Color2::kBlack));
    RandomScheduler sched(seed);
    const auto result = p.run_randomized(sched, coins, 100000);
    std::int64_t changes = 0;
    for (Vertex u = 0; u < 8; ++u) changes += p.moves_of(u);
    if (result.total_moves > changes) saw_dither = true;
  }
  EXPECT_TRUE(saw_dither);
}

}  // namespace
}  // namespace ssmis
