// Suppression fixture: every violation here carries a reasoned
// `ssmis-lint: allow(...)` comment, so the file must lint clean — and the
// self-test re-lints it with suppressions ignored to prove the violations
// are real (both directions, or the allow() machinery is dead).
#include <cstdint>
#include <thread>
#include <vector>

using Vertex = std::int32_t;

template <typename G>
std::int64_t plain_guarded_sum(const G& g) {
  std::int64_t total = 0;
  // ssmis-lint: allow(R1) fixture: storage is plain by construction here
  total += static_cast<std::int64_t>(g.adjacency().size());
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (Vertex v : g.neighbors(u)) total += v;  // ssmis-lint: allow(R1) fixture: plain storage
  }
  return total;
}

int default_threads() {
  // ssmis-lint: allow(R2) fixture: CLI default only, never a trajectory input
  return static_cast<int>(std::thread::hardware_concurrency());
}

Vertex raw_size(const std::vector<Vertex>& items) {
  return static_cast<Vertex>(items.size());  // ssmis-lint: allow(R3) fixture: count bounded by construction
}
