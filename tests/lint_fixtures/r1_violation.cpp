// Seeded R1 violations: raw adjacency access outside the decode-aware
// allowlist. Every flagged line below must appear in expected.txt — the
// linter self-test fails if any is missed (tools/ssmis_lint.py --self-test).
//
// NOT flagged: the two-argument neighbors(u, scratch) decode overload and
// for_each_neighbor, exercised at the bottom as negative controls.
#include <cstdint>
#include <vector>

struct FakeScratch {
  std::vector<int> row;
};

template <typename G>
long sum_degrees_raw(const G& g) {
  long total = 0;
  for (int u = 0; u < g.num_vertices(); ++u) {
    for (int v : g.neighbors(u)) total += v;  // R1: raw single-arg neighbors
  }
  total += static_cast<long>(g.offsets().size());    // R1: raw offsets()
  total += static_cast<long>(g.adjacency().size());  // R1: raw adjacency()
  return total;
}

template <typename G>
long sum_degrees_decoded(const G& g) {
  long total = 0;
  FakeScratch scratch;
  for (int u = 0; u < g.num_vertices(); ++u) {
    for (int v : g.neighbors(u, scratch)) total += v;  // ok: decode overload
    g.for_each_neighbor(u, [&](int v) { total += v; return true; });  // ok
  }
  return total;
}
