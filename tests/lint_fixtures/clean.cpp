// Negative-control fixture: idiomatic code that every rule must pass with
// zero findings. Mirrors the repo's sanctioned patterns — decode-aware
// adjacency access, seeded counter-based randomness, checked narrowing,
// per-shard decide writes, const rule callbacks.
#include <cstdint>
#include <vector>

using Vertex = std::int32_t;

namespace fake {
template <typename To, typename From>
To narrow_cast(From v) { return static_cast<To>(v); }
}  // namespace fake

struct Scratch {
  std::vector<Vertex> row;
};

template <typename G>
std::int64_t sum_neighbors(const G& g) {
  std::int64_t total = 0;
  Scratch scratch;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (Vertex v : g.neighbors(u, scratch)) total += v;
    g.for_each_neighbor(u, [&](Vertex v) { total += v; return true; });
  }
  return total;
}

// Counter-based coin: a pure function of (seed, round, vertex) — the only
// sanctioned randomness in trajectory-affecting code.
std::uint64_t coin(std::uint64_t seed, std::int64_t round, Vertex u) {
  std::uint64_t x = seed ^ (static_cast<std::uint64_t>(round) * 0x9E3779B97F4A7C15ull) ^
                    (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 1);
  x ^= x >> 30;
  return x * 0xBF58476D1CE4E5B9ull;
}

Vertex checked_size(const std::vector<Vertex>& items) {
  return fake::narrow_cast<Vertex>(items.size());
}

class GoodEngine {
 public:
  void transition_range(const Vertex* items, int count, int shard) {
    for (int i = 0; i < count; ++i) staged_[items[i]] = 1;
    shard_changed_[shard] = count;
  }

 private:
  std::vector<int> staged_;
  std::vector<int> shard_changed_;
};

struct GoodRule {
  using Color = std::uint8_t;
  Color transition(Vertex u, Color c, int cnt, std::int64_t t) const {
    return static_cast<Color>((c + u + cnt + static_cast<int>(t)) % 2);
  }
  bool scheduled(Vertex u, std::int64_t t) const { return ((u + t) & 1) == 0; }
  int contribution(Color c, int j) const { return c == j ? 1 : 0; }
};
