// Seeded R4 violations: decide-phase shard-discipline breaches. The
// sharded decide phase is bit-identical only because transition_range and
// the parallel_for lambdas write nothing but per-shard state, and because
// the rule callbacks they invoke are const. Each breach below must be
// flagged.
#include <cstdint>
#include <vector>

struct FakePool {
  template <typename F>
  void parallel_for(int jobs, F&& f) {
    for (int j = 0; j < jobs; ++j) f(j);
  }
};

class BadEngine {
 public:
  void transition_range(const int* items, int count, int shard) {
    for (int i = 0; i < count; ++i) {
      staged_[items[i]] = 1;     // ok: staged_ is per-shard by contract
      ++num_changed_;            // R4: shared member mutated in decide
    }
    shard_changed_[shard] = count;  // ok: per-shard slot
  }

  void decide(FakePool& pool, int shards) {
    pool.parallel_for(shards, [&](int s) {
      shard_changed_[s] = 0;     // ok: per-shard slot
      round_flips_ += s;         // R4: shared member mutated in lambda
    });
  }

 private:
  std::vector<int> staged_;
  std::vector<int> shard_changed_;
  std::int64_t num_changed_ = 0;
  std::int64_t round_flips_ = 0;
};

struct BadRule {
  using Color = std::uint8_t;
  int flips = 0;
  Color transition(int u, Color c, int cnt, std::int64_t t) {  // R4: non-const
    ++flips;
    return static_cast<Color>((c + u + cnt + static_cast<int>(t)) % 2);
  }
  bool scheduled(int u, std::int64_t t) const {  // ok: const callback
    return ((u + t) & 1) == 0;
  }
};
