// Seeded R3 violations: 64-bit values narrowed with a raw static_cast
// instead of the checked ssmis::narrow_cast. Also exercises the
// reason-required contract: the allow() comment without a reason on the
// last violation must NOT suppress it.
#include <cstdint>
#include <vector>

using Vertex = std::int32_t;

Vertex worklist_size(const std::vector<Vertex>& items) {
  return static_cast<Vertex>(items.size());  // R3: .size() is 64-bit
}

int chunk_count(std::int64_t endpoints, std::int64_t per_chunk) {
  return static_cast<int>(endpoints / per_chunk);  // R3: int64 source
}

Vertex degree_of(const std::vector<std::int64_t>& offsets, Vertex u) {
  return static_cast<Vertex>(offsets[u + 1] - offsets[u]);  // R3: offsets
}

std::uint32_t row_bytes(std::size_t payload_bytes) {
  // An allow() with no reason does not suppress — the finding stands.
  return static_cast<std::uint32_t>(payload_bytes);  // ssmis-lint: allow(R3)
}

std::int64_t widen(Vertex u) {
  return static_cast<std::int64_t>(u);  // ok: widening, never flagged
}
