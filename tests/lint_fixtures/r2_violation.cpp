// Seeded R2 violations: nondeterminism sources in trajectory-affecting
// code. lint_fixtures/ is deliberately NOT covered by the bench/support
// path exemption, so every source class below must be reported.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

int decide_color(int u) {
  int coin = rand() % 2;                        // R2: libc rand()
  std::random_device rd;                        // R2: entropy outside the seed
  coin ^= static_cast<int>(rd() & 1u);
  const auto t0 = std::chrono::steady_clock::now();  // R2: host timer
  (void)t0;
  coin ^= static_cast<int>(time(nullptr) & 1);  // R2: wall clock
  const unsigned width = std::thread::hardware_concurrency();  // R2
  return (coin + static_cast<int>(width) + u) % 3;
}

int sum_in_hash_order(const std::vector<int>& xs) {
  std::unordered_set<int> seen;
  for (int x : xs) seen.insert(x);  // ok: insertion/membership is fine
  int weighted = 0, rank = 0;
  for (int x : seen) weighted += (++rank) * x;  // R2: hash-order iteration
  return weighted;
}

bool contains(const std::unordered_set<int>& seen, int x) {
  return seen.count(x) > 0;  // ok: membership query, order never observed
}
