#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/good_graph.hpp"

namespace ssmis {
namespace {

TEST(GoodGraph, P5ExactOnKnownGraphs) {
  // K_{3,7}: two left vertices share all 7 right neighbors; bound is
  // max(6*10*p^2, 4 ln 10). With p = 0.5 bound = 15 -> holds; with p = 0.1
  // bound = 4 ln 10 ≈ 9.2 -> holds; engineered violation below.
  const Graph g = gen::complete_bipartite(3, 7);
  EXPECT_TRUE(check_p5(g, 0.5));
  // A graph with 40 common neighbors and tiny p/ln n bound must fail.
  const Graph big = gen::complete_bipartite(2, 40);
  EXPECT_FALSE(check_p5(big, 0.01));
}

TEST(GoodGraph, P6OnlyAppliesAboveThreshold) {
  EXPECT_FALSE(p6_applies(100, 0.01));
  EXPECT_TRUE(p6_applies(100, 0.9));
}

TEST(GoodGraph, P6ChecksDiameter) {
  // Dense graph: diam <= 2 and p above threshold -> pass.
  EXPECT_TRUE(check_p6(gen::complete(50), 0.9));
  // Path with large p claimed: diam > 2 -> fail.
  EXPECT_FALSE(check_p6(gen::path(50), 0.9));
  // Path with small p: vacuous -> pass.
  EXPECT_TRUE(check_p6(gen::path(50), 0.001));
}

TEST(GoodGraph, P1SubsetPredicate) {
  const Graph g = gen::complete(10);
  std::vector<Vertex> all;
  for (Vertex u = 0; u < 10; ++u) all.push_back(u);
  // Average degree 9; bound max(8*0.9*10, 4 ln 10) = 72: holds.
  EXPECT_TRUE(p1_holds_for_subset(g, 0.9, all));
  // With p = 0.01 the bound is 4 ln 10 ≈ 9.21 > 9: still holds (barely).
  EXPECT_TRUE(p1_holds_for_subset(g, 0.01, all));
  // K_40 with p tiny: average degree 39 > 4 ln 40 ≈ 14.8: violated.
  const Graph k40 = gen::complete(40);
  std::vector<Vertex> all40;
  for (Vertex u = 0; u < 40; ++u) all40.push_back(u);
  EXPECT_FALSE(p1_holds_for_subset(k40, 0.001, all40));
}

TEST(GoodGraph, P1EmptySubsetHolds) {
  EXPECT_TRUE(p1_holds_for_subset(gen::complete(5), 0.5, {}));
}

TEST(GoodGraph, P2PreconditionSkipsSmallSets) {
  const Graph g = gen::path(20);
  // |S| < 40 ln(n)/p: predicate vacuously true.
  EXPECT_TRUE(p2_holds_for_subset(g, 0.1, {0, 1, 2}));
}

TEST(GoodGraph, P2DenseGraphSatisfied) {
  // On K_n every outside vertex has |S| >= p|S|/2 neighbors in S.
  const Graph g = gen::complete(300);
  std::vector<Vertex> s;
  for (Vertex u = 0; u < 250; ++u) s.push_back(u);
  EXPECT_TRUE(p2_holds_for_subset(g, 0.95, s));
}

TEST(GoodGraph, P2ViolatedByDisconnectedMass) {
  // Two disjoint cliques of 300; S = one clique. Threshold 40 ln(600)/0.999
  // ≈ 256 <= |S| = 300, so the precondition is met; the other clique's 300
  // vertices have 0 < p|S|/2 neighbors in S and outnumber |S|/2: violated.
  const Graph g = gen::disjoint_cliques(2, 300);
  std::vector<Vertex> s;
  for (Vertex u = 0; u < 300; ++u) s.push_back(u);
  EXPECT_FALSE(p2_holds_for_subset(g, 0.999, s));
}

TEST(GoodGraph, P4SparseCrossEdgesHold) {
  const Graph g = gen::path(100);
  std::vector<Vertex> s, t;
  for (Vertex u = 0; u < 50; ++u) s.push_back(u);
  for (Vertex u = 50; u < 60; ++u) t.push_back(u);
  EXPECT_TRUE(p4_holds_for_pair(g, s, t));
}

TEST(GoodGraph, P4ViolatedByDenseCut) {
  // K_{a,b} with S = left, T = right: |E(S,T)| = a*b > 6 a ln n when
  // b > 6 ln n.
  const Graph g = gen::complete_bipartite(40, 40);
  std::vector<Vertex> s, t;
  for (Vertex u = 0; u < 40; ++u) s.push_back(u);
  for (Vertex u = 40; u < 80; ++u) t.push_back(u);
  EXPECT_FALSE(p4_holds_for_pair(g, s, t));
}

TEST(GoodGraph, P4PreconditionSmallerS) {
  const Graph g = gen::complete(10);
  EXPECT_TRUE(p4_holds_for_pair(g, {0}, {1, 2}));  // |S| < |T|: vacuous
}

TEST(GoodGraph, P3PreconditionDetection) {
  const Graph g = gen::path(10);
  bool pre = false;
  // S and T overlap: precondition unmet.
  p3_holds_for_triplet(g, 0.5, {0, 1}, {1}, {}, &pre);
  EXPECT_FALSE(pre);
  // |S| < 2|T|: unmet.
  p3_holds_for_triplet(g, 0.5, {0}, {5}, {}, &pre);
  EXPECT_FALSE(pre);
  // Valid triplet: S={0,1}, T={5}, I={8}; N(I)={7,9} disjoint from S,T.
  const bool holds = p3_holds_for_triplet(g, 0.5, {0, 1}, {5}, {8}, &pre);
  EXPECT_TRUE(pre);
  EXPECT_TRUE(holds);  // slack 8 ln^2(10)/0.5 is enormous here
}

TEST(GoodGraph, ExhaustiveOnTinyGnp) {
  // Tiny G(n,p): all properties should hold with the generous constants.
  const Graph g = gen::gnp(9, 0.3, 42);
  const auto report = check_good_exhaustive(g, 0.3);
  EXPECT_TRUE(report.p1) << report.to_string();
  EXPECT_TRUE(report.p2) << report.to_string();
  EXPECT_TRUE(report.p3) << report.to_string();
  EXPECT_TRUE(report.p4) << report.to_string();
  EXPECT_TRUE(report.p5) << report.to_string();
}

TEST(GoodGraph, SampledCheckPassesOnGnp) {
  // Lemma 18 (spot check): a moderate G(n,p) sample passes the randomized
  // refutation search for all properties.
  const Graph g = gen::gnp(300, 0.1, 7);
  const auto report = check_good_sampled(g, 0.1, 30, 99);
  EXPECT_TRUE(report.all()) << report.to_string();
}

TEST(GoodGraph, SampledCheckRefutesP1OnPlantedClique) {
  // A clique of size 60 inside an otherwise empty graph of 300 vertices:
  // the degree-ordered prefix candidate finds the dense subgraph and P1
  // fails for small p.
  GraphBuilder b(300);
  for (Vertex i = 0; i < 60; ++i)
    for (Vertex j = i + 1; j < 60; ++j) b.add_edge(i, j);
  const Graph g = std::move(b).build();
  const auto report = check_good_sampled(g, 0.001, 40, 5);
  EXPECT_FALSE(report.p1);
}

TEST(GoodGraph, ReportToStringMentionsAll) {
  GoodGraphReport r;
  const std::string s = r.to_string();
  for (const char* key : {"P1", "P2", "P3", "P4", "P5", "P6"})
    EXPECT_NE(s.find(key), std::string::npos);
}

}  // namespace
}  // namespace ssmis
