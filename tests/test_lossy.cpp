// Lossy carrier sensing and local-stabilization-time tests (extension
// features used by exp_lossy and exp_local_times).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "models/beeping.hpp"
#include "models/mis_automata.hpp"

namespace ssmis {
namespace {

TEST(Lossy, Validation) {
  const Graph g = gen::path(2);
  const TwoStateBeepAutomaton automaton;
  BeepingNetwork net(g, automaton, {0, 0}, CoinOracle(1));
  EXPECT_THROW(net.set_loss_probability(-0.1), std::invalid_argument);
  EXPECT_THROW(net.set_loss_probability(1.0), std::invalid_argument);
  net.set_loss_probability(0.5);
  EXPECT_DOUBLE_EQ(net.loss_probability(), 0.5);
}

TEST(Lossy, ZeroLossMatchesDirectProcess) {
  const Graph g = gen::gnp(40, 0.1, 3);
  const CoinOracle coins(5);
  const TwoStateBeepAutomaton automaton;
  std::vector<std::uint8_t> init(static_cast<std::size_t>(g.num_vertices()), 0);
  BeepingNetwork lossless(g, automaton, init, coins);
  lossless.set_loss_probability(0.0);
  BeepingNetwork plain(g, automaton, init, coins);
  for (int i = 0; i < 100; ++i) {
    lossless.step();
    plain.step();
    ASSERT_EQ(lossless.states(), plain.states());
  }
}

TEST(Lossy, StillReachesMisUnderModerateLoss) {
  const Graph g = gen::gnp(60, 0.08, 7);
  const TwoStateBeepAutomaton automaton;
  std::vector<std::uint8_t> init(static_cast<std::size_t>(g.num_vertices()), 1);
  BeepingNetwork net(g, automaton, init, CoinOracle(9));
  net.set_loss_probability(0.1);
  bool reached = false;
  for (int i = 0; i < 20000 && !reached; ++i) {
    net.step();
    reached = is_mis(g, net.claimed_mis());
  }
  EXPECT_TRUE(reached);
}

TEST(Lossy, LossCanBreakAStableConfiguration) {
  // A stable configuration is no longer absorbing under loss: a covered
  // white vertex that misses its head's beep re-activates. With heavy loss
  // on a star this is near-certain within a few rounds.
  const Graph g = gen::star(10);
  const TwoStateBeepAutomaton automaton;
  // Hub black (an MIS), leaves white.
  std::vector<std::uint8_t> init(10, 0);
  init[0] = 1;
  BeepingNetwork net(g, automaton, init, CoinOracle(11));
  ASSERT_TRUE(is_mis(g, net.claimed_mis()));
  net.set_loss_probability(0.5);
  bool ever_broken = false;
  for (int i = 0; i < 200; ++i) {
    net.step();
    if (!is_mis(g, net.claimed_mis())) ever_broken = true;
  }
  EXPECT_TRUE(ever_broken);
}

TEST(LocalTimes, SizesAndCoverage) {
  const Graph g = gen::gnp(100, 0.05, 13);
  MeasureConfig config;
  config.seed = 17;
  config.max_rounds = 100000;
  const auto times = vertex_stabilization_times(g, config);
  ASSERT_EQ(times.size(), 100u);
  for (std::int64_t t : times) EXPECT_GE(t, 0);  // run stabilized: all covered
}

TEST(LocalTimes, MaxEqualsGlobalStabilizationTime) {
  const Graph g = gen::gnp(80, 0.06, 19);
  MeasureConfig config;
  config.seed = 23;
  config.max_rounds = 100000;
  const auto times = vertex_stabilization_times(g, config);
  const auto global = measure_stabilization(g, [&] {
                        MeasureConfig c = config;
                        c.trials = 1;
                        return c;
                      }()).summary.max;
  const auto max_local = *std::max_element(times.begin(), times.end());
  EXPECT_DOUBLE_EQ(static_cast<double>(max_local), global);
}

TEST(LocalTimes, MedianBelowMaxOnLargeGraphs) {
  const Graph g = gen::gnp(500, 0.01, 29);
  MeasureConfig config;
  config.seed = 31;
  config.max_rounds = 100000;
  const auto times = vertex_stabilization_times(g, config);
  std::vector<std::int64_t> sorted(times);
  std::sort(sorted.begin(), sorted.end());
  const auto median = sorted[sorted.size() / 2];
  const auto max = sorted.back();
  EXPECT_LT(median, max);
}

TEST(LocalTimes, WorksForAllRegisteredProtocols) {
  // Every registered protocol — networks, daemon, and the new workloads
  // included — reports per-vertex settle times through the one shared path.
  const Graph g = gen::gnp(40, 0.15, 37);
  for (const std::string& protocol : ProtocolRegistry::instance().names()) {
    MeasureConfig config;
    config.protocol = protocol;
    config.seed = 41;
    config.max_rounds = 500000;
    const auto times = vertex_stabilization_times(g, config);
    ASSERT_EQ(times.size(), 40u) << protocol;
    for (std::int64_t t : times) EXPECT_GE(t, 0) << protocol;
  }
}

}  // namespace
}  // namespace ssmis
