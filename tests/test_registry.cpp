// Protocol-registry regression suite.
//
// Two contracts are pinned here:
//   1. The registry-era drivers are BIT-IDENTICAL to the pre-registry ones:
//      golden trajectory fingerprints captured from the enum-era
//      measure_stabilization dispatch and the direct wrapper drivers (at
//      the commit that introduced the registry) must never change, and the
//      three legacy ProcessKind protocols are additionally compared
//      round-by-round against inline transcriptions of the deleted enum
//      dispatch.
//   2. Every registered protocol — current and future — passes the same
//      table-driven smoke: construction, stabilization on a small graph
//      suite, validity of the stabilized output via the protocol's own
//      verify predicate, shard-independence, and fault recovery. A new
//      workload gets all of this by registering, with zero new test code.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/init.hpp"
#include "core/process.hpp"
#include "core/three_color.hpp"
#include "core/three_state.hpp"
#include "core/two_state.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "graph/ssg.hpp"
#include "harness/experiment.hpp"
#include "harness/registry.hpp"
#include "support/hash.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>  // getpid for the storage-case scratch directory
#endif

namespace ssmis {
namespace {

// FNV-1a over the raw per-vertex state bytes of the initial configuration
// and every configuration after each of `steps` steps — the exact procedure
// the pre-registry capture program used on the wrappers' colors()/states().
std::uint64_t trajectory_fingerprint(const std::string& name,
                                     const ProtocolParams& params,
                                     const Graph& g, std::uint64_t seed,
                                     int steps, int shards = 1) {
  const auto process = ProtocolRegistry::instance().make(name, g, params, seed);
  if (shards > 1) process->set_shards(shards);
  std::uint64_t h = kFnv1aBasis;
  const auto fold = [&] {
    for (Vertex u = 0; u < g.num_vertices(); ++u) {
      const std::uint8_t b = process->raw_state(u);
      h = fnv1a(h, &b, 1);
    }
  };
  fold();
  for (int i = 0; i < steps; ++i) {
    process->step();
    fold();
  }
  return h;
}

// The golden graph every fingerprint below is pinned on, in each of the
// four storage modes the substrate supports. The mmap'd entries hold their
// files open via the Graph's keep-alive backing; the scratch directory is
// cleaned up when the caller drops the vector.
struct StorageCase {
  std::string name;
  Graph graph;
};

std::vector<StorageCase> golden_graph_storages() {
  const Graph plain = gen::gnp(96, 0.06, 5);
  const auto dir = std::filesystem::temp_directory_path() /
                   ("ssmis_registry_storage_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string v1 = (dir / "golden_v1.ssg").string();
  const std::string v2 = (dir / "golden_v2.ssg").string();
  io::save_ssg(v1, plain);
  io::save_ssg(v2, Graph::compress(plain));
  std::vector<StorageCase> cases;
  cases.push_back({"plain", plain});
  cases.push_back({"mmap-v1", io::mmap_ssg(v1)});
  cases.push_back({"compressed", Graph::compress(plain)});
  cases.push_back({"compressed-mmap-v2", io::mmap_ssg(v2)});
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);  // unix: mappings outlive the unlink
  return cases;
}

// The pre-registry golden constants (see GoldenTrajectoryFingerprints).
// Factored so the SAME block pins every storage mode: a trajectory on a
// compressed or mmap'd graph must be byte-for-byte the trajectory on its
// plain CSR twin.
void expect_legacy_goldens(const Graph& g, const std::string& where) {
  const std::uint64_t seed = 42;
  const int steps = 48;
  const ProtocolParams none;
  EXPECT_EQ(trajectory_fingerprint("2state", none, g, seed, steps),
            0x9de0932b91ee94fbULL)
      << where;
  EXPECT_EQ(trajectory_fingerprint("2state-variant", none, g, seed, steps),
            0x2f33d9fc6f56c3b1ULL)
      << where;
  EXPECT_EQ(trajectory_fingerprint("3state", none, g, seed, steps),
            0xd41fe9dc85ac7cfbULL)
      << where;
  EXPECT_EQ(trajectory_fingerprint("3color", none, g, seed, steps),
            0xe7f52e1e33a1f6d4ULL)
      << where;
  EXPECT_EQ(trajectory_fingerprint("daemon", none, g, seed, steps),
            0x9de0932b91ee94fbULL)  // synchronous daemon == 2state
      << where;
  ProtocolParams subset;
  subset.set("daemon", "random");
  subset.set("rho", "0.7");
  EXPECT_EQ(trajectory_fingerprint("daemon", subset, g, seed, steps),
            0xda2fedf113e676daULL)
      << where;
  EXPECT_EQ(trajectory_fingerprint("beeping", none, g, seed, steps),
            0x9de0932b91ee94fbULL)  // lossless beeping == 2state
      << where;
  EXPECT_EQ(trajectory_fingerprint("stoneage", none, g, seed, steps),
            0xd41fe9dc85ac7cfbULL)  // stone-age == 3state
      << where;
}

void expect_new_workload_goldens(const Graph& g, const std::string& where) {
  const ProtocolParams none;
  EXPECT_EQ(trajectory_fingerprint("matching", none, g, 42, 48),
            0x3ffa8d139f5950aaULL)
      << where;
  EXPECT_EQ(trajectory_fingerprint("priority", none, g, 42, 48),
            0x38816e73a077402aULL)
      << where;
}

TEST(Registry, AllSevenLegacyProtocolsRegistered) {
  const auto& registry = ProtocolRegistry::instance();
  for (const char* name : {"2state", "2state-variant", "3state", "3color",
                           "daemon", "beeping", "stoneage"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_FALSE(registry.describe(name).empty()) << name;
  }
  // The two post-registry workloads ride the same path.
  EXPECT_TRUE(registry.contains("matching"));
  EXPECT_TRUE(registry.contains("priority"));
}

// Golden fingerprints captured from the PRE-registry drivers (gnp(96, 0.06,
// graph seed 5), trial seed 42, uniform-random init, 48 steps). The first
// seven pin bit-identity with the deleted enum-era/direct drivers; the
// structural equalities (beeping == 2state, stoneage == 3state, synchronous
// daemon == 2state) were true pre-refactor and must survive. The same
// constants are re-asserted on every storage mode of the same graph below
// (CrossRepresentationStorageKeepsTheGoldens).
TEST(Registry, GoldenTrajectoryFingerprints) {
  expect_legacy_goldens(gen::gnp(96, 0.06, 5), "plain");
}

// The new workloads' trajectories are pinned from their introduction.
TEST(Registry, NewWorkloadGoldenFingerprints) {
  expect_new_workload_goldens(gen::gnp(96, 0.06, 5), "plain");
}

// The bit-identity contract across the graph substrate: compressed and
// mmap'd storages are pure representation changes, so the PRE-registry
// golden constants must come out of them unchanged — not merely "equal to
// plain today", equal to the constants pinned at the registry refactor.
TEST(Registry, CrossRepresentationStorageKeepsTheGoldens) {
  for (const StorageCase& storage : golden_graph_storages()) {
    expect_legacy_goldens(storage.graph, storage.name);
    expect_new_workload_goldens(storage.graph, storage.name);
  }
}

// Table-driven over every registered protocol — current and future: each
// one must produce the identical trajectory on plain, mmap'd-v1,
// compressed, and mmap'd-v2 storage of the same graph, sequential and
// sharded. A new workload gets this proof by registering, with zero new
// test code.
TEST(Registry, CrossRepresentationBitIdentityForEveryProtocol) {
  const auto storages = golden_graph_storages();
  const ProtocolParams none;
  for (const std::string& name : ProtocolRegistry::instance().names()) {
    const std::uint64_t baseline =
        trajectory_fingerprint(name, none, storages.front().graph, 42, 48);
    for (const StorageCase& storage : storages) {
      for (const int shards : {1, 4}) {
        ASSERT_EQ(trajectory_fingerprint(name, none, storage.graph, 42, 48,
                                         shards),
                  baseline)
            << name << " diverged on " << storage.name << " at " << shards
            << " shard(s)";
      }
    }
  }
}

// Round-by-round comparison against inline transcriptions of the deleted
// ProcessKind dispatch (the exact construction run_one used per kind).
TEST(Registry, BitIdenticalToEnumEraDrivers) {
  const Graph g = gen::gnp(128, 0.05, 9);
  const ProtocolParams params;
  for (std::uint64_t seed : {1ull, 7ull}) {
    {
      const CoinOracle coins(seed);
      TwoStateMIS direct(g, make_init2(g, InitPattern::kUniformRandom, coins),
                         coins);
      const auto p = ProtocolRegistry::instance().make("2state", g, params, seed);
      for (int r = 0; r < 60; ++r) {
        for (Vertex u = 0; u < g.num_vertices(); ++u)
          ASSERT_EQ(p->raw_state(u),
                    static_cast<std::uint8_t>(direct.color(u)))
              << "2state diverged at round " << r << " vertex " << u;
        direct.step();
        p->step();
      }
    }
    {
      const CoinOracle coins(seed);
      ThreeStateMIS direct(g, make_init3(g, InitPattern::kUniformRandom, coins),
                           coins);
      const auto p = ProtocolRegistry::instance().make("3state", g, params, seed);
      for (int r = 0; r < 60; ++r) {
        for (Vertex u = 0; u < g.num_vertices(); ++u)
          ASSERT_EQ(p->raw_state(u),
                    static_cast<std::uint8_t>(direct.color(u)))
              << "3state diverged at round " << r << " vertex " << u;
        direct.step();
        p->step();
      }
    }
    {
      const CoinOracle coins(seed);
      auto direct = ThreeColorMIS::with_randomized_switch(
          g, make_init_g(g, InitPattern::kUniformRandom, coins), coins);
      const auto p = ProtocolRegistry::instance().make("3color", g, params, seed);
      for (int r = 0; r < 60; ++r) {
        for (Vertex u = 0; u < g.num_vertices(); ++u)
          ASSERT_EQ(p->raw_state(u),
                    static_cast<std::uint8_t>(direct.color(u)))
              << "3color diverged at round " << r << " vertex " << u;
        direct.step();
        p->step();
      }
    }
  }
}

// --- table-driven: every registered protocol, present and future ----------

struct SmokeGraph {
  const char* name;
  Graph graph;
};

std::vector<SmokeGraph> smoke_suite() {
  std::vector<SmokeGraph> suite;
  suite.push_back({"path33", gen::path(33)});
  suite.push_back({"K17", gen::complete(17)});
  suite.push_back({"gnp64", gen::gnp(64, 0.1, 11)});
  suite.push_back({"C5", gen::cycle(5)});
  return suite;
}

TEST(Registry, EveryProtocolConstructsAndDescribes) {
  const Graph g = gen::gnp(32, 0.1, 3);
  const ProtocolParams params;
  for (const std::string& name : ProtocolRegistry::instance().names()) {
    const auto p = ProtocolRegistry::instance().make(name, g, params, 1);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_EQ(&p->graph(), &g) << name;
    EXPECT_EQ(p->round(), 0) << name;
    EXPECT_GE(p->num_colors(), 2) << name;
    const RoundStats s = p->snapshot();
    EXPECT_EQ(s.round, 0) << name;
    EXPECT_NE(ProtocolRegistry::instance().describe(name).find(name), std::string::npos)
        << name;
  }
}

TEST(Registry, EveryProtocolStabilizesValidlyOnSmokeSuite) {
  for (const auto& cell : smoke_suite()) {
    for (const std::string& name : ProtocolRegistry::instance().names()) {
      // measure_stabilization verifies every stabilized trial's output via
      // the protocol's own predicate (it throws on an invalid success).
      MeasureConfig config;
      config.protocol = name;
      config.trials = 3;
      config.seed = 101;
      config.max_rounds = 500000;
      const Measurements m = measure_stabilization(cell.graph, config);
      EXPECT_EQ(m.timeouts, 0) << name << " on " << cell.name;
    }
  }
}

TEST(Registry, OutputSetsMatchTheProtocolsOwnPredicates) {
  const Graph g = gen::gnp(60, 0.08, 13);
  const ProtocolParams params;
  for (const std::string& name : ProtocolRegistry::instance().names()) {
    const auto p = ProtocolRegistry::instance().make(name, g, params, 5);
    const RunResult r = p->run(500000, TraceMode::kNone);
    ASSERT_TRUE(r.stabilized) << name;
    EXPECT_NO_THROW(p->verify_output()) << name;
    EXPECT_FALSE(p->output_set().empty()) << name;  // g has edges everywhere
    // The direct predicate cross-check: MIS protocols produce an MIS of g;
    // the matching protocol's vertex output is checked via its edges in
    // verify_output (a matched-vertex set alone does not determine pairs).
    if (name != "matching") {
      EXPECT_TRUE(is_mis(g, p->output_set())) << name;
    }
    // settled() must cover the whole graph at the fixed point.
    for (Vertex u = 0; u < g.num_vertices(); ++u)
      EXPECT_TRUE(p->settled(u)) << name << " vertex " << u;
  }
}

TEST(Registry, ShardingIsBitIdenticalForEveryProtocol) {
  // n = 512 with a dense-enough worklist: unlike the 96-vertex golden
  // graph, this engages the engine's sharded decide (kShardGrain = 256).
  // The sharded run additionally steps on COMPRESSED storage, so parallel
  // stepping through the decode scratch is what is being race- and
  // bit-checked, not just the sequential path.
  const Graph g = gen::gnp(512, 0.02, 17);
  const Graph c = Graph::compress(g);
  const ProtocolParams params;
  for (const std::string& name : ProtocolRegistry::instance().names()) {
    const auto seq = ProtocolRegistry::instance().make(name, g, params, 3);
    const auto par = ProtocolRegistry::instance().make(name, c, params, 3);
    par->set_shards(4);
    for (int r = 0; r < 40; ++r) {
      seq->step();
      par->step();
      for (Vertex u = 0; u < g.num_vertices(); ++u)
        ASSERT_EQ(seq->raw_state(u), par->raw_state(u))
            << name << " diverged at round " << r;
    }
  }
}

TEST(Registry, EveryProtocolRecoversFromInjectedFaults) {
  const Graph g = gen::gnp(48, 0.12, 19);
  const ProtocolParams params;
  for (const std::string& name : ProtocolRegistry::instance().names()) {
    const auto p = ProtocolRegistry::instance().make(name, g, params, 23);
    ASSERT_TRUE(p->run(500000, TraceMode::kNone).stabilized) << name;
    const CoinOracle coins(71);
    int corrupted = 0;
    for (Vertex u = 0; u < g.num_vertices(); ++u) {
      if (!coins.bernoulli(0, u, CoinTag::kFault, 0.5)) continue;
      if (p->inject_fault(u, coins.word(1, u, CoinTag::kFault))) ++corrupted;
    }
    ASSERT_GT(corrupted, 0);
    ASSERT_TRUE(p->run(500000, TraceMode::kNone).stabilized)
        << name << " did not re-stabilize";
    EXPECT_NO_THROW(p->verify_output()) << name;
  }
}

// --- error handling: typos must be loud -----------------------------------

TEST(Registry, UnknownProtocolThrowsListingNames) {
  const Graph g = gen::path(4);
  const ProtocolParams params;
  try {
    ProtocolRegistry::instance().make("2sate", g, params, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2sate"), std::string::npos);
    EXPECT_NE(what.find("2state"), std::string::npos);  // the valid list
  }
}

TEST(Registry, UnknownProtocolOptionThrowsListingValidOnes) {
  const Graph g = gen::path(4);
  ProtocolParams params;
  params.set("black-bais", "0.3");  // typo'd black-bias
  try {
    ProtocolRegistry::instance().make("2state-variant", g, params, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("black-bais"), std::string::npos);
    EXPECT_NE(what.find("black-bias"), std::string::npos);
  }
  // Protocols that take no options say so.
  ProtocolParams stray;
  stray.set("loss", "0.1");
  EXPECT_THROW(ProtocolRegistry::instance().make("2state", g, stray, 1),
               std::invalid_argument);
}

TEST(Registry, MalformedOptionValuesThrow) {
  const Graph g = gen::path(4);
  ProtocolParams params;
  params.set("black-bias", "zz");
  EXPECT_THROW(ProtocolRegistry::instance().make("2state-variant", g, params, 1),
               std::invalid_argument);
}

TEST(Registry, DuplicateRegistrationThrows) {
  ProtocolRegistry local;
  const auto factory = [](const Graph&, const ProtocolParams&, std::uint64_t) {
    return std::unique_ptr<Process>();
  };
  local.add("x", "first", {}, factory);
  EXPECT_THROW(local.add("x", "second", {}, factory), std::logic_error);
  EXPECT_EQ(local.names(), std::vector<std::string>{"x"});
}

// The harness wraps every registered protocol: traced runs and per-vertex
// settle tables work for names the enum era could not express.
TEST(Registry, HarnessTracesNonEnumEraProtocols) {
  const Graph g = gen::gnp(40, 0.12, 29);
  for (const char* name : {"beeping", "daemon", "matching", "priority"}) {
    MeasureConfig config;
    config.protocol = name;
    config.seed = 7;
    config.max_rounds = 500000;
    const RunResult r = traced_run(g, config);
    ASSERT_TRUE(r.stabilized) << name;
    ASSERT_FALSE(r.trace.empty()) << name;
    EXPECT_EQ(r.trace.back().round, r.rounds) << name;
  }
}

}  // namespace
}  // namespace ssmis
