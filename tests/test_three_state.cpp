#include <gtest/gtest.h>

#include "core/init.hpp"
#include "core/runner.hpp"
#include "core/three_state.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "reference_processes.hpp"

namespace ssmis {
namespace {

std::vector<Color3> colors_of(const char* pattern, Vertex n) {
  // 'w' = white, '0' = black0, '1' = black1.
  std::vector<Color3> out(static_cast<std::size_t>(n));
  for (Vertex u = 0; u < n; ++u) {
    switch (pattern[u]) {
      case '0': out[static_cast<std::size_t>(u)] = Color3::kBlack0; break;
      case '1': out[static_cast<std::size_t>(u)] = Color3::kBlack1; break;
      default: out[static_cast<std::size_t>(u)] = Color3::kWhite; break;
    }
  }
  return out;
}

TEST(ThreeState, InitSizeMismatchThrows) {
  const Graph g = gen::path(3);
  EXPECT_THROW(ThreeStateMIS(g, colors_of("w", 1), CoinOracle(1)), std::invalid_argument);
}

TEST(ThreeState, ActivePredicateDefinition5) {
  const Graph g = gen::path(4);  // 0-1-2-3
  const ThreeStateMIS p(g, colors_of("10ww", 4), CoinOracle(1));
  // 0 = black1: always active.
  EXPECT_TRUE(p.active(0));
  // 1 = black0 with black1 neighbor: NOT active (will turn white).
  EXPECT_FALSE(p.active(1));
  // 2 = white with black neighbor (vertex 1 is black0): not active.
  EXPECT_FALSE(p.active(2));
  // 3 = white with all-white neighborhood: active.
  EXPECT_TRUE(p.active(3));
}

TEST(ThreeState, Black0WithBlack1NeighborTurnsWhite) {
  const Graph g = gen::path(2);
  ThreeStateMIS p(g, colors_of("10", 2), CoinOracle(5));
  p.step();
  EXPECT_EQ(p.color(1), Color3::kWhite);
  EXPECT_TRUE(p.black(0));  // black1 resamples within {black1, black0}
}

TEST(ThreeState, Black0WithoutBlack1NeighborResamples) {
  // Two adjacent black0 vertices: both active, both stay black.
  const Graph g = gen::path(2);
  ThreeStateMIS p(g, colors_of("00", 2), CoinOracle(5));
  p.step();
  EXPECT_TRUE(p.black(0));
  EXPECT_TRUE(p.black(1));
}

TEST(ThreeState, StableBlackAlternatesButStaysBlack) {
  // Singleton black vertex: perpetually resamples within {black1, black0}.
  const Graph g = Graph::from_edges(1, {});
  ThreeStateMIS p(g, colors_of("1", 1), CoinOracle(9));
  bool saw_black0 = false;
  bool saw_black1 = false;
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(p.black(0));
    EXPECT_TRUE(p.stabilized());
    if (p.color(0) == Color3::kBlack0) saw_black0 = true;
    if (p.color(0) == Color3::kBlack1) saw_black1 = true;
    p.step();
  }
  EXPECT_TRUE(saw_black0);
  EXPECT_TRUE(saw_black1);
}

TEST(ThreeState, MatchesReferenceImplementation) {
  const Graph g = gen::gnp(50, 0.12, 29);
  const CoinOracle coins(101);
  std::vector<Color3> ref = make_init3(g, InitPattern::kUniformRandom, coins);
  ThreeStateMIS p(g, ref, coins);
  for (std::int64_t t = 1; t <= 200; ++t) {
    p.step();
    ref = testing::reference_step3(g, ref, coins, t);
    ASSERT_EQ(p.colors(), ref) << "diverged at round " << t;
  }
}

TEST(ThreeState, MatchesReferenceOnCliqueFromAllBlack1) {
  const Graph g = gen::complete(16);
  const CoinOracle coins(31);
  std::vector<Color3> ref(16, Color3::kBlack1);
  ThreeStateMIS p(g, ref, coins);
  for (std::int64_t t = 1; t <= 100; ++t) {
    p.step();
    ref = testing::reference_step3(g, ref, coins, t);
    ASSERT_EQ(p.colors(), ref);
  }
}

TEST(ThreeState, StabilizedIffBlackSetIsMis) {
  const Graph g = gen::gnp(40, 0.15, 47);
  const CoinOracle coins(3);
  ThreeStateMIS p(g, make_init3(g, InitPattern::kUniformRandom, coins), coins);
  for (int i = 0; i < 5000 && !p.stabilized(); ++i) {
    EXPECT_FALSE(is_mis(g, p.black_set()));
    p.step();
  }
  ASSERT_TRUE(p.stabilized());
  EXPECT_TRUE(is_mis(g, p.black_set()));
}

TEST(ThreeState, BlackSetFrozenAfterStabilization) {
  const Graph g = gen::gnp(30, 0.2, 7);
  const CoinOracle coins(5);
  ThreeStateMIS p(g, make_init3(g, InitPattern::kAllBlack, coins), coins);
  const RunResult r = run_until_stabilized(p, 100000);
  ASSERT_TRUE(r.stabilized);
  const auto mis = p.black_set();
  for (int i = 0; i < 100; ++i) {
    p.step();
    ASSERT_EQ(p.black_set(), mis);
  }
}

TEST(ThreeState, IsolatedWhiteVertexBecomesBlack) {
  // The documented isolated-vertex reading: an isolated white vertex is
  // active and joins the MIS.
  const Graph g = Graph::from_edges(2, {});
  ThreeStateMIS p(g, colors_of("ww", 2), CoinOracle(3));
  const RunResult r = run_until_stabilized(p, 100);
  ASSERT_TRUE(r.stabilized);
  EXPECT_TRUE(p.black(0));
  EXPECT_TRUE(p.black(1));
}

TEST(ThreeState, AllInitPatternsStabilize) {
  const Graph g = gen::gnp(60, 0.1, 59);
  for (InitPattern pattern : all_init_patterns()) {
    const CoinOracle coins(67);
    ThreeStateMIS p(g, make_init3(g, pattern, coins), coins);
    const RunResult r = run_until_stabilized(p, 50000);
    ASSERT_TRUE(r.stabilized) << to_string(pattern);
    EXPECT_TRUE(is_mis(g, p.black_set())) << to_string(pattern);
  }
}

TEST(ThreeState, CountsConsistent) {
  const Graph g = gen::gnp(35, 0.15, 61);
  const CoinOracle coins(71);
  ThreeStateMIS p(g, make_init3(g, InitPattern::kAlternating, coins), coins);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(static_cast<std::size_t>(p.num_black()), p.black_set().size());
    Vertex active = 0;
    for (Vertex u = 0; u < 35; ++u)
      if (p.active(u)) ++active;
    EXPECT_EQ(p.num_active(), active);
    p.step();
  }
}

TEST(ThreeState, ForceColorRebuildsCounters) {
  const Graph g = gen::path(3);
  ThreeStateMIS p(g, colors_of("1w1", 3), CoinOracle(1));
  EXPECT_TRUE(p.stabilized());
  p.force_color(1, Color3::kBlack0);
  EXPECT_FALSE(p.stabilized());
  EXPECT_EQ(p.black1_neighbor_count(1), 2);
  EXPECT_EQ(p.black_neighbor_count(0), 1);
}

TEST(ThreeState, RemarkTenCliqueNoEmptyBlackSetOnceBlack) {
  // Remark 10's key fact: on K_n, once B_t != {} it never empties (black1
  // vertices resample to black; black0 may turn white only if a black1
  // neighbor persists). Spot-check over many seeds.
  const Graph g = gen::complete(12);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const CoinOracle coins(seed);
    ThreeStateMIS p(g, make_init3(g, InitPattern::kUniformRandom, coins), coins);
    bool seen_black = p.num_black() > 0;
    for (int i = 0; i < 100; ++i) {
      p.step();
      if (seen_black) {
        ASSERT_GT(p.num_black(), 0) << "seed " << seed;
      }
      if (p.num_black() > 0) seen_black = true;
    }
  }
}

}  // namespace
}  // namespace ssmis
