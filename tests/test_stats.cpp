#include <gtest/gtest.h>

#include <cmath>

#include "stats/fit.hpp"
#include "stats/summary.hpp"
#include "stats/tail.hpp"

namespace ssmis {
namespace {

TEST(StreamingStats, MeanAndVariance) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StreamingStats, EmptyAndSingle) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Quantile, InterpolatesLinearly) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0 / 3.0), 2.0);
}

TEST(Quantile, Validation) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.1), std::invalid_argument);
}

TEST(Quantile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(quantile({9.0, 1.0, 5.0}, 0.5), 5.0);
}

TEST(Summarize, FullSummary) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 100);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
}

TEST(Summarize, EmptyIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Bootstrap, CoversTrueMean) {
  // Samples from a known distribution: CI should straddle the sample mean.
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(static_cast<double>(i % 10));
  const auto ci = bootstrap_mean_ci(v, 0.95, 500, 42);
  EXPECT_LT(ci.low, 4.5);
  EXPECT_GT(ci.high, 4.5);
  EXPECT_LT(ci.high - ci.low, 2.0);
}

TEST(Bootstrap, Validation) {
  EXPECT_THROW(bootstrap_mean_ci({}, 0.95, 100, 1), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci({1.0}, 1.5, 100, 1), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci({1.0}, 0.95, 1, 1), std::invalid_argument);
}

TEST(FitLinear, ExactLine) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y;
  for (double xi : x) y.push_back(3.0 * xi + 2.0);
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(FitLinear, NoisyLineHighR2) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i + ((i % 2 == 0) ? 0.5 : -0.5));
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 0.01);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(FitLinear, ConstantXDegenerates) {
  const LinearFit fit = fit_linear({2, 2, 2}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(FitLinear, Validation) {
  EXPECT_THROW(fit_linear({1}, {1}), std::invalid_argument);
  EXPECT_THROW(fit_linear({1, 2}, {1}), std::invalid_argument);
}

TEST(RatioSpread, FlatRatiosGiveOne) {
  EXPECT_NEAR(ratio_spread({1, 2, 4}, {3, 6, 12}), 1.0, 1e-12);
}

TEST(RatioSpread, DetectsDrift) {
  // y = x^2 against x: ratios 1, 2, 4 -> spread 4.
  EXPECT_NEAR(ratio_spread({1, 2, 4}, {1, 4, 16}), 4.0, 1e-12);
}

TEST(RatioSpread, IgnoresNonPositiveX) {
  EXPECT_NEAR(ratio_spread({0, 1, 2}, {99, 3, 6}), 1.0, 1e-12);
}

TEST(Tail, EmpiricalCounts) {
  const std::vector<double> samples = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto tail = empirical_tail(samples, {0.0, 5.0, 8.5, 11.0});
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_DOUBLE_EQ(tail[0].probability, 1.0);
  EXPECT_DOUBLE_EQ(tail[1].probability, 0.6);
  EXPECT_DOUBLE_EQ(tail[2].probability, 0.2);
  EXPECT_DOUBLE_EQ(tail[3].probability, 0.0);
}

TEST(Tail, GeometricDecayDetected) {
  // P[X >= k] = 2^-k at thresholds 0..6: decay ratio 0.5.
  std::vector<double> samples;
  for (int k = 0; k < 12; ++k)
    for (int copies = 0; copies < (1 << (11 - k)); ++copies)
      samples.push_back(static_cast<double>(k));
  std::vector<double> thresholds;
  for (int k = 0; k <= 6; ++k) thresholds.push_back(static_cast<double>(k));
  const auto tail = empirical_tail(samples, thresholds);
  const double decay = mean_tail_decay(tail);
  EXPECT_NEAR(decay, 0.5, 0.02);
}

TEST(Tail, DecayZeroWhenDegenerate) {
  EXPECT_DOUBLE_EQ(mean_tail_decay({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_tail_decay({{0.0, 0.0, 0}}), 0.0);
}

}  // namespace
}  // namespace ssmis
