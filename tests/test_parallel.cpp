// Determinism regression tests for the parallel trial runtime.
//
// The contract under test (ISSUE 2 / docs/architecture.md "Parallel
// runtime"): sharded engine stepping and batched trial scheduling are pure
// throughput knobs — trajectories, Measurements, and every per-trial
// artifact are bit-identical at any thread/shard count, for every rule
// (all five MIS processes and both communication-model simulators).
//
// The shard counts exercised include values above the host's core count
// (oversubscription must not change results either) and can be raised via
// the SSMIS_TEST_THREADS environment variable — the CI ThreadSanitizer job
// runs this suite with SSMIS_TEST_THREADS=4 to race-check the pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/daemon.hpp"
#include "core/init.hpp"
#include "core/three_color.hpp"
#include "core/three_state.hpp"
#include "core/two_state.hpp"
#include "core/two_state_variant.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "harness/trial_batch.hpp"
#include "models/beeping.hpp"
#include "models/mis_automata.hpp"
#include "models/stone_age.hpp"
#include "support/thread_pool.hpp"

namespace ssmis {
namespace {

int env_threads() {
  const char* s = std::getenv("SSMIS_TEST_THREADS");
  if (s == nullptr) return 8;
  const int v = std::atoi(s);
  return v >= 1 ? v : 8;
}

// A graph big enough that the engine's shard grain (kShardGrain = 256) is
// exceeded and decide really fans out.
const Graph& test_graph() {
  static const Graph g = gen::gnp(2048, 0.004, 99);
  return g;
}

// Steps `make()`-constructed processes side by side, sequential vs sharded,
// asserting bit-identical colors every round.
template <typename Make>
void expect_sharded_identical(Make make, int rounds) {
  for (int shards : {2, env_threads()}) {
    auto seq = make();
    auto par = make();
    par->set_shards(shards);
    for (int r = 0; r < rounds; ++r) {
      seq->step();
      par->step();
      ASSERT_EQ(seq->colors(), par->colors())
          << "diverged at round " << r << " with " << shards << " shards";
    }
  }
}

TEST(ShardedStepping, TwoStateBitIdentical) {
  const Graph& g = test_graph();
  expect_sharded_identical(
      [&] {
        const CoinOracle coins(7);
        return std::make_unique<TwoStateMIS>(
            g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
      },
      60);
}

TEST(ShardedStepping, TwoStateVariantBitIdentical) {
  const Graph& g = test_graph();
  expect_sharded_identical(
      [&] {
        const CoinOracle coins(11);
        return std::make_unique<TwoStateVariant>(
            g, make_init2(g, InitPattern::kUniformRandom, coins), coins, 0.25,
            true);
      },
      60);
}

TEST(ShardedStepping, ThreeStateBitIdentical) {
  const Graph& g = test_graph();
  expect_sharded_identical(
      [&] {
        const CoinOracle coins(13);
        return std::make_unique<ThreeStateMIS>(
            g, make_init3(g, InitPattern::kUniformRandom, coins), coins);
      },
      60);
}

TEST(ShardedStepping, ThreeColorBitIdentical) {
  const Graph& g = test_graph();
  for (int shards : {2, env_threads()}) {
    const CoinOracle coins(17);
    auto seq = ThreeColorMIS::with_randomized_switch(
        g, make_init_g(g, InitPattern::kUniformRandom, coins), coins);
    auto par = ThreeColorMIS::with_randomized_switch(
        g, make_init_g(g, InitPattern::kUniformRandom, coins), coins);
    par.set_shards(shards);
    for (int r = 0; r < 60; ++r) {
      seq.step();
      par.step();
      ASSERT_EQ(seq.colors(), par.colors()) << "round " << r;
      ASSERT_EQ(seq.num_gray(), par.num_gray()) << "round " << r;
    }
  }
}

// The aggregates are maintained incrementally through the same merged apply
// pass — check them against the sequential run, not just the colors.
TEST(ShardedStepping, AggregatesMatchSequential) {
  const Graph& g = test_graph();
  const CoinOracle coins(23);
  TwoStateMIS seq(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
  TwoStateMIS par(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
  par.set_shards(env_threads());
  for (int r = 0; r < 80; ++r) {
    seq.step();
    par.step();
    ASSERT_EQ(seq.num_black(), par.num_black());
    ASSERT_EQ(seq.num_active(), par.num_active());
    ASSERT_EQ(seq.num_stable_black(), par.num_stable_black());
    ASSERT_EQ(seq.num_unstable(), par.num_unstable());
    ASSERT_EQ(seq.engine().num_scheduled(), par.engine().num_scheduled());
  }
}

TEST(ShardedStepping, DaemonSubsetTransitionsBitIdentical) {
  const Graph& g = test_graph();
  for (int shards : {2, env_threads()}) {
    const CoinOracle coins(29);
    DaemonMIS seq(g, make_init2(g, InitPattern::kUniformRandom, coins),
                  std::make_unique<RandomSubsetDaemon>(0.7, 31), coins);
    DaemonMIS par(g, make_init2(g, InitPattern::kUniformRandom, coins),
                  std::make_unique<RandomSubsetDaemon>(0.7, 31), coins);
    par.set_shards(shards);
    for (int s = 0; s < 60 && !seq.stabilized(); ++s) {
      ASSERT_EQ(seq.step(), par.step()) << "step " << s;
      ASSERT_EQ(seq.colors(), par.colors()) << "step " << s;
    }
  }
}

TEST(ShardedStepping, BeepingNetworkBitIdentical) {
  const Graph& g = test_graph();
  const TwoStateBeepAutomaton automaton;
  for (int shards : {2, env_threads()}) {
    const CoinOracle coins(37);
    std::vector<std::uint8_t> init(static_cast<std::size_t>(g.num_vertices()),
                                   TwoStateBeepAutomaton::kBlack);
    BeepingNetwork seq(g, automaton, init, coins);
    BeepingNetwork par(g, automaton, init, coins);
    par.set_shards(shards);
    // Loss makes the transition draw an extra coin per heard vertex — the
    // parallel path must consume the identical pure-function coins.
    seq.set_loss_probability(0.05);
    par.set_loss_probability(0.05);
    for (int r = 0; r < 60; ++r) {
      seq.step();
      par.step();
      ASSERT_EQ(seq.states(), par.states()) << "round " << r;
      ASSERT_EQ(seq.total_beeps(), par.total_beeps()) << "round " << r;
    }
  }
}

TEST(ShardedStepping, StoneAgeNetworkBitIdentical) {
  const Graph& g = test_graph();
  const ThreeStateStoneAgeAutomaton automaton;
  for (int shards : {2, env_threads()}) {
    const CoinOracle coins(41);
    const auto c3 = make_init3(g, InitPattern::kUniformRandom, coins);
    std::vector<std::uint8_t> init(c3.size());
    for (std::size_t i = 0; i < c3.size(); ++i)
      init[i] = ThreeStateStoneAgeAutomaton::encode(c3[i]);
    StoneAgeNetwork seq(g, automaton, init, coins);
    StoneAgeNetwork par(g, automaton, init, coins);
    par.set_shards(shards);
    for (int r = 0; r < 60; ++r) {
      seq.step();
      par.step();
      ASSERT_EQ(seq.states(), par.states()) << "round " << r;
    }
  }
}

// Faults injected mid-run route through the same merged apply pass; the
// sharded engine must keep counters consistent across them.
TEST(ShardedStepping, ForceColorInterleavedBitIdentical) {
  const Graph& g = test_graph();
  const CoinOracle coins(43);
  TwoStateMIS seq(g, make_init2(g, InitPattern::kAllWhite, coins), coins);
  TwoStateMIS par(g, make_init2(g, InitPattern::kAllWhite, coins), coins);
  par.set_shards(env_threads());
  for (int r = 0; r < 40; ++r) {
    seq.step();
    par.step();
    if (r % 7 == 3) {
      const Vertex u = static_cast<Vertex>((r * 131) % g.num_vertices());
      seq.force_color(u, Color2::kBlack);
      par.force_color(u, Color2::kBlack);
    }
    ASSERT_EQ(seq.colors(), par.colors()) << "round " << r;
  }
}

// --- harness: batched trial scheduling ------------------------------------

void expect_measurements_equal(const Measurements& a, const Measurements& b,
                               const char* label) {
  EXPECT_EQ(a.stabilization_rounds, b.stabilization_rounds) << label;
  EXPECT_EQ(a.timeout_seeds, b.timeout_seeds) << label;
  EXPECT_EQ(a.timeouts, b.timeouts) << label;
  EXPECT_EQ(a.summary.count, b.summary.count) << label;
  EXPECT_EQ(a.summary.mean, b.summary.mean) << label;
  EXPECT_EQ(a.summary.p95, b.summary.p95) << label;
}

TEST(TrialBatchScheduling, MeasurementsIdenticalAcrossThreadCounts) {
  const Graph g = gen::gnp(256, 0.03, 5);
  for (const char* protocol : {"2state", "3state", "3color"}) {
    MeasureConfig config;
    config.protocol = protocol;
    config.trials = 12;
    config.seed = 100;
    config.max_rounds = 100000;
    const Measurements seq = measure_stabilization(g, config);
    for (int threads : {2, env_threads()}) {
      config.threads = threads;
      config.batch = true;
      const Measurements batched = measure_stabilization(g, config);
      expect_measurements_equal(seq, batched, "batched");
      config.batch = false;  // sharded stepping per trial instead
      const Measurements sharded = measure_stabilization(g, config);
      expect_measurements_equal(seq, sharded, "sharded");
    }
  }
}

TEST(TrialBatchScheduling, TimeoutSeedsReportedPerTrial) {
  // K_2 from all-black with a 0-round horizon: every trial times out, so
  // the timeout seeds must be exactly seed..seed+trials-1 in order.
  const Graph g = gen::complete(2);
  MeasureConfig config;
  config.init = InitPattern::kAllBlack;
  config.trials = 5;
  config.seed = 40;
  config.max_rounds = 0;
  for (int threads : {1, env_threads()}) {
    config.threads = threads;
    const Measurements m = measure_stabilization(g, config);
    EXPECT_EQ(m.timeouts, 5);
    EXPECT_EQ(m.timeout_seeds,
              (std::vector<std::uint64_t>{40, 41, 42, 43, 44}));
    EXPECT_TRUE(m.stabilization_rounds.empty());
  }
}

TEST(TrialBatchScheduling, VertexTimesBatchMatchesSequentialPerSeed) {
  const Graph g = gen::gnp(200, 0.04, 3);
  MeasureConfig config;
  config.trials = 6;
  config.seed = 55;
  config.max_rounds = 100000;
  config.threads = env_threads();
  const auto batched = vertex_stabilization_times_batch(g, config);
  ASSERT_EQ(batched.size(), 6u);
  for (int trial = 0; trial < 6; ++trial) {
    MeasureConfig one = config;
    one.threads = 1;
    one.seed = trial_seed(config, trial);
    EXPECT_EQ(batched[static_cast<std::size_t>(trial)],
              vertex_stabilization_times(g, one))
        << "trial " << trial;
  }
}

// --- the pool itself -------------------------------------------------------

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool& pool = ThreadPool::shared();
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(257, env_threads(),
                    [&](int i) { hits[static_cast<std::size_t>(i)]++; });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool& pool = ThreadPool::shared();
  std::atomic<int> total{0};
  pool.parallel_for(4, env_threads(), [&](int) {
    // Nested fan-out must degrade to an inline loop, not deadlock.
    pool.parallel_for(8, env_threads(), [&](int) { total++; });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, ExceptionsPropagateToSubmitter) {
  ThreadPool& pool = ThreadPool::shared();
  EXPECT_THROW(pool.parallel_for(16, env_threads(),
                                 [](int i) {
                                   if (i == 7)
                                     throw std::runtime_error("trial failed");
                                 }),
               std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<int> ran{0};
  pool.parallel_for(8, env_threads(), [&](int) { ran++; });
  EXPECT_EQ(ran.load(), 8);
}

TEST(TrialBatch, MapPreservesTrialOrder) {
  const TrialBatch batch(100, env_threads());
  const auto out = batch.map<int>([](int i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

}  // namespace
}  // namespace ssmis
