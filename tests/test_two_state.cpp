#include <gtest/gtest.h>

#include "core/init.hpp"
#include "core/runner.hpp"
#include "core/two_state.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "reference_processes.hpp"

namespace ssmis {
namespace {

std::vector<Color2> colors_of(const char* pattern, Vertex n) {
  // 'b'/'w' string shorthand for explicit initial states.
  std::vector<Color2> out(static_cast<std::size_t>(n));
  for (Vertex u = 0; u < n; ++u)
    out[static_cast<std::size_t>(u)] = pattern[u] == 'b' ? Color2::kBlack : Color2::kWhite;
  return out;
}

TEST(TwoState, InitSizeMismatchThrows) {
  const Graph g = gen::path(3);
  EXPECT_THROW(TwoStateMIS(g, colors_of("bw", 2), CoinOracle(1)), std::invalid_argument);
}

TEST(TwoState, ActivePredicateDefinition4) {
  const Graph g = gen::path(4);  // 0-1-2-3
  const TwoStateMIS p(g, colors_of("bbww", 4), CoinOracle(1));
  EXPECT_TRUE(p.active(0));   // black with black neighbor
  EXPECT_TRUE(p.active(1));   // black with black neighbor
  EXPECT_FALSE(p.active(2));  // white with black neighbor 1
  EXPECT_TRUE(p.active(3));   // white with no black neighbor
}

TEST(TwoState, BlackNeighborCountsMaintained) {
  const Graph g = gen::star(5);
  TwoStateMIS p(g, colors_of("wbbbb", 5), CoinOracle(2));
  EXPECT_EQ(p.black_neighbor_count(0), 4);
  EXPECT_EQ(p.black_neighbor_count(1), 0);
  p.force_color(1, Color2::kWhite);
  EXPECT_EQ(p.black_neighbor_count(0), 3);
}

TEST(TwoState, StableConfigurationIsFixedPoint) {
  // 0-1-2-3 with {0,2} black: an MIS. Nothing may ever change.
  const Graph g = gen::path(4);
  TwoStateMIS p(g, colors_of("bwbw", 4), CoinOracle(3));
  EXPECT_TRUE(p.stabilized());
  const auto before = p.colors();
  for (int i = 0; i < 50; ++i) p.step();
  EXPECT_EQ(p.colors(), before);
  EXPECT_EQ(p.round(), 50);
}

TEST(TwoState, StabilizedIffBlackSetIsMis) {
  const Graph g = gen::gnp(40, 0.15, 17);
  const CoinOracle coins(11);
  TwoStateMIS p(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
  for (int i = 0; i < 2000 && !p.stabilized(); ++i) {
    EXPECT_FALSE(is_mis(g, p.black_set()));
    p.step();
  }
  ASSERT_TRUE(p.stabilized());
  EXPECT_TRUE(is_mis(g, p.black_set()));
}

TEST(TwoState, MatchesReferenceImplementation) {
  // Differential test: the incremental-counter implementation must track the
  // naive Definition 4 transcription exactly, coin for coin.
  const Graph g = gen::gnp(50, 0.12, 23);
  const CoinOracle coins(99);
  std::vector<Color2> ref = make_init2(g, InitPattern::kUniformRandom, coins);
  TwoStateMIS p(g, ref, coins);
  for (std::int64_t t = 1; t <= 200; ++t) {
    p.step();
    ref = testing::reference_step2(g, ref, coins, t);
    ASSERT_EQ(p.colors(), ref) << "diverged at round " << t;
  }
}

TEST(TwoState, MatchesReferenceOnCliqueAndTree) {
  for (const Graph& g : {gen::complete(20), gen::random_tree(40, 5)}) {
    const CoinOracle coins(7);
    std::vector<Color2> ref = make_init2(g, InitPattern::kAllBlack, coins);
    TwoStateMIS p(g, ref, coins);
    for (std::int64_t t = 1; t <= 100; ++t) {
      p.step();
      ref = testing::reference_step2(g, ref, coins, t);
      ASSERT_EQ(p.colors(), ref);
    }
  }
}

TEST(TwoState, NonActiveVerticesNeverChange) {
  const Graph g = gen::gnp(30, 0.2, 31);
  const CoinOracle coins(13);
  TwoStateMIS p(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
  for (int i = 0; i < 100; ++i) {
    const auto before = p.colors();
    std::vector<bool> was_active(30);
    for (Vertex u = 0; u < 30; ++u) was_active[static_cast<std::size_t>(u)] = p.active(u);
    p.step();
    for (Vertex u = 0; u < 30; ++u) {
      if (!was_active[static_cast<std::size_t>(u)]) {
        ASSERT_EQ(p.color(u), before[static_cast<std::size_t>(u)]) << "vertex " << u;
      }
    }
  }
}

TEST(TwoState, StableBlackPersists) {
  const Graph g = gen::gnp(30, 0.2, 37);
  const CoinOracle coins(17);
  TwoStateMIS p(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
  std::vector<char> ever_stable(30, 0);
  for (int i = 0; i < 200; ++i) {
    for (Vertex u = 0; u < 30; ++u) {
      if (ever_stable[static_cast<std::size_t>(u)]) {
        ASSERT_TRUE(p.stable_black(u)) << "stable black vertex " << u << " regressed";
      }
      if (p.stable_black(u)) ever_stable[static_cast<std::size_t>(u)] = 1;
    }
    p.step();
  }
}

TEST(TwoState, UnstableCountMonotoneNonincreasing) {
  const Graph g = gen::gnp(40, 0.1, 41);
  const CoinOracle coins(19);
  TwoStateMIS p(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
  Vertex prev = p.num_unstable();
  for (int i = 0; i < 300; ++i) {
    p.step();
    const Vertex now = p.num_unstable();
    ASSERT_LE(now, prev);
    prev = now;
  }
}

TEST(TwoState, CountsAgreeWithSets) {
  const Graph g = gen::gnp(35, 0.15, 43);
  const CoinOracle coins(23);
  TwoStateMIS p(g, make_init2(g, InitPattern::kAlternating, coins), coins);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(static_cast<std::size_t>(p.num_black()), p.black_set().size());
    EXPECT_EQ(static_cast<std::size_t>(p.num_active()), p.active_set().size());
    EXPECT_EQ(static_cast<std::size_t>(p.num_stable_black()), p.stable_black_set().size());
    EXPECT_EQ(static_cast<std::size_t>(p.num_unstable()), p.unstable_set().size());
    p.step();
  }
}

TEST(TwoState, IsolatedVertexStabilizesBlack) {
  const Graph g = Graph::from_edges(1, {});
  TwoStateMIS p(g, {Color2::kWhite}, CoinOracle(5));
  RunResult r = run_until_stabilized(p, 100);
  ASSERT_TRUE(r.stabilized);
  EXPECT_EQ(p.color(0), Color2::kBlack);
}

TEST(TwoState, EmptyGraphIsStabilizedImmediately) {
  const Graph g = Graph::from_edges(0, {});
  TwoStateMIS p(g, {}, CoinOracle(5));
  EXPECT_TRUE(p.stabilized());
}

TEST(TwoState, K2FromBothBlackStabilizes) {
  const Graph g = gen::complete(2);
  TwoStateMIS p(g, colors_of("bb", 2), CoinOracle(8));
  const RunResult r = run_until_stabilized(p, 10000);
  ASSERT_TRUE(r.stabilized);
  EXPECT_TRUE(is_mis(g, p.black_set()));
  EXPECT_EQ(p.num_black(), 1);
}

TEST(TwoState, AllSixInitPatternsStabilizeOnGnp) {
  const Graph g = gen::gnp(60, 0.1, 53);
  for (InitPattern pattern : all_init_patterns()) {
    const CoinOracle coins(61);
    TwoStateMIS p(g, make_init2(g, pattern, coins), coins);
    const RunResult r = run_until_stabilized(p, 50000);
    ASSERT_TRUE(r.stabilized) << to_string(pattern);
    EXPECT_TRUE(is_mis(g, p.black_set())) << to_string(pattern);
  }
}

TEST(TwoState, DeterministicGivenSeed) {
  const Graph g = gen::gnp(40, 0.1, 3);
  const CoinOracle coins(123);
  TwoStateMIS a(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
  TwoStateMIS b(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
  for (int i = 0; i < 100; ++i) {
    a.step();
    b.step();
    ASSERT_EQ(a.colors(), b.colors());
  }
}

TEST(TwoState, ForceColorOutOfRangeThrows) {
  const Graph g = gen::path(3);
  TwoStateMIS p(g, colors_of("www", 3), CoinOracle(1));
  EXPECT_THROW(p.force_color(5, Color2::kBlack), std::out_of_range);
}

TEST(TwoState, ForceColorUpdatesActivity) {
  const Graph g = gen::path(3);
  TwoStateMIS p(g, colors_of("bwb", 3), CoinOracle(1));  // an MIS
  EXPECT_TRUE(p.stabilized());
  p.force_color(1, Color2::kBlack);  // now 0-1 and 1-2 conflict
  EXPECT_FALSE(p.stabilized());
  EXPECT_EQ(p.num_active(), 3);
}

TEST(TwoState, LemmaSixShapeOnStar) {
  // A 1-active vertex (hub active, one active neighbor) becomes stable
  // black within ~log(k+1)+1 rounds with constant probability: Monte Carlo
  // lower bound of Lemma 6 on a 2-vertex instance embedded in a star.
  const Graph g = gen::complete(2);
  int stable_quickly = 0;
  const int trials = 2000;
  for (int trial = 0; trial < trials; ++trial) {
    TwoStateMIS p(g, colors_of("bb", 2), CoinOracle(1000 + trial));
    p.step();  // round 1: both active -> both resample
    if (p.stable_black(0)) ++stable_quickly;
  }
  // P[vertex 0 black, vertex 1 white after one round] = 1/4 >= (2e*1)^-1 ≈ 0.18.
  EXPECT_GT(stable_quickly, trials / 5);
}

}  // namespace
}  // namespace ssmis
