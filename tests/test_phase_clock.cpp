#include <gtest/gtest.h>

#include <cmath>

#include "core/log_switch.hpp"
#include "core/phase_clock.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "reference_processes.hpp"

namespace ssmis {
namespace {

TEST(PhaseClock, ConstructorValidation) {
  const Graph g = gen::path(3);
  EXPECT_THROW(PhaseClock(g, 0, {0, 0, 0}, CoinOracle(1)), std::invalid_argument);
  EXPECT_THROW(PhaseClock(g, 3, {0, 0}, CoinOracle(1)), std::invalid_argument);
  EXPECT_THROW(PhaseClock(g, 3, {0, 0, 9}, CoinOracle(1)), std::invalid_argument);
  EXPECT_THROW(PhaseClock(g, 3, {0, 0, 0}, CoinOracle(1), 0, 7), std::invalid_argument);
  EXPECT_THROW(PhaseClock(g, 3, {0, 0, 0}, CoinOracle(1), 128, 7), std::invalid_argument);
  EXPECT_NO_THROW(PhaseClock(g, 3, {0, 5, 3}, CoinOracle(1)));
}

TEST(PhaseClock, StateCountIsDPlus3) {
  const Graph g = gen::path(3);
  const PhaseClock clock(g, 3, {0, 0, 0}, CoinOracle(1));
  EXPECT_EQ(clock.num_states(), 6);
  EXPECT_EQ(clock.top_level(), 5);
  const PhaseClock clock2(g, 2, {0, 0, 0}, CoinOracle(1));
  EXPECT_EQ(clock2.num_states(), 5);
}

TEST(PhaseClock, ZeroJumpsToTop) {
  const Graph g = Graph::from_edges(1, {});
  PhaseClock clock(g, 3, {0}, CoinOracle(1));
  clock.step();
  EXPECT_EQ(clock.level(0), 5);
}

TEST(PhaseClock, CountdownPropagatesMax) {
  // Path 0-1-2 with levels 3, 1, 1: vertex 1 sees max(3,1,1)-1 = 2.
  const Graph g = gen::path(3);
  PhaseClock clock(g, 3, {3, 1, 1}, CoinOracle(1));
  clock.step();
  EXPECT_EQ(clock.level(0), 2);  // max(3,1)-1
  EXPECT_EQ(clock.level(1), 2);  // max(3,1,1)-1
  EXPECT_EQ(clock.level(2), 0);  // max(1,1)-1
}

TEST(PhaseClock, MatchesReferenceImplementation) {
  const Graph g = gen::gnp(40, 0.15, 13);
  const CoinOracle coins(55);
  PhaseClock clock = PhaseClock::with_random_levels(g, 3, coins);
  std::vector<int> ref = clock.levels();
  for (std::int64_t t = 1; t <= 300; ++t) {
    clock.step();
    ref = testing::reference_clock_step(g, ref, coins, t, 3);
    ASSERT_EQ(clock.levels(), ref) << "diverged at round " << t;
  }
}

TEST(PhaseClock, TopVertexStaysWithHighProbability) {
  // zeta = 2^-7: a top-level isolated vertex advances rarely.
  const Graph g = Graph::from_edges(1, {});
  PhaseClock clock(g, 3, {5}, CoinOracle(2));
  int stays = 0;
  const int rounds = 1000;
  for (int i = 0; i < rounds; ++i) {
    const int before = clock.level(0);
    clock.step();
    if (before == 5 && clock.level(0) == 5) ++stays;
  }
  EXPECT_GT(stays, 900);  // expect ~ (1 - 1/128) of top rounds
}

TEST(PhaseClock, SynchronizesOnDiameterTwoGraph) {
  // Lemma 27's synchronization argument: on diam <= 2 graphs, once some
  // vertex hits top, within a few rounds all vertices move in lockstep:
  // whenever any vertex is at level 2, all are.
  const Graph g = gen::star(20);  // diameter 2
  const CoinOracle coins(77);
  PhaseClock clock = PhaseClock::with_random_levels(g, 3, coins);
  for (int i = 0; i < 30; ++i) clock.step();  // warm-up >= t* + 2
  for (int i = 0; i < 500; ++i) {
    clock.step();
    bool any2 = false, all2 = true;
    for (Vertex u = 0; u < 20; ++u) {
      if (clock.level(u) == 2) any2 = true;
      else all2 = false;
    }
    if (any2) {
      ASSERT_TRUE(all2) << "round " << clock.round();
    }
  }
}

TEST(PhaseClock, ForceLevelValidation) {
  const Graph g = gen::path(2);
  PhaseClock clock(g, 3, {0, 0}, CoinOracle(1));
  EXPECT_THROW(clock.force_level(5, 2), std::out_of_range);
  EXPECT_THROW(clock.force_level(0, 9), std::invalid_argument);
  clock.force_level(0, 4);
  EXPECT_EQ(clock.level(0), 4);
}

TEST(LogSwitch, SigmaMappingOnIffLevelAtMost2) {
  const Graph g = gen::path(6);
  RandomizedLogSwitch sw(g, {0, 1, 2, 3, 4, 5}, CoinOracle(1));
  EXPECT_TRUE(sw.on(0));
  EXPECT_TRUE(sw.on(1));
  EXPECT_TRUE(sw.on(2));
  EXPECT_FALSE(sw.on(3));
  EXPECT_FALSE(sw.on(4));
  EXPECT_FALSE(sw.on(5));
}

TEST(LogSwitch, UsesSixStatesAndDefaultZeta) {
  const Graph g = gen::path(2);
  RandomizedLogSwitch sw(g, CoinOracle(1));
  EXPECT_EQ(sw.num_states(), 6);
  EXPECT_DOUBLE_EQ(sw.clock().zeta(), 1.0 / 128.0);
  EXPECT_DOUBLE_EQ(sw.parameter_a(), 512.0);
}

TEST(LogSwitch, S1MaxOffRunBounded) {
  // Property S1 with a = 512: off-runs at most a ln n. On n = 32 that is
  // ~1774 rounds; we run 4000 rounds and check the bound.
  const Graph g = gen::gnp(32, 0.3, 3);
  RandomizedLogSwitch sw(g, CoinOracle(5));
  const auto stats = measure_switch_runs(sw, 32, 4000, 0);
  const double bound = sw.parameter_a() * std::log(32.0);
  EXPECT_LE(static_cast<double>(stats.max_off_run), bound);
}

TEST(LogSwitch, S3OnRunsShortOnDiameterTwoGraphs) {
  // Property S3: after constant warm-up, on-runs last at most b = 3 rounds.
  for (const Graph& g : {gen::star(24), gen::complete(24), gen::gnp(48, 0.5, 9)}) {
    ASSERT_TRUE(has_diameter_at_most_2(g));
    RandomizedLogSwitch sw(g, CoinOracle(11));
    const auto stats =
        measure_switch_runs(sw, g.num_vertices(), 3000, /*warmup=*/10);
    EXPECT_LE(stats.max_on_run, 3) << g.summary();
  }
}

TEST(LogSwitch, S2OffRunsLongOnDiameterTwoGraphs) {
  // Property S2: off-runs at least (a/6) ln n; with a = 512 and n = 24 that
  // is ≈ 271 rounds. The lemma is asymptotic (failure probability O(n^-2));
  // at n = 24 a single cycle misses the exact constant a few percent of the
  // time, so the test asserts a conservative half of the bound, which the
  // analysis puts at ~3e-5 per cycle.
  const Graph g = gen::complete(24);
  RandomizedLogSwitch sw(g, CoinOracle(13));
  const auto stats = measure_switch_runs(sw, 24, 20000, /*warmup=*/50);
  const double s2_bound = sw.parameter_a() / 6.0 * std::log(24.0);
  EXPECT_GE(static_cast<double>(stats.min_completed_off_run), 0.5 * s2_bound);
}

TEST(LogSwitch, PathViolatesS3) {
  // On a long path (diameter >> 2) S3 need not hold: distant segments run
  // unsynchronized and some vertex stays on for more than b = 3 rounds.
  const Graph g = gen::path(200);
  RandomizedLogSwitch sw(g, CoinOracle(17));
  const auto stats = measure_switch_runs(sw, 200, 3000, /*warmup=*/10);
  EXPECT_GT(stats.max_on_run, 3);
}

TEST(PeriodicSwitch, CyclesDeterministically) {
  PeriodicSwitch sw(3, 2);
  std::vector<bool> observed;
  for (int i = 0; i < 10; ++i) {
    observed.push_back(sw.on(0));
    sw.step();
  }
  const std::vector<bool> expect = {false, false, false, true, true,
                                    false, false, false, true, true};
  EXPECT_EQ(observed, expect);
}

TEST(PeriodicSwitch, Validation) {
  EXPECT_THROW(PeriodicSwitch(-1, 2), std::invalid_argument);
  EXPECT_THROW(PeriodicSwitch(3, 0), std::invalid_argument);
}

TEST(DegenerateSwitches, AlwaysAndNever) {
  AlwaysOnSwitch on;
  NeverOnSwitch off;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(on.on(0));
    EXPECT_FALSE(off.on(0));
    on.step();
    off.step();
  }
  EXPECT_EQ(on.round(), 5);
  EXPECT_EQ(off.round(), 5);
}

TEST(PhaseClockSwitch, GeneralizedMapping) {
  const Graph g = gen::path(2);
  PhaseClockSwitch sw(g, 2, CoinOracle(1));
  EXPECT_EQ(sw.num_states(), 5);
  sw.clock().force_level(0, 1);
  sw.clock().force_level(1, 2);
  EXPECT_TRUE(sw.on(0));   // level 1 <= d-1 = 1
  EXPECT_FALSE(sw.on(1));  // level 2 > 1
}

TEST(MeasureSwitchRuns, CountsRunsOfPeriodicSwitch) {
  PeriodicSwitch sw(4, 2);
  const auto stats = measure_switch_runs(sw, 1, 60, 0);
  EXPECT_EQ(stats.max_off_run, 4);
  EXPECT_EQ(stats.min_completed_off_run, 4);
  EXPECT_EQ(stats.max_on_run, 2);
}

}  // namespace
}  // namespace ssmis
