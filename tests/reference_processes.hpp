// Naive reference implementations of the paper's update rules, written
// directly from Definitions 4, 5, 26 and 28 with no incremental-counter
// optimizations. The unit tests run the optimized library processes against
// these references round-by-round (differential testing): both consume the
// same CoinOracle words, so states must match exactly.
#pragma once

#include <vector>

#include "core/color.hpp"
#include "graph/graph.hpp"
#include "rng/coin_oracle.hpp"

namespace ssmis::testing {

// Definition 4, literal transcription.
inline std::vector<Color2> reference_step2(const Graph& g,
                                           const std::vector<Color2>& c,
                                           const CoinOracle& coins,
                                           std::int64_t t) {
  std::vector<Color2> next = c;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    bool has_black_neighbor = false;
    for (Vertex v : g.neighbors(u))
      if (c[static_cast<std::size_t>(v)] == Color2::kBlack) has_black_neighbor = true;
    const bool active =
        (c[static_cast<std::size_t>(u)] == Color2::kBlack && has_black_neighbor) ||
        (c[static_cast<std::size_t>(u)] == Color2::kWhite && !has_black_neighbor);
    if (active) {
      next[static_cast<std::size_t>(u)] =
          coins.fair_coin(t, u) ? Color2::kBlack : Color2::kWhite;
    }
  }
  return next;
}

// Definition 5, with the isolated-vertex reading documented in
// three_state.hpp ("white with no black neighbor" rather than NC == {white}).
inline std::vector<Color3> reference_step3(const Graph& g,
                                           const std::vector<Color3>& c,
                                           const CoinOracle& coins,
                                           std::int64_t t) {
  std::vector<Color3> next = c;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    bool heard_black1 = false;
    bool heard_black = false;
    for (Vertex v : g.neighbors(u)) {
      const Color3 cv = c[static_cast<std::size_t>(v)];
      if (cv == Color3::kBlack1) heard_black1 = true;
      if (cv != Color3::kWhite) heard_black = true;
    }
    const Color3 cu = c[static_cast<std::size_t>(u)];
    const bool active = cu == Color3::kBlack1 ||
                        (cu == Color3::kBlack0 && !heard_black1) ||
                        (cu == Color3::kWhite && !heard_black);
    if (active) {
      next[static_cast<std::size_t>(u)] =
          coins.fair_coin(t, u) ? Color3::kBlack1 : Color3::kBlack0;
    } else if (cu == Color3::kBlack0) {
      next[static_cast<std::size_t>(u)] = Color3::kWhite;
    }
  }
  return next;
}

// Definition 26 phase-clock step for arbitrary D.
inline std::vector<int> reference_clock_step(const Graph& g,
                                             const std::vector<int>& levels,
                                             const CoinOracle& coins, std::int64_t t,
                                             int d, std::uint64_t zeta_num = 1,
                                             unsigned zeta_log2_den = 7) {
  const int top = d + 2;
  std::vector<int> next(levels.size());
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    const int lvl = levels[static_cast<std::size_t>(u)];
    bool reset = false;
    if (lvl == top) {
      const bool b_zero =
          coins.dyadic_bernoulli(t, u, CoinTag::kSwitchBit, zeta_num, zeta_log2_den);
      reset = !b_zero;
    }
    if (lvl == 0) reset = true;
    if (reset) {
      next[static_cast<std::size_t>(u)] = top;
    } else {
      int mx = lvl;
      for (Vertex v : g.neighbors(u))
        mx = std::max(mx, levels[static_cast<std::size_t>(v)]);
      next[static_cast<std::size_t>(u)] = mx - 1;
    }
  }
  return next;
}

// Definition 28 color step given the previous round's switch values.
inline std::vector<ColorG> reference_step_g(const Graph& g,
                                            const std::vector<ColorG>& c,
                                            const std::vector<char>& sigma_on,
                                            const CoinOracle& coins, std::int64_t t) {
  std::vector<ColorG> next = c;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    bool heard_black = false;
    for (Vertex v : g.neighbors(u))
      if (c[static_cast<std::size_t>(v)] == ColorG::kBlack) heard_black = true;
    const ColorG cu = c[static_cast<std::size_t>(u)];
    if (cu == ColorG::kBlack && heard_black) {
      next[static_cast<std::size_t>(u)] =
          coins.fair_coin(t, u) ? ColorG::kBlack : ColorG::kGray;
    } else if (cu == ColorG::kWhite && !heard_black) {
      next[static_cast<std::size_t>(u)] =
          coins.fair_coin(t, u) ? ColorG::kBlack : ColorG::kWhite;
    } else if (cu == ColorG::kGray && sigma_on[static_cast<std::size_t>(u)]) {
      next[static_cast<std::size_t>(u)] = ColorG::kWhite;
    }
  }
  return next;
}

}  // namespace ssmis::testing
