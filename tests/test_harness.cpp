#include <gtest/gtest.h>

#include <set>

#include "core/verify.hpp"
#include "graph/algorithms.hpp"
#include "harness/suites.hpp"

namespace ssmis {
namespace {

TEST(Suites, SmallSuiteIsDiverseAndValid) {
  const auto suite = small_suite(2024);
  EXPECT_GE(suite.size(), 15u);
  std::set<std::string> names;
  for (const auto& cell : suite) {
    EXPECT_GT(cell.graph.num_vertices(), 0) << cell.name;
    EXPECT_TRUE(names.insert(cell.name).second) << "duplicate name " << cell.name;
    // Every suite graph admits a valid greedy MIS (sanity of construction).
    EXPECT_TRUE(is_mis(cell.graph, greedy_mis(cell.graph))) << cell.name;
  }
}

TEST(Suites, SmallSuiteDeterministicPerSeed) {
  const auto a = small_suite(7);
  const auto b = small_suite(7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].graph, b[i].graph);
}

TEST(Suites, MediumSuiteSizesInRange) {
  for (const auto& cell : medium_suite(3)) {
    EXPECT_GE(cell.graph.num_vertices(), 256) << cell.name;
    EXPECT_LE(cell.graph.num_vertices(), 4096) << cell.name;
  }
}

TEST(Suites, CornerSuiteCoversDegenerateShapes) {
  const auto corners = corner_suite();
  bool has_empty = false, has_singleton = false, has_disconnected = false;
  for (const auto& cell : corners) {
    if (cell.graph.num_vertices() == 0) has_empty = true;
    if (cell.graph.num_vertices() == 1) has_singleton = true;
    if (cell.graph.num_vertices() > 1 && num_components(cell.graph) > 1)
      has_disconnected = true;
  }
  EXPECT_TRUE(has_empty);
  EXPECT_TRUE(has_singleton);
  EXPECT_TRUE(has_disconnected);
}

TEST(Suites, SuiteContainsPaperFamilies) {
  // The experiment suite must cover the families the paper's theorems name.
  const auto suite = small_suite(1);
  auto contains = [&suite](const std::string& prefix) {
    for (const auto& cell : suite)
      if (cell.name.rfind(prefix, 0) == 0) return true;
    return false;
  };
  EXPECT_TRUE(contains("K"));         // cliques (Theorem 8)
  EXPECT_TRUE(contains("tree"));      // bounded arboricity (Theorem 11)
  EXPECT_TRUE(contains("gnp"));       // G(n,p) (Theorems 19/32)
  EXPECT_TRUE(contains("cliques"));   // disjoint cliques (Remark 9)
  EXPECT_TRUE(contains("regular"));   // bounded degree (Theorem 12)
}

}  // namespace
}  // namespace ssmis
