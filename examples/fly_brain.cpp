// Sensory-organ-precursor (SOP) selection — the biological MIS instance the
// paper cites (Afek et al., Science 2011): during fly nervous-system
// development, bristle cells self-select so that no two adjacent epithelial
// cells both become SOPs and every cell touches one.
//
// Cells sit on a hex-like lattice (here: a torus grid with diagonals) and
// interact only by Delta-Notch lateral inhibition — a cell expressing Delta
// suppresses its neighbors. That is a 1-bit "beep": the 3-state MIS process
// needs exactly such signalling and no collision detection, so we run it in
// the stone-age model with 2 channels.
//
//   ./fly_brain [--rows=24] [--cols=24] [--seed=11]
#include <iostream>

#include "core/verify.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "models/mis_automata.hpp"
#include "models/stone_age.hpp"
#include "support/cli.hpp"

using namespace ssmis;

namespace {

// Torus grid with one diagonal per cell: each cell inhibits 6 neighbors,
// approximating the hexagonal epithelium packing.
Graph epithelium(Vertex rows, Vertex cols) {
  GraphBuilder b(rows * cols);
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      b.add_edge(id(r, c), id(r, (c + 1) % cols));
      b.add_edge(id(r, c), id((r + 1) % rows, c));
      b.add_edge(id(r, c), id((r + 1) % rows, (c + 1) % cols));
    }
  }
  return std::move(b).build();
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = CliArgs::parse(argc, argv);
  const Vertex rows = static_cast<Vertex>(args.get_int("rows", 24));
  const Vertex cols = static_cast<Vertex>(args.get_int("cols", 24));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 11));

  const Graph tissue = epithelium(rows, cols);
  std::cout << "epithelium: " << tissue.summary() << " (6 neighbors per cell)\n";

  // All cells start undifferentiated ("white"); development selects SOPs.
  const ThreeStateStoneAgeAutomaton automaton;
  std::vector<std::uint8_t> init(static_cast<std::size_t>(tissue.num_vertices()),
                                 ThreeStateStoneAgeAutomaton::kWhite);
  const CoinOracle coins(seed);
  StoneAgeNetwork net(tissue, automaton, init, coins);

  std::int64_t round = 0;
  while (round < 100000 && !is_mis(tissue, net.claimed_mis())) {
    net.step();
    ++round;
  }
  const auto sops = net.claimed_mis();
  std::cout << "developmental rounds: " << round << "\n";
  std::cout << "SOPs selected: " << sops.size() << " of " << tissue.num_vertices()
            << " cells (" << 100.0 * static_cast<double>(sops.size()) /
                                 tissue.num_vertices()
            << "%)\n";
  std::cout << "lateral inhibition satisfied (valid MIS): "
            << (is_mis(tissue, sops) ? "yes" : "NO") << "\n";

  // Render a patch of tissue: '#' = SOP, '.' = epithelial cell.
  std::vector<char> is_sop(static_cast<std::size_t>(tissue.num_vertices()), 0);
  for (Vertex s : sops) is_sop[static_cast<std::size_t>(s)] = 1;
  const Vertex show_rows = std::min<Vertex>(rows, 16);
  const Vertex show_cols = std::min<Vertex>(cols, 32);
  std::cout << "\ntissue patch (" << show_rows << "x" << show_cols << "):\n";
  for (Vertex r = 0; r < show_rows; ++r) {
    for (Vertex c = 0; c < show_cols; ++c)
      std::cout << (is_sop[static_cast<std::size_t>(r * cols + c)] ? '#' : '.');
    std::cout << '\n';
  }
  return is_mis(tissue, sops) ? 0 : 1;
}
