// Quickstart: build a graph, run the 2-state MIS process from arbitrary
// states, verify the result.
//
//   ./quickstart [--n=64] [--p=0.1] [--seed=7]
#include <iostream>

#include "core/init.hpp"
#include "core/runner.hpp"
#include "core/two_state.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "support/cli.hpp"

using namespace ssmis;

int main(int argc, char** argv) {
  const CliArgs args = CliArgs::parse(argc, argv);
  const Vertex n = static_cast<Vertex>(args.get_int("n", 64));
  const double p = args.get_double("p", 0.1);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  // 1. A random graph (any ssmis::Graph works — see graph/generators.hpp).
  const Graph g = gen::gnp(n, p, seed);
  std::cout << "graph: " << g.summary() << "\n";

  // 2. The 2-state MIS process. Initial states are ARBITRARY — that is the
  //    point of self-stabilization; here we start from uniformly random
  //    colors drawn from the same deterministic coin oracle.
  const CoinOracle coins(seed);
  TwoStateMIS process(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);

  // 3. Run synchronous rounds until the black set is an MIS.
  const RunResult result = run_until_stabilized(process, /*max_rounds=*/100000,
                                                TraceMode::kPerRound);
  std::cout << "stabilized: " << (result.stabilized ? "yes" : "NO") << " after "
            << result.rounds << " rounds\n";

  // 4. Inspect the result.
  const auto mis = process.black_set();
  std::cout << "MIS size: " << mis.size() << " (greedy reference: "
            << greedy_mis(g).size() << ")\n";
  std::cout << "valid MIS: " << (is_mis(g, mis) ? "yes" : "NO") << "\n";

  // 5. The per-round trace shows the paper's progress measure |V_t|
  //    (vertices not yet stable) shrinking to zero.
  std::cout << "\nround  black  active  stable  unstable\n";
  for (const RoundStats& s : result.trace) {
    if (s.round % 5 == 0 || s.round == result.rounds) {
      std::cout << s.round << "\t" << s.black << "\t" << s.active << "\t"
                << s.stable_black << "\t" << s.unstable << "\n";
    }
  }
  return result.stabilized ? 0 : 1;
}
