// Full-featured command-line simulator: the downstream user's entry point.
//
//   ./simulate --family=gnp --n=512 --p=0.05 --protocol=3color
//              --init=all-black --seed=42 --dot=out.dot --csv=run.csv
//
// Families: gnp, gnm, clique, path, cycle, star, tree, rtree, binary, grid,
//           torus, hypercube, regular, geometric, cliques, smallworld
// Protocols: whatever the registry holds — ./simulate --list-protocols
//            prints every name (protocol options pass as --proto-KEY=VALUE);
//            --process remains as an alias for --protocol
// Inits: all-white, all-black, random, alternating, high-degree, one-black
// Parallel runtime: --threads N shards a single run's engine; with
// --trials M > 1 whole runs batch across the pool instead (--shard to
// force per-run sharding). Results are identical at any thread count.
// Graph reuse: --save-graph=g.ssg writes the constructed graph as binary
// CSR; --graph-file=g.ssg (with --graph-mmap=0 to force an owned read)
// loads one instead of generating, so a 10^7-vertex graph is built once
// and shared by every subsequent run and experiment binary.
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>

#include "core/process.hpp"
#include "core/runner.hpp"
#include "core/verify.hpp"
#include "harness/registry.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/ssg.hpp"
#include "harness/experiment.hpp"
#include "stats/histogram.hpp"
#include "support/cli.hpp"
#include "support/csv.hpp"

using namespace ssmis;

namespace {

Graph make_graph(const CliArgs& args, std::uint64_t seed) {
  if (args.has("graph-file")) return io::load_graph_file_from_args(args);
  const std::string family = args.get_string("family", "gnp");
  const Vertex n = static_cast<Vertex>(args.get_int("n", 256));
  const double p = args.get_double("p", 0.05);
  const int d = static_cast<int>(args.get_int("d", 4));
  if (family == "gnp") return gen::gnp(n, p, seed);
  if (family == "gnm") return gen::gnm(n, args.get_int("m", 2 * n), seed);
  if (family == "clique") return gen::complete(n);
  if (family == "path") return gen::path(n);
  if (family == "cycle") return gen::cycle(n);
  if (family == "star") return gen::star(n);
  if (family == "tree") return gen::random_tree(n, seed);
  if (family == "rtree") return gen::random_recursive_tree(n, seed);
  if (family == "binary") return gen::binary_tree(n);
  if (family == "grid") {
    const Vertex side = static_cast<Vertex>(std::sqrt(static_cast<double>(n)));
    return gen::grid(side, side);
  }
  if (family == "torus") {
    const Vertex side = static_cast<Vertex>(std::sqrt(static_cast<double>(n)));
    return gen::torus(side, side);
  }
  if (family == "hypercube")
    return gen::hypercube(static_cast<int>(std::log2(std::max(2, n))));
  if (family == "regular") return gen::random_regular(n, d, seed);
  if (family == "geometric") return gen::random_geometric(n, p > 0 ? p : 0.08, seed);
  if (family == "cliques") {
    const Vertex side = static_cast<Vertex>(std::sqrt(static_cast<double>(n)));
    return gen::disjoint_cliques(side, side);
  }
  if (family == "smallworld") return gen::small_world(n, d, p, seed);
  throw std::invalid_argument("unknown --family " + family);
}

InitPattern parse_init(const std::string& name) {
  if (name == "all-white") return InitPattern::kAllWhite;
  if (name == "all-black") return InitPattern::kAllBlack;
  if (name == "random") return InitPattern::kUniformRandom;
  if (name == "alternating") return InitPattern::kAlternating;
  if (name == "high-degree") return InitPattern::kHighDegreeBlack;
  if (name == "one-black") return InitPattern::kOneBlack;
  throw std::invalid_argument("unknown --init " + name);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args = CliArgs::parse(argc, argv);
    if (args.has("list-protocols")) {
      std::cout << ProtocolRegistry::instance().describe_all();
      return 0;
    }
    // A typo'd flag must not silently run the default configuration.
    const auto unknown = args.unknown_options(
        {"family", "n", "p", "d", "m", "seed", "init", "max-rounds", "trials",
         "threads", "batch", "shard", "graph-file", "graph-mmap",
         "graph-trusted", "save-graph", "csv", "dot", "protocol", "process",
         "list-protocols", "proto-*"});
    if (!unknown.empty()) {
      for (const auto& err : unknown) std::cerr << "error: " << err << "\n";
      return 2;
    }
    for (const auto& err : args.errors()) std::cerr << "warning: " << err << "\n";
    const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

    const Graph g = make_graph(args, seed);
    if (args.has("save-graph")) {
      const std::string out = args.get_string("save-graph", "graph.ssg");
      io::save_ssg(out, g);
      std::cout << "graph saved to " << out << " ("
                << io::ssg_file_bytes(g) << " bytes)\n";
    }
    const ParallelOptions parallel = parse_parallel_options(args);
    MeasureConfig config;
    // --protocol selects any registry entry; --process is the legacy alias.
    // An unknown name aborts loudly in ProtocolRegistry::make (its error
    // lists the registered protocols; main's catch prints it, exit 2).
    config.protocol =
        args.get_string("protocol", args.get_string("process", "2state"));
    config.params = protocol_params_from_args(args);
    config.init = parse_init(args.get_string("init", "random"));
    config.seed = seed;
    config.max_rounds = args.get_int("max-rounds", 1000000);
    // A single traced run shards its engine; --trials N > 1 batches whole
    // runs across the pool instead and reports the spread.
    config.threads = parallel.threads;
    config.batch = parallel.batch;
    config.trials = static_cast<int>(args.get_int("trials", 1));

    std::cout << "graph:   " << g.summary() << "\n";
    std::cout << "process: " << config.protocol
              << ", init: " << to_string(config.init) << ", seed: " << seed << "\n";
    if (parallel.threads > 1) {
      std::cout << "threads: " << parallel.threads << " ("
                << (parallel.batch ? "batched trials" : "sharded stepping") << ")\n";
    }

    if (config.trials > 1) {
      const Measurements m = measure_stabilization(g, config);
      std::cout << "trials:  " << config.trials << " (seeds " << seed << ".."
                << seed + static_cast<std::uint64_t>(config.trials) - 1 << ")\n";
      std::cout << "result:  " << m.summary.count << " stabilized, " << m.timeouts
                << " timeouts; rounds mean " << m.summary.mean << ", p95 "
                << m.summary.p95 << ", max " << m.summary.max << "\n";
      for (std::uint64_t s : m.timeout_seeds)
        std::cout << "timeout: re-run with --seed=" << s << " --trials=1\n";
      return m.timeouts == 0 ? 0 : 1;
    }

    const RunResult r = traced_run(g, config);
    std::cout << "result:  " << (r.stabilized ? "stabilized" : "HORIZON HIT")
              << " after " << r.rounds << " rounds\n";
    if (!r.trace.empty()) {
      // |B_t| is protocol-defined: black vertices for the MIS family,
      // claimed EDGES for matching — each gets the matching greedy reference.
      if (config.protocol == "matching") {
        std::cout << "stable |B_t|: " << r.trace.back().black
                  << " claimed edges (greedy matching reference "
                  << greedy_maximal_matching(g).size() << ")\n";
      } else {
        std::cout << "stable |B_t|: " << r.trace.back().black
                  << " (greedy MIS reference " << greedy_mis(g).size() << ")\n";
      }
      std::vector<double> unstable;
      for (const RoundStats& s : r.trace)
        unstable.push_back(static_cast<double>(s.unstable));
      std::cout << "|V_t|:   " << sparkline(downsample_max(unstable, 60)) << "\n";
    }

    if (args.has("csv")) {
      std::ofstream out(args.get_string("csv", "run.csv"));
      out << trace_to_csv(r);
      std::cout << "trace csv written to " << args.get_string("csv", "run.csv") << "\n";
    }
    if (args.has("dot")) {
      // Re-run the same seed to recover the final output set (traced_run
      // reports counts only). Determinism makes this exact — and the
      // registry makes it the SELECTED protocol's output, not always 2state.
      auto p = ProtocolRegistry::instance().make(
          config.protocol, g, with_init(config.params, config.init), seed);
      p->run(config.max_rounds, TraceMode::kNone);
      std::ofstream out(args.get_string("dot", "out.dot"));
      io::write_dot(out, g, p->output_set());
      std::cout << "dot written to " << args.get_string("dot", "out.dot") << "\n";
    }
    return r.stabilized ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
