// Wireless sensor network clustering — the deployment scenario the paper's
// beeping model abstracts (Section 1, [Cornejo-Kuhn 2010]).
//
// Sensors are scattered uniformly in the unit square; two sensors hear each
// other within their radio range (a random geometric graph). Cluster heads
// must form a maximal independent set: no two heads in radio range (channel
// reuse), every sensor adjacent to a head (coverage).
//
// The 2-state MIS process runs *as a beeping algorithm*: each sensor is a
// 2-state automaton that beeps when it considers itself a head and carrier-
// senses otherwise — 1 bit per round, no IDs, no topology knowledge, no
// synchronized startup (states start arbitrary), sender collision detection
// only. We simulate the actual radio layer (BeepingNetwork), not the
// abstract process.
//
//   ./sensor_network [--sensors=400] [--range=0.08] [--seed=3]
#include <iostream>

#include "core/verify.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "models/beeping.hpp"
#include "models/mis_automata.hpp"
#include "support/cli.hpp"

using namespace ssmis;

int main(int argc, char** argv) {
  const CliArgs args = CliArgs::parse(argc, argv);
  const Vertex sensors = static_cast<Vertex>(args.get_int("sensors", 400));
  const double range = args.get_double("range", 0.08);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  const Graph g = gen::random_geometric(sensors, range, seed);
  std::cout << "radio graph: " << g.summary() << ", components: "
            << num_components(g) << "\n";

  // Every sensor boots in an arbitrary state — here: everyone thinks it is
  // a cluster head (worst case for contention).
  const TwoStateBeepAutomaton automaton;
  std::vector<std::uint8_t> boot(static_cast<std::size_t>(sensors),
                                 TwoStateBeepAutomaton::kBlack);
  const CoinOracle coins(seed + 1);
  BeepingNetwork radio(g, automaton, boot, coins);

  // Run the radio protocol until the claimed head set is an MIS. A real
  // deployment cannot test this globally — termination detection is not
  // part of the model — but the protocol is silent once stable: heads beep
  // into silence, members hear their head.
  std::int64_t round = 0;
  const std::int64_t horizon = 100000;
  while (round < horizon && !is_mis(g, radio.claimed_mis())) {
    radio.step();
    ++round;
  }

  const auto heads = radio.claimed_mis();
  std::cout << "rounds until stable head set: " << round << "\n";
  std::cout << "cluster heads: " << heads.size() << " / " << sensors << " sensors\n";
  std::cout << "valid MIS (no adjacent heads, full coverage): "
            << (is_mis(g, heads) ? "yes" : "NO") << "\n";
  std::cout << "total beeps transmitted: " << radio.total_beeps() << " ("
            << static_cast<double>(radio.total_beeps()) / (round == 0 ? 1 : round)
            << " per round network-wide; 1 bit each)\n";

  // Coverage report: how many sensors are within range of a head.
  std::vector<char> covered(static_cast<std::size_t>(sensors), 0);
  for (Vertex h : heads) {
    covered[static_cast<std::size_t>(h)] = 1;
    g.for_each_neighbor(h, [&](Vertex v) { covered[static_cast<std::size_t>(v)] = 1; });
  }
  Vertex covered_count = 0;
  for (char c : covered) covered_count += c;
  std::cout << "sensors covered by a head: " << covered_count << " / " << sensors
            << "\n";
  return is_mis(g, heads) ? 0 : 1;
}
