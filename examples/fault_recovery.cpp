// Self-stabilization demo: a running MIS survives repeated transient
// faults — memory corruption, joining/leaving nodes' stale state, arbitrary
// adversarial rewrites — with no detection or reset logic, because
// convergence from *every* configuration is the correctness property.
//
//   ./fault_recovery [--n=300] [--p=0.03] [--bursts=5] [--fraction=0.4]
#include <iostream>

#include "core/faults.hpp"
#include "core/init.hpp"
#include "core/runner.hpp"
#include "core/two_state.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace ssmis;

int main(int argc, char** argv) {
  const CliArgs args = CliArgs::parse(argc, argv);
  const Vertex n = static_cast<Vertex>(args.get_int("n", 300));
  const double p = args.get_double("p", 0.03);
  const int bursts = static_cast<int>(args.get_int("bursts", 5));
  const double fraction = args.get_double("fraction", 0.4);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 5));

  const Graph g = gen::gnp(n, p, seed);
  std::cout << "graph: " << g.summary() << "\n";
  std::cout << "injecting " << bursts << " fault bursts, each corrupting ~"
            << fraction * 100 << "% of vertices to random states\n\n";

  const CoinOracle coins(seed + 1);
  TwoStateMIS process(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);

  TextTable table({"burst", "corrupted", "MIS broken after fault?",
                   "recovery rounds", "valid MIS after"});
  RunResult r = run_until_stabilized(process, 100000);
  std::cout << "initial convergence: " << r.rounds << " rounds\n";
  for (int burst = 1; burst <= bursts; ++burst) {
    const FaultReport report = inject_faults(process, fraction, burst);
    const bool broken = !is_mis(g, process.black_set());
    r = run_until_stabilized(process, 100000);
    table.begin_row();
    table.add_cell(static_cast<std::int64_t>(burst));
    table.add_cell(static_cast<std::int64_t>(report.corrupted));
    table.add_cell(broken ? "yes" : "no (lucky)");
    table.add_cell(r.rounds);
    table.add_cell(is_mis(g, process.black_set()) ? "yes" : "NO");
    if (!r.stabilized) {
      std::cerr << "did not re-stabilize within horizon\n";
      return 1;
    }
  }
  table.print(std::cout);
  std::cout << "\nNo reset, no fault detector, no leader: recovery is inherent.\n";
  return 0;
}
