// Side-by-side comparison of all MIS algorithms in the library on a graph
// chosen from the command line — a tour of the public API.
//
//   ./model_compare [--graph=gnp|clique|tree|grid|geometric] [--n=256]
//                   [--p=0.05] [--seed=9]
#include <cmath>
#include <iostream>
#include <memory>

#include "core/init.hpp"
#include "core/luby.hpp"
#include "core/runner.hpp"
#include "core/sequential.hpp"
#include "core/three_color.hpp"
#include "core/three_state.hpp"
#include "core/two_state.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace ssmis;

int main(int argc, char** argv) {
  const CliArgs args = CliArgs::parse(argc, argv);
  const std::string kind = args.get_string("graph", "gnp");
  const Vertex n = static_cast<Vertex>(args.get_int("n", 256));
  const double p = args.get_double("p", 0.05);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 9));

  Graph g;
  if (kind == "gnp") g = gen::gnp(n, p, seed);
  else if (kind == "clique") g = gen::complete(n);
  else if (kind == "tree") g = gen::random_tree(n, seed);
  else if (kind == "grid") g = gen::grid(static_cast<Vertex>(std::max(1.0, std::sqrt(n))),
                                         static_cast<Vertex>(std::max(1.0, std::sqrt(n))));
  else if (kind == "geometric") g = gen::random_geometric(n, p > 0 ? p : 0.08, seed);
  else {
    std::cerr << "unknown --graph " << kind
              << " (use gnp|clique|tree|grid|geometric)\n";
    return 2;
  }
  std::cout << "graph: " << g.summary() << "\n\n";
  const CoinOracle coins(seed + 1);

  TextTable table({"algorithm", "states/node", "self-stabilizing", "rounds/moves",
                   "MIS size", "valid"});

  {
    TwoStateMIS proc(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
    const RunResult r = run_until_stabilized(proc, 1000000);
    table.add_row({"2-state process (beeping)", "2", "yes", std::to_string(r.rounds),
                   std::to_string(proc.black_set().size()),
                   is_mis(g, proc.black_set()) ? "yes" : "NO"});
  }
  {
    ThreeStateMIS proc(g, make_init3(g, InitPattern::kUniformRandom, coins), coins);
    const RunResult r = run_until_stabilized(proc, 1000000);
    table.add_row({"3-state process (stone age)", "3", "yes", std::to_string(r.rounds),
                   std::to_string(proc.black_set().size()),
                   is_mis(g, proc.black_set()) ? "yes" : "NO"});
  }
  {
    auto proc = ThreeColorMIS::with_randomized_switch(
        g, make_init_g(g, InitPattern::kUniformRandom, coins), coins);
    const RunResult r = run_until_stabilized(proc, 2000000);
    table.add_row({"3-color process (Thm 3)", "18", "yes", std::to_string(r.rounds),
                   std::to_string(proc.black_set().size()),
                   is_mis(g, proc.black_set()) ? "yes" : "NO"});
  }
  {
    LubyMIS luby(g, coins);
    const auto rounds = luby.run(100000);
    table.add_row({"Luby 1986 (baseline)", "O(log n)", "no", std::to_string(rounds),
                   std::to_string(luby.mis_set().size()),
                   is_mis(g, luby.mis_set()) ? "yes" : "NO"});
  }
  {
    SequentialMIS seq(g, make_init2(g, InitPattern::kUniformRandom, coins));
    RandomScheduler sched(seed + 2);
    const auto result = seq.run(sched, 4 * g.num_vertices() + 8);
    table.add_row({"sequential daemon (SRR95)", "2", "yes",
                   std::to_string(result.total_moves) + " moves",
                   std::to_string(seq.black_set().size()),
                   is_mis(g, seq.black_set()) ? "yes" : "NO"});
  }
  {
    const auto mis = greedy_mis(g);
    table.add_row({"greedy (centralized ref)", "-", "-", "-", std::to_string(mis.size()),
                   is_mis(g, mis) ? "yes" : "NO"});
  }
  table.print(std::cout);
  return 0;
}
