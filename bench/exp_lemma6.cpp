// Experiment E11 (Lemmas 6 and 7): Monte-Carlo validation of the core
// progress lemmas.
//
// Lemma 6: if u is active with k active neighbors at the end of round t,
// then P[u is stable black at end of round t + ceil(log2(k+1))] >= 1/(2ek).
//
// Lemma 7: for active u_1..u_l with k_i active neighbors each,
// P[some u_i stable black after log2(max k_i + 1) rounds]
//   >= (1/5) min{1, sum_i 1/(2 k_i)}.
//
// Setup: K_{k+1} makes every vertex active with k active neighbors from the
// all-black start. We estimate the lemma probabilities empirically and
// report measured vs bound (measured must dominate).
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/two_state.hpp"
#include "graph/generators.hpp"

using namespace ssmis;

int main(int argc, char** argv) {
  auto ctx = bench::init_experiment(
      argc, argv, "E11 (Lemmas 6, 7): progress-lemma constants",
      "k-active vertex stable black within log(k+1) rounds w.p. >= 1/(2ek)", 4000,
      bench::GraphFilePolicy::kLoad, "2state", bench::ProtocolPolicy::kFixed);

  const int trials = ctx.trials;

  print_banner(std::cout, "Lemma 6 on K_{k+1} (all-black start, vertex 0 tracked)");
  TextTable table({"k", "rounds", "measured P", "bound 1/(2ek)", "ratio"});
  for (Vertex k : {1, 2, 4, 8, 16, 32}) {
    const Graph g = ctx.cell_graph([&] { return gen::complete(k + 1); });
    const auto rounds = static_cast<std::int64_t>(std::ceil(std::log2(k + 1.0)));
    const auto hit = ctx.trial_batch(trials).map<char>([&](int trial) -> char {
      TwoStateMIS p(g,
                    std::vector<Color2>(static_cast<std::size_t>(k) + 1, Color2::kBlack),
                    CoinOracle(ctx.seed + static_cast<std::uint64_t>(trial)));
      for (std::int64_t r = 0; r < rounds; ++r) p.step();
      return p.stable_black(0) ? 1 : 0;
    });
    int hits = 0;
    for (char h : hit) hits += h;
    const double measured = static_cast<double>(hits) / trials;
    const double bound = 1.0 / (2.0 * std::exp(1.0) * k);
    table.begin_row();
    table.add_cell(static_cast<std::int64_t>(k));
    table.add_cell(rounds);
    table.add_cell(measured, 4);
    table.add_cell(bound, 4);
    table.add_cell(measured / bound);
  }
  table.print(std::cout);

  print_banner(std::cout, "Lemma 7 on K_{k+1} (any of the k+1 vertices stable black)");
  TextTable t7({"k (=l-1)", "rounds", "measured P", "bound (1/5)min{1,l/(2k)}", "ratio"});
  for (Vertex k : {1, 2, 4, 8, 16, 32}) {
    const Vertex l = k + 1;  // all clique vertices tracked
    const Graph g = ctx.cell_graph([&] { return gen::complete(l); });
    const auto rounds = static_cast<std::int64_t>(std::ceil(std::log2(k + 1.0)));
    const auto hit = ctx.trial_batch(trials).map<char>([&](int trial) -> char {
      TwoStateMIS p(g, std::vector<Color2>(static_cast<std::size_t>(l), Color2::kBlack),
                    CoinOracle(ctx.seed + 777 + static_cast<std::uint64_t>(trial)));
      for (std::int64_t r = 0; r < rounds; ++r) p.step();
      return p.num_stable_black() > 0 ? 1 : 0;
    });
    int hits = 0;
    for (char h : hit) hits += h;
    const double measured = static_cast<double>(hits) / trials;
    const double bound =
        0.2 * std::min(1.0, static_cast<double>(l) / (2.0 * k));
    t7.begin_row();
    t7.add_cell(static_cast<std::int64_t>(k));
    t7.add_cell(rounds);
    t7.add_cell(measured, 4);
    t7.add_cell(bound, 4);
    t7.add_cell(measured / bound);
  }
  t7.print(std::cout);

  bench::finish_experiment("every measured probability dominates its bound (ratio >= 1)");
  return 0;
}
