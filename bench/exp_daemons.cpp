// Experiment X4 (extension, Section 1's scheduler discussion): the 2-state
// rule under the spectrum of activation daemons, from fully sequential
// (central) to fully parallel (synchronous).
//
// Steps are not comparable across daemons (a central step activates one
// vertex, a synchronous step up to n), so we report both raw steps and
// total vertex-activations. The paper-relevant observation: randomized
// transitions stabilize under EVERY daemon; parallelism buys wall-clock
// rounds at the cost of extra activations (coordinated re-collisions).
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/daemon.hpp"
#include "core/init.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "stats/summary.hpp"

using namespace ssmis;

namespace {

struct DaemonResult {
  double mean_steps = 0;
  double mean_activations = 0;
  int failures = 0;
};

struct TrialOutcome {
  std::int64_t steps = 0;
  std::int64_t activations = 0;
  bool ok = false;
};

template <typename MakeDaemon>
DaemonResult run_daemon(const Graph& g, MakeDaemon make, int trials,
                        std::uint64_t seed, const bench::ExpContext& ctx) {
  // `make` constructs a fresh daemon per trial, so every trial owns its
  // whole process state and trials batch safely across the pool.
  const auto outcomes =
      ctx.trial_batch(trials).map<TrialOutcome>([&](int trial) {
        const CoinOracle coins(seed + static_cast<std::uint64_t>(trial));
        DaemonMIS p(g, make_init2(g, InitPattern::kUniformRandom, coins),
                    make(trial), coins);
        p.set_shards(ctx.shards());
        TrialOutcome out;
        const std::int64_t max_steps = 5000000;
        while (!p.stabilized() && out.steps < max_steps) {
          out.activations += p.step();
          ++out.steps;
        }
        out.ok = p.stabilized() && is_mis(g, p.black_set());
        return out;
      });
  DaemonResult out;
  for (const TrialOutcome& o : outcomes) {
    if (!o.ok) {
      ++out.failures;
      continue;
    }
    out.mean_steps += static_cast<double>(o.steps);
    out.mean_activations += static_cast<double>(o.activations);
  }
  const int ok = trials - out.failures;
  if (ok > 0) {
    out.mean_steps /= ok;
    out.mean_activations /= ok;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  auto ctx = bench::init_experiment(
      argc, argv, "X4 (extension): activation-daemon spectrum",
      "randomized transitions stabilize under every daemon (Section 1's "
      "adversarial-scheduler observation)",
      10,
      bench::GraphFilePolicy::kLoad, "daemon", bench::ProtocolPolicy::kFixed);

  struct Workload { std::string name; Graph graph; };
  std::vector<Workload> workloads;
  workloads.push_back({"K_64", ctx.cell_graph([&] { return gen::complete(64); })});
  workloads.push_back({"gnp256 p=0.05", ctx.cell_graph([&] { return gen::gnp(256, 0.05, ctx.seed); })});
  workloads.push_back({"tree512", ctx.cell_graph([&] { return gen::random_tree(512, ctx.seed + 1); })});

  for (auto& w : workloads) {
    print_banner(std::cout, "daemon spectrum on " + w.name);
    TextTable table({"daemon", "mean steps", "mean activations", "failures"});
    struct Row {
      std::string name;
      DaemonResult result;
    };
    std::vector<Row> rows;
    rows.push_back({"central (1 vertex/step)",
                    run_daemon(w.graph,
                               [&](int t) {
                                 return std::make_unique<CentralDaemon>(
                                     ctx.seed + 100 + static_cast<std::uint64_t>(t));
                               },
                               ctx.trials, ctx.seed + 5, ctx)});
    for (double rho : {0.1, 0.5}) {
      rows.push_back({"subset rho=" + format_double(rho, 1),
                      run_daemon(w.graph,
                                 [&, rho](int t) {
                                   return std::make_unique<RandomSubsetDaemon>(
                                       rho, ctx.seed + 200 +
                                                static_cast<std::uint64_t>(t));
                                 },
                                 ctx.trials, ctx.seed + 7, ctx)});
    }
    rows.push_back({"synchronous (all enabled)",
                    run_daemon(w.graph,
                               [](int) { return std::make_unique<SynchronousDaemon>(); },
                               ctx.trials, ctx.seed + 9, ctx)});
    for (auto& row : rows) {
      table.begin_row();
      table.add_cell(row.name);
      table.add_cell(row.result.mean_steps);
      table.add_cell(row.result.mean_activations);
      table.add_cell(static_cast<std::int64_t>(row.result.failures));
    }
    table.print(std::cout);
  }

  bench::finish_experiment(
      "zero failures for every daemon; steps shrink and activations grow as "
      "parallelism increases — the synchronous process trades activation "
      "budget for round complexity");
  return 0;
}
