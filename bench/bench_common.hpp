// Shared plumbing for the experiment binaries: standard header/footer
// formatting so every table in bench_output.txt is self-describing, plus
// the common CLI knobs (--trials, --seed, scale factors).
#pragma once

#include <cmath>
#include <iostream>
#include <string>

#include "harness/experiment.hpp"
#include "harness/trial_batch.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace ssmis::bench {

struct ExpContext {
  CliArgs args;
  int trials;
  std::uint64_t seed;
  double scale;  // multiplies default problem sizes (--scale=2 for bigger runs)
  ParallelOptions parallel;  // --threads / --batch, shared across all binaries

  // Copies the parallel-runtime knobs into a measurement config (the
  // experiment keeps setting trials/seed itself — cells offset seeds).
  void apply_parallel(MeasureConfig& config) const {
    config.threads = parallel.threads;
    config.batch = parallel.batch;
  }

  // Scheduler for a binary-local trial loop (same knobs, same determinism
  // contract as measure_stabilization).
  TrialBatch trial_batch(int num_trials) const {
    return TrialBatch(num_trials, parallel.batch ? parallel.threads : 1);
  }

  // Engine shard budget for a single run driven directly by the binary.
  int shards() const { return parallel.batch ? 1 : parallel.threads; }
};

inline ExpContext init_experiment(int argc, char** argv, const std::string& id,
                                  const std::string& claim, int default_trials) {
  ExpContext ctx;
  ctx.args = CliArgs::parse(argc, argv);
  ctx.trials = static_cast<int>(ctx.args.get_int("trials", default_trials));
  ctx.seed = static_cast<std::uint64_t>(ctx.args.get_int("seed", 1));
  ctx.scale = ctx.args.get_double("scale", 1.0);
  ctx.parallel = parse_parallel_options(ctx.args);
  std::cout << "#### Experiment " << id << "\n";
  std::cout << "# paper claim: " << claim << "\n";
  std::cout << "# trials/cell: " << ctx.trials << ", seed: " << ctx.seed << "\n";
  if (ctx.parallel.threads > 1) {
    // Single-run tables shard the engine even in the default batch mode —
    // the banner states the policy, not a per-table claim.
    std::cout << "# threads: " << ctx.parallel.threads << " ("
              << (ctx.parallel.batch ? "batched trials; single runs shard"
                                     : "sharded stepping")
              << ")\n";
  }
  for (const auto& err : ctx.args.errors()) std::cout << "# CLI warning: " << err << "\n";
  return ctx;
}

inline void finish_experiment(const std::string& verdict) {
  std::cout << "# verdict: " << verdict << "\n\n";
}

inline double log2n(double n) { return std::log2(std::max(2.0, n)); }

}  // namespace ssmis::bench
