// Shared plumbing for the experiment binaries: standard header/footer
// formatting so every table in bench_output.txt is self-describing, plus
// the common CLI knobs (--trials, --seed, scale factors).
#pragma once

#include <cmath>
#include <iostream>
#include <string>

#include "support/cli.hpp"
#include "support/table.hpp"

namespace ssmis::bench {

struct ExpContext {
  CliArgs args;
  int trials;
  std::uint64_t seed;
  double scale;  // multiplies default problem sizes (--scale=2 for bigger runs)
};

inline ExpContext init_experiment(int argc, char** argv, const std::string& id,
                                  const std::string& claim, int default_trials) {
  ExpContext ctx;
  ctx.args = CliArgs::parse(argc, argv);
  ctx.trials = static_cast<int>(ctx.args.get_int("trials", default_trials));
  ctx.seed = static_cast<std::uint64_t>(ctx.args.get_int("seed", 1));
  ctx.scale = ctx.args.get_double("scale", 1.0);
  std::cout << "#### Experiment " << id << "\n";
  std::cout << "# paper claim: " << claim << "\n";
  std::cout << "# trials/cell: " << ctx.trials << ", seed: " << ctx.seed << "\n";
  for (const auto& err : ctx.args.errors()) std::cout << "# CLI warning: " << err << "\n";
  return ctx;
}

inline void finish_experiment(const std::string& verdict) {
  std::cout << "# verdict: " << verdict << "\n\n";
}

inline double log2n(double n) { return std::log2(std::max(2.0, n)); }

}  // namespace ssmis::bench
