// Shared plumbing for the experiment binaries: standard header/footer
// formatting so every table in bench_output.txt is self-describing, plus
// the common CLI knobs (--trials, --seed, scale factors, the parallel
// runtime, and protocol selection).
//
// Protocol selection is uniform across every binary:
//   --list-protocols     print every registered protocol and exit
//   --protocol NAME      run the named protocol (validated against the
//                        registry up front — unknown names abort loudly)
//   --proto-KEY=VALUE    protocol-specific options (validated per protocol)
// Binaries whose experiment is intrinsically tied to one protocol declare
// ProtocolPolicy::kFixed and note (rather than silently ignore) an
// attempted override.
#pragma once

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "graph/ssg.hpp"
#include "harness/experiment.hpp"
#include "harness/registry.hpp"
#include "harness/suites.hpp"
#include "harness/trial_batch.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace ssmis::bench {

struct ExpContext {
  CliArgs args;
  int trials;
  std::uint64_t seed;
  double scale;  // multiplies default problem sizes (--scale=2 for bigger runs)
  ParallelOptions parallel;  // --threads / --batch, shared across all binaries
  std::string protocol;      // --protocol (validated), or the binary's default
  ProtocolParams proto_params;  // --proto-KEY=VALUE options
  // --graph-compressed: run every cell on compressed adjacency storage
  // (generated graphs are transcoded after construction, a --graph-file
  // override at load). Trajectories are bit-identical to plain storage —
  // the cross-representation tests pin that — so this is purely a memory-
  // footprint knob.
  bool compress_graphs = false;
  // --graph-file=path: a pre-built graph (`.ssg` binary, mmap'd read-only by
  // default, or whitespace edge list) substituted for *every* generated cell
  // graph, so one expensive 10^7-vertex construction is reused across all
  // experiment binaries. Copies share the underlying CSR storage.
  std::optional<Graph> graph_override;

  // Copies the parallel-runtime knobs into a measurement config (the
  // experiment keeps setting trials/seed itself — cells offset seeds).
  void apply_parallel(MeasureConfig& config) const {
    config.threads = parallel.threads;
    config.batch = parallel.batch;
  }

  // Full protocol-generic wiring: the selected protocol, its options, and
  // the parallel runtime. Cells that sweep protocols themselves set
  // config.protocol after this.
  void apply(MeasureConfig& config) const {
    config.protocol = protocol;
    config.params = proto_params;
    apply_parallel(config);
  }

  // For protocol-sweep tables: the user's --protocol restricts the sweep to
  // that one protocol; otherwise the binary's default list runs.
  std::vector<std::string> protocols_or(std::vector<std::string> defaults) const {
    if (args.has("protocol")) return {protocol};
    return defaults;
  }

  // Scheduler for a binary-local trial loop (same knobs, same determinism
  // contract as measure_stabilization).
  TrialBatch trial_batch(int num_trials) const {
    return TrialBatch(num_trials, parallel.batch ? parallel.threads : 1);
  }

  // Engine shard budget for a single run driven directly by the binary.
  int shards() const { return parallel.batch ? 1 : parallel.threads; }

  // Applies the --graph-compressed policy to a freshly generated graph.
  Graph maybe_compress(Graph g) const {
    if (compress_graphs && !g.is_compressed()) return Graph::compress(g);
    return g;
  }

  // Loads the --graph-file (honoring --graph-mmap/--graph-trusted and the
  // --graph-compressed transcode). An unreadable, corrupt, or unsupported-
  // version file is an operator error shared by every binary: one line +
  // exit 2, like bad flags — not an uncaught runtime_error. Used by the
  // default kLoad path below and by kDefer binaries that time the load
  // themselves (exp_scale).
  Graph load_graph_file_or_exit() const {
    try {
      return maybe_compress(io::load_graph_file_from_args(args));
    } catch (const std::runtime_error& e) {
      std::cerr << "error: " << e.what() << "\n";
      std::exit(2);
    }
  }

  // The graph for one experiment cell: the --graph-file override when given
  // (already transcoded at load under --graph-compressed), otherwise
  // whatever `make` generates. Returning by value is cheap either way —
  // Graph is a shared-storage handle.
  template <typename MakeGraph>
  Graph cell_graph(MakeGraph&& make) const {
    if (graph_override) return *graph_override;
    return maybe_compress(std::forward<MakeGraph>(make)());
  }

  // Named-suite variant for the cross-cutting binaries: --graph-file
  // collapses the whole suite to the one externally supplied graph. Like
  // cell_graph, the fallback is a factory so overridden runs never pay for
  // generating suite graphs they will discard.
  template <typename MakeSuite>
  std::vector<NamedGraph> suite_or(MakeSuite&& make) const {
    if (graph_override) return {{"graph-file", *graph_override}};
    std::vector<NamedGraph> suite = std::forward<MakeSuite>(make)();
    for (NamedGraph& cell : suite) cell.graph = maybe_compress(std::move(cell.graph));
    return suite;
  }
};

// How a binary treats --graph-file:
//   kLoad   (default) load it eagerly into ctx.graph_override;
//   kRefuse reject it up front with a note, before the (possibly
//           multi-hundred-MB) file is read — for binaries whose cells must
//           be fresh distribution draws (exp_good_graph);
//   kDefer  leave loading (and its timing) to the binary itself (exp_scale
//           measures the load as a pipeline stage).
enum class GraphFilePolicy { kLoad, kRefuse, kDefer };

// How a binary treats --protocol:
//   kSelectable (default) honor it (validated against the registry);
//   kFixed      the experiment is specific to its protocols — an attempted
//               override prints a note and the default runs.
enum class ProtocolPolicy { kSelectable, kFixed };

// Prints every registered protocol ("--list-protocols").
inline void print_protocols(std::ostream& os) {
  os << ProtocolRegistry::instance().describe_all();
}

inline ExpContext init_experiment(int argc, char** argv, const std::string& id,
                                  const std::string& claim, int default_trials,
                                  GraphFilePolicy graph_file_policy =
                                      GraphFilePolicy::kLoad,
                                  const std::string& default_protocol = "2state",
                                  ProtocolPolicy protocol_policy =
                                      ProtocolPolicy::kSelectable,
                                  std::vector<std::string> extra_flags = {}) {
  ExpContext ctx;
  ctx.args = CliArgs::parse(argc, argv);
  if (ctx.args.has("list-protocols")) {
    print_protocols(std::cout);
    std::exit(0);
  }
  // Reject typo'd flags loudly before anything runs with defaults.
  std::vector<std::string> known = {
      "trials",     "seed",          "scale",         "threads",
      "batch",      "shard",         "graph-file",    "graph-mmap",
      "graph-trusted", "graph-compressed", "protocol", "list-protocols",
      "proto-*"};
  known.insert(known.end(), extra_flags.begin(), extra_flags.end());
  const auto unknown = ctx.args.unknown_options(known);
  if (!unknown.empty()) {
    for (const auto& err : unknown) std::cerr << "error: " << err << "\n";
    std::exit(2);
  }
  ctx.trials = static_cast<int>(ctx.args.get_int("trials", default_trials));
  ctx.seed = static_cast<std::uint64_t>(ctx.args.get_int("seed", 1));
  ctx.scale = ctx.args.get_double("scale", 1.0);
  ctx.parallel = parse_parallel_options(ctx.args);
  ctx.protocol = default_protocol;
  ctx.proto_params = protocol_params_from_args(ctx.args);
  ctx.compress_graphs = ctx.args.get_bool("graph-compressed", false);
  std::cout << "#### Experiment " << id << "\n";
  std::cout << "# paper claim: " << claim << "\n";
  std::cout << "# trials/cell: " << ctx.trials << ", seed: " << ctx.seed << "\n";
  if (protocol_policy == ProtocolPolicy::kFixed &&
      !ctx.proto_params.keys().empty()) {
    // Same hardening contract as unknown flags: an option that will not be
    // honored must never be swallowed silently.
    std::cout << "# note: --proto-* options ignored — this experiment sets "
                 "its protocol options itself\n";
  }
  if (ctx.args.has("protocol")) {
    const std::string requested = ctx.args.get_string("protocol", default_protocol);
    if (protocol_policy == ProtocolPolicy::kFixed) {
      std::cout << "# note: --protocol ignored — this experiment is specific "
                   "to its protocol(s)\n";
    } else if (!ProtocolRegistry::instance().contains(requested)) {
      std::cerr << "error: " << "unknown --protocol '" << requested << "'\n";
      std::cerr << "registered protocols:\n";
      print_protocols(std::cerr);
      std::exit(2);
    } else {
      ctx.protocol = requested;
      std::cout << "# protocol: " << requested << "\n";
    }
  }
  if (protocol_policy == ProtocolPolicy::kSelectable) {
    // Probe construction on a single vertex: validates --proto-* option
    // keys AND values against the selected protocol up front, so a bad
    // knob exits 2 cleanly here instead of throwing out of a trial worker
    // halfway through a table.
    try {
      const Graph probe = gen::path(1);
      ProtocolRegistry::instance().make(ctx.protocol, probe, ctx.proto_params, 1);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      std::exit(2);
    }
  }
  if (ctx.compress_graphs) {
    std::cout << "# graph-compressed: every cell graph runs on compressed "
                 "adjacency storage (bit-identical trajectories)\n";
  }
  if (ctx.args.has("graph-file")) {
    switch (graph_file_policy) {
      case GraphFilePolicy::kLoad:
        ctx.graph_override = ctx.load_graph_file_or_exit();
        std::cout << "# graph-file: " << ctx.args.get_string("graph-file", "")
                  << " -> " << ctx.graph_override->summary() << " ("
                  << ctx.graph_override->storage_mode()
                  << "); overrides every generated cell graph\n";
        break;
      case GraphFilePolicy::kRefuse:
        std::cout << "# note: --graph-file ignored — this experiment samples a "
                     "graph distribution, a fixed graph cannot stand in for it\n";
        break;
      case GraphFilePolicy::kDefer:
        break;  // the binary loads (and times) the file itself
    }
  }
  if (ctx.parallel.threads > 1) {
    // Single-run tables shard the engine even in the default batch mode —
    // the banner states the policy, not a per-table claim.
    std::cout << "# threads: " << ctx.parallel.threads << " ("
              << (ctx.parallel.batch ? "batched trials; single runs shard"
                                     : "sharded stepping")
              << ")\n";
  }
  for (const auto& err : ctx.args.errors()) std::cout << "# CLI warning: " << err << "\n";
  return ctx;
}

inline void finish_experiment(const std::string& verdict) {
  std::cout << "# verdict: " << verdict << "\n\n";
}

inline double log2n(double n) { return std::log2(std::max(2.0, n)); }

}  // namespace ssmis::bench
