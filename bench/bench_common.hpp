// Shared plumbing for the experiment binaries: standard header/footer
// formatting so every table in bench_output.txt is self-describing, plus
// the common CLI knobs (--trials, --seed, scale factors).
#pragma once

#include <cmath>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

#include "graph/ssg.hpp"
#include "harness/experiment.hpp"
#include "harness/suites.hpp"
#include "harness/trial_batch.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace ssmis::bench {

struct ExpContext {
  CliArgs args;
  int trials;
  std::uint64_t seed;
  double scale;  // multiplies default problem sizes (--scale=2 for bigger runs)
  ParallelOptions parallel;  // --threads / --batch, shared across all binaries
  // --graph-file=path: a pre-built graph (`.ssg` binary, mmap'd read-only by
  // default, or whitespace edge list) substituted for *every* generated cell
  // graph, so one expensive 10^7-vertex construction is reused across all
  // experiment binaries. Copies share the underlying CSR storage.
  std::optional<Graph> graph_override;

  // Copies the parallel-runtime knobs into a measurement config (the
  // experiment keeps setting trials/seed itself — cells offset seeds).
  void apply_parallel(MeasureConfig& config) const {
    config.threads = parallel.threads;
    config.batch = parallel.batch;
  }

  // Scheduler for a binary-local trial loop (same knobs, same determinism
  // contract as measure_stabilization).
  TrialBatch trial_batch(int num_trials) const {
    return TrialBatch(num_trials, parallel.batch ? parallel.threads : 1);
  }

  // Engine shard budget for a single run driven directly by the binary.
  int shards() const { return parallel.batch ? 1 : parallel.threads; }

  // The graph for one experiment cell: the --graph-file override when given,
  // otherwise whatever `make` generates. Returning by value is cheap either
  // way — Graph is a shared-storage handle.
  template <typename MakeGraph>
  Graph cell_graph(MakeGraph&& make) const {
    if (graph_override) return *graph_override;
    return std::forward<MakeGraph>(make)();
  }

  // Named-suite variant for the cross-cutting binaries: --graph-file
  // collapses the whole suite to the one externally supplied graph. Like
  // cell_graph, the fallback is a factory so overridden runs never pay for
  // generating suite graphs they will discard.
  template <typename MakeSuite>
  std::vector<NamedGraph> suite_or(MakeSuite&& make) const {
    if (graph_override) return {{"graph-file", *graph_override}};
    return std::forward<MakeSuite>(make)();
  }
};

// How a binary treats --graph-file:
//   kLoad   (default) load it eagerly into ctx.graph_override;
//   kRefuse reject it up front with a note, before the (possibly
//           multi-hundred-MB) file is read — for binaries whose cells must
//           be fresh distribution draws (exp_good_graph);
//   kDefer  leave loading (and its timing) to the binary itself (exp_scale
//           measures the load as a pipeline stage).
enum class GraphFilePolicy { kLoad, kRefuse, kDefer };

inline ExpContext init_experiment(int argc, char** argv, const std::string& id,
                                  const std::string& claim, int default_trials,
                                  GraphFilePolicy graph_file_policy =
                                      GraphFilePolicy::kLoad) {
  ExpContext ctx;
  ctx.args = CliArgs::parse(argc, argv);
  ctx.trials = static_cast<int>(ctx.args.get_int("trials", default_trials));
  ctx.seed = static_cast<std::uint64_t>(ctx.args.get_int("seed", 1));
  ctx.scale = ctx.args.get_double("scale", 1.0);
  ctx.parallel = parse_parallel_options(ctx.args);
  std::cout << "#### Experiment " << id << "\n";
  std::cout << "# paper claim: " << claim << "\n";
  std::cout << "# trials/cell: " << ctx.trials << ", seed: " << ctx.seed << "\n";
  if (ctx.args.has("graph-file")) {
    switch (graph_file_policy) {
      case GraphFilePolicy::kLoad:
        ctx.graph_override = io::load_graph_file_from_args(ctx.args);
        std::cout << "# graph-file: " << ctx.args.get_string("graph-file", "")
                  << " -> " << ctx.graph_override->summary()
                  << (ctx.graph_override->is_mapped() ? " (mmap)" : "")
                  << "; overrides every generated cell graph\n";
        break;
      case GraphFilePolicy::kRefuse:
        std::cout << "# note: --graph-file ignored — this experiment samples a "
                     "graph distribution, a fixed graph cannot stand in for it\n";
        break;
      case GraphFilePolicy::kDefer:
        break;  // the binary loads (and times) the file itself
    }
  }
  if (ctx.parallel.threads > 1) {
    // Single-run tables shard the engine even in the default batch mode —
    // the banner states the policy, not a per-table claim.
    std::cout << "# threads: " << ctx.parallel.threads << " ("
              << (ctx.parallel.batch ? "batched trials; single runs shard"
                                     : "sharded stepping")
              << ")\n";
  }
  for (const auto& err : ctx.args.errors()) std::cout << "# CLI warning: " << err << "\n";
  return ctx;
}

inline void finish_experiment(const std::string& verdict) {
  std::cout << "# verdict: " << verdict << "\n\n";
}

inline double log2n(double n) { return std::log2(std::max(2.0, n)); }

}  // namespace ssmis::bench
