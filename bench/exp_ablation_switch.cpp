// Ablation A1 (Section 5.1): the logarithmic switch uses the RandPhase
// mechanism "for D = 3 (not 2!)". We instantiate the generalized phase
// clock for D in {2, 3, 4} and measure (a) the switch properties S2/S3 on
// diameter-2 graphs and (b) the resulting 3-color stabilization time.
//
// With D = 2 the off-levels are only {3, 4} (two of five levels): after a
// synchronized reset the off-run is governed by the same geometric race,
// but the on-window stretches relative to the count-down, weakening the
// rate-limiting the 3-color analysis needs. D = 4 works but wastes states.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/init.hpp"
#include "core/runner.hpp"
#include "core/three_color.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "stats/summary.hpp"

using namespace ssmis;

int main(int argc, char** argv) {
  auto ctx = bench::init_experiment(
      argc, argv, "A1 (ablation): phase-clock diameter parameter D",
      "the paper picks D = 3; D = 2 weakens the on-run bound, D = 4 adds "
      "states without benefit",
      5,
      bench::GraphFilePolicy::kLoad, "3color", bench::ProtocolPolicy::kFixed);

  print_banner(std::cout, "switch run lengths by D on K_64 (20000 rounds)");
  {
    TextTable table({"D", "states", "on-levels", "max-off", "min-off", "max-on"});
    for (int d : {2, 3, 4}) {
      const Graph g = ctx.cell_graph([&] { return gen::complete(64); });
      PhaseClockSwitch sw(g, d, CoinOracle(ctx.seed + static_cast<std::uint64_t>(d)));
      const auto stats = measure_switch_runs(sw, 64, 20000, 50);
      table.begin_row();
      table.add_cell(static_cast<std::int64_t>(d));
      table.add_cell(static_cast<std::int64_t>(sw.num_states()));
      table.add_cell("0.." + std::to_string(d - 1));
      table.add_cell(stats.max_off_run);
      table.add_cell(stats.min_completed_off_run);
      table.add_cell(stats.max_on_run);
    }
    table.print(std::cout);
  }

  print_banner(std::cout, "3-color stabilization by switch D (mean rounds)");
  {
    struct Workload { std::string name; Graph graph; };
    std::vector<Workload> workloads;
    workloads.push_back({"K_128", ctx.cell_graph([&] { return gen::complete(128); })});
    workloads.push_back({"gnp256 p=0.25", ctx.cell_graph([&] { return gen::gnp(256, 0.25, ctx.seed + 3); })});
    workloads.push_back({"gnp512 p=n^-0.25", ctx.cell_graph([&] { return gen::gnp(512, std::pow(512.0, -0.25), ctx.seed + 4); })});
    TextTable table({"graph", "D=2", "D=3 (paper)", "D=4"});
    for (auto& w : workloads) {
      table.begin_row();
      table.add_cell(w.name);
      for (int d : {2, 3, 4}) {
        // The registry's 3color protocol with the generalized phase-clock
        // switch (--proto-switch-d): no bespoke construction code.
        MeasureConfig config;
        ctx.apply_parallel(config);
        config.protocol = "3color";
        config.params.set("switch-d", std::to_string(d));
        config.trials = ctx.trials;
        config.seed = ctx.seed + 100;
        config.max_rounds = 2000000;
        const Measurements m = measure_stabilization(w.graph, config);
        table.add_cell(format_double(m.summary.mean, 1) + " (" +
                       std::to_string(m.summary.count) + "/" +
                       std::to_string(ctx.trials) + " ok)");
      }
    }
    table.print(std::cout);
  }

  bench::finish_experiment(
      "D = 3 keeps on-runs at 3 rounds on diam-2 graphs; stabilization is "
      "comparable across D here, but D = 3 is the smallest D with the S2/S3 "
      "guarantees the Theorem 32 proof uses");
  return 0;
}
