// M1: micro-benchmarks of the simulation substrate (google-benchmark).
// Measures per-round step cost of each process, generator throughput, and
// verifier cost — the numbers that bound how large the reproduction sweeps
// can go.
#include <benchmark/benchmark.h>

#include "core/init.hpp"
#include "core/three_color.hpp"
#include "core/three_state.hpp"
#include "core/two_state.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "rng/coin_oracle.hpp"

namespace ssmis {
namespace {

const Graph& sparse_graph() {
  static const Graph g = gen::gnp(4096, 0.002, 7);
  return g;
}

const Graph& dense_graph() {
  static const Graph g = gen::gnp(1024, 0.25, 7);
  return g;
}

const Graph& clique_graph() {
  static const Graph g = gen::complete(512);
  return g;
}

void BM_TwoStateStepSparse(benchmark::State& state) {
  const Graph& g = sparse_graph();
  const CoinOracle coins(1);
  TwoStateMIS p(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
  for (auto _ : state) {
    p.step();
    benchmark::DoNotOptimize(p.num_active());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_TwoStateStepSparse);

void BM_TwoStateStepDense(benchmark::State& state) {
  const Graph& g = dense_graph();
  const CoinOracle coins(1);
  TwoStateMIS p(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
  for (auto _ : state) {
    p.step();
    benchmark::DoNotOptimize(p.num_active());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_TwoStateStepDense);

void BM_ThreeStateStepDense(benchmark::State& state) {
  const Graph& g = dense_graph();
  const CoinOracle coins(1);
  ThreeStateMIS p(g, make_init3(g, InitPattern::kUniformRandom, coins), coins);
  for (auto _ : state) {
    p.step();
    benchmark::DoNotOptimize(p.num_black());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_ThreeStateStepDense);

void BM_ThreeColorStepDense(benchmark::State& state) {
  const Graph& g = dense_graph();
  const CoinOracle coins(1);
  auto p = ThreeColorMIS::with_randomized_switch(
      g, make_init_g(g, InitPattern::kUniformRandom, coins), coins);
  for (auto _ : state) {
    p.step();
    benchmark::DoNotOptimize(p.num_black());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_ThreeColorStepDense);

void BM_FullRunClique(benchmark::State& state) {
  const Graph& g = clique_graph();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const CoinOracle coins(seed++);
    TwoStateMIS p(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
    while (!p.stabilized()) p.step();
    benchmark::DoNotOptimize(p.round());
  }
}
BENCHMARK(BM_FullRunClique);

void BM_GnpGeneration(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const Graph g = gen::gnp(static_cast<Vertex>(state.range(0)), 0.01, seed++);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_GnpGeneration)->Arg(1024)->Arg(8192);

void BM_RandomTreeGeneration(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const Graph g = gen::random_tree(static_cast<Vertex>(state.range(0)), seed++);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_RandomTreeGeneration)->Arg(1024)->Arg(8192);

void BM_MisVerification(benchmark::State& state) {
  const Graph& g = sparse_graph();
  const auto mis = greedy_mis(g);
  const auto mask = members_to_mask(g.num_vertices(), mis);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_mis(g, mask));
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_MisVerification);

void BM_CoinOracleWord(benchmark::State& state) {
  const CoinOracle coins(42);
  std::int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coins.word(++t, 7, CoinTag::kMisColor));
  }
}
BENCHMARK(BM_CoinOracleWord);

}  // namespace
}  // namespace ssmis
