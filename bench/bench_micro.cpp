// M1: micro-benchmarks of the simulation substrate.
//
// Two modes:
//   * default: google-benchmark micro-benchmarks (step cost of each process,
//     generator throughput, verifier cost) — the numbers that bound how
//     large the reproduction sweeps can go.
//   * --engine-json[=path]: emits the machine-readable engine cost table
//     BENCH_engine.json — ns/round for every engine-backed process on
//     sparse/dense G(n,p) with tracing on and off, plus near-stabilized
//     stepping at two sizes. Future PRs diff this file to track the perf
//     trajectory; the near-stabilized rows are the active-set scheduling
//     receipt (per-round cost tracks |A_t|, not n, so the 2-state rows stay
//     flat as n quadruples).
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/init.hpp"
#include "core/process.hpp"
#include "harness/experiment.hpp"
#include "harness/registry.hpp"
#include "core/runner.hpp"
#include "core/three_color.hpp"
#include "core/three_state.hpp"
#include "core/two_state.hpp"
#include "core/two_state_variant.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "graph/ssg.hpp"
#include "rng/coin_oracle.hpp"
#include "support/resource.hpp"

namespace ssmis {
namespace {

const Graph& sparse_graph() {
  static const Graph g = gen::gnp(4096, 0.002, 7);
  return g;
}

const Graph& dense_graph() {
  static const Graph g = gen::gnp(1024, 0.25, 7);
  return g;
}

const Graph& clique_graph() {
  static const Graph g = gen::complete(512);
  return g;
}

void BM_TwoStateStepSparse(benchmark::State& state) {
  const Graph& g = sparse_graph();
  const CoinOracle coins(1);
  TwoStateMIS p(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
  for (auto _ : state) {
    p.step();
    benchmark::DoNotOptimize(p.num_active());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_TwoStateStepSparse);

void BM_TwoStateStepDense(benchmark::State& state) {
  const Graph& g = dense_graph();
  const CoinOracle coins(1);
  TwoStateMIS p(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
  for (auto _ : state) {
    p.step();
    benchmark::DoNotOptimize(p.num_active());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_TwoStateStepDense);

void BM_ThreeStateStepDense(benchmark::State& state) {
  const Graph& g = dense_graph();
  const CoinOracle coins(1);
  ThreeStateMIS p(g, make_init3(g, InitPattern::kUniformRandom, coins), coins);
  for (auto _ : state) {
    p.step();
    benchmark::DoNotOptimize(p.num_black());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_ThreeStateStepDense);

void BM_ThreeColorStepDense(benchmark::State& state) {
  const Graph& g = dense_graph();
  const CoinOracle coins(1);
  auto p = ThreeColorMIS::with_randomized_switch(
      g, make_init_g(g, InitPattern::kUniformRandom, coins), coins);
  for (auto _ : state) {
    p.step();
    benchmark::DoNotOptimize(p.num_black());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_ThreeColorStepDense);

// Stepping a stabilized process with per-round tracing: the active set is
// empty, so the engine does O(1) work per round regardless of n.
void BM_TwoStateStabilizedTracedStep(benchmark::State& state) {
  const Graph g = gen::gnp(static_cast<Vertex>(state.range(0)),
                           8.0 / static_cast<double>(state.range(0)), 7);
  const CoinOracle coins(1);
  TwoStateMIS p(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
  run_until_stabilized(p, 1000000);
  for (auto _ : state) {
    p.step();
    benchmark::DoNotOptimize(snapshot(p));
  }
}
BENCHMARK(BM_TwoStateStabilizedTracedStep)->Arg(16384)->Arg(65536);

void BM_FullRunClique(benchmark::State& state) {
  const Graph& g = clique_graph();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const CoinOracle coins(seed++);
    TwoStateMIS p(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
    while (!p.stabilized()) p.step();
    benchmark::DoNotOptimize(p.round());
  }
}
BENCHMARK(BM_FullRunClique);

void BM_GnpGeneration(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const Graph g = gen::gnp(static_cast<Vertex>(state.range(0)), 0.01, seed++);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_GnpGeneration)->Arg(1024)->Arg(8192);

void BM_RandomTreeGeneration(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const Graph g = gen::random_tree(static_cast<Vertex>(state.range(0)), seed++);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_RandomTreeGeneration)->Arg(1024)->Arg(8192);

void BM_MisVerification(benchmark::State& state) {
  const Graph& g = sparse_graph();
  const auto mis = greedy_mis(g);
  const auto mask = members_to_mask(g.num_vertices(), mis);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_mis(g, mask));
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_MisVerification);

void BM_CoinOracleWord(benchmark::State& state) {
  const CoinOracle coins(42);
  std::int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coins.word(++t, 7, CoinTag::kMisColor));
  }
}
BENCHMARK(BM_CoinOracleWord);

// --------------------------------------------------------------------------
// BENCH_engine.json: machine-readable engine cost table.
// --------------------------------------------------------------------------

struct EngineBenchRow {
  std::string process;
  std::string graph;
  std::string phase;  // "full_run", "stabilized_step", "sharded_step",
                      // "trial_batch", "graph_build", "compressed_codec"
  Vertex n = 0;
  std::int64_t m = 0;
  bool trace = false;
  std::int64_t rounds = 0;
  double ns_per_round = 0.0;
  int threads = 1;               // shard / batch width for the parallel rows
  double trials_per_sec = 0.0;   // trial_batch rows only
  std::int64_t trials_ok = 0;    // trial_batch rows only: stabilized trials
  double edges_per_sec = 0.0;    // graph_build rows only
  double peak_rss_mb = 0.0;      // graph_build rows only: process high-water mark
  double endpoints_per_sec = 0.0;  // compressed_codec rows: decode throughput
  double bytes_per_edge = 0.0;     // compressed_codec rows: on-disk density
  bool fast_forward = true;        // protocol_stabilized_step rows: ff knob state
  // Parallel rows recorded at a width beyond this host's cores measure
  // oversubscription, not speedup — the marker makes the caveat machine-
  // readable instead of a README footnote.
  bool suspect = false;
};

using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
          .count());
}

// Times run_until_stabilized from a uniform-random start.
template <typename MakeProcess>
EngineBenchRow full_run_row(const std::string& process, const std::string& gname,
                            const Graph& g, MakeProcess make, TraceMode mode) {
  auto p = make();
  const auto start = Clock::now();
  const RunResult r = run_until_stabilized(p, 200000, mode);
  const double ns = elapsed_ns(start);
  EngineBenchRow row;
  row.process = process;
  row.graph = gname;
  row.phase = "full_run";
  row.n = g.num_vertices();
  row.m = g.num_edges();
  row.trace = mode == TraceMode::kPerRound;
  row.rounds = r.rounds > 0 ? r.rounds : 1;
  row.ns_per_round = ns / static_cast<double>(row.rounds);
  return row;
}

// Times traced stepping of an already-stabilized process: the per-round cost
// is driven by the (empty or tiny) active set, not by n.
template <typename MakeProcess>
EngineBenchRow stabilized_row(const std::string& process, const std::string& gname,
                              const Graph& g, MakeProcess make, std::int64_t reps) {
  auto p = make();
  run_until_stabilized(p, 1000000);
  std::int64_t checksum = 0;
  const auto start = Clock::now();
  for (std::int64_t i = 0; i < reps; ++i) {
    p.step();
    const RoundStats s = snapshot(p);
    checksum += s.black + s.active;
  }
  benchmark::DoNotOptimize(checksum);  // keep the timed loop observable
  const double ns = elapsed_ns(start);
  EngineBenchRow row;
  row.process = process;
  row.graph = gname;
  row.phase = "stabilized_step";
  row.n = g.num_vertices();
  row.m = g.num_edges();
  row.trace = true;
  row.rounds = reps;
  row.ns_per_round = ns / static_cast<double>(reps);
  return row;
}

// A parallel row recorded wider than this host's cores measured
// oversubscription, not speedup. hardware_concurrency() may legally return
// 0 (unknown): clamp so the threads=1 baselines can never be suspect.
bool suspect_width(int threads) {
  return static_cast<unsigned>(threads) >
         std::max(1u, std::thread::hardware_concurrency());
}

// Sharded-stepping rows: ns/round of the 2-state decide phase at 1/2/4/8
// shards on one large dense-ish graph (big worklists, so the shard grain is
// actually exceeded). Shard counts beyond the host's core count record the
// oversubscribed cost honestly — the committed file says what this machine
// measured.
void append_sharded_rows(std::vector<EngineBenchRow>& rows) {
  const Graph g = gen::gnp(16384, 0.002, 7);
  const std::string gname = "gnp_n16384_p0.002";
  for (int threads : {1, 2, 4, 8}) {
    const CoinOracle coins(1);
    TwoStateMIS p(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
    p.set_shards(threads);
    const auto start = Clock::now();
    const RunResult r = run_until_stabilized(p, 200000);
    const double ns = elapsed_ns(start);
    EngineBenchRow row;
    row.process = "two_state";
    row.graph = gname;
    row.phase = "sharded_step";
    row.n = g.num_vertices();
    row.m = g.num_edges();
    row.rounds = r.rounds > 0 ? r.rounds : 1;
    row.ns_per_round = ns / static_cast<double>(row.rounds);
    row.threads = threads;
    row.suspect = suspect_width(threads);
    rows.push_back(row);
  }
}

// Trial-batch rows: trials/sec of measure_stabilization on the G(n,p) sweep
// workload (the shape of every headline table) at 1/2/4/8 threads.
void append_trial_batch_rows(std::vector<EngineBenchRow>& rows) {
  const Vertex n = 2048;
  const Graph g = gen::gnp(n, std::log(static_cast<double>(n)) / n, 7);
  const std::string gname = "gnp_sweep_n2048_p=lnn/n";
  for (int threads : {1, 2, 4, 8}) {
    MeasureConfig config;
    config.protocol = "2state";
    config.trials = 48;
    config.seed = 1;
    config.max_rounds = 1000000;
    config.threads = threads;
    config.batch = true;
    const auto start = Clock::now();
    const Measurements m = measure_stabilization(g, config);
    const double ns = elapsed_ns(start);
    EngineBenchRow row;
    row.process = "two_state";
    row.graph = gname;
    row.phase = "trial_batch";
    row.n = g.num_vertices();
    row.m = g.num_edges();
    row.trials_ok = static_cast<std::int64_t>(m.summary.count);
    row.trials_per_sec = static_cast<double>(config.trials) * 1e9 / ns;
    row.threads = threads;
    row.suspect = suspect_width(threads);
    rows.push_back(row);
  }
}

// Graph-substrate rows: streaming construction throughput (edges/sec) and
// the process's peak RSS after each build, plus the `.ssg` save -> mmap
// round-trip. peak_rss_mb is a lifetime high-water mark — compare rows
// within one emission run in order, not across runs.
void append_graph_build_rows(std::vector<EngineBenchRow>& rows) {
  // Per-process scratch dir: concurrent bench runs on one host must not
  // race on the round-trip files.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("ssmis_bench_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  for (Vertex n : {1 << 18, 1 << 20}) {
    const double p = 8.0 / static_cast<double>(n);
    const auto start = Clock::now();
    const Graph g = gen::gnp(n, p, 7);
    const double ns = elapsed_ns(start);
    EngineBenchRow row;
    row.process = "csr_builder";
    row.graph = "gnp_avgdeg8_n" + std::to_string(n);
    row.phase = "graph_build";
    row.n = n;
    row.m = g.num_edges();
    row.edges_per_sec = static_cast<double>(g.num_edges()) * 1e9 / ns;
    row.peak_rss_mb = static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0);
    rows.push_back(row);

    const std::string path = (dir / ("n" + std::to_string(n) + ".ssg")).string();
    const auto save_start = Clock::now();
    io::save_ssg(path, g);
    const Graph mapped = io::mmap_ssg(path);
    const double rt_ns = elapsed_ns(save_start);
    EngineBenchRow rt;
    rt.process = "ssg_save_mmap";
    rt.graph = row.graph;
    rt.phase = "graph_build";
    rt.n = n;
    rt.m = mapped.num_edges();
    rt.edges_per_sec = static_cast<double>(mapped.num_edges()) * 1e9 / rt_ns;
    rt.peak_rss_mb = static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0);
    rows.push_back(rt);
  }
  std::filesystem::remove_all(dir);
}

// Compressed-adjacency codec rows: full-sweep decode throughput (streaming
// RowStream decode of every row, endpoints/sec) plus the storage density in
// bytes/edge against the plain CSR equivalent. The decode rate bounds the
// per-round cost penalty of running a process on compressed storage; the
// density is the RSS lever that makes 10^8 vertices fit.
void append_compressed_codec_rows(std::vector<EngineBenchRow>& rows) {
  for (Vertex n : {1 << 18, 1 << 20}) {
    const double p = 8.0 / static_cast<double>(n);
    const Graph g = gen::gnp(n, p, 7);
    const Graph c = Graph::compress(g);
    // Warm + measured full-row sweeps.
    NeighborScratch scratch;
    std::int64_t checksum = 0;
    const int sweeps = 5;
    const auto start = Clock::now();
    for (int s = 0; s < sweeps; ++s) {
      Graph::RowStream stream(c);
      for (Vertex u = 0; u < c.num_vertices(); ++u)
        for (Vertex v : stream.next(scratch)) checksum += v;
    }
    const double ns = elapsed_ns(start);
    volatile std::int64_t sink = checksum;  // keep the sweeps observable
    (void)sink;

    EngineBenchRow row;
    row.process = "compressed_decode";
    row.graph = "gnp_avgdeg8_n" + std::to_string(n);
    row.phase = "compressed_codec";
    row.n = n;
    row.m = c.num_edges();
    row.endpoints_per_sec =
        static_cast<double>(2 * c.num_edges()) * sweeps * 1e9 / ns;
    row.bytes_per_edge = c.num_edges() > 0
                             ? static_cast<double>(io::ssg_file_bytes(c)) /
                                   static_cast<double>(c.num_edges())
                             : 0.0;
    // No peak_rss_mb here: the process high-water mark is monotone and by
    // this point reflects the earlier graph_build rows, not the codec.
    rows.push_back(row);
  }
}

void append_process_rows(std::vector<EngineBenchRow>& rows, const std::string& gname,
                         const Graph& g) {
  const CoinOracle coins(1);
  for (TraceMode mode : {TraceMode::kNone, TraceMode::kPerRound}) {
    rows.push_back(full_run_row("two_state", gname, g,
                                [&] {
                                  return TwoStateMIS(
                                      g, make_init2(g, InitPattern::kUniformRandom, coins),
                                      coins);
                                },
                                mode));
    rows.push_back(full_run_row("two_state_variant", gname, g,
                                [&] {
                                  return TwoStateVariant(
                                      g, make_init2(g, InitPattern::kUniformRandom, coins),
                                      coins, 0.5, false);
                                },
                                mode));
    rows.push_back(full_run_row("three_state", gname, g,
                                [&] {
                                  return ThreeStateMIS(
                                      g, make_init3(g, InitPattern::kUniformRandom, coins),
                                      coins);
                                },
                                mode));
    rows.push_back(full_run_row("three_color", gname, g,
                                [&] {
                                  return ThreeColorMIS::with_randomized_switch(
                                      g, make_init_g(g, InitPattern::kUniformRandom, coins),
                                      coins);
                                },
                                mode));
  }
}

// Near-stabilized stepping for EVERY registered protocol, driven through
// the type-erased registry path (the same one measure_stabilization uses):
// a new workload lands in this table with zero bench code. The networks and
// the 3-state family keep re-randomizing at the fixed point by design, so
// their per-round cost tracks |MIS|, not n; the 2-state family rows are the
// O(1) active-set receipt.
void append_protocol_rows(std::vector<EngineBenchRow>& rows) {
  const Vertex n = 16384;
  const Graph g = gen::gnp(n, 8.0 / static_cast<double>(n), 7);
  const std::string gname = "gnp_avgdeg8_n" + std::to_string(n);
  for (const std::string& name : ProtocolRegistry::instance().names()) {
    // Protocols that declare the stable-periodic fast-forward knob get an
    // A/B pair (ff on and off); the rest get one row at the default.
    const auto& opts = ProtocolRegistry::instance().options(name);
    const bool has_ff =
        std::find(opts.begin(), opts.end(), "fast-forward") != opts.end();
    for (const bool ff : has_ff ? std::vector<bool>{true, false}
                                : std::vector<bool>{true}) {
      ProtocolParams params;
      if (has_ff) params.set("fast-forward", ff ? "1" : "0");
      auto p = ProtocolRegistry::instance().make(name, g, params, 1);
      const RunResult pre = p->run(1000000, TraceMode::kNone);
      // Settle well past stabilization so the timed window measures the
      // steady state (parked periodic sets, drained lazy-switch replays).
      for (int i = 0; i < 1000; ++i) p->step();
      // Adaptive reps: fast-forwarded rows run in single-digit ns/round, so
      // a fixed small rep count would measure clock granularity. Grow the
      // window until it is comfortably above timer resolution.
      std::int64_t reps = 200;
      double ns = 0.0;
      for (;;) {
        std::int64_t checksum = 0;
        const auto start = Clock::now();
        for (std::int64_t i = 0; i < reps; ++i) {
          p->step();
          checksum += p->snapshot().black;
        }
        benchmark::DoNotOptimize(checksum);
        ns = elapsed_ns(start);
        if (ns >= 2e7 || reps >= (std::int64_t{1} << 22)) break;
        reps *= 8;
      }
      EngineBenchRow row;
      row.process = name;
      row.graph = gname;
      row.phase = "protocol_stabilized_step";
      row.n = n;
      row.m = g.num_edges();
      row.trace = true;
      row.rounds = reps;
      row.ns_per_round = ns / static_cast<double>(reps);
      row.trials_ok = pre.stabilized ? 1 : 0;  // repurposed: pre-run stabilized?
      row.fast_forward = ff;
      rows.push_back(row);
    }
  }
}

void write_engine_json(const std::string& path) {
  std::vector<EngineBenchRow> rows;
  {
    const Graph g = gen::gnp(4096, 0.002, 7);
    append_process_rows(rows, "gnp_sparse_n4096_p0.002", g);
  }
  {
    const Graph g = gen::gnp(1024, 0.25, 7);
    append_process_rows(rows, "gnp_dense_n1024_p0.25", g);
  }
  // Active-set scaling receipt: traced stepping of a stabilized 2-state
  // process must not grow with n (the worklist is empty); the 3-state rows
  // scale with |MIS| by design (stable blacks keep re-randomizing).
  for (Vertex n : {16384, 65536}) {
    const Graph g = gen::gnp(n, 8.0 / static_cast<double>(n), 7);
    const std::string gname = "gnp_avgdeg8_n" + std::to_string(n);
    const CoinOracle coins(1);
    rows.push_back(stabilized_row(
        "two_state", gname, g,
        [&] {
          return TwoStateMIS(g, make_init2(g, InitPattern::kUniformRandom, coins),
                             coins);
        },
        4000));
    rows.push_back(stabilized_row(
        "three_state", gname, g,
        [&] {
          return ThreeStateMIS(g, make_init3(g, InitPattern::kUniformRandom, coins),
                               coins);
        },
        200));
  }
  // Near-stabilized ns/round for every registered protocol (registry path).
  append_protocol_rows(rows);
  // Parallel-runtime rows (sharded stepping + batched trials at 1/2/4/8
  // threads). Interpret speedups against "host_threads" below: on a 1-core
  // host every width measures ~1x by physics, not by design.
  append_sharded_rows(rows);
  append_trial_batch_rows(rows);
  // Graph-substrate rows: streaming build throughput + .ssg round-trip.
  append_graph_build_rows(rows);
  // Compressed-adjacency codec rows: decode throughput + bytes/edge.
  append_compressed_codec_rows(rows);

  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_micro: cannot open " << path << " for writing\n";
    std::exit(1);
  }
  int suspect_parallel_rows = 0;
  for (const EngineBenchRow& r : rows) suspect_parallel_rows += r.suspect ? 1 : 0;
  out << "{\n";
  out << "  \"schema\": \"ssmis-bench-engine-v6\",\n";
  out << "  \"description\": \"per-round stepping cost of the unified sparse "
         "process engine, near-stabilized rows for every registry protocol "
         "(protocol_stabilized_step, fast-forward A/B pairs where the "
         "protocol declares the knob), parallel-runtime rows (sharded_step "
         "ns/round and trial_batch trials/sec at 1/2/4/8 threads), and "
         "graph-substrate rows (graph_build edges/sec + peak RSS for the "
         "streaming CSR builder and the .ssg save/mmap round-trip), and "
         "compressed-adjacency rows (compressed_codec: full-sweep decode "
         "endpoints/sec and on-disk bytes/edge of the varint/delta codec)\",\n";
  out << "  \"unit\": \"ns_per_round\",\n";
  out << "  \"host_threads\": " << std::max(1u, std::thread::hardware_concurrency()) << ",\n";
  // Rows whose thread width exceeds host_threads measured oversubscription
  // on this machine; diff tools must not read them as regressions.
  out << "  \"suspect_parallel_rows\": " << suspect_parallel_rows << ",\n";
  out << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const EngineBenchRow& r = rows[i];
    out << "    {\"process\": \"" << r.process << "\", \"graph\": \"" << r.graph
        << "\", \"phase\": \"" << r.phase << "\", \"n\": " << r.n
        << ", \"m\": " << r.m << ", \"trace\": " << (r.trace ? "true" : "false")
        << ", \"rounds\": " << r.rounds << ", \"threads\": " << r.threads
        << ", \"ns_per_round\": " << r.ns_per_round;
    if (r.phase == "trial_batch")
      out << ", \"trials_ok\": " << r.trials_ok
          << ", \"trials_per_sec\": " << r.trials_per_sec;
    if (r.phase == "graph_build")
      out << ", \"edges_per_sec\": " << r.edges_per_sec
          << ", \"peak_rss_mb\": " << r.peak_rss_mb;
    if (r.phase == "compressed_codec")
      out << ", \"endpoints_per_sec\": " << r.endpoints_per_sec
          << ", \"bytes_per_edge\": " << r.bytes_per_edge;
    if (r.phase == "protocol_stabilized_step")
      out << ", \"pre_run_stabilized\": " << (r.trials_ok ? "true" : "false")
          << ", \"fast_forward\": " << (r.fast_forward ? "true" : "false");
    if (r.suspect) out << ", \"suspect\": true";
    out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  std::cout << "wrote " << rows.size() << " rows to " << path << "\n";
}

}  // namespace
}  // namespace ssmis

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--engine-json") {
      ssmis::write_engine_json("BENCH_engine.json");
      return 0;
    }
    if (arg.rfind("--engine-json=", 0) == 0) {
      ssmis::write_engine_json(arg.substr(std::string("--engine-json=").size()));
      return 0;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
