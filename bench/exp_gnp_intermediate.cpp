// Experiment E8 (Theorems 2 vs 3): the intermediate density regime
// sqrt(log n / n) << p << 1/polylog(n) — e.g. p = n^{-1/4} — is exactly
// where the 2-state analysis (Theorem 19) does not apply; the 18-state
// 3-color process (Theorem 32) is proven poly(log n) there.
//
// We run both processes side by side. The paper *conjectures* the 2-state
// process is also polylog here, so the expected shape is: both stabilize in
// polylog rounds, with the 3-color process paying a constant-factor
// overhead for its switch cycles (off-runs last Theta(log n) rounds with a
// large constant a = 512).
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"

using namespace ssmis;

int main(int argc, char** argv) {
  auto ctx = bench::init_experiment(
      argc, argv, "E8 (Theorem 3/32 vs conjecture): intermediate G(n,p)",
      "3-color is poly(log n) for ALL p (proven); 2-state conjectured", 5,
      bench::GraphFilePolicy::kLoad, "2state", bench::ProtocolPolicy::kFixed);

  struct Cell {
    Vertex n;
    double exponent;  // p = n^-exponent
  };
  const std::vector<Cell> cells = {
      {256, 0.50}, {256, 0.33}, {256, 0.25},
      {512, 0.50}, {512, 0.33}, {512, 0.25},
      {1024, 0.33}, {1024, 0.25},
  };

  print_banner(std::cout, "2-state vs 3-color on G(n, n^-a), intermediate a");
  TextTable table({"n", "p=n^-a", "avg-deg", "2state mean", "2state p95",
                   "3color mean", "3color p95", "3color/2state"});
  for (const Cell& cell : cells) {
    const double p = std::pow(static_cast<double>(cell.n), -cell.exponent);
    const Graph g = ctx.cell_graph([&] { return gen::gnp(cell.n, p, ctx.seed + static_cast<std::uint64_t>(cell.n)); });

    MeasureConfig c2;
    ctx.apply_parallel(c2);
    c2.protocol = "2state";
    c2.trials = ctx.trials;
    c2.seed = ctx.seed + 3;
    c2.max_rounds = 2000000;
    const Measurements m2 = measure_stabilization(g, c2);

    MeasureConfig c3 = c2;
    c3.protocol = "3color";
    const Measurements m3 = measure_stabilization(g, c3);

    table.begin_row();
    table.add_cell(static_cast<std::int64_t>(cell.n));
    table.add_cell(p, 4);
    table.add_cell(g.average_degree());
    table.add_cell(m2.summary.mean);
    table.add_cell(m2.summary.p95);
    table.add_cell(m3.summary.mean);
    table.add_cell(m3.summary.p95);
    table.add_cell(m2.summary.mean > 0 ? m3.summary.mean / m2.summary.mean : 0.0);
  }
  table.print(std::cout);

  bench::finish_experiment(
      "both processes polylog in the intermediate regime (supports the "
      "conjecture); the 3-color process pays one-to-two switch cycles, i.e. "
      "Theta(log n) rounds with the large constant a = 512 from Lemma 27");
  return 0;
}
