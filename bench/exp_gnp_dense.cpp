// Experiment E7 (Theorem 19, dense side): on G(n,p) with p >= 1/polylog(n),
// the 2-state process is poly(log n) w.h.p. Dense graphs behave almost like
// cliques: after one round a single surviving black vertex dominates almost
// everything.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"

using namespace ssmis;

int main(int argc, char** argv) {
  auto ctx = bench::init_experiment(
      argc, argv, "E7 (Theorem 19 dense): G(n,p), p >= 1/polylog(n)",
      "2-state is poly(log n) whp for p >= 1/polylog(n)", 10);

  struct Regime {
    std::string name;
    double (*p_of)(double n);
  };
  const std::vector<Regime> regimes = {
      {"p = 0.5", [](double) { return 0.5; }},
      {"p = 0.25", [](double) { return 0.25; }},
      {"p = 0.1", [](double) { return 0.1; }},
      {"p = 1/ln(n)", [](double n) { return 1.0 / std::log(n); }},
      {"p = 1/ln^2.5(n)", [](double n) { return 1.0 / std::pow(std::log(n), 2.5); }},
  };

  for (const auto& regime : regimes) {
    print_banner(std::cout, ctx.protocol + " on G(n,p), " + regime.name);
    TextTable table({"n", "p", "mean", "p95", "p95/log2(n)", "p95/log2^2(n)"});
    for (Vertex n : {256, 512, 1024, 2048}) {
      const double p = regime.p_of(static_cast<double>(n));
      const Graph g = ctx.cell_graph([&] { return gen::gnp(n, p, ctx.seed + static_cast<std::uint64_t>(n)); });
      MeasureConfig config;
      config.trials = ctx.trials;
      config.seed = ctx.seed + 47 + static_cast<std::uint64_t>(n);
      config.max_rounds = 1000000;
      ctx.apply(config);
      const Measurements m = measure_stabilization(g, config);
      const double ln = bench::log2n(n);
      table.begin_row();
      table.add_cell(static_cast<std::int64_t>(n));
      table.add_cell(p, 4);
      table.add_cell(m.summary.mean);
      table.add_cell(m.summary.p95);
      table.add_cell(m.summary.p95 / ln);
      table.add_cell(m.summary.p95 / (ln * ln));
    }
    table.print(std::cout);
  }

  bench::finish_experiment("dense regimes polylog: p95/log2^2(n) bounded");
  return 0;
}
