// Extension experiment X1 (not a paper claim): quality of the MIS the
// processes converge to.
//
// The paper proves nothing about MIS *size* — any MIS is an acceptable
// output — but a library user will ask. On small graphs we compare against
// the exact extremes (maximum independent set and minimum maximal
// independent set, both branch-and-bound); on larger graphs against the
// greedy reference. Expectation: the randomized processes land strictly
// between the extremes, usually close to greedy.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/verify.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "stats/summary.hpp"

using namespace ssmis;

namespace {

Summary mis_sizes(const Graph& g, const std::string& protocol, int trials,
                  std::uint64_t seed,
                  const bench::ExpContext& ctx) {
  const auto outcomes =
      ctx.trial_batch(trials).map<double>([&](int trial) -> double {
        MeasureConfig config;
        config.protocol = protocol;
        config.trials = 1;
        config.seed = seed + static_cast<std::uint64_t>(trial);
        config.max_rounds = 2000000;
        config.threads = ctx.shards();  // traced_run shards, never batches
        // Re-run through the harness trace API to recover the final black count.
        const RunResult r = traced_run(g, config);
        if (r.stabilized && !r.trace.empty())
          return static_cast<double>(r.trace.back().black);
        return -1.0;
      });
  std::vector<double> sizes;
  for (double v : outcomes)
    if (v >= 0.0) sizes.push_back(v);
  return summarize(sizes);
}

}  // namespace

int main(int argc, char** argv) {
  auto ctx = bench::init_experiment(
      argc, argv, "X1 (extension): MIS size quality",
      "no size claim in the paper; processes should land between the exact "
      "minimum-maximal and maximum independent set sizes",
      20,
      bench::GraphFilePolicy::kLoad, "2state", bench::ProtocolPolicy::kFixed);

  print_banner(std::cout, "small graphs: exact extremes vs process output");
  {
    struct Cell { std::string name; Graph graph; };
    std::vector<Cell> cells;
    cells.push_back({"gnp24 p=0.2", ctx.cell_graph([&] { return gen::gnp(24, 0.2, ctx.seed); })});
    cells.push_back({"gnp28 p=0.3", ctx.cell_graph([&] { return gen::gnp(28, 0.3, ctx.seed + 1); })});
    cells.push_back({"grid 5x5", ctx.cell_graph([&] { return gen::grid(5, 5); })});
    cells.push_back({"cycle 18", ctx.cell_graph([&] { return gen::cycle(18); })});
    cells.push_back({"tree 26", ctx.cell_graph([&] { return gen::random_tree(26, ctx.seed + 2); })});
    cells.push_back({"K_12", ctx.cell_graph([&] { return gen::complete(12); })});
    TextTable table({"graph", "min maximal", "max independent", "2-state mean",
                     "3-state mean", "greedy"});
    for (auto& cell : cells) {
      const auto i_min = independent_domination_number(cell.graph);
      const auto alpha = exact_max_independent_set(cell.graph).size();
      const Summary s2 = mis_sizes(cell.graph, "2state", ctx.trials,
                                   ctx.seed + 11, ctx);
      const Summary s3 = mis_sizes(cell.graph, "3state", ctx.trials,
                                   ctx.seed + 13, ctx);
      table.begin_row();
      table.add_cell(cell.name);
      table.add_cell(static_cast<std::int64_t>(i_min));
      table.add_cell(static_cast<std::int64_t>(alpha));
      table.add_cell(s2.mean);
      table.add_cell(s3.mean);
      table.add_cell(static_cast<std::int64_t>(greedy_mis(cell.graph).size()));
    }
    table.print(std::cout);
  }

  print_banner(std::cout, "larger graphs: process vs greedy reference");
  {
    struct Cell { std::string name; Graph graph; };
    std::vector<Cell> cells;
    cells.push_back({"gnp512 p=0.01", ctx.cell_graph([&] { return gen::gnp(512, 0.01, ctx.seed + 3); })});
    cells.push_back({"gnp512 p=0.1", ctx.cell_graph([&] { return gen::gnp(512, 0.1, ctx.seed + 4); })});
    cells.push_back({"tree2048", ctx.cell_graph([&] { return gen::random_tree(2048, ctx.seed + 5); })});
    cells.push_back({"torus 24x24", ctx.cell_graph([&] { return gen::torus(24, 24); })});
    TextTable table({"graph", "2-state mean", "2-state min..max", "greedy",
                     "mean/greedy"});
    for (auto& cell : cells) {
      const Summary s2 = mis_sizes(cell.graph, "2state", ctx.trials,
                                   ctx.seed + 17, ctx);
      const auto greedy = static_cast<double>(greedy_mis(cell.graph).size());
      table.begin_row();
      table.add_cell(cell.name);
      table.add_cell(s2.mean);
      table.add_cell(format_double(s2.min, 0) + ".." + format_double(s2.max, 0));
      table.add_cell(greedy, 0);
      table.add_cell(s2.mean / greedy);
    }
    table.print(std::cout);
  }

  bench::finish_experiment(
      "process MIS sizes sit strictly between the exact extremes and track "
      "greedy within a few percent on irregular graphs; on structured "
      "lattices greedy's ordered scan finds denser packings (torus: process "
      "~0.7x greedy), still far above the minimum-maximal floor");
  return 0;
}
