// Experiment E6 (Theorem 19, sparse side): on G(n,p) with
// p <= c sqrt(log n / n), the 2-state process stabilizes in poly(log n)
// rounds w.h.p. (the paper proves O(log^5.5 n); measured constants are far
// smaller). Diagnostic: p95/log2(n) and p95/log2^2(n) stay bounded as n
// grows, for each p-regime.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"

using namespace ssmis;

int main(int argc, char** argv) {
  auto ctx = bench::init_experiment(
      argc, argv, "E6 (Theorem 19 sparse): G(n,p), p <= sqrt(log n / n)",
      "2-state is poly(log n) whp for p up to ~sqrt(log n / n)", 10);

  struct Regime {
    std::string name;
    double (*p_of)(double n);
  };
  const std::vector<Regime> regimes = {
      {"p = 2/n", [](double n) { return 2.0 / n; }},
      {"p = ln(n)/n", [](double n) { return std::log(n) / n; }},
      {"p = n^-0.75", [](double n) { return std::pow(n, -0.75); }},
      {"p = sqrt(ln n / n)", [](double n) { return std::sqrt(std::log(n) / n); }},
  };

  for (const auto& regime : regimes) {
    print_banner(std::cout, ctx.protocol + " on G(n,p), " + regime.name);
    TextTable table({"n", "p", "avg-deg", "mean", "p95", "p95/log2(n)", "p95/log2^2(n)"});
    for (Vertex n : {256, 1024, 4096, 8192}) {
      const double p = regime.p_of(static_cast<double>(n));
      const Graph g = ctx.cell_graph([&] { return gen::gnp(n, p, ctx.seed + static_cast<std::uint64_t>(n)); });
      MeasureConfig config;
      config.trials = ctx.trials;
      config.seed = ctx.seed + 31 + static_cast<std::uint64_t>(n);
      config.max_rounds = 1000000;
      ctx.apply(config);
      const Measurements m = measure_stabilization(g, config);
      const double ln = bench::log2n(n);
      table.begin_row();
      table.add_cell(static_cast<std::int64_t>(n));
      table.add_cell(p, 5);
      table.add_cell(g.average_degree());
      table.add_cell(m.summary.mean);
      table.add_cell(m.summary.p95);
      table.add_cell(m.summary.p95 / ln);
      table.add_cell(m.summary.p95 / (ln * ln));
    }
    table.print(std::cout);
  }

  bench::finish_experiment(
      "all four sparse regimes polylog: p95/log2^2(n) bounded (well below "
      "the paper's log^5.5 headroom)");
  return 0;
}
