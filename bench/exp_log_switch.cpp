// Experiment E10 (Lemma 27): the randomized logarithmic switch (Definition
// 26, zeta = 2^-7, a = 4/zeta = 512, b = 3) satisfies:
//   S1: every off-run <= a ln n            (any graph)
//   S2: every off-run >= (a/6) ln n        (diam <= 2, after warm-up)
//   S3: every on-run <= b = 3              (diam <= 2, after O(1) rounds)
// On graphs of large diameter only S1 is claimed — the path row demonstrates
// S3 genuinely failing there.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/log_switch.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

using namespace ssmis;

int main(int argc, char** argv) {
  auto ctx = bench::init_experiment(
      argc, argv, "E10 (Lemma 27): logarithmic switch run lengths",
      "S1 everywhere; S2 and S3 on diameter <= 2 graphs", 1,
      bench::GraphFilePolicy::kLoad, "2state", bench::ProtocolPolicy::kFixed);

  struct Cell {
    std::string name;
    Graph graph;
  };
  std::vector<Cell> cells;
  cells.push_back({"K_64", ctx.cell_graph([&] { return gen::complete(64); })});
  cells.push_back({"star_64", ctx.cell_graph([&] { return gen::star(64); })});
  cells.push_back({"gnp_128_dense", ctx.cell_graph([&] { return gen::gnp(128, 0.5, ctx.seed); })});
  cells.push_back({"gnp_256_dense", ctx.cell_graph([&] { return gen::gnp(256, 0.4, ctx.seed + 1); })});
  cells.push_back({"path_256", ctx.cell_graph([&] { return gen::path(256); })});
  cells.push_back({"cycle_128", ctx.cell_graph([&] { return gen::cycle(128); })});

  print_banner(std::cout, "switch run-length statistics (20000 rounds, warm-up 50)");
  TextTable table({"graph", "n", "diam<=2", "max-off", "S1 bound a*ln(n)",
                   "min-off", "S2 bound (a/6)ln(n)", "max-on", "S3 bound b=3"});
  // Cells are independent (each owns its switch), so they batch across the
  // pool like trials; rows are emitted in cell order regardless of threads.
  struct CellRow {
    SwitchRunStats stats;
    bool diam2 = false;
    double a = 0;
  };
  const auto rows = ctx.trial_batch(static_cast<int>(cells.size()))
                        .map<CellRow>([&](int i) {
                          auto& cell = cells[static_cast<std::size_t>(i)];
                          RandomizedLogSwitch sw(cell.graph, CoinOracle(ctx.seed + 17));
                          CellRow row;
                          row.stats = measure_switch_runs(
                              sw, cell.graph.num_vertices(), 20000, 50);
                          row.diam2 = has_diameter_at_most_2(cell.graph);
                          row.a = sw.parameter_a();
                          return row;
                        });
  for (std::size_t i = 0; i < cells.size(); ++i) {
    auto& cell = cells[i];
    const Vertex n = cell.graph.num_vertices();
    const auto& stats = rows[i].stats;
    const bool diam2 = rows[i].diam2;
    const double a = rows[i].a;
    table.begin_row();
    table.add_cell(cell.name);
    table.add_cell(static_cast<std::int64_t>(n));
    table.add_cell(diam2 ? "yes" : "no");
    table.add_cell(stats.max_off_run);
    table.add_cell(a * std::log(static_cast<double>(n)), 0);
    table.add_cell(stats.min_completed_off_run);
    table.add_cell(diam2 ? format_double(a / 6.0 * std::log(static_cast<double>(n)), 0)
                         : "n/a");
    table.add_cell(stats.max_on_run);
    table.add_cell(diam2 ? "3" : "n/a");
  }
  table.print(std::cout);

  // Effect of zeta: larger zeta => shorter off-runs (a = 4/zeta).
  print_banner(std::cout, "zeta sweep on K_64 (a = 4/zeta scales the off-run length)");
  TextTable ztable({"zeta", "a=4/zeta", "max-off", "min-off", "max-on"});
  for (unsigned den : {5u, 6u, 7u, 8u}) {
    const Graph g = ctx.cell_graph([&] { return gen::complete(64); });
    RandomizedLogSwitch sw(g, CoinOracle(ctx.seed + 23), 1, den);
    const auto stats = measure_switch_runs(sw, 64, 20000, 50);
    ztable.begin_row();
    ztable.add_cell(1.0 / std::pow(2.0, den), 5);
    ztable.add_cell(sw.parameter_a(), 0);
    ztable.add_cell(stats.max_off_run);
    ztable.add_cell(stats.min_completed_off_run);
    ztable.add_cell(stats.max_on_run);
  }
  ztable.print(std::cout);

  bench::finish_experiment(
      "diam<=2 rows: max-on <= 3 and min-off within [S2, S1] bounds; "
      "path/cycle rows: S1 still holds but max-on > 3 (S2/S3 not claimed)");
  return 0;
}
