// Experiment E12: baseline comparison across the algorithm zoo.
//
//  * 2-state / 3-state / 3-color processes (self-stabilizing, constant
//    state, 1-bit communication): rounds from clean AND adversarial starts.
//  * Luby's algorithm: O(log n) rounds from a clean start, but NOT
//    self-stabilizing — from adversarial decision flags it reports a
//    non-MIS forever.
//  * Sequential central-daemon algorithm: <= 2n moves under any scheduler
//    (but inherently sequential: Theta(n) time).
//  * Deterministic synchronous rule: livelocks (the reason for coins).
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/luby.hpp"
#include "core/sequential.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "harness/suites.hpp"

using namespace ssmis;

int main(int argc, char** argv) {
  auto ctx = bench::init_experiment(
      argc, argv, "E12: baselines (Luby, sequential daemon, deterministic)",
      "the paper's processes are the only ones that are simultaneously "
      "self-stabilizing, constant-state, and round-efficient",
      10,
      bench::GraphFilePolicy::kLoad, "2state", bench::ProtocolPolicy::kFixed);

  const auto suite = ctx.suite_or([&] { return small_suite(ctx.seed); });

  print_banner(std::cout, "rounds to MIS, clean start (mean over trials)");
  {
    TextTable table({"graph", "n", "2-state", "3-state", "3-color", "luby",
                     "seq moves (<=2n)"});
    for (const auto& cell : suite) {
      table.begin_row();
      table.add_cell(cell.name);
      table.add_cell(static_cast<std::int64_t>(cell.graph.num_vertices()));
      for (const char* protocol : {"2state", "3state", "3color"}) {
        MeasureConfig config;
        ctx.apply_parallel(config);
        config.protocol = protocol;
        config.init = InitPattern::kAllWhite;
        config.trials = ctx.trials;
        config.seed = ctx.seed;
        config.max_rounds = 2000000;
        const Measurements m = measure_stabilization(cell.graph, config);
        table.add_cell(m.summary.mean);
      }
      // Luby mean rounds.
      double luby_total = 0;
      for (int trial = 0; trial < ctx.trials; ++trial) {
        LubyMIS luby(cell.graph, CoinOracle(ctx.seed + static_cast<std::uint64_t>(trial)));
        luby_total += static_cast<double>(luby.run(100000));
      }
      table.add_cell(luby_total / ctx.trials);
      // Sequential moves under round-robin.
      SequentialMIS seq(cell.graph,
                        std::vector<Color2>(
                            static_cast<std::size_t>(cell.graph.num_vertices()),
                            Color2::kWhite));
      RoundRobinScheduler sched;
      const auto result = seq.run(sched, 4 * cell.graph.num_vertices() + 8);
      table.add_cell(result.total_moves);
    }
    table.print(std::cout);
  }

  print_banner(std::cout, "adversarial start (all-black): self-stabilization");
  {
    TextTable table({"graph", "2-state ok", "3-state ok", "3-color ok", "luby ok"});
    for (const auto& cell : suite) {
      if (cell.graph.num_vertices() == 0) continue;
      table.begin_row();
      table.add_cell(cell.name);
      for (const char* protocol : {"2state", "3state", "3color"}) {
        MeasureConfig config;
        ctx.apply_parallel(config);
        config.protocol = protocol;
        config.init = InitPattern::kAllBlack;
        config.trials = 3;
        config.seed = ctx.seed + 5;
        config.max_rounds = 2000000;
        const Measurements m = measure_stabilization(cell.graph, config);
        table.add_cell(m.timeouts == 0 ? "yes" : "NO");
      }
      // Luby from adversarial flags: mark everything kOut -> no MIS, done.
      std::vector<LubyStatus> bad(static_cast<std::size_t>(cell.graph.num_vertices()),
                                  LubyStatus::kOut);
      LubyMIS luby(cell.graph, bad, CoinOracle(ctx.seed));
      luby.run(1000);
      table.add_cell(is_mis(cell.graph, luby.mis_set()) ? "yes (unexpected)" : "NO (stuck)");
    }
    table.print(std::cout);
  }

  print_banner(std::cout, "deterministic synchronous rule: livelock demonstration");
  {
    TextTable table({"graph", "start", "rounds simulated", "still enabled?"});
    struct Demo { std::string graph_name; Graph graph; };
    // Illustrative micro-demos: intentionally NOT overridden by --graph-file
    // (1000 dense deterministic rounds on a 10^7-vertex graph is not a demo).
    for (auto& demo : {Demo{"K_2", gen::complete(2)}, Demo{"C_6", gen::cycle(6)},
                       Demo{"K_8", gen::complete(8)}}) {
      SequentialMIS p(demo.graph,
                      std::vector<Color2>(
                          static_cast<std::size_t>(demo.graph.num_vertices()),
                          Color2::kBlack));
      for (int i = 0; i < 1000; ++i) p.step_parallel_deterministic();
      table.begin_row();
      table.add_cell(demo.graph_name);
      table.add_cell("all-black");
      table.add_cell(static_cast<std::int64_t>(1000));
      table.add_cell(p.enabled_set().empty() ? "no (stabilized)" : "YES (livelock)");
    }
    table.print(std::cout);
  }

  bench::finish_experiment(
      "paper's processes recover from adversarial starts; Luby does not; "
      "the deterministic parallel rule livelocks — randomization is needed");
  return 0;
}
