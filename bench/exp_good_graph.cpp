// Experiment E9 (Lemma 18): a G(n,p) sample is an (n,p)-good graph
// (Definition 17, properties P1-P6) with probability 1 - O(n^-2).
//
// P5 and P6 are checked exactly; P1-P4 quantify over all subsets, so we run
// the randomized refutation search (adversarially biased candidate subsets)
// and report the fraction of samples with no violation found.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/good_graph.hpp"

using namespace ssmis;

int main(int argc, char** argv) {
  auto ctx = bench::init_experiment(
      argc, argv, "E9 (Lemma 18): G(n,p) is (n,p)-good whp",
      "random G(n,p) satisfies P1-P6 with probability 1-O(n^-2)", 5,
      bench::GraphFilePolicy::kRefuse, "2state", bench::ProtocolPolicy::kFixed);

  struct Cell {
    Vertex n;
    double p;
  };
  std::vector<Cell> cells;
  for (Vertex n : {128, 256, 512}) {
    cells.push_back({n, 4.0 / n});
    cells.push_back({n, 0.05});
    cells.push_back({n, std::sqrt(std::log(static_cast<double>(n)) / n)});
    cells.push_back({n, 0.3});
  }

  print_banner(std::cout, "good-graph property pass rates over samples");
  TextTable table({"n", "p", "samples", "P1", "P2", "P3", "P4", "P5", "P6", "all"});
  for (const Cell& cell : cells) {
    // Each sample generates its own graph and checks it independently, so
    // samples batch across the pool like trials.
    const auto reports = ctx.trial_batch(ctx.trials).map<GoodGraphReport>([&](int s) {
      const Graph g =
          gen::gnp(cell.n, cell.p, ctx.seed + static_cast<std::uint64_t>(s) * 131);
      return check_good_sampled(g, cell.p, 20, ctx.seed + 7);
    });
    int pass[6] = {0, 0, 0, 0, 0, 0};
    int pass_all = 0;
    for (const auto& report : reports) {
      pass[0] += report.p1;
      pass[1] += report.p2;
      pass[2] += report.p3;
      pass[3] += report.p4;
      pass[4] += report.p5;
      pass[5] += report.p6;
      pass_all += report.all();
    }
    table.begin_row();
    table.add_cell(static_cast<std::int64_t>(cell.n));
    table.add_cell(cell.p, 4);
    table.add_cell(static_cast<std::int64_t>(ctx.trials));
    for (int i = 0; i < 6; ++i)
      table.add_cell(std::to_string(pass[i]) + "/" + std::to_string(ctx.trials));
    table.add_cell(std::to_string(pass_all) + "/" + std::to_string(ctx.trials));
  }
  table.print(std::cout);

  // Negative control: a planted dense subgraph must fail P1.
  print_banner(std::cout, "negative control: planted 60-clique in sparse noise");
  {
    GraphBuilder b(400);
    for (Vertex i = 0; i < 60; ++i)
      for (Vertex j = i + 1; j < 60; ++j) b.add_edge(i, j);
    const Graph planted = std::move(b).build();
    const auto report = check_good_sampled(planted, 0.001, 40, ctx.seed);
    std::cout << "planted clique, p=0.001: " << report.to_string() << "\n";
    std::cout << "(P1 must be 0: the refutation search finds the dense subgraph)\n";
  }

  bench::finish_experiment(
      "all G(n,p) samples pass every property; the planted control fails P1");
  return 0;
}
