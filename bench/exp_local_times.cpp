// Experiment X2 (extension): local vs global stabilization.
//
// The literature the paper builds on (Ghaffari's local-complexity analyses,
// Appendix B) distinguishes when a *given* vertex settles from when the
// *whole graph* does. The per-vertex stabilization-time distribution shows
// the gap: the median vertex settles in a few rounds while the global time
// is dominated by a small tail of stragglers.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

using namespace ssmis;

int main(int argc, char** argv) {
  auto ctx = bench::init_experiment(
      argc, argv, "X2 (extension): local vs global stabilization times",
      "median vertex settles in O(1)-ish rounds; the global time is a tail "
      "phenomenon",
      1);

  struct Cell { std::string name; Graph graph; };
  std::vector<Cell> cells;
  cells.push_back({"gnp4096 p=0.002", ctx.cell_graph([&] { return gen::gnp(4096, 0.002, ctx.seed); })});
  cells.push_back({"tree8192", ctx.cell_graph([&] { return gen::random_tree(8192, ctx.seed + 1); })});
  cells.push_back({"K_1024", ctx.cell_graph([&] { return gen::complete(1024); })});
  cells.push_back({"torus 48x48", ctx.cell_graph([&] { return gen::torus(48, 48); })});

  print_banner(std::cout, "per-vertex stabilization times (" + ctx.protocol + ", one run each)");
  TextTable table({"graph", "n", "median", "p90", "p99", "max (=global)",
                   "median/max"});
  for (auto& cell : cells) {
    MeasureConfig config;
    config.trials = ctx.trials;
    config.seed = ctx.seed + 7;
    config.max_rounds = 1000000;
    ctx.apply(config);
    // One per-vertex vector per trial (batched across the pool); pooled into
    // a single distribution. With the default --trials=1 this is exactly the
    // old single-run table.
    const auto per_trial = vertex_stabilization_times_batch(cell.graph, config);
    std::vector<double> finite;
    for (const auto& times : per_trial)
      for (std::int64_t t : times)
        if (t >= 0) finite.push_back(static_cast<double>(t));
    const Summary s = summarize(finite);
    table.begin_row();
    table.add_cell(cell.name);
    table.add_cell(static_cast<std::int64_t>(cell.graph.num_vertices()));
    table.add_cell(s.median);
    table.add_cell(s.p90);
    table.add_cell(s.p99);
    table.add_cell(s.max);
    table.add_cell(s.max > 0 ? s.median / s.max : 1.0);
  }
  table.print(std::cout);

  print_banner(std::cout, "distribution on gnp4096 p=0.002");
  {
    MeasureConfig config;
    config.seed = ctx.seed + 7;
    config.max_rounds = 1000000;
    ctx.apply(config);
    const Graph g = ctx.cell_graph([&] { return gen::gnp(4096, 0.002, ctx.seed); });
    const auto times = vertex_stabilization_times(g, config);
    std::vector<double> finite;
    for (std::int64_t t : times)
      if (t >= 0) finite.push_back(static_cast<double>(t));
    std::cout << render_histogram(build_histogram(finite, 12), 50);
  }

  bench::finish_experiment(
      "median/max well below 1/2 on every graph: global stabilization is "
      "driven by a few stragglers, matching the local-complexity picture");
  return 0;
}
