// Experiment E2 (Remark 9): on sqrt(n) disjoint copies of K_sqrt(n), the
// 2-state process needs Theta(log^2 n) rounds both in expectation and
// w.h.p. — the max over sqrt(n) independent clique processes pushes the
// expectation up to the w.h.p. bound. The diagnostic ratio is
// mean / log2^2(n), which should stay roughly constant, while mean / log2(n)
// grows with n.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"

using namespace ssmis;

int main(int argc, char** argv) {
  auto ctx = bench::init_experiment(
      argc, argv, "E2 (Remark 9): sqrt(n) disjoint cliques K_sqrt(n)",
      "2-state needs Theta(log^2 n) in expectation and whp", 20);

  print_banner(std::cout, ctx.protocol + " on sqrt(n) x K_sqrt(n)");
  TextTable table({"n", "side", "mean", "p95", "mean/log2(n)", "mean/log2^2(n)"});
  for (Vertex side : {8, 16, 24, 32, 48, 64}) {
    const Vertex n = side * side;
    const Graph g = ctx.cell_graph([&] { return gen::disjoint_cliques(side, side); });
    MeasureConfig config;
    config.trials = ctx.trials;
    config.seed = ctx.seed + static_cast<std::uint64_t>(side);
    config.max_rounds = 2000000;
    ctx.apply(config);
    const Measurements m = measure_stabilization(g, config);
    const double ln = bench::log2n(n);
    table.begin_row();
    table.add_cell(static_cast<std::int64_t>(n));
    table.add_cell(static_cast<std::int64_t>(side));
    table.add_cell(m.summary.mean);
    table.add_cell(m.summary.p95);
    table.add_cell(m.summary.mean / ln);
    table.add_cell(m.summary.mean / (ln * ln));
  }
  table.print(std::cout);

  bench::finish_experiment(
      "mean/log2^2(n) roughly flat while mean/log2(n) grows: expectation "
      "matches the whp bound Theta(log^2 n), unlike the single clique");
  return 0;
}
