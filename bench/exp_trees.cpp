// Experiment E4 (Theorem 11): on graphs of bounded arboricity — trees,
// forests, and unions of k forests — the 2-state process stabilizes in
// O(log n) rounds w.h.p. The diagnostic is p95 / log2(n) staying flat as n
// grows, for every family.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"

using namespace ssmis;

int main(int argc, char** argv) {
  auto ctx = bench::init_experiment(
      argc, argv, "E4 (Theorem 11): bounded arboricity",
      "2-state is O(log n) whp on any bounded-arboricity graph", 20);

  struct Family {
    std::string name;
    Graph (*make)(Vertex, std::uint64_t);
  };
  const std::vector<Family> families = {
      {"path", [](Vertex n, std::uint64_t) { return gen::path(n); }},
      {"star", [](Vertex n, std::uint64_t) { return gen::star(n); }},
      {"binary-tree", [](Vertex n, std::uint64_t) { return gen::binary_tree(n); }},
      {"uniform-tree", [](Vertex n, std::uint64_t s) { return gen::random_tree(n, s); }},
      {"recursive-tree",
       [](Vertex n, std::uint64_t s) { return gen::random_recursive_tree(n, s); }},
      {"2-forest", [](Vertex n, std::uint64_t s) { return gen::forest_union(n, 2, s); }},
      {"3-forest", [](Vertex n, std::uint64_t s) { return gen::forest_union(n, 3, s); }},
  };

  for (const auto& family : families) {
    print_banner(std::cout, ctx.protocol + " on " + family.name);
    TextTable table({"n", "arboricity<=", "mean", "p95", "p95/log2(n)"});
    for (Vertex n : {256, 1024, 4096, 16384}) {
      const Graph g = ctx.cell_graph([&] {
        return family.make(static_cast<Vertex>(n * ctx.scale),
                           ctx.seed + static_cast<std::uint64_t>(n));
      });
      MeasureConfig config;
      config.trials = ctx.trials;
      config.seed = ctx.seed + static_cast<std::uint64_t>(n) * 7;
      config.max_rounds = 1000000;
      ctx.apply(config);
      const Measurements m = measure_stabilization(g, config);
      const double ln = bench::log2n(g.num_vertices());
      table.begin_row();
      table.add_cell(static_cast<std::int64_t>(g.num_vertices()));
      table.add_cell(static_cast<std::int64_t>(arboricity_bounds(g).upper));
      table.add_cell(m.summary.mean);
      table.add_cell(m.summary.p95);
      table.add_cell(m.summary.p95 / ln);
    }
    table.print(std::cout);
  }

  bench::finish_experiment(
      "p95/log2(n) flat (no growth with n) for every bounded-arboricity "
      "family, confirming the O(log n) whp bound");
  return 0;
}
