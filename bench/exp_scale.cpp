// Scale driver for the large-graph substrate: streaming CSR construction,
// `.ssg` save / mmap reload, and a TwoStateMIS run to stabilization — with
// construction throughput (edges/sec), wall times, and peak-RSS accounting
// at every stage. This is the receipt for ROADMAP's "tens of millions of
// vertices" item: the whole pipeline at n = 10^7 fits CI-class memory
// because construction peaks at ~the final CSR footprint (two-pass build,
// no buffered edge list) and reuse goes through the mmap'd file.
//
//   ./exp_scale --n=10000000 --avg-deg=8 --save=g.ssg   # generate + persist
//   ./exp_scale --graph-file=g.ssg                      # reuse (mmap)
//
// --graph-compressed switches the whole pipeline onto the varint/delta
// adjacency codec — generation streams straight into compressed storage
// (chunked replays, peak ~ the compressed size), --save writes `.ssg` v2,
// and the reload + stabilize stages run off the compressed payload. That is
// the n = 10^8 regime: plain CSR at that scale is ~4.0 GB of adjacency
// before any process state, compressed is ~0.6x with the offsets array
// gone entirely.
//
// Other knobs: --p (overrides --avg-deg), --graph-mmap=0 (owned-read
// reload), --compress-chunk (endpoint budget per construction chunk),
// --max-rounds, and the standard --threads/--shard/--seed. Every stage row
// names the storage mode it actually ran against; an unsupported
// --graph-file format version exits 2 with a one-line error.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "core/init.hpp"
#include "core/runner.hpp"
#include "core/two_state.hpp"
#include "graph/generators.hpp"
#include "graph/ssg.hpp"
#include "support/resource.hpp"

using namespace ssmis;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double mb(std::int64_t bytes) { return static_cast<double>(bytes) / (1024.0 * 1024.0); }

}  // namespace

int main(int argc, char** argv) {
  auto ctx = bench::init_experiment(
      argc, argv, "SCALE: large-graph substrate pipeline",
      "streaming two-pass CSR + binary mmap reuse unlock n >= 10^7 within "
      "CI-class memory; the protocol itself is polylog and never the bottleneck",
      1, bench::GraphFilePolicy::kDefer, "2state",
      bench::ProtocolPolicy::kSelectable,
      {"n", "p", "avg-deg", "max-rounds", "save", "compress-chunk",
       "post-rounds"});  // load = timed stage below

  const Vertex n = static_cast<Vertex>(
      static_cast<double>(ctx.args.get_int("n", 2000000)) * ctx.scale);
  const double avg_deg = ctx.args.get_double("avg-deg", 8.0);
  const double p =
      ctx.args.get_double("p", n > 1 ? avg_deg / static_cast<double>(n - 1) : 0.0);
  const std::string save_path = ctx.args.get_string("save", "");

  TextTable table({"stage", "seconds", "edges/sec", "peak-rss-mb", "detail"});
  const std::int64_t rss_baseline = current_rss_bytes();

  Graph g;
  if (ctx.args.has("graph-file")) {
    const auto start = Clock::now();
    // honors --graph-mmap/--graph-trusted; --graph-compressed transcodes a
    // plain file after the load (a v2 file is already compressed); an
    // unreadable or unsupported-version file exits 2 with one line.
    g = ctx.load_graph_file_or_exit();
    const double secs = seconds_since(start);
    const double eps = secs > 0 ? static_cast<double>(g.num_edges()) / secs : 0.0;
    table.begin_row();
    table.add_cell(std::string("load (--graph-file") +
                   (ctx.args.get_bool("graph-trusted", false) ? ", trusted)" : ")"));
    table.add_cell(secs, 3);
    table.add_cell(eps, 0);
    table.add_cell(mb(peak_rss_bytes()), 1);
    table.add_cell(g.summary() + " (" + g.storage_mode() + ")");
  } else {
    const auto start = Clock::now();
    g = ctx.compress_graphs
            ? gen::gnp_compressed(n, p, ctx.seed,
                                  ctx.args.get_int("compress-chunk", 0))
            : gen::gnp(n, p, ctx.seed);
    const double secs = seconds_since(start);
    const double eps = secs > 0 ? static_cast<double>(g.num_edges()) / secs : 0.0;
    const std::int64_t graph_bytes = io::ssg_file_bytes(g);
    const double build_ratio =
        graph_bytes > 0
            ? static_cast<double>(peak_rss_bytes() - rss_baseline) /
                  static_cast<double>(graph_bytes)
            : 0.0;
    char detail[160];
    if (g.is_compressed()) {
      const double bpe = g.num_edges() > 0 ? static_cast<double>(graph_bytes) /
                                                 static_cast<double>(g.num_edges())
                                           : 0.0;
      std::snprintf(detail, sizeof(detail),
                    "%s; peak/base %.2fx of %.0f MB compressed (%.2f bytes/edge)",
                    g.summary().c_str(), build_ratio, mb(graph_bytes), bpe);
    } else {
      std::snprintf(detail, sizeof(detail), "%s; peak/base %.2fx of %.0f MB CSR",
                    g.summary().c_str(), build_ratio, mb(graph_bytes));
    }
    table.begin_row();
    table.add_cell(std::string("generate gnp (") +
                   (g.is_compressed() ? "compress sink)" : "streaming)"));
    table.add_cell(secs, 3);
    table.add_cell(eps, 0);
    table.add_cell(mb(peak_rss_bytes()), 1);
    table.add_cell(detail);
  }

  if (!save_path.empty()) {
    auto start = Clock::now();
    io::save_ssg(save_path, g);
    const double save_secs = seconds_since(start);
    table.begin_row();
    table.add_cell("save .ssg");
    table.add_cell(save_secs, 3);
    table.add_cell("-");
    table.add_cell(mb(peak_rss_bytes()), 1);
    table.add_cell(save_path + " (" + std::to_string(io::ssg_file_bytes(g)) + " bytes)");

    // Swap the in-heap graph for the mapped file: stepping below runs off
    // page-cache-backed memory the OS can reclaim under pressure.
    start = Clock::now();
    Graph mapped = io::mmap_ssg(save_path);
    const double map_secs = seconds_since(start);
    const bool same = mapped == g;
    g = std::move(mapped);
    table.begin_row();
    table.add_cell(std::string("mmap reload + verify (") + g.storage_mode() + ")");
    table.add_cell(map_secs, 3);
    table.add_cell("-");
    table.add_cell(mb(peak_rss_bytes()), 1);
    table.add_cell(same ? "mapped == generated" : "MISMATCH");
    if (!same) {
      table.print(std::cout);
      bench::finish_experiment("FAILED: mmap reload diverged from the generated graph");
      return 1;
    }
  }

  {
    // Any registry protocol drives the stabilize stage (--protocol NAME);
    // the default matches the historical 2-state receipt.
    const auto start = Clock::now();
    auto process = ProtocolRegistry::instance().make(
        ctx.protocol, g, with_init(ctx.proto_params, InitPattern::kUniformRandom),
        ctx.seed + 1);
    process->set_shards(ctx.shards());
    const std::int64_t max_rounds = ctx.args.get_int("max-rounds", 1000000);
    const RunResult r = process->run(max_rounds, TraceMode::kNone);
    const double secs = seconds_since(start);
    table.begin_row();
    table.add_cell(ctx.protocol + (r.stabilized ? " stabilized" : " HORIZON HIT"));
    table.add_cell(secs, 3);
    table.add_cell("-");
    table.add_cell(mb(peak_rss_bytes()), 1);
    // Name the storage the timed run actually stepped on — after the
    // optional save/reload above, it is NOT necessarily the generated one.
    table.add_cell(std::to_string(r.rounds) + " rounds, |output set| = " +
                   std::to_string(process->output_set().size()) +
                   ", graph storage: " + g.storage_mode());
    if (!r.stabilized) {
      table.print(std::cout);
      bench::finish_experiment("FAILED: horizon hit before stabilization — "
                               "raise --max-rounds or investigate");
      return 1;
    }

    // --post-rounds=N: keep stepping the stabilized process and report the
    // steady-state ns/round. This is the stable-periodic fast-forward
    // receipt at scale — with the oscillating protocols (3state, 3color,
    // stoneage) the whole MIS sits in parked limit cycles, so the figure
    // stays near the 2-state one instead of tracking |MIS| * deg. The
    // first- and second-half rates are reported separately because the
    // window opens at stabilized() = "the black set is an MIS", which
    // covered grays survive: until the last gray's own switch fires, the
    // 3-color rule cannot defer its switch, so the early rounds pay the
    // full pre-optimization cost and only the tail shows the steady state.
    const std::int64_t post_rounds = ctx.args.get_int("post-rounds", 0);
    if (post_rounds > 0) {
      const std::int64_t half = post_rounds / 2;
      const auto post_start = Clock::now();
      std::int64_t checksum = 0;
      for (std::int64_t i = 0; i < half; ++i) {
        process->step();
        checksum += process->snapshot().active;
      }
      const auto tail_start = Clock::now();
      for (std::int64_t i = half; i < post_rounds; ++i) {
        process->step();
        checksum += process->snapshot().active;
      }
      const double post_secs = seconds_since(post_start);
      const double tail_secs = seconds_since(tail_start);
      const double ns_per_round = post_secs * 1e9 / static_cast<double>(post_rounds);
      const double tail_ns_per_round =
          post_rounds > half
              ? tail_secs * 1e9 / static_cast<double>(post_rounds - half)
              : ns_per_round;
      table.begin_row();
      table.add_cell("post-stabilization stepping");
      table.add_cell(post_secs, 3);
      table.add_cell("-");
      table.add_cell(mb(peak_rss_bytes()), 1);
      char detail[160];
      std::snprintf(detail, sizeof(detail),
                    "%lld rounds, %.1f ns/round (steady-state half %.1f, "
                    "checksum %lld)",
                    static_cast<long long>(post_rounds), ns_per_round,
                    tail_ns_per_round, static_cast<long long>(checksum));
      table.add_cell(detail);
    }
    table.print(std::cout);
  }

  bench::finish_experiment(
      "pipeline (generate -> save -> mmap -> stabilize) completed within the "
      "streaming memory budget");
  return 0;
}
